#!/usr/bin/env python3
"""Compare a fresh bench --json-out run against a committed baseline.

Both files use the bench::JsonReport schema:

    {"bench": "...", "meta": {...}, "sections": {"name": [ {row}, ... ]}}

Rows are matched by (section, the row's string-valued fields, ordinal among
rows with the same string fields) — bench binaries emit rows in a
deterministic order, so the ordinal disambiguates e.g. the three sizes of a
simd kernel.  Only *ratio* metrics are compared: fields whose name contains
"speedup", ends with "_ratio", or is "recovered".  Ratios are
machine-relative (both runs happen on the same runner), unlike raw wall
seconds or GB/s, so they are the only fields stable enough to gate CI on.

A metric regresses when it drops by more than --tolerance relative to the
baseline: (baseline - current) / baseline > tolerance.  A repeatable
--tolerance-override METRIC=FRAC flag tightens (or loosens) the gate for
exact metric names — e.g. the pipeline overlap ratios gate at 0.15 while
the noisier legacy comm rows stay at 0.35.  Improvements never fail.  Schema drift never raises: rows or metrics present in only one file
get an explicit per-metric "missing in fresh run" / "missing in baseline"
line and don't fail the comparison (benches grow sections over time; a
stale baseline just means the new metrics aren't gated yet).

Exit status: 0 = within tolerance, 1 = at least one regression, 2 = usage
or file error.
"""

import argparse
import json
import math
import sys


def is_ratio_metric(name):
    return "speedup" in name or name.endswith("_ratio") or name == "recovered"


def row_key(section, row, ordinal):
    tags = tuple(sorted((k, v) for k, v in row.items() if isinstance(v, str)))
    return (section, tags, ordinal)


def key_label(key):
    section, tags, ordinal = key
    label = ", ".join(f"{k}={v}" for k, v in tags) or f"row {ordinal}"
    if tags and ordinal:
        label += f" #{ordinal}"
    return f"{section}: {label}"


def index_rows(doc):
    rows = {}
    for section, entries in doc.get("sections", {}).items():
        seen = {}
        for row in entries:
            tags = tuple(sorted(
                (k, v) for k, v in row.items() if isinstance(v, str)))
            ordinal = seen.get(tags, 0)
            seen[tags] = ordinal + 1
            rows[row_key(section, row, ordinal)] = row
    return rows


def check_finite(doc, path):
    """Refuse documents carrying NaN/inf metric values.

    A non-finite number means the bench itself misbehaved (divided by a
    zero time, overflowed an accumulator); comparing against it would
    silently pass every gate (NaN comparisons are all false), so treat it
    like a corrupt file.
    """
    bad = []
    for section, entries in doc.get("sections", {}).items():
        for i, row in enumerate(entries):
            for metric, value in row.items():
                if (isinstance(value, float)
                        and not isinstance(value, bool)
                        and not math.isfinite(value)):
                    bad.append(f"{section}[{i}].{metric}={value}")
    if bad:
        print(f"bench_compare: non-finite metric values in {path}: "
              + ", ".join(bad), file=sys.stderr)
        sys.exit(2)


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as err:
        print(f"bench_compare: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    check_finite(doc, path)
    return doc


def main():
    parser = argparse.ArgumentParser(
        description="Fail when ratio metrics regress vs a bench baseline.")
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument("current", help="freshly produced --json-out file")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="max allowed relative drop (default 0.15)")
    parser.add_argument("--tolerance-override", action="append", default=[],
                        metavar="METRIC=FRAC",
                        help="per-metric tolerance overriding --tolerance on "
                             "an exact metric-name match; repeatable (e.g. "
                             "--tolerance-override overlap_efficiency_ratio"
                             "=0.15)")
    parser.add_argument("--report", default=None,
                        help="write the comparison table to this file too")
    args = parser.parse_args()

    overrides = {}
    for spec in args.tolerance_override:
        metric, sep, frac = spec.partition("=")
        try:
            if not sep or not metric:
                raise ValueError(spec)
            overrides[metric] = float(frac)
        except ValueError:
            print(f"bench_compare: malformed --tolerance-override {spec!r} "
                  "(expected METRIC=FRAC)", file=sys.stderr)
            sys.exit(2)

    base_doc = load(args.baseline)
    curr_doc = load(args.current)
    if base_doc.get("bench") != curr_doc.get("bench"):
        print(f"bench_compare: bench mismatch: "
              f"{base_doc.get('bench')!r} vs {curr_doc.get('bench')!r}",
              file=sys.stderr)
        sys.exit(2)

    base_rows = index_rows(base_doc)
    curr_rows = index_rows(curr_doc)

    lines = [f"bench: {base_doc.get('bench')}  tolerance: "
             f"{args.tolerance:.0%}"]
    for metric, tol in sorted(overrides.items()):
        lines.append(f"  tolerance override: {metric} = {tol:.0%}")
    regressions = 0
    compared = 0

    for key, base_row in sorted(base_rows.items()):
        curr_row = curr_rows.get(key)
        if curr_row is None:
            lines.append(f"MISSING  {key_label(key)} "
                         "(row missing in fresh run)")
            continue
        for metric, curr_val in sorted(curr_row.items()):
            if (is_ratio_metric(metric)
                    and isinstance(curr_val, (int, float))
                    and not isinstance(base_row.get(metric), (int, float))):
                lines.append(f"MISSING  {key_label(key)} [{metric}] "
                             "(metric missing in baseline)")
        for metric, base_val in base_row.items():
            if not is_ratio_metric(metric):
                continue
            if not isinstance(base_val, (int, float)):
                continue
            curr_val = curr_row.get(metric)
            if not isinstance(curr_val, (int, float)):
                lines.append(f"MISSING  {key_label(key)} [{metric}] "
                             "(metric missing in fresh run)")
                continue
            compared += 1
            drop = ((base_val - curr_val) / base_val) if base_val else 0.0
            tolerance = overrides.get(metric, args.tolerance)
            status = "ok"
            if drop > tolerance:
                status = "REGRESSION"
                regressions += 1
            lines.append(
                f"{status:<10} {key_label(key)} [{metric}] "
                f"baseline={base_val:.4f} current={curr_val:.4f} "
                f"change={-drop:+.1%}")

    for key in sorted(set(curr_rows) - set(base_rows)):
        lines.append(f"NEW      {key_label(key)} "
                     "(row missing in baseline; no gate yet)")

    lines.append(f"compared {compared} ratio metrics, "
                 f"{regressions} regression(s)")
    text = "\n".join(lines)
    print(text)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    sys.exit(1 if regressions else 0)


if __name__ == "__main__":
    main()
