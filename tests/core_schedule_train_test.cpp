// End-to-end tests for the cache-aware rating scheduler wired through
// HccMf: the kAsIs bit-identical contract, RMSE parity across policies
// (any visit-order permutation preserves SGD convergence in distribution),
// determinism of reordered runs, the pinned parallel executor (the TSan CI
// target), and the sched.* observability surface.
#include <gtest/gtest.h>

#include <cmath>

#include "core/hccmf.hpp"
#include "obs/metrics.hpp"

namespace hcc::core {
namespace {

struct Problem {
  data::RatingMatrix train{0, 0};
  data::RatingMatrix test{0, 0};
  data::DatasetSpec spec;
};

Problem small_problem(double scale = 0.002) {
  Problem pr;
  pr.spec = data::netflix_spec().scaled(scale);
  data::GeneratorConfig gen;
  gen.seed = 11;
  gen.planted_rank = 4;
  const auto full = data::generate(pr.spec, gen);
  util::Rng rng(12);
  auto [train, test] = data::train_test_split(full, 0.1, rng);
  pr.train = std::move(train);
  pr.test = std::move(test);
  return pr;
}

HccMfConfig base_config(const data::DatasetSpec& spec) {
  HccMfConfig config;
  config.sgd = mf::SgdConfig::for_dataset(spec.reg_lambda, 0.01f, /*k=*/16);
  config.sgd.epochs = 6;
  config.comm.fp16 = false;
  config.platform = sim::paper_workstation_hetero();
  for (auto& w : config.platform.workers) w.epoch_overhead_s = 0.0;
  config.dataset_name = spec.name;
  return config;
}

double train_rmse(const Problem& pr, const HccMfConfig& config) {
  HccMf framework(config);
  const TrainReport report = framework.train(pr.train, &pr.test);
  return report.epochs.back().test_rmse;
}

TEST(ScheduleTrain, AsIsIsBitIdenticalToDefault) {
  // The default config never names the scheduler; setting kAsIs explicitly
  // must produce the exact same model, parameter for parameter.
  const Problem pr = small_problem();
  HccMfConfig plain = base_config(pr.spec);
  HccMfConfig asis = base_config(pr.spec);
  asis.schedule.policy = data::SchedulePolicy::kAsIs;

  const TrainReport a = HccMf(plain).train(pr.train);
  const TrainReport b = HccMf(asis).train(pr.train);
  ASSERT_TRUE(a.model.has_value());
  ASSERT_TRUE(b.model.has_value());
  const auto qa = a.model->q_data();
  const auto qb = b.model->q_data();
  ASSERT_EQ(qa.size(), qb.size());
  for (std::size_t j = 0; j < qa.size(); ++j) {
    ASSERT_EQ(qa[j], qb[j]) << "Q diverged at " << j;
  }
  const auto pa = a.model->p_data();
  const auto pb = b.model->p_data();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t j = 0; j < pa.size(); ++j) {
    ASSERT_EQ(pa[j], pb[j]) << "P diverged at " << j;
  }
}

TEST(ScheduleTrain, ReorderedRunsAreDeterministic) {
  // Same config, same seeds -> same trajectory, for both reordering
  // policies (the per-epoch permutation is derived, not sampled).
  const Problem pr = small_problem();
  for (const data::SchedulePolicy policy :
       {data::SchedulePolicy::kShuffled, data::SchedulePolicy::kTiled}) {
    HccMfConfig config = base_config(pr.spec);
    config.schedule.policy = policy;
    config.schedule.tile_kb = 64;
    const TrainReport a = HccMf(config).train(pr.train);
    const TrainReport b = HccMf(config).train(pr.train);
    ASSERT_TRUE(a.model.has_value() && b.model.has_value());
    const auto qa = a.model->q_data();
    const auto qb = b.model->q_data();
    ASSERT_EQ(qa.size(), qb.size());
    for (std::size_t j = 0; j < qa.size(); ++j) {
      ASSERT_EQ(qa[j], qb[j])
          << data::schedule_name(policy) << " diverged at " << j;
    }
  }
}

TEST(ScheduleTrain, RmseParityAcrossPolicies) {
  // SGD's visit order is arbitrary; every policy must land at statistically
  // the same test RMSE.  Converged RMSE on this planted-rank problem sits
  // near 0.95-1.0 with run-to-run jitter well under 0.05, so a 0.1 band is
  // a real parity check, not a tautology.
  const Problem pr = small_problem();
  HccMfConfig config = base_config(pr.spec);
  const double asis = train_rmse(pr, config);

  config.schedule.policy = data::SchedulePolicy::kShuffled;
  const double shuffled = train_rmse(pr, config);

  config.schedule.policy = data::SchedulePolicy::kTiled;
  config.schedule.tile_kb = 64;
  const double tiled = train_rmse(pr, config);

  config.schedule.zorder = true;
  const double zorder = train_rmse(pr, config);

  EXPECT_NEAR(shuffled, asis, 0.1);
  EXPECT_NEAR(tiled, asis, 0.1);
  EXPECT_NEAR(zorder, asis, 0.1);
  for (const double rmse : {asis, shuffled, tiled, zorder}) {
    EXPECT_TRUE(std::isfinite(rmse));
    EXPECT_LT(rmse, 1.2);
  }
}

TEST(ScheduleTrain, ParallelPinnedTiledConverges) {
  // The TSan CI target: tiled reordering on the workers' own pipeline
  // threads, round-robin pinned, against the striped server.
  const Problem pr = small_problem();
  HccMfConfig config = base_config(pr.spec);
  config.exec.mode = ExecMode::kParallel;
  config.exec.pin_threads = true;
  config.schedule.policy = data::SchedulePolicy::kTiled;
  config.schedule.tile_kb = 64;
  const TrainReport report = HccMf(config).train(pr.train, &pr.test);
  ASSERT_EQ(report.epochs.size(), 6u);
  const double first = report.epochs.front().test_rmse;
  const double last = report.epochs.back().test_rmse;
  EXPECT_TRUE(std::isfinite(last));
  EXPECT_LT(last, first);
}

TEST(ScheduleTrain, ParallelShuffledMatchesItsSerialSelf) {
  // The schedule must not interact with exec mode beyond timing: the same
  // policy converges in both modes (values differ — merge order differs —
  // but RMSE parity holds).
  const Problem pr = small_problem();
  HccMfConfig serial = base_config(pr.spec);
  serial.schedule.policy = data::SchedulePolicy::kShuffled;
  const double serial_rmse = train_rmse(pr, serial);

  HccMfConfig parallel = serial;
  parallel.exec.mode = ExecMode::kParallel;
  parallel.exec.pin_threads = true;
  const double parallel_rmse = train_rmse(pr, parallel);
  EXPECT_NEAR(parallel_rmse, serial_rmse, 0.1);
}

TEST(ScheduleTrain, PublishesSchedMetrics) {
  const Problem pr = small_problem();
  HccMfConfig config = base_config(pr.spec);
  config.schedule.policy = data::SchedulePolicy::kTiled;
  config.schedule.tile_kb = 64;
  (void)HccMf(config).train(pr.train);
  auto& reg = obs::registry();
  EXPECT_EQ(reg.gauge("sched.policy").value(),
            static_cast<double>(
                static_cast<int>(data::SchedulePolicy::kTiled)));
  EXPECT_EQ(reg.gauge("sched.tile_kb").value(), 64.0);
  EXPECT_GE(reg.gauge("sched.tiles").value(), 1.0);
  EXPECT_GT(reg.gauge("sched.reorder_ms").value(), 0.0);
  EXPECT_GT(reg.gauge("sched.effective_gbps").value(), 0.0);
}

TEST(ScheduleTrain, ValidateRejectsZeroTileBudget) {
  HccMfConfig config = base_config(data::netflix_spec().scaled(0.002));
  config.schedule.policy = data::SchedulePolicy::kTiled;
  config.schedule.tile_kb = 0;
  const auto errors = config.validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].code, ConfigErrorCode::kBadTileKb);
  // A zero budget is fine when the tiled policy is off.
  config.schedule.policy = data::SchedulePolicy::kAsIs;
  EXPECT_TRUE(config.validate().empty());
}

}  // namespace
}  // namespace hcc::core
