// End-to-end fault-tolerance tests on the training loop: worker death with
// degraded-mode recovery, corrupt-payload retry, stall detection, and the
// NaN divergence guard.  The metamorphic anchor: a faulted run must land
// within epsilon of its fault-free twin.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <numeric>

#include "core/hccmf.hpp"
#include "data/datasets.hpp"
#include "fault/checkpoint.hpp"
#include "fault/errors.hpp"

namespace hcc::core {
namespace {

struct SmallProblem {
  data::RatingMatrix train{0, 0};
  data::RatingMatrix test{0, 0};
  data::DatasetSpec spec;
};

SmallProblem netflix_small(double scale = 0.002) {
  SmallProblem pr;
  pr.spec = data::netflix_spec().scaled(scale);
  data::GeneratorConfig gen;
  gen.seed = 5;
  gen.planted_rank = 4;
  const auto full = data::generate(pr.spec, gen);
  util::Rng rng(6);
  auto [train, test] = data::train_test_split(full, 0.1, rng);
  pr.train = std::move(train);
  pr.test = std::move(test);
  return pr;
}

/// Three-worker heterogeneous platform (the acceptance scenario kills one
/// of three devices).
HccMfConfig base_config(const data::DatasetSpec& spec) {
  HccMfConfig config;
  config.sgd = mf::SgdConfig::for_dataset(spec.reg_lambda, 0.01f, /*k=*/16);
  config.sgd.epochs = 8;
  config.comm.fp16 = false;
  config.platform = sim::paper_workstation_hetero();
  config.platform.workers.resize(3);
  for (auto& w : config.platform.workers) w.epoch_overhead_s = 0.0;
  config.dataset_name = spec.name;
  return config;
}

TEST(FaultRecovery, KilledWorkerIsAbsorbedAndTrainingConverges) {
  const SmallProblem pr = netflix_small();

  HccMfConfig faulty = base_config(pr.spec);
  faulty.fault.plan = fault::FaultPlan::parse("kill:w1@e3");
  HccMf faulted(faulty);
  const TrainReport report = faulted.train(pr.train, &pr.test);

  // The run completes every epoch despite losing a worker mid-flight.
  ASSERT_EQ(report.epochs.size(), 8u);
  EXPECT_GE(report.fault.recoveries, 1u);
  EXPECT_GE(report.fault.injected, 1u);
  ASSERT_EQ(report.fault.dead_workers.size(), 1u);
  EXPECT_EQ(report.fault.dead_workers[0], 1u);
  EXPECT_GT(report.fault.recovery_wall_s, 0.0);

  // The dead worker's rows were redistributed: its final assignment is
  // empty and the survivors hold every rating exactly once.
  ASSERT_EQ(report.fault.worker_nnz.size(), 3u);
  EXPECT_EQ(report.fault.worker_nnz[1], 0u);
  EXPECT_GT(report.fault.worker_nnz[0], 0u);
  EXPECT_GT(report.fault.worker_nnz[2], 0u);
  const std::size_t total = std::accumulate(report.fault.worker_nnz.begin(),
                                            report.fault.worker_nnz.end(),
                                            std::size_t{0});
  EXPECT_EQ(total, pr.train.nnz());

  // Metamorphic anchor: the recovered run converges to within epsilon of
  // the fault-free twin.
  HccMf clean(base_config(pr.spec));
  const TrainReport baseline = clean.train(pr.train, &pr.test);
  EXPECT_NEAR(report.epochs.back().test_rmse,
              baseline.epochs.back().test_rmse, 0.01);
}

TEST(FaultRecovery, CorruptPayloadHealsViaRetryBitIdentically) {
  const SmallProblem pr = netflix_small();

  HccMfConfig faulty = base_config(pr.spec);
  faulty.fault.plan = fault::FaultPlan::parse("corrupt:w0@e1");
  HccMf faulted(faulty);
  const TrainReport report = faulted.train(pr.train, &pr.test);
  EXPECT_GE(report.fault.retries, 1u);
  EXPECT_GE(report.fault.checksum_failures, 1u);
  EXPECT_EQ(report.fault.recoveries, 0u);
  EXPECT_TRUE(report.fault.dead_workers.empty());

  // A healed retry re-sends the same bytes: the trajectory is bit-identical
  // to the fault-free run.
  HccMf clean(base_config(pr.spec));
  const TrainReport baseline = clean.train(pr.train, &pr.test);
  ASSERT_EQ(report.epochs.size(), baseline.epochs.size());
  for (std::size_t e = 0; e < report.epochs.size(); ++e) {
    EXPECT_EQ(report.epochs[e].test_rmse, baseline.epochs[e].test_rmse)
        << "epoch " << e;
  }
}

TEST(FaultRecovery, UnhealableChannelEscalatesToRecovery) {
  const SmallProblem pr = netflix_small();
  HccMfConfig faulty = base_config(pr.spec);
  faulty.fault.plan = fault::FaultPlan::parse("corrupt:w2@e1n50");
  faulty.fault.max_retries = 2;
  faulty.fault.backoff_base_s = 0.0;  // keep the test fast
  HccMf faulted(faulty);
  const TrainReport report = faulted.train(pr.train, &pr.test);
  ASSERT_EQ(report.epochs.size(), 8u);
  EXPECT_GE(report.fault.recoveries, 1u);
  ASSERT_EQ(report.fault.dead_workers.size(), 1u);
  EXPECT_EQ(report.fault.dead_workers[0], 2u);
  EXPECT_EQ(report.fault.worker_nnz[2], 0u);
}

TEST(FaultRecovery, StallChangesTimingsNotResults) {
  const SmallProblem pr = netflix_small();
  HccMfConfig faulty = base_config(pr.spec);
  faulty.fault.plan = fault::FaultPlan::parse("stall:w0@e2x16");
  HccMf faulted(faulty);
  const TrainReport report = faulted.train(pr.train, &pr.test);

  // A straggler is slow, not wrong: identical convergence...
  HccMf clean(base_config(pr.spec));
  const TrainReport baseline = clean.train(pr.train, &pr.test);
  EXPECT_EQ(report.epochs.back().test_rmse,
            baseline.epochs.back().test_rmse);
  // ...but the deadline detector flags the stalled epoch.
  EXPECT_GE(report.fault.stragglers, 1u);
  EXPECT_FALSE(report.epochs[2].stragglers.empty());
  // The stall also shows in the recorded wall clock for that epoch.
  EXPECT_GT(report.epochs[2].measured.workers[0].compute_s,
            4.0 * report.epochs[1].measured.workers[0].compute_s);
}

TEST(FaultRecovery, DivergenceGuardRollsBackWithHalvedRate) {
  const SmallProblem pr = netflix_small();
  HccMfConfig config = base_config(pr.spec);
  config.sgd.epochs = 4;
  config.sgd.learn_rate = 8.0f;  // guaranteed explosion
  // Halving from 8.0 needs ~9 rollbacks to reach a stable ~0.015.
  config.fault.max_rollbacks = 16;
  HccMf framework(config);
  const TrainReport report = framework.train(pr.train, &pr.test);
  EXPECT_GE(report.fault.divergence_rollbacks, 1u);
  ASSERT_TRUE(report.model.has_value());
  for (const float v : report.model->q_data()) {
    ASSERT_TRUE(std::isfinite(v));
  }
  EXPECT_TRUE(std::isfinite(report.epochs.back().test_rmse));
}

TEST(FaultRecovery, RunawayDivergenceRefusesPoisonedModel) {
  const SmallProblem pr = netflix_small();
  HccMfConfig config = base_config(pr.spec);
  config.sgd.epochs = 4;
  config.sgd.learn_rate = 8.0f;
  config.fault.max_rollbacks = 0;
  HccMf framework(config);
  EXPECT_THROW((void)framework.train(pr.train, &pr.test),
               fault::TrainingDivergedError);
}

TEST(FaultRecovery, InertSubsystemLeavesReportZeroed) {
  const SmallProblem pr = netflix_small();
  HccMf framework(base_config(pr.spec));
  const TrainReport report = framework.train(pr.train, &pr.test);
  EXPECT_EQ(report.fault.injected, 0u);
  EXPECT_EQ(report.fault.retries, 0u);
  EXPECT_EQ(report.fault.checksum_failures, 0u);
  EXPECT_EQ(report.fault.recoveries, 0u);
  EXPECT_EQ(report.fault.divergence_rollbacks, 0u);
  EXPECT_EQ(report.fault.stragglers, 0u);
  EXPECT_TRUE(report.fault.dead_workers.empty());
  for (const auto& e : report.epochs) {
    EXPECT_EQ(e.fault_injected, 0u);
    EXPECT_EQ(e.fault_retries, 0u);
    EXPECT_TRUE(e.stragglers.empty());
  }
  // Every worker keeps its original assignment.
  const std::size_t total = std::accumulate(report.fault.worker_nnz.begin(),
                                            report.fault.worker_nnz.end(),
                                            std::size_t{0});
  EXPECT_EQ(total, pr.train.nnz());
}

TEST(FaultRecovery, DivergenceGuardOffMatchesGuardOnWhenHealthy) {
  const SmallProblem pr = netflix_small();
  HccMfConfig on = base_config(pr.spec);
  HccMfConfig off = base_config(pr.spec);
  off.fault.divergence_guard = false;
  HccMf with_guard(on);
  HccMf without_guard(off);
  const TrainReport a = with_guard.train(pr.train, &pr.test);
  const TrainReport b = without_guard.train(pr.train, &pr.test);
  EXPECT_EQ(a.epochs.back().test_rmse, b.epochs.back().test_rmse)
      << "the guard must be pure detection on a healthy run";
}

TEST(FaultRecovery, CheckpointDirPersistsEpochBoundaries) {
  const SmallProblem pr = netflix_small();
  const std::string dir =
      (std::filesystem::temp_directory_path() / "hccmf_train_ckpts").string();
  std::filesystem::remove_all(dir);

  HccMfConfig config = base_config(pr.spec);
  config.sgd.epochs = 3;
  config.fault.checkpoint_dir = dir;
  config.fault.checkpoint_every = 1;
  HccMf framework(config);
  const TrainReport report = framework.train(pr.train, &pr.test);
  ASSERT_TRUE(report.model.has_value());

  const auto latest = fault::CheckpointStore::load_latest(dir);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->next_epoch, 3u);
  // The last checkpoint captures the final pre-P&Q-push model state.
  EXPECT_EQ(latest->model.q_data().size(), report.model->q_data().size());
  std::filesystem::remove_all(dir);
}

TEST(FaultRecovery, SimulateComposesKillIntoVirtualTimings) {
  // Timing-path mirror: killing a worker mid-run redistributes its share on
  // the virtual platform, so later epochs time differently but the run
  // still covers all epochs.
  HccMfConfig config;
  config.platform = sim::paper_workstation_hetero();
  config.sgd.epochs = 6;
  config.fault.plan = fault::FaultPlan::parse("kill:w1@e3");
  HccMf faulted(config);
  const sim::DatasetShape shape{"netflix", 480190, 17771, 99072112, 128};
  const TrainReport with_kill = faulted.simulate(shape);

  config.fault.plan = {};
  HccMf clean(config);
  const TrainReport baseline = clean.simulate(shape);

  ASSERT_EQ(with_kill.epochs.size(), 6u);
  // Before the kill the virtual platform is identical...
  EXPECT_DOUBLE_EQ(with_kill.epochs[0].virtual_s,
                   baseline.epochs[0].virtual_s);
  // ...after it the dead worker stops contributing and the survivors carry
  // its share, so the epoch takes longer.
  EXPECT_GT(with_kill.epochs[4].virtual_s, baseline.epochs[4].virtual_s);
  EXPECT_DOUBLE_EQ(with_kill.epochs[4].timing.workers[1].compute_s, 0.0);
}

}  // namespace
}  // namespace hcc::core
