// Tests for thread pool, clocks, table/CSV writers, CLI parser and logging.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <vector>

#include "util/cli.hpp"
#include "util/clock.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace hcc::util {
namespace {

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitForwardsArguments) {
  ThreadPool pool(2);
  auto f = pool.submit([](int a, int b) { return a + b; }, 40, 2);
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> touched(1000);
  pool.parallel_for(0, 1000, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++touched[i];
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSmallRange) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.parallel_for(0, 3, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ThreadPool, SizeReportsThreads) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
}

TEST(VirtualClock, AdvancesMonotonically) {
  VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.advance(1.5);
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  clock.advance_to(1.0);  // never backwards
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  clock.advance_to(2.0);
  EXPECT_DOUBLE_EQ(clock.now(), 2.0);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(Stopwatch, MeasuresNonNegativeTime) {
  Stopwatch sw;
  EXPECT_GE(sw.seconds(), 0.0);
  sw.reset();
  EXPECT_GE(sw.seconds(), 0.0);
}

TEST(Table, AlignsAndPads) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b"});  // short row padded
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "/tmp/hccmf_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    ASSERT_TRUE(csv.ok());
    csv.row({"1", "two"});
    csv.row({"with,comma", "with\"quote"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,two");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with,comma\",\"with\"\"quote\"");
  std::filesystem::remove(path);
}

TEST(Cli, ParsesEqualsAndSpaceForms) {
  // Note: a bare --flag consumes the next non-flag token as its value, so
  // positionals must precede bare flags (documented parser behaviour).
  const char* argv[] = {"prog", "positional", "--alpha=3", "--beta", "4.5",
                        "--flag"};
  Cli cli(6, argv);
  EXPECT_EQ(cli.get("alpha", std::int64_t{0}), 3);
  EXPECT_DOUBLE_EQ(cli.get("beta", 0.0), 4.5);
  EXPECT_TRUE(cli.get("flag", false));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
  EXPECT_EQ(cli.program(), "prog");
}

TEST(Cli, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_EQ(cli.get("missing", std::string("x")), "x");
  EXPECT_EQ(cli.get("missing", std::int64_t{7}), 7);
  EXPECT_FALSE(cli.get("missing", false));
  EXPECT_FALSE(cli.has("missing"));
}

TEST(Cli, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=1", "--c=yes", "--d=false"};
  Cli cli(5, argv);
  EXPECT_TRUE(cli.get("a", false));
  EXPECT_TRUE(cli.get("b", false));
  EXPECT_TRUE(cli.get("c", false));
  EXPECT_FALSE(cli.get("d", true));
}

TEST(Log, LevelGatesOutput) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kOff);
  log_line(LogLevel::kError, "must not crash while gated");
  set_log_level(LogLevel::kDebug);
  log_line(LogLevel::kDebug, "must not crash while enabled");
  set_log_level(old);
  SUCCEED();
}

}  // namespace
}  // namespace hcc::util
