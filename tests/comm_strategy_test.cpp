// Tests for payload selection, byte accounting and the strategy planner.
#include "comm/strategy.hpp"

#include <gtest/gtest.h>

#include "comm/payload.hpp"

namespace hcc::comm {
namespace {

sim::DatasetShape netflix_shape() {
  return {"netflix", 480190, 17771, 99072112, 128};
}
sim::DatasetShape wide_shape() { return {"wide", 1000, 50000, 1000000, 128}; }

TEST(Payload, ChoosesSmallerDimension) {
  EXPECT_EQ(choose_payload(100, 10), PayloadMode::kQOnly);
  EXPECT_EQ(choose_payload(10, 100), PayloadMode::kPOnly);
  EXPECT_EQ(choose_payload(10, 10), PayloadMode::kQOnly);
}

TEST(Payload, PullElementsPerMode) {
  const auto shape = netflix_shape();
  const std::uint64_t p = shape.m * 128ull;
  const std::uint64_t q = shape.n * 128ull;
  EXPECT_EQ(pull_elements(shape, PayloadMode::kPQ), p + q);
  EXPECT_EQ(pull_elements(shape, PayloadMode::kQOnly), q);
  EXPECT_EQ(pull_elements(shape, PayloadMode::kPOnly), p);
}

TEST(Payload, LastPushCarriesBothMatrices) {
  const auto shape = netflix_shape();
  const std::uint64_t p = shape.m * 128ull;
  const std::uint64_t q = shape.n * 128ull;
  EXPECT_EQ(push_elements(shape, PayloadMode::kQOnly, false), q);
  EXPECT_EQ(push_elements(shape, PayloadMode::kQOnly, true), p + q);
  EXPECT_EQ(push_elements(shape, PayloadMode::kPQ, false), p + q);
}

TEST(Payload, QOnlyReductionMatchesPaperNumbers) {
  // Section 3.4: on Netflix, Q-only cuts ~96.4% of per-epoch transfer
  // (n/(m+n) with m=480190, n=17771).
  const auto shape = netflix_shape();
  const double per_epoch_pq =
      static_cast<double>(pull_elements(shape, PayloadMode::kPQ));
  const double per_epoch_q =
      static_cast<double>(pull_elements(shape, PayloadMode::kQOnly));
  EXPECT_NEAR(1.0 - per_epoch_q / per_epoch_pq, 0.964, 0.003);
}

TEST(Payload, TwentyEpochSpeedupNearTheoretical) {
  // The paper's theoretical 20-epoch communication speedup for Netflix is
  // ~19.4x (20(m+n)/(m+20n)); our accounting (pull+push, final P&Q push)
  // lands in the same regime.
  const auto shape = netflix_shape();
  const double pq = total_wire_bytes(shape, PayloadMode::kPQ, false, 20);
  const double q = total_wire_bytes(shape, PayloadMode::kQOnly, false, 20);
  const double speedup = pq / q;
  EXPECT_GT(speedup, 15.0);
  EXPECT_LT(speedup, 25.0);
}

TEST(Payload, Fp16HalvesTotalBytes) {
  const auto shape = netflix_shape();
  const double fp32 = total_wire_bytes(shape, PayloadMode::kQOnly, false, 20);
  const double fp16 = total_wire_bytes(shape, PayloadMode::kQOnly, true, 20);
  EXPECT_NEAR(fp32 / fp16, 2.0, 1e-9);
}

TEST(Strategy, EffectiveModeHonorsReduceFlag) {
  CommConfig config;
  config.reduce_payload = true;
  EXPECT_EQ(effective_mode(config, netflix_shape()), PayloadMode::kQOnly);
  EXPECT_EQ(effective_mode(config, wide_shape()), PayloadMode::kPOnly);
  config.reduce_payload = false;
  EXPECT_EQ(effective_mode(config, netflix_shape()), PayloadMode::kPQ);
}

TEST(Strategy, StreamsCappedByCopyEngines) {
  CommConfig config;
  config.streams = 8;
  EXPECT_EQ(effective_streams(config, sim::rtx_2080()), 4u);
  EXPECT_EQ(effective_streams(config, sim::xeon_6242_24t()), 1u);
  config.streams = 2;
  EXPECT_EQ(effective_streams(config, sim::rtx_2080()), 2u);
}

TEST(Strategy, CommPlanBytesMatchPayloadAccounting) {
  CommConfig config;
  config.reduce_payload = true;
  config.fp16 = false;
  const auto shape = netflix_shape();
  const auto plan = make_comm_plan(config, shape, sim::rtx_2080(), false);
  EXPECT_DOUBLE_EQ(plan.pull_bytes,
                   wire_bytes(pull_elements(shape, PayloadMode::kQOnly), false));
  EXPECT_DOUBLE_EQ(plan.push_bytes, plan.pull_bytes);
  // Sync volume is FP32 elements regardless of wire codec.
  EXPECT_DOUBLE_EQ(plan.sync_bytes, plan.push_bytes);
}

TEST(Strategy, SyncBytesIndependentOfWireCodec) {
  CommConfig fp32_cfg;
  fp32_cfg.fp16 = false;
  CommConfig fp16_cfg;
  fp16_cfg.fp16 = true;
  const auto shape = netflix_shape();
  const auto plan32 = make_comm_plan(fp32_cfg, shape, sim::rtx_2080());
  const auto plan16 = make_comm_plan(fp16_cfg, shape, sim::rtx_2080());
  EXPECT_DOUBLE_EQ(plan32.sync_bytes, plan16.sync_bytes);
  EXPECT_NEAR(plan32.pull_bytes / plan16.pull_bytes, 2.0, 1e-9);
}

TEST(Strategy, BrokerBackendSlashesBusEfficiency) {
  CommConfig shm_cfg;
  shm_cfg.fp16 = false;
  CommConfig broker_cfg = shm_cfg;
  broker_cfg.backend = BackendKind::kBroker;
  const auto shape = netflix_shape();
  const auto shm_plan = make_comm_plan(shm_cfg, shape, sim::rtx_2080());
  const auto broker_plan = make_comm_plan(broker_cfg, shape, sim::rtx_2080());
  EXPECT_NEAR(shm_plan.bus_efficiency / broker_plan.bus_efficiency,
              shm_cfg.broker_penalty, 1e-9);
}

TEST(Strategy, Fp16BonusRaisesEfficiency) {
  CommConfig base;
  base.fp16 = false;
  CommConfig fp16_cfg;
  fp16_cfg.fp16 = true;
  const auto shape = netflix_shape();
  EXPECT_GT(make_comm_plan(fp16_cfg, shape, sim::rtx_2080()).bus_efficiency,
            make_comm_plan(base, shape, sim::rtx_2080()).bus_efficiency);
}

TEST(Strategy, FactoriesMatchConfig) {
  CommConfig config;
  config.fp16 = true;
  config.backend = BackendKind::kBroker;
  EXPECT_EQ(make_codec(config)->name(), "fp16");
  EXPECT_EQ(make_backend(config)->name(), "COMM-P");
  config.fp16 = false;
  config.backend = BackendKind::kShm;
  EXPECT_EQ(make_codec(config)->name(), "fp32");
  EXPECT_EQ(make_backend(config)->name(), "COMM");
}

TEST(Strategy, CodecKindDefersToLegacyFp16Flag) {
  CommConfig config;
  config.fp16 = true;
  EXPECT_EQ(effective_codec(config), CodecKind::kFp16);
  config.fp16 = false;
  EXPECT_EQ(effective_codec(config), CodecKind::kFp32);
  // An explicit kind wins over the flag.
  config.codec = CodecKind::kTwoBit;
  EXPECT_EQ(effective_codec(config), CodecKind::kTwoBit);
}

TEST(Strategy, TwoBitIsPushOnlyPullFallsBackToFp16) {
  CommConfig config;
  config.codec = CodecKind::kTwoBit;
  EXPECT_EQ(pull_codec_kind(config), CodecKind::kFp16);
  EXPECT_EQ(make_pull_codec(config, 128)->name(), "fp16");
  EXPECT_EQ(make_codec(config, 128)->name(), "2bit");
  // int8 holds parity in both directions, so it rides both.
  config.codec = CodecKind::kInt8;
  EXPECT_EQ(pull_codec_kind(config), CodecKind::kInt8);
  EXPECT_EQ(make_pull_codec(config, 128)->name(), "int8");
}

TEST(Strategy, QuantizedWireBytesMatchSteadyStateLayout) {
  // 1000 elements in blocks of 128: 8 blocks, each 4 scale bytes.
  EXPECT_EQ(wire_bytes(1000, CodecKind::kInt8, 128), 8 * 4 + 1000.0);
  // 2-bit packs 4 codes/byte with per-block tails: 7*32 + 26 payload bytes.
  EXPECT_EQ(wire_bytes(1000, CodecKind::kTwoBit, 128),
            8 * 4 + 7 * 32 + 26.0);
  EXPECT_EQ(wire_bytes(1000, CodecKind::kFp16, 128), 2000.0);
  EXPECT_EQ(wire_bytes(1000, CodecKind::kFp32, 128), 4000.0);
}

TEST(Strategy, CommPlanSplitsCodecsByDirection) {
  CommConfig config;
  config.codec = CodecKind::kTwoBit;
  config.sparse = false;
  const auto shape = netflix_shape();
  const auto plan = make_comm_plan(config, shape, sim::rtx_2080());
  const auto mode = effective_mode(config, shape);
  // Pull rides fp16, push rides the ternary layout.
  EXPECT_EQ(plan.pull_bytes,
            wire_bytes(pull_elements(shape, mode), CodecKind::kFp16,
                       shape.k));
  EXPECT_EQ(plan.push_bytes,
            wire_bytes(push_elements(shape, mode, false),
                       CodecKind::kTwoBit, shape.k));
  EXPECT_LT(plan.push_bytes, plan.pull_bytes / 6.0);
}

TEST(Strategy, CompressedCodecsEarnTheBusBonus) {
  CommConfig fp32_cfg;
  fp32_cfg.fp16 = false;
  const auto shape = netflix_shape();
  const double base =
      make_comm_plan(fp32_cfg, shape, sim::rtx_2080()).bus_efficiency;
  for (const CodecKind kind :
       {CodecKind::kFp16, CodecKind::kInt8, CodecKind::kTwoBit}) {
    CommConfig config;
    config.codec = kind;
    EXPECT_GT(make_comm_plan(config, shape, sim::rtx_2080()).bus_efficiency,
              base)
        << codec_kind_name(kind);
  }
}

TEST(Payload, ModeNames) {
  EXPECT_STREQ(payload_mode_name(PayloadMode::kPQ), "P&Q");
  EXPECT_STREQ(payload_mode_name(PayloadMode::kQOnly), "Q");
  EXPECT_STREQ(payload_mode_name(PayloadMode::kPOnly), "P");
}

}  // namespace
}  // namespace hcc::comm
