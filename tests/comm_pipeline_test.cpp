// Chunked streaming pipeline tests (comm/pipeline.hpp): depth-1 legacy
// equivalence, depth-N bit-identical decode, sub-chunk transfers, sizes
// straddling the codec parallel threshold, depth changes re-keyframing,
// byte-identical per-chunk retry after ChecksumError, sparse indexed
// framing, windowed session transfers healing under chaos, and the cost
// model's Eq. 1 overlap term.
#include "comm/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "comm/session.hpp"
#include "comm/strategy.hpp"
#include "core/cost_model.hpp"
#include "core/hccmf.hpp"
#include "data/datasets.hpp"
#include "fault/plan.hpp"
#include "obs/metrics.hpp"
#include "sim/device.hpp"
#include "sim/perf_model.hpp"
#include "sim/platform.hpp"
#include "util/rng.hpp"

namespace hcc::comm {
namespace {

constexpr std::size_t kK = 16;  // factor rank / row width for these tests

CommConfig int8_config(std::uint32_t depth) {
  CommConfig config;
  config.codec = CodecKind::kInt8;
  config.pipeline_depth = depth;
  return config;
}

/// Deterministic pseudo-rating drift: round r of an evolving float array.
std::vector<float> evolving(std::size_t n, int round) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(0.01f * static_cast<float>(i + 1)) +
           0.05f * static_cast<float>(round) *
               std::cos(0.003f * static_cast<float>(i));
  }
  return v;
}

TEST(Pipeline, DepthOneMatchesLegacyTransferBitIdentically) {
  // The depth-1 pipeline must be byte-for-byte the old single-codec path:
  // same outputs, same wire bytes, across an EF keyframe + steady rounds.
  const std::size_t n = 40 * kK;
  CommConfig config = int8_config(1);

  ShmComm legacy_backend;
  auto legacy_codec = make_codec(config, kK);
  ShmComm piped_backend;
  StreamPipeline pipe(config, kK, StreamPipeline::Direction::kPush);

  for (int round = 0; round < 5; ++round) {
    const std::vector<float> src = evolving(n, round);
    std::vector<float> legacy_dst(n, 0.0f), piped_dst(n, 0.0f);
    legacy_backend.transfer(src, legacy_dst, *legacy_codec);
    pipe.transfer(piped_backend, src, piped_dst);
    EXPECT_EQ(legacy_dst, piped_dst) << "round " << round;
  }
  EXPECT_EQ(legacy_backend.stats().wire_bytes, piped_backend.stats().wire_bytes);
  EXPECT_EQ(legacy_backend.stats().copies, piped_backend.stats().copies);
}

TEST(Pipeline, DepthFourDecodesBitIdenticalToDepthOne) {
  // Chunks are row-aligned and the quantized codecs scale per row, so the
  // per-chunk codec states partition the monolithic state exactly: the
  // decoded floats match bit for bit, every round, including the EF tail.
  const std::size_t n = 5 * Fp16Codec::kParallelThreshold + 3 * kK;
  ShmComm backend1, backend4;
  StreamPipeline pipe1(int8_config(1), kK, StreamPipeline::Direction::kPush);
  StreamPipeline pipe4(int8_config(4), kK, StreamPipeline::Direction::kPush);
  ASSERT_GT(pipe4.chunk_count(n), 4u);

  for (int round = 0; round < 6; ++round) {
    const std::vector<float> src = evolving(n, round);
    std::vector<float> dst1(n, 0.0f), dst4(n, 0.0f);
    pipe1.transfer(backend1, src, dst1);
    pipe4.transfer(backend4, src, dst4);
    EXPECT_EQ(dst1, dst4) << "round " << round;
  }
  EXPECT_GE(obs::registry().counter("comm.pipeline.chunks").value(),
            static_cast<double>(6 * pipe4.chunk_count(n)));
}

TEST(Pipeline, InlineAndThreadedExecutorsMatchBitIdentically) {
  // The core-aware executor choice (encoder thread vs inline windowed
  // ring) must never show on the wire: same chunk order, same frames,
  // same decoded floats, same EF evolution.
  const std::size_t n = 5 * Fp16Codec::kParallelThreshold + 3 * kK;
  ShmComm inline_backend, threaded_backend;
  StreamPipeline inline_pipe(int8_config(4), kK,
                             StreamPipeline::Direction::kPush);
  StreamPipeline threaded_pipe(int8_config(4), kK,
                               StreamPipeline::Direction::kPush);

  for (int round = 0; round < 4; ++round) {
    const std::vector<float> src = evolving(n, round);
    std::vector<float> inline_dst(n, 0.0f), threaded_dst(n, 0.0f);
    StreamPipeline::set_threading(StreamPipeline::Threading::kInline);
    inline_pipe.transfer(inline_backend, src, inline_dst);
    StreamPipeline::set_threading(StreamPipeline::Threading::kThreaded);
    threaded_pipe.transfer(threaded_backend, src, threaded_dst);
    StreamPipeline::set_threading(StreamPipeline::Threading::kAuto);
    EXPECT_EQ(inline_dst, threaded_dst) << "round " << round;
  }
  EXPECT_EQ(inline_backend.stats().wire_bytes,
            threaded_backend.stats().wire_bytes);
  EXPECT_EQ(inline_backend.stats().copies, threaded_backend.stats().copies);
}

TEST(Pipeline, TransferSmallerThanOneChunkStillStreams) {
  // A depth-4 pipeline on a payload below one chunk degenerates to a
  // single in-flight chunk but still rides the chunk API (and counts it).
  const std::size_t n = 3 * kK;  // far below chunk_floats()
  StreamPipeline pipe(int8_config(4), kK, StreamPipeline::Direction::kPush);
  ASSERT_EQ(pipe.chunk_count(n), 1u);
  const double chunks_before =
      obs::registry().counter("comm.pipeline.chunks").value();

  ShmComm backend;
  StreamPipeline ref(int8_config(1), kK, StreamPipeline::Direction::kPush);
  ShmComm ref_backend;
  for (int round = 0; round < 3; ++round) {
    const std::vector<float> src = evolving(n, round);
    std::vector<float> dst(n, 0.0f), ref_dst(n, 0.0f);
    pipe.transfer(backend, src, dst);
    ref.transfer(ref_backend, src, ref_dst);
    EXPECT_EQ(ref_dst, dst) << "round " << round;
  }
  EXPECT_GE(obs::registry().counter("comm.pipeline.chunks").value(),
            chunks_before + 3);
}

TEST(Pipeline, RowCountsStraddlingParallelThresholdStayExact) {
  // Sizes just below, at, and above kParallelThreshold (the codec
  // inline-vs-pool and chunk-size boundary) all round-trip identically to
  // the depth-1 path.
  const std::size_t threshold = Fp16Codec::kParallelThreshold;
  for (const std::size_t n :
       {threshold - kK, threshold, threshold + kK, 2 * threshold + kK}) {
    ShmComm b1, b4;
    StreamPipeline p1(int8_config(1), kK, StreamPipeline::Direction::kPush);
    StreamPipeline p4(int8_config(4), kK, StreamPipeline::Direction::kPush);
    for (int round = 0; round < 3; ++round) {
      const std::vector<float> src = evolving(n, round);
      std::vector<float> d1(n, 0.0f), d4(n, 0.0f);
      p1.transfer(b1, src, d1);
      p4.transfer(b4, src, d4);
      EXPECT_EQ(d1, d4) << "n=" << n << " round " << round;
    }
  }
}

TEST(Pipeline, DepthChangeBetweenEpochsForcesKeyframes) {
  const std::size_t n = 3 * Fp16Codec::kParallelThreshold;
  ShmComm backend;
  StreamPipeline pipe(int8_config(1), kK, StreamPipeline::Direction::kPush);

  // Reach int8 steady state at depth 1: the transfer is now lossy.
  std::vector<float> dst(n, 0.0f);
  for (int round = 0; round < 3; ++round) {
    pipe.transfer(backend, evolving(n, round), dst);
  }
  const std::vector<float> steady = evolving(n, 3);
  pipe.transfer(backend, steady, dst);
  EXPECT_NE(std::memcmp(dst.data(), steady.data(), n * sizeof(float)), 0)
      << "int8 steady state should quantize (test premise)";

  // Deepening the window re-partitions codec state; the next transfer per
  // chunk must be a lossless fp32 keyframe, not a decode against stale EF
  // references.
  pipe.set_depth(4);
  const std::vector<float> after = evolving(n, 4);
  pipe.transfer(backend, after, dst);
  EXPECT_EQ(std::memcmp(dst.data(), after.data(), n * sizeof(float)), 0)
      << "first transfer after a depth change must be a keyframe";

  // And back down to 1: same contract crossing the other way.
  pipe.set_depth(1);
  const std::vector<float> shallow = evolving(n, 5);
  pipe.transfer(backend, shallow, dst);
  EXPECT_EQ(std::memcmp(dst.data(), shallow.data(), n * sizeof(float)), 0);

  // reset_state() alone (no depth change) also forces keyframes.
  pipe.transfer(backend, evolving(n, 6), dst);  // steady again
  pipe.reset_state();
  const std::vector<float> reset_round = evolving(n, 7);
  pipe.transfer(backend, reset_round, dst);
  EXPECT_EQ(std::memcmp(dst.data(), reset_round.data(), n * sizeof(float)), 0);
}

TEST(Pipeline, ChecksumRetryResendsByteIdenticalWirePerChunk) {
  // Corrupt exactly one mid-stream chunk; the pipeline's retry must
  // re-submit the pristine slot bytes (EF state commits only at decode),
  // and the healed run must match an unfaulted depth-1 run bit for bit.
  const std::size_t n = 4 * Fp16Codec::kParallelThreshold;
  ShmComm backend;
  backend.set_checksum_enabled(true);
  StreamPipeline pipe(int8_config(3), kK, StreamPipeline::Direction::kPush);

  ShmComm ref_backend;
  ref_backend.set_checksum_enabled(true);
  StreamPipeline ref(int8_config(1), kK, StreamPipeline::Direction::kPush);

  std::vector<std::vector<std::byte>> seen;  // pristine copies, pre-corruption
  int corrupt_at = 2;  // the third chunk the tap sees
  backend.set_wire_tap([&](std::span<std::byte> wire) {
    seen.emplace_back(wire.begin(), wire.end());
    if (corrupt_at-- == 0 && !wire.empty()) wire[0] ^= std::byte{0xff};
  });

  int retries = 0;
  const StreamPipeline::RetryFn retry = [&](const std::function<void()>& f) {
    for (;;) {
      try {
        f();
        return;
      } catch (const ChecksumError&) {
        ++retries;
      }
    }
  };

  for (int round = 0; round < 3; ++round) {
    const std::vector<float> src = evolving(n, round);
    std::vector<float> dst(n, 0.0f), ref_dst(n, 0.0f);
    pipe.transfer(backend, src, dst, retry);
    ref.transfer(ref_backend, src, ref_dst);
    EXPECT_EQ(ref_dst, dst) << "round " << round;
  }
  EXPECT_EQ(retries, 1);
  // The re-sent chunk (first tap call after the corrupted one) must equal
  // the corrupted chunk's pristine bytes exactly.
  ASSERT_GE(seen.size(), 4u);
  EXPECT_EQ(seen[3], seen[2]) << "retry must re-send byte-identical wire";
}

TEST(Pipeline, SparseIndexedFramingRoundTripsAndRejectsMismatch) {
  // Satellite: sparse pushes route through the int8 codec with their row
  // indices in-band.  Values must match the un-framed int8 stream exactly;
  // a receiver whose expected row set disagrees must reject before commit.
  const std::size_t rows = 24;
  const std::size_t n = rows * kK;
  std::vector<std::uint32_t> indices(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    indices[r] = static_cast<std::uint32_t>(3 * r + 1);
  }

  SparseIndexedCodec framed(std::make_unique<Int8Codec>(kK, 0), kK);
  framed.set_rows(indices);
  Int8Codec plain(kK, 0);
  EXPECT_EQ(framed.name(), "sparse+int8");
  EXPECT_TRUE(framed.stateful());
  EXPECT_EQ(framed.encoded_bytes(n),
            SparseIndexedCodec::header_bytes(rows) + plain.encoded_bytes(n));

  for (int round = 0; round < 4; ++round) {
    const std::vector<float> src = evolving(n, round);
    std::vector<std::byte> framed_wire(framed.encoded_bytes(n));
    std::vector<std::byte> plain_wire(plain.encoded_bytes(n));
    framed.encode(src, framed_wire);
    plain.encode(src, plain_wire);
    // The inner payload is the exact int8 stream, shifted by the header.
    EXPECT_EQ(0, std::memcmp(
                     framed_wire.data() + SparseIndexedCodec::header_bytes(rows),
                     plain_wire.data(), plain_wire.size()));
    std::vector<float> framed_dst(n, 0.0f), plain_dst(n, 0.0f);
    framed.decode(framed_wire, framed_dst);
    plain.decode(plain_wire, plain_dst);
    EXPECT_EQ(plain_dst, framed_dst) << "round " << round;
  }

  // Mismatched expectation: decode must throw before the inner codec
  // commits any state.
  std::vector<std::byte> wire(framed.encoded_bytes(n));
  framed.encode(evolving(n, 9), wire);
  std::vector<std::uint32_t> other = indices;
  other[5] += 1;
  framed.set_rows(other);
  std::vector<float> dst(n, 0.0f);
  EXPECT_THROW(framed.decode(wire, dst), ChecksumError);
}

TEST(Pipeline, SessionWindowedChunksHealUnderChaos) {
  // Depth-4 chunks over chaos links: the session's retransmit / dedup
  // machinery heals each windowed frame below the chunk API and the decoded
  // stream matches a clean in-process run bit for bit.
  const std::size_t n = 4 * Fp16Codec::kParallelThreshold;
  auto chaos_session = [](const std::string& spec) {
    TransportConfig config;
    config.kind = TransportKind::kChaos;
    config.link = "local";
    config.plan = fault::FaultPlan::parse(spec);
    return SessionComm(make_transport(config, 0), config, 0);
  };
  SessionComm dropping = chaos_session("drop:w0@e0n3");
  SessionComm duping = chaos_session("dup:w0@e0n3");

  StreamPipeline drop_pipe(int8_config(4), kK,
                           StreamPipeline::Direction::kPush);
  StreamPipeline dup_pipe(int8_config(4), kK,
                          StreamPipeline::Direction::kPush);
  ShmComm clean_backend;
  StreamPipeline clean(int8_config(4), kK, StreamPipeline::Direction::kPush);

  for (int round = 0; round < 4; ++round) {
    const std::vector<float> src = evolving(n, round);
    std::vector<float> drop_dst(n, 0.0f), dup_dst(n, 0.0f);
    std::vector<float> clean_dst(n, 0.0f);
    drop_pipe.transfer(dropping, src, drop_dst);
    dup_pipe.transfer(duping, src, dup_dst);
    clean.transfer(clean_backend, src, clean_dst);
    EXPECT_EQ(clean_dst, drop_dst) << "drop round " << round;
    EXPECT_EQ(clean_dst, dup_dst) << "dup round " << round;
    EXPECT_EQ(dropping.chunks_in_flight(), 0u);
    EXPECT_EQ(duping.chunks_in_flight(), 0u);
  }
  EXPECT_GE(dropping.transport_stats().retransmits, 1u);
  EXPECT_GE(duping.transport_stats().dup_discards, 1u);
}

TEST(Pipeline, CostModelUsesOverlapTermForDeepPipelines) {
  // Eq. 1 extension: with depth > 1 and modeled codec rates, a direction
  // costs max(encode, wire, commit) instead of the serial wire time.
  const sim::DatasetShape shape{"netflix", 480190, 17771, 99072112, 128};
  const auto dev = sim::rtx_2080();
  CommConfig config;
  config.codec = CodecKind::kInt8;
  config.pipeline_depth = 1;
  const auto plan1 = comm::make_comm_plan(config, shape, dev);
  EXPECT_EQ(plan1.pipeline_depth, 1u);
  EXPECT_EQ(plan1.encode_gbs, 0.0);  // depth 1 never models overlap

  config.pipeline_depth = 4;
  const auto plan4 = comm::make_comm_plan(config, shape, dev);
  EXPECT_EQ(plan4.pipeline_depth, 4u);
  EXPECT_GT(plan4.encode_gbs, 0.0);
  EXPECT_GT(plan4.commit_gbs, 0.0);
  EXPECT_GT(plan4.pull_raw_bytes, plan4.pull_bytes);  // int8 compresses

  const double bus_gbs = sim::bus_bandwidth_gbs(dev.bus) *
                         plan4.bus_efficiency * 1e9;
  auto dir_s = [&](double wire, double raw) {
    return std::max({raw / (plan4.encode_gbs * 1e9), wire / bus_gbs,
                     raw / (plan4.commit_gbs * 1e9)});
  };
  const double expected_comm =
      dir_s(plan4.pull_bytes, plan4.pull_raw_bytes) +
      dir_s(plan4.push_bytes, plan4.push_raw_bytes);
  const double comp = sim::compute_seconds(dev, shape, 0.5);
  const double t = core::predicted_worker_seconds(dev, shape, 0.5, plan4);
  EXPECT_NEAR(t, comp + expected_comm, 1e-12);

  // An unmodeled (fp16) codec at depth 4 predicts exactly the legacy time.
  CommConfig fp16 = config;
  fp16.codec = CodecKind::kFp16;
  const auto plan_fp16 = comm::make_comm_plan(fp16, shape, dev);
  EXPECT_EQ(plan_fp16.encode_gbs, 0.0);
  auto legacy = plan_fp16;
  legacy.pipeline_depth = 1;
  EXPECT_EQ(core::predicted_worker_seconds(dev, shape, 0.5, plan_fp16),
            core::predicted_worker_seconds(dev, shape, 0.5, legacy));
}

TEST(Pipeline, ConfigRejectsZeroOrHugeDepth) {
  core::HccMfConfig config;
  config.platform = sim::paper_workstation_hetero();
  config.sgd = mf::SgdConfig::for_dataset(0.05f, 0.01f, 16);
  config.comm.pipeline_depth = 0;
  auto has_depth_error = [](const std::vector<core::ConfigError>& errors) {
    return std::any_of(errors.begin(), errors.end(), [](const auto& e) {
      return e.code == core::ConfigErrorCode::kBadPipelineDepth;
    });
  };
  EXPECT_TRUE(has_depth_error(config.validate()));
  config.comm.pipeline_depth = 65;
  EXPECT_TRUE(has_depth_error(config.validate()));
  config.comm.pipeline_depth = 4;
  EXPECT_FALSE(has_depth_error(config.validate()));
}

TEST(Pipeline, DepthFourTrainingMatchesDepthOneRmseExactly) {
  // End-to-end anchor: full training at depth 4 (int8 wire, sparse off)
  // reproduces the depth-1 trajectory to parity — chunked state
  // partitioning is exact, not approximate.
  data::DatasetSpec spec = data::netflix_spec().scaled(0.002);
  data::GeneratorConfig gen;
  gen.seed = 23;
  gen.planted_rank = 4;
  const auto full = data::generate(spec, gen);
  util::Rng rng(24);
  auto [train, test] = data::train_test_split(full, 0.1, rng);

  auto config_for_depth = [&](std::uint32_t depth) {
    core::HccMfConfig config;
    config.sgd = mf::SgdConfig::for_dataset(spec.reg_lambda, 0.01f, /*k=*/16);
    config.sgd.epochs = 5;
    config.comm.codec = CodecKind::kInt8;
    config.comm.pipeline_depth = depth;
    config.platform = sim::paper_workstation_hetero();
    config.platform.workers.resize(3);
    for (auto& w : config.platform.workers) w.epoch_overhead_s = 0.0;
    config.dataset_name = spec.name;
    return config;
  };

  const core::TrainReport base =
      core::HccMf(config_for_depth(1)).train(train, &test);
  const core::TrainReport deep =
      core::HccMf(config_for_depth(4)).train(train, &test);
  ASSERT_EQ(base.epochs.size(), deep.epochs.size());
  EXPECT_NEAR(deep.epochs.back().test_rmse, base.epochs.back().test_rmse,
              1e-6);
}

}  // namespace
}  // namespace hcc::comm
