// Tests for the concurrent epoch executor: the barrier primitive itself
// (suite Executor) and end-to-end parallel-vs-serial training equivalence
// including fault recovery under both modes (suite ParallelTrain).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/epoch_executor.hpp"
#include "core/hccmf.hpp"
#include "data/datasets.hpp"
#include "fault/errors.hpp"
#include "sim/platform.hpp"

namespace hcc::core {
namespace {

// ---------------------------------------------------------------------------
// Suite Executor: the barrier primitive.

TEST(Executor, ModeNamesRoundTrip) {
  EXPECT_STREQ(exec_mode_name(ExecMode::kSerial), "serial");
  EXPECT_STREQ(exec_mode_name(ExecMode::kParallel), "parallel");
  EXPECT_EQ(parse_exec_mode("serial"), ExecMode::kSerial);
  EXPECT_EQ(parse_exec_mode("parallel"), ExecMode::kParallel);
  EXPECT_THROW(parse_exec_mode("async"), std::invalid_argument);
  EXPECT_THROW(parse_exec_mode(""), std::invalid_argument);
}

TEST(Executor, DefaultsAreSerialWithAutoStripes) {
  const ExecOptions opts;
  EXPECT_EQ(opts.mode, ExecMode::kSerial);
  EXPECT_EQ(opts.stripes, 0u);
  EXPECT_TRUE(opts.double_buffer);
  const EpochExecutor exec(opts, 4);
  EXPECT_EQ(exec.mode(), ExecMode::kSerial);
}

TEST(Executor, RunParallelRunsExactlyTheAliveIndices) {
  ExecOptions opts;
  opts.mode = ExecMode::kParallel;
  EpochExecutor exec(opts, 5);

  std::vector<std::atomic<int>> hits(5);
  const std::vector<bool> alive = {true, false, true, true, false};
  exec.run_parallel(alive, [&](std::size_t i) { hits[i].fetch_add(1); });

  EXPECT_EQ(hits[0].load(), 1);
  EXPECT_EQ(hits[1].load(), 0);
  EXPECT_EQ(hits[2].load(), 1);
  EXPECT_EQ(hits[3].load(), 1);
  EXPECT_EQ(hits[4].load(), 0);
}

TEST(Executor, BarrierIsReusableAcrossEpochs) {
  ExecOptions opts;
  opts.mode = ExecMode::kParallel;
  EpochExecutor exec(opts, 3);
  const std::vector<bool> alive(3, true);

  std::atomic<int> total{0};
  for (int epoch = 0; epoch < 10; ++epoch) {
    exec.run_parallel(alive, [&](std::size_t) { total.fetch_add(1); });
    // The barrier really joined: all of this epoch's work is visible.
    EXPECT_EQ(total.load(), 3 * (epoch + 1));
  }
}

TEST(Executor, WorkerFaultOutranksDivergenceOutranksGeneric) {
  ExecOptions opts;
  opts.mode = ExecMode::kParallel;
  EpochExecutor exec(opts, 3);
  const std::vector<bool> alive(3, true);

  // Three workers fail in the same epoch with different error classes; the
  // barrier must deterministically surface the WorkerFault so HccMf::train
  // enters degraded-mode recovery, not the divergence rollback.
  try {
    exec.run_parallel(alive, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("generic");
      if (i == 1) throw fault::DivergenceError(1, /*epoch=*/0);
      throw fault::WorkerKilledError(2, /*epoch=*/0);
    });
    FAIL() << "expected a WorkerFault";
  } catch (const fault::WorkerFault& e) {
    EXPECT_EQ(e.worker(), 2u);
  }

  // Without a WorkerFault, divergence outranks the generic error.
  try {
    exec.run_parallel(alive, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("generic");
      if (i == 2) throw fault::DivergenceError(2, /*epoch=*/1);
    });
    FAIL() << "expected a DivergenceError";
  } catch (const fault::DivergenceError& e) {
    EXPECT_EQ(e.worker(), 2u);
  }
}

TEST(Executor, TiesBreakTowardTheLowestWorkerIndex) {
  ExecOptions opts;
  opts.mode = ExecMode::kParallel;
  EpochExecutor exec(opts, 4);
  const std::vector<bool> alive(4, true);

  try {
    exec.run_parallel(alive, [&](std::size_t i) {
      if (i == 1 || i == 3) {
        throw fault::WorkerKilledError(static_cast<std::uint32_t>(i), 0);
      }
    });
    FAIL() << "expected a WorkerFault";
  } catch (const fault::WorkerFault& e) {
    EXPECT_EQ(e.worker(), 1u);
  }
}

TEST(Executor, StaysUsableAfterAnException) {
  ExecOptions opts;
  opts.mode = ExecMode::kParallel;
  EpochExecutor exec(opts, 2);
  const std::vector<bool> alive(2, true);

  EXPECT_THROW(exec.run_parallel(
                   alive, [&](std::size_t) { throw std::runtime_error("x"); }),
               std::runtime_error);

  // The same recovery path HccMf::train takes: re-enter the barrier.
  std::atomic<int> ran{0};
  exec.run_parallel(alive, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 2);
}

// ---------------------------------------------------------------------------
// Suite ParallelTrain: end-to-end serial/parallel equivalence on HccMf.

struct SmallProblem {
  data::RatingMatrix train{0, 0};
  data::RatingMatrix test{0, 0};
  data::DatasetSpec spec;
};

SmallProblem netflix_small(double scale = 0.002) {
  SmallProblem pr;
  pr.spec = data::netflix_spec().scaled(scale);
  data::GeneratorConfig gen;
  gen.seed = 5;
  gen.planted_rank = 4;
  const auto full = data::generate(pr.spec, gen);
  util::Rng rng(6);
  auto [train, test] = data::train_test_split(full, 0.1, rng);
  pr.train = std::move(train);
  pr.test = std::move(test);
  return pr;
}

/// Homogeneous 4-CPU platform: every worker gets a similar share, so the
/// parallel executor exercises genuine 4-way concurrency.
HccMfConfig quad_cpu_config(const data::DatasetSpec& spec) {
  HccMfConfig config;
  config.sgd = mf::SgdConfig::for_dataset(spec.reg_lambda, 0.01f, /*k=*/16);
  config.sgd.epochs = 8;
  config.comm.fp16 = false;
  config.platform = sim::combo(
      "quad-cpu", {"6242-24T", "6242-24T", "6242-24T", "6242-24T"});
  for (auto& w : config.platform.workers) w.epoch_overhead_s = 0.0;
  config.dataset_name = spec.name;
  return config;
}

TrainReport run(HccMfConfig config, const SmallProblem& pr) {
  HccMf framework(std::move(config));
  return framework.train(pr.train, &pr.test);
}

TEST(ParallelTrain, SerialModeIsDeterministic) {
  const SmallProblem pr = netflix_small();
  const TrainReport a = run(quad_cpu_config(pr.spec), pr);
  const TrainReport b = run(quad_cpu_config(pr.spec), pr);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t e = 0; e < a.epochs.size(); ++e) {
    EXPECT_EQ(a.epochs[e].test_rmse, b.epochs[e].test_rmse) << "epoch " << e;
  }
  ASSERT_TRUE(a.model.has_value() && b.model.has_value());
  const auto qa = a.model->q_data();
  const auto qb = b.model->q_data();
  ASSERT_EQ(qa.size(), qb.size());
  for (std::size_t j = 0; j < qa.size(); ++j) {
    ASSERT_EQ(qa[j], qb[j]) << "index " << j;
  }
}

TEST(ParallelTrain, ParallelConvergesToSerialQuality) {
  const SmallProblem pr = netflix_small();

  const TrainReport serial = run(quad_cpu_config(pr.spec), pr);

  HccMfConfig par = quad_cpu_config(pr.spec);
  par.exec.mode = ExecMode::kParallel;
  const TrainReport parallel = run(std::move(par), pr);

  // The interleaving differs (stale-by-chunk reads, concurrent merges), so
  // the trajectories are not bit-identical — but SGD is robust to exactly
  // this kind of asynchrony and final quality must match within tolerance.
  ASSERT_EQ(parallel.epochs.size(), serial.epochs.size());
  EXPECT_NEAR(parallel.epochs.back().test_rmse,
              serial.epochs.back().test_rmse, 0.05);
  ASSERT_TRUE(parallel.model.has_value());
  for (const float v : parallel.model->q_data()) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

TEST(ParallelTrain, SparseCommMatchesSerialQualityToo) {
  const SmallProblem pr = netflix_small();

  HccMfConfig serial_cfg = quad_cpu_config(pr.spec);
  serial_cfg.comm.sparse = true;
  const TrainReport serial = run(std::move(serial_cfg), pr);

  HccMfConfig par = quad_cpu_config(pr.spec);
  par.comm.sparse = true;
  par.exec.mode = ExecMode::kParallel;
  par.exec.stripes = 16;  // force plenty of stripes over the touched sets
  const TrainReport parallel = run(std::move(par), pr);

  EXPECT_NEAR(parallel.epochs.back().test_rmse,
              serial.epochs.back().test_rmse, 0.05);
}

TEST(ParallelTrain, KilledWorkerRecoversInBothModes) {
  const SmallProblem pr = netflix_small();

  for (const ExecMode mode : {ExecMode::kSerial, ExecMode::kParallel}) {
    HccMfConfig config = quad_cpu_config(pr.spec);
    config.exec.mode = mode;
    config.fault.plan = fault::FaultPlan::parse("kill:w1@e3");
    const TrainReport report = run(std::move(config), pr);

    ASSERT_EQ(report.epochs.size(), 8u) << exec_mode_name(mode);
    EXPECT_GE(report.fault.recoveries, 1u) << exec_mode_name(mode);
    ASSERT_EQ(report.fault.dead_workers.size(), 1u) << exec_mode_name(mode);
    EXPECT_EQ(report.fault.dead_workers[0], 1u) << exec_mode_name(mode);
    // The dead worker's rows were redistributed to the survivors.
    ASSERT_EQ(report.fault.worker_nnz.size(), 4u);
    EXPECT_EQ(report.fault.worker_nnz[1], 0u);
    std::size_t total = 0;
    for (const std::size_t nnz : report.fault.worker_nnz) total += nnz;
    EXPECT_EQ(total, pr.train.nnz()) << exec_mode_name(mode);
    EXPECT_TRUE(std::isfinite(report.epochs.back().test_rmse));
  }
}

TEST(ParallelTrain, DivergenceRollsBackInBothModes) {
  const SmallProblem pr = netflix_small();

  for (const ExecMode mode : {ExecMode::kSerial, ExecMode::kParallel}) {
    HccMfConfig config = quad_cpu_config(pr.spec);
    config.exec.mode = mode;
    config.sgd.epochs = 4;
    config.sgd.learn_rate = 8.0f;  // guaranteed explosion
    config.fault.max_rollbacks = 16;
    const TrainReport report = run(std::move(config), pr);

    EXPECT_GE(report.fault.divergence_rollbacks, 1u) << exec_mode_name(mode);
    ASSERT_TRUE(report.model.has_value()) << exec_mode_name(mode);
    for (const float v : report.model->q_data()) {
      ASSERT_TRUE(std::isfinite(v)) << exec_mode_name(mode);
    }
    EXPECT_TRUE(std::isfinite(report.epochs.back().test_rmse));
  }
}

TEST(ParallelTrain, DoubleBufferedPipelinesConvergeOnGpuPlatform) {
  const SmallProblem pr = netflix_small();

  // GPU presets expose >1 copy stream, so comm.streams=3 gives each worker
  // a chunked pipeline deep enough for the prefetch overlap to engage.
  HccMfConfig serial_cfg = quad_cpu_config(pr.spec);
  serial_cfg.platform = sim::combo("dual-gpu", {"2080", "2080S"});
  for (auto& w : serial_cfg.platform.workers) w.epoch_overhead_s = 0.0;
  serial_cfg.comm.streams = 3;
  HccMfConfig par = serial_cfg;

  const TrainReport serial = run(std::move(serial_cfg), pr);

  par.exec.mode = ExecMode::kParallel;
  par.exec.double_buffer = true;
  const TrainReport parallel = run(std::move(par), pr);

  EXPECT_NEAR(parallel.epochs.back().test_rmse,
              serial.epochs.back().test_rmse, 0.05);

  // And with the prefetch disabled the parallel path still converges.
  HccMfConfig no_db = quad_cpu_config(pr.spec);
  no_db.platform = sim::combo("dual-gpu", {"2080", "2080S"});
  for (auto& w : no_db.platform.workers) w.epoch_overhead_s = 0.0;
  no_db.comm.streams = 3;
  no_db.exec.mode = ExecMode::kParallel;
  no_db.exec.double_buffer = false;
  const TrainReport plain = run(std::move(no_db), pr);
  EXPECT_NEAR(plain.epochs.back().test_rmse,
              serial.epochs.back().test_rmse, 0.05);
}

}  // namespace
}  // namespace hcc::core
