// Tests for the wire codecs.
#include "comm/codec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "util/fp16.hpp"
#include "util/rng.hpp"

namespace hcc::comm {
namespace {

std::vector<float> random_features(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  // Feature values live around sqrt(rating/k): small positive magnitudes.
  for (auto& x : v) x = static_cast<float>(rng.normal(0.15, 0.1));
  return v;
}

TEST(Fp32Codec, IsLossless) {
  Fp32Codec codec;
  const auto src = random_features(1000, 1);
  EXPECT_EQ(codec.encoded_bytes(1000), 4000u);
  std::vector<std::byte> wire(codec.encoded_bytes(src.size()));
  std::vector<float> out(src.size());
  codec.encode(src, wire);
  codec.decode(wire, out);
  EXPECT_EQ(out, src);
  EXPECT_EQ(codec.name(), "fp32");
}

TEST(Fp16Codec, HalvesWireBytes) {
  Fp16Codec codec;
  EXPECT_EQ(codec.encoded_bytes(1000), 2000u);
  EXPECT_EQ(codec.name(), "fp16");
}

TEST(Fp16Codec, RoundTripWithinHalfUlp) {
  Fp16Codec codec;
  const auto src = random_features(4096, 2);
  std::vector<std::byte> wire(codec.encoded_bytes(src.size()));
  std::vector<float> out(src.size());
  codec.encode(src, wire);
  codec.decode(wire, out);
  for (std::size_t i = 0; i < src.size(); ++i) {
    const float tolerance =
        std::max(std::abs(src[i]) * util::kFp16RelativeError,
                 util::kFp16MinNormal);
    EXPECT_NEAR(out[i], src[i], tolerance) << "index " << i;
  }
}

TEST(Fp16Codec, MatchesScalarReference) {
  Fp16Codec codec;
  const std::vector<float> src{0.1f, -2.5f, 1000.0f, 1e-6f};
  std::vector<std::byte> wire(codec.encoded_bytes(src.size()));
  std::vector<float> out(src.size());
  codec.encode(src, wire);
  codec.decode(wire, out);
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(out[i], util::fp16_to_float(util::float_to_fp16(src[i])));
  }
}

TEST(Fp16Codec, ThreadedConversionMatchesInlineBitExactly) {
  // A batch above kParallelThreshold makes the threaded codec slice the
  // range across its pool; the wire bytes must not depend on that.
  const std::size_t n = Fp16Codec::kParallelThreshold * 3 + 17;
  const auto src = random_features(n, 3);
  Fp16Codec inline_codec(0);
  Fp16Codec threaded_codec(4);
  std::vector<std::byte> wire_inline(inline_codec.encoded_bytes(n));
  std::vector<std::byte> wire_threaded(threaded_codec.encoded_bytes(n));
  inline_codec.encode(src, wire_inline);
  threaded_codec.encode(src, wire_threaded);
  EXPECT_EQ(wire_inline, wire_threaded);

  std::vector<float> out_inline(n);
  std::vector<float> out_threaded(n);
  inline_codec.decode(wire_inline, out_inline);
  threaded_codec.decode(wire_inline, out_threaded);
  EXPECT_EQ(out_inline, out_threaded);
}

TEST(Fp16Codec, ThreadedCodecHandlesSmallBatches) {
  // Below the threshold the pool is bypassed; above it every tail length
  // must still decode to the same floats.
  Fp16Codec threaded_codec(3);
  for (const std::size_t n : {std::size_t{1}, std::size_t{100},
                              Fp16Codec::kParallelThreshold - 1,
                              Fp16Codec::kParallelThreshold,
                              Fp16Codec::kParallelThreshold + 1}) {
    const auto src = random_features(n, 4);
    std::vector<std::byte> wire(threaded_codec.encoded_bytes(n));
    std::vector<float> out(n);
    threaded_codec.encode(src, wire);
    threaded_codec.decode(wire, out);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], util::fp16_to_float(util::float_to_fp16(src[i])))
          << "n=" << n << " i=" << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Error-feedback quantized codecs (int8 / 2-bit).
// ---------------------------------------------------------------------------

std::vector<float> roundtrip(Codec& codec, const std::vector<float>& src) {
  std::vector<std::byte> wire(codec.encoded_bytes(src.size()));
  std::vector<float> out(src.size());
  codec.encode(src, wire);
  codec.decode(wire, out);
  return out;
}

TEST(QuantizedCodec, NamesAndKindsParse) {
  EXPECT_EQ(Int8Codec().name(), "int8");
  EXPECT_EQ(TwoBitCodec().name(), "2bit");
  CodecKind kind = CodecKind::kAuto;
  EXPECT_TRUE(parse_codec_kind("fp32", kind));
  EXPECT_EQ(kind, CodecKind::kFp32);
  EXPECT_TRUE(parse_codec_kind("fp16", kind));
  EXPECT_EQ(kind, CodecKind::kFp16);
  EXPECT_TRUE(parse_codec_kind("int8", kind));
  EXPECT_EQ(kind, CodecKind::kInt8);
  EXPECT_TRUE(parse_codec_kind("2bit", kind));
  EXPECT_EQ(kind, CodecKind::kTwoBit);
  EXPECT_TRUE(parse_codec_kind("auto", kind));
  EXPECT_EQ(kind, CodecKind::kAuto);
  EXPECT_FALSE(parse_codec_kind("mp3", kind));
}

TEST(QuantizedCodec, FirstTransferIsALosslessKeyframe) {
  for (const bool two_bit : {false, true}) {
    std::unique_ptr<Codec> codec;
    if (two_bit) {
      codec = std::make_unique<TwoBitCodec>(128);
    } else {
      codec = std::make_unique<Int8Codec>(128);
    }
    const auto src = random_features(1000, 5);
    // A fresh stream prices the keyframe at full fp32 width...
    EXPECT_EQ(codec->encoded_bytes(src.size()), src.size() * 4);
    // ...and delivers it bit-exactly.
    EXPECT_EQ(roundtrip(*codec, src), src);
    // Steady state then switches to the compressed layout.
    EXPECT_LT(codec->encoded_bytes(src.size()), src.size() * 2);
  }
}

TEST(QuantizedCodec, SteadyStateCompressionRatiosBeatTargets) {
  const std::size_t n = 128 * 64;
  Int8Codec int8(128);
  TwoBitCodec two_bit(128);
  const auto src = random_features(n, 6);
  roundtrip(int8, src);     // consume the keyframe
  roundtrip(two_bit, src);
  const double raw = static_cast<double>(n) * 4.0;
  EXPECT_GE(raw / static_cast<double>(int8.encoded_bytes(n)), 3.5);
  EXPECT_GE(raw / static_cast<double>(two_bit.encoded_bytes(n)), 8.0);
}

TEST(QuantizedCodec, ErrorFeedbackConvergesOnRepeatedPushes) {
  // Pushing the same source repeatedly must drive the decoded value to the
  // source: whatever one round's quantizer drops, the residual replays on
  // the next.  This is the error-feedback contract that keeps training
  // convergence intact at 2 bits per weight.
  for (const bool two_bit : {false, true}) {
    std::unique_ptr<Codec> codec;
    if (two_bit) {
      codec = std::make_unique<TwoBitCodec>(32);
    } else {
      codec = std::make_unique<Int8Codec>(32);
    }
    const auto src = random_features(512, 7);
    std::vector<float> out = roundtrip(*codec, src);  // keyframe: exact
    double worst = 0.0;
    for (int round = 0; round < 50; ++round) {
      out = roundtrip(*codec, src);
      worst = 0.0;
      for (std::size_t i = 0; i < src.size(); ++i) {
        worst = std::max(worst, std::abs(double{out[i]} - double{src[i]}));
      }
    }
    EXPECT_LT(worst, 1e-3) << (two_bit ? "2bit" : "int8");
  }
}

TEST(QuantizedCodec, TracksADriftingStream) {
  // A slowly drifting source (what feature rows actually do between epochs)
  // must stay close through compressed transfers; unbounded error growth
  // here would sink RMSE.
  TwoBitCodec codec(64);
  auto src = random_features(1024, 8);
  std::vector<float> out = roundtrip(codec, src);  // keyframe
  util::Rng rng(9);
  for (int round = 0; round < 100; ++round) {
    for (auto& x : src) x += static_cast<float>(rng.normal(0.0, 0.002));
    out = roundtrip(codec, src);
  }
  double err = 0.0;
  for (std::size_t i = 0; i < src.size(); ++i) {
    err = std::max(err, std::abs(double{out[i]} - double{src[i]}));
  }
  // One round of quantization error, not 100 accumulated rounds.
  EXPECT_LT(err, 0.05);
}

TEST(QuantizedCodec, ReEncodeBeforeDecodeIsByteIdentical) {
  // transfer_with_retry re-encodes after a checksum failure; because state
  // commits at decode, the retry must produce the same wire bytes.
  Int8Codec codec(128);
  const auto src = random_features(640, 10);
  roundtrip(codec, src);  // keyframe
  const auto src2 = random_features(640, 11);
  std::vector<std::byte> wire_a(codec.encoded_bytes(src2.size()));
  std::vector<std::byte> wire_b(wire_a.size());
  codec.encode(src2, wire_a);
  codec.encode(src2, wire_b);  // simulated retry: no decode in between
  EXPECT_EQ(wire_a, wire_b);
  std::vector<float> out(src2.size());
  codec.decode(wire_b, out);
  SUCCEED();
}

TEST(QuantizedCodec, ResetStateForcesAFreshKeyframe) {
  Int8Codec codec(128);
  const auto src = random_features(256, 12);
  roundtrip(codec, src);
  EXPECT_LT(codec.encoded_bytes(src.size()), src.size() * 4);
  codec.reset_state();  // repartition: the peer rebuilt its model copy
  EXPECT_EQ(codec.encoded_bytes(src.size()), src.size() * 4);
  EXPECT_EQ(roundtrip(codec, src), src);
}

TEST(QuantizedCodec, SizeChangeForcesAFreshKeyframe) {
  TwoBitCodec codec(128);
  roundtrip(codec, random_features(256, 13));
  const auto bigger = random_features(512, 14);
  EXPECT_EQ(codec.encoded_bytes(bigger.size()), bigger.size() * 4);
  EXPECT_EQ(roundtrip(codec, bigger), bigger);
}

TEST(QuantizedCodec, ThreadedSlicingMatchesInlineBitExactly) {
  // Blocks are independent (one scale each), so pool slicing at block
  // granularity must not change a single wire byte or decoded float.
  const std::size_t n = Fp16Codec::kParallelThreshold * 2 + 128 * 3 + 5;
  const auto key = random_features(n, 15);
  const auto src = random_features(n, 16);
  for (const bool two_bit : {false, true}) {
    std::unique_ptr<Codec> inline_codec;
    std::unique_ptr<Codec> threaded_codec;
    if (two_bit) {
      inline_codec = std::make_unique<TwoBitCodec>(128, 0);
      threaded_codec = std::make_unique<TwoBitCodec>(128, 4);
    } else {
      inline_codec = std::make_unique<Int8Codec>(128, 0);
      threaded_codec = std::make_unique<Int8Codec>(128, 4);
    }
    EXPECT_EQ(roundtrip(*inline_codec, key), roundtrip(*threaded_codec, key));
    std::vector<std::byte> wire_inline(inline_codec->encoded_bytes(n));
    std::vector<std::byte> wire_threaded(threaded_codec->encoded_bytes(n));
    inline_codec->encode(src, wire_inline);
    threaded_codec->encode(src, wire_threaded);
    EXPECT_EQ(wire_inline, wire_threaded) << (two_bit ? "2bit" : "int8");
    std::vector<float> out_inline(n);
    std::vector<float> out_threaded(n);
    inline_codec->decode(wire_inline, out_inline);
    threaded_codec->decode(wire_threaded, out_threaded);
    EXPECT_EQ(out_inline, out_threaded) << (two_bit ? "2bit" : "int8");
  }
}

TEST(QuantizedCodec, StatefulnessIsAdvertised) {
  EXPECT_FALSE(Fp32Codec().stateful());
  EXPECT_FALSE(Fp16Codec().stateful());
  EXPECT_TRUE(Int8Codec().stateful());
  EXPECT_TRUE(TwoBitCodec().stateful());
}

TEST(Codecs, EmptyPayloadIsFine) {
  Fp16Codec fp16;
  Fp32Codec fp32;
  std::vector<float> empty;
  std::vector<std::byte> wire;
  fp16.encode(empty, wire);
  fp32.encode(empty, wire);
  fp16.decode(wire, empty);
  fp32.decode(wire, empty);
  SUCCEED();
}

}  // namespace
}  // namespace hcc::comm
