// Tests for the wire codecs.
#include "comm/codec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/fp16.hpp"
#include "util/rng.hpp"

namespace hcc::comm {
namespace {

std::vector<float> random_features(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  // Feature values live around sqrt(rating/k): small positive magnitudes.
  for (auto& x : v) x = static_cast<float>(rng.normal(0.15, 0.1));
  return v;
}

TEST(Fp32Codec, IsLossless) {
  const Fp32Codec codec;
  const auto src = random_features(1000, 1);
  EXPECT_EQ(codec.encoded_bytes(1000), 4000u);
  std::vector<std::byte> wire(codec.encoded_bytes(src.size()));
  std::vector<float> out(src.size());
  codec.encode(src, wire);
  codec.decode(wire, out);
  EXPECT_EQ(out, src);
  EXPECT_EQ(codec.name(), "fp32");
}

TEST(Fp16Codec, HalvesWireBytes) {
  const Fp16Codec codec;
  EXPECT_EQ(codec.encoded_bytes(1000), 2000u);
  EXPECT_EQ(codec.name(), "fp16");
}

TEST(Fp16Codec, RoundTripWithinHalfUlp) {
  const Fp16Codec codec;
  const auto src = random_features(4096, 2);
  std::vector<std::byte> wire(codec.encoded_bytes(src.size()));
  std::vector<float> out(src.size());
  codec.encode(src, wire);
  codec.decode(wire, out);
  for (std::size_t i = 0; i < src.size(); ++i) {
    const float tolerance =
        std::max(std::abs(src[i]) * util::kFp16RelativeError,
                 util::kFp16MinNormal);
    EXPECT_NEAR(out[i], src[i], tolerance) << "index " << i;
  }
}

TEST(Fp16Codec, MatchesScalarReference) {
  const Fp16Codec codec;
  const std::vector<float> src{0.1f, -2.5f, 1000.0f, 1e-6f};
  std::vector<std::byte> wire(codec.encoded_bytes(src.size()));
  std::vector<float> out(src.size());
  codec.encode(src, wire);
  codec.decode(wire, out);
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(out[i], util::fp16_to_float(util::float_to_fp16(src[i])));
  }
}

TEST(Codecs, EmptyPayloadIsFine) {
  const Fp16Codec fp16;
  const Fp32Codec fp32;
  std::vector<float> empty;
  std::vector<std::byte> wire;
  fp16.encode(empty, wire);
  fp32.encode(empty, wire);
  fp16.decode(wire, empty);
  fp32.decode(wire, empty);
  SUCCEED();
}

}  // namespace
}  // namespace hcc::comm
