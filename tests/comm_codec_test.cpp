// Tests for the wire codecs.
#include "comm/codec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/fp16.hpp"
#include "util/rng.hpp"

namespace hcc::comm {
namespace {

std::vector<float> random_features(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  // Feature values live around sqrt(rating/k): small positive magnitudes.
  for (auto& x : v) x = static_cast<float>(rng.normal(0.15, 0.1));
  return v;
}

TEST(Fp32Codec, IsLossless) {
  const Fp32Codec codec;
  const auto src = random_features(1000, 1);
  EXPECT_EQ(codec.encoded_bytes(1000), 4000u);
  std::vector<std::byte> wire(codec.encoded_bytes(src.size()));
  std::vector<float> out(src.size());
  codec.encode(src, wire);
  codec.decode(wire, out);
  EXPECT_EQ(out, src);
  EXPECT_EQ(codec.name(), "fp32");
}

TEST(Fp16Codec, HalvesWireBytes) {
  const Fp16Codec codec;
  EXPECT_EQ(codec.encoded_bytes(1000), 2000u);
  EXPECT_EQ(codec.name(), "fp16");
}

TEST(Fp16Codec, RoundTripWithinHalfUlp) {
  const Fp16Codec codec;
  const auto src = random_features(4096, 2);
  std::vector<std::byte> wire(codec.encoded_bytes(src.size()));
  std::vector<float> out(src.size());
  codec.encode(src, wire);
  codec.decode(wire, out);
  for (std::size_t i = 0; i < src.size(); ++i) {
    const float tolerance =
        std::max(std::abs(src[i]) * util::kFp16RelativeError,
                 util::kFp16MinNormal);
    EXPECT_NEAR(out[i], src[i], tolerance) << "index " << i;
  }
}

TEST(Fp16Codec, MatchesScalarReference) {
  const Fp16Codec codec;
  const std::vector<float> src{0.1f, -2.5f, 1000.0f, 1e-6f};
  std::vector<std::byte> wire(codec.encoded_bytes(src.size()));
  std::vector<float> out(src.size());
  codec.encode(src, wire);
  codec.decode(wire, out);
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(out[i], util::fp16_to_float(util::float_to_fp16(src[i])));
  }
}

TEST(Fp16Codec, ThreadedConversionMatchesInlineBitExactly) {
  // A batch above kParallelThreshold makes the threaded codec slice the
  // range across its pool; the wire bytes must not depend on that.
  const std::size_t n = Fp16Codec::kParallelThreshold * 3 + 17;
  const auto src = random_features(n, 3);
  const Fp16Codec inline_codec(0);
  const Fp16Codec threaded_codec(4);
  std::vector<std::byte> wire_inline(inline_codec.encoded_bytes(n));
  std::vector<std::byte> wire_threaded(threaded_codec.encoded_bytes(n));
  inline_codec.encode(src, wire_inline);
  threaded_codec.encode(src, wire_threaded);
  EXPECT_EQ(wire_inline, wire_threaded);

  std::vector<float> out_inline(n);
  std::vector<float> out_threaded(n);
  inline_codec.decode(wire_inline, out_inline);
  threaded_codec.decode(wire_inline, out_threaded);
  EXPECT_EQ(out_inline, out_threaded);
}

TEST(Fp16Codec, ThreadedCodecHandlesSmallBatches) {
  // Below the threshold the pool is bypassed; above it every tail length
  // must still decode to the same floats.
  const Fp16Codec threaded_codec(3);
  for (const std::size_t n : {std::size_t{1}, std::size_t{100},
                              Fp16Codec::kParallelThreshold - 1,
                              Fp16Codec::kParallelThreshold,
                              Fp16Codec::kParallelThreshold + 1}) {
    const auto src = random_features(n, 4);
    std::vector<std::byte> wire(threaded_codec.encoded_bytes(n));
    std::vector<float> out(n);
    threaded_codec.encode(src, wire);
    threaded_codec.decode(wire, out);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], util::fp16_to_float(util::float_to_fp16(src[i])))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(Codecs, EmptyPayloadIsFine) {
  const Fp16Codec fp16;
  const Fp32Codec fp32;
  std::vector<float> empty;
  std::vector<std::byte> wire;
  fp16.encode(empty, wire);
  fp32.encode(empty, wire);
  fp16.decode(wire, empty);
  fp32.decode(wire, empty);
  SUCCEED();
}

}  // namespace
}  // namespace hcc::comm
