// Tests for the HccMf facade: functional collaborative training plus
// simulated timing.
#include "core/hccmf.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mf/metrics.hpp"
#include "mf/trainer.hpp"

namespace hcc::core {
namespace {

struct SmallProblem {
  data::RatingMatrix train{0, 0};
  data::RatingMatrix test{0, 0};
  data::DatasetSpec spec;
};

SmallProblem netflix_small(double scale = 0.002) {
  SmallProblem pr;
  pr.spec = data::netflix_spec().scaled(scale);
  data::GeneratorConfig gen;
  gen.seed = 5;
  gen.planted_rank = 4;
  const auto full = data::generate(pr.spec, gen);
  util::Rng rng(6);
  auto [train, test] = data::train_test_split(full, 0.1, rng);
  pr.train = std::move(train);
  pr.test = std::move(test);
  return pr;
}

HccMfConfig base_config(const data::DatasetSpec& spec) {
  HccMfConfig config;
  config.sgd = mf::SgdConfig::for_dataset(spec.reg_lambda, 0.01f, /*k=*/16);
  config.sgd.epochs = 8;
  config.comm.fp16 = false;
  config.platform = sim::paper_workstation_hetero();
  // Toy-scale functional runs: the fixed per-epoch management cost would
  // dominate a sub-millisecond epoch and distort the partition profiling.
  for (auto& w : config.platform.workers) w.epoch_overhead_s = 0.0;
  config.dataset_name = spec.name;
  return config;
}

TEST(HccMf, FunctionalTrainingConverges) {
  const SmallProblem pr = netflix_small();
  HccMf framework(base_config(pr.spec));
  const TrainReport report = framework.train(pr.train, &pr.test);
  ASSERT_TRUE(report.model.has_value());
  ASSERT_EQ(report.epochs.size(), 8u);
  const double first = report.epochs.front().test_rmse;
  const double last = report.epochs.back().test_rmse;
  EXPECT_LT(last, first);
  EXPECT_LT(last, 1.1);
}

TEST(HccMf, ConvergenceComparableToSerialBaseline) {
  // Figure 7(a-c)'s claim: HCC-MF's per-epoch convergence matches the
  // single-processor baselines.
  const SmallProblem pr = netflix_small();
  HccMfConfig config = base_config(pr.spec);
  HccMf framework(config);
  const TrainReport report = framework.train(pr.train, &pr.test);

  mf::FactorModel serial_model(pr.train.rows(), pr.train.cols(),
                               config.sgd.k);
  util::Rng rng(7);
  serial_model.init_random(rng, 3.0f);
  mf::SerialSgd serial(config.sgd);
  const auto serial_trace = mf::train_and_trace(
      serial, serial_model, pr.train, pr.test, config.sgd.epochs);

  EXPECT_NEAR(report.epochs.back().test_rmse, serial_trace.back(), 0.1);
}

TEST(HccMf, VirtualSpeedupOverSingleDevice) {
  // The whole point: collaborative computing beats the best single device
  // on compute-heavy datasets (virtual clock).
  const SmallProblem pr = netflix_small();
  HccMfConfig multi = base_config(pr.spec);
  HccMf framework(multi);
  const TrainReport collab = framework.train(pr.train);

  HccMfConfig single = base_config(pr.spec);
  single.platform = sim::single_device(sim::rtx_2080s());
  single.platform.workers[0].epoch_overhead_s = 0.0;
  HccMf single_fw(single);
  const TrainReport alone = single_fw.train(pr.train);

  EXPECT_LT(collab.total_virtual_s, alone.total_virtual_s);
  EXPECT_GT(collab.updates_per_s, alone.updates_per_s);
}

TEST(HccMf, UtilizationIsAFraction) {
  const SmallProblem pr = netflix_small();
  HccMf framework(base_config(pr.spec));
  const TrainReport report = framework.train(pr.train);
  EXPECT_GT(report.utilization, 0.3);
  EXPECT_LE(report.utilization, 1.0);
  EXPECT_GT(report.ideal_updates_per_s, report.updates_per_s);
}

TEST(HccMf, CommStatsAccumulateAcrossWorkersAndEpochs) {
  const SmallProblem pr = netflix_small();
  HccMfConfig config = base_config(pr.spec);
  HccMf framework(config);
  const TrainReport report = framework.train(pr.train);
  // 4 workers x 8 epochs x (pull + push) = 64 wire copies with 1 stream.
  EXPECT_EQ(report.comm_totals.copies, 64u);
  const std::uint64_t q_bytes =
      std::uint64_t(pr.train.cols()) * config.sgd.k * 4;
  EXPECT_EQ(report.comm_totals.wire_bytes, 64u * q_bytes);
}

TEST(HccMf, Fp16HalvesFunctionalWireBytes) {
  const SmallProblem pr = netflix_small();
  HccMfConfig fp32 = base_config(pr.spec);
  HccMfConfig fp16 = base_config(pr.spec);
  fp16.comm.fp16 = true;
  const TrainReport r32 = HccMf(fp32).train(pr.train);
  const TrainReport r16 = HccMf(fp16).train(pr.train);
  EXPECT_EQ(r32.comm_totals.wire_bytes, 2u * r16.comm_totals.wire_bytes);
}

TEST(HccMf, Fp16DoesNotHurtConvergence) {
  // Strategy 2's claim: FP16 transmission does not affect training quality.
  const SmallProblem pr = netflix_small();
  HccMfConfig fp32 = base_config(pr.spec);
  HccMfConfig fp16 = base_config(pr.spec);
  fp16.comm.fp16 = true;
  const TrainReport r32 = HccMf(fp32).train(pr.train, &pr.test);
  const TrainReport r16 = HccMf(fp16).train(pr.train, &pr.test);
  EXPECT_NEAR(r16.epochs.back().test_rmse, r32.epochs.back().test_rmse, 0.05);
}

TEST(HccMf, WideMatrixIsTransposedTransparently) {
  // More items than users: column grid / "Transmitting P only".
  SmallProblem pr = netflix_small();
  const data::RatingMatrix wide = pr.train.transposed();
  const data::RatingMatrix wide_test = pr.test.transposed();
  HccMfConfig config = base_config(pr.spec);
  HccMf framework(config);
  const TrainReport report = framework.train(wide, &wide_test);
  EXPECT_LT(report.epochs.back().test_rmse, report.epochs.front().test_rmse);
  ASSERT_TRUE(report.model.has_value());
  // The returned model lives in the transposed orientation: users of the
  // wide matrix are its rows.
  EXPECT_EQ(report.model->items(), wide.rows());
}

TEST(HccMf, SimulateMatchesPaperScaleWithoutData) {
  HccMfConfig config;
  config.sgd.epochs = 20;
  config.comm.fp16 = false;
  config.platform = sim::paper_workstation_hetero();
  config.dataset_name = "netflix";
  HccMf framework(config);
  const TrainReport report =
      framework.simulate({"netflix", 480190, 17771, 99072112, 128});
  EXPECT_FALSE(report.model.has_value());
  EXPECT_EQ(report.epochs.size(), 20u);
  // 20-epoch Netflix on the full virtual workstation: around 1 second
  // (Figure 8(b) region), far under the single-CPU ~7s.
  EXPECT_GT(report.total_virtual_s, 0.3);
  EXPECT_LT(report.total_virtual_s, 3.0);
  EXPECT_GT(report.utilization, 0.5);
}

TEST(HccMf, EpochReportsAreCumulative) {
  const SmallProblem pr = netflix_small();
  HccMf framework(base_config(pr.spec));
  const TrainReport report = framework.train(pr.train);
  double cum = 0.0;
  for (const auto& e : report.epochs) {
    cum += e.virtual_s;
    EXPECT_NEAR(e.cumulative_virtual_s, cum, 1e-9);
    EXPECT_GT(e.virtual_s, 0.0);
  }
  EXPECT_NEAR(report.total_virtual_s, cum, 1e-9);
}

TEST(HccMf, PlanForExposesDecision) {
  HccMfConfig config;
  config.comm.fp16 = false;
  config.platform = sim::paper_workstation_hetero();
  HccMf framework(config);
  const Plan plan = framework.plan_for({"r1", 1948883, 1101750, 115579437, 128});
  EXPECT_EQ(plan.chosen, PartitionStrategy::kDp2);
}

TEST(HccMf, EmptyPlatformFallsBackToPaperWorkstation) {
  HccMfConfig config;
  config.platform.workers.clear();
  HccMf framework(config);
  EXPECT_EQ(framework.config().platform.workers.size(), 4u);
}

}  // namespace
}  // namespace hcc::core
