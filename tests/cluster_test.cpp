// Tests for the multi-node cluster extension (specs + hierarchical HCC).
#include <gtest/gtest.h>

#include <numeric>

#include "cluster/hierarchical.hpp"
#include "data/datasets.hpp"

namespace hcc::cluster {
namespace {

sim::DatasetShape netflix_shape() {
  return {"netflix", 480190, 17771, 99072112, 128};
}

HierarchicalConfig base_config(std::size_t nodes,
                               InterconnectSpec net = ethernet_100g()) {
  HierarchicalConfig config;
  config.sgd.epochs = 20;
  config.cluster = workstation_cluster(nodes, net);
  config.dataset_name = "netflix";
  return config;
}

TEST(ClusterSpec, WorkstationClusterComposition) {
  const ClusterSpec cluster = workstation_cluster(3, ethernet_100g());
  EXPECT_EQ(cluster.nodes.size(), 3u);
  EXPECT_EQ(cluster.total_workers(), 12u);
  EXPECT_EQ(cluster.network.name, "100GbE");
  // Ideal rate = 3x a single workstation.
  const double single =
      sim::paper_workstation_hetero().ideal_update_rate(netflix_shape());
  EXPECT_NEAR(cluster.ideal_update_rate(netflix_shape()), 3.0 * single, 1.0);
}

TEST(ClusterSpec, InterconnectPresetsOrdered) {
  EXPECT_GT(infiniband_hdr().bandwidth_gbs, ethernet_100g().bandwidth_gbs);
  EXPECT_GT(ethernet_100g().bandwidth_gbs, ethernet_10g().bandwidth_gbs);
  EXPECT_LT(infiniband_hdr().latency_s, ethernet_10g().latency_s);
}

TEST(Hierarchical, NodeSharesFormDistribution) {
  HierarchicalHcc hcc(base_config(4));
  const auto shares = hcc.node_shares(netflix_shape());
  ASSERT_EQ(shares.size(), 4u);
  EXPECT_NEAR(std::accumulate(shares.begin(), shares.end(), 0.0), 1.0, 1e-9);
  // Identical nodes -> even split.
  for (double s : shares) EXPECT_NEAR(s, 0.25, 1e-9);
}

TEST(Hierarchical, SimulateScalesWithNodes) {
  const sim::DatasetShape shape = netflix_shape();
  double prev = 1e100;
  for (std::size_t nodes : {1u, 2u, 4u}) {
    HierarchicalHcc hcc(base_config(nodes));
    const ClusterReport report = hcc.simulate(shape);
    EXPECT_LT(report.total_virtual_s, prev) << nodes << " nodes";
    EXPECT_GT(report.utilization, 0.3);
    EXPECT_LE(report.utilization, 1.05);
    prev = report.total_virtual_s;
  }
}

TEST(Hierarchical, SlowNetworkGatesScaling) {
  const sim::DatasetShape shape = netflix_shape();
  const ClusterReport fast =
      HierarchicalHcc(base_config(4, infiniband_hdr())).simulate(shape);
  const ClusterReport slow =
      HierarchicalHcc(base_config(4, ethernet_10g())).simulate(shape);
  EXPECT_LT(fast.total_virtual_s, slow.total_virtual_s);
  EXPECT_GT(slow.epochs[0].network_s, fast.epochs[0].network_s);
}

TEST(Hierarchical, LocalEpochsAmortizeGlobalExchange) {
  const sim::DatasetShape shape = netflix_shape();
  HierarchicalConfig one = base_config(4, ethernet_10g());
  one.sgd.epochs = 20;
  one.local_epochs = 1;
  HierarchicalConfig four = base_config(4, ethernet_10g());
  four.sgd.epochs = 5;  // same total passes: 5 x 4
  four.local_epochs = 4;
  const double t1 = HierarchicalHcc(one).simulate(shape).total_virtual_s;
  const double t4 = HierarchicalHcc(four).simulate(shape).total_virtual_s;
  EXPECT_LT(t4, t1);  // fewer global exchanges for the same compute
}

TEST(Hierarchical, EpochTimingDecomposes) {
  HierarchicalHcc hcc(base_config(2));
  const ClusterReport report = hcc.simulate(netflix_shape());
  ASSERT_EQ(report.epochs.size(), 20u);
  for (const auto& e : report.epochs) {
    EXPECT_GT(e.node_max_s, 0.0);
    EXPECT_GT(e.network_s, 0.0);
    EXPECT_GT(e.global_sync_s, 0.0);
    EXPECT_NEAR(e.total_s, e.node_max_s + e.network_s + e.global_sync_s,
                1e-12);
  }
  // The final global push carries P as well: its network time is larger.
  EXPECT_GT(report.epochs.back().network_s, report.epochs.front().network_s);
}

TEST(Hierarchical, FunctionalTrainingConverges) {
  const data::DatasetSpec spec = data::netflix_spec().scaled(0.002);
  data::GeneratorConfig gen;
  gen.seed = 17;
  gen.planted_rank = 4;
  const auto full = data::generate(spec, gen);
  util::Rng rng(18);
  const auto [train, test] = data::train_test_split(full, 0.1, rng);

  HierarchicalConfig config = base_config(3);
  config.sgd = mf::SgdConfig::for_dataset(0.02f, 0.01f, 16);
  config.sgd.epochs = 8;
  config.comm.fp16 = false;
  config.dataset_name = spec.name;
  for (auto& node : config.cluster.nodes) {
    for (auto& w : node.platform.workers) w.epoch_overhead_s = 0.0;
  }

  HierarchicalHcc hcc(config);
  const ClusterReport report = hcc.train(train, &test);
  ASSERT_TRUE(report.model.has_value());
  ASSERT_EQ(report.test_rmse.size(), 8u);
  EXPECT_LT(report.test_rmse.back(), report.test_rmse.front());
  EXPECT_LT(report.test_rmse.back(), 1.1);
}

TEST(Hierarchical, HeterogeneousNodesGetProportionalShares) {
  // A big node (full workstation) next to a small one (single GPU): DP0
  // across nodes must split by aggregate speed, not evenly.
  HierarchicalConfig config;
  config.dataset_name = "netflix";
  config.cluster.name = "lopsided";
  config.cluster.network = ethernet_100g();
  NodeSpec big;
  big.name = "big";
  big.platform = sim::paper_workstation_hetero();
  NodeSpec small;
  small.name = "small";
  small.platform = sim::single_device(sim::rtx_2080());
  config.cluster.nodes = {big, small};

  HierarchicalHcc hcc(config);
  const auto shares = hcc.node_shares(netflix_shape());
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_GT(shares[0], shares[1]);
  const double big_rate =
      big.platform.ideal_update_rate(netflix_shape());
  const double small_rate =
      small.platform.ideal_update_rate(netflix_shape());
  EXPECT_NEAR(shares[0] / shares[1], big_rate / small_rate, 1e-9);

  // And the run completes with sane utilization.
  config.sgd.epochs = 10;
  const ClusterReport report = HierarchicalHcc(config).simulate(netflix_shape());
  EXPECT_GT(report.utilization, 0.3);
  EXPECT_LE(report.utilization, 1.05);
}

TEST(Hierarchical, LocalEpochsTradeQualityForComm) {
  // More local epochs per exchange = fewer syncs = slightly staler Q.
  // Quality should remain in the same regime (that is the point of the
  // knob), while total updates match.
  const data::DatasetSpec spec = data::netflix_spec().scaled(0.002);
  data::GeneratorConfig gen;
  gen.seed = 19;
  const auto full = data::generate(spec, gen);
  util::Rng rng(20);
  const auto [train, test] = data::train_test_split(full, 0.1, rng);

  auto run = [&](std::uint32_t global, std::uint32_t local) {
    HierarchicalConfig config = base_config(2);
    config.sgd = mf::SgdConfig::for_dataset(0.02f, 0.01f, 16);
    config.sgd.epochs = global;
    config.local_epochs = local;
    config.comm.fp16 = false;
    config.dataset_name = spec.name;
    return HierarchicalHcc(config).train(train, &test).test_rmse.back();
  };
  const double frequent = run(8, 1);
  const double batched = run(2, 4);
  EXPECT_NEAR(frequent, batched, 0.15);
}

}  // namespace
}  // namespace hcc::cluster
