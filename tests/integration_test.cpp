// Cross-module integration tests: the full pipeline from synthetic dataset
// generation through collaborative training, compared against the paper's
// single-processor baselines, plus the DP0/DP1/DP2 strategy comparison that
// Section 4.3 evaluates.
#include <gtest/gtest.h>

#include <cmath>

#include "core/hccmf.hpp"
#include "mf/batched.hpp"
#include "mf/fpsgd.hpp"
#include "mf/metrics.hpp"
#include "mf/trainer.hpp"

namespace hcc {
namespace {

struct Pipeline {
  data::DatasetSpec spec;
  data::RatingMatrix train{0, 0};
  data::RatingMatrix test{0, 0};
};

Pipeline build_pipeline(const data::DatasetSpec& base, double scale,
                        std::uint64_t seed) {
  Pipeline p;
  p.spec = base.scaled(scale);
  data::GeneratorConfig gen;
  gen.seed = seed;
  gen.planted_rank = 4;
  const auto full = data::generate(p.spec, gen);
  util::Rng rng(seed + 1);
  auto [train, test] = data::train_test_split(full, 0.1, rng);
  p.train = std::move(train);
  p.test = std::move(test);
  return p;
}

mf::SgdConfig sgd_for(const Pipeline& p) {
  mf::SgdConfig c = mf::SgdConfig::for_dataset(p.spec.reg_lambda, 0.01f, 16);
  // Synthetic shrunk sets behave best with mild regularization even when
  // the full-size original (R1) uses lambda = 1.
  c.reg_p = c.reg_q = std::min(c.reg_p, 0.05f);
  c.epochs = 6;
  return c;
}

TEST(Integration, HccBeatsBaselinesOnVirtualClockAndMatchesQuality) {
  const Pipeline p = build_pipeline(data::netflix_spec(), 0.002, 11);
  const mf::SgdConfig sgd = sgd_for(p);

  // HCC-MF on the full virtual workstation (toy-scale run: drop the fixed
  // per-epoch management cost, which would dominate microsecond epochs).
  core::HccMfConfig config;
  config.sgd = sgd;
  config.comm.fp16 = false;
  config.platform = sim::paper_workstation_hetero();
  for (auto& w : config.platform.workers) w.epoch_overhead_s = 0.0;
  config.dataset_name = p.spec.name;
  const core::TrainReport hcc = core::HccMf(config).train(p.train, &p.test);

  // FPSGD (CPU baseline) — functional quality + virtual single-CPU time.
  mf::FactorModel fpsgd_model(p.spec.m, p.spec.n, sgd.k);
  util::Rng rng(9);
  fpsgd_model.init_random(rng, 3.0f);
  mf::FpsgdTrainer fpsgd(sgd, 3);
  const auto fpsgd_trace =
      mf::train_and_trace(fpsgd, fpsgd_model, p.train, p.test, sgd.epochs);

  // CuMF-style batched (GPU baseline).
  util::ThreadPool pool(2);
  mf::FactorModel gpu_model(p.spec.m, p.spec.n, sgd.k);
  util::Rng rng2(9);
  gpu_model.init_random(rng2, 3.0f);
  mf::BatchedTrainer batched(sgd, pool, 4);
  const auto gpu_trace =
      mf::train_and_trace(batched, gpu_model, p.train, p.test, sgd.epochs);

  // Quality: same convergence regime (Figure 7a).
  EXPECT_NEAR(hcc.epochs.back().test_rmse, fpsgd_trace.back(), 0.12);
  EXPECT_NEAR(hcc.epochs.back().test_rmse, gpu_trace.back(), 0.12);

  // Speed: the virtual collaborative platform beats each single device
  // (Figure 7d's 2.3x over CuMF_SGD / 5.75x over FPSGD regime).
  const sim::DatasetShape shape{p.spec.name, p.spec.m, p.spec.n, p.spec.nnz,
                                sgd.k};
  const double cpu_alone =
      sgd.epochs * sim::compute_seconds(sim::xeon_6242_24t(), shape, 1.0);
  const double gpu_alone =
      sgd.epochs * sim::compute_seconds(sim::rtx_2080s(), shape, 1.0);
  EXPECT_LT(hcc.total_virtual_s, gpu_alone);
  EXPECT_LT(hcc.total_virtual_s, cpu_alone);
  EXPECT_GT(cpu_alone / hcc.total_virtual_s, 3.0);  // >> FPSGD
}

TEST(Integration, Dp1BeatsDp0OnComputeBoundShape) {
  // Section 4.3 / Figure 8(a-d): on Netflix and R2 (sync negligible), DP1's
  // epoch time is no worse than DP0's — the paper measures ~10-12% better.
  core::HccMfConfig config;
  config.sgd.epochs = 20;
  config.comm.fp16 = false;
  config.platform = sim::paper_workstation_hetero();
  config.dataset_name = "netflix";
  const sim::DatasetShape shape{"netflix", 480190, 17771, 99072112, 128};

  config.partition = core::PartitionStrategy::kDp0;
  const double dp0 = core::HccMf(config).simulate(shape).total_virtual_s;
  config.partition = core::PartitionStrategy::kDp1;
  const double dp1 = core::HccMf(config).simulate(shape).total_virtual_s;
  EXPECT_LT(dp1, dp0 * 1.01);
}

TEST(Integration, Dp2BeatsDp1OnSyncBoundShape) {
  // Section 4.3 / Figure 8(e-f): on R1* (sync matters), DP2 hides sync and
  // ends the epoch sooner than DP1 (~12% in the paper).
  core::HccMfConfig config;
  config.sgd.epochs = 20;
  config.comm.fp16 = false;
  config.platform = sim::paper_workstation_hetero();
  config.dataset_name = "r1star";
  const sim::DatasetShape shape{"r1star", 1948883, 1101750, 199999997, 128};

  config.partition = core::PartitionStrategy::kDp1;
  const double dp1 = core::HccMf(config).simulate(shape).total_virtual_s;
  config.partition = core::PartitionStrategy::kDp2;
  const double dp2 = core::HccMf(config).simulate(shape).total_virtual_s;
  EXPECT_LT(dp2, dp1);
}

TEST(Integration, EvenPartitionShowsShortBoardEffect) {
  // Figure 3(a) "unbalanced data": an even split on the heterogeneous
  // platform is visibly slower than DP1.
  core::HccMfConfig config;
  config.sgd.epochs = 20;
  config.comm.fp16 = false;
  config.platform = sim::paper_workstation_hetero();
  config.dataset_name = "netflix";
  const sim::DatasetShape shape{"netflix", 480190, 17771, 99072112, 128};

  config.partition = core::PartitionStrategy::kEven;
  const double even = core::HccMf(config).simulate(shape).total_virtual_s;
  config.partition = core::PartitionStrategy::kDp1;
  const double dp1 = core::HccMf(config).simulate(shape).total_virtual_s;
  EXPECT_GT(even, 1.5 * dp1);
}

TEST(Integration, StreamsHelpCommBoundShape) {
  // Strategy 3 on a square-ish matrix (MovieLens-like): async streams
  // shorten the epoch by hiding transfers.
  core::HccMfConfig config;
  config.sgd.epochs = 20;
  config.platform = sim::combo("2GPUs", {"2080S", "2080"});
  config.dataset_name = "movielens";
  config.comm.fp16 = false;
  const sim::DatasetShape shape{"movielens", 138494, 131263, 20000260, 128};

  config.comm.streams = 1;
  const double s1 = core::HccMf(config).simulate(shape).total_virtual_s;
  config.comm.streams = 4;
  const double s4 = core::HccMf(config).simulate(shape).total_virtual_s;
  EXPECT_LT(s4, s1);
}

TEST(Integration, BrokerBackendInflatesCommTime) {
  // Table 5: COMM-P is several times slower at equal payload.
  core::HccMfConfig config;
  config.sgd.epochs = 20;
  config.comm.fp16 = false;
  config.platform = sim::paper_workstation_hetero();
  config.dataset_name = "netflix";
  const sim::DatasetShape shape{"netflix", 480190, 17771, 99072112, 128};

  const double shm =
      core::HccMf(config).simulate(shape).comm_virtual_s;
  config.comm.backend = comm::BackendKind::kBroker;
  const double broker =
      core::HccMf(config).simulate(shape).comm_virtual_s;
  EXPECT_NEAR(broker / shm, config.comm.broker_penalty, 0.3);
}

TEST(Integration, UtilizationDropsOnCommBoundDataset) {
  // Table 4's pattern: Netflix/R2 utilize >85%, MovieLens ~46%.
  core::HccMfConfig config;
  config.sgd.epochs = 20;
  config.platform = sim::paper_workstation_overall();

  config.dataset_name = "netflix";
  const auto nf = core::HccMf(config).simulate(
      {"netflix", 480190, 17771, 99072112, 128});
  config.dataset_name = "movielens";
  const auto ml = core::HccMf(config).simulate(
      {"movielens", 138494, 131263, 20000260, 128});
  EXPECT_GT(nf.utilization, 0.75);
  EXPECT_LT(ml.utilization, 0.75);
  EXPECT_GT(nf.utilization, ml.utilization);
}

}  // namespace
}  // namespace hcc
