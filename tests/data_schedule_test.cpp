// Tests for the cache-aware rating scheduler (data/schedule.hpp): policy
// parsing, the kAsIs bit-identical contract, permutation invariants of the
// shuffled/tiled orders, tile contiguity and the tile-span budget math.
#include "data/schedule.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace hcc::data {
namespace {

/// A slice-like matrix: global row ids in [row_lo, row_lo + rows), sorted
/// by row — exactly what assign_slices hands a worker.
RatingMatrix slice_like(std::uint32_t row_lo, std::uint32_t rows,
                        std::uint32_t cols, std::size_t nnz,
                        std::uint64_t seed) {
  util::Rng rng(seed);
  RatingMatrix m(row_lo + rows, cols);
  for (std::size_t j = 0; j < nnz; ++j) {
    m.add(row_lo + static_cast<std::uint32_t>(rng.uniform() * rows),
          static_cast<std::uint32_t>(rng.uniform() * cols),
          static_cast<float>(1.0 + rng.uniform() * 4.0));
  }
  m.sort_by_row();
  return m;
}

std::multiset<std::tuple<std::uint32_t, std::uint32_t, float>> multiset_of(
    const RatingMatrix& m) {
  std::multiset<std::tuple<std::uint32_t, std::uint32_t, float>> s;
  for (const auto& e : m.entries()) s.insert({e.u, e.i, e.r});
  return s;
}

TEST(ScheduleParse, RoundTripsEveryPolicy) {
  for (const SchedulePolicy p :
       {SchedulePolicy::kAsIs, SchedulePolicy::kShuffled,
        SchedulePolicy::kTiled}) {
    EXPECT_EQ(parse_schedule(schedule_name(p)), p);
  }
  EXPECT_THROW(parse_schedule("zigzag"), std::invalid_argument);
  EXPECT_THROW(parse_schedule(""), std::invalid_argument);
}

TEST(ScheduleAsIs, IsBitIdenticalNoOp) {
  RatingMatrix m = slice_like(10, 50, 40, 500, 1);
  const std::vector<Rating> before(m.entries().begin(), m.entries().end());
  const RatingScheduler sched(ScheduleOptions{}, /*k=*/16);
  for (std::uint32_t epoch = 0; epoch < 3; ++epoch) {
    const ScheduleStats stats = sched.prepare(m, epoch);
    EXPECT_EQ(stats.reorder_ms, 0.0);
    const auto after = m.entries();
    ASSERT_EQ(after.size(), before.size());
    for (std::size_t j = 0; j < before.size(); ++j) {
      EXPECT_EQ(after[j], before[j]) << "epoch " << epoch << " pos " << j;
    }
  }
}

TEST(ScheduleShuffled, PermutesDeterministicallyPerEpoch) {
  ScheduleOptions opts;
  opts.policy = SchedulePolicy::kShuffled;
  const RatingScheduler sched(opts, 16);

  RatingMatrix a = slice_like(0, 40, 30, 400, 2);
  RatingMatrix b = slice_like(0, 40, 30, 400, 2);
  const auto before = multiset_of(a);

  sched.prepare(a, 0);
  sched.prepare(b, 0);
  EXPECT_EQ(multiset_of(a), before);  // a permutation, nothing lost
  const auto ea = a.entries();
  const auto eb = b.entries();
  for (std::size_t j = 0; j < ea.size(); ++j) {
    ASSERT_EQ(ea[j], eb[j]) << "same (seed, epoch) must reorder identically";
  }

  // A different epoch produces a different order (with 400! orders the
  // probability of a coincidence is nil).
  RatingMatrix c = slice_like(0, 40, 30, 400, 2);
  sched.prepare(c, 1);
  const auto ec = c.entries();
  bool any_diff = false;
  for (std::size_t j = 0; j < ea.size(); ++j) {
    if (!(ea[j] == ec[j])) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
  EXPECT_EQ(multiset_of(c), before);
}

TEST(ScheduleTiled, VisitsEachTileContiguously) {
  ScheduleOptions opts;
  opts.policy = SchedulePolicy::kTiled;
  opts.tile_kb = 4;  // tiny budget -> many tiles even on a small slice
  const std::uint32_t k = 32;
  const RatingScheduler sched(opts, k);

  RatingMatrix m = slice_like(100, 64, 64, 2000, 3);
  const auto before = multiset_of(m);
  const ScheduleStats stats = sched.prepare(m, 0);
  EXPECT_EQ(multiset_of(m), before);
  ASSERT_GT(stats.row_span, 0u);
  ASSERT_GT(stats.col_span, 0u);
  EXPECT_GT(stats.tiles, 1u);

  // Every (row-block, col-block) tile must occupy one contiguous run of
  // the entry array — that contiguity IS the cache locality.
  std::uint32_t u_min = m.entries()[0].u;
  for (const auto& e : m.entries()) u_min = std::min(u_min, e.u);
  auto tile_of = [&](const Rating& e) {
    return std::make_pair((e.u - u_min) / stats.row_span,
                          e.i / stats.col_span);
  };
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> last_seen;
  std::set<std::pair<std::uint32_t, std::uint32_t>> closed;
  const auto entries = m.entries();
  std::uint32_t runs = 0;
  for (std::size_t j = 0; j < entries.size(); ++j) {
    const auto t = tile_of(entries[j]);
    if (j == 0 || t != tile_of(entries[j - 1])) {
      ++runs;
      EXPECT_TRUE(closed.insert(t).second)
          << "tile (" << t.first << "," << t.second << ") split across runs";
    }
  }
  EXPECT_EQ(runs, stats.tiles);
}

TEST(ScheduleTiled, StableWithinTileAndSeededAcrossEpochs) {
  ScheduleOptions opts;
  opts.policy = SchedulePolicy::kTiled;
  opts.tile_kb = 8;
  const RatingScheduler sched(opts, 32);

  RatingMatrix a = slice_like(0, 48, 48, 1200, 4);
  RatingMatrix b = slice_like(0, 48, 48, 1200, 4);
  const std::vector<Rating> original(a.entries().begin(), a.entries().end());
  const ScheduleStats stats = sched.prepare(a, 0);
  sched.prepare(b, 0);
  const auto ea = a.entries();
  const auto eb = b.entries();
  for (std::size_t j = 0; j < ea.size(); ++j) {
    ASSERT_EQ(ea[j], eb[j]) << "same (seed, epoch) must tile identically";
  }

  // Stability: within one tile, entries keep their original relative
  // order.  Map each entry back to its original position and check the
  // positions rise monotonically inside each contiguous tile run.
  std::uint32_t u_min = original[0].u;
  for (const auto& e : original) u_min = std::min(u_min, e.u);
  auto tile_of = [&](const Rating& e) {
    return std::make_pair((e.u - u_min) / stats.row_span,
                          e.i / stats.col_span);
  };
  // Duplicate entries are possible; consume original positions in order.
  std::map<std::tuple<std::uint32_t, std::uint32_t, float>,
           std::vector<std::size_t>>
      positions;
  for (std::size_t j = 0; j < original.size(); ++j) {
    positions[{original[j].u, original[j].i, original[j].r}].push_back(j);
  }
  std::size_t prev_pos = 0;
  for (std::size_t j = 0; j < ea.size(); ++j) {
    auto& avail = positions[{ea[j].u, ea[j].i, ea[j].r}];
    ASSERT_FALSE(avail.empty());
    const std::size_t pos = avail.front();
    avail.erase(avail.begin());
    if (j > 0 && tile_of(ea[j]) == tile_of(ea[j - 1])) {
      EXPECT_GT(pos, prev_pos) << "within-tile order not stable at " << j;
    }
    prev_pos = pos;
  }
}

TEST(ScheduleTiled, ZorderKeepsTilesContiguous) {
  ScheduleOptions opts;
  opts.policy = SchedulePolicy::kTiled;
  opts.tile_kb = 8;
  opts.zorder = true;
  const RatingScheduler sched(opts, 32);
  RatingMatrix m = slice_like(0, 48, 48, 1500, 5);
  const auto before = multiset_of(m);
  const ScheduleStats stats = sched.prepare(m, 0);
  EXPECT_EQ(multiset_of(m), before);
  std::uint32_t u_min = m.entries()[0].u;
  for (const auto& e : m.entries()) u_min = std::min(u_min, e.u);
  auto tile_of = [&](const Rating& e) {
    return std::make_pair((e.u - u_min) / stats.row_span,
                          e.i / stats.col_span);
  };
  std::set<std::pair<std::uint32_t, std::uint32_t>> closed;
  const auto entries = m.entries();
  for (std::size_t j = 0; j < entries.size(); ++j) {
    const auto t = tile_of(entries[j]);
    if (j == 0 || t != tile_of(entries[j - 1])) {
      EXPECT_TRUE(closed.insert(t).second) << "tile split at " << j;
    }
  }
}

TEST(ScheduleTiled, HandlesDegenerateSlices) {
  ScheduleOptions opts;
  opts.policy = SchedulePolicy::kTiled;
  const RatingScheduler sched(opts, 16);

  RatingMatrix empty(10, 10);
  ScheduleStats stats = sched.prepare(empty, 0);
  EXPECT_EQ(stats.tiles, 0u);
  EXPECT_EQ(empty.nnz(), 0u);

  RatingMatrix single(10, 10);
  single.add(3, 7, 4.0f);
  stats = sched.prepare(single, 0);
  EXPECT_EQ(stats.tiles, 1u);
  ASSERT_EQ(single.nnz(), 1u);
  EXPECT_EQ(single.entries()[0], (Rating{3, 7, 4.0f}));
}

TEST(ScheduleTiled, GrowsSpansWhenBudgetIsDegenerate) {
  // A 1 KiB budget at k=128 buys exactly one row per side; against a wide
  // slice the scheduler must grow the spans instead of allocating a tile
  // table far larger than the entry count.
  ScheduleOptions opts;
  opts.policy = SchedulePolicy::kTiled;
  opts.tile_kb = 1;
  const RatingScheduler sched(opts, 128);
  RatingMatrix m = slice_like(0, 2000, 2000, 100, 6);
  const ScheduleStats stats = sched.prepare(m, 0);
  EXPECT_EQ(m.nnz(), 100u);
  EXPECT_GE(stats.row_span, 1u);
  // The doubling loop bounds bookkeeping at O(max(nnz, 1024)) tiles.
  const std::uint64_t row_tiles = (2000 + stats.row_span - 1) / stats.row_span;
  const std::uint64_t col_tiles = (2000 + stats.col_span - 1) / stats.col_span;
  EXPECT_LE(row_tiles * col_tiles, 1024u * 4);
}

TEST(ScheduleSpans, TrackCacheBudget) {
  // The budget buys Q rows: col_span = tile_kb KiB / (k * 4 B).  P streams
  // within a tile, so row_span is a fixed 32x aspect over col_span — tall
  // tiles are what give each resident Q row multiple touches at sparse
  // rating densities.
  EXPECT_EQ(RatingScheduler::tile_spans(1024, 128).second, 2048u);
  EXPECT_EQ(RatingScheduler::tile_spans(1024, 128).first, 65536u);
  EXPECT_EQ(RatingScheduler::tile_spans(512, 128).second, 1024u);
  EXPECT_EQ(RatingScheduler::tile_spans(512, 128).first, 32768u);
  EXPECT_EQ(RatingScheduler::tile_spans(64, 128).second, 128u);
  EXPECT_EQ(RatingScheduler::tile_spans(64, 128).first, 4096u);
  // Floors at 1 column even when a single row exceeds the budget...
  EXPECT_EQ(RatingScheduler::tile_spans(0, 128).second, 1u);
  EXPECT_EQ(RatingScheduler::tile_spans(0, 128).first, 32u);
  // ... and caps at the 16-bit Z-order key width.
  EXPECT_EQ(RatingScheduler::tile_spans(1u << 20, 1).second, 65536u);
  EXPECT_EQ(RatingScheduler::tile_spans(1u << 20, 1).first, 65536u);
}

}  // namespace
}  // namespace hcc::data
