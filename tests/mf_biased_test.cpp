// Tests for the biased-MF extension.
#include "mf/biased.hpp"

#include <gtest/gtest.h>

#include "data/datasets.hpp"
#include "mf/metrics.hpp"
#include "mf/trainer.hpp"

namespace hcc::mf {
namespace {

TEST(BiasedModel, PredictAddsAllTerms) {
  BiasedModel m(2, 2, 1);
  util::Rng rng(1);
  m.init_random(rng, 3.0f);
  m.user_bias(0) = 0.5f;
  m.item_bias(1) = -0.25f;
  const float factors = m.predict(0, 1) - 3.0f - 0.5f + 0.25f;
  m.p(0)[0] = 2.0f;
  m.q(1)[0] = 0.5f;
  EXPECT_FLOAT_EQ(m.predict(0, 1), 3.0f + 0.5f - 0.25f + 1.0f);
  (void)factors;
}

TEST(BiasedModel, InitCentersOnMean) {
  BiasedModel m(50, 50, 8);
  util::Rng rng(2);
  m.init_random(rng, 3.7f);
  EXPECT_FLOAT_EQ(m.global_bias(), 3.7f);
  double sum = 0.0;
  for (std::uint32_t u = 0; u < 50; ++u) sum += m.predict(u, u);
  EXPECT_NEAR(sum / 50.0, 3.7, 0.1);  // zero-mean factors, zero biases
}

TEST(BiasedUpdate, ReducesErrorAndMovesBiases) {
  BiasedModel m(1, 1, 4);
  util::Rng rng(3);
  m.init_random(rng, 3.0f);
  const float err0 = biased_sgd_update(m, 0, 0, 5.0f, 0.1f, 0.01f, 0.01f);
  EXPECT_NEAR(err0, 2.0f, 0.2f);   // 5 - ~3
  EXPECT_GT(m.user_bias(0), 0.0f); // pushed toward the positive residual
  EXPECT_GT(m.item_bias(0), 0.0f);
  float err = err0;
  for (int step = 0; step < 100; ++step) {
    err = biased_sgd_update(m, 0, 0, 5.0f, 0.1f, 0.01f, 0.01f);
  }
  EXPECT_LT(std::abs(err), 0.1f);
}

TEST(BiasedSgd, BeatsPlainModelOnBiasHeavyData) {
  // Planted user/item offsets dominate the signal: the bias-aware model
  // should reach a visibly lower RMSE at the same budget.
  data::DatasetSpec spec = data::movielens20m_spec().scaled(0.002);
  data::GeneratorConfig gen;
  gen.seed = 5;
  gen.planted_rank = 2;
  gen.user_bias_stddev = 0.8f;
  gen.item_bias_stddev = 0.8f;
  const auto full = data::generate(spec, gen);
  util::Rng rng(6);
  const auto [train, test] = data::train_test_split(full, 0.1, rng);

  SgdConfig config = SgdConfig::for_dataset(0.02f, 0.01f, 8);
  config.epochs = 10;

  BiasedModel biased(spec.m, spec.n, 8);
  util::Rng r1(7);
  biased.init_random(r1, 2.5f);
  BiasedSgd biased_trainer(config);
  for (std::uint32_t e = 0; e < config.epochs; ++e) {
    biased_trainer.train_epoch(biased, train);
  }

  FactorModel plain(spec.m, spec.n, 8);
  util::Rng r2(7);
  plain.init_random(r2, 2.5f);
  SerialSgd plain_trainer(config);
  for (std::uint32_t e = 0; e < config.epochs; ++e) {
    plain_trainer.train_epoch(plain, train);
  }

  const double biased_rmse = rmse(biased, test);
  const double plain_rmse = rmse(plain, test);
  EXPECT_LT(biased_rmse, plain_rmse);
}

TEST(BiasedSgd, ConvergesOnStandardData) {
  data::DatasetSpec spec = data::movielens20m_spec().scaled(0.002);
  data::GeneratorConfig gen;
  gen.seed = 8;
  const auto ratings = data::generate(spec, gen);

  BiasedModel m(spec.m, spec.n, 8);
  util::Rng rng(9);
  m.init_random(rng, 2.5f);
  SgdConfig config = SgdConfig::for_dataset(0.02f, 0.01f, 8);
  BiasedSgd trainer(config);
  const double before = rmse(m, ratings);
  for (int e = 0; e < 8; ++e) trainer.train_epoch(m, ratings);
  EXPECT_LT(rmse(m, ratings), 0.6 * before);
}

TEST(Generator, PlantedBiasesWidenRatingSpread) {
  data::DatasetSpec spec = data::movielens20m_spec().scaled(0.002);
  data::GeneratorConfig plain_gen;
  plain_gen.seed = 10;
  data::GeneratorConfig biased_gen = plain_gen;
  biased_gen.user_bias_stddev = 1.0f;
  biased_gen.item_bias_stddev = 1.0f;

  auto spread = [](const data::RatingMatrix& m) {
    double mean = 0.0;
    for (const auto& e : m.entries()) mean += e.r;
    mean /= static_cast<double>(m.nnz());
    double var = 0.0;
    for (const auto& e : m.entries()) {
      var += (e.r - mean) * (e.r - mean);
    }
    return var / static_cast<double>(m.nnz());
  };
  EXPECT_GT(spread(data::generate(spec, biased_gen)),
            spread(data::generate(spec, plain_gen)));
}

}  // namespace
}  // namespace hcc::mf
