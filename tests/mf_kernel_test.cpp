// Tests for the factor model and the SGD update kernel.
#include "mf/model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "data/datasets.hpp"
#include "mf/metrics.hpp"
#include "util/rng.hpp"

namespace hcc::mf {
namespace {

TEST(FactorModel, AllocatesZeroed) {
  const FactorModel m(10, 5, 4);
  EXPECT_EQ(m.users(), 10u);
  EXPECT_EQ(m.items(), 5u);
  EXPECT_EQ(m.k(), 4u);
  EXPECT_EQ(m.p_data().size(), 40u);
  EXPECT_EQ(m.q_data().size(), 20u);
  for (float v : m.p_data()) EXPECT_EQ(v, 0.0f);
  EXPECT_EQ(m.predict(3, 2), 0.0f);
}

TEST(FactorModel, RandomInitLandsNearMeanRating) {
  FactorModel m(200, 200, 16);
  util::Rng rng(4);
  m.init_random(rng, 3.0f);
  // E[p_f q_f] = scale^2/4 per term (uniform [0, scale)); prediction mean
  // = k * (sqrt(mean/k)/2)^2 = mean/4 — the standard init keeps initial
  // predictions at the rating scale's order of magnitude.
  double sum = 0.0;
  for (std::uint32_t u = 0; u < 200; ++u) sum += m.predict(u, u);
  EXPECT_NEAR(sum / 200.0, 0.75, 0.25);
  for (float v : m.p_data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, std::sqrt(3.0f / 16.0f));
  }
}

TEST(FactorModel, RowAccessorsAreConsistent) {
  FactorModel m(3, 3, 2);
  m.p(1)[0] = 1.5f;
  m.p(1)[1] = 2.5f;
  m.q(2)[0] = 2.0f;
  m.q(2)[1] = 4.0f;
  EXPECT_FLOAT_EQ(m.p_data()[2], 1.5f);
  EXPECT_FLOAT_EQ(m.p_data()[3], 2.5f);
  EXPECT_FLOAT_EQ(m.predict(1, 2), 1.5f * 2.0f + 2.5f * 4.0f);
}

TEST(SgdUpdate, ReturnsPreUpdateError) {
  std::vector<float> p{1.0f, 0.0f};
  std::vector<float> q{1.0f, 1.0f};
  const float err =
      sgd_update(p.data(), q.data(), 2, 3.0f, 0.0f, 0.0f, 0.0f);
  EXPECT_FLOAT_EQ(err, 2.0f);  // 3 - <p,q> = 3 - 1
  // lr = 0: no movement.
  EXPECT_FLOAT_EQ(p[0], 1.0f);
  EXPECT_FLOAT_EQ(q[1], 1.0f);
}

TEST(SgdUpdate, MatchesHandComputedStep) {
  std::vector<float> p{0.5f, 0.5f};
  std::vector<float> q{1.0f, 2.0f};
  const float lr = 0.1f;
  const float reg = 0.01f;
  // err = 4 - (0.5 + 1.0) = 2.5
  const float err = sgd_update(p.data(), q.data(), 2, 4.0f, lr, reg, reg);
  EXPECT_FLOAT_EQ(err, 2.5f);
  // p0' = 0.5 + 0.1*(2.5*1.0 - 0.01*0.5) = 0.7495
  EXPECT_NEAR(p[0], 0.7495f, 1e-6);
  // q0' = 1.0 + 0.1*(2.5*0.5 - 0.01*1.0) = 1.124 (uses the pre-update p)
  EXPECT_NEAR(q[0], 1.124f, 1e-6);
  // p1' = 0.5 + 0.1*(2.5*2.0 - 0.005) = 0.9995
  EXPECT_NEAR(p[1], 0.9995f, 1e-6);
  // q1' = 2.0 + 0.1*(2.5*0.5 - 0.02) = 2.123
  EXPECT_NEAR(q[1], 2.123f, 1e-6);
}

TEST(SgdUpdate, ReducesSquaredErrorOnRepetition) {
  util::Rng rng(9);
  std::vector<float> p(8), q(8);
  for (auto& v : p) v = static_cast<float>(rng.uniform());
  for (auto& v : q) v = static_cast<float>(rng.uniform());
  float prev = std::abs(sgd_update(p.data(), q.data(), 8, 4.0f, 0.05f,
                                   0.001f, 0.001f));
  for (int step = 0; step < 50; ++step) {
    const float err = std::abs(
        sgd_update(p.data(), q.data(), 8, 4.0f, 0.05f, 0.001f, 0.001f));
    EXPECT_LE(err, prev + 1e-5);
    prev = err;
  }
  EXPECT_LT(prev, 0.05f);
}

TEST(SgdUpdate, RegularizationShrinksUnusedDirections) {
  // With r exactly predicted (err = 0), only the L2 term acts.
  std::vector<float> p{2.0f};
  std::vector<float> q{0.0f};
  sgd_update(p.data(), q.data(), 1, 0.0f, 0.1f, 0.5f, 0.5f);
  EXPECT_FLOAT_EQ(p[0], 2.0f - 0.1f * 0.5f * 2.0f);
}

TEST(Metrics, RmseOfPerfectModelIsZero) {
  FactorModel m(2, 2, 2);
  m.p(0)[0] = 1.0f;
  m.q(0)[0] = 3.0f;
  data::RatingMatrix r(2, 2);
  r.add(0, 0, 3.0f);
  EXPECT_DOUBLE_EQ(rmse(m, r), 0.0);
}

TEST(Metrics, RmseMatchesHandValue) {
  FactorModel m(2, 2, 1);
  m.p(0)[0] = 1.0f;
  m.p(1)[0] = 1.0f;
  m.q(0)[0] = 1.0f;
  m.q(1)[0] = 2.0f;
  data::RatingMatrix r(2, 2);
  r.add(0, 0, 2.0f);  // err 1
  r.add(1, 1, 4.0f);  // err 2
  EXPECT_NEAR(rmse(m, r), std::sqrt((1.0 + 4.0) / 2.0), 1e-12);
}

TEST(Metrics, ParallelRmseMatchesSerial) {
  const data::DatasetSpec spec = data::movielens20m_spec().scaled(0.001);
  const data::RatingMatrix r = data::generate(spec, data::GeneratorConfig{});
  FactorModel m(spec.m, spec.n, 8);
  util::Rng rng(2);
  m.init_random(rng, 2.5f);
  util::ThreadPool pool(3);
  EXPECT_NEAR(rmse(m, r), rmse(m, r, pool), 1e-9);
}

TEST(Metrics, RmseOfEmptySetIsZero) {
  const FactorModel m(2, 2, 2);
  EXPECT_DOUBLE_EQ(rmse(m, data::RatingMatrix(2, 2)), 0.0);
}

TEST(Metrics, ObjectiveIncludesRegularization) {
  FactorModel m(1, 1, 1);
  m.p(0)[0] = 2.0f;
  m.q(0)[0] = 1.0f;
  data::RatingMatrix r(1, 1);
  r.add(0, 0, 3.0f);
  // loss = (3-2)^2 = 1; reg = 0.5*(4) + 0.5*(1) = 2.5
  EXPECT_NEAR(objective(m, r, 0.5f, 0.5f), 3.5, 1e-9);
}

}  // namespace
}  // namespace hcc::mf
