// Tests for the MovieLens ratings.csv loader.
#include "data/movielens_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace hcc::data {
namespace {

class MovieLensTest : public ::testing::Test {
 protected:
  void TearDown() override { std::filesystem::remove(path_); }
  void write(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }
  std::string path_ = "/tmp/hccmf_ml_test.csv";
};

TEST_F(MovieLensTest, ParsesHeaderAndDensifiesIds) {
  write(
      "userId,movieId,rating,timestamp\n"
      "1,31,2.5,1260759144\n"
      "1,1029,3.0,1260759179\n"
      "7,31,4.0,851868750\n");
  const MovieLensData ml = load_movielens_csv(path_);
  EXPECT_EQ(ml.ratings.rows(), 2u);  // users 1, 7
  EXPECT_EQ(ml.ratings.cols(), 2u);  // movies 31, 1029
  EXPECT_EQ(ml.ratings.nnz(), 3u);
  EXPECT_EQ(ml.user_ids, (std::vector<std::uint64_t>{1, 7}));
  EXPECT_EQ(ml.item_ids, (std::vector<std::uint64_t>{31, 1029}));
  // The shared movie 31 maps both occurrences onto dense column 0.
  EXPECT_EQ(ml.ratings.entries()[0].i, ml.ratings.entries()[2].i);
  EXPECT_FLOAT_EQ(ml.ratings.entries()[2].r, 4.0f);
}

TEST_F(MovieLensTest, WorksWithoutHeaderAndTimestamp) {
  write("3,5,1.5\n4,5,2.0\n");
  const MovieLensData ml = load_movielens_csv(path_);
  EXPECT_EQ(ml.ratings.nnz(), 2u);
  EXPECT_EQ(ml.ratings.rows(), 2u);
  EXPECT_EQ(ml.ratings.cols(), 1u);
}

TEST_F(MovieLensTest, SkipsEmptyLines) {
  write("1,2,3.0\n\n2,2,4.0\n");
  EXPECT_EQ(load_movielens_csv(path_).ratings.nnz(), 2u);
}

TEST_F(MovieLensTest, RejectsMalformedRows) {
  write("1,2\n");
  EXPECT_THROW(load_movielens_csv(path_), std::runtime_error);
  write("one,2,3.0\n");
  EXPECT_THROW(load_movielens_csv(path_), std::runtime_error);
  write("1,2,high\n");
  EXPECT_THROW(load_movielens_csv(path_), std::runtime_error);
}

TEST_F(MovieLensTest, MissingFileThrows) {
  EXPECT_THROW(load_movielens_csv("/tmp/definitely_missing_ml.csv"),
               std::runtime_error);
}

TEST_F(MovieLensTest, SaveLoadRoundTrip) {
  write(
      "userId,movieId,rating,timestamp\n"
      "10,100,4.5,1\n"
      "20,200,0.5,2\n"
      "10,200,3.0,3\n");
  const MovieLensData ml = load_movielens_csv(path_);
  const std::string out_path = "/tmp/hccmf_ml_roundtrip.csv";
  ASSERT_TRUE(
      save_movielens_csv(ml.ratings, ml.user_ids, ml.item_ids, out_path));
  const MovieLensData again = load_movielens_csv(out_path);
  ASSERT_EQ(again.ratings.nnz(), ml.ratings.nnz());
  EXPECT_EQ(again.user_ids, ml.user_ids);
  EXPECT_EQ(again.item_ids, ml.item_ids);
  for (std::size_t i = 0; i < ml.ratings.nnz(); ++i) {
    EXPECT_EQ(again.ratings.entries()[i], ml.ratings.entries()[i]);
  }
  std::filesystem::remove(out_path);
}

}  // namespace
}  // namespace hcc::data
