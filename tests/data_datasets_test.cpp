// Tests for the dataset catalogue and the synthetic generator.
#include "data/datasets.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>

namespace hcc::data {
namespace {

TEST(DatasetSpecs, MatchTable3) {
  const DatasetSpec nf = netflix_spec();
  EXPECT_EQ(nf.m, 480190u);
  EXPECT_EQ(nf.n, 17771u);
  EXPECT_EQ(nf.nnz, 99072112u);
  EXPECT_FLOAT_EQ(nf.reg_lambda, 0.01f);

  const DatasetSpec r1 = yahoo_r1_spec();
  EXPECT_EQ(r1.m, 1948883u);
  EXPECT_EQ(r1.n, 1101750u);
  EXPECT_EQ(r1.nnz, 115579437u);
  EXPECT_FLOAT_EQ(r1.reg_lambda, 1.0f);

  EXPECT_EQ(yahoo_r1_star_spec().nnz, 199999997u);
  EXPECT_EQ(yahoo_r2_spec().nnz, 383838609u);
  EXPECT_EQ(movielens20m_spec().nnz, 20000260u);
  EXPECT_EQ(paper_datasets().size(), 5u);
}

TEST(DatasetSpecs, LookupByName) {
  EXPECT_EQ(dataset_by_name("Netflix").name, "netflix");
  EXPECT_EQ(dataset_by_name("R1").name, "r1");
  EXPECT_EQ(dataset_by_name("r1*").name, "r1star");
  EXPECT_EQ(dataset_by_name("movielens-20m").name, "movielens");
  EXPECT_THROW(dataset_by_name("nope"), std::invalid_argument);
}

TEST(DatasetSpecs, NnzPerDimFlagsCommBoundDatasets) {
  // Section 3.4: comm ~ compute when nnz/(m+n) is small.  MovieLens and R1
  // are the paper's communication-bound cases.
  EXPECT_GT(netflix_spec().nnz_per_dim(), 150.0);
  EXPECT_GT(yahoo_r2_spec().nnz_per_dim(), 300.0);
  EXPECT_LT(yahoo_r1_spec().nnz_per_dim(), 50.0);
  EXPECT_LT(movielens20m_spec().nnz_per_dim(), 100.0);
}

TEST(DatasetSpecs, ScaledPreservesAspect) {
  const DatasetSpec nf = netflix_spec();
  const DatasetSpec small = nf.scaled(0.01);
  EXPECT_LT(small.m, nf.m);
  EXPECT_LT(small.nnz, nf.nnz);
  // nnz/(m+n) is the decision quantity; keep it the same order of magnitude.
  EXPECT_NEAR(small.nnz_per_dim() / nf.nnz_per_dim(), 1.0, 0.5);
  EXPECT_NE(small.name.find("netflix@"), std::string::npos);
}

TEST(DatasetSpecs, ScaledClampedToMinimums) {
  const DatasetSpec tiny = netflix_spec().scaled(1e-9);
  EXPECT_GE(tiny.m, 16u);
  EXPECT_GE(tiny.n, 16u);
  EXPECT_GE(tiny.nnz, 256u);
}

TEST(Generator, RespectsSpecDimensions) {
  DatasetSpec spec = netflix_spec().scaled(0.001);
  GeneratorConfig config;
  config.seed = 1;
  const RatingMatrix m = generate(spec, config);
  EXPECT_EQ(m.rows(), spec.m);
  EXPECT_EQ(m.cols(), spec.n);
  EXPECT_EQ(m.nnz(), spec.nnz);
  for (const auto& e : m.entries()) {
    EXPECT_LT(e.u, spec.m);
    EXPECT_LT(e.i, spec.n);
    EXPECT_GE(e.r, spec.rating_min);
    EXPECT_LE(e.r, spec.rating_max);
  }
}

TEST(Generator, QuantizesToHalfSteps) {
  DatasetSpec spec = netflix_spec().scaled(0.001);
  GeneratorConfig config;
  config.quantize_half_steps = true;
  const RatingMatrix m = generate(spec, config);
  for (const auto& e : m.entries()) {
    const float steps = (e.r - spec.rating_min) / 0.5f;
    EXPECT_NEAR(steps, std::round(steps), 1e-4) << "rating " << e.r;
  }
}

TEST(Generator, DeterministicForSeed) {
  DatasetSpec spec = movielens20m_spec().scaled(0.001);
  GeneratorConfig config;
  config.seed = 77;
  const RatingMatrix a = generate(spec, config);
  const RatingMatrix b = generate(spec, config);
  ASSERT_EQ(a.nnz(), b.nnz());
  for (std::size_t i = 0; i < a.nnz(); ++i) {
    EXPECT_EQ(a.entries()[i], b.entries()[i]);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  DatasetSpec spec = movielens20m_spec().scaled(0.001);
  GeneratorConfig ca;
  ca.seed = 1;
  GeneratorConfig cb;
  cb.seed = 2;
  const RatingMatrix a = generate(spec, ca);
  const RatingMatrix b = generate(spec, cb);
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.nnz(); ++i) {
    same += (a.entries()[i] == b.entries()[i]);
  }
  EXPECT_LT(same, a.nnz() / 10);
}

TEST(Generator, PopularitySkewIsZipfLike) {
  DatasetSpec spec = netflix_spec().scaled(0.002);
  GeneratorConfig config;
  config.zipf_item = 1.0;
  const RatingMatrix m = generate(spec, config);
  auto counts = m.col_counts();
  std::sort(counts.begin(), counts.end(), std::greater<>());
  // Head items should dominate the tail heavily: under Zipf(1.0) the top
  // quarter of items carries well over half the ratings.
  std::size_t head = 0;
  for (std::size_t i = 0; i < counts.size() / 4; ++i) head += counts[i];
  EXPECT_GT(static_cast<double>(head), 0.5 * static_cast<double>(m.nnz()));
}

TEST(TrainTestSplit, PartitionsAllEntries) {
  DatasetSpec spec = movielens20m_spec().scaled(0.001);
  GeneratorConfig config;
  const RatingMatrix m = generate(spec, config);
  util::Rng rng(5);
  const auto [train, test] = train_test_split(m, 0.2, rng);
  EXPECT_EQ(train.nnz() + test.nnz(), m.nnz());
  EXPECT_EQ(train.rows(), m.rows());
  EXPECT_EQ(test.cols(), m.cols());
  const double frac =
      static_cast<double>(test.nnz()) / static_cast<double>(m.nnz());
  EXPECT_NEAR(frac, 0.2, 0.05);
}

TEST(TrainTestSplit, ZeroHoldoutKeepsEverything) {
  DatasetSpec spec = movielens20m_spec().scaled(0.001);
  const RatingMatrix m = generate(spec, GeneratorConfig{});
  util::Rng rng(5);
  const auto [train, test] = train_test_split(m, 0.0, rng);
  EXPECT_EQ(train.nnz(), m.nnz());
  EXPECT_EQ(test.nnz(), 0u);
}

}  // namespace
}  // namespace hcc::data
