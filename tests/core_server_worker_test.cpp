// Tests for the functional Server / TrainWorker protocol.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/server.hpp"
#include "core/worker.hpp"
#include "data/datasets.hpp"
#include "mf/metrics.hpp"

namespace hcc::core {
namespace {

comm::CommConfig fp32_comm() {
  comm::CommConfig c;
  c.fp16 = false;
  return c;
}

mf::FactorModel small_model(std::uint32_t users = 10, std::uint32_t items = 6,
                            std::uint32_t k = 4) {
  mf::FactorModel m(users, items, k);
  util::Rng rng(3);
  m.init_random(rng, 3.0f);
  return m;
}

TEST(Server, SyncAppliesDeltaExactly) {
  Server server(small_model(), fp32_comm());
  const std::vector<float> before(server.model().q_data().begin(),
                                  server.model().q_data().end());
  std::vector<float> snapshot = before;
  std::vector<float> pushed = before;
  pushed[5] += 0.25f;
  pushed[11] -= 0.5f;
  server.sync_q(pushed, snapshot);
  EXPECT_FLOAT_EQ(server.model().q_data()[5], before[5] + 0.25f);
  EXPECT_FLOAT_EQ(server.model().q_data()[11], before[11] - 0.5f);
  EXPECT_FLOAT_EQ(server.model().q_data()[0], before[0]);
  EXPECT_EQ(server.sync_count(), 1u);
}

TEST(Server, TwoWorkerDeltasAccumulate) {
  Server server(small_model(), fp32_comm());
  const std::vector<float> snapshot(server.model().q_data().begin(),
                                    server.model().q_data().end());
  std::vector<float> push_a = snapshot;
  std::vector<float> push_b = snapshot;
  push_a[3] += 1.0f;
  push_b[3] += 2.0f;
  server.sync_q(push_a, snapshot);
  server.sync_q(push_b, snapshot);
  // WAW race resolved: both updates land, none is lost.
  EXPECT_FLOAT_EQ(server.model().q_data()[3], snapshot[3] + 3.0f);
  EXPECT_EQ(server.sync_count(), 2u);
}

TEST(Server, RoundtripPQuantizesUnderFp16) {
  comm::CommConfig fp16;
  fp16.fp16 = true;
  Server server(small_model(), fp16);
  server.model().p(0)[0] = 0.123456789f;
  server.roundtrip_p_through_codec();
  const float v = server.model().p(0)[0];
  EXPECT_NE(v, 0.123456789f);         // quantized
  EXPECT_NEAR(v, 0.123456789f, 1e-4); // but close
}

TEST(Server, RoundtripPIsIdentityUnderFp32) {
  Server server(small_model(), fp32_comm());
  const float before = server.model().p(2)[1];
  server.roundtrip_p_through_codec();
  EXPECT_EQ(server.model().p(2)[1], before);
}

data::RatingMatrix two_row_slice(std::uint32_t row_begin, float value) {
  data::RatingMatrix slice(10, 6);
  for (std::uint32_t i = 0; i < 6; ++i) {
    slice.add(row_begin, i, value);
    slice.add(row_begin + 1, 5 - i, value);
  }
  return slice;
}

TEST(Worker, PullComputePushRoundTripUpdatesGlobalModel) {
  Server server(small_model(), fp32_comm());
  const double before =
      mf::rmse(server.model(), two_row_slice(0, 4.0f));
  TrainWorker worker(0, "test-dev", two_row_slice(0, 4.0f), fp32_comm());
  for (int epoch = 0; epoch < 30; ++epoch) {
    worker.pull(server);
    worker.compute_chunk(server, 0, 0.05f, 0.001f, 0.001f, nullptr);
    worker.push(server);
  }
  const double after = mf::rmse(server.model(), two_row_slice(0, 4.0f));
  EXPECT_LT(after, 0.5 * before);
}

TEST(Worker, OnlyTouchesItsOwnPRows) {
  Server server(small_model(), fp32_comm());
  const std::vector<float> p_before(server.model().p_data().begin(),
                                    server.model().p_data().end());
  TrainWorker worker(0, "dev", two_row_slice(4, 3.0f), fp32_comm());
  worker.pull(server);
  worker.compute_chunk(server, 0, 0.05f, 0.001f, 0.001f, nullptr);
  worker.push(server);
  const auto p_after = server.model().p_data();
  const std::uint32_t k = server.model().k();
  for (std::uint32_t u = 0; u < 10; ++u) {
    const bool owned = (u == 4 || u == 5);
    for (std::uint32_t f = 0; f < k; ++f) {
      const std::size_t idx = std::size_t(u) * k + f;
      if (owned) continue;  // owned rows may change
      EXPECT_EQ(p_after[idx], p_before[idx]) << "foreign P row touched: " << u;
    }
  }
}

TEST(Worker, ChunkedComputeCoversAllEntries) {
  // streams = 3: the three chunks together must process every entry —
  // verified by comparing against a 1-stream worker on the same seed.
  Server s1(small_model(), fp32_comm());
  Server s3(small_model(), fp32_comm());
  TrainWorker w1(0, "dev", two_row_slice(0, 4.0f), fp32_comm(), 1);
  TrainWorker w3(0, "dev", two_row_slice(0, 4.0f), fp32_comm(), 3);

  w1.pull(s1);
  w1.compute_chunk(s1, 0, 0.05f, 0.0f, 0.0f, nullptr);
  w1.push(s1);

  w3.pull(s3);
  for (std::uint32_t c = 0; c < 3; ++c) {
    w3.compute_chunk(s3, c, 0.05f, 0.0f, 0.0f, nullptr);
  }
  w3.push(s3);

  // Identical serial update sequence -> identical models.
  const auto q1 = s1.model().q_data();
  const auto q3 = s3.model().q_data();
  for (std::size_t j = 0; j < q1.size(); ++j) EXPECT_FLOAT_EQ(q1[j], q3[j]);
}

TEST(Worker, CommStatsCountWireTraffic) {
  Server server(small_model(), fp32_comm());
  TrainWorker worker(0, "dev", two_row_slice(0, 4.0f), fp32_comm());
  worker.pull(server);
  worker.push(server);
  const auto& stats = worker.comm_stats();
  // One pull + one push of the whole Q (6 items x k=4 floats x 4 bytes).
  EXPECT_EQ(stats.wire_bytes, 2u * 6u * 4u * 4u);
  EXPECT_EQ(stats.copies, 2u);
}

TEST(Worker, Fp16PushStillConverges) {
  comm::CommConfig fp16;
  fp16.fp16 = true;
  Server server(small_model(), fp16);
  TrainWorker worker(0, "dev", two_row_slice(0, 4.0f), fp16);
  const double before = mf::rmse(server.model(), two_row_slice(0, 4.0f));
  for (int epoch = 0; epoch < 30; ++epoch) {
    worker.pull(server);
    worker.compute_chunk(server, 0, 0.05f, 0.001f, 0.001f, nullptr);
    worker.push(server);
  }
  EXPECT_LT(mf::rmse(server.model(), two_row_slice(0, 4.0f)), 0.6 * before);
}

TEST(Worker, AccessorsReportConstruction) {
  TrainWorker worker(7, "2080S", two_row_slice(0, 1.0f), fp32_comm(), 4);
  EXPECT_EQ(worker.id(), 7u);
  EXPECT_EQ(worker.device_name(), "2080S");
  EXPECT_EQ(worker.assigned_nnz(), 12u);
  EXPECT_EQ(worker.streams(), 4u);
}

}  // namespace
}  // namespace hcc::core
