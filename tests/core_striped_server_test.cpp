// Tests for the striped Server merge (concurrent executor support): the
// stripe decomposition must be invisible to the arithmetic, safe under
// concurrent pushes, and skippable via touched-row sets.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "core/epoch_executor.hpp"
#include "core/server.hpp"

namespace hcc::core {
namespace {

comm::CommConfig fp32_comm() {
  comm::CommConfig c;
  c.fp16 = false;
  return c;
}

mf::FactorModel small_model(std::uint32_t users = 8, std::uint32_t items = 12,
                            std::uint32_t k = 4) {
  mf::FactorModel m(users, items, k);
  util::Rng rng(11);
  m.init_random(rng, 3.0f);
  return m;
}

std::vector<float> q_of(const Server& s) {
  return {s.model().q_data().begin(), s.model().q_data().end()};
}

TEST(StripedServer, StripeCountClampedToItems) {
  Server s(small_model(8, 12, 4), fp32_comm(), 1000);
  EXPECT_EQ(s.stripes(), 12u);
  Server s1(small_model(8, 12, 4), fp32_comm());
  EXPECT_EQ(s1.stripes(), 1u);
}

TEST(StripedServer, StripedMergeBitIdenticalToSingleStripe) {
  Server striped(small_model(), fp32_comm(), 5);
  Server legacy(small_model(), fp32_comm(), 1);
  ASSERT_EQ(q_of(striped), q_of(legacy));  // same seed, same init

  const std::vector<float> snapshot = q_of(legacy);
  std::vector<float> pushed = snapshot;
  for (std::size_t j = 0; j < pushed.size(); ++j) {
    pushed[j] += 0.01f * static_cast<float>(j % 7) - 0.02f;
  }
  striped.sync_q(pushed, snapshot, 0.37f);
  legacy.sync_q(pushed, snapshot, 0.37f);
  EXPECT_EQ(q_of(striped), q_of(legacy));

  // Per-item-weight overload too.
  std::vector<float> weights(striped.model().items(), 0.5f);
  weights[3] = 0.0f;
  striped.sync_q(pushed, snapshot, std::span<const float>(weights));
  legacy.sync_q(pushed, snapshot, std::span<const float>(weights));
  EXPECT_EQ(q_of(striped), q_of(legacy));
}

TEST(StripedServer, TouchedSetSkipsNothingWhenDeltasAreSparse) {
  // A merge restricted to the touched rows must equal the full merge when
  // every untouched row carries a zero delta — the worker-side contract.
  Server with_touched(small_model(), fp32_comm(), 4);
  Server full(small_model(), fp32_comm(), 4);
  const std::vector<float> snapshot = q_of(full);
  const std::uint32_t k = full.model().k();

  std::vector<float> pushed = snapshot;
  const std::vector<std::uint32_t> touched = {1, 5, 10};
  for (const std::uint32_t item : touched) {
    for (std::uint32_t f = 0; f < k; ++f) pushed[item * k + f] += 0.5f;
  }
  with_touched.sync_q(pushed, snapshot, 1.0f,
                      std::span<const std::uint32_t>(touched));
  full.sync_q(pushed, snapshot, 1.0f);
  EXPECT_EQ(q_of(with_touched), q_of(full));
}

TEST(StripedServer, ConcurrentDisjointMergesAreExact) {
  // 4 workers, each pushing a delta on its own item range: no two touch
  // the same row, so the result must be exact regardless of interleaving.
  Server server(small_model(8, 12, 4), fp32_comm(), 6);
  const std::vector<float> snapshot = q_of(server);
  const std::uint32_t k = server.model().k();

  std::vector<std::thread> threads;
  for (std::uint32_t w = 0; w < 4; ++w) {
    threads.emplace_back([&, w] {
      std::vector<float> pushed = snapshot;
      std::vector<std::uint32_t> touched;
      for (std::uint32_t item = 3 * w; item < 3 * w + 3; ++item) {
        touched.push_back(item);
        for (std::uint32_t f = 0; f < k; ++f) {
          pushed[item * k + f] += static_cast<float>(w + 1);
        }
      }
      server.sync_q(pushed, snapshot, 1.0f,
                    std::span<const std::uint32_t>(touched));
    });
  }
  for (auto& t : threads) t.join();

  const auto q = server.model().q_data();
  for (std::uint32_t item = 0; item < 12; ++item) {
    const float expect = snapshot[item * k] + static_cast<float>(item / 3 + 1);
    EXPECT_FLOAT_EQ(q[item * k], expect) << "item " << item;
  }
  EXPECT_EQ(server.sync_count(), 4u);
}

TEST(StripedServer, ConcurrentOverlappingDeltasAllLand) {
  // 8 workers all add +1.0 to every Q value against the same snapshot.
  // The stripe locks must make each merge's read-modify-write atomic per
  // stripe, so all 8 deltas land (no lost updates): final = snapshot + 8.
  Server server(small_model(8, 12, 4), fp32_comm(), 3);
  const std::vector<float> snapshot = q_of(server);
  std::vector<float> pushed = snapshot;
  for (auto& v : pushed) v += 1.0f;

  std::vector<std::thread> threads;
  for (int w = 0; w < 8; ++w) {
    threads.emplace_back([&] { server.sync_q(pushed, snapshot, 1.0f); });
  }
  for (auto& t : threads) t.join();

  const auto q = server.model().q_data();
  for (std::size_t j = 0; j < q.size(); ++j) {
    EXPECT_FLOAT_EQ(q[j], snapshot[j] + 8.0f) << "index " << j;
  }
  EXPECT_EQ(server.sync_count(), 8u);
  EXPECT_GE(server.stripe_locks(), 8u * 3u);
}

TEST(StripedServer, ReadQAndGatherRowsMatchTheModel) {
  Server server(small_model(8, 12, 4), fp32_comm(), 4);
  const std::uint32_t k = server.model().k();

  std::vector<float> full;
  server.read_q(full);
  ASSERT_EQ(full.size(), server.model().q_data().size());
  EXPECT_EQ(full, q_of(server));

  const std::vector<std::uint32_t> rows = {0, 4, 7, 11};
  std::vector<float> packed;
  server.gather_q_rows(rows, packed);
  ASSERT_EQ(packed.size(), rows.size() * k);
  for (std::size_t t = 0; t < rows.size(); ++t) {
    for (std::uint32_t f = 0; f < k; ++f) {
      EXPECT_EQ(packed[t * k + f], server.model().q(rows[t])[f]);
    }
  }
}

TEST(StripedServer, ConcurrentReadersSeeConsistentSnapshots) {
  // Readers and writers race on purpose; the test only asserts nothing is
  // torn in a way TSan or the final count would catch.
  Server server(small_model(8, 12, 4), fp32_comm(), 4);
  const std::vector<float> snapshot = q_of(server);
  std::vector<float> pushed = snapshot;
  for (auto& v : pushed) v += 1.0f;

  std::thread writer([&] {
    for (int i = 0; i < 16; ++i) server.sync_q(pushed, snapshot, 0.25f);
  });
  std::thread reader([&] {
    std::vector<float> dst;
    for (int i = 0; i < 16; ++i) server.read_q(dst);
  });
  writer.join();
  reader.join();
  EXPECT_EQ(server.sync_count(), 16u);
}

TEST(StripedServer, ResolveStripesPolicy) {
  ExecOptions serial;
  EXPECT_EQ(resolve_stripes(serial, 1000, 4), 1u);

  ExecOptions par;
  par.mode = ExecMode::kParallel;
  EXPECT_EQ(resolve_stripes(par, 1000, 4), 32u);  // auto: 8 per worker
  EXPECT_EQ(resolve_stripes(par, 10, 4), 10u);    // clamped to items
  par.stripes = 6;
  EXPECT_EQ(resolve_stripes(par, 1000, 4), 6u);   // explicit wins
}

}  // namespace
}  // namespace hcc::core
