// Tests for top-N recommendation, ranking metrics and model serialization.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "data/datasets.hpp"
#include "mf/metrics.hpp"
#include "mf/model_io.hpp"
#include "mf/recommend.hpp"
#include "mf/trainer.hpp"

namespace hcc::mf {
namespace {

// A tiny model with hand-set factors so rankings are predictable:
// predict(u, i) = u_factor * i_factor with i_factor = item index.
FactorModel ladder_model(std::uint32_t users = 3, std::uint32_t items = 6) {
  FactorModel m(users, items, 1);
  for (std::uint32_t u = 0; u < users; ++u) m.p(u)[0] = 1.0f;
  for (std::uint32_t i = 0; i < items; ++i) {
    m.q(i)[0] = static_cast<float>(i);
  }
  return m;
}

TEST(SeenIndex, TracksTrainRatings) {
  data::RatingMatrix train(3, 6);
  train.add(0, 2, 5.0f);
  train.add(0, 4, 3.0f);
  train.add(1, 0, 1.0f);
  const SeenIndex seen(train);
  EXPECT_TRUE(seen.seen(0, 2));
  EXPECT_TRUE(seen.seen(0, 4));
  EXPECT_FALSE(seen.seen(0, 3));
  EXPECT_FALSE(seen.seen(2, 0));
  EXPECT_EQ(seen.count(0), 2u);
  EXPECT_EQ(seen.count(2), 0u);
}

TEST(TopN, RanksByPredictedScore) {
  const FactorModel m = ladder_model();
  const SeenIndex seen(data::RatingMatrix(3, 6));
  const auto recs = top_n(m, seen, 0, 3);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].item, 5u);  // highest i_factor
  EXPECT_EQ(recs[1].item, 4u);
  EXPECT_EQ(recs[2].item, 3u);
  EXPECT_GT(recs[0].score, recs[1].score);
}

TEST(TopN, ExcludesSeenItems) {
  const FactorModel m = ladder_model();
  data::RatingMatrix train(3, 6);
  train.add(0, 5, 5.0f);  // best item already rated
  const SeenIndex seen(train);
  const auto recs = top_n(m, seen, 0, 2);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].item, 4u);
  EXPECT_EQ(recs[1].item, 3u);
}

TEST(TopN, HandlesShortCatalogue) {
  const FactorModel m = ladder_model(1, 2);
  const SeenIndex seen(data::RatingMatrix(1, 2));
  const auto recs = top_n(m, seen, 0, 10);
  EXPECT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].item, 1u);
}

TEST(TopN, ZeroRequestedGivesEmpty) {
  const FactorModel m = ladder_model();
  const SeenIndex seen(data::RatingMatrix(3, 6));
  EXPECT_TRUE(top_n(m, seen, 0, 0).empty());
}

TEST(Mae, MatchesHandValue) {
  const FactorModel m = ladder_model();
  data::RatingMatrix r(3, 6);
  r.add(0, 2, 3.0f);  // |3 - 2| = 1
  r.add(1, 4, 2.0f);  // |2 - 4| = 2
  EXPECT_DOUBLE_EQ(mae(m, r), 1.5);
  EXPECT_DOUBLE_EQ(mae(m, data::RatingMatrix(3, 6)), 0.0);
}

TEST(HitRate, PerfectModelHitsHeldOutFavourites) {
  const FactorModel m = ladder_model();
  data::RatingMatrix train(3, 6);
  train.add(0, 0, 1.0f);
  data::RatingMatrix test(3, 6);
  test.add(0, 5, 5.0f);  // item 5 is the model's top unseen pick
  EXPECT_DOUBLE_EQ(hit_rate_at_n(m, train, test, 1, 4.0f), 1.0);
  // With a tiny n the second-best held-out item misses.
  test.add(0, 2, 5.0f);
  EXPECT_DOUBLE_EQ(hit_rate_at_n(m, train, test, 1, 4.0f), 0.5);
}

TEST(HitRate, IgnoresIrrelevantTestRatings) {
  const FactorModel m = ladder_model();
  const data::RatingMatrix train(3, 6);
  data::RatingMatrix test(3, 6);
  test.add(0, 1, 1.0f);  // below relevant_min: not a trial
  EXPECT_DOUBLE_EQ(hit_rate_at_n(m, train, test, 3, 4.0f), 0.0);
}

TEST(HitRate, TrainedModelBeatsRandomBaseline) {
  const data::DatasetSpec spec = data::movielens20m_spec().scaled(0.002);
  data::GeneratorConfig gen;
  gen.seed = 9;
  gen.planted_rank = 4;
  const auto full = data::generate(spec, gen);
  util::Rng rng(10);
  auto [train, test] = data::train_test_split(full, 0.2, rng);

  FactorModel model(spec.m, spec.n, 8);
  util::Rng mrng(11);
  model.init_random(mrng, 2.5f);
  const std::size_t n = 20;
  const double hr_untrained = hit_rate_at_n(model, train, test, n, 4.0f);

  SgdConfig config = SgdConfig::for_dataset(0.02f, 0.01f, 8);
  SerialSgd trainer(config);
  for (int e = 0; e < 20; ++e) trainer.train_epoch(model, train);
  const double hr = hit_rate_at_n(model, train, test, n, 4.0f);

  // Random guessing hits with probability ~ n / items; training must beat
  // both chance and the untrained starting point.
  const double random_baseline =
      static_cast<double>(n) / static_cast<double>(spec.n);
  EXPECT_GT(hr, random_baseline);
  EXPECT_GT(hr, hr_untrained);
}

TEST(ModelIo, RoundTripsExactly) {
  const std::string path = "/tmp/hccmf_model_io_test.bin";
  FactorModel m(7, 5, 3);
  util::Rng rng(1);
  m.init_random(rng, 3.0f);
  ASSERT_TRUE(save_model(m, path));
  const FactorModel loaded = load_model(path);
  EXPECT_EQ(loaded.users(), 7u);
  EXPECT_EQ(loaded.items(), 5u);
  EXPECT_EQ(loaded.k(), 3u);
  for (std::size_t j = 0; j < m.p_data().size(); ++j) {
    EXPECT_EQ(loaded.p_data()[j], m.p_data()[j]);
  }
  for (std::size_t j = 0; j < m.q_data().size(); ++j) {
    EXPECT_EQ(loaded.q_data()[j], m.q_data()[j]);
  }
  std::filesystem::remove(path);
}

TEST(ModelIo, RejectsCorruptFiles) {
  const std::string path = "/tmp/hccmf_model_io_bad.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "JUNKJUNKJUNK";
  }
  EXPECT_THROW(load_model(path), std::runtime_error);
  std::filesystem::remove(path);
  EXPECT_THROW(load_model("/tmp/definitely_missing_model.bin"),
               std::runtime_error);
}

TEST(ModelIo, RejectsTruncatedFactors) {
  const std::string path = "/tmp/hccmf_model_io_trunc.bin";
  FactorModel m(4, 4, 4);
  ASSERT_TRUE(save_model(m, path));
  std::filesystem::resize_file(path, 40);  // inside the P array
  EXPECT_THROW(load_model(path), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace hcc::mf
