// Cost-model drift report: error math on synthetic inputs, gauge
// publication, formatting, and agreement with the timing engine on a
// jitter-free synthetic platform.
#include "obs/drift.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/cost_model.hpp"
#include "core/hccmf.hpp"
#include "data/datasets.hpp"
#include "obs/metrics.hpp"
#include "sim/timing.hpp"

namespace hcc::obs {
namespace {

TEST(DriftTest, RelativeErrorMath) {
  EXPECT_NEAR(relative_error(1.1, 1.0), 0.1, 1e-12);
  EXPECT_NEAR(relative_error(0.9, 1.0), -0.1, 1e-12);
  EXPECT_DOUBLE_EQ(relative_error(1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(relative_error(0.0, 0.0), 0.0);
  // Absent prediction with a real measurement saturates, stays finite.
  EXPECT_DOUBLE_EQ(relative_error(0.5, 0.0), kMaxRelErr);
  EXPECT_TRUE(std::isfinite(relative_error(1e9, 1e-15)));
}

TEST(DriftTest, ComputeDriftPerPhase) {
  std::vector<PhaseTimes> predicted = {{1.0, 2.0, 1.0, 0.5}};
  std::vector<PhaseTimes> measured = {{1.1, 2.2, 0.9, 0.5}};
  const DriftReport report = compute_drift(predicted, measured);
  ASSERT_EQ(report.workers.size(), 1u);
  const PhaseDrift& e = report.workers[0].rel_err;
  EXPECT_NEAR(e.pull, 0.1, 1e-12);
  EXPECT_NEAR(e.compute, 0.1, 1e-12);
  EXPECT_NEAR(e.push, -0.1, 1e-12);
  EXPECT_NEAR(e.sync, 0.0, 1e-12);
  // total: measured 4.7 vs predicted 4.5.
  EXPECT_NEAR(e.total, 0.2 / 4.5, 1e-12);
  EXPECT_NEAR(report.max_abs_rel_err, 0.1, 1e-12);
  EXPECT_NEAR(report.mean_abs_rel_err, 0.3 / 4.0, 1e-12);
}

TEST(DriftTest, IdleWorkerIsNotDrift) {
  const DriftReport report = compute_drift({{}}, {{}});
  EXPECT_DOUBLE_EQ(report.max_abs_rel_err, 0.0);
  EXPECT_DOUBLE_EQ(report.workers[0].rel_err.total, 0.0);
}

TEST(DriftTest, PublishSetsGauges) {
  MetricsRegistry reg;
  std::vector<PhaseTimes> predicted = {{1.0, 1.0, 1.0, 1.0},
                                       {2.0, 2.0, 2.0, 2.0}};
  std::vector<PhaseTimes> measured = {{1.5, 1.0, 1.0, 1.0},
                                      {2.0, 2.0, 2.0, 1.0}};
  publish_drift(reg, compute_drift(predicted, measured));
  ASSERT_NE(reg.find_gauge("drift.w0.pull_rel_err"), nullptr);
  EXPECT_DOUBLE_EQ(reg.find_gauge("drift.w0.pull_rel_err")->value(), 0.5);
  EXPECT_DOUBLE_EQ(reg.find_gauge("drift.w1.sync_rel_err")->value(), -0.5);
  EXPECT_DOUBLE_EQ(reg.find_gauge("drift.max_abs_rel_err")->value(), 0.5);
  EXPECT_NE(reg.find_gauge("drift.w1.total_rel_err"), nullptr);
}

TEST(DriftTest, FormatShowsPercentages) {
  std::vector<PhaseTimes> predicted = {{1.0, 2.0, 1.0, 0.5}};
  std::vector<PhaseTimes> measured = {{1.1, 2.0, 1.0, 0.5}};
  const std::string text =
      format_drift(compute_drift(predicted, measured), {"2080S"});
  EXPECT_NE(text.find("2080S"), std::string::npos);
  EXPECT_NE(text.find("+10.0%"), std::string::npos);
  EXPECT_NE(text.find("max |rel err|"), std::string::npos);
}

// On a jitter-free platform with no server-CPU time sharing, the timing
// engine should land exactly on the Eq. 1-5 phase predictions: zero drift.
TEST(DriftTest, JitterFreeSimulationMatchesModel) {
  sim::EpochConfig cfg;
  cfg.shape = {"synthetic", 10000, 2000, 1000000, 32};
  cfg.jitter = 0.0;
  sim::WorkerPlan plan;
  plan.device = sim::rtx_2080s();
  plan.device.epoch_overhead_s = 0.0;
  plan.share = 1.0;
  plan.comm.pull_bytes = 1e6;
  plan.comm.push_bytes = 1e6;
  plan.comm.sync_bytes = 1e6;
  cfg.workers.push_back(plan);

  const sim::EpochTiming timing = sim::simulate_epoch(cfg);
  const core::PhaseCost cost = core::predicted_phase_cost(
      plan.device, cfg.shape, plan.share, plan.comm, cfg.server);

  const DriftReport report = compute_drift(
      {{cost.pull_s, cost.compute_s, cost.push_s, cost.sync_s}},
      {{timing.workers[0].pull_s, timing.workers[0].compute_s,
        timing.workers[0].push_s, timing.workers[0].sync_s}});
  EXPECT_LT(report.max_abs_rel_err, 1e-9);
}

// The facade records drift for every epoch and publishes it to the global
// registry; the functional path also emits measured wall-clock phases in
// the EpochTiming shape.
TEST(DriftTest, TrainReportCarriesDriftAndMeasuredPhases) {
  const data::DatasetSpec spec = data::netflix_spec().scaled(0.0005);
  data::GeneratorConfig gen;
  gen.seed = 11;
  const data::RatingMatrix ratings = data::generate(spec, gen);

  core::HccMfConfig config;
  config.sgd = mf::SgdConfig::for_dataset(spec.reg_lambda, 0.01f, 8);
  config.sgd.epochs = 2;
  config.dataset_name = spec.name;
  core::HccMf framework(config);
  const core::TrainReport report = framework.train(ratings);

  ASSERT_EQ(report.epochs.size(), 2u);
  for (const auto& epoch : report.epochs) {
    ASSERT_FALSE(epoch.drift.workers.empty());
    EXPECT_TRUE(std::isfinite(epoch.drift.max_abs_rel_err));
    ASSERT_FALSE(epoch.measured.workers.empty());
    double busy = 0.0;
    for (const auto& w : epoch.measured.workers) {
      busy += w.pull_s + w.compute_s + w.push_s + w.sync_s;
    }
    EXPECT_GT(busy, 0.0);
    EXPECT_GT(epoch.measured.epoch_s, 0.0);
  }

  // The instrumented workers published per-phase histograms.
  const Histogram* pull = registry().find_histogram("worker0.pull_s");
  ASSERT_NE(pull, nullptr);
  EXPECT_GE(pull->count(), 2u);  // one pull per epoch at least
  EXPECT_NE(registry().find_gauge("drift.max_abs_rel_err"), nullptr);
  EXPECT_NE(registry().find_counter("comm.COMM.wire_bytes"), nullptr);
  EXPECT_GT(registry().find_counter("comm.COMM.wire_bytes")->value(), 0u);
}

}  // namespace
}  // namespace hcc::obs
