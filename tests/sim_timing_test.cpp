// Tests for the epoch timing engine: pipeline structure, server sync
// serialization, stream overlap and local-worker contention.
#include "sim/timing.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hcc::sim {
namespace {

DatasetShape netflix_shape() { return {"netflix", 480190, 17771, 99072112, 128}; }

CommPlan plain_comm(double pull_mb, double push_mb, double sync_mb) {
  CommPlan c;
  c.pull_bytes = pull_mb * 1e6;
  c.push_bytes = push_mb * 1e6;
  c.sync_bytes = sync_mb * 1e6;
  c.bus_efficiency = 1.0;
  c.streams = 1;
  return c;
}

EpochConfig two_worker_config() {
  EpochConfig cfg;
  cfg.shape = netflix_shape();
  cfg.server = ServerSpec{};
  WorkerPlan a;
  a.device = rtx_2080s();
  a.device.epoch_overhead_s = 0.0;  // keep the arithmetic checks exact
  a.share = 0.6;
  a.comm = plain_comm(9.1, 9.1, 9.1);
  WorkerPlan b;
  b.device = xeon_6242_24t();
  b.device.epoch_overhead_s = 0.0;
  b.share = 0.4;
  b.comm = plain_comm(9.1, 9.1, 9.1);
  cfg.workers = {a, b};
  return cfg;
}

TEST(Timing, EpochOverheadIsCharged) {
  EpochConfig cfg;
  cfg.shape = netflix_shape();
  cfg.jitter = 0.0;
  WorkerPlan w;
  w.device = rtx_2080();
  w.share = 0.5;
  w.comm = plain_comm(1.0, 1.0, 1.0);
  cfg.workers = {w};
  const double with_overhead = simulate_epoch(cfg).workers[0].compute_s;
  cfg.workers[0].device.epoch_overhead_s = 0.0;
  const double without = simulate_epoch(cfg).workers[0].compute_s;
  EXPECT_NEAR(with_overhead - without, rtx_2080().epoch_overhead_s, 1e-12);
}

TEST(Timing, SequentialPipelineAddsUp) {
  EpochConfig cfg = two_worker_config();
  cfg.jitter = 0.0;
  const EpochTiming t = simulate_epoch(cfg);
  ASSERT_EQ(t.workers.size(), 2u);
  for (const auto& w : t.workers) {
    // finish = pull + compute + push exactly, with one stream.
    EXPECT_NEAR(w.finish_s, w.pull_s + w.compute_s + w.push_s, 1e-12);
    EXPECT_GT(w.compute_s, 0.0);
    EXPECT_GT(w.pull_s, 0.0);
  }
}

TEST(Timing, EpochEndsAfterLastSync) {
  const EpochTiming t = simulate_epoch(two_worker_config());
  for (const auto& w : t.workers) {
    EXPECT_GE(t.epoch_s, w.finish_s);
    EXPECT_GE(t.epoch_s, w.sync_end_s);
    EXPECT_GE(w.sync_end_s, w.finish_s);  // sync happens after the push
  }
}

TEST(Timing, ServerSyncsSerialize) {
  // Two workers finishing at the same instant: the second sync must wait
  // for the first, so one sync_end is at least one sync duration later.
  EpochConfig cfg = two_worker_config();
  cfg.jitter = 0.0;
  // Make both workers identical so pushes collide.
  cfg.workers[1] = cfg.workers[0];
  const EpochTiming t = simulate_epoch(cfg);
  const double s0 = t.workers[0].sync_s;
  EXPECT_NEAR(t.workers[0].sync_end_s + s0, t.workers[1].sync_end_s, 1e-9);
  EXPECT_NEAR(t.server_busy_s, 2 * s0, 1e-12);
}

TEST(Timing, ComputeScalesWithShare) {
  EpochConfig cfg = two_worker_config();
  cfg.jitter = 0.0;
  cfg.workers[1].device = cfg.workers[0].device;
  cfg.workers[0].share = 0.6;
  cfg.workers[1].share = 0.3;
  const EpochTiming t = simulate_epoch(cfg);
  // Close to 2x but not exact: smaller assignments run faster per update
  // (the compute drift of Section 3.3), which is the whole premise of DP1.
  EXPECT_NEAR(t.workers[0].compute_s / t.workers[1].compute_s, 2.0, 0.15);
}

TEST(Timing, StreamsHideCommunication) {
  // With heavy comm and S streams, the exposed time approaches
  // compute + comm/S (Figure 6's claim: transmission reduced to 1/streams).
  EpochConfig cfg = two_worker_config();
  cfg.jitter = 0.0;
  cfg.workers.resize(1);
  cfg.workers[0].comm = plain_comm(500.0, 500.0, 10.0);

  cfg.workers[0].comm.streams = 1;
  const double t1 = simulate_epoch(cfg).workers[0].finish_s;
  cfg.workers[0].comm.streams = 4;
  const double t4 = simulate_epoch(cfg).workers[0].finish_s;
  EXPECT_LT(t4, t1);

  const EpochTiming t = simulate_epoch(cfg);
  const auto& w = t.workers[0];
  const double lower = w.compute_s + (w.pull_s + w.push_s) / 4.0;
  EXPECT_GE(w.finish_s + 1e-12, lower);
  // The pipeline should get reasonably close to the ideal overlap.
  EXPECT_LT(w.finish_s, w.compute_s + w.pull_s + w.push_s);
}

TEST(Timing, StreamsPreserveTotalActiveDurations) {
  EpochConfig cfg = two_worker_config();
  cfg.jitter = 0.0;
  cfg.workers.resize(1);
  cfg.workers[0].comm.streams = 1;
  const EpochTiming t1 = simulate_epoch(cfg);
  cfg.workers[0].comm.streams = 4;
  const EpochTiming t4 = simulate_epoch(cfg);
  // Async streaming hides time, it does not delete work (Figure 6 caption:
  // "does not reduce computational time").
  EXPECT_NEAR(t1.workers[0].pull_s, t4.workers[0].pull_s, 1e-12);
  EXPECT_NEAR(t1.workers[0].compute_s, t4.workers[0].compute_s, 1e-12);
  EXPECT_NEAR(t1.workers[0].push_s, t4.workers[0].push_s, 1e-12);
}

TEST(Timing, LocalWorkerPaysForOverlappingSyncOnly) {
  // A worker on the server's own CPU loses the sync work that lands while
  // it is still computing — but not syncs serviced after it finished.
  EpochConfig cfg = two_worker_config();
  cfg.jitter = 0.0;
  cfg.workers[1].device = xeon_6242_16t();  // BusKind::kLocal
  cfg.workers[1].device.epoch_overhead_s = 0.0;
  ASSERT_EQ(cfg.workers[1].device.bus, BusKind::kLocal);

  EpochConfig no_sync = cfg;
  for (auto& w : no_sync.workers) w.comm.sync_bytes = 0.0;
  const EpochTiming baseline = simulate_epoch(no_sync);

  // Case 1: the local worker finishes last by a wide margin, so the other
  // worker's sync overlaps its compute and gets charged to it.
  {
    EpochConfig cfg_late = cfg;
    cfg_late.workers[1].share = 0.9;
    cfg_late.workers[0].share = 0.1;
    EpochConfig base_late = no_sync;
    base_late.workers[1].share = 0.9;
    base_late.workers[0].share = 0.1;
    const EpochTiming with_sync = simulate_epoch(cfg_late);
    const EpochTiming without = simulate_epoch(base_late);
    // Charged: the GPU worker's sync (starts long before the CPU's finish).
    EXPECT_GT(with_sync.workers[1].compute_s, without.workers[1].compute_s);
    EXPECT_NEAR(with_sync.workers[1].compute_s - without.workers[1].compute_s,
                with_sync.workers[0].sync_s, 1e-9);
  }

  // Case 2: the local worker finishes first; every sync is serviced after
  // its compute window, so it pays nothing.
  {
    EpochConfig cfg_early = cfg;
    cfg_early.workers[1].share = 0.05;
    cfg_early.workers[0].share = 0.95;
    const EpochTiming with_sync = simulate_epoch(cfg_early);
    EpochConfig base_early = no_sync;
    base_early.workers[1].share = 0.05;
    base_early.workers[0].share = 0.95;
    const EpochTiming without = simulate_epoch(base_early);
    EXPECT_NEAR(with_sync.workers[1].compute_s, without.workers[1].compute_s,
                1e-12);
  }
  (void)baseline;
}

TEST(Timing, ZeroShareWorkerOnlyCommunicates) {
  EpochConfig cfg = two_worker_config();
  cfg.jitter = 0.0;
  cfg.workers[1].share = 0.0;
  const EpochTiming t = simulate_epoch(cfg);
  EXPECT_DOUBLE_EQ(t.workers[1].compute_s, 0.0);
  EXPECT_GT(t.workers[1].pull_s, 0.0);
}

TEST(Timing, JitterIsDeterministicPerSeed) {
  EpochConfig cfg = two_worker_config();
  cfg.jitter = 0.05;
  cfg.seed = 33;
  const EpochTiming a = simulate_epoch(cfg);
  const EpochTiming b = simulate_epoch(cfg);
  EXPECT_DOUBLE_EQ(a.epoch_s, b.epoch_s);
  cfg.seed = 34;
  const EpochTiming c = simulate_epoch(cfg);
  EXPECT_NE(a.epoch_s, c.epoch_s);
}

TEST(Timing, MultiEpochAccumulates) {
  EpochConfig cfg = two_worker_config();
  cfg.jitter = 0.0;
  const EpochTiming one = simulate_epoch(cfg);
  const EpochTiming twenty = simulate_epochs(cfg, 20);
  EXPECT_NEAR(twenty.epoch_s, 20.0 * one.epoch_s, 1e-9);
  EXPECT_NEAR(twenty.workers[0].compute_s, 20.0 * one.workers[0].compute_s,
              1e-9);
  EXPECT_NEAR(twenty.server_busy_s, 20.0 * one.server_busy_s, 1e-9);
}

TEST(Timing, FasterBusShortensPullTime) {
  EpochConfig cfg = two_worker_config();
  cfg.jitter = 0.0;
  cfg.workers.resize(1);
  cfg.workers[0].device = rtx_2080();  // PCIe 16 GB/s
  const double pcie_pull = simulate_epoch(cfg).workers[0].pull_s;
  cfg.workers[0].device = xeon_6242_24t();  // UPI 20.8 GB/s
  const double upi_pull = simulate_epoch(cfg).workers[0].pull_s;
  EXPECT_LT(upi_pull, pcie_pull);
  EXPECT_NEAR(pcie_pull / upi_pull, 20.8 / 16.0, 1e-6);
}

TEST(Timing, BusEfficiencyScalesTransfers) {
  EpochConfig cfg = two_worker_config();
  cfg.jitter = 0.0;
  cfg.workers.resize(1);
  const double eff1 = simulate_epoch(cfg).workers[0].pull_s;
  cfg.workers[0].comm.bus_efficiency = 0.5;
  const double eff05 = simulate_epoch(cfg).workers[0].pull_s;
  EXPECT_NEAR(eff05, 2.0 * eff1, 1e-12);
}

}  // namespace
}  // namespace hcc::sim
