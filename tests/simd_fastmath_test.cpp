// Regression test for all_finite under -ffast-math (this file is compiled
// with it; see tests/CMakeLists.txt).
//
// The earlier implementation classified values with float arithmetic
// (acc += v * 0.0f), which -ffinite-math-only is allowed to fold away —
// exactly the flags a release build of an embedding application might use
// when it inlines our headers.  The kernel-table implementations test the
// exponent bits as integers, so NaN/Inf detection must keep working here.
#include "mf/kernels.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "simd/dispatch.hpp"

#if !defined(__FAST_MATH__)
#error "simd_fastmath_test.cpp must be compiled with -ffast-math"
#endif

namespace hcc {
namespace {

// Specials built via bit patterns: fast-math constant folding cannot
// "optimize away" a bit_cast the way it can 0.0f / 0.0f.
const float kNan = std::bit_cast<float>(std::uint32_t{0x7fc00000});
const float kInf = std::bit_cast<float>(std::uint32_t{0x7f800000});
const float kNegInf = std::bit_cast<float>(std::uint32_t{0xff800000});

TEST(FastMath, AllFiniteStillDetectsSpecials) {
  std::vector<float> v(100, 0.25f);
  EXPECT_TRUE(mf::all_finite(v));
  for (const float bad : {kNan, kInf, kNegInf}) {
    for (const std::size_t pos : {std::size_t{0}, v.size() / 2,
                                  v.size() - 1}) {
      auto poisoned = v;
      poisoned[pos] = bad;
      EXPECT_FALSE(mf::all_finite(poisoned)) << "pos=" << pos;
    }
  }
}

TEST(FastMath, EveryKernelTableDetectsSpecials) {
  std::vector<float> v(33, 1.0f);
  for (const simd::Isa isa :
       {simd::Isa::kScalar, simd::Isa::kNeon, simd::Isa::kAvx2,
        simd::Isa::kAvx512}) {
    const simd::KernelTable* table = simd::kernels_for(isa);
    if (table == nullptr) continue;
    EXPECT_TRUE(table->all_finite(v.data(), v.size())) << table->name;
    auto poisoned = v;
    poisoned[v.size() - 1] = kNan;
    EXPECT_FALSE(table->all_finite(poisoned.data(), poisoned.size()))
        << table->name;
  }
}

TEST(FastMath, FiniteEdgeValuesStayFinite) {
  // Subnormals and extreme-but-finite magnitudes must not be flagged, even
  // though -ffast-math may flush subnormals in arithmetic.
  std::vector<float> edge{
      std::bit_cast<float>(std::uint32_t{0x00000001}),  // min subnormal
      std::bit_cast<float>(std::uint32_t{0x007fffff}),  // max subnormal
      std::bit_cast<float>(std::uint32_t{0x7f7fffff}),  // max finite
      std::bit_cast<float>(std::uint32_t{0xff7fffff}),  // lowest finite
      0.0f, -0.0f};
  EXPECT_TRUE(mf::all_finite(edge));
}

}  // namespace
}  // namespace hcc
