// Tests for the learning-rate schedules.
#include "mf/lr_schedule.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace hcc::mf {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(ConstantLr, NeverChanges) {
  ConstantLr lr(0.005f);
  EXPECT_FLOAT_EQ(lr.rate(0, kNan), 0.005f);
  EXPECT_FLOAT_EQ(lr.rate(100, 1.0), 0.005f);
  EXPECT_EQ(lr.name(), "constant");
}

TEST(ExponentialDecayLr, DecaysGeometrically) {
  ExponentialDecayLr lr(0.1f, 0.5f);
  EXPECT_FLOAT_EQ(lr.rate(0, kNan), 0.1f);
  EXPECT_FLOAT_EQ(lr.rate(1, 1.0), 0.05f);
  EXPECT_FLOAT_EQ(lr.rate(3, 1.0), 0.0125f);
}

TEST(InverseTimeLr, HalvesAtTau) {
  InverseTimeLr lr(0.1f, 4.0f);
  EXPECT_FLOAT_EQ(lr.rate(0, kNan), 0.1f);
  EXPECT_FLOAT_EQ(lr.rate(4, 1.0), 0.05f);
  // Monotone decreasing.
  float prev = 1.0f;
  for (std::uint32_t e = 0; e < 20; ++e) {
    const float r = lr.rate(e, 1.0);
    EXPECT_LT(r, prev);
    prev = r;
  }
}

TEST(BoldDriverLr, GrowsOnImprovementShrinksOnRegression) {
  BoldDriverLr lr(0.1f, 1.05f, 0.5f);
  EXPECT_FLOAT_EQ(lr.rate(0, kNan), 0.1f);   // no history yet
  EXPECT_FLOAT_EQ(lr.rate(1, 10.0), 0.1f);   // first objective: baseline
  EXPECT_FLOAT_EQ(lr.rate(2, 8.0), 0.105f);  // improved: +5%
  EXPECT_FLOAT_EQ(lr.rate(3, 9.0), 0.0525f); // regressed: halve
  EXPECT_NEAR(lr.rate(4, 7.0), 0.0551f, 1e-4f);  // improved again
}

TEST(BoldDriverLr, NanObjectiveResets) {
  BoldDriverLr lr(0.2f);
  EXPECT_FLOAT_EQ(lr.rate(0, kNan), 0.2f);
  EXPECT_FLOAT_EQ(lr.rate(1, kNan), 0.2f);  // still no usable history
}

TEST(Factory, BuildsEverySchedule) {
  for (const char* name :
       {"constant", "exponential", "inverse-time", "bold-driver"}) {
    const auto schedule = make_lr_schedule(name, 0.01f);
    ASSERT_NE(schedule, nullptr);
    EXPECT_EQ(schedule->name(), name);
    EXPECT_FLOAT_EQ(schedule->rate(0, kNan), 0.01f);
  }
  EXPECT_THROW(make_lr_schedule("warmup-cosine", 0.01f),
               std::invalid_argument);
}

}  // namespace
}  // namespace hcc::mf
