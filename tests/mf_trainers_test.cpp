// Tests for the baseline trainers: serial SGD, Hogwild, FPSGD, batched.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "data/datasets.hpp"
#include "mf/batched.hpp"
#include "mf/fpsgd.hpp"
#include "mf/hogwild.hpp"
#include "mf/metrics.hpp"
#include "mf/trainer.hpp"

namespace hcc::mf {
namespace {

struct Problem {
  data::RatingMatrix train{0, 0};
  data::RatingMatrix test{0, 0};
  data::DatasetSpec spec;
};

Problem make_problem(std::uint64_t seed = 3) {
  Problem pr;
  pr.spec = data::movielens20m_spec().scaled(0.002);
  data::GeneratorConfig config;
  config.seed = seed;
  config.planted_rank = 4;
  const auto full = data::generate(pr.spec, config);
  util::Rng rng(seed + 1);
  auto [train, test] = data::train_test_split(full, 0.1, rng);
  pr.train = std::move(train);
  pr.test = std::move(test);
  return pr;
}

SgdConfig small_config() {
  SgdConfig c = SgdConfig::for_dataset(0.02f, 0.01f, /*k=*/16);
  c.epochs = 8;
  return c;
}

// Runs the trainer and checks the universal convergence contract: RMSE
// decreases substantially and ends below the scale of the rating range.
void expect_converges(Trainer& trainer, const Problem& pr,
                      const SgdConfig& config) {
  FactorModel model(pr.spec.m, pr.spec.n, config.k);
  util::Rng rng(7);
  model.init_random(rng, 2.5f);
  const double before = rmse(model, pr.test);
  const auto trace =
      train_and_trace(trainer, model, pr.train, pr.test, config.epochs);
  ASSERT_EQ(trace.size(), config.epochs);
  EXPECT_LT(trace.back(), 0.75 * before)
      << trainer.name() << " did not reduce RMSE";
  EXPECT_LT(trace.back(), 1.1) << trainer.name() << " final RMSE too high";
  // Loose monotonicity: the last epoch should not be worse than the first.
  EXPECT_LT(trace.back(), trace.front() + 1e-9);
}

TEST(SerialSgd, Converges) {
  const Problem pr = make_problem();
  SerialSgd trainer(small_config());
  expect_converges(trainer, pr, small_config());
}

TEST(SerialSgd, LearnRateDecays) {
  SgdConfig c = small_config();
  c.lr_decay = 0.5f;
  SerialSgd trainer(c);
  const Problem pr = make_problem();
  FactorModel model(pr.spec.m, pr.spec.n, c.k);
  util::Rng rng(7);
  model.init_random(rng, 2.5f);
  trainer.train_epoch(model, pr.train);
  EXPECT_FLOAT_EQ(trainer.learn_rate(), c.learn_rate * 0.5f);
  trainer.train_epoch(model, pr.train);
  EXPECT_FLOAT_EQ(trainer.learn_rate(), c.learn_rate * 0.25f);
}

TEST(Hogwild, ConvergesWithThreads) {
  const Problem pr = make_problem();
  util::ThreadPool pool(3);
  HogwildTrainer trainer(small_config(), pool);
  expect_converges(trainer, pr, small_config());
}

TEST(Hogwild, MatchesSerialQuality) {
  // Hogwild's lost updates must not visibly hurt final quality on sparse
  // data (the Niu et al. result the paper leans on).
  const Problem pr = make_problem();
  const SgdConfig c = small_config();

  FactorModel serial_model(pr.spec.m, pr.spec.n, c.k);
  util::Rng rng1(7);
  serial_model.init_random(rng1, 2.5f);
  SerialSgd serial(c);
  const auto serial_trace =
      train_and_trace(serial, serial_model, pr.train, pr.test, c.epochs);

  util::ThreadPool pool(4);
  FactorModel hog_model(pr.spec.m, pr.spec.n, c.k);
  util::Rng rng2(7);
  hog_model.init_random(rng2, 2.5f);
  HogwildTrainer hogwild(c, pool);
  const auto hog_trace =
      train_and_trace(hogwild, hog_model, pr.train, pr.test, c.epochs);

  EXPECT_NEAR(hog_trace.back(), serial_trace.back(), 0.08);
}

TEST(Fpsgd, ConvergesWithBlocks) {
  const Problem pr = make_problem();
  FpsgdTrainer trainer(small_config(), /*threads=*/3);
  expect_converges(trainer, pr, small_config());
}

TEST(Fpsgd, GridDimensions) {
  FpsgdTrainer trainer(small_config(), 3);
  EXPECT_EQ(trainer.threads(), 3u);
  EXPECT_EQ(trainer.bands(), 4u);
  FpsgdTrainer degenerate(small_config(), 0);
  EXPECT_EQ(degenerate.threads(), 1u);  // clamped to at least one
}

TEST(Fpsgd, SingleThreadProcessesEveryEntryExactlyOnce) {
  // With lr=0 the model is untouched; we verify epoch mechanics by running
  // on a tiny matrix and checking the model is identical to serial lr=0.
  SgdConfig c = small_config();
  c.learn_rate = 0.0f;
  data::RatingMatrix r(6, 6);
  for (std::uint32_t i = 0; i < 6; ++i) r.add(i, 5 - i, 3.0f);
  FactorModel model(6, 6, 4);
  util::Rng rng(1);
  model.init_random(rng, 3.0f);
  const std::vector<float> before(model.q_data().begin(),
                                  model.q_data().end());
  FpsgdTrainer trainer(c, 2);
  trainer.train_epoch(model, r);
  for (std::size_t j = 0; j < before.size(); ++j) {
    EXPECT_FLOAT_EQ(model.q_data()[j], before[j]);
  }
}

TEST(Batched, ConvergesWithBatches) {
  const Problem pr = make_problem();
  util::ThreadPool pool(2);
  BatchedTrainer trainer(small_config(), pool, /*batches=*/4);
  expect_converges(trainer, pr, small_config());
}

TEST(Batched, RebuildsCacheOnNewMatrix) {
  util::ThreadPool pool(2);
  const SgdConfig c = small_config();
  BatchedTrainer trainer(c, pool, 4);
  const Problem a = make_problem(3);
  const Problem b = make_problem(4);
  FactorModel model(a.spec.m, a.spec.n, c.k);
  util::Rng rng(7);
  model.init_random(rng, 2.5f);
  trainer.train_epoch(model, a.train);
  trainer.train_epoch(model, b.train);  // different matrix: must not crash
  const double after = rmse(model, a.test);
  EXPECT_LT(after, 3.0);
}

TEST(Trainers, AllReportDistinctNames) {
  util::ThreadPool pool(1);
  SerialSgd serial(small_config());
  HogwildTrainer hogwild(small_config(), pool);
  FpsgdTrainer fpsgd(small_config(), 2);
  BatchedTrainer batched(small_config(), pool);
  EXPECT_EQ(serial.name(), "serial-sgd");
  EXPECT_EQ(hogwild.name(), "hogwild");
  EXPECT_EQ(fpsgd.name(), "fpsgd");
  EXPECT_EQ(batched.name(), "cumf-batched");
}

}  // namespace
}  // namespace hcc::mf
