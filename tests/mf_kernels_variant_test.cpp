// Tests for the vectorization-oriented kernel variants: same math as the
// scalar kernel up to floating-point reassociation.  The 4-wide unrolled
// baselines are bench-only (bench/legacy_kernels.hpp) but stay covered
// here because the SIMD benchmarks compare against them.
#include "mf/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "legacy_kernels.hpp"
#include "util/rng.hpp"

namespace hcc::mf {
namespace {

std::vector<float> random_vec(std::uint32_t k, util::Rng& rng) {
  std::vector<float> v(k);
  for (auto& x : v) x = static_cast<float>(rng.normal(0.2, 0.1));
  return v;
}

TEST(Dot4, MatchesScalarDot) {
  util::Rng rng(1);
  for (std::uint32_t k : {4u, 8u, 32u, 128u}) {
    const auto a = random_vec(k, rng);
    const auto b = random_vec(k, rng);
    float scalar = 0.0f;
    for (std::uint32_t f = 0; f < k; ++f) scalar += a[f] * b[f];
    EXPECT_NEAR(hcc::bench::dot4(a.data(), b.data(), k), scalar,
                1e-5f * (1.0f + std::abs(scalar)))
        << "k=" << k;
  }
}

class KernelEquivalence : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(KernelEquivalence, UnrolledTracksScalarOverManySteps) {
  const std::uint32_t k = GetParam();
  util::Rng rng(2);
  auto p_a = random_vec(k, rng);
  auto q_a = random_vec(k, rng);
  auto p_b = p_a;
  auto q_b = q_a;
  // Run 200 coupled updates on both variants; they may diverge only by
  // accumulated reassociation noise, not systematically.
  for (int step = 0; step < 200; ++step) {
    const float r = 3.0f + 0.01f * static_cast<float>(step % 5);
    const float err_a =
        sgd_update(p_a.data(), q_a.data(), k, r, 0.01f, 0.02f, 0.02f);
    const float err_b = hcc::bench::sgd_update_x4(p_b.data(), q_b.data(), k,
                                                  r, 0.01f, 0.02f, 0.02f);
    EXPECT_NEAR(err_a, err_b, 1e-3f) << "step " << step;
  }
  for (std::uint32_t f = 0; f < k; ++f) {
    EXPECT_NEAR(p_a[f], p_b[f], 1e-3f);
    EXPECT_NEAR(q_a[f], q_b[f], 1e-3f);
  }
}

INSTANTIATE_TEST_SUITE_P(LatentDims, KernelEquivalence,
                         ::testing::Values(8u, 16u, 64u, 128u));

TEST(Dispatch, PicksByAlignment) {
  util::Rng rng(3);
  // k = 6 (not divisible by 4): must fall back to scalar and not touch
  // out-of-range memory — run under the same seed and compare with scalar.
  auto p_a = random_vec(6, rng);
  auto q_a = random_vec(6, rng);
  auto p_b = p_a;
  auto q_b = q_a;
  sgd_update(p_a.data(), q_a.data(), 6, 4.0f, 0.01f, 0.0f, 0.0f);
  sgd_update_dispatch(p_b.data(), q_b.data(), 6, 4.0f, 0.01f, 0.0f, 0.0f);
  for (std::uint32_t f = 0; f < 6; ++f) EXPECT_EQ(p_a[f], p_b[f]);
}

TEST(Dispatch, ConvergesLikeScalar) {
  util::Rng rng(4);
  auto p = random_vec(16, rng);
  auto q = random_vec(16, rng);
  float err = 1e9f;
  for (int step = 0; step < 100; ++step) {
    err = std::abs(
        sgd_update_dispatch(p.data(), q.data(), 16, 4.0f, 0.05f, 0.001f,
                            0.001f));
  }
  EXPECT_LT(err, 0.05f);
}

}  // namespace
}  // namespace hcc::mf
