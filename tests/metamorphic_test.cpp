// Metamorphic and edge-coverage tests across layers: relations that must
// hold under input transformations (scaling, permutation, degeneration),
// complementing the per-module unit tests.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "comm/strategy.hpp"
#include "core/hccmf.hpp"
#include "core/server.hpp"
#include "core/tuner.hpp"
#include "data/datasets.hpp"
#include "sim/timing.hpp"

namespace hcc {
namespace {

sim::DatasetShape netflix_shape() {
  return {"netflix", 480190, 17771, 99072112, 128};
}

TEST(Metamorphic, DoublingNnzDoublesComputeAtFixedShare) {
  sim::DatasetShape big = netflix_shape();
  big.nnz *= 2;
  for (const auto& dev : {sim::rtx_2080(), sim::xeon_6242_24t()}) {
    const double base = sim::compute_seconds(dev, netflix_shape(), 0.4);
    const double doubled = sim::compute_seconds(dev, big, 0.4);
    EXPECT_NEAR(doubled / base, 2.0, 1e-9) << dev.name;
  }
}

TEST(Metamorphic, WorkerOrderPermutationPermutesTimings) {
  sim::EpochConfig cfg;
  cfg.shape = netflix_shape();
  cfg.jitter = 0.0;
  comm::CommConfig comm;
  comm.fp16 = false;
  for (const auto& [dev, share] :
       std::vector<std::pair<sim::DeviceSpec, double>>{
           {sim::rtx_2080s(), 0.5}, {sim::xeon_6242_24t(), 0.3},
           {sim::rtx_2080(), 0.2}}) {
    sim::WorkerPlan wp;
    wp.device = dev;
    wp.share = share;
    wp.comm = comm::make_comm_plan(comm, cfg.shape, dev);
    cfg.workers.push_back(wp);
  }
  const sim::EpochTiming forward = sim::simulate_epoch(cfg);

  sim::EpochConfig reversed = cfg;
  std::reverse(reversed.workers.begin(), reversed.workers.end());
  const sim::EpochTiming backward = sim::simulate_epoch(reversed);

  EXPECT_NEAR(forward.epoch_s, backward.epoch_s, 1e-12);
  for (std::size_t w = 0; w < 3; ++w) {
    EXPECT_NEAR(forward.workers[w].compute_s,
                backward.workers[2 - w].compute_s, 1e-12);
    EXPECT_NEAR(forward.workers[w].finish_s,
                backward.workers[2 - w].finish_s, 1e-12);
  }
}

TEST(Metamorphic, Fp16ExactlyHalvesWireForEveryDataset) {
  for (const auto& spec : data::paper_datasets()) {
    const sim::DatasetShape shape{spec.name, spec.m, spec.n, spec.nnz, 128};
    comm::CommConfig fp32;
    fp32.fp16 = false;
    comm::CommConfig fp16;
    fp16.fp16 = true;
    const auto a = comm::make_comm_plan(fp32, shape, sim::rtx_2080());
    const auto b = comm::make_comm_plan(fp16, shape, sim::rtx_2080());
    EXPECT_NEAR(a.pull_bytes / b.pull_bytes, 2.0, 1e-12) << spec.name;
    EXPECT_NEAR(a.push_bytes / b.push_bytes, 2.0, 1e-12) << spec.name;
    EXPECT_DOUBLE_EQ(a.sync_bytes, b.sync_bytes) << spec.name;
  }
}

TEST(Metamorphic, SparseLeavesPOnlyPayloadAlone) {
  // Sparse push is a Q-row optimization; a column-grid (P-only) payload
  // must be unaffected.
  const sim::DatasetShape wide{"", 2000, 90000, 4000000, 32};
  comm::CommConfig dense;
  dense.fp16 = false;
  comm::CommConfig sparse = dense;
  sparse.sparse = true;
  const auto a = comm::make_comm_plan(dense, wide, sim::rtx_2080(), false, 0.1);
  const auto b = comm::make_comm_plan(sparse, wide, sim::rtx_2080(), false, 0.1);
  EXPECT_DOUBLE_EQ(a.pull_bytes, b.pull_bytes);
  EXPECT_DOUBLE_EQ(a.push_bytes, b.push_bytes);
}

TEST(Metamorphic, SingleWorkerPlatformAlwaysGetsEverything) {
  comm::CommConfig comm;
  core::DataManager mgr(sim::single_device(sim::rtx_2080s()),
                        netflix_shape(), comm);
  for (const auto strategy :
       {core::PartitionStrategy::kEven, core::PartitionStrategy::kDp0,
        core::PartitionStrategy::kDp1, core::PartitionStrategy::kDp2,
        core::PartitionStrategy::kAuto}) {
    const core::Plan plan = mgr.plan(strategy);
    ASSERT_EQ(plan.shares.size(), 1u);
    EXPECT_NEAR(plan.shares[0], 1.0, 1e-12)
        << core::partition_strategy_name(strategy);
  }
}

TEST(Metamorphic, UniformItemWeightsMatchScalarMerge) {
  mf::FactorModel a(4, 6, 3);
  util::Rng rng(5);
  a.init_random(rng, 3.0f);
  mf::FactorModel b = a;

  comm::CommConfig comm;
  comm.fp16 = false;
  core::Server sa(std::move(a), comm);
  core::Server sb(std::move(b), comm);

  std::vector<float> snapshot(sa.model().q_data().begin(),
                              sa.model().q_data().end());
  std::vector<float> pushed = snapshot;
  for (auto& v : pushed) v += 0.125f;

  sa.sync_q(pushed, snapshot, 0.4f);
  const std::vector<float> weights(6, 0.4f);
  sb.sync_q(pushed, snapshot, std::span<const float>(weights));
  for (std::size_t j = 0; j < snapshot.size(); ++j) {
    EXPECT_FLOAT_EQ(sa.model().q_data()[j], sb.model().q_data()[j]);
  }
}

TEST(Metamorphic, TrainWithoutEvaluationSkipsRmse) {
  const data::DatasetSpec spec = data::netflix_spec().scaled(0.001);
  const data::RatingMatrix train =
      data::generate(spec, data::GeneratorConfig{});
  core::HccMfConfig config;
  config.sgd.epochs = 3;
  config.sgd.k = 8;
  config.platform = sim::paper_workstation_hetero();
  config.evaluate_each_epoch = false;
  config.dataset_name = spec.name;
  const core::TrainReport report = core::HccMf(config).train(train, &train);
  for (const auto& e : report.epochs) {
    EXPECT_TRUE(std::isnan(e.test_rmse)) << "epoch " << e.epoch;
  }
  ASSERT_TRUE(report.model.has_value());
}

TEST(Metamorphic, TunerDegeneratesGracefullyOnSingleDevice) {
  const core::TuneResult result =
      core::tune_comm(sim::single_device(sim::rtx_2080s()), netflix_shape());
  EXPECT_FALSE(result.trials.empty());
  EXPECT_GT(result.best.epoch_seconds, 0.0);
}

TEST(Metamorphic, ShapeScaleLeavesStrategyChoiceAlone) {
  // Scaling every dataset dimension uniformly preserves the compute/comm
  // balance, so the auto choice must not flip.
  comm::CommConfig comm;
  for (const auto& spec : {data::netflix_spec(), data::yahoo_r1_spec()}) {
    const sim::DatasetShape full{spec.name, spec.m, spec.n, spec.nnz, 128};
    const data::DatasetSpec half_spec = spec.scaled(0.5);
    const sim::DatasetShape half{spec.name, half_spec.m, half_spec.n,
                                 half_spec.nnz, 128};
    core::DataManager m_full(sim::paper_workstation_hetero(), full, comm);
    core::DataManager m_half(sim::paper_workstation_hetero(), half, comm);
    EXPECT_EQ(m_full.plan().chosen, m_half.plan().chosen) << spec.name;
  }
}

}  // namespace
}  // namespace hcc
