// Unit tests for the fault-tolerance building blocks: plan parsing, the
// deterministic injector, checkpoint stores, deadline detection, and the
// degraded-mode repartition helpers.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <set>

#include "comm/backend.hpp"
#include "core/adaptive.hpp"
#include "core/hccmf.hpp"
#include "fault/checkpoint.hpp"
#include "fault/errors.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "fault/recovery.hpp"

namespace hcc::fault {
namespace {

TEST(FaultPlan, ParsesEveryEventKind) {
  const FaultPlan plan =
      FaultPlan::parse("kill:w1@e3;stall:w0@e2x4;corrupt:w2@e1s1n2");
  ASSERT_EQ(plan.events.size(), 3u);

  EXPECT_EQ(plan.events[0].kind, FaultKind::kKill);
  EXPECT_EQ(plan.events[0].worker, 1u);
  EXPECT_EQ(plan.events[0].epoch, 3u);

  EXPECT_EQ(plan.events[1].kind, FaultKind::kStall);
  EXPECT_EQ(plan.events[1].worker, 0u);
  EXPECT_EQ(plan.events[1].epoch, 2u);
  EXPECT_DOUBLE_EQ(plan.events[1].stall_factor, 4.0);

  EXPECT_EQ(plan.events[2].kind, FaultKind::kCorrupt);
  EXPECT_EQ(plan.events[2].worker, 2u);
  EXPECT_EQ(plan.events[2].epoch, 1u);
  EXPECT_EQ(plan.events[2].chunk, 1u);
  EXPECT_EQ(plan.events[2].count, 2u);
}

TEST(FaultPlan, CorruptDefaultsChunkZeroCountOne) {
  const FaultPlan plan = FaultPlan::parse("corrupt:w0@e5");
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.events[0].chunk, 0u);
  EXPECT_EQ(plan.events[0].count, 1u);
}

TEST(FaultPlan, ToStringRoundTrips) {
  const char* spec = "kill:w1@e3;stall:w0@e2x4;corrupt:w2@e1s1n2";
  const FaultPlan plan = FaultPlan::parse(spec);
  EXPECT_EQ(plan.to_string(), spec);
  EXPECT_EQ(FaultPlan::parse(plan.to_string()).events, plan.events);
}

TEST(FaultPlan, EmptySpecMeansInertPlan) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse(";;").empty());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("explode:w0@e1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("kill:w@e1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("kill:w0"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("stall:w0@e1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("stall:w0@e1x1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("corrupt:w0@e1n0"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("kill:w0@e1junk"), std::invalid_argument);
}

TEST(FaultPlan, ReadsEnvironmentVariable) {
  ::setenv("HCCMF_FAULT_PLAN", "kill:w2@e7", 1);
  ::setenv("HCCMF_FAULT_SEED", "99", 1);
  const FaultPlan plan = plan_from_env();
  ::unsetenv("HCCMF_FAULT_PLAN");
  ::unsetenv("HCCMF_FAULT_SEED");
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.events[0].worker, 2u);
  EXPECT_EQ(plan.events[0].epoch, 7u);
  EXPECT_EQ(plan.seed, 99u);
  EXPECT_TRUE(plan_from_env().empty());
}

TEST(FaultInjector, KillFiresExactlyOnceAtItsEpoch) {
  FaultInjector injector(FaultPlan::parse("kill:w0@e1"));
  injector.begin_epoch(0);
  EXPECT_NO_THROW(injector.check_phase(0));
  injector.begin_epoch(1);
  EXPECT_THROW(injector.check_phase(0), WorkerKilledError);
  // Replaying the epoch after recovery must not re-fire the latched kill.
  injector.begin_epoch(1);
  EXPECT_NO_THROW(injector.check_phase(0));
  EXPECT_NO_THROW(injector.check_phase(1));
  EXPECT_EQ(injector.injected(), 1u);
  EXPECT_TRUE(injector.kill_scheduled(0, 1));
  EXPECT_FALSE(injector.kill_scheduled(0, 2));
  EXPECT_FALSE(injector.kill_scheduled(1, 1));
}

TEST(FaultInjector, StallFactorsStack) {
  FaultInjector injector(
      FaultPlan::parse("stall:w1@e2x4;stall:w1@e2x2;stall:w0@e3x8"));
  EXPECT_DOUBLE_EQ(injector.stall_factor(1, 2), 8.0);
  EXPECT_DOUBLE_EQ(injector.stall_factor(0, 3), 8.0);
  EXPECT_DOUBLE_EQ(injector.stall_factor(1, 3), 1.0);
  EXPECT_DOUBLE_EQ(injector.stall_factor(0, 0), 1.0);
}

TEST(FaultInjector, WireCorruptionIsDeterministicAndBounded) {
  const auto run_once = [](std::uint64_t seed) {
    FaultPlan plan = FaultPlan::parse("corrupt:w0@e0n1");
    plan.seed = seed;
    FaultInjector injector(std::move(plan));
    injector.begin_epoch(0);
    std::vector<std::byte> wire(64, std::byte{0});
    injector.begin_push(0, 0);
    injector.tap_wire(wire, 0);
    injector.end_push(0);
    return wire;
  };
  const auto a = run_once(7);
  const auto b = run_once(7);
  const auto c = run_once(8);
  EXPECT_EQ(a, b) << "same seed must corrupt the same bytes";
  EXPECT_NE(a, std::vector<std::byte>(64, std::byte{0}))
      << "armed tap must actually corrupt";
  EXPECT_NE(a, c) << "different seed should move the corruption";

  // The attempt budget (n1) is spent: a second delivery passes clean.
  FaultInjector injector(FaultPlan::parse("corrupt:w0@e0n1"));
  injector.begin_epoch(0);
  std::vector<std::byte> wire(64, std::byte{0});
  injector.begin_push(0, 0);
  injector.tap_wire(wire, 0);
  injector.end_push(0);
  EXPECT_NE(wire, std::vector<std::byte>(64, std::byte{0}));
  std::vector<std::byte> retry(64, std::byte{0});
  injector.begin_push(0, 0);
  injector.tap_wire(retry, 0);
  injector.end_push(0);
  EXPECT_EQ(retry, std::vector<std::byte>(64, std::byte{0}));
}

TEST(FaultInjector, CorruptionTripsWireChecksum) {
  std::vector<std::byte> wire(128, std::byte{0x3c});
  const std::uint64_t before = comm::wire_checksum(wire);
  FaultInjector injector(FaultPlan::parse("corrupt:w0@e0"));
  injector.begin_epoch(0);
  injector.begin_push(0, 0);
  injector.tap_wire(wire, 0);
  injector.end_push(0);
  EXPECT_NE(comm::wire_checksum(wire), before);
}

TEST(CheckpointStore, MemoryRoundTrip) {
  CheckpointStore store;
  EXPECT_FALSE(store.has_checkpoint());
  mf::FactorModel model(4, 3, 8);
  util::Rng rng(11);
  model.init_random(rng, 1.0f);
  store.save({5, 0.025f, 42, model});
  ASSERT_TRUE(store.has_checkpoint());
  EXPECT_EQ(store.latest().next_epoch, 5u);
  EXPECT_FLOAT_EQ(store.latest().lr, 0.025f);
  EXPECT_EQ(store.latest().rng_state, 42u);
  EXPECT_EQ(store.latest().model.p_data()[0], model.p_data()[0]);
  EXPECT_EQ(store.saved(), 1u);
}

TEST(CheckpointStore, DiskPersistAndLoadLatest) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "hccmf_ckpt_test").string();
  std::filesystem::remove_all(dir);
  CheckpointStore store(dir);
  mf::FactorModel model(4, 3, 8);
  util::Rng rng(12);
  model.init_random(rng, 1.0f);
  store.save({1, 0.01f, 7, model});
  model.p(0)[0] = 123.5f;
  store.save({2, 0.009f, 7, model});
  ASSERT_TRUE(std::filesystem::exists(dir + "/ckpt_1.hcck"));
  ASSERT_TRUE(std::filesystem::exists(dir + "/ckpt_2.hcck"));

  const auto loaded = CheckpointStore::load_latest(dir);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->next_epoch, 2u);
  EXPECT_FLOAT_EQ(loaded->lr, 0.009f);
  EXPECT_EQ(loaded->rng_state, 7u);
  EXPECT_FLOAT_EQ(loaded->model.p(0)[0], 123.5f);
  std::filesystem::remove_all(dir);
  EXPECT_FALSE(CheckpointStore::load_latest(dir).has_value());
}

TEST(StragglerMask, FlagsOnlyTheDeadlineViolator) {
  // Measured runs ~1000x slower than predicted across the board (different
  // clocks); worker 2 is 6x worse than its peers.
  const std::vector<obs::PhaseTimes> predicted = {
      {1e-3, 1e-2, 1e-3, 1e-4}, {1e-3, 1e-2, 1e-3, 1e-4},
      {1e-3, 1e-2, 1e-3, 1e-4}};
  std::vector<obs::PhaseTimes> measured = {
      {1.0, 10.0, 1.0, 0.1}, {1.1, 11.0, 1.1, 0.1}, {1.0, 60.0, 1.0, 0.1}};
  const auto mask = straggler_mask(measured, predicted, 4.0);
  ASSERT_EQ(mask.size(), 3u);
  EXPECT_FALSE(mask[0]);
  EXPECT_FALSE(mask[1]);
  EXPECT_TRUE(mask[2]);

  // Excluding the straggler via the alive mask clears every flag.
  const auto alive_mask =
      straggler_mask(measured, predicted, 4.0, {true, true, false});
  EXPECT_FALSE(alive_mask[0]);
  EXPECT_FALSE(alive_mask[1]);
  EXPECT_FALSE(alive_mask[2]);
}

TEST(Recovery, RedistributeDeadShareRenormalizes) {
  const auto shares = core::redistribute_dead_share({0.5, 0.3, 0.2}, 0);
  ASSERT_EQ(shares.size(), 3u);
  EXPECT_DOUBLE_EQ(shares[0], 0.0);
  EXPECT_NEAR(shares[1], 0.6, 1e-12);
  EXPECT_NEAR(shares[2], 0.4, 1e-12);
  EXPECT_NEAR(shares[0] + shares[1] + shares[2], 1.0, 1e-12);

  // Out-of-range dead index and all-dead platforms are left untouched.
  EXPECT_EQ(core::redistribute_dead_share({0.5, 0.5}, 7).size(), 2u);
  const auto all_dead = core::redistribute_dead_share({1.0, 0.0}, 0);
  EXPECT_DOUBLE_EQ(all_dead[0], 1.0);
}

TEST(Recovery, SplitEntriesRespectsRowBoundariesAndWeights) {
  data::RatingMatrix slice(10, 4);
  for (std::uint32_t u = 0; u < 10; ++u) {
    for (std::uint32_t i = 0; i < 3; ++i) {
      slice.add(u, i, 1.0f + static_cast<float>(i));
    }
  }
  slice.sort_by_row();
  const auto batches = split_entries_by_shares(slice, {0.5, 0.0, 0.5});
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_TRUE(batches[1].empty()) << "zero-weight receivers get nothing";

  std::size_t total = 0;
  std::set<std::uint32_t> seen_rows;
  for (const auto& batch : batches) {
    std::set<std::uint32_t> batch_rows;
    for (const auto& e : batch) batch_rows.insert(e.u);
    for (const auto row : batch_rows) {
      EXPECT_TRUE(seen_rows.insert(row).second)
          << "row " << row << " split across receivers";
    }
    total += batch.size();
  }
  EXPECT_EQ(total, slice.nnz()) << "every entry must land somewhere";
  EXPECT_NEAR(static_cast<double>(batches[0].size()),
              static_cast<double>(batches[2].size()), 3.0 + 1e-9)
      << "near-equal weights should split near-equally";
}

TEST(ConfigValidate, CollectsTypedErrors) {
  core::HccMfConfig config;
  config.platform = sim::paper_workstation_hetero();
  EXPECT_TRUE(config.validate().empty());

  config.sgd.epochs = 0;
  config.sgd.learn_rate = -0.5f;
  config.comm.streams = 0;
  config.fault.deadline_factor = 0.0;
  const auto errors = config.validate();
  std::set<core::ConfigErrorCode> codes;
  for (const auto& err : errors) {
    codes.insert(err.code);
    EXPECT_FALSE(err.message.empty());
  }
  EXPECT_TRUE(codes.contains(core::ConfigErrorCode::kZeroEpochs));
  EXPECT_TRUE(codes.contains(core::ConfigErrorCode::kBadLearnRate));
  EXPECT_TRUE(codes.contains(core::ConfigErrorCode::kZeroStreams));
  EXPECT_TRUE(codes.contains(core::ConfigErrorCode::kBadDeadlineFactor));
}

TEST(ConfigValidate, TrainRefusesInvalidConfig) {
  core::HccMfConfig config;
  config.sgd.epochs = 0;
  core::HccMf framework(config);
  data::RatingMatrix ratings(4, 4);
  ratings.add(0, 0, 1.0f);
  EXPECT_THROW((void)framework.train(ratings), std::invalid_argument);
  EXPECT_THROW((void)framework.simulate({"tiny", 4, 4, 1, 8}),
               std::invalid_argument);
}

}  // namespace
}  // namespace hcc::fault
