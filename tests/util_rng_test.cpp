// Tests for the deterministic RNG, Zipf sampler and shuffle.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <vector>

namespace hcc::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(123);
  Rng b(124);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(7);
  Rng child = parent.split();
  // The child must not replay the parent's outputs.
  Rng parent2(7);
  (void)parent2();  // consume the draw that seeded the child
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (child() == parent2());
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformU64RespectsBound) {
  Rng rng(42);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform_u64(bound), bound);
    }
  }
}

TEST(Rng, UniformU64CoversSmallRange) {
  Rng rng(42);
  std::map<std::uint64_t, int> hist;
  for (int i = 0; i < 6000; ++i) ++hist[rng.uniform_u64(6)];
  ASSERT_EQ(hist.size(), 6u);
  for (const auto& [value, count] : hist) {
    EXPECT_GT(count, 800) << "value " << value << " under-represented";
    EXPECT_LT(count, 1200) << "value " << value << " over-represented";
  }
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, NormalHasExpectedMoments) {
  Rng rng(99);
  const int n = 50000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(99);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 0.5);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Zipf, MostPopularIsIndexZero) {
  ZipfSampler zipf(100, 1.0);
  Rng rng(5);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf(rng)];
  EXPECT_EQ(std::max_element(counts.begin(), counts.end()) - counts.begin(),
            0);
  // Zipf(1.0): item 0 should be ~2x item 1 and ~10x item 9.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[0], 5 * counts[9]);
}

TEST(Zipf, CoversWholeRangeEventually) {
  ZipfSampler zipf(10, 0.5);
  Rng rng(6);
  std::vector<bool> seen(10, false);
  for (int i = 0; i < 5000; ++i) seen[zipf(rng)] = true;
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(Zipf, ZeroExponentIsUniform) {
  ZipfSampler zipf(4, 0.0);
  Rng rng(7);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 8000; ++i) ++counts[zipf(rng)];
  for (int c : counts) {
    EXPECT_GT(c, 1700);
    EXPECT_LT(c, 2300);
  }
}

TEST(Shuffle, ProducesPermutation) {
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  Rng rng(3);
  shuffle(v, rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Shuffle, ActuallyShuffles) {
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  Rng rng(3);
  shuffle(v, rng);
  int fixed = 0;
  for (int i = 0; i < 100; ++i) fixed += (v[i] == i);
  EXPECT_LT(fixed, 15);
}

TEST(Shuffle, HandlesDegenerateSizes) {
  Rng rng(3);
  std::vector<int> empty;
  shuffle(empty, rng);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  shuffle(one, rng);
  EXPECT_EQ(one[0], 42);
}

TEST(SplitMix, IsDeterministicMixer) {
  std::uint64_t s1 = 10;
  std::uint64_t s2 = 10;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
  // Consecutive outputs from the same state differ.
  const std::uint64_t first = splitmix64(s1);
  const std::uint64_t second = splitmix64(s1);
  EXPECT_NE(first, second);
}

}  // namespace
}  // namespace hcc::util
