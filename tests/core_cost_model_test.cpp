// Tests for the Eq. 2-5 cost model.
#include "core/cost_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "comm/strategy.hpp"

namespace hcc::core {
namespace {

sim::DatasetShape netflix_shape() {
  return {"netflix", 480190, 17771, 99072112, 128};
}
sim::DatasetShape r1_shape() { return {"r1", 1948883, 1101750, 115579437, 128}; }

sim::EpochConfig config_for(const sim::DatasetShape& shape,
                            const std::vector<double>& shares) {
  sim::EpochConfig cfg;
  cfg.shape = shape;
  cfg.server = sim::ServerSpec{};
  comm::CommConfig comm;
  comm.fp16 = false;
  const auto platform = sim::paper_workstation_hetero();
  for (std::size_t i = 0; i < shares.size(); ++i) {
    sim::WorkerPlan wp;
    wp.device = platform.workers[i];
    wp.share = shares[i];
    wp.comm = comm::make_comm_plan(comm, shape, wp.device);
    cfg.workers.push_back(wp);
  }
  return cfg;
}

TEST(CostModel, WorkerTimeHasPullComputePushTerms) {
  const auto shape = netflix_shape();
  const auto dev = sim::rtx_2080();
  comm::CommConfig comm;
  comm.fp16 = false;
  const auto plan = comm::make_comm_plan(comm, shape, dev);
  const double t = predicted_worker_seconds(dev, shape, 0.5, plan);
  const double comp = sim::compute_seconds(dev, shape, 0.5);
  EXPECT_GT(t, comp);  // comm adds on top of compute
  const double wire =
      (plan.pull_bytes + plan.push_bytes) /
      (sim::bus_bandwidth_gbs(dev.bus) * plan.bus_efficiency * 1e9);
  EXPECT_NEAR(t, comp + wire, 1e-12);
}

TEST(CostModel, StreamsDividePredictedCommTerm) {
  const auto shape = netflix_shape();
  const auto dev = sim::rtx_2080();
  comm::CommConfig comm;
  comm.fp16 = false;
  auto plan = comm::make_comm_plan(comm, shape, dev);
  const double t1 = predicted_worker_seconds(dev, shape, 0.5, plan);
  plan.streams = 4;
  const double t4 = predicted_worker_seconds(dev, shape, 0.5, plan);
  const double comp = sim::compute_seconds(dev, shape, 0.5);
  EXPECT_NEAR(t4 - comp, (t1 - comp) / 4.0, 1e-12);
}

TEST(CostModel, SyncSecondsMatchesEq3) {
  sim::ServerSpec server;
  sim::CommPlan plan;
  plan.sync_bytes = 4.0 * 128 * (480190.0 + 17771.0);  // k(m+n) elements
  const double t = predicted_sync_seconds(server, plan);
  const double elements = plan.sync_bytes / 4.0;
  const double expected = 3.0 * plan.sync_bytes / (server.mem_bandwidth_gbs * 1e9) +
                          elements / (server.compute_gflops * 1e9);
  EXPECT_NEAR(t, expected, expected * 1e-12);
}

TEST(CostModel, NetflixSyncIsNegligible) {
  // Netflix has a tiny Q (n = 17771): compute dominates sync by far more
  // than lambda = 10, selecting the first branch of Eq. 5 (hence DP1).
  const auto prediction =
      predict_epoch(config_for(netflix_shape(), {0.4, 0.13, 0.35, 0.12}));
  EXPECT_TRUE(prediction.sync_negligible);
  EXPECT_GT(prediction.ratio, 10.0);
  EXPECT_DOUBLE_EQ(prediction.total_s, prediction.max_worker_s);
}

TEST(CostModel, R1SyncIsNotNegligible) {
  // R1's Q has 1.1M rows: sync is comparable to compute (hence DP2).
  const auto prediction =
      predict_epoch(config_for(r1_shape(), {0.4, 0.1, 0.35, 0.15}));
  EXPECT_FALSE(prediction.sync_negligible);
  EXPECT_LT(prediction.ratio, 10.0);
  EXPECT_NEAR(prediction.total_s,
              prediction.max_worker_s + prediction.sync_s, 1e-12);
}

TEST(CostModel, LambdaBoundaryIsRespected) {
  const auto cfg = config_for(netflix_shape(), {0.4, 0.13, 0.35, 0.12});
  const auto base = predict_epoch(cfg, 10.0);
  // Raising lambda above the measured ratio flips the branch.
  const auto strict = predict_epoch(cfg, base.ratio * 2.0);
  EXPECT_FALSE(strict.sync_negligible);
  EXPECT_GT(strict.total_s, base.total_s);
}

TEST(CostModel, PredictionListsEveryWorker) {
  const auto prediction =
      predict_epoch(config_for(netflix_shape(), {0.25, 0.25, 0.25, 0.25}));
  ASSERT_EQ(prediction.worker_seconds.size(), 4u);
  for (double t : prediction.worker_seconds) EXPECT_GT(t, 0.0);
  EXPECT_DOUBLE_EQ(
      prediction.max_worker_s,
      *std::max_element(prediction.worker_seconds.begin(),
                        prediction.worker_seconds.end()));
}

TEST(CostModel, EvenSplitIsImbalancedOnHeterogeneousPlatform) {
  // An even split across 2080S/6242/2080/6242L leaves a big spread —
  // the "unbalanced data" pathology of Figure 3(a).
  const auto prediction =
      predict_epoch(config_for(netflix_shape(), {0.25, 0.25, 0.25, 0.25}));
  EXPECT_GT(worker_time_spread(prediction.worker_seconds), 0.5);
}

TEST(CostModel, SpreadOfEqualTimesIsZero) {
  EXPECT_DOUBLE_EQ(worker_time_spread({1.0, 1.0, 1.0}), 0.0);
  EXPECT_NEAR(worker_time_spread({1.0, 1.5}), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(worker_time_spread({}), 0.0);
}

TEST(CostModel, EmptyPlatformPredictsZero) {
  sim::EpochConfig cfg;
  cfg.shape = netflix_shape();
  const auto prediction = predict_epoch(cfg);
  EXPECT_DOUBLE_EQ(prediction.total_s, 0.0);
  EXPECT_TRUE(prediction.sync_negligible);
}

}  // namespace
}  // namespace hcc::core
