// Registry semantics: counters/gauges/histograms, including under
// concurrent writers (the instrumented workers run on many threads).
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

namespace hcc::obs {
namespace {

TEST(MetricsTest, CounterAccumulates) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(MetricsTest, RegistryReturnsStableInstances) {
  MetricsRegistry reg;
  Counter& a = reg.counter("a");
  Counter& b = reg.counter("b");
  a.add(1);
  EXPECT_EQ(&reg.counter("a"), &a);
  EXPECT_NE(&a, &b);
  EXPECT_EQ(reg.counter("a").value(), 1u);
  EXPECT_EQ(reg.counter("b").value(), 0u);
}

TEST(MetricsTest, GaugeKeepsLastValue) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("drift");
  g.set(0.25);
  g.set(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), -0.5);
}

TEST(MetricsTest, HistogramBucketsByUpperBound) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("t", {1.0, 2.0, 4.0});
  for (double v : {0.5, 1.0, 1.5, 3.0, 100.0}) h.observe(v);
  // <=1 | <=2 | <=4 | overflow
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);  // 0.5 and the inclusive 1.0
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_NEAR(h.sum(), 106.0, 1e-12);
  EXPECT_NEAR(h.mean(), 21.2, 1e-12);
}

TEST(MetricsTest, HistogramSortsBounds) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("t", {4.0, 1.0, 2.0});
  EXPECT_EQ(h.bounds(), (std::vector<double>{1.0, 2.0, 4.0}));
}

TEST(MetricsTest, CountersSafeUnderConcurrentWriters) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Lookup inside the thread exercises creation-vs-use races too.
      Counter& c = reg.counter("shared");
      Histogram& h = reg.histogram("shared_h", {1.0});
      for (int i = 0; i < kIters; ++i) {
        c.add();
        h.observe(0.5);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter("shared").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  Histogram& h = reg.histogram("shared_h", {1.0});
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_NEAR(h.sum(), kThreads * kIters * 0.5, 1e-6);
  EXPECT_EQ(h.bucket_counts()[0], static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(MetricsTest, ToJsonListsAllMetricKinds) {
  MetricsRegistry reg;
  reg.counter("bytes").add(7);
  reg.gauge("err").set(0.125);
  reg.histogram("lat", {1.0, 2.0}).observe(1.5);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"bytes\":7"), std::string::npos);
  EXPECT_NE(json.find("\"err\":0.125"), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[0,1,0]"), std::string::npos);
}

TEST(MetricsTest, ToJsonEscapesNames) {
  MetricsRegistry reg;
  reg.counter("we\"ird\nname").add(1);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("we\\\"ird\\nname"), std::string::npos);
}

TEST(MetricsTest, WriteMetricsJsonRoundTripsToDisk) {
  MetricsRegistry reg;
  reg.counter("x").add(3);
  const std::string path = "/tmp/hccmf_obs_metrics_test.json";
  ASSERT_TRUE(write_metrics_json(reg, path));
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"x\":3"), std::string::npos);
  std::filesystem::remove(path);
  EXPECT_FALSE(write_metrics_json(reg, "/nonexistent_dir/x.json"));
}

TEST(MetricsTest, GlobalRegistryIsSingleton) {
  EXPECT_EQ(&registry(), &registry());
}

}  // namespace
}  // namespace hcc::obs
