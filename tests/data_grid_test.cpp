// Tests for the row/column grid partitioner — invariants per grid.hpp:
// the grid tiles the dimension exactly and nnz targets are honored.
#include "data/grid.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "data/datasets.hpp"
#include "util/rng.hpp"

namespace hcc::data {
namespace {

RatingMatrix zipf_matrix(std::uint32_t rows, std::uint32_t cols,
                         std::size_t nnz, std::uint64_t seed) {
  util::Rng rng(seed);
  util::ZipfSampler row_pop(rows, 0.8);
  util::ZipfSampler col_pop(cols, 0.8);
  RatingMatrix m(rows, cols);
  for (std::size_t e = 0; e < nnz; ++e) {
    m.add(static_cast<std::uint32_t>(row_pop(rng)),
          static_cast<std::uint32_t>(col_pop(rng)),
          static_cast<float>(1 + rng.uniform_u64(5)));
  }
  return m;
}

TEST(ChooseGrid, RowWhenTallerColumnWhenWider) {
  EXPECT_EQ(choose_grid(RatingMatrix(10, 5)), GridKind::kRow);
  EXPECT_EQ(choose_grid(RatingMatrix(5, 10)), GridKind::kColumn);
  EXPECT_EQ(choose_grid(RatingMatrix(5, 5)), GridKind::kRow);
}

TEST(MakeGrid, RejectsBadFractions) {
  const RatingMatrix m = zipf_matrix(50, 20, 500, 1);
  EXPECT_THROW(make_grid(m, GridKind::kRow, {}), std::invalid_argument);
  EXPECT_THROW(make_grid(m, GridKind::kRow, {0.5, 0.4}),
               std::invalid_argument);
  EXPECT_THROW(make_grid(m, GridKind::kRow, {1.5, -0.5}),
               std::invalid_argument);
}

TEST(MakeGrid, SingleWorkerGetsEverything) {
  const RatingMatrix m = zipf_matrix(50, 20, 500, 2);
  const auto grid = make_grid(m, GridKind::kRow, {1.0});
  ASSERT_EQ(grid.size(), 1u);
  EXPECT_EQ(grid[0].begin, 0u);
  EXPECT_EQ(grid[0].end, 50u);
  EXPECT_EQ(grid[0].nnz, 500u);
}

TEST(MakeGrid, ColumnGridUsesColumnCounts) {
  const RatingMatrix m = zipf_matrix(20, 60, 600, 3);
  const auto grid = make_grid(m, GridKind::kColumn, {0.5, 0.5});
  ASSERT_EQ(grid.size(), 2u);
  EXPECT_EQ(grid[0].begin, 0u);
  EXPECT_EQ(grid[1].end, 60u);
  EXPECT_EQ(grid[0].nnz + grid[1].nnz, 600u);
}

TEST(MakeGrid, ZeroShareWorkerGetsEmptyRange) {
  const RatingMatrix m = zipf_matrix(50, 20, 500, 4);
  const auto grid = make_grid(m, GridKind::kRow, {0.0, 1.0});
  EXPECT_EQ(grid[0].nnz, 0u);
  EXPECT_EQ(grid[0].width(), 0u);
  EXPECT_EQ(grid[1].nnz, 500u);
}

TEST(AssignSlices, RowSlicesHoldExactlyTheGridRows) {
  RatingMatrix m = zipf_matrix(40, 15, 400, 5);
  const auto grid = make_grid(m, GridKind::kRow, {0.3, 0.3, 0.4});
  const auto slices = assign_slices(m, GridKind::kRow, grid);
  ASSERT_EQ(slices.size(), 3u);
  std::size_t total = 0;
  for (std::size_t w = 0; w < 3; ++w) {
    EXPECT_EQ(slices[w].nnz(), grid[w].nnz);
    for (const auto& e : slices[w].entries()) {
      EXPECT_GE(e.u, grid[w].begin);
      EXPECT_LT(e.u, grid[w].end);
    }
    total += slices[w].nnz();
  }
  EXPECT_EQ(total, 400u);
}

TEST(AssignSlices, ColumnGridTransposesCoordinates) {
  RatingMatrix m = zipf_matrix(10, 40, 300, 6);
  const auto grid = make_grid(m, GridKind::kColumn, {0.5, 0.5});
  const auto slices = assign_slices(m, GridKind::kColumn, grid);
  // After transposition, slices index by the original columns.
  for (std::size_t w = 0; w < 2; ++w) {
    for (const auto& e : slices[w].entries()) {
      EXPECT_GE(e.u, grid[w].begin);
      EXPECT_LT(e.u, grid[w].end);
      EXPECT_LT(e.i, 10u);  // original rows are now columns
    }
  }
}

// Property sweep over worker counts and skew: the grid always tiles [0, dim)
// and the realized nnz fractions stay reasonably close to the targets.
class GridProperty
    : public ::testing::TestWithParam<std::tuple<int, double, std::uint64_t>> {
};

TEST_P(GridProperty, TilesAndApproximatesTargets) {
  const auto [workers, skew, seed] = GetParam();
  util::Rng rng(seed);
  const RatingMatrix m = zipf_matrix(1000, 50, 20000, seed);

  // Random positive fractions, normalized.
  std::vector<double> fractions(workers);
  double sum = 0.0;
  for (auto& f : fractions) {
    f = 0.2 + rng.uniform();
    sum += f;
  }
  for (auto& f : fractions) f /= sum;
  (void)skew;

  const auto grid = make_grid(m, GridKind::kRow, fractions);
  ASSERT_EQ(grid.size(), static_cast<std::size_t>(workers));

  // Invariant 1: exact tiling — contiguous, ordered, covering.
  EXPECT_EQ(grid.front().begin, 0u);
  EXPECT_EQ(grid.back().end, m.rows());
  for (std::size_t w = 1; w < grid.size(); ++w) {
    EXPECT_EQ(grid[w].begin, grid[w - 1].end);
  }

  // Invariant 2: nnz conservation.
  std::size_t total = 0;
  for (const auto& r : grid) total += r.nnz;
  EXPECT_EQ(total, m.nnz());

  // Invariant 3: with 1000 rows over 20k entries, each worker's realized
  // fraction lands within a few rows' worth of its target.
  for (std::size_t w = 0; w < grid.size(); ++w) {
    const double realized =
        static_cast<double>(grid[w].nnz) / static_cast<double>(m.nnz());
    EXPECT_NEAR(realized, fractions[w], 0.08)
        << "worker " << w << " of " << workers;
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorkerSweep, GridProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 6, 8),
                       ::testing::Values(0.0, 0.8),
                       ::testing::Values(11ull, 22ull)));

}  // namespace
}  // namespace hcc::data
