// Tests for the runtime-adaptive repartitioning controller and its HccMf
// integration.
#include "core/adaptive.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/hccmf.hpp"

namespace hcc::core {
namespace {

TEST(AdaptiveController, RejectsBadInputs) {
  EXPECT_THROW(AdaptiveController({}, {}), std::invalid_argument);
  AdaptiveOptions bad;
  bad.gain = 0.0;
  EXPECT_THROW(AdaptiveController({0.5, 0.5}, bad), std::invalid_argument);
  AdaptiveController ok({0.5, 0.5});
  EXPECT_THROW(ok.observe({1.0}), std::invalid_argument);
}

TEST(AdaptiveController, BalancedTimesLeaveSharesAlone) {
  AdaptiveController c({0.5, 0.3, 0.2});
  EXPECT_FALSE(c.observe({1.0, 1.02, 0.99}));
  EXPECT_EQ(c.repartitions(), 0u);
  EXPECT_DOUBLE_EQ(c.shares()[0], 0.5);
}

TEST(AdaptiveController, RebalancesProportionally) {
  AdaptiveOptions options;
  options.gain = 1.0;  // undamped: exact proportional fix
  options.cooldown_epochs = 0;
  AdaptiveController c({0.5, 0.5}, options);
  // Worker 0 twice as slow as worker 1: its share must shrink.
  ASSERT_TRUE(c.observe({2.0, 1.0}));
  EXPECT_EQ(c.repartitions(), 1u);
  EXPECT_LT(c.shares()[0], c.shares()[1]);
  EXPECT_NEAR(std::accumulate(c.shares().begin(), c.shares().end(), 0.0),
              1.0, 1e-12);
  // Exact fix with linear times: t_i' = t_i * new/old equalizes at the
  // mean: shares 0.5*(1.5/2)=0.375 and 0.5*(1.5/1)=0.75 -> 1/3, 2/3.
  EXPECT_NEAR(c.shares()[0], 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(c.shares()[1], 2.0 / 3.0, 1e-9);
}

TEST(AdaptiveController, CooldownSuppressesBackToBackRebalances) {
  AdaptiveOptions options;
  options.cooldown_epochs = 2;
  AdaptiveController c({0.5, 0.5}, options);
  EXPECT_TRUE(c.observe({2.0, 1.0}));
  EXPECT_FALSE(c.observe({2.0, 1.0}));  // cooling down
  EXPECT_FALSE(c.observe({2.0, 1.0}));
  EXPECT_TRUE(c.observe({2.0, 1.0}));   // eligible again
  EXPECT_EQ(c.repartitions(), 2u);
}

TEST(AdaptiveController, IgnoresPrunedWorkers) {
  AdaptiveController c({0.7, 0.3, 0.0});
  // The zero-share worker's (meaningless) time must not trigger anything.
  EXPECT_FALSE(c.observe({1.0, 1.0, 50.0}));
  EXPECT_TRUE(c.observe({3.0, 1.0, 50.0}));
  EXPECT_DOUBLE_EQ(c.shares()[2], 0.0);
}

TEST(AdaptiveController, DampedGainMovesGradually) {
  AdaptiveOptions options;
  options.gain = 0.5;
  options.cooldown_epochs = 0;
  AdaptiveController c({0.5, 0.5}, options);
  ASSERT_TRUE(c.observe({2.0, 1.0}));
  // Halfway between 0.5 and the proportional target 0.375 -> ~0.4375
  // (pre-normalization; normalization shifts both slightly).
  EXPECT_GT(c.shares()[0], 1.0 / 3.0);
  EXPECT_LT(c.shares()[0], 0.5);
}

TEST(AdaptiveHccMf, RecoversFromMidTrainingThrottle) {
  // The 2080S throttles to 50% from epoch 10 on; static partitioning eats
  // the full slowdown, the adaptive run shifts data away and recovers a
  // good part of it.
  const sim::DatasetShape shape{"netflix", 480190, 17771, 99072112, 128};
  auto throttle = [](std::uint32_t epoch, std::size_t worker) {
    return (worker == 0 && epoch >= 10) ? 0.5 : 1.0;  // worker 0 = 2080S
  };

  HccMfConfig base;
  base.sgd.epochs = 40;
  base.platform = sim::paper_workstation_hetero();
  base.dataset_name = "netflix";
  base.rate_disturbance = throttle;

  HccMfConfig adaptive = base;
  adaptive.adaptive_repartition = true;

  const TrainReport static_run = HccMf(base).simulate(shape);
  const TrainReport adaptive_run = HccMf(adaptive).simulate(shape);

  EXPECT_EQ(static_run.repartitions, 0u);
  EXPECT_GE(adaptive_run.repartitions, 1u);
  EXPECT_LT(adaptive_run.total_virtual_s, 0.97 * static_run.total_virtual_s);
}

TEST(AdaptiveHccMf, NoDisturbanceMeansNoRepartition) {
  const sim::DatasetShape shape{"netflix", 480190, 17771, 99072112, 128};
  HccMfConfig config;
  config.sgd.epochs = 20;
  config.platform = sim::paper_workstation_hetero();
  config.dataset_name = "netflix";
  config.adaptive_repartition = true;
  const TrainReport report = HccMf(config).simulate(shape);
  // DP1 already balanced the plan; 3% jitter stays under the threshold.
  EXPECT_EQ(report.repartitions, 0u);
}

}  // namespace
}  // namespace hcc::core
