// Tests for the runtime SIMD dispatch layer: ISA detection, the HCCMF_SIMD
// override resolution rule, and table completeness.
#include "simd/dispatch.hpp"

#include <gtest/gtest.h>

#include <string>

namespace hcc::simd {
namespace {

constexpr Isa kAllIsas[] = {Isa::kScalar, Isa::kNeon, Isa::kAvx2,
                            Isa::kAvx512};

TEST(Dispatch, ScalarIsAlwaysAvailable) {
  EXPECT_TRUE(isa_available(Isa::kScalar));
  const KernelTable* table = kernels_for(Isa::kScalar);
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->isa, Isa::kScalar);
  EXPECT_STREQ(table->name, "scalar");
}

TEST(Dispatch, EveryAvailableTableIsComplete) {
  for (const Isa isa : kAllIsas) {
    const KernelTable* table = kernels_for(isa);
    if (table == nullptr) {
      EXPECT_FALSE(isa_available(isa));
      continue;
    }
    EXPECT_TRUE(isa_available(isa));
    EXPECT_EQ(table->isa, isa);
    EXPECT_STREQ(table->name, isa_name(isa));
    EXPECT_NE(table->dot, nullptr) << isa_name(isa);
    EXPECT_NE(table->sgd_update, nullptr) << isa_name(isa);
    EXPECT_NE(table->sgd_update_with_error, nullptr) << isa_name(isa);
    EXPECT_NE(table->sum_squares, nullptr) << isa_name(isa);
    EXPECT_NE(table->all_finite, nullptr) << isa_name(isa);
    EXPECT_NE(table->fp16_encode, nullptr) << isa_name(isa);
    EXPECT_NE(table->fp16_decode, nullptr) << isa_name(isa);
  }
}

TEST(Dispatch, DetectedIsaIsAvailable) {
  const Isa best = detect_best_isa();
  EXPECT_TRUE(isa_available(best));
  EXPECT_NE(kernels_for(best), nullptr);
}

TEST(Dispatch, ParseIsaRoundTripsEveryName) {
  for (const Isa isa : kAllIsas) {
    Isa parsed = Isa::kScalar;
    ASSERT_TRUE(parse_isa(isa_name(isa), parsed)) << isa_name(isa);
    EXPECT_EQ(parsed, isa);
  }
}

TEST(Dispatch, ParseIsaRejectsUnknownNamesUntouched) {
  Isa out = Isa::kAvx2;
  EXPECT_FALSE(parse_isa("sse9", out));
  EXPECT_FALSE(parse_isa("", out));
  EXPECT_FALSE(parse_isa("AVX2", out));  // case-sensitive by contract
  EXPECT_FALSE(parse_isa("scalar ", out));
  EXPECT_EQ(out, Isa::kAvx2);
}

TEST(Dispatch, ResolveWithoutOverrideAutoDetects) {
  EXPECT_EQ(resolve_isa(nullptr), detect_best_isa());
  EXPECT_EQ(resolve_isa(""), detect_best_isa());
}

TEST(Dispatch, ResolveHonoursAvailableOverride) {
  // Scalar is available everywhere, so this override must always win.
  EXPECT_EQ(resolve_isa("scalar"), Isa::kScalar);
  // Any available ISA must be selectable by name.
  for (const Isa isa : kAllIsas) {
    if (isa_available(isa)) {
      EXPECT_EQ(resolve_isa(isa_name(isa)), isa) << isa_name(isa);
    }
  }
}

TEST(Dispatch, ResolveFallsBackOnBadOrUnavailableOverride) {
  EXPECT_EQ(resolve_isa("bogus-isa"), detect_best_isa());
  for (const Isa isa : kAllIsas) {
    if (!isa_available(isa)) {
      EXPECT_EQ(resolve_isa(isa_name(isa)), detect_best_isa())
          << isa_name(isa);
    }
  }
}

TEST(Dispatch, ProcessWideTableMatchesActiveIsa) {
  const KernelTable& table = kernels();
  EXPECT_EQ(table.isa, active_isa());
  EXPECT_TRUE(isa_available(table.isa));
  EXPECT_EQ(&table, kernels_for(table.isa));
  // Resolution is cached: repeated calls hand out the same table.
  EXPECT_EQ(&kernels(), &table);
}

TEST(Dispatch, IsaNamesAreStable) {
  EXPECT_STREQ(isa_name(Isa::kScalar), "scalar");
  EXPECT_STREQ(isa_name(Isa::kNeon), "neon");
  EXPECT_STREQ(isa_name(Isa::kAvx2), "avx2");
  EXPECT_STREQ(isa_name(Isa::kAvx512), "avx512");
}

}  // namespace
}  // namespace hcc::simd
