// Cross-module property tests (parameterized sweeps over shapes, worker
// counts and strategies).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <tuple>

#include "comm/strategy.hpp"
#include "core/data_manager.hpp"
#include "core/hccmf.hpp"
#include "sim/timing.hpp"

namespace hcc {
namespace {

sim::DatasetShape shape_by_name(const std::string& name) {
  if (name == "netflix") return {"netflix", 480190, 17771, 99072112, 128};
  if (name == "r1") return {"r1", 1948883, 1101750, 115579437, 128};
  if (name == "r1star") return {"r1star", 1948883, 1101750, 199999997, 128};
  if (name == "r2") return {"r2", 1000000, 136736, 383838609, 128};
  return {"movielens", 138494, 131263, 20000260, 128};
}

// Property 1: for every dataset x strategy, the plan's shares form a valid
// distribution and the predicted epoch time is positive and finite.
class PlanProperty
    : public ::testing::TestWithParam<
          std::tuple<std::string, core::PartitionStrategy>> {};

TEST_P(PlanProperty, SharesValidAndPredictionFinite) {
  const auto [dataset, strategy] = GetParam();
  comm::CommConfig comm;
  core::DataManager mgr(sim::paper_workstation_hetero(),
                        shape_by_name(dataset), comm);
  const core::Plan plan = mgr.plan(strategy);
  double sum = 0.0;
  for (double s : plan.shares) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
    sum += s;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(plan.prediction.total_s, 0.0);
  EXPECT_TRUE(std::isfinite(plan.prediction.total_s));
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasetsAllStrategies, PlanProperty,
    ::testing::Combine(
        ::testing::Values("netflix", "r1", "r1star", "r2", "movielens"),
        ::testing::Values(core::PartitionStrategy::kEven,
                          core::PartitionStrategy::kDp0,
                          core::PartitionStrategy::kDp1,
                          core::PartitionStrategy::kDp2,
                          core::PartitionStrategy::kAuto)));

// Property 2: simulated epoch time never improves when a worker is removed
// (more hardware never hurts under balanced partitions) — the Figure 9
// monotonicity.
class ScalingProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(ScalingProperty, AddingWorkersNeverSlowsTraining) {
  const sim::DatasetShape shape = shape_by_name(GetParam());
  const auto all = sim::paper_workstation_hetero().workers;
  core::HccMfConfig config;
  config.sgd.epochs = 20;
  config.partition = core::PartitionStrategy::kAuto;
  config.comm.streams = 4;  // let GPU copy engines hide their transfers
  config.dataset_name = shape.name;

  // Figure 9 adds 2080S, 6242, 2080, 6242L in turn — except on R1, where
  // the paper itself shows only three workers (Figure 9c): the weak local
  // CPU's extra sync outweighs its compute on that sync-bound set.  Our
  // model reproduces that, so R1 only asserts monotonicity up to 3.
  const std::size_t max_workers = GetParam() == "r1" ? 3 : all.size();

  double prev = 1e100;
  for (std::size_t count = 1; count <= max_workers; ++count) {
    config.platform.name = "subset";
    config.platform.workers.assign(all.begin(), all.begin() + count);
    const double total =
        core::HccMf(config).simulate(shape).total_virtual_s;
    // "Never slows" modulo the extra sync the new worker brings (Section
    // 4.5 observes weaker marginal contributions on R1/R1*, not slowdowns).
    EXPECT_LE(total, prev * 1.10)
        << "adding worker " << count << " slowed training";
    prev = total;
  }
}

INSTANTIATE_TEST_SUITE_P(FourDatasets, ScalingProperty,
                         ::testing::Values("netflix", "r2", "r1", "r1star"));

// Property 3: each communication optimization strategy monotonically
// reduces the simulated communication time on every dataset.
class CommOptProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(CommOptProperty, EachStrategyReducesCommTime) {
  const sim::DatasetShape shape = shape_by_name(GetParam());
  core::HccMfConfig config;
  config.sgd.epochs = 20;
  config.platform = sim::paper_workstation_hetero();
  config.dataset_name = shape.name;

  config.comm.reduce_payload = false;
  config.comm.fp16 = false;
  const double pq = core::HccMf(config).simulate(shape).comm_virtual_s;

  config.comm.reduce_payload = true;
  const double q_only = core::HccMf(config).simulate(shape).comm_virtual_s;

  config.comm.fp16 = true;
  const double half_q = core::HccMf(config).simulate(shape).comm_virtual_s;

  EXPECT_LT(q_only, pq);
  EXPECT_LT(half_q, q_only);
  // Table 5's floor: FP16 gives at least 2x over Q-only.
  EXPECT_GT(q_only / half_q, 2.0);
}

INSTANTIATE_TEST_SUITE_P(FiveDatasets, CommOptProperty,
                         ::testing::Values("netflix", "r1", "r2",
                                           "movielens"));

// Property 4: the timing engine conserves work — cumulative compute time
// across workers is independent of the partition strategy (only its
// distribution changes), within drift effects.
class ConservationProperty
    : public ::testing::TestWithParam<core::PartitionStrategy> {};

TEST_P(ConservationProperty, TotalComputeRoughlyInvariant) {
  const sim::DatasetShape shape = shape_by_name("netflix");
  comm::CommConfig comm;
  core::DataManagerOptions options;
  options.measure_jitter = 0.0;
  core::DataManager mgr(sim::paper_workstation_hetero(), shape, comm,
                        options);

  auto total_updates = [&](const core::Plan& plan) {
    // Each worker's compute seconds x its update rate = updates processed;
    // summed over workers this must equal nnz regardless of partition.
    sim::EpochConfig cfg = mgr.epoch_config(plan);
    cfg.jitter = 0.0;
    // Disable sync (whose busy time is charged to the server-sharing
    // worker) and the fixed epoch overhead so compute_s is pure SGD work;
    // both effects are tested separately in sim_timing.
    for (auto& w : cfg.workers) {
      w.comm.sync_bytes = 0.0;
      w.device.epoch_overhead_s = 0.0;
    }
    const sim::EpochTiming t = sim::simulate_epoch(cfg);
    double updates = 0.0;
    for (std::size_t i = 0; i < t.workers.size(); ++i) {
      updates += t.workers[i].compute_s *
                 sim::update_rate(cfg.workers[i].device, shape,
                                  cfg.workers[i].share);
    }
    return updates;
  };

  const core::Plan plan = mgr.plan(GetParam());
  EXPECT_NEAR(total_updates(plan) / static_cast<double>(shape.nnz), 1.0,
              1e-6);
}

INSTANTIATE_TEST_SUITE_P(Strategies, ConservationProperty,
                         ::testing::Values(core::PartitionStrategy::kEven,
                                           core::PartitionStrategy::kDp0,
                                           core::PartitionStrategy::kDp1,
                                           core::PartitionStrategy::kDp2));

// Property 5: functional HCC-MF training reduces test RMSE on every paper
// dataset shape (scaled down), with every comm optimization enabled.
class ConvergenceProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(ConvergenceProperty, ScaledDatasetConverges) {
  const data::DatasetSpec base = data::dataset_by_name(GetParam());
  // Keep the largest sets tiny so the sweep stays fast on one core.
  const double scale = 2.0e4 / static_cast<double>(base.nnz) * 10.0;
  const data::DatasetSpec spec = base.scaled(std::min(0.01, scale));
  data::GeneratorConfig gen;
  gen.seed = 21;
  gen.planted_rank = 4;
  const data::RatingMatrix ratings = data::generate(spec, gen);

  core::HccMfConfig config;
  // Scale the step size to the rating range (R1's 0-100 scale needs a much
  // smaller gamma than the 5-point sets, as in the paper's Table 3 setup).
  const float lr = 0.01f * (5.0f / std::max(5.0f, spec.rating_max));
  config.sgd = mf::SgdConfig::for_dataset(0.02f, lr, 8);
  config.sgd.epochs = 5;
  config.comm.fp16 = true;
  config.comm.streams = 2;
  config.platform = sim::paper_workstation_hetero();
  for (auto& w : config.platform.workers) w.epoch_overhead_s = 0.0;
  config.dataset_name = spec.name;

  const core::TrainReport report =
      core::HccMf(config).train(ratings, &ratings);
  EXPECT_LT(report.epochs.back().test_rmse,
            report.epochs.front().test_rmse * 1.001)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(FiveDatasets, ConvergenceProperty,
                         ::testing::Values("netflix", "r1", "r2",
                                           "movielens"));

}  // namespace
}  // namespace hcc
