// Tests for the quantized serving factor store (serve/store.hpp): decode
// accuracy per kind, footprint ratios, odd-rank tail blocks.
#include "serve/store.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "simd/dispatch.hpp"
#include "util/rng.hpp"

namespace hcc::serve {
namespace {

std::vector<float> random_rows(std::size_t rows, std::uint32_t k,
                               std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(rows * k);
  for (auto& x : v) x = static_cast<float>(rng.normal(0.0, 0.6));
  return v;
}

FactorStore make_store(StoreKind kind, std::uint32_t users,
                       std::uint32_t items, std::uint32_t k,
                       const std::vector<float>& p,
                       const std::vector<float>& q) {
  return FactorStore(kind, users, items, k, p, q);
}

TEST(ServeStore, KindNamesRoundTrip) {
  for (const StoreKind kind :
       {StoreKind::kFp32, StoreKind::kFp16, StoreKind::kInt8}) {
    StoreKind parsed = StoreKind::kFp32;
    ASSERT_TRUE(parse_store_kind(store_kind_name(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  StoreKind parsed = StoreKind::kInt8;
  EXPECT_FALSE(parse_store_kind("fp64", &parsed));
  EXPECT_EQ(parsed, StoreKind::kInt8);  // untouched on failure
}

TEST(ServeStore, Fp32RoundTripIsExact) {
  const std::uint32_t users = 5, items = 9, k = 17;
  const auto p = random_rows(users, k, 1);
  const auto q = random_rows(items, k, 2);
  const auto store = make_store(StoreKind::kFp32, users, items, k, p, q);
  std::vector<float> row(k);
  for (std::uint32_t u = 0; u < users; ++u) {
    store.decode_p_row(u, row.data());
    for (std::uint32_t f = 0; f < k; ++f) {
      EXPECT_EQ(row[f], p[std::size_t(u) * k + f]);
    }
    EXPECT_EQ(store.p_row_fp32(u)[0], p[std::size_t(u) * k]);
  }
  std::vector<float> rows(std::size_t(items) * k);
  store.decode_q_rows(0, items, rows.data());
  for (std::size_t f = 0; f < rows.size(); ++f) EXPECT_EQ(rows[f], q[f]);
}

TEST(ServeStore, Fp16WithinRelativeErrorBound) {
  const std::uint32_t users = 4, items = 32, k = 40;
  const auto p = random_rows(users, k, 3);
  const auto q = random_rows(items, k, 4);
  const auto store = make_store(StoreKind::kFp16, users, items, k, p, q);
  EXPECT_EQ(store.p_row_fp32(0), nullptr);
  std::vector<float> rows(std::size_t(items) * k);
  store.decode_q_rows(0, items, rows.data());
  for (std::size_t f = 0; f < rows.size(); ++f) {
    EXPECT_NEAR(rows[f], q[f],
                std::abs(q[f]) * util::kFp16RelativeError + 1e-7f);
  }
}

TEST(ServeStore, Int8WithinPerBlockScaleBound) {
  // k = 70 exercises a full 64-feature scale block plus a 6-feature tail.
  const std::uint32_t users = 3, items = 21, k = 70;
  const auto p = random_rows(users, k, 5);
  const auto q = random_rows(items, k, 6);
  const auto store = make_store(StoreKind::kInt8, users, items, k, p, q);
  const auto& kt = simd::kernels();
  std::vector<float> rows(std::size_t(items) * k);
  store.decode_q_rows(0, items, rows.data());
  for (std::uint32_t i = 0; i < items; ++i) {
    const float* orig = q.data() + std::size_t(i) * k;
    const float* dec = rows.data() + std::size_t(i) * k;
    for (std::uint32_t b = 0; b * kScaleBlock < k; ++b) {
      const std::uint32_t off = b * kScaleBlock;
      const std::uint32_t elems = std::min(kScaleBlock, k - off);
      // RNE quantization: |err| <= scale/2 = absmax/254 within each block.
      const float bound = kt.absmax(orig + off, elems) / 254.0f + 1e-7f;
      for (std::uint32_t f = 0; f < elems; ++f) {
        EXPECT_NEAR(dec[off + f], orig[off + f], bound)
            << "item " << i << " feature " << off + f;
      }
    }
  }
}

TEST(ServeStore, FootprintRatiosMeetTargets) {
  const std::uint32_t users = 200, items = 500, k = 64;
  const auto p = random_rows(users, k, 7);
  const auto q = random_rows(items, k, 8);
  const auto fp32 = make_store(StoreKind::kFp32, users, items, k, p, q);
  const auto fp16 = make_store(StoreKind::kFp16, users, items, k, p, q);
  const auto int8 = make_store(StoreKind::kInt8, users, items, k, p, q);
  const double base = static_cast<double>(fp32.store_bytes());
  EXPECT_EQ(fp32.store_bytes(), std::size_t(users + items) * k * 4);
  EXPECT_GE(base / static_cast<double>(fp16.store_bytes()), 1.9);
  EXPECT_GE(base / static_cast<double>(int8.store_bytes()), 3.0);
  EXPECT_EQ(fp16.q_row_bytes(), std::size_t(k) * 2);
  EXPECT_EQ(int8.q_row_bytes(), std::size_t(k));
}

TEST(ServeStore, PartialDecodeMatchesFullDecode) {
  const std::uint32_t users = 2, items = 40, k = 33;
  const auto p = random_rows(users, k, 9);
  const auto q = random_rows(items, k, 10);
  for (const StoreKind kind :
       {StoreKind::kFp32, StoreKind::kFp16, StoreKind::kInt8}) {
    const auto store = make_store(kind, users, items, k, p, q);
    std::vector<float> full(std::size_t(items) * k);
    store.decode_q_rows(0, items, full.data());
    std::vector<float> part(std::size_t(13) * k);
    store.decode_q_rows(17, 13, part.data());
    for (std::size_t f = 0; f < part.size(); ++f) {
      EXPECT_EQ(part[f], full[std::size_t(17) * k + f])
          << store_kind_name(kind);
    }
  }
}

}  // namespace
}  // namespace hcc::serve
