// Tests for cold-start fold-in (serve/foldin.hpp) against a dense
// least-squares reference solved independently in double precision.
#include "serve/foldin.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace hcc::serve {
namespace {

std::vector<float> random_rows(std::size_t rows, std::uint32_t k,
                               std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(rows * k);
  for (auto& x : v) x = static_cast<float>(rng.normal(0.0, 0.5));
  return v;
}

FactorStore q_only_store(std::uint32_t items, std::uint32_t k,
                         const std::vector<float>& q) {
  // Fold-in only reads Q; a single zero P row keeps the store well-formed.
  const std::vector<float> p(k, 0.0f);
  return FactorStore(StoreKind::kFp32, 1, items, k, p, q);
}

/// Dense reference: solves (Q_S^T Q_S + reg I) x = Q_S^T r by naive
/// Gauss-Jordan elimination with partial pivoting, all in double.
std::vector<double> dense_ridge(const std::vector<float>& q, std::uint32_t k,
                                std::span<const FoldInRating> ratings,
                                double reg) {
  std::vector<double> a(std::size_t(k) * k, 0.0);
  std::vector<double> b(k, 0.0);
  for (const auto& obs : ratings) {
    const float* row = q.data() + std::size_t(obs.item) * k;
    for (std::uint32_t i = 0; i < k; ++i) {
      b[i] += static_cast<double>(row[i]) * obs.rating;
      for (std::uint32_t j = 0; j < k; ++j) {
        a[std::size_t(i) * k + j] +=
            static_cast<double>(row[i]) * row[j];
      }
    }
  }
  for (std::uint32_t i = 0; i < k; ++i) a[std::size_t(i) * k + i] += reg;
  for (std::uint32_t col = 0; col < k; ++col) {
    std::uint32_t pivot = col;
    for (std::uint32_t r = col + 1; r < k; ++r) {
      if (std::abs(a[std::size_t(r) * k + col]) >
          std::abs(a[std::size_t(pivot) * k + col])) {
        pivot = r;
      }
    }
    for (std::uint32_t c = 0; c < k; ++c) {
      std::swap(a[std::size_t(col) * k + c], a[std::size_t(pivot) * k + c]);
    }
    std::swap(b[col], b[pivot]);
    const double d = a[std::size_t(col) * k + col];
    for (std::uint32_t c = 0; c < k; ++c) a[std::size_t(col) * k + c] /= d;
    b[col] /= d;
    for (std::uint32_t r = 0; r < k; ++r) {
      if (r == col) continue;
      const double factor = a[std::size_t(r) * k + col];
      if (factor == 0.0) continue;
      for (std::uint32_t c = 0; c < k; ++c) {
        a[std::size_t(r) * k + c] -= factor * a[std::size_t(col) * k + c];
      }
      b[r] -= factor * b[col];
    }
  }
  return b;
}

TEST(ServeFoldIn, MatchesDenseLeastSquaresReference) {
  const std::uint32_t items = 60, k = 12;
  const auto q = random_rows(items, k, 11);
  const auto store = q_only_store(items, k, q);
  std::vector<FoldInRating> ratings;
  util::Rng rng(12);
  for (std::uint32_t i = 0; i < items; i += 3) {
    ratings.push_back({i, static_cast<float>(rng.normal(3.5, 1.0))});
  }
  const float reg = 0.05f;
  const auto row = fold_in(store, ratings, reg);
  const auto expect = dense_ridge(q, k, ratings, reg);
  ASSERT_EQ(row.size(), k);
  for (std::uint32_t f = 0; f < k; ++f) {
    EXPECT_NEAR(row[f], expect[f], 1e-4) << "feature " << f;
  }
}

TEST(ServeFoldIn, RecoversPlantedRowFromItsOwnRatings) {
  // Ratings generated exactly as <p*, q_i>: with many observations and a
  // tiny ridge the solve should land on p*.
  const std::uint32_t items = 200, k = 8;
  const auto q = random_rows(items, k, 13);
  const auto p_true = random_rows(1, k, 14);
  const auto store = q_only_store(items, k, q);
  std::vector<FoldInRating> ratings;
  for (std::uint32_t i = 0; i < items; i += 2) {
    double r = 0.0;
    for (std::uint32_t f = 0; f < k; ++f) {
      r += static_cast<double>(p_true[f]) * q[std::size_t(i) * k + f];
    }
    ratings.push_back({i, static_cast<float>(r)});
  }
  const auto row = fold_in(store, ratings, 1e-6f);
  for (std::uint32_t f = 0; f < k; ++f) {
    EXPECT_NEAR(row[f], p_true[f], 5e-3) << "feature " << f;
  }
}

TEST(ServeFoldIn, NoUsableRatingsGiveZeroRow) {
  const std::uint32_t items = 10, k = 6;
  const auto q = random_rows(items, k, 15);
  const auto store = q_only_store(items, k, q);
  for (const auto& row :
       {fold_in(store, {}, 0.1f),
        fold_in(store, std::vector<FoldInRating>{{items + 5, 4.0f}}, 0.1f)}) {
    ASSERT_EQ(row.size(), k);
    for (const float v : row) EXPECT_EQ(v, 0.0f);
  }
}

TEST(ServeFoldIn, StrongerRidgeShrinksTheRow) {
  const std::uint32_t items = 30, k = 8;
  const auto q = random_rows(items, k, 16);
  const auto store = q_only_store(items, k, q);
  std::vector<FoldInRating> ratings{{0, 5.0f}, {7, 4.0f}, {13, 2.0f}};
  auto norm = [&](float reg) {
    const auto row = fold_in(store, ratings, reg);
    double s = 0.0;
    for (const float v : row) s += static_cast<double>(v) * v;
    return s;
  };
  EXPECT_GT(norm(0.01f), norm(10.0f));
  EXPECT_GT(norm(10.0f), 0.0);
}

TEST(ServeFoldIn, WorksOffQuantizedStores) {
  // The solve runs off decoded rows, so quantized stores just add their
  // decode error; the answer must stay close to the fp32 solve.
  const std::uint32_t items = 80, k = 16;
  const auto q = random_rows(items, k, 17);
  const std::vector<float> p(k, 0.0f);
  std::vector<FoldInRating> ratings;
  util::Rng rng(18);
  for (std::uint32_t i = 0; i < items; i += 4) {
    ratings.push_back({i, static_cast<float>(rng.normal(3.0, 0.8))});
  }
  const auto fp32_row =
      fold_in(FactorStore(StoreKind::kFp32, 1, items, k, p, q), ratings, 0.1f);
  for (const StoreKind kind : {StoreKind::kFp16, StoreKind::kInt8}) {
    const auto row =
        fold_in(FactorStore(kind, 1, items, k, p, q), ratings, 0.1f);
    // int8 decode error (~0.4% per element) amplifies through the normal
    // equations; observed deviation is ~0.06 on O(1) coefficients.
    for (std::uint32_t f = 0; f < k; ++f) {
      EXPECT_NEAR(row[f], fp32_row[f], 0.15) << store_kind_name(kind);
    }
  }
}

}  // namespace
}  // namespace hcc::serve
