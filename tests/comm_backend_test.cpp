// Tests for the COMM and COMM-P functional transports.
#include "comm/backend.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace hcc::comm {
namespace {

std::vector<float> payload(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal(0.2, 0.1));
  return v;
}

TEST(ShmComm, DeliversPayloadLosslesslyWithFp32) {
  ShmComm shm;
  Fp32Codec codec;
  const auto src = payload(10000, 1);
  std::vector<float> dst(src.size());
  shm.transfer(src, dst, codec);
  EXPECT_EQ(dst, src);
  EXPECT_EQ(shm.name(), "COMM");
}

TEST(BrokerComm, DeliversIdenticalPayloadToShm) {
  // COMM and COMM-P have "same function" (Section 4.4): byte-identical
  // delivery, different cost structure.
  ShmComm shm;
  BrokerComm broker(1 << 12);
  Fp32Codec codec;
  const auto src = payload(10000, 2);
  std::vector<float> via_shm(src.size());
  std::vector<float> via_broker(src.size());
  shm.transfer(src, via_shm, codec);
  broker.transfer(src, via_broker, codec);
  EXPECT_EQ(via_shm, via_broker);
  EXPECT_EQ(broker.name(), "COMM-P");
}

TEST(ShmComm, CountsOneCopyPerTransfer) {
  ShmComm shm;
  Fp32Codec codec;
  const auto src = payload(100, 3);
  std::vector<float> dst(src.size());
  shm.transfer(src, dst, codec);
  shm.transfer(src, dst, codec);
  EXPECT_EQ(shm.stats().copies, 2u);
  EXPECT_EQ(shm.stats().wire_bytes, 2u * 400u);
  EXPECT_EQ(shm.stats().messages, 0u);
}

TEST(BrokerComm, CountsThreeCopiesAndMessages) {
  BrokerComm broker(/*message_bytes=*/256);
  Fp32Codec codec;
  const auto src = payload(100, 4);  // 400 wire bytes -> 2 messages
  std::vector<float> dst(src.size());
  broker.transfer(src, dst, codec);
  EXPECT_EQ(broker.stats().copies, 3u);
  EXPECT_EQ(broker.stats().messages, 2u);
  EXPECT_EQ(broker.stats().wire_bytes, 400u);
}

TEST(BrokerComm, MessageCountScalesWithPayload) {
  BrokerComm broker(1024);
  Fp32Codec codec;
  const auto src = payload(1024, 5);  // 4096 bytes -> 4 messages
  std::vector<float> dst(src.size());
  broker.transfer(src, dst, codec);
  EXPECT_EQ(broker.stats().messages, 4u);
}

TEST(Backends, Fp16TransferHalvesWireBytes) {
  ShmComm shm;
  Fp16Codec fp16;
  const auto src = payload(1000, 6);
  std::vector<float> dst(src.size());
  shm.transfer(src, dst, fp16);
  EXPECT_EQ(shm.stats().wire_bytes, 2000u);
  // Payload arrives quantized but close.
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_NEAR(dst[i], src[i], 0.01f);
  }
}

TEST(Backends, StatsAccumulateAndReset) {
  ShmComm shm;
  Fp32Codec codec;
  const auto src = payload(10, 7);
  std::vector<float> dst(src.size());
  shm.transfer(src, dst, codec);
  EXPECT_GT(shm.stats().wire_bytes, 0u);
  shm.reset_stats();
  EXPECT_EQ(shm.stats().wire_bytes, 0u);
  EXPECT_EQ(shm.stats().copies, 0u);
}

TEST(TransferStats, PlusEqualsAggregates) {
  TransferStats a{100, 1, 2};
  const TransferStats b{50, 3, 4};
  a += b;
  EXPECT_EQ(a.wire_bytes, 150u);
  EXPECT_EQ(a.copies, 4u);
  EXPECT_EQ(a.messages, 6u);
}

}  // namespace
}  // namespace hcc::comm
