// Tests for the device performance model.
#include "sim/perf_model.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace hcc::sim {
namespace {

DatasetShape netflix_shape() { return {"netflix", 480190, 17771, 99072112, 128}; }
DatasetShape r1_shape() { return {"r1", 1948883, 1101750, 115579437, 128}; }
DatasetShape unknown_shape() { return {"", 100000, 20000, 5000000, 128}; }

TEST(PerfModel, IwRateUsesCalibration) {
  EXPECT_NEAR(iw_update_rate(xeon_6242_24t(), netflix_shape()), 348790567.0,
              1.0);
}

TEST(PerfModel, ScaledDatasetSharesCalibration) {
  DatasetShape scaled = netflix_shape();
  scaled.name = "netflix@0.01";
  scaled.m /= 100;
  scaled.n /= 100;
  scaled.nnz /= 100;
  EXPECT_NEAR(iw_update_rate(rtx_2080(), scaled),
              iw_update_rate(rtx_2080(), netflix_shape()), 1.0);
}

TEST(PerfModel, RateRescalesWithLatentDimension) {
  DatasetShape k64 = netflix_shape();
  k64.k = 64;
  // Eq. 2: per-update cost ~ linear in k, so rate at k=64 is ~2x of k=128.
  EXPECT_NEAR(iw_update_rate(rtx_2080(), k64),
              2.0 * iw_update_rate(rtx_2080(), netflix_shape()), 1.0);
}

TEST(PerfModel, AnalyticFallbackIsFiniteAndOrdered) {
  const DatasetShape shape = unknown_shape();
  const double cpu = iw_update_rate(xeon_6242_24t(), shape);
  const double gpu = iw_update_rate(rtx_2080s(), shape);
  EXPECT_GT(cpu, 1e6);
  EXPECT_GT(gpu, cpu);  // the GPU's effective bandwidth dominates
}

TEST(PerfModel, ComputeSecondsLinearInShareApproximately) {
  const DatasetShape shape = netflix_shape();
  const DeviceSpec dev = rtx_2080();
  const double full = compute_seconds(dev, shape, 1.0);
  const double half = compute_seconds(dev, shape, 0.5);
  EXPECT_GT(full, 0.0);
  // Half the data takes at most half the time (drift makes it slightly
  // faster per update, never slower).
  EXPECT_LE(half, 0.5 * full + 1e-12);
  EXPECT_GT(half, 0.4 * full);
}

TEST(PerfModel, ZeroShareCostsNothing) {
  EXPECT_DOUBLE_EQ(compute_seconds(rtx_2080(), netflix_shape(), 0.0), 0.0);
}

TEST(PerfModel, RateDriftDirectionFollowsDeviceClass) {
  const DatasetShape shape = r1_shape();
  // GPU (positive compute_drift): smaller assignments run faster/update.
  {
    const DeviceSpec dev = rtx_2080();
    double prev = update_rate(dev, shape, 0.05);
    for (double share : {0.1, 0.25, 0.5, 0.75, 1.0}) {
      const double rate = update_rate(dev, shape, share);
      EXPECT_LE(rate, prev * (1.0 + 1e-12)) << "share " << share;
      prev = rate;
    }
  }
  // CPU (negative compute_drift): smaller assignments amortize the fixed
  // threading overheads worse, so per-update speed drops a little.
  {
    const DeviceSpec dev = xeon_6242_24t();
    EXPECT_LT(update_rate(dev, shape, 0.1), update_rate(dev, shape, 1.0));
    // ... but never below the drift floor.
    EXPECT_GT(update_rate(dev, shape, 0.01),
              0.8 * update_rate(dev, shape, 1.0));
  }
}

TEST(PerfModel, MemBandwidthReproducesTable2) {
  // Table 2: IW row at share 1.0; DP0 row at each worker's DP0 share
  // (roughly 0.12 CPU / 0.38 GPU on Netflix).
  EXPECT_NEAR(mem_bandwidth(xeon_6242_24t(), 1.0), 67.3001, 1e-3);
  // CPU barely moves under DP0 (67.75 in the paper).
  const double cpu_dp0 = mem_bandwidth(xeon_6242_24t(), 0.13);
  EXPECT_GT(cpu_dp0, 67.3);
  EXPECT_LT(cpu_dp0, 68.3);
  // GPU creeps up toward 388.8.
  const double gpu_dp0 = mem_bandwidth(rtx_2080(), 0.35);
  EXPECT_GT(gpu_dp0, 385.0);
  EXPECT_LT(gpu_dp0, 395.0);
}

TEST(PerfModel, CacheEfficiencyBoundedAndMonotone) {
  const DeviceSpec cpu = xeon_6242_24t();
  const DatasetShape r1 = r1_shape();
  double prev = 0.0;
  for (double share : {1.0, 0.5, 0.25, 0.1}) {
    const double eff = cache_efficiency(cpu, r1, share);
    EXPECT_GT(eff, 0.0);
    EXPECT_LE(eff, 1.0);
    EXPECT_GE(eff, prev);  // smaller assignment -> better locality
    prev = eff;
  }
}

TEST(PerfModel, SmallWorkingSetHitsFullEfficiency) {
  const DatasetShape tiny{"", 100, 100, 10000, 8};
  EXPECT_DOUBLE_EQ(cache_efficiency(xeon_6242_24t(), tiny, 1.0), 1.0);
}

TEST(PerfModel, GpusLessCacheSensitiveThanCpus) {
  const DatasetShape r1 = r1_shape();
  const double cpu_eff = cache_efficiency(xeon_6242_24t(), r1, 1.0);
  const double gpu_eff = cache_efficiency(rtx_2080(), r1, 1.0);
  EXPECT_LT(cpu_eff, 0.8);  // R1's huge Q wrecks CPU locality
  EXPECT_GT(gpu_eff, cpu_eff);
}

TEST(PerfModel, AnalyticUpdateSecondsHasEq2Structure) {
  const DatasetShape tiny{"", 100, 100, 10000, 8};  // cache-resident
  const DeviceSpec dev = xeon_6242_24t();
  const double t = analytic_update_seconds(dev, tiny, 1.0);
  const double expected = 7.0 * 8 / (dev.compute_gflops * 1e9) +
                          (16.0 * 8 + 4.0) / (dev.effective_bandwidth_gbs * 1e9);
  EXPECT_NEAR(t, expected, expected * 1e-9);
}

}  // namespace
}  // namespace hcc::sim
