// Robustness tests for the dataset loaders: corrupt fixtures must be
// rejected with a located ParseError, and seeded byte-flip fuzzing must
// never crash a loader — every outcome is either a valid matrix or a
// clean exception.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "data/io.hpp"
#include "data/movielens_io.hpp"
#include "util/rng.hpp"

namespace hcc::data {
namespace {

class DataIoFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-process dir: under parallel ctest each test case is its own
    // process, and a shared dir would let one TearDown remove_all a
    // sibling's files mid-test.
    dir_ = std::filesystem::temp_directory_path() /
           ("hccmf_io_fuzz_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string write_file(const std::string& name, const std::string& body) {
    const std::string path = (dir_ / name).string();
    std::ofstream out(path, std::ios::binary);
    out << body;
    return path;
  }

  std::filesystem::path dir_;
};

TEST_F(DataIoFuzzTest, TextTruncatedLineReportsLineNumber) {
  const auto path = write_file("trunc.txt", "0 0 3.5\n1 2\n");
  try {
    (void)load_text(path);
    FAIL() << "truncated line must be rejected";
  } catch (const ParseError& err) {
    EXPECT_EQ(err.line(), 2u);
    EXPECT_EQ(err.path(), path);
    EXPECT_NE(std::string(err.what()).find(":2:"), std::string::npos);
  }
}

TEST_F(DataIoFuzzTest, TextTrailingGarbageRejected) {
  const auto path = write_file("garbage.txt", "0 0 3.5 surprise\n");
  EXPECT_THROW((void)load_text(path), ParseError);
}

TEST_F(DataIoFuzzTest, TextNonFiniteRatingRejected) {
  for (const char* bad : {"0 0 nan\n", "0 0 inf\n", "0 0 -inf\n"}) {
    const auto path = write_file("nan.txt", bad);
    EXPECT_THROW((void)load_text(path), ParseError) << bad;
  }
}

TEST_F(DataIoFuzzTest, TextOutOfRangeIdReportsLine) {
  const auto path = write_file("range.txt", "0 0 1.0\n0 9 1.0\n");
  try {
    (void)load_text(path, /*rows=*/4, /*cols=*/4);
    FAIL() << "out-of-range item id must be rejected";
  } catch (const ParseError& err) {
    EXPECT_EQ(err.line(), 2u);
  }
}

TEST_F(DataIoFuzzTest, TextCommentsAndBlanksStillSkipped) {
  const auto path = write_file("ok.txt", "# header\n\n0 1 2.5\n3 0 1.0\n");
  const RatingMatrix m = load_text(path);
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 2u);
}

TEST_F(DataIoFuzzTest, BinaryBadMagicRejected) {
  const auto path = write_file("bad.bin", "NOPE-not-a-matrix");
  EXPECT_THROW((void)load_binary(path), ParseError);
}

TEST_F(DataIoFuzzTest, BinaryHeaderNnzMismatchRejectedBeforeAllocation) {
  RatingMatrix m(4, 4);
  m.add(0, 0, 1.0f);
  m.add(1, 2, 2.0f);
  const std::string path = (dir_ / "claim.bin").string();
  ASSERT_TRUE(save_binary(m, path));
  // Inflate the claimed nnz to an absurd value; the loader must reject on
  // the size check instead of attempting a giant allocation.
  std::fstream f(path,
                 std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(4 + 4 + 4);
  const std::uint64_t absurd = 1ull << 60;
  f.write(reinterpret_cast<const char*>(&absurd), sizeof absurd);
  f.close();
  EXPECT_THROW((void)load_binary(path), ParseError);
}

TEST_F(DataIoFuzzTest, BinaryTruncatedEntriesRejected) {
  RatingMatrix m(8, 8);
  for (std::uint32_t u = 0; u < 8; ++u) m.add(u, u, 1.0f);
  const std::string path = (dir_ / "torn.bin").string();
  ASSERT_TRUE(save_binary(m, path));
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 5);
  EXPECT_THROW((void)load_binary(path), ParseError);
}

TEST_F(DataIoFuzzTest, BinaryOutOfRangeEntryRejected) {
  RatingMatrix m(4, 4);
  m.add(3, 3, 1.0f);
  const std::string path = (dir_ / "oob.bin").string();
  ASSERT_TRUE(save_binary(m, path));
  // Shrink the declared dimensions under the stored entry.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(4);
  const std::uint32_t tiny = 2;
  f.write(reinterpret_cast<const char*>(&tiny), sizeof tiny);
  f.close();
  EXPECT_THROW((void)load_binary(path), ParseError);
}

TEST_F(DataIoFuzzTest, MovieLensCorruptFieldsRejected) {
  const auto bad_int =
      write_file("ml1.csv", "userId,movieId,rating,timestamp\n1,abc,3.5,0\n");
  EXPECT_THROW((void)load_movielens_csv(bad_int), ParseError);
  const auto bad_rating =
      write_file("ml2.csv", "userId,movieId,rating,timestamp\n1,2,wat,0\n");
  EXPECT_THROW((void)load_movielens_csv(bad_rating), ParseError);
  const auto nan_rating =
      write_file("ml3.csv", "userId,movieId,rating,timestamp\n1,2,nan,0\n");
  EXPECT_THROW((void)load_movielens_csv(nan_rating), ParseError);
  const auto short_line =
      write_file("ml4.csv", "userId,movieId,rating,timestamp\n1,2\n");
  EXPECT_THROW((void)load_movielens_csv(short_line), ParseError);
}

TEST_F(DataIoFuzzTest, FuzzedBinaryNeverCrashes) {
  RatingMatrix m(16, 16);
  util::Rng gen(1234);
  for (int e = 0; e < 64; ++e) {
    m.add(static_cast<std::uint32_t>(gen.uniform_u64(16)),
          static_cast<std::uint32_t>(gen.uniform_u64(16)),
          static_cast<float>(gen.uniform_u64(5)) + 1.0f);
  }
  const std::string clean = (dir_ / "seed.bin").string();
  ASSERT_TRUE(save_binary(m, clean));
  std::ifstream in(clean, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  util::Rng rng(0xf22);
  std::size_t loaded = 0;
  std::size_t rejected = 0;
  for (int round = 0; round < 200; ++round) {
    std::string mutated = bytes;
    // Flip 1-4 random bytes anywhere in the file (header or payload).
    const std::size_t flips = 1 + rng.uniform_u64(4);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t pos = rng.uniform_u64(mutated.size());
      mutated[pos] = static_cast<char>(
          static_cast<unsigned char>(mutated[pos]) ^
          static_cast<unsigned char>(1u << rng.uniform_u64(8)));
    }
    const std::string path = (dir_ / "fuzz.bin").string();
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << mutated;
    }
    try {
      const RatingMatrix result = load_binary(path);
      EXPECT_LE(result.nnz(), 64u + 16u);  // sane entry count survives
      ++loaded;
    } catch (const std::exception&) {
      ++rejected;  // clean rejection is the other acceptable outcome
    }
  }
  EXPECT_EQ(loaded + rejected, 200u);
  EXPECT_GT(rejected, 0u) << "magic/dimension flips must be caught";
}

TEST_F(DataIoFuzzTest, FuzzedTextNeverCrashes) {
  std::string body;
  util::Rng gen(77);
  for (int line = 0; line < 32; ++line) {
    body += std::to_string(gen.uniform_u64(8)) + " " +
            std::to_string(gen.uniform_u64(8)) + " " +
            std::to_string(1 + gen.uniform_u64(4)) + "\n";
  }
  util::Rng rng(0xbeef);
  for (int round = 0; round < 200; ++round) {
    std::string mutated = body;
    const std::size_t op = rng.uniform_u64(3);
    if (op == 0) {
      mutated.resize(rng.uniform_u64(mutated.size()));  // truncate anywhere
    } else {
      const std::size_t pos = rng.uniform_u64(mutated.size());
      mutated[pos] = static_cast<char>(32 + rng.uniform_u64(95));
    }
    const auto path = write_file("fuzz.txt", mutated);
    try {
      const RatingMatrix result = load_text(path);
      EXPECT_LE(result.nnz(), 33u);
    } catch (const std::exception&) {
      // rejected cleanly: fine
    }
  }
}

}  // namespace
}  // namespace hcc::data
