// Session-protocol tests: exactly-once in-order delivery under duplicated,
// reordered, dropped and severed links, bounded reconnection, and the
// metamorphic anchor the transport tier is built around — a chaos run that
// heals trains to *exactly* the same model as the in-process transport.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <numeric>
#include <vector>

#include "comm/session.hpp"
#include "comm/strategy.hpp"
#include "core/hccmf.hpp"
#include "data/datasets.hpp"
#include "fault/errors.hpp"
#include "fault/plan.hpp"
#include "obs/metrics.hpp"

namespace hcc::comm {
namespace {

TransportConfig chaos_config(const std::string& spec) {
  TransportConfig config;
  config.kind = TransportKind::kChaos;
  config.link = "local";
  if (!spec.empty()) config.plan = fault::FaultPlan::parse(spec);
  return config;
}

SessionComm session_over(const TransportConfig& config,
                         std::uint32_t worker = 0) {
  return SessionComm(make_transport(config, worker), config, worker);
}

std::vector<float> ramp(std::size_t n) {
  std::vector<float> v(n);
  std::iota(v.begin(), v.end(), 1.0f);
  return v;
}

TEST(SessionReplay, CleanLinkDeliversExactBytes) {
  TransportConfig config;
  config.kind = TransportKind::kSimLatency;
  config.link = "100GbE";
  SessionComm comm = session_over(config);
  Fp32Codec codec;
  const std::vector<float> src = ramp(512);
  std::vector<float> dst(512, 0.0f);
  comm.transfer(src, dst, codec);
  EXPECT_EQ(src, dst);
  EXPECT_EQ(comm.transport_stats().frames, 1u);
  EXPECT_EQ(comm.transport_stats().retransmits, 0u);
}

TEST(SessionReplay, DuplicateDeliveryIsDedupedIdempotently) {
  SessionComm comm = session_over(chaos_config("dup:w0@e0n3"));
  Fp32Codec codec;
  for (int round = 0; round < 4; ++round) {
    const std::vector<float> src = ramp(64 + static_cast<std::size_t>(round));
    std::vector<float> dst(src.size(), 0.0f);
    comm.transfer(src, dst, codec);
    EXPECT_EQ(src, dst) << "round " << round;
  }
  EXPECT_GE(comm.transport_stats().dup_discards, 1u);
}

TEST(SessionReplay, ReorderedFramesDeliverInSequenceOrder) {
  // The held frame of transfer N is released by transfer N+1's frame (or a
  // heartbeat); the reorder buffer re-sequences them.
  SessionComm comm = session_over(chaos_config("reorder:w0@e0n2"));
  Fp32Codec codec;
  for (int round = 0; round < 4; ++round) {
    const std::vector<float> src = ramp(96);
    std::vector<float> dst(src.size(), 0.0f);
    comm.transfer(src, dst, codec);
    EXPECT_EQ(src, dst) << "round " << round;
  }
}

TEST(SessionReplay, DroppedFrameHealsByRetransmission) {
  SessionComm comm = session_over(chaos_config("drop:w0@e0n2"));
  Fp32Codec codec;
  const std::vector<float> src = ramp(128);
  std::vector<float> dst(src.size(), 0.0f);
  comm.transfer(src, dst, codec);
  EXPECT_EQ(src, dst);
  EXPECT_GE(comm.transport_stats().retransmits, 1u);
}

TEST(SessionReplay, CorruptFrameIsDiscardedAndRetransmitted) {
  TransportConfig config;
  config.kind = TransportKind::kSimLatency;
  config.link = "local";
  SessionComm comm = session_over(config);
  // Corrupt exactly the first wire payload; the receiver must drop it
  // before decode and the retransmission must heal.
  bool armed = true;
  comm.set_wire_tap([&armed](std::span<std::byte> wire) {
    if (!armed || wire.empty()) return;
    armed = false;
    wire[0] ^= std::byte{0xff};
  });
  Fp32Codec codec;
  const std::vector<float> src = ramp(64);
  std::vector<float> dst(src.size(), 0.0f);
  comm.transfer(src, dst, codec);
  EXPECT_EQ(src, dst);
  EXPECT_GE(comm.transport_stats().checksum_drops, 1u);
  EXPECT_GE(comm.transport_stats().retransmits, 1u);
}

TEST(SessionReplay, DisconnectReconnectsWithNewSessionAndReplays) {
  TransportConfig config = chaos_config("disconnect:w0@e0n2");
  config.reconnect_budget = 5;
  SessionComm comm = session_over(config);
  Fp32Codec codec;
  const std::vector<float> src = ramp(256);
  std::vector<float> dst(src.size(), 0.0f);
  comm.transfer(src, dst, codec);
  EXPECT_EQ(src, dst);
  EXPECT_GE(comm.transport_stats().reconnects, 1u);
  EXPECT_GT(comm.session_id(), 1u);  // a new session was minted
  // The link is healed: the next transfer flows without reconnecting again.
  const std::uint64_t reconnects = comm.transport_stats().reconnects;
  std::vector<float> dst2(src.size(), 0.0f);
  comm.transfer(src, dst2, codec);
  EXPECT_EQ(src, dst2);
  EXPECT_EQ(comm.transport_stats().reconnects, reconnects);
}

TEST(SessionReplay, ExhaustedReconnectBudgetThrowsLinkDeadError) {
  TransportConfig config = chaos_config("disconnect:w2@e0n99");
  config.reconnect_budget = 3;
  SessionComm comm = session_over(config, /*worker=*/2);
  Fp32Codec codec;
  const std::vector<float> src = ramp(32);
  std::vector<float> dst(src.size(), 0.0f);
  try {
    comm.transfer(src, dst, codec);
    FAIL() << "expected fault::LinkDeadError";
  } catch (const fault::LinkDeadError& dead) {
    EXPECT_EQ(dead.worker(), 2u);
    EXPECT_NE(std::string(dead.what()).find("reconnect"), std::string::npos);
  }
}

/// Satellite: retry exhaustion names the failing link and attempt count.
TEST(SessionReplay, TransferFailureNamesLinkAndAttempts) {
  const fault::TransferFailure failure(1, 4, "COMM-T");
  const std::string message = failure.what();
  EXPECT_NE(message.find("link 'COMM-T'"), std::string::npos);
  EXPECT_NE(message.find("4 attempts"), std::string::npos);
  EXPECT_EQ(failure.attempts(), 4u);
  EXPECT_EQ(failure.link(), "COMM-T");
}

// ---------------------------------------------------------------------------
// Metamorphic anchor: RMSE parity between transports.

struct SmallProblem {
  data::RatingMatrix train{0, 0};
  data::RatingMatrix test{0, 0};
  data::DatasetSpec spec;
};

SmallProblem netflix_small() {
  SmallProblem pr;
  pr.spec = data::netflix_spec().scaled(0.002);
  data::GeneratorConfig gen;
  gen.seed = 23;
  gen.planted_rank = 4;
  const auto full = data::generate(pr.spec, gen);
  util::Rng rng(24);
  auto [train, test] = data::train_test_split(full, 0.1, rng);
  pr.train = std::move(train);
  pr.test = std::move(test);
  return pr;
}

core::HccMfConfig small_config(const data::DatasetSpec& spec) {
  core::HccMfConfig config;
  config.sgd = mf::SgdConfig::for_dataset(spec.reg_lambda, 0.01f, /*k=*/16);
  config.sgd.epochs = 6;
  config.comm.fp16 = false;
  config.platform = sim::paper_workstation_hetero();
  config.platform.workers.resize(3);
  for (auto& w : config.platform.workers) w.epoch_overhead_s = 0.0;
  config.dataset_name = spec.name;
  return config;
}

TEST(SessionReplay, ChaosRunThatHealsMatchesInProcessRmseExactly) {
  const SmallProblem pr = netflix_small();

  core::HccMfConfig clean = small_config(pr.spec);
  const core::TrainReport base = core::HccMf(clean).train(pr.train, &pr.test);

  // Seeded chaos: drops, dups, reorders, a long delay and a mid-training
  // disconnect (healing within the reconnect budget) across the workers.
  core::HccMfConfig chaotic = small_config(pr.spec);
  chaotic.comm.transport.kind = TransportKind::kChaos;
  chaotic.comm.transport.link = "local";
  chaotic.fault.plan = fault::FaultPlan::parse(
      "drop:w0@e1n2;dup:w1@e2n2;reorder:w2@e3;delay:w0@e4x2000;"
      "disconnect:w1@e2n2");
  const core::TrainReport chaos =
      core::HccMf(chaotic).train(pr.train, &pr.test);

  // The session delivers the exact encoded bytes exactly once, in order,
  // so the trajectories are bit-identical: parity far below 1e-6.
  ASSERT_EQ(base.epochs.size(), chaos.epochs.size());
  EXPECT_NEAR(chaos.epochs.back().test_rmse, base.epochs.back().test_rmse,
              1e-6);
  EXPECT_GE(obs::registry().counter("transport.reconnects").value(), 1u);
}

TEST(SessionReplay, SimLatencyTransportMatchesInProcessRmseExactly) {
  const SmallProblem pr = netflix_small();

  core::HccMfConfig clean = small_config(pr.spec);
  const core::TrainReport base = core::HccMf(clean).train(pr.train, &pr.test);

  core::HccMfConfig latent = small_config(pr.spec);
  latent.comm.transport.kind = TransportKind::kSimLatency;
  latent.comm.transport.link = "10GbE";
  const core::TrainReport timed =
      core::HccMf(latent).train(pr.train, &pr.test);

  EXPECT_NEAR(timed.epochs.back().test_rmse, base.epochs.back().test_rmse,
              1e-6);
}

}  // namespace
}  // namespace hcc::comm
