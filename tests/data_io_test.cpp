// Tests for rating matrix IO.
#include "data/io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "data/datasets.hpp"

namespace hcc::data {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void TearDown() override {
    std::filesystem::remove(path_);
  }
  std::string path_ = "/tmp/hccmf_io_test.dat";
};

RatingMatrix sample() {
  RatingMatrix m(3, 4);
  m.add(0, 1, 4.5f);
  m.add(2, 3, 1.0f);
  m.add(1, 0, 3.0f);
  return m;
}

TEST_F(IoTest, TextRoundTrip) {
  const RatingMatrix m = sample();
  ASSERT_TRUE(save_text(m, path_));
  const RatingMatrix loaded = load_text(path_, 3, 4);
  ASSERT_EQ(loaded.nnz(), m.nnz());
  EXPECT_EQ(loaded.rows(), 3u);
  EXPECT_EQ(loaded.cols(), 4u);
  for (std::size_t i = 0; i < m.nnz(); ++i) {
    EXPECT_EQ(loaded.entries()[i], m.entries()[i]);
  }
}

TEST_F(IoTest, TextInfersDimensions) {
  ASSERT_TRUE(save_text(sample(), path_));
  const RatingMatrix loaded = load_text(path_);
  EXPECT_EQ(loaded.rows(), 3u);
  EXPECT_EQ(loaded.cols(), 4u);
}

TEST_F(IoTest, TextSkipsCommentsAndBlankLines) {
  {
    std::ofstream out(path_);
    out << "# header comment\n\n0 0 5\n# mid comment\n1 1 3\n";
  }
  const RatingMatrix loaded = load_text(path_);
  EXPECT_EQ(loaded.nnz(), 2u);
}

TEST_F(IoTest, TextRejectsMalformedLine) {
  {
    std::ofstream out(path_);
    out << "0 zero 5\n";
  }
  EXPECT_THROW(load_text(path_), std::runtime_error);
}

TEST_F(IoTest, TextRejectsOutOfBoundsEntry) {
  ASSERT_TRUE(save_text(sample(), path_));
  EXPECT_THROW(load_text(path_, 2, 2), std::runtime_error);
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(load_text("/tmp/definitely_missing_hccmf.txt"),
               std::runtime_error);
  EXPECT_THROW(load_binary("/tmp/definitely_missing_hccmf.bin"),
               std::runtime_error);
}

TEST_F(IoTest, BinaryRoundTrip) {
  const RatingMatrix m = sample();
  ASSERT_TRUE(save_binary(m, path_));
  const RatingMatrix loaded = load_binary(path_);
  EXPECT_EQ(loaded.rows(), m.rows());
  EXPECT_EQ(loaded.cols(), m.cols());
  ASSERT_EQ(loaded.nnz(), m.nnz());
  for (std::size_t i = 0; i < m.nnz(); ++i) {
    EXPECT_EQ(loaded.entries()[i], m.entries()[i]);
  }
}

TEST_F(IoTest, BinaryRejectsBadMagic) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "NOPE and then some bytes";
  }
  EXPECT_THROW(load_binary(path_), std::runtime_error);
}

TEST_F(IoTest, BinaryRejectsTruncatedFile) {
  const RatingMatrix m = sample();
  ASSERT_TRUE(save_binary(m, path_));
  std::filesystem::resize_file(path_, 22);  // cut inside the entry array
  EXPECT_THROW(load_binary(path_), std::runtime_error);
}

TEST_F(IoTest, GeneratedDatasetSurvivesBinaryRoundTrip) {
  const DatasetSpec spec = movielens20m_spec().scaled(0.0005);
  const RatingMatrix m = generate(spec, GeneratorConfig{});
  ASSERT_TRUE(save_binary(m, path_));
  const RatingMatrix loaded = load_binary(path_);
  ASSERT_EQ(loaded.nnz(), m.nnz());
  EXPECT_EQ(loaded.entries()[m.nnz() / 2], m.entries()[m.nnz() / 2]);
}

}  // namespace
}  // namespace hcc::data
