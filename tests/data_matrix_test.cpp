// Tests for RatingMatrix and CsrIndex.
#include "data/rating_matrix.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"

namespace hcc::data {
namespace {

RatingMatrix small_matrix() {
  RatingMatrix m(4, 3);
  m.add(0, 0, 5.0f);
  m.add(2, 1, 3.0f);
  m.add(1, 2, 4.0f);
  m.add(2, 0, 1.0f);
  m.add(3, 2, 2.0f);
  return m;
}

TEST(RatingMatrix, BasicAccounting) {
  const RatingMatrix m = small_matrix();
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nnz(), 5u);
  EXPECT_DOUBLE_EQ(m.density(), 5.0 / 12.0);
}

TEST(RatingMatrix, EmptyDensityIsZero) {
  EXPECT_DOUBLE_EQ(RatingMatrix().density(), 0.0);
  EXPECT_DOUBLE_EQ(RatingMatrix(10, 10).density(), 0.0);
}

TEST(RatingMatrix, AppendBulkMatchesRepeatedAdd) {
  RatingMatrix bulk(4, 3);
  RatingMatrix one_by_one(4, 3);
  const std::vector<Rating> extra = {
      {0, 1, 2.5f}, {3, 0, 4.5f}, {1, 1, 1.0f}};
  bulk.add(2, 2, 3.0f);
  one_by_one.add(2, 2, 3.0f);
  bulk.append(extra);
  for (const Rating& r : extra) one_by_one.add(r.u, r.i, r.r);
  ASSERT_EQ(bulk.nnz(), one_by_one.nnz());
  const auto a = bulk.entries();
  const auto b = one_by_one.entries();
  for (std::size_t j = 0; j < a.size(); ++j) {
    EXPECT_EQ(a[j].u, b[j].u);
    EXPECT_EQ(a[j].i, b[j].i);
    EXPECT_EQ(a[j].r, b[j].r);
  }
  // Appending nothing is a no-op.
  bulk.append({});
  EXPECT_EQ(bulk.nnz(), one_by_one.nnz());
}

TEST(RatingMatrix, SortByRowOrdersEntries) {
  RatingMatrix m = small_matrix();
  m.sort_by_row();
  const auto e = m.entries();
  for (std::size_t i = 1; i < e.size(); ++i) {
    EXPECT_TRUE(e[i - 1].u < e[i].u ||
                (e[i - 1].u == e[i].u && e[i - 1].i <= e[i].i));
  }
}

TEST(RatingMatrix, SortByColOrdersEntries) {
  RatingMatrix m = small_matrix();
  m.sort_by_col();
  const auto e = m.entries();
  for (std::size_t i = 1; i < e.size(); ++i) {
    EXPECT_TRUE(e[i - 1].i < e[i].i ||
                (e[i - 1].i == e[i].i && e[i - 1].u <= e[i].u));
  }
}

TEST(RatingMatrix, ShufflePreservesMultiset) {
  RatingMatrix m = small_matrix();
  util::Rng rng(1);
  m.shuffle(rng);
  EXPECT_EQ(m.nnz(), 5u);
  m.sort_by_row();
  const auto e = m.entries();
  EXPECT_EQ(e[0], (Rating{0, 0, 5.0f}));
  EXPECT_EQ(e[4], (Rating{3, 2, 2.0f}));
}

TEST(RatingMatrix, PermuteReordersByIndex) {
  RatingMatrix m = small_matrix();
  const std::vector<Rating> before(m.entries().begin(), m.entries().end());
  const std::vector<std::uint32_t> perm = {4, 2, 0, 3, 1};
  m.permute(perm);
  const auto after = m.entries();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t j = 0; j < perm.size(); ++j) {
    EXPECT_EQ(after[j], before[perm[j]]) << "position " << j;
  }
}

TEST(RatingMatrix, PermuteEmptyMatrixIsNoOp) {
  RatingMatrix empty(3, 3);
  empty.permute(std::span<const std::uint32_t>{});
  EXPECT_EQ(empty.nnz(), 0u);
}

TEST(RatingMatrix, PermuteSingleEntryIsIdentity) {
  RatingMatrix m(2, 2);
  m.add(1, 0, 2.5f);
  const std::vector<std::uint32_t> perm = {0};
  m.permute(perm);
  ASSERT_EQ(m.nnz(), 1u);
  EXPECT_EQ(m.entries()[0], (Rating{1, 0, 2.5f}));
}

TEST(RatingMatrix, PermuteKeepsDuplicatePairsDistinct) {
  // COO storage admits duplicate (u, i) pairs (e.g. re-rated items kept by
  // a loader); a permutation must move both copies, not collapse them.
  RatingMatrix m(2, 2);
  m.add(0, 1, 1.0f);
  m.add(0, 1, 2.0f);
  m.add(1, 1, 3.0f);
  const std::vector<std::uint32_t> perm = {1, 2, 0};
  m.permute(perm);
  ASSERT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.entries()[0], (Rating{0, 1, 2.0f}));
  EXPECT_EQ(m.entries()[1], (Rating{1, 1, 3.0f}));
  EXPECT_EQ(m.entries()[2], (Rating{0, 1, 1.0f}));
}

TEST(RatingMatrix, PermuteRoundTripRestoresOrderAndCounts) {
  util::Rng rng(7);
  RatingMatrix m(32, 16);
  for (int j = 0; j < 200; ++j) {
    m.add(static_cast<std::uint32_t>(rng.uniform() * 32),
          static_cast<std::uint32_t>(rng.uniform() * 16),
          static_cast<float>(rng.uniform() * 5.0));
  }
  const std::vector<Rating> before(m.entries().begin(), m.entries().end());
  const auto rows_before = m.row_counts();
  std::vector<std::uint32_t> perm(m.nnz());
  for (std::uint32_t j = 0; j < perm.size(); ++j) perm[j] = j;
  util::shuffle(perm, rng);
  std::vector<std::uint32_t> inverse(perm.size());
  for (std::uint32_t j = 0; j < perm.size(); ++j) inverse[perm[j]] = j;
  m.permute(perm);
  EXPECT_EQ(m.nnz(), before.size());
  EXPECT_EQ(m.row_counts(), rows_before);  // a permutation moves no mass
  m.permute(inverse);
  const auto restored = m.entries();
  for (std::size_t j = 0; j < before.size(); ++j) {
    EXPECT_EQ(restored[j], before[j]) << "position " << j;
  }
}

TEST(RatingMatrix, AppendAfterPermuteExtendsInOrder) {
  RatingMatrix m = small_matrix();
  const std::vector<std::uint32_t> perm = {3, 1, 4, 0, 2};
  m.permute(perm);
  const std::vector<Rating> extra = {{0, 2, 1.5f}, {3, 1, 4.5f}};
  m.append(extra);
  ASSERT_EQ(m.nnz(), 7u);
  EXPECT_EQ(m.entries()[5], extra[0]);
  EXPECT_EQ(m.entries()[6], extra[1]);
}

TEST(RatingMatrix, RowAndColCounts) {
  const RatingMatrix m = small_matrix();
  const auto rows = m.row_counts();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0], 1u);
  EXPECT_EQ(rows[1], 1u);
  EXPECT_EQ(rows[2], 2u);
  EXPECT_EQ(rows[3], 1u);
  const auto cols = m.col_counts();
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols[0], 2u);
  EXPECT_EQ(cols[1], 1u);
  EXPECT_EQ(cols[2], 2u);
}

TEST(RatingMatrix, TransposeSwapsCoordinates) {
  const RatingMatrix t = small_matrix().transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 4u);
  EXPECT_EQ(t.nnz(), 5u);
  bool found = false;
  for (const auto& e : t.entries()) {
    if (e.u == 1 && e.i == 2 && e.r == 3.0f) found = true;
    EXPECT_LT(e.u, 3u);
    EXPECT_LT(e.i, 4u);
  }
  EXPECT_TRUE(found) << "transposed (2,1,3.0) missing";
}

TEST(RatingMatrix, DoubleTransposeIsIdentity) {
  RatingMatrix m = small_matrix();
  m.sort_by_row();
  RatingMatrix tt = m.transposed().transposed();
  tt.sort_by_row();
  ASSERT_EQ(tt.nnz(), m.nnz());
  for (std::size_t i = 0; i < m.nnz(); ++i) {
    EXPECT_EQ(tt.entries()[i], m.entries()[i]);
  }
}

TEST(RatingMatrix, SliceRowsKeepsGlobalCoordinates) {
  RatingMatrix m = small_matrix();
  m.sort_by_row();
  const RatingMatrix slice = m.slice_rows(1, 3);
  EXPECT_EQ(slice.rows(), 4u);  // dimensions stay global
  EXPECT_EQ(slice.nnz(), 3u);   // rows 1 and 2
  for (const auto& e : slice.entries()) {
    EXPECT_GE(e.u, 1u);
    EXPECT_LT(e.u, 3u);
  }
}

TEST(RatingMatrix, SliceRowsEmptyAndFull) {
  RatingMatrix m = small_matrix();
  m.sort_by_row();
  EXPECT_EQ(m.slice_rows(0, 0).nnz(), 0u);
  EXPECT_EQ(m.slice_rows(0, 4).nnz(), 5u);
  EXPECT_EQ(m.slice_rows(3, 4).nnz(), 1u);
}

TEST(CsrIndex, OffsetsMatchRowCounts) {
  RatingMatrix m = small_matrix();
  m.sort_by_row();
  const CsrIndex csr(m);
  EXPECT_EQ(csr.rows(), 4u);
  EXPECT_EQ(csr.end(0) - csr.begin(0), 1u);
  EXPECT_EQ(csr.end(1) - csr.begin(1), 1u);
  EXPECT_EQ(csr.end(2) - csr.begin(2), 2u);
  EXPECT_EQ(csr.end(3) - csr.begin(3), 1u);
  EXPECT_EQ(csr.end(3), m.nnz());
  // Entries inside each row range really belong to that row.
  for (std::uint32_t r = 0; r < 4; ++r) {
    for (std::size_t idx = csr.begin(r); idx < csr.end(r); ++idx) {
      EXPECT_EQ(m.entries()[idx].u, r);
    }
  }
}

TEST(CsrIndex, HandlesEmptyRows) {
  RatingMatrix m(5, 2);
  m.add(4, 0, 1.0f);
  m.sort_by_row();
  const CsrIndex csr(m);
  for (std::uint32_t r = 0; r < 4; ++r) {
    EXPECT_EQ(csr.begin(r), csr.end(r));
  }
  EXPECT_EQ(csr.end(4) - csr.begin(4), 1u);
}

}  // namespace
}  // namespace hcc::data
