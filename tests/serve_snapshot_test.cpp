// Tests for RCU snapshot publishing (serve/snapshot.hpp) and the
// train-while-serve path: concurrent readers during parallel training must
// race-free (TSan runs this suite) and must only ever observe complete
// epochs.
#include "serve/snapshot.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "core/hccmf.hpp"
#include "mf/metrics.hpp"
#include "serve/engine.hpp"
#include "serve/metrics.hpp"
#include "util/rng.hpp"

namespace hcc::serve {
namespace {

std::shared_ptr<const ModelSnapshot> constant_snapshot(std::uint32_t epoch,
                                                       float value) {
  const std::uint32_t users = 8, items = 64, k = 16;
  std::vector<float> p(std::size_t(users) * k, value);
  std::vector<float> q(std::size_t(items) * k, value);
  auto s = std::make_shared<ModelSnapshot>();
  s->epoch = epoch;
  s->store = FactorStore(StoreKind::kFp32, users, items, k, p, q);
  return s;
}

TEST(ServeSnapshot, CurrentIsNullBeforeFirstPublish) {
  SnapshotRegistry registry;
  EXPECT_EQ(registry.current(), nullptr);
  EXPECT_EQ(registry.published(), 0u);
  registry.publish(constant_snapshot(1, 1.0f));
  ASSERT_NE(registry.current(), nullptr);
  EXPECT_EQ(registry.current()->epoch, 1u);
  EXPECT_EQ(registry.published(), 1u);
}

TEST(ServeSnapshot, OldReadersKeepTheirSnapshotAcrossPublishes) {
  SnapshotRegistry registry;
  registry.publish(constant_snapshot(1, 1.0f));
  const auto held = registry.current();
  registry.publish(constant_snapshot(2, 2.0f));
  EXPECT_EQ(held->epoch, 1u);
  EXPECT_EQ(registry.current()->epoch, 2u);
  std::vector<float> row(held->store.k());
  held->store.decode_p_row(0, row.data());
  EXPECT_EQ(row[0], 1.0f);
}

TEST(ServeSnapshot, ConcurrentReadersAlwaysSeeACompleteEpoch) {
  // The publisher swaps snapshots whose every value equals their epoch
  // number; readers decode random rows and verify internal consistency —
  // any torn publish or half-visible store shows up as a mixed row (and
  // as a TSan report under the sanitizer job).
  SnapshotRegistry registry;
  registry.publish(constant_snapshot(1, 1.0f));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<bool> torn{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      util::Rng rng(100 + t);
      std::vector<float> row;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = registry.current();
        const float expect = static_cast<float>(snap->epoch);
        row.resize(snap->store.k());
        const auto u =
            static_cast<std::uint32_t>(rng.uniform_u64(snap->store.users()));
        snap->store.decode_p_row(u, row.data());
        for (const float v : row) {
          if (v != expect) torn.store(true, std::memory_order_relaxed);
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::uint32_t epoch = 2; epoch <= 40; ++epoch) {
    registry.publish(constant_snapshot(epoch, static_cast<float>(epoch)));
  }
  // On a loaded single-core host the 39 publishes can finish before any
  // reader is first scheduled; keep the snapshot live until every reader
  // has completed at least a few reads so the assertion below is
  // deterministic (readers never block, so this always terminates).
  while (reads.load(std::memory_order_relaxed) < 16) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();
  EXPECT_FALSE(torn.load());
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(registry.published(), 40u);
}

struct SmallProblem {
  data::RatingMatrix train{0, 0};
  data::RatingMatrix test{0, 0};
  data::DatasetSpec spec;
};

SmallProblem netflix_small(double scale = 0.002) {
  SmallProblem pr;
  pr.spec = data::netflix_spec().scaled(scale);
  data::GeneratorConfig gen;
  gen.seed = 5;
  gen.planted_rank = 4;
  const auto full = data::generate(pr.spec, gen);
  util::Rng rng(6);
  auto [train, test] = data::train_test_split(full, 0.1, rng);
  pr.train = std::move(train);
  pr.test = std::move(test);
  return pr;
}

core::HccMfConfig serving_config(const data::DatasetSpec& spec) {
  core::HccMfConfig config;
  config.sgd = mf::SgdConfig::for_dataset(spec.reg_lambda, 0.01f, /*k=*/16);
  config.sgd.epochs = 6;
  config.comm.fp16 = false;
  config.platform = sim::paper_workstation_hetero();
  for (auto& w : config.platform.workers) w.epoch_overhead_s = 0.0;
  config.dataset_name = spec.name;
  config.publish_every = 1;
  config.publish_store = StoreKind::kFp32;
  config.snapshots = std::make_shared<SnapshotRegistry>();
  return config;
}

TEST(ServeSnapshot, ValidateRejectsPublishWithoutRegistry) {
  core::HccMfConfig config = serving_config(data::netflix_spec().scaled(0.002));
  config.snapshots = nullptr;
  const auto errors = config.validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].code, core::ConfigErrorCode::kPublishNeedsRegistry);
}

TEST(ServeTrainWhileServe, ParallelTrainingPublishesWhileReadersQuery) {
  // The acceptance scenario: parallel training with per-epoch publishes
  // and concurrent query threads.  Readers must always get answers, the
  // read path must add no stripe-lock traffic, and the final snapshot must
  // equal the delivered model exactly.
  const SmallProblem pr = netflix_small();
  core::HccMfConfig config = serving_config(pr.spec);
  config.exec.mode = core::ExecMode::kParallel;
  auto registry = config.snapshots;
  const mf::SeenIndex seen(pr.train);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> answered{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      TopKEngine engine;
      util::Rng rng(50 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = registry->current();
        if (snap == nullptr) continue;  // training hasn't published yet
        const auto u =
            static_cast<std::uint32_t>(rng.uniform_u64(snap->store.users()));
        const auto recs = engine.top_k(*snap, u, 5, &seen);
        if (!recs.empty()) answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  core::HccMf framework(config);
  const core::TrainReport report = framework.train(pr.train, &pr.test);
  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();

  EXPECT_GT(answered.load(), 0u);
  // One publish per epoch boundary except the last, plus the final model.
  EXPECT_EQ(registry->published(),
            static_cast<std::uint64_t>(config.sgd.epochs));
  const auto final_snap = registry->current();
  ASSERT_NE(final_snap, nullptr);
  ASSERT_TRUE(report.model.has_value());
  // fp32 snapshot of the delivered model: byte-identical factors.
  const auto& model = *report.model;
  std::vector<float> row(model.k());
  for (const std::uint32_t u : {0u, model.users() - 1}) {
    final_snap->store.decode_p_row(u, row.data());
    for (std::uint32_t f = 0; f < model.k(); ++f) {
      EXPECT_EQ(row[f], model.p(u)[f]) << "user " << u;
    }
  }
  EXPECT_TRUE(std::isfinite(report.epochs.back().test_rmse));
}

TEST(ServeTrainWhileServe, SerialTrajectoryUnchangedByPublishing) {
  // Publishing is read-only for the trainer: the trained model with
  // snapshots on must be bit-identical to one trained without.
  const SmallProblem pr = netflix_small();
  core::HccMfConfig with = serving_config(pr.spec);
  core::HccMfConfig without = serving_config(pr.spec);
  without.publish_every = 0;
  without.snapshots = nullptr;
  const auto report_with = core::HccMf(with).train(pr.train, &pr.test);
  const auto report_without = core::HccMf(without).train(pr.train, &pr.test);
  ASSERT_TRUE(report_with.model.has_value());
  ASSERT_TRUE(report_without.model.has_value());
  const auto& a = *report_with.model;
  const auto& b = *report_without.model;
  ASSERT_EQ(a.users(), b.users());
  for (std::uint32_t u = 0; u < a.users(); ++u) {
    for (std::uint32_t f = 0; f < a.k(); ++f) {
      ASSERT_EQ(a.p(u)[f], b.p(u)[f]) << "user " << u;
    }
  }
  for (std::uint32_t i = 0; i < a.items(); ++i) {
    for (std::uint32_t f = 0; f < a.k(); ++f) {
      ASSERT_EQ(a.q(i)[f], b.q(i)[f]) << "item " << i;
    }
  }
}

TEST(ServeSnapshot, QuantileInterpolationFromHistogram) {
  obs::Histogram h(std::vector<double>{1.0, 2.0, 4.0});
  EXPECT_EQ(histogram_quantile(h, 0.5), 0.0);  // empty
  for (int i = 0; i < 100; ++i) h.observe(0.5);   // all in (0, 1]
  EXPECT_NEAR(histogram_quantile(h, 0.5), 0.5, 1e-9);
  for (int i = 0; i < 100; ++i) h.observe(3.0);   // (2, 4]
  EXPECT_NEAR(histogram_quantile(h, 0.75), 3.0, 1e-9);
  EXPECT_NEAR(histogram_quantile(h, 1.0), 4.0, 1e-9);
  h.observe(100.0);  // overflow clamps to the last bound
  EXPECT_NEAR(histogram_quantile(h, 0.9999), 4.0, 1e-9);
}

}  // namespace
}  // namespace hcc::serve
