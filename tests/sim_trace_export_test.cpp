// Tests for the CSV trace exporter.
#include "sim/trace_export.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace hcc::sim {
namespace {

class TraceExportTest : public ::testing::Test {
 protected:
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_ = "/tmp/hccmf_trace_test.csv";

  static std::vector<std::string> read_lines(const std::string& path) {
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
  }
};

TEST_F(TraceExportTest, EpochCsvHasWorkerRowsAndSummary) {
  EpochTiming timing;
  timing.workers.resize(2);
  timing.workers[0].pull_s = 0.001;
  timing.workers[0].compute_s = 0.04;
  timing.workers[1].compute_s = 0.05;
  timing.epoch_s = 0.06;
  timing.server_busy_s = 0.002;

  ASSERT_TRUE(export_epoch_csv(timing, {"2080S", "6242"}, path_));
  const auto lines = read_lines(path_);
  ASSERT_EQ(lines.size(), 4u);  // header + 2 workers + summary
  EXPECT_NE(lines[0].find("compute_s"), std::string::npos);
  EXPECT_NE(lines[1].find("2080S"), std::string::npos);
  EXPECT_NE(lines[2].find("6242"), std::string::npos);
  EXPECT_NE(lines[3].find("epoch"), std::string::npos);
}

TEST_F(TraceExportTest, EpochCsvToleratesMissingNames) {
  EpochTiming timing;
  timing.workers.resize(3);
  ASSERT_TRUE(export_epoch_csv(timing, {"only-one"}, path_));
  EXPECT_EQ(read_lines(path_).size(), 5u);
}

TEST_F(TraceExportTest, SeriesCsvRoundTrips) {
  ASSERT_TRUE(export_series_csv({"epoch", "rmse"},
                                {{0.0, 1.5}, {1.0, 0.9}, {2.0, 0.7}}, path_));
  const auto lines = read_lines(path_);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "epoch,rmse");
  EXPECT_NE(lines[2].find("0.9"), std::string::npos);
}

TEST_F(TraceExportTest, FailsOnUnwritablePath) {
  EpochTiming timing;
  EXPECT_FALSE(export_epoch_csv(timing, {}, "/nonexistent_dir/x.csv"));
  EXPECT_FALSE(export_series_csv({"a"}, {}, "/nonexistent_dir/x.csv"));
}

}  // namespace
}  // namespace hcc::sim
