// Tests for virtual device presets and platform composition.
#include "sim/device.hpp"

#include <gtest/gtest.h>

#include "sim/perf_model.hpp"
#include "sim/platform.hpp"

namespace hcc::sim {
namespace {

TEST(Device, PresetsCarryTable2Bandwidths) {
  EXPECT_NEAR(xeon_6242_24t().mem_bandwidth_gbs, 67.3001, 1e-4);
  EXPECT_NEAR(xeon_6242_10t().mem_bandwidth_gbs, 39.31905, 1e-4);
  EXPECT_NEAR(rtx_2080().mem_bandwidth_gbs, 378.616, 1e-3);
  EXPECT_NEAR(rtx_2080s().mem_bandwidth_gbs, 407.095, 1e-3);
}

TEST(Device, PresetsCarryTable4Rates) {
  EXPECT_NEAR(*xeon_6242_24t().calibrated_rate("netflix"), 348790567.0, 1.0);
  EXPECT_NEAR(*xeon_6242_16t().calibrated_rate("r2"), 212851540.0, 1.0);
  EXPECT_NEAR(*rtx_2080().calibrated_rate("r1"), 801190194.0, 1.0);
  EXPECT_NEAR(*rtx_2080s().calibrated_rate("movielens"), 905200490.3, 1.0);
}

TEST(Device, UnknownDatasetHasNoCalibration) {
  EXPECT_FALSE(xeon_6242_24t().calibrated_rate("mystery").has_value());
}

TEST(Device, ClassesAndBuses) {
  EXPECT_EQ(xeon_6242_24t().cls, DeviceClass::kCpu);
  EXPECT_EQ(rtx_2080().cls, DeviceClass::kGpu);
  EXPECT_EQ(xeon_6242_24t().bus, BusKind::kUpi);
  EXPECT_EQ(rtx_2080().bus, BusKind::kPcie3x16);
  EXPECT_EQ(xeon_6242_16t().bus, BusKind::kLocal);  // time-shares the server
}

TEST(Device, BusBandwidthsMatchSection22) {
  EXPECT_DOUBLE_EQ(bus_bandwidth_gbs(BusKind::kPcie3x16), 16.0);
  EXPECT_DOUBLE_EQ(bus_bandwidth_gbs(BusKind::kUpi), 20.8);
  EXPECT_GT(bus_bandwidth_gbs(BusKind::kLocal),
            bus_bandwidth_gbs(BusKind::kUpi));
}

TEST(Device, OnlyGpusHaveCopyEngines) {
  EXPECT_EQ(xeon_6242_24t().copy_streams, 1u);
  EXPECT_GT(rtx_2080().copy_streams, 1u);
  EXPECT_GT(rtx_2080s().copy_streams, 1u);
}

TEST(Device, LookupByName) {
  EXPECT_EQ(device_by_name("6242-24T").name, "6242-24T");
  EXPECT_EQ(device_by_name("6242L").name, "6242-10T");
  EXPECT_EQ(device_by_name("2080S").name, "2080S");
  EXPECT_EQ(device_by_name("V100").name, "V100");
  EXPECT_THROW(device_by_name("3090"), std::invalid_argument);
}

TEST(Device, DatasetBaseNameStripsScaleAndAliases) {
  EXPECT_EQ(dataset_base_name("netflix"), "netflix");
  EXPECT_EQ(dataset_base_name("netflix@0.01"), "netflix");
  EXPECT_EQ(dataset_base_name("r1star"), "r1");
  EXPECT_EQ(dataset_base_name("r1star@0.05"), "r1");
}

TEST(Device, GpusAreFasterThanCpusOnNetflix) {
  const DatasetShape nf{"netflix", 480190, 17771, 99072112, 128};
  EXPECT_GT(iw_update_rate(rtx_2080(), nf),
            2.0 * iw_update_rate(xeon_6242_24t(), nf));
  EXPECT_GT(iw_update_rate(rtx_2080s(), nf), iw_update_rate(rtx_2080(), nf));
  EXPECT_GT(iw_update_rate(tesla_v100(), nf), iw_update_rate(rtx_2080s(), nf));
}

TEST(Platform, PaperWorkstationHasFourWorkers) {
  const PlatformSpec p = paper_workstation_overall();
  EXPECT_EQ(p.workers.size(), 4u);
  const PlatformSpec h = paper_workstation_hetero();
  ASSERT_EQ(h.workers.size(), 4u);
  // Figure 9's add order: 2080S, 6242, 2080, 6242L.
  EXPECT_EQ(h.workers[0].name, "2080S");
  EXPECT_EQ(h.workers[1].name, "6242-24T");
  EXPECT_EQ(h.workers[2].name, "2080");
  EXPECT_EQ(h.workers[3].name, "6242-10T");
}

TEST(Platform, IdealRateIsSumOfWorkers) {
  const DatasetShape nf{"netflix", 480190, 17771, 99072112, 128};
  const PlatformSpec p = paper_workstation_overall();
  double sum = 0.0;
  for (const auto& w : p.workers) sum += iw_update_rate(w, nf);
  EXPECT_NEAR(p.ideal_update_rate(nf), sum, 1.0);
  // Table 4's "Ideal" column for Netflix: 2,592,493,089 updates/s.
  EXPECT_NEAR(sum, 2592493089.0, 2e6);
}

TEST(Platform, ComboBuildsFromNames) {
  const PlatformSpec p = combo("6242-2080S", {"6242-24T", "2080S"});
  ASSERT_EQ(p.workers.size(), 2u);
  EXPECT_EQ(p.name, "6242-2080S");
  EXPECT_GT(p.total_price_usd(), p.workers[1].price_usd);
}

TEST(Platform, SingleDevicePlatform) {
  const PlatformSpec p = single_device(rtx_2080());
  ASSERT_EQ(p.workers.size(), 1u);
  EXPECT_EQ(p.name, "2080");
}

TEST(Platform, PricesReflectFigure3b) {
  // Figure 3(b): the V100 costs several times the 6242-2080S combination.
  const double v100 = single_device(tesla_v100()).total_price_usd();
  const double combo_price =
      combo("6242-2080S", {"6242-24T", "2080S"}).total_price_usd();
  EXPECT_GT(v100, 1.5 * combo_price);
}

}  // namespace
}  // namespace hcc::sim
