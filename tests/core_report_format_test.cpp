// Tests for the report formatter and the shared bench JSON report schema.
#include "core/report_format.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <limits>
#include <sstream>

#include "bench_common.hpp"

namespace hcc::core {
namespace {

TrainReport sample_report(bool with_rmse) {
  TrainReport report;
  report.plan.explanation = "grid=row payload=Q strategy=DP1";
  for (std::uint32_t e = 0; e < 4; ++e) {
    EpochReport er;
    er.epoch = e;
    er.virtual_s = 0.1;
    er.cumulative_virtual_s = 0.1 * (e + 1);
    er.test_rmse = with_rmse
                       ? 1.0 - 0.1 * e
                       : std::numeric_limits<double>::quiet_NaN();
    report.epochs.push_back(er);
  }
  report.total_virtual_s = 0.4;
  report.updates_per_s = 2.0e9;
  report.ideal_updates_per_s = 2.5e9;
  report.utilization = 0.8;
  report.comm_totals.wire_bytes = 5'000'000;
  report.comm_totals.copies = 16;
  return report;
}

TEST(FormatReport, MentionsEveryHeadline) {
  const std::string s = format_report(sample_report(true));
  EXPECT_NE(s.find("strategy=DP1"), std::string::npos);
  EXPECT_NE(s.find("1.0000 -> 0.7000"), std::string::npos);
  EXPECT_NE(s.find("(best 0.7000)"), std::string::npos);
  EXPECT_NE(s.find("0.4000 s over 4 epochs"), std::string::npos);
  EXPECT_NE(s.find("2000.0 Mupdates/s"), std::string::npos);
  EXPECT_NE(s.find("80.0%"), std::string::npos);
  EXPECT_NE(s.find("5.00 MB in 16 transfers"), std::string::npos);
  EXPECT_EQ(s.find("repartitions"), std::string::npos);  // none happened
}

TEST(FormatReport, SkipsRmseWhenNotEvaluated) {
  const std::string s = format_report(sample_report(false));
  EXPECT_EQ(s.find("test RMSE"), std::string::npos);
}

TEST(FormatReport, ReportsRepartitions) {
  TrainReport report = sample_report(true);
  report.repartitions = 3;
  EXPECT_NE(format_report(report).find("adaptive repartitions: 3"),
            std::string::npos);
}

TEST(FormatEpochTable, StrideSubsamplesButKeepsLastEpoch) {
  const std::string s = format_epoch_table(sample_report(true), 3);
  EXPECT_NE(s.find("epoch"), std::string::npos);
  // Rows 0 and 3 survive stride 3; row 3 is also the last.
  EXPECT_NE(s.find("1.0000"), std::string::npos);
  EXPECT_NE(s.find("0.7000"), std::string::npos);
  EXPECT_EQ(s.find("0.9000"), std::string::npos);  // row 1 dropped
}

TEST(FormatEpochTable, DashesForUnevaluatedEpochs) {
  const std::string s = format_epoch_table(sample_report(false));
  EXPECT_NE(s.find("-"), std::string::npos);
}

// Every bench binary's --json-out document carries the schema version and
// the locality configuration (schedule policy, tile budget, pinning) parsed
// from the same argv, so BENCH_*.json files are comparable across runs.
TEST(JsonReportSchema, StampsScheduleMetaFromArgv) {
  const std::string path = ::testing::TempDir() + "bench_schema_probe.json";
  const char* argv[] = {"bench",      "--json-out", path.c_str(),
                        "--schedule", "tiled",      "--tile-kb",
                        "512",        "--pin",      "--codec",
                        "2bit"};
  {
    hcc::bench::JsonReport report(10, argv, "schema_probe");
  }  // destructor writes the document
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();
  EXPECT_NE(doc.find("\"schema\":3"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"schedule\":\"tiled\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"tile_kb\":512"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"pin\":1"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"codec\":\"2bit\""), std::string::npos) << doc;
}

TEST(JsonReportSchema, DefaultsToAsIsUnpinned) {
  const std::string path = ::testing::TempDir() + "bench_schema_default.json";
  const char* argv[] = {"bench", "--json-out", path.c_str()};
  {
    hcc::bench::JsonReport report(3, argv, "schema_probe");
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();
  EXPECT_NE(doc.find("\"schedule\":\"asis\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"pin\":0"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"codec\":\"auto\""), std::string::npos) << doc;
}

}  // namespace
}  // namespace hcc::core
