// Tests for the sparse-push extension ("Strategy 4"): only touched Q rows
// travel and merge.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/strategy.hpp"
#include "core/hccmf.hpp"
#include "core/server.hpp"
#include "core/worker.hpp"
#include "data/datasets.hpp"
#include "mf/metrics.hpp"

namespace hcc {
namespace {

TEST(TouchedFraction, BallsInBinsLimits) {
  using comm::expected_touched_fraction;
  EXPECT_DOUBLE_EQ(expected_touched_fraction(0.0, 1000.0), 0.0);
  EXPECT_DOUBLE_EQ(expected_touched_fraction(10.0, 0.0), 0.0);
  // nnz == n: 1 - 1/e.
  EXPECT_NEAR(expected_touched_fraction(1000.0, 1000.0), 1.0 - std::exp(-1.0),
              1e-12);
  // nnz >> n: everything touched.
  EXPECT_NEAR(expected_touched_fraction(1e7, 1000.0), 1.0, 1e-9);
  // Monotone in nnz.
  EXPECT_LT(expected_touched_fraction(100.0, 1000.0),
            expected_touched_fraction(500.0, 1000.0));
}

TEST(SparsePlan, ShrinksBytesOnSparseAssignments) {
  // A worker holding few ratings relative to n transmits far less.
  const sim::DatasetShape shape{"", 8000000, 8000000, 100000000, 128};
  comm::CommConfig dense;
  dense.fp16 = false;
  comm::CommConfig sparse = dense;
  sparse.sparse = true;

  const auto dev = sim::rtx_2080s();
  const auto dense_plan =
      comm::make_comm_plan(dense, shape, dev, false, 0.25);
  const auto sparse_plan =
      comm::make_comm_plan(sparse, shape, dev, false, 0.25);
  // share 0.25 -> nnz_w/n ~ 3.1 -> touched ~ 96%: small gain here...
  EXPECT_LT(sparse_plan.push_bytes, dense_plan.push_bytes * 1.01);

  // ... but with 16 notional workers (share 1/16 -> nnz_w/n ~ 0.78,
  // touched ~ 54%) the gain is large.
  const auto sparse_small =
      comm::make_comm_plan(sparse, shape, dev, false, 1.0 / 16.0);
  const auto dense_small =
      comm::make_comm_plan(dense, shape, dev, false, 1.0 / 16.0);
  EXPECT_LT(sparse_small.push_bytes, 0.7 * dense_small.push_bytes);
  EXPECT_LT(sparse_small.sync_bytes, 0.6 * dense_small.sync_bytes);
}

TEST(SparsePlan, LastEpochStaysDense) {
  const sim::DatasetShape shape{"", 100000, 100000, 200000, 32};
  comm::CommConfig sparse;
  sparse.sparse = true;
  sparse.fp16 = false;
  const auto dev = sim::rtx_2080s();
  const auto mid = comm::make_comm_plan(sparse, shape, dev, false, 0.5);
  const auto last = comm::make_comm_plan(sparse, shape, dev, true, 0.5);
  EXPECT_GT(last.push_bytes, mid.push_bytes);  // final P&Q push is full
}

comm::CommConfig sparse_fp32() {
  comm::CommConfig c;
  c.sparse = true;
  c.fp16 = false;
  return c;
}

TEST(SparseWorker, CountsTouchedItemsAndShrinksWire) {
  // Slice touches 3 of 100 items; wire = 2 transfers x 3 rows x k floats.
  data::RatingMatrix slice(10, 100);
  slice.add(0, 5, 4.0f);
  slice.add(1, 50, 3.0f);
  slice.add(1, 99, 2.0f);
  slice.add(0, 5, 1.0f);  // duplicate item: still one row

  mf::FactorModel model(10, 100, 8);
  util::Rng rng(1);
  model.init_random(rng, 3.0f);
  core::Server server(std::move(model), sparse_fp32());
  core::TrainWorker worker(0, "dev", std::move(slice), sparse_fp32());
  EXPECT_EQ(worker.touched_items(), 3u);

  worker.pull(server);
  worker.push(server);
  EXPECT_EQ(worker.comm_stats().wire_bytes, 2u * 3u * 8u * 4u);
}

TEST(SparseWorker, UntouchedRowsNeverChange) {
  data::RatingMatrix slice(4, 20);
  slice.add(0, 7, 5.0f);
  mf::FactorModel model(4, 20, 4);
  util::Rng rng(2);
  model.init_random(rng, 3.0f);
  const std::vector<float> q_before(model.q_data().begin(),
                                    model.q_data().end());
  core::Server server(std::move(model), sparse_fp32());
  core::TrainWorker worker(0, "dev", std::move(slice), sparse_fp32());
  for (int e = 0; e < 5; ++e) {
    worker.pull(server);
    worker.compute_chunk(server, 0, 0.05f, 0.001f, 0.001f, nullptr);
    worker.push(server);
  }
  const auto q_after = server.model().q_data();
  for (std::uint32_t item = 0; item < 20; ++item) {
    for (std::uint32_t f = 0; f < 4; ++f) {
      const std::size_t idx = std::size_t(item) * 4 + f;
      if (item == 7) continue;
      EXPECT_EQ(q_after[idx], q_before[idx]) << "item " << item;
    }
  }
  // The touched item did move.
  EXPECT_NE(q_after[7 * 4], q_before[7 * 4]);
}

TEST(SparseHccMf, ConvergesLikeDense) {
  const data::DatasetSpec spec = data::netflix_spec().scaled(0.002);
  data::GeneratorConfig gen;
  gen.seed = 23;
  gen.planted_rank = 4;
  const auto full = data::generate(spec, gen);
  util::Rng rng(24);
  const auto [train, test] = data::train_test_split(full, 0.1, rng);

  auto run = [&](bool sparse) {
    core::HccMfConfig config;
    config.sgd = mf::SgdConfig::for_dataset(0.02f, 0.01f, 16);
    config.sgd.epochs = 8;
    config.comm.fp16 = false;
    config.comm.sparse = sparse;
    config.platform = sim::paper_workstation_hetero();
    for (auto& w : config.platform.workers) w.epoch_overhead_s = 0.0;
    config.dataset_name = spec.name;
    return core::HccMf(config).train(train, &test);
  };
  const core::TrainReport dense = run(false);
  const core::TrainReport sparse = run(true);
  EXPECT_NEAR(sparse.epochs.back().test_rmse, dense.epochs.back().test_rmse,
              0.05);
  // The wire can only get lighter.
  EXPECT_LE(sparse.comm_totals.wire_bytes, dense.comm_totals.wire_bytes);
}

}  // namespace
}  // namespace hcc
