// Tests for the DataManager's planning and strategy selection.
#include "core/data_manager.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace hcc::core {
namespace {

sim::DatasetShape netflix_shape() {
  return {"netflix", 480190, 17771, 99072112, 128};
}
sim::DatasetShape r1_shape() { return {"r1", 1948883, 1101750, 115579437, 128}; }
sim::DatasetShape wide_shape() { return {"", 2000, 90000, 4000000, 32}; }

DataManager manager_for(const sim::DatasetShape& shape) {
  comm::CommConfig comm;
  comm.fp16 = false;
  return DataManager(sim::paper_workstation_hetero(), shape, comm);
}

TEST(DataManager, SharesAlwaysSumToOne) {
  const DataManager mgr = manager_for(netflix_shape());
  for (PartitionStrategy s :
       {PartitionStrategy::kEven, PartitionStrategy::kDp0,
        PartitionStrategy::kDp1, PartitionStrategy::kDp2,
        PartitionStrategy::kAuto}) {
    const Plan plan = mgr.plan(s);
    const double sum =
        std::accumulate(plan.shares.begin(), plan.shares.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9) << partition_strategy_name(s);
    EXPECT_EQ(plan.shares.size(), 4u);
  }
}

TEST(DataManager, AutoPicksDp1ForNetflix) {
  // Netflix: compute >> sync -> Eq. 5 first branch -> DP1 (Section 4.3).
  const Plan plan = manager_for(netflix_shape()).plan(PartitionStrategy::kAuto);
  EXPECT_EQ(plan.chosen, PartitionStrategy::kDp1);
  EXPECT_TRUE(plan.prediction.sync_negligible);
}

TEST(DataManager, AutoPicksDp2ForR1) {
  // R1: sync matters -> DP2 (Section 4.3's R1/R1* case).
  const Plan plan = manager_for(r1_shape()).plan(PartitionStrategy::kAuto);
  EXPECT_EQ(plan.chosen, PartitionStrategy::kDp2);
}

TEST(DataManager, ExplicitRequestIsHonored) {
  const DataManager mgr = manager_for(netflix_shape());
  EXPECT_EQ(mgr.plan(PartitionStrategy::kDp0).chosen, PartitionStrategy::kDp0);
  EXPECT_EQ(mgr.plan(PartitionStrategy::kDp2).chosen, PartitionStrategy::kDp2);
  EXPECT_EQ(mgr.plan(PartitionStrategy::kEven).chosen,
            PartitionStrategy::kEven);
}

TEST(DataManager, GridFollowsAspectRatio) {
  EXPECT_EQ(manager_for(netflix_shape()).plan().grid, data::GridKind::kRow);
  EXPECT_EQ(manager_for(wide_shape()).plan().grid, data::GridKind::kColumn);
}

TEST(DataManager, PayloadFollowsGrid) {
  EXPECT_EQ(manager_for(netflix_shape()).plan().payload,
            comm::PayloadMode::kQOnly);
  EXPECT_EQ(manager_for(wide_shape()).plan().payload,
            comm::PayloadMode::kPOnly);
}

TEST(DataManager, Dp0FavorsFasterDevices) {
  const Plan plan = manager_for(netflix_shape()).plan(PartitionStrategy::kDp0);
  // Worker order: 2080S, 6242-24T, 2080, 6242-10T.
  EXPECT_GT(plan.shares[0], plan.shares[1]);  // 2080S > 6242
  EXPECT_GT(plan.shares[2], plan.shares[3]);  // 2080 > 6242L
  EXPECT_GT(plan.shares[0], plan.shares[3]);
}

TEST(DataManager, Dp1BalancesBetterThanDp0) {
  const DataManager mgr = manager_for(netflix_shape());
  const Plan dp0 = mgr.plan(PartitionStrategy::kDp0);
  const Plan dp1 = mgr.plan(PartitionStrategy::kDp1);
  EXPECT_LE(worker_time_spread(dp1.prediction.worker_seconds),
            worker_time_spread(dp0.prediction.worker_seconds) + 0.02);
  EXPECT_GE(dp1.dp1_rounds, 1u);
}

TEST(DataManager, ExplanationMentionsDecisions) {
  const Plan plan = manager_for(netflix_shape()).plan(PartitionStrategy::kAuto);
  EXPECT_NE(plan.explanation.find("grid=row"), std::string::npos);
  EXPECT_NE(plan.explanation.find("payload=Q"), std::string::npos);
  EXPECT_NE(plan.explanation.find("strategy=DP1"), std::string::npos);
}

TEST(DataManager, EpochConfigCarriesSharesAndComm) {
  const DataManager mgr = manager_for(netflix_shape());
  const Plan plan = mgr.plan(PartitionStrategy::kDp1);
  const sim::EpochConfig cfg = mgr.epoch_config(plan);
  ASSERT_EQ(cfg.workers.size(), plan.shares.size());
  for (std::size_t i = 0; i < cfg.workers.size(); ++i) {
    EXPECT_DOUBLE_EQ(cfg.workers[i].share, plan.shares[i]);
    EXPECT_GT(cfg.workers[i].comm.pull_bytes, 0.0);
  }
}

TEST(DataManager, LastEpochConfigPushesMore) {
  const DataManager mgr = manager_for(netflix_shape());
  const Plan plan = mgr.plan(PartitionStrategy::kDp1);
  const sim::EpochConfig mid = mgr.epoch_config(plan, false);
  const sim::EpochConfig last = mgr.epoch_config(plan, true);
  EXPECT_GT(last.workers[0].comm.push_bytes, mid.workers[0].comm.push_bytes);
}

TEST(DataManager, IndependentSecondsMatchPerfModel) {
  const DataManager mgr = manager_for(netflix_shape());
  const auto iw = mgr.independent_seconds();
  ASSERT_EQ(iw.size(), 4u);
  EXPECT_NEAR(iw[0],
              sim::compute_seconds(sim::rtx_2080s(), netflix_shape(), 1.0),
              1e-12);
}

TEST(DataManager, HighLambdaForcesDp2UnderAuto) {
  // Cranking lambda makes even Netflix's sync "non-negligible".
  comm::CommConfig comm;
  comm.fp16 = false;
  DataManagerOptions options;
  options.lambda = 1e9;
  DataManager mgr(sim::paper_workstation_hetero(), netflix_shape(), comm,
                  options);
  EXPECT_EQ(mgr.plan(PartitionStrategy::kAuto).chosen,
            PartitionStrategy::kDp2);
}

}  // namespace
}  // namespace hcc::core
