// Tests for the IEEE-754 binary16 software codec (Strategy 2's substrate).
#include "util/fp16.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/rng.hpp"

namespace hcc::util {
namespace {

float roundtrip(float v) { return fp16_to_float(float_to_fp16(v)); }

TEST(Fp16, ExactSmallValues) {
  // Every value exactly representable in binary16 must round-trip exactly.
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 4.5f, 100.0f, -3.75f,
                  1024.0f, 0.25f, 0.125f, 65504.0f}) {
    EXPECT_EQ(roundtrip(v), v) << "value " << v;
  }
}

TEST(Fp16, SignedZeroPreserved) {
  EXPECT_EQ(float_to_fp16(0.0f).bits, 0x0000);
  EXPECT_EQ(float_to_fp16(-0.0f).bits, 0x8000);
  EXPECT_TRUE(std::signbit(roundtrip(-0.0f)));
}

TEST(Fp16, InfinityAndOverflow) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(roundtrip(inf), inf);
  EXPECT_EQ(roundtrip(-inf), -inf);
  // Beyond the binary16 max (65504, rounding boundary 65520): -> inf.
  EXPECT_EQ(roundtrip(70000.0f), inf);
  EXPECT_EQ(roundtrip(-1e9f), -inf);
  EXPECT_EQ(roundtrip(65520.0f), inf);  // exact tie rounds to even -> inf
  EXPECT_EQ(roundtrip(65519.0f), 65504.0f);
}

TEST(Fp16, NanPreserved) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(roundtrip(nan)));
}

TEST(Fp16, KnownBitPatterns) {
  EXPECT_EQ(float_to_fp16(1.0f).bits, 0x3c00);
  EXPECT_EQ(float_to_fp16(-2.0f).bits, 0xc000);
  EXPECT_EQ(float_to_fp16(65504.0f).bits, 0x7bff);
  EXPECT_EQ(fp16_to_float(Half{0x3555}), 0.333251953125f);  // ~1/3
}

TEST(Fp16, SubnormalsRoundTrip) {
  // Smallest positive binary16 subnormal is 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(roundtrip(tiny), tiny);
  EXPECT_EQ(roundtrip(3 * tiny), 3 * tiny);
  // Half of it ties to even -> 0; anything above rounds up to tiny.
  EXPECT_EQ(roundtrip(std::ldexp(1.0f, -25)), 0.0f);
  EXPECT_EQ(roundtrip(std::ldexp(1.2f, -25)), tiny);
  // Largest subnormal (just below 2^-14).
  const float max_subnormal = std::ldexp(1023.0f, -24);
  EXPECT_EQ(roundtrip(max_subnormal), max_subnormal);
}

TEST(Fp16, UnderflowToZero) {
  EXPECT_EQ(roundtrip(1e-9f), 0.0f);
  EXPECT_EQ(roundtrip(-1e-9f), -0.0f);
}

TEST(Fp16, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half (1+2^-10);
  // ties go to the even significand, i.e. 1.0.
  const float halfway = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(roundtrip(halfway), 1.0f);
  // (1 + 2^-10) + 2^-11 is halfway with an odd low bit -> rounds up.
  const float halfway_odd = 1.0f + std::ldexp(1.0f, -10) + std::ldexp(1.0f, -11);
  EXPECT_EQ(roundtrip(halfway_odd), 1.0f + std::ldexp(2.0f, -10));
}

TEST(Fp16, BatchMatchesScalar) {
  Rng rng(11);
  std::vector<float> src(1000);
  for (auto& v : src) v = static_cast<float>(rng.normal(0.0, 10.0));
  std::vector<Half> half(src.size());
  std::vector<float> out(src.size());
  fp16_encode(src, half);
  fp16_decode(half, out);
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(half[i], float_to_fp16(src[i]));
    EXPECT_EQ(out[i], fp16_to_float(half[i]));
  }
}

// Property sweep: for normal-range magnitudes the relative error of the
// round trip is bounded by half an ULP of the 10-bit significand.
class Fp16ErrorBound : public ::testing::TestWithParam<int> {};

TEST_P(Fp16ErrorBound, RelativeErrorWithinHalfUlp) {
  const int exponent = GetParam();
  Rng rng(static_cast<std::uint64_t>(exponent + 100));
  for (int i = 0; i < 2000; ++i) {
    const float mag = std::ldexp(1.0f + static_cast<float>(rng.uniform()),
                                 exponent);
    for (float v : {mag, -mag}) {
      const float rt = roundtrip(v);
      EXPECT_LE(std::abs(rt - v), std::abs(v) * kFp16RelativeError)
          << "value " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(NormalRangeExponents, Fp16ErrorBound,
                         ::testing::Values(-14, -10, -5, -1, 0, 1, 5, 10, 15));

// Property: conversion is monotone (order-preserving) on finite values.
TEST(Fp16, MonotoneOnRandomPairs) {
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    const float a = static_cast<float>(rng.normal(0.0, 100.0));
    const float b = static_cast<float>(rng.normal(0.0, 100.0));
    const float ra = roundtrip(a);
    const float rb = roundtrip(b);
    if (a < b) {
      EXPECT_LE(ra, rb) << a << " vs " << b;
    } else if (a > b) {
      EXPECT_GE(ra, rb) << a << " vs " << b;
    }
  }
}

// Exhaustive: every binary16 bit pattern decodes and re-encodes to itself
// (the codec is the identity on its own range, NaNs aside).
TEST(Fp16, ExhaustiveIdempotence) {
  for (std::uint32_t bits = 0; bits <= 0xffff; ++bits) {
    const Half h{static_cast<std::uint16_t>(bits)};
    const float f = fp16_to_float(h);
    if (std::isnan(f)) continue;  // NaN payloads may canonicalize
    EXPECT_EQ(float_to_fp16(f), h) << "bits 0x" << std::hex << bits;
  }
}

}  // namespace
}  // namespace hcc::util
