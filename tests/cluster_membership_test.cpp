// Elastic cluster membership: the MembershipTable bookkeeping, node death
// with repartition + rollback at cluster scope, and scripted live joins.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/hierarchical.hpp"
#include "cluster/membership.hpp"
#include "data/datasets.hpp"
#include "fault/plan.hpp"
#include "obs/metrics.hpp"

namespace hcc::cluster {
namespace {

TEST(Membership, TableTracksDeathsAndJoins) {
  MembershipTable table(3);
  EXPECT_EQ(table.active_count(), 3u);
  EXPECT_TRUE(table.is_active(1));

  table.mark_dead(1, 4);
  EXPECT_EQ(table.active_count(), 2u);
  EXPECT_FALSE(table.is_active(1));
  EXPECT_EQ(table.state(1), NodeState::kDead);
  EXPECT_EQ(table.deaths(), 1u);
  table.mark_dead(1, 5);  // idempotent
  EXPECT_EQ(table.deaths(), 1u);

  table.mark_joined(1, 6);
  EXPECT_EQ(table.active_count(), 3u);
  EXPECT_EQ(table.joins(), 1u);
  table.mark_joined(1, 7);  // already active: no-op
  EXPECT_EQ(table.joins(), 1u);

  const auto mask = table.active_mask();
  ASSERT_EQ(mask.size(), 3u);
  EXPECT_TRUE(mask[0] && mask[1] && mask[2]);
  EXPECT_NE(table.to_string().find("node1=active@e6"), std::string::npos);
}

TEST(Membership, JoinsDueReadsThePlan) {
  const auto plan =
      fault::FaultPlan::parse("kill:w1@e2;join:w1@e4;join:w2@e4;drop:w0@e4");
  EXPECT_TRUE(MembershipTable::joins_due(plan, 3).empty());
  const auto due = MembershipTable::joins_due(plan, 4);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0], 1u);
  EXPECT_EQ(due[1], 2u);
}

struct SmallProblem {
  data::RatingMatrix train{0, 0};
  data::RatingMatrix test{0, 0};
  data::DatasetSpec spec;
};

SmallProblem netflix_small() {
  SmallProblem pr;
  pr.spec = data::netflix_spec().scaled(0.002);
  data::GeneratorConfig gen;
  gen.seed = 31;
  gen.planted_rank = 4;
  const auto full = data::generate(pr.spec, gen);
  util::Rng rng(32);
  auto [train, test] = data::train_test_split(full, 0.1, rng);
  pr.train = std::move(train);
  pr.test = std::move(test);
  return pr;
}

HierarchicalConfig elastic_config(const data::DatasetSpec& spec,
                                  std::size_t nodes) {
  HierarchicalConfig config;
  config.sgd = mf::SgdConfig::for_dataset(spec.reg_lambda, 0.01f, /*k=*/16);
  config.sgd.epochs = 8;
  config.comm.fp16 = false;
  config.cluster = workstation_cluster(nodes, ethernet_100g());
  config.dataset_name = spec.name;
  for (auto& node : config.cluster.nodes) {
    for (auto& w : node.platform.workers) w.epoch_overhead_s = 0.0;
  }
  return config;
}

TEST(Membership, NodeDeathRepartitionsAndTrainingConverges) {
  const SmallProblem pr = netflix_small();

  HierarchicalConfig clean = elastic_config(pr.spec, 3);
  const ClusterReport base = HierarchicalHcc(clean).train(pr.train, &pr.test);

  HierarchicalConfig faulty = elastic_config(pr.spec, 3);
  faulty.fault.plan = fault::FaultPlan::parse("kill:w1@e3");
  const ClusterReport report =
      HierarchicalHcc(faulty).train(pr.train, &pr.test);

  ASSERT_EQ(report.dead_nodes.size(), 1u);
  EXPECT_EQ(report.dead_nodes[0], 1u);
  EXPECT_EQ(report.recoveries, 1u);
  ASSERT_EQ(report.test_rmse.size(), 8u);
  EXPECT_LT(report.test_rmse.back(), report.test_rmse.front());
  // Degraded but in the same quality regime as the fault-free twin.
  EXPECT_NEAR(report.test_rmse.back(), base.test_rmse.back(), 0.15);
}

TEST(Membership, KilledNodeRejoinsAndRunFinishes) {
  const SmallProblem pr = netflix_small();

  HierarchicalConfig config = elastic_config(pr.spec, 3);
  config.fault.plan = fault::FaultPlan::parse("kill:w2@e2;join:w2@e5");
  const ClusterReport report =
      HierarchicalHcc(config).train(pr.train, &pr.test);

  ASSERT_EQ(report.dead_nodes.size(), 1u);
  EXPECT_EQ(report.dead_nodes[0], 2u);
  ASSERT_EQ(report.joined_nodes.size(), 1u);
  EXPECT_EQ(report.joined_nodes[0], 2u);
  EXPECT_GE(obs::registry().counter("cluster.joins").value(), 1u);
  ASSERT_EQ(report.test_rmse.size(), 8u);
  EXPECT_LT(report.test_rmse.back(), report.test_rmse.front());
  EXPECT_LT(report.test_rmse.back(), 1.1);
  ASSERT_TRUE(report.model.has_value());
}

TEST(Membership, ElasticDefaultsAreBitIdenticalToLegacyTrainer) {
  // No plan, no checkpoint dir: the elastic machinery must stay inert and
  // the trajectory must match the pre-elastic trainer exactly.
  const SmallProblem pr = netflix_small();
  HierarchicalConfig config = elastic_config(pr.spec, 2);
  const ClusterReport a = HierarchicalHcc(config).train(pr.train, &pr.test);
  const ClusterReport b = HierarchicalHcc(config).train(pr.train, &pr.test);
  ASSERT_EQ(a.test_rmse.size(), b.test_rmse.size());
  for (std::size_t e = 0; e < a.test_rmse.size(); ++e) {
    EXPECT_DOUBLE_EQ(a.test_rmse[e], b.test_rmse[e]);
  }
  EXPECT_TRUE(a.dead_nodes.empty());
  EXPECT_TRUE(a.joined_nodes.empty());
  EXPECT_EQ(a.recoveries, 0u);
}

TEST(Membership, ChaosTransportAtClusterScopeHealsAndConverges) {
  // Each node's link to the global server runs the chaos transport; the
  // scripted drops/disconnect heal inside the session layer, so training
  // matches the in-process run exactly.
  const SmallProblem pr = netflix_small();

  HierarchicalConfig clean = elastic_config(pr.spec, 3);
  const ClusterReport base = HierarchicalHcc(clean).train(pr.train, &pr.test);

  HierarchicalConfig chaotic = elastic_config(pr.spec, 3);
  chaotic.comm.transport.kind = comm::TransportKind::kChaos;
  chaotic.comm.transport.link = "local";
  chaotic.fault.plan =
      fault::FaultPlan::parse("drop:w0@e1n2;disconnect:w1@e3n2;dup:w2@e4");
  const ClusterReport report =
      HierarchicalHcc(chaotic).train(pr.train, &pr.test);

  EXPECT_TRUE(report.dead_nodes.empty());  // every fault healed in-session
  ASSERT_EQ(report.test_rmse.size(), base.test_rmse.size());
  EXPECT_NEAR(report.test_rmse.back(), base.test_rmse.back(), 1e-6);
}

}  // namespace
}  // namespace hcc::cluster
