// Tests for DP0 / DP1 (Algorithm 1) / DP2 and their invariants.
#include "core/partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <tuple>
#include <vector>

namespace hcc::core {
namespace {

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(Shares, NormalizeRejectsInvalid) {
  std::vector<double> neg{0.5, -0.1};
  EXPECT_THROW(normalize_shares(neg), std::invalid_argument);
  std::vector<double> zero{0.0, 0.0};
  EXPECT_THROW(normalize_shares(zero), std::invalid_argument);
  std::vector<double> ok{2.0, 6.0};
  normalize_shares(ok);
  EXPECT_DOUBLE_EQ(ok[0], 0.25);
  EXPECT_DOUBLE_EQ(ok[1], 0.75);
}

TEST(Even, UniformShares) {
  const auto shares = even_partition(4);
  for (double s : shares) EXPECT_DOUBLE_EQ(s, 0.25);
  EXPECT_THROW(even_partition(0), std::invalid_argument);
}

TEST(Dp0, InverselyProportionalToTimes) {
  // Eq. 6: a worker twice as fast gets twice the data.
  const auto shares = dp0_partition({1.0, 2.0, 4.0});
  EXPECT_NEAR(shares[0] / shares[1], 2.0, 1e-12);
  EXPECT_NEAR(shares[1] / shares[2], 2.0, 1e-12);
  EXPECT_NEAR(sum(shares), 1.0, 1e-12);
}

TEST(Dp0, EqualTimesGiveEvenSplit) {
  const auto shares = dp0_partition({3.0, 3.0, 3.0, 3.0});
  for (double s : shares) EXPECT_NEAR(s, 0.25, 1e-12);
}

TEST(Dp0, RejectsNonPositiveTimes) {
  EXPECT_THROW(dp0_partition({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(dp0_partition({}), std::invalid_argument);
}

TEST(Dp0, BalancesLinearCostModel) {
  // Theorem 1: if time_i = a_i * x_i (measure with constant rates), DP0's
  // partition equalizes all worker times.
  const std::vector<double> rates{1.0, 2.5, 7.0, 3.3};  // 1/a_i
  std::vector<double> iw_times(rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) iw_times[i] = 1.0 / rates[i];
  const auto shares = dp0_partition(iw_times);
  std::vector<double> times(rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    times[i] = shares[i] / rates[i];
  }
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_NEAR(times[i], times[0], 1e-12);
  }
}

// A synthetic platform where each worker's *per-update speed drifts with its
// assignment* — exactly the effect DP0 cannot see and Algorithm 1 fixes.
// rate_i(x) = base_i * (1 + drift_i * (1 - x)).
struct DriftingPlatform {
  std::vector<double> base;
  std::vector<double> drift;
  std::vector<bool> is_gpu;

  std::vector<double> measure(const std::vector<double>& shares) const {
    std::vector<double> t(shares.size());
    for (std::size_t i = 0; i < shares.size(); ++i) {
      const double rate = base[i] * (1.0 + drift[i] * (1.0 - shares[i]));
      t[i] = shares[i] / rate;
    }
    return t;
  }
};

DriftingPlatform paper_like_platform() {
  // 2 CPUs (no drift), 2 GPUs (speed up when assignment shrinks).
  return DriftingPlatform{{0.27, 0.35, 0.92, 1.05},
                          {0.0, 0.0, 0.25, 0.30},
                          {false, false, true, true}};
}

TEST(Dp1, SharesSumToOne) {
  const DriftingPlatform p = paper_like_platform();
  const auto full = p.measure({1.0, 1.0, 1.0, 1.0});
  const auto dp0 = dp0_partition(full);
  const auto result = dp1_partition(
      dp0, p.is_gpu, [&](const std::vector<double>& x) { return p.measure(x); });
  EXPECT_NEAR(sum(result.shares), 1.0, 1e-9);
  EXPECT_GE(result.rounds, 1u);
}

TEST(Dp1, ClosesTheCpuGpuGap) {
  const DriftingPlatform p = paper_like_platform();
  const auto dp0 = dp0_partition(p.measure({1.0, 1.0, 1.0, 1.0}));

  auto class_gap = [&](const std::vector<double>& t) {
    const double cpu = (t[0] + t[1]) / 2.0;
    const double gpu = (t[2] + t[3]) / 2.0;
    return std::abs(cpu - gpu) / std::min(cpu, gpu);
  };
  const double gap_dp0 = class_gap(p.measure(dp0));

  const auto result = dp1_partition(
      dp0, p.is_gpu, [&](const std::vector<double>& x) { return p.measure(x); });
  const double gap_dp1 = class_gap(result.measured_seconds);
  EXPECT_LE(gap_dp1, 0.1);  // Algorithm 1's own termination criterion
  EXPECT_LE(gap_dp1, gap_dp0 + 1e-12);
}

TEST(Dp1, ImprovesMaxWorkerTime) {
  const DriftingPlatform p = paper_like_platform();
  const auto dp0 = dp0_partition(p.measure({1.0, 1.0, 1.0, 1.0}));
  const auto result = dp1_partition(
      dp0, p.is_gpu, [&](const std::vector<double>& x) { return p.measure(x); });
  const auto t0 = p.measure(dp0);
  const auto t1 = p.measure(result.shares);
  EXPECT_LE(*std::max_element(t1.begin(), t1.end()),
            *std::max_element(t0.begin(), t0.end()) * 1.02);
}

TEST(Dp1, HomogeneousPlatformIsFixedPoint) {
  // All-GPU (or all-CPU) platform: Algorithm 1 has nothing to balance
  // between classes; DP0 must come back unchanged.
  DriftingPlatform p{{1.0, 2.0}, {0.0, 0.0}, {true, true}};
  const auto dp0 = dp0_partition(p.measure({1.0, 1.0}));
  const auto result = dp1_partition(
      dp0, p.is_gpu, [&](const std::vector<double>& x) { return p.measure(x); });
  EXPECT_EQ(result.rounds, 1u);
  EXPECT_NEAR(result.shares[0], dp0[0], 1e-12);
}

TEST(Dp1, TerminatesWithinMaxRounds) {
  // A pathologically drifty platform must still terminate.
  DriftingPlatform p{{0.1, 1.0}, {0.0, 2.0}, {false, true}};
  Dp1Options options;
  options.max_rounds = 5;
  const auto result = dp1_partition(
      dp0_partition(p.measure({1.0, 1.0})), p.is_gpu,
      [&](const std::vector<double>& x) { return p.measure(x); }, options);
  EXPECT_LE(result.rounds, 5u);
  EXPECT_NEAR(sum(result.shares), 1.0, 1e-9);
}

TEST(Dp1, MismatchedInputsThrow) {
  EXPECT_THROW(dp1_partition({0.5, 0.5}, {true},
                             [](const std::vector<double>& x) {
                               return std::vector<double>(x.size(), 1.0);
                             }),
               std::invalid_argument);
}

TEST(Dp2, StaggersComputeTimesBySyncInterval) {
  // Balanced input: equal shares, equal times; sync = 0.1 each.
  const std::vector<double> shares{0.25, 0.25, 0.25, 0.25};
  const std::vector<double> seconds{1.0, 1.0, 1.0, 1.0};
  const auto dp2 = dp2_partition(shares, seconds, 0.1);
  EXPECT_NEAR(sum(dp2), 1.0, 1e-12);
  // Linear-cost check: new time_i ~ (x_i'/x_i) * t_i; the symmetric input
  // makes the normalization factor exactly 1, so consecutive workers differ
  // by exactly one sync interval (Eq. 7).
  std::vector<double> t(4);
  for (int i = 0; i < 4; ++i) t[i] = dp2[i] / shares[i] * seconds[i];
  for (int i = 1; i < 4; ++i) {
    EXPECT_NEAR(t[i] - t[i - 1], 0.1, 1e-9);
  }
  // Ordering: later workers compute longer.
  EXPECT_LT(dp2[0], dp2[1]);
  EXPECT_LT(dp2[1], dp2[2]);
  EXPECT_LT(dp2[2], dp2[3]);
}

TEST(Dp2, ZeroSyncOnBalancedInputIsIdentity) {
  const std::vector<double> shares{0.3, 0.3, 0.4};
  const std::vector<double> seconds{1.0, 1.0, 1.0};
  const auto dp2 = dp2_partition(shares, seconds, 0.0);
  for (std::size_t i = 0; i < shares.size(); ++i) {
    EXPECT_NEAR(dp2[i], shares[i], 1e-12);
  }
}

TEST(Dp2, ZeroSyncEqualizesResidualImbalance) {
  // With no sync to hide, DP2's targets collapse to the common center: any
  // residual imbalance left by DP1 gets leveled.
  const std::vector<double> shares{1.0 / 3, 1.0 / 3, 1.0 / 3};
  const std::vector<double> seconds{1.0, 1.2, 0.8};
  const auto dp2 = dp2_partition(shares, seconds, 0.0);
  std::vector<double> t(3);
  for (int i = 0; i < 3; ++i) t[i] = dp2[i] / shares[i] * seconds[i];
  EXPECT_NEAR(t[0], t[1], 1e-9);
  EXPECT_NEAR(t[1], t[2], 1e-9);
}

TEST(Dp2, FixedCommShiftsTargets) {
  // Worker 1 carries heavy fixed comm: DP2 must stagger the *totals*, so
  // worker 1 gets less compute than a comm-blind Eq. 7 would give it.
  const std::vector<double> shares{0.5, 0.5};
  const std::vector<double> seconds{1.0, 1.0};
  const std::vector<double> fixed{0.0, 0.5};
  const auto dp2 = dp2_partition(shares, seconds, 0.1, fixed);
  // Totals: worker 0 ranks first (1.0 < 1.5); center = 1.25; targets
  // 1.2 and 1.3 -> compute targets 1.2 and 0.8 (pre-normalization).
  EXPECT_GT(dp2[0], dp2[1]);
  std::vector<double> totals(2);
  for (int i = 0; i < 2; ++i) {
    totals[i] = dp2[i] / shares[i] * seconds[i] + fixed[i];
  }
  // Finish stagger ~ one sync interval (normalization perturbs slightly).
  EXPECT_NEAR(totals[1] - totals[0], 0.1, 0.03);
}

TEST(Dp2, MedianWorkerKeepsItsLoad) {
  // Odd worker count: the middle worker's target equals its input time, so
  // after the (near-1) normalization its share barely moves.
  const std::vector<double> shares{1.0 / 3, 1.0 / 3, 1.0 / 3};
  const std::vector<double> seconds{1.0, 1.0, 1.0};
  const auto dp2 = dp2_partition(shares, seconds, 0.2);
  EXPECT_NEAR(dp2[1], shares[1], 0.01);
}

TEST(Dp2, RejectsBadInputs) {
  EXPECT_THROW(dp2_partition({0.5}, {1.0, 1.0}, 0.1), std::invalid_argument);
  EXPECT_THROW(dp2_partition({}, {}, 0.1), std::invalid_argument);
  EXPECT_THROW(dp2_partition({1.0}, {1.0}, -0.1), std::invalid_argument);
}

TEST(StrategyNames, RoundTrip) {
  for (PartitionStrategy s :
       {PartitionStrategy::kEven, PartitionStrategy::kDp0,
        PartitionStrategy::kDp1, PartitionStrategy::kDp2,
        PartitionStrategy::kAuto}) {
    EXPECT_EQ(partition_strategy_by_name(partition_strategy_name(s)), s);
  }
  EXPECT_THROW(partition_strategy_by_name("dp9"), std::invalid_argument);
}

// Property: for any linear platform (constant rates), DP0 equalizes and DP1
// terminates in one round.
class LinearPlatformProperty : public ::testing::TestWithParam<int> {};

TEST_P(LinearPlatformProperty, Dp0OptimalDp1Idempotent) {
  const int workers = GetParam();
  std::vector<double> rates(workers);
  std::vector<bool> is_gpu(workers);
  for (int i = 0; i < workers; ++i) {
    rates[i] = 0.5 + 0.37 * i;
    is_gpu[i] = (i % 2 == 1);
  }
  auto measure = [&](const std::vector<double>& shares) {
    std::vector<double> t(shares.size());
    for (std::size_t i = 0; i < shares.size(); ++i) {
      t[i] = shares[i] / rates[i];
    }
    return t;
  };
  std::vector<double> iw(workers, 0.0);
  for (int i = 0; i < workers; ++i) iw[i] = 1.0 / rates[i];
  const auto dp0 = dp0_partition(iw);
  const auto times = measure(dp0);
  for (int i = 1; i < workers; ++i) EXPECT_NEAR(times[i], times[0], 1e-12);
  const auto dp1 = dp1_partition(dp0, is_gpu, measure);
  EXPECT_EQ(dp1.rounds, 1u);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, LinearPlatformProperty,
                         ::testing::Values(2, 3, 4, 5, 8));

}  // namespace
}  // namespace hcc::core
