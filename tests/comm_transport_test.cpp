// Transport tier unit tests: kind parsing, link presets, the virtual-tick
// latency model, and the chaos transport's deterministic fault semantics
// (drop / dup / reorder / delay / disconnect, budgets burned once per run).
#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "comm/transport.hpp"
#include "core/hccmf.hpp"
#include "fault/plan.hpp"
#include "sim/platform.hpp"

namespace hcc::comm {
namespace {

std::vector<std::byte> frame_of(std::size_t bytes, std::byte fill) {
  return std::vector<std::byte>(bytes, fill);
}

TEST(Transport, KindNamesRoundTrip) {
  for (TransportKind kind : {TransportKind::kInProcess,
                             TransportKind::kSimLatency,
                             TransportKind::kChaos}) {
    EXPECT_EQ(transport_kind_by_name(transport_kind_name(kind)), kind);
  }
  EXPECT_THROW(transport_kind_by_name("tcp"), std::invalid_argument);
}

TEST(Transport, LinkPresetsResolveByNameAndRejectUnknown) {
  EXPECT_DOUBLE_EQ(sim::link_by_name("100GbE").bandwidth_gbs,
                   sim::link_100gbe().bandwidth_gbs);
  EXPECT_DOUBLE_EQ(sim::link_by_name("10GbE").latency_s,
                   sim::link_10gbe().latency_s);
  EXPECT_DOUBLE_EQ(sim::link_by_name("IB-HDR").latency_s,
                   sim::link_ib_hdr().latency_s);
  EXPECT_DOUBLE_EQ(sim::link_by_name("1GbE").bandwidth_gbs,
                   sim::link_1gbe().bandwidth_gbs);
  EXPECT_NO_THROW(sim::link_by_name("local"));
  EXPECT_THROW(sim::link_by_name("carrier-pigeon"), std::invalid_argument);
}

TEST(Transport, LinkRttGrowsWithPayloadAndLatency) {
  const sim::LinkSpec fast = sim::link_ib_hdr();
  const sim::LinkSpec slow = sim::link_10gbe();
  EXPECT_GT(fast.rtt_s(1 << 20), fast.rtt_s(64));
  EXPECT_GT(slow.rtt_s(64), fast.rtt_s(64));
  // RTT is at least two latency traversals.
  EXPECT_GE(slow.rtt_s(0), 2.0 * slow.latency_s);
}

TEST(Transport, InProcessIsAnImmediateFifo) {
  InProcessTransport t;
  t.send(Dir::kForward, frame_of(4, std::byte{1}));
  t.send(Dir::kForward, frame_of(4, std::byte{2}));
  std::vector<std::byte> got;
  ASSERT_TRUE(t.recv(Dir::kForward, got));
  EXPECT_EQ(got[0], std::byte{1});
  ASSERT_TRUE(t.recv(Dir::kForward, got));
  EXPECT_EQ(got[0], std::byte{2});
  EXPECT_FALSE(t.recv(Dir::kForward, got));
  // Directions are independent queues.
  EXPECT_FALSE(t.recv(Dir::kReverse, got));
}

TEST(Transport, SimLatencyDeliversOnlyAfterTheModeledTicks) {
  SimLatencyTransport t(sim::link_100gbe());
  const std::uint64_t ticks = t.one_way_ticks(256);
  ASSERT_GE(ticks, 1u);
  t.send(Dir::kForward, frame_of(256, std::byte{7}));
  std::vector<std::byte> got;
  EXPECT_FALSE(t.recv(Dir::kForward, got));  // not yet arrived
  t.advance(ticks);
  ASSERT_TRUE(t.recv(Dir::kForward, got));
  EXPECT_EQ(got.size(), 256u);
}

TEST(Transport, SimLatencyKeepsHeadOfLineOrder) {
  SimLatencyTransport t(sim::link_10gbe());
  // A big frame ahead of a tiny one: the tiny one must not overtake it.
  t.send(Dir::kForward, frame_of(1 << 16, std::byte{1}));
  t.send(Dir::kForward, frame_of(8, std::byte{2}));
  t.advance(t.one_way_ticks(1 << 16) + t.one_way_ticks(8));
  std::vector<std::byte> got;
  ASSERT_TRUE(t.recv(Dir::kForward, got));
  EXPECT_EQ(got[0], std::byte{1});
  ASSERT_TRUE(t.recv(Dir::kForward, got));
  EXPECT_EQ(got[0], std::byte{2});
}

ChaosTransport chaos_with(const std::string& spec, std::uint32_t worker = 0) {
  return ChaosTransport(sim::link_local(), fault::FaultPlan::parse(spec),
                        worker);
}

/// Drains every currently-deliverable frame after advancing far enough.
std::vector<std::vector<std::byte>> drain_forward(Transport& t) {
  t.advance(1'000'000);
  std::vector<std::vector<std::byte>> out;
  std::vector<std::byte> frame;
  while (t.recv(Dir::kForward, frame)) out.push_back(frame);
  return out;
}

TEST(Transport, ChaosDropSwallowsTheFirstFramesOfTheEpoch) {
  ChaosTransport t = chaos_with("drop:w0@e2n2");
  t.begin_epoch(2);
  t.send(Dir::kForward, frame_of(4, std::byte{1}));
  t.send(Dir::kForward, frame_of(4, std::byte{2}));
  t.send(Dir::kForward, frame_of(4, std::byte{3}));
  const auto got = drain_forward(t);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0][0], std::byte{3});
  EXPECT_EQ(t.dropped(), 2u);
}

TEST(Transport, ChaosEventsAddressWorkerAndEpoch) {
  // Worker 1's plan does not touch worker 0's link; epoch 2's event does
  // not fire in epoch 1.
  ChaosTransport other = chaos_with("drop:w1@e0", /*worker=*/0);
  other.begin_epoch(0);
  other.send(Dir::kForward, frame_of(4, std::byte{9}));
  EXPECT_EQ(drain_forward(other).size(), 1u);

  ChaosTransport later = chaos_with("drop:w0@e2");
  later.begin_epoch(1);
  later.send(Dir::kForward, frame_of(4, std::byte{9}));
  EXPECT_EQ(drain_forward(later).size(), 1u);
}

TEST(Transport, ChaosBudgetBurnsOncePerRun) {
  // A rolled-back replay of the epoch must not re-fire the drop.
  ChaosTransport t = chaos_with("drop:w0@e1");
  t.begin_epoch(1);
  t.send(Dir::kForward, frame_of(4, std::byte{1}));  // dropped
  EXPECT_EQ(drain_forward(t).size(), 0u);
  t.begin_epoch(1);  // replay after rollback
  t.send(Dir::kForward, frame_of(4, std::byte{2}));
  EXPECT_EQ(drain_forward(t).size(), 1u);
}

TEST(Transport, ChaosDuplicateDeliversTheFrameTwice) {
  ChaosTransport t = chaos_with("dup:w0@e0");
  t.begin_epoch(0);
  t.send(Dir::kForward, frame_of(4, std::byte{5}));
  const auto got = drain_forward(t);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], got[1]);
}

TEST(Transport, ChaosReorderSwapsAPairOfFrames) {
  ChaosTransport t = chaos_with("reorder:w0@e0");
  t.begin_epoch(0);
  t.send(Dir::kForward, frame_of(4, std::byte{1}));  // held
  t.send(Dir::kForward, frame_of(4, std::byte{2}));  // released first
  const auto got = drain_forward(t);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0][0], std::byte{2});
  EXPECT_EQ(got[1][0], std::byte{1});
}

TEST(Transport, ChaosDelayPushesArrivalOut) {
  ChaosTransport t = chaos_with("delay:w0@e0x500");
  t.begin_epoch(0);
  t.send(Dir::kForward, frame_of(16, std::byte{8}));
  const std::uint64_t natural = t.one_way_ticks(16);
  std::vector<std::byte> got;
  t.advance(natural);
  EXPECT_FALSE(t.recv(Dir::kForward, got));  // still held
  t.advance(500);
  ASSERT_TRUE(t.recv(Dir::kForward, got));
  EXPECT_EQ(got.size(), 16u);
}

TEST(Transport, ChaosDisconnectSeversThenHealsAfterBudget) {
  ChaosTransport t = chaos_with("disconnect:w0@e0n2");
  t.begin_epoch(0);
  EXPECT_TRUE(t.connected());
  t.send(Dir::kForward, frame_of(4, std::byte{1}));  // severs, frame lost
  EXPECT_FALSE(t.connected());
  // While severed, both directions swallow traffic.
  t.send(Dir::kReverse, frame_of(4, std::byte{2}));
  EXPECT_EQ(drain_forward(t).size(), 0u);
  // First two reconnect attempts fail (n2), the third succeeds.
  EXPECT_FALSE(t.try_reconnect());
  EXPECT_FALSE(t.try_reconnect());
  EXPECT_TRUE(t.try_reconnect());
  EXPECT_TRUE(t.connected());
  t.send(Dir::kForward, frame_of(4, std::byte{3}));
  EXPECT_EQ(drain_forward(t).size(), 1u);
}

TEST(Transport, ChaosReverseDirectionFlowsClean) {
  ChaosTransport t = chaos_with("drop:w0@e0n9");
  t.begin_epoch(0);
  t.send(Dir::kReverse, frame_of(4, std::byte{1}));
  t.advance(1'000'000);
  std::vector<std::byte> got;
  EXPECT_TRUE(t.recv(Dir::kReverse, got));
}

TEST(Transport, MakeTransportHonorsKindAndLink) {
  TransportConfig config;
  config.kind = TransportKind::kInProcess;
  EXPECT_EQ(make_transport(config, 0)->name(), "in-process");
  config.kind = TransportKind::kSimLatency;
  config.link = "10GbE";
  EXPECT_EQ(make_transport(config, 0)->name(), "10GbE");
  config.kind = TransportKind::kChaos;
  EXPECT_EQ(make_transport(config, 0)->name(), "chaos(10GbE)");
  config.link = "nonsense";
  EXPECT_THROW(make_transport(config, 0), std::invalid_argument);
}

/// Satellite: transport validation surfaces typed errors through the
/// existing HccMfConfig::validate() channel.
bool has_code(const std::vector<core::ConfigError>& errors,
              core::ConfigErrorCode code) {
  for (const auto& e : errors) {
    if (e.code == code) return true;
  }
  return false;
}

core::HccMfConfig tiny_valid_config() {
  core::HccMfConfig config;
  config.platform = sim::paper_workstation_overall();
  return config;
}

TEST(TransportValidation, ZeroHeartbeatIsRejected) {
  core::HccMfConfig config = tiny_valid_config();
  config.comm.transport.kind = TransportKind::kSimLatency;
  config.comm.transport.heartbeat_ms = 0.0;
  EXPECT_TRUE(
      has_code(config.validate(), core::ConfigErrorCode::kBadHeartbeat));
}

TEST(TransportValidation, TimeoutMustExceedHeartbeat) {
  core::HccMfConfig config = tiny_valid_config();
  config.comm.transport.kind = TransportKind::kSimLatency;
  config.comm.transport.heartbeat_ms = 5.0;
  config.comm.transport.timeout_ms = 5.0;  // not > heartbeat
  EXPECT_TRUE(has_code(config.validate(),
                       core::ConfigErrorCode::kBadTransportTimeout));
  config.comm.transport.timeout_ms = 0.0;  // 0 = derive: valid
  EXPECT_FALSE(has_code(config.validate(),
                        core::ConfigErrorCode::kBadTransportTimeout));
}

TEST(TransportValidation, ZeroReconnectBudgetIsRejected) {
  core::HccMfConfig config = tiny_valid_config();
  config.comm.transport.kind = TransportKind::kChaos;
  config.comm.transport.reconnect_budget = 0;
  EXPECT_TRUE(has_code(config.validate(),
                       core::ConfigErrorCode::kZeroReconnectBudget));
}

TEST(TransportValidation, UnknownLinkPresetIsRejected) {
  core::HccMfConfig config = tiny_valid_config();
  config.comm.transport.kind = TransportKind::kSimLatency;
  config.comm.transport.link = "token-ring";
  EXPECT_TRUE(has_code(config.validate(),
                       core::ConfigErrorCode::kBadTransportLink));
  // The in-process default never validates the link name.
  config.comm.transport.kind = TransportKind::kInProcess;
  EXPECT_TRUE(config.validate().empty());
}

TEST(TransportValidation, TransportFaultPlanGrammarRoundTrips) {
  const std::string spec =
      "drop:w0@e1n2;dup:w1@e2;reorder:w2@e3;delay:w0@e4x500n3;"
      "disconnect:w1@e5n4;join:w2@e6";
  const fault::FaultPlan plan = fault::FaultPlan::parse(spec);
  ASSERT_EQ(plan.events.size(), 6u);
  EXPECT_EQ(plan.events[0].count, 2u);
  EXPECT_EQ(plan.events[3].delay_ticks, 500u);
  EXPECT_EQ(plan.events[5].kind, fault::FaultKind::kJoin);
  EXPECT_EQ(fault::FaultPlan::parse(plan.to_string()).events, plan.events);
}

}  // namespace
}  // namespace hcc::comm
