// Tests for the top-K scoring engine (serve/engine.hpp): the metamorphic
// anchor against legacy mf::top_n, seen-set fusion, adversarial block
// sizes, and quantized-store ranking parity.
#include "serve/engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "data/datasets.hpp"
#include "mf/metrics.hpp"
#include "mf/trainer.hpp"
#include "serve/foldin.hpp"
#include "util/rng.hpp"

namespace hcc::serve {
namespace {

mf::FactorModel random_model(std::uint32_t users, std::uint32_t items,
                             std::uint32_t k, std::uint64_t seed) {
  mf::FactorModel m(users, items, k);
  util::Rng rng(seed);
  m.init_random(rng, 3.0f);
  return m;
}

std::shared_ptr<const ModelSnapshot> snap_of(const mf::FactorModel& m,
                                             StoreKind kind,
                                             std::uint32_t epoch = 1) {
  auto s = std::make_shared<ModelSnapshot>();
  s->epoch = epoch;
  s->store = FactorStore(kind, m.users(), m.items(), m.k(), m.p_data(),
                         m.q_data());
  return s;
}

TEST(ServeEngine, MetamorphicAnchorEqualsLegacyTopN) {
  // Same frozen model, fp32 store: the snapshot scan and mf::top_n run the
  // same dispatched kernel over the same bytes, so items AND scores must
  // agree exactly.
  const auto model = random_model(40, 500, 24, 31);
  data::RatingMatrix train(40, 500);
  util::Rng rng(32);
  for (std::uint32_t u = 0; u < 40; ++u) {
    for (int j = 0; j < 25; ++j) {
      train.add(u, static_cast<std::uint32_t>(rng.uniform_u64(500)), 4.0f);
    }
  }
  const mf::SeenIndex seen(train);
  const auto snapshot = snap_of(model, StoreKind::kFp32);
  TopKEngine engine;
  for (const std::uint32_t u : {0u, 7u, 39u}) {
    const auto legacy = mf::top_n(model, seen, u, 10);
    const auto served = engine.top_k(*snapshot, u, 10, &seen);
    ASSERT_EQ(served.size(), legacy.size()) << "user " << u;
    for (std::size_t i = 0; i < legacy.size(); ++i) {
      EXPECT_EQ(served[i].item, legacy[i].item) << "user " << u;
      EXPECT_EQ(served[i].score, legacy[i].score) << "user " << u;
    }
  }
}

TEST(ServeEngine, AdversarialBlockSizesAgree) {
  const auto model = random_model(6, 203, 17, 33);  // odd catalog, odd rank
  const auto snapshot = snap_of(model, StoreKind::kFp32);
  TopKEngine reference({.block_items = 256});
  const auto expect = reference.top_k(*snapshot, 3, 12);
  for (const std::uint32_t block : {8u, 9u, 24u, 200u, 4096u}) {
    TopKEngine engine({.block_items = block});
    const auto got = engine.top_k(*snapshot, 3, 12);
    ASSERT_EQ(got.size(), expect.size()) << "block " << block;
    for (std::size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(got[i].item, expect[i].item) << "block " << block;
      EXPECT_EQ(got[i].score, expect[i].score) << "block " << block;
    }
  }
}

TEST(ServeEngine, SeenItemsNeverRecommended) {
  const auto model = random_model(5, 300, 8, 34);
  data::RatingMatrix train(5, 300);
  for (std::uint32_t i = 0; i < 300; i += 2) train.add(2, i, 5.0f);
  const mf::SeenIndex seen(train);
  const auto snapshot = snap_of(model, StoreKind::kFp32);
  TopKEngine engine;
  const auto recs = engine.top_k(*snapshot, 2, 50, &seen);
  ASSERT_EQ(recs.size(), 50u);
  for (const auto& r : recs) {
    EXPECT_EQ(r.item % 2, 1u) << "recommended a seen item " << r.item;
  }
}

TEST(ServeEngine, RequestBiggerThanCatalogReturnsAllUnseen) {
  const auto model = random_model(2, 20, 4, 35);
  data::RatingMatrix train(2, 20);
  for (std::uint32_t i = 0; i < 5; ++i) train.add(0, i, 3.0f);
  const mf::SeenIndex seen(train);
  const auto snapshot = snap_of(model, StoreKind::kFp32);
  TopKEngine engine;
  const auto recs = engine.top_k(*snapshot, 0, 100, &seen);
  EXPECT_EQ(recs.size(), 15u);
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_GE(recs[i - 1].score, recs[i].score);
  }
}

TEST(ServeEngine, OutOfRangeUserAndEmptyRequest) {
  const auto model = random_model(3, 50, 8, 36);
  const auto snapshot = snap_of(model, StoreKind::kFp32);
  TopKEngine engine;
  EXPECT_TRUE(engine.top_k(*snapshot, 99, 10).empty());
  EXPECT_TRUE(engine.top_k(*snapshot, 1, 0).empty());
}

TEST(ServeEngine, QuantizedStoresPreserveRankingQuality) {
  // Train a small planted model, then compare leave-one-out hit rates
  // across store encodings: quantization must not change ranking quality
  // beyond noise.
  const auto spec = data::movielens20m_spec().scaled(0.002);
  data::GeneratorConfig gen;
  gen.seed = 37;
  gen.planted_rank = 4;
  const auto full = data::generate(spec, gen);
  util::Rng rng(38);
  auto [train, test] = data::train_test_split(full, 0.1, rng);
  auto config = mf::SgdConfig::for_dataset(spec.reg_lambda, 0.01f, /*k=*/16);
  config.epochs = 8;
  mf::FactorModel model(spec.m, spec.n, config.k);
  util::Rng init(39);
  model.init_random(init, 3.5f);
  mf::SerialSgd trainer(config);
  for (std::uint32_t e = 0; e < config.epochs; ++e) {
    trainer.train_epoch(model, train);
  }
  const auto fp32 = snapshot_hit_rate_at_n(*snap_of(model, StoreKind::kFp32),
                                           train, test, 10, 4.0f);
  const auto fp16 = snapshot_hit_rate_at_n(*snap_of(model, StoreKind::kFp16),
                                           train, test, 10, 4.0f);
  const auto int8 = snapshot_hit_rate_at_n(*snap_of(model, StoreKind::kInt8),
                                           train, test, 10, 4.0f);
  EXPECT_GT(fp32, 0.0);
  EXPECT_NEAR(fp16, fp32, 0.02);
  EXPECT_NEAR(int8, fp32, 0.02);
}

TEST(ServeEngine, FoldInUserGetsServedOffTheSnapshot) {
  const auto model = random_model(10, 400, 16, 40);
  const auto snapshot = snap_of(model, StoreKind::kFp32);
  // The "new user" is model user 4: fold their ratings (generated from
  // their own row) back in and the scan should rank like the real row.
  std::vector<FoldInRating> ratings;
  std::vector<std::uint32_t> rated;
  for (std::uint32_t i = 0; i < 400; i += 5) {
    ratings.push_back({i, model.predict(4, i)});
    rated.push_back(i);
  }
  const auto row = fold_in(snapshot->store, ratings, 0.01f);
  TopKEngine engine;
  const auto folded = engine.top_k_row(*snapshot, row.data(), 10, rated);
  const auto direct = engine.top_k_row(*snapshot, model.p(4), 10, rated);
  ASSERT_EQ(folded.size(), 10u);
  for (const auto& r : folded) {
    EXPECT_NE(r.item % 5, 0u) << "excluded item served: " << r.item;
  }
  // Rankings from the folded row and the true row overlap heavily.
  std::size_t common = 0;
  for (const auto& a : folded) {
    for (const auto& b : direct) {
      if (a.item == b.item) {
        ++common;
        break;
      }
    }
  }
  EXPECT_GE(common, 8u);
}

}  // namespace
}  // namespace hcc::serve
