// Tests for the distributed-solution baselines: DSGD and NOMAD.
#include <gtest/gtest.h>

#include "data/datasets.hpp"
#include "mf/dsgd.hpp"
#include "mf/metrics.hpp"
#include "mf/nomad.hpp"
#include "mf/trainer.hpp"

namespace hcc::mf {
namespace {

struct Problem {
  data::RatingMatrix train{0, 0};
  data::RatingMatrix test{0, 0};
  data::DatasetSpec spec;
};

Problem make_problem() {
  Problem pr;
  pr.spec = data::movielens20m_spec().scaled(0.002);
  data::GeneratorConfig config;
  config.seed = 13;
  config.planted_rank = 4;
  const auto full = data::generate(pr.spec, config);
  util::Rng rng(14);
  auto [train, test] = data::train_test_split(full, 0.1, rng);
  pr.train = std::move(train);
  pr.test = std::move(test);
  return pr;
}

SgdConfig small_config() {
  SgdConfig c = SgdConfig::for_dataset(0.02f, 0.01f, /*k=*/16);
  c.epochs = 8;
  return c;
}

void expect_converges(Trainer& trainer, const Problem& pr,
                      const SgdConfig& config) {
  FactorModel model(pr.spec.m, pr.spec.n, config.k);
  util::Rng rng(7);
  model.init_random(rng, 2.5f);
  const double before = rmse(model, pr.test);
  const auto trace =
      train_and_trace(trainer, model, pr.train, pr.test, config.epochs);
  EXPECT_LT(trace.back(), 0.75 * before) << trainer.name();
  EXPECT_LT(trace.back(), 1.1) << trainer.name();
}

TEST(Dsgd, Converges) {
  const Problem pr = make_problem();
  util::ThreadPool pool(3);
  DsgdTrainer trainer(small_config(), pool, 3);
  expect_converges(trainer, pr, small_config());
}

TEST(Dsgd, SingleWorkerMatchesBlockSerialOrder) {
  // With one worker there is a single 1x1 block: the epoch is serial SGD
  // in block order, and must be deterministic.
  const Problem pr = make_problem();
  util::ThreadPool pool(2);
  const SgdConfig c = small_config();
  DsgdTrainer a(c, pool, 1);
  DsgdTrainer b(c, pool, 1);
  FactorModel ma(pr.spec.m, pr.spec.n, c.k);
  FactorModel mb(pr.spec.m, pr.spec.n, c.k);
  util::Rng r1(5), r2(5);
  ma.init_random(r1, 2.5f);
  mb.init_random(r2, 2.5f);
  a.train_epoch(ma, pr.train);
  b.train_epoch(mb, pr.train);
  for (std::size_t j = 0; j < ma.q_data().size(); ++j) {
    ASSERT_EQ(ma.q_data()[j], mb.q_data()[j]);
  }
}

TEST(Dsgd, StrataAreConflictFree) {
  // Run many epochs with several workers; conflict-free strata mean no
  // lost updates, so quality matches serial closely.
  const Problem pr = make_problem();
  util::ThreadPool pool(4);
  const SgdConfig c = small_config();

  DsgdTrainer dsgd(c, pool, 4);
  FactorModel m_dsgd(pr.spec.m, pr.spec.n, c.k);
  util::Rng r1(5);
  m_dsgd.init_random(r1, 2.5f);
  const auto dsgd_trace =
      train_and_trace(dsgd, m_dsgd, pr.train, pr.test, c.epochs);

  SerialSgd serial(c);
  FactorModel m_serial(pr.spec.m, pr.spec.n, c.k);
  util::Rng r2(5);
  m_serial.init_random(r2, 2.5f);
  const auto serial_trace =
      train_and_trace(serial, m_serial, pr.train, pr.test, c.epochs);

  EXPECT_NEAR(dsgd_trace.back(), serial_trace.back(), 0.08);
}

TEST(Dsgd, WorkerCountClamped) {
  util::ThreadPool pool(1);
  DsgdTrainer trainer(small_config(), pool, 0);
  EXPECT_EQ(trainer.workers(), 1u);
}

TEST(Nomad, Converges) {
  const Problem pr = make_problem();
  NomadTrainer trainer(small_config(), 3);
  expect_converges(trainer, pr, small_config());
}

TEST(Nomad, EveryRatingAppliedOncePerEpoch) {
  // lr = 0 leaves the model unchanged; with lr > 0 and a single worker the
  // result must equal serial SGD applied item-by-item (token order).
  data::RatingMatrix r(4, 4);
  for (std::uint32_t i = 0; i < 4; ++i) r.add(i, i, 4.0f);
  SgdConfig c = small_config();
  NomadTrainer nomad(c, 1);
  FactorModel m(4, 4, c.k);
  util::Rng rng(3);
  m.init_random(rng, 3.0f);
  const double before = rmse(m, r);
  nomad.train_epoch(m, r);
  EXPECT_LT(rmse(m, r), before);
}

TEST(Nomad, MessageCountIsItemsTimesHops) {
  const Problem pr = make_problem();
  const std::uint32_t p = 3;
  NomadTrainer trainer(small_config(), p);
  FactorModel m(pr.spec.m, pr.spec.n, 16);
  util::Rng rng(4);
  m.init_random(rng, 2.5f);
  trainer.train_epoch(m, pr.train);
  // Every item token hops p-1 times (the last hop retires it).
  EXPECT_EQ(trainer.last_epoch_messages(),
            static_cast<std::uint64_t>(pr.spec.n) * (p - 1));
}

TEST(Nomad, QualityComparableToSerial) {
  const Problem pr = make_problem();
  const SgdConfig c = small_config();
  NomadTrainer nomad(c, 4);
  FactorModel m_nomad(pr.spec.m, pr.spec.n, c.k);
  util::Rng r1(5);
  m_nomad.init_random(r1, 2.5f);
  const auto nomad_trace =
      train_and_trace(nomad, m_nomad, pr.train, pr.test, c.epochs);

  SerialSgd serial(c);
  FactorModel m_serial(pr.spec.m, pr.spec.n, c.k);
  util::Rng r2(5);
  m_serial.init_random(r2, 2.5f);
  const auto serial_trace =
      train_and_trace(serial, m_serial, pr.train, pr.test, c.epochs);
  EXPECT_NEAR(nomad_trace.back(), serial_trace.back(), 0.08);
}

TEST(Trainers, DistributedBaselinesReportNames) {
  util::ThreadPool pool(1);
  DsgdTrainer dsgd(small_config(), pool, 2);
  NomadTrainer nomad(small_config(), 2);
  EXPECT_EQ(dsgd.name(), "dsgd");
  EXPECT_EQ(nomad.name(), "nomad");
}

}  // namespace
}  // namespace hcc::mf
