// Tests for the work-stealing epoch executor: chunk building and the
// stealing scheduler (suite StealQueue), the gbps-fed chunk-size heuristic
// (suite Rebalance), and end-to-end training equivalence + fault recovery
// with stealing on (suite StealTrain).  All three suites run under TSan in
// CI — the scheduler and the stolen-chunk compute path are the
// racy-by-construction core of the design.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "core/hccmf.hpp"
#include "core/steal_queue.hpp"
#include "data/datasets.hpp"
#include "data/schedule.hpp"
#include "obs/metrics.hpp"
#include "sim/platform.hpp"
#include "util/rng.hpp"

namespace hcc::core {
namespace {

std::vector<data::Rating> ratings_with_users(
    const std::vector<std::uint32_t>& users) {
  std::vector<data::Rating> out;
  out.reserve(users.size());
  for (std::size_t idx = 0; idx < users.size(); ++idx) {
    out.push_back({users[idx], static_cast<std::uint32_t>(idx % 7), 1.0f});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Suite StealQueue: chunk building and the scheduler.

TEST(StealQueue, BuildChunksAlignsCutsToUserRows) {
  const auto entries = ratings_with_users({0, 0, 0, 1, 1, 2, 2, 2, 2});
  const auto chunks = build_chunks(entries, /*owner=*/3, /*target=*/2, {});
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0], (WorkChunk{3, 0, 3, 0, 0}));
  EXPECT_EQ(chunks[1], (WorkChunk{3, 3, 5, 1, 1}));
  // The last cut would land mid-row at 7; it extends to the row end.
  EXPECT_EQ(chunks[2], (WorkChunk{3, 5, 9, 2, 2}));
}

TEST(StealQueue, BuildChunksAlignsCutsToTileBoundaries) {
  const auto entries =
      ratings_with_users({5, 5, 1, 1, 9, 9, 9, 2, 2, 2});
  const std::vector<std::uint32_t> cuts = {4, 7};
  auto chunks = build_chunks(entries, 0, /*target=*/3, cuts);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0], (WorkChunk{0, 0, 4, 1, 5}));
  EXPECT_EQ(chunks[1], (WorkChunk{0, 4, 7, 9, 9}));
  EXPECT_EQ(chunks[2], (WorkChunk{0, 7, 10, 2, 2}));
  // A target past the first boundary skips to the next one — chunks are
  // always a whole number of tiles.
  chunks = build_chunks(entries, 0, /*target=*/5, cuts);
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0].hi, 7u);
  EXPECT_EQ(chunks[1].hi, 10u);
}

TEST(StealQueue, BuildChunksCoversEveryEntryExactlyOnce) {
  util::Rng rng(11);
  std::vector<data::Rating> entries;
  for (int idx = 0; idx < 500; ++idx) {
    entries.push_back({static_cast<std::uint32_t>(rng() % 40),
                       static_cast<std::uint32_t>(rng() % 30),
                       1.0f});
  }
  for (const std::size_t target : {1, 7, 100, 1000}) {
    const auto chunks = build_chunks(entries, 0, target, {});
    std::uint32_t expect_lo = 0;
    for (const auto& c : chunks) {
      EXPECT_EQ(c.lo, expect_lo);
      EXPECT_GT(c.hi, c.lo);
      std::uint32_t u_min = entries[c.lo].u, u_max = entries[c.lo].u;
      for (std::uint32_t idx = c.lo; idx < c.hi; ++idx) {
        u_min = std::min(u_min, entries[idx].u);
        u_max = std::max(u_max, entries[idx].u);
      }
      EXPECT_EQ(c.u_lo, u_min);
      EXPECT_EQ(c.u_hi, u_max);
      expect_lo = c.hi;
    }
    EXPECT_EQ(expect_lo, entries.size());
  }
  EXPECT_TRUE(
      build_chunks(std::span<const data::Rating>(), 0, 10, {}).empty());
}

TEST(StealQueue, TiledScheduleExposesTileOffsets) {
  data::RatingMatrix slice(64, 64);
  util::Rng rng(3);
  for (int idx = 0; idx < 400; ++idx) {
    slice.add(static_cast<std::uint32_t>(rng() % 64),
              static_cast<std::uint32_t>(rng() % 64), 1.0f);
  }
  data::ScheduleOptions opts;
  opts.policy = data::SchedulePolicy::kTiled;
  opts.tile_kb = 1;  // tiny budget -> several tiles over a 64x64 matrix
  const data::RatingScheduler sched(opts, /*k=*/16);
  const auto stats = sched.prepare(slice, /*epoch=*/0);
  ASSERT_GE(stats.tiles, 2u);
  // One boundary between each pair of adjacent occupied tiles.
  EXPECT_EQ(stats.tile_offsets.size(), std::size_t(stats.tiles) - 1);
  std::uint32_t prev = 0;
  for (const std::uint32_t off : stats.tile_offsets) {
    EXPECT_GT(off, prev);
    EXPECT_LT(off, slice.nnz());
    prev = off;
  }
}

TEST(StealQueue, OwnerDrainsItsQueueInOrder) {
  StealScheduler sched(/*n_workers=*/2, /*expected=*/1);
  const auto entries = ratings_with_users({0, 0, 1, 1, 2, 2});
  sched.install(0, build_chunks(entries, 0, 2, {}));
  WorkChunk c;
  std::uint32_t expect_lo = 0;
  while (sched.next_chunk(0, c)) {
    EXPECT_EQ(c.owner, 0u);
    EXPECT_EQ(c.lo, expect_lo);  // front-to-back: the prepared visit order
    expect_lo = c.hi;
    sched.complete(c);
  }
  EXPECT_EQ(expect_lo, entries.size());
  EXPECT_EQ(sched.steals(), 0u);
}

TEST(StealQueue, ThiefStealsFromTheFullestTail) {
  StealScheduler sched(/*n_workers=*/3, /*expected=*/3);
  sched.install(0, build_chunks(ratings_with_users({0, 1, 2, 3}), 0, 1, {}));
  sched.install(1, build_chunks(ratings_with_users({4, 5}), 1, 1, {}));
  sched.install(2, {});
  WorkChunk c;
  ASSERT_TRUE(sched.next_chunk(2, c));
  // Worker 0 has the most ratings queued; the steal comes off its *tail*.
  EXPECT_EQ(c.owner, 0u);
  EXPECT_EQ(c.lo, 3u);
  EXPECT_EQ(sched.steals(), 1u);
  EXPECT_EQ(sched.stolen_ratings(), 1u);
  sched.complete(c);
}

TEST(StealQueue, RowClaimSerializesOverlappingChunks) {
  StealScheduler sched(/*n_workers=*/2, /*expected=*/2);
  // Both of worker 0's chunks touch user 1: they must never be in flight
  // together, even across different executing threads.
  std::vector<WorkChunk> overlapping = {{0, 0, 2, 0, 1}, {0, 2, 4, 1, 2}};
  sched.install(0, overlapping);
  sched.install(1, {});
  WorkChunk own;
  ASSERT_TRUE(sched.next_chunk(0, own));
  EXPECT_EQ(own.lo, 0u);
  // A thief asking now must block on the claim; once the owner completes,
  // it gets the second chunk.
  std::atomic<bool> got{false};
  WorkChunk stolen;
  std::thread thief([&] {
    if (sched.next_chunk(1, stolen)) {
      got.store(true);
      sched.complete(stolen);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sched.complete(own);
  thief.join();
  ASSERT_TRUE(got.load());
  EXPECT_EQ(stolen.lo, 2u);
  WorkChunk none;
  EXPECT_FALSE(sched.next_chunk(0, none));
}

TEST(StealQueue, AbortReleasesTheRegistrationWait) {
  StealScheduler sched(/*n_workers=*/2, /*expected=*/2);
  sched.install(0, build_chunks(ratings_with_users({0, 1}), 0, 1, {}));
  // Worker 1 never installs (it died at pull); without abort, worker 0
  // would wait on registration forever.
  std::atomic<bool> returned{false};
  std::thread waiter([&] {
    WorkChunk c;
    const bool any = sched.next_chunk(0, c);
    EXPECT_FALSE(any);
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  sched.abort();
  waiter.join();
  EXPECT_TRUE(returned.load());
}

TEST(StealQueue, ConcurrentDrainRunsEveryChunkExactlyOnce) {
  // 4 workers, worker 0 deliberately slow: every entry must be computed
  // exactly once, and the fast workers must end up stealing from the slow
  // one.  This is the TSan stress target for the scheduler itself.
  constexpr std::size_t kWorkers = 4;
  constexpr std::uint32_t kRowsPer = 32;
  constexpr int kEntriesPer = 256;
  std::vector<std::vector<data::Rating>> slices(kWorkers);
  util::Rng rng(7);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    for (int idx = 0; idx < kEntriesPer; ++idx) {
      // Disjoint, sorted user ranges per worker (the row-grid shape).
      slices[w].push_back(
          {static_cast<std::uint32_t>(w * kRowsPer + idx / 8),
           static_cast<std::uint32_t>(rng() % 16), 1.0f});
    }
  }
  StealScheduler sched(kWorkers, kWorkers);
  std::vector<std::atomic<int>> visits(kWorkers * kEntriesPer);
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      sched.install(w, build_chunks(slices[w], static_cast<std::uint32_t>(w),
                                    /*target=*/16, {}));
      WorkChunk c;
      while (sched.next_chunk(w, c)) {
        for (std::uint32_t idx = c.lo; idx < c.hi; ++idx) {
          visits[c.owner * kEntriesPer + idx].fetch_add(1);
        }
        if (w == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        sched.complete(c);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  EXPECT_GE(sched.steals(), 1u);
}

// ---------------------------------------------------------------------------
// Suite Rebalance: the measured-bandwidth chunk-size feedback.

TEST(Rebalance, AutoTargetIsOneSixteenthOfTheSlice) {
  EXPECT_EQ(resolve_chunk_target(1600, 0, 0.0, 0.0), 100u);
  EXPECT_EQ(resolve_chunk_target(0, 0, 0.0, 0.0), 1u);
  EXPECT_EQ(resolve_chunk_target(1600, 640, 0.0, 0.0), 640u);
}

TEST(Rebalance, MeasuredBandwidthScalesTheTarget) {
  // A worker at 1/4 of the mean bandwidth gets chunks 4x smaller (clamped
  // at 0.25): more of its backlog is stealable, and its unstealable final
  // chunk is short.
  EXPECT_EQ(resolve_chunk_target(1600, 0, 1.0, 4.0), 25u);
  EXPECT_EQ(resolve_chunk_target(1600, 0, 8.0, 4.0), 200u);
  // Clamps: a 100x outlier in either direction stays within [0.25, 2].
  EXPECT_EQ(resolve_chunk_target(1600, 0, 400.0, 4.0), 200u);
  EXPECT_EQ(resolve_chunk_target(1600, 0, 0.01, 4.0), 25u);
  // No measurement yet (epoch 0): the unscaled base.
  EXPECT_EQ(resolve_chunk_target(1600, 0, 0.0, 4.0), 100u);
}

// ---------------------------------------------------------------------------
// Suite StealTrain: end-to-end training with stealing on.

struct SmallProblem {
  data::DatasetSpec spec;
  data::RatingMatrix train;
  data::RatingMatrix test;
};

SmallProblem netflix_small(double scale = 0.002) {
  SmallProblem pr;
  pr.spec = data::netflix_spec().scaled(scale);
  data::GeneratorConfig gen;
  gen.seed = 5;
  gen.planted_rank = 4;
  const auto full = data::generate(pr.spec, gen);
  util::Rng rng(6);
  auto [train, test] = data::train_test_split(full, 0.1, rng);
  pr.train = std::move(train);
  pr.test = std::move(test);
  return pr;
}

HccMfConfig quad_cpu_config(const data::DatasetSpec& spec) {
  HccMfConfig config;
  config.sgd = mf::SgdConfig::for_dataset(spec.reg_lambda, 0.01f, /*k=*/16);
  config.sgd.epochs = 8;
  config.comm.fp16 = false;
  config.platform = sim::combo(
      "quad-cpu", {"6242-24T", "6242-24T", "6242-24T", "6242-24T"});
  for (auto& w : config.platform.workers) w.epoch_overhead_s = 0.0;
  config.dataset_name = spec.name;
  config.exec.mode = ExecMode::kParallel;
  config.exec.steal = true;
  return config;
}

TrainReport run(HccMfConfig config, const SmallProblem& pr) {
  HccMf framework(std::move(config));
  return framework.train(pr.train, &pr.test);
}

TEST(StealTrain, ValidationRejectsStealUnderSerial) {
  HccMfConfig config = quad_cpu_config(data::netflix_spec().scaled(0.001));
  config.exec.mode = ExecMode::kSerial;
  const auto errors = config.validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].code, ConfigErrorCode::kStealNeedsParallel);
}

TEST(StealTrain, StealingMatchesNonStealingRmse) {
  const SmallProblem pr = netflix_small();
  HccMfConfig no_steal = quad_cpu_config(pr.spec);
  no_steal.exec.steal = false;
  const TrainReport base = run(no_steal, pr);
  const TrainReport stolen = run(quad_cpu_config(pr.spec), pr);
  ASSERT_FALSE(base.epochs.empty());
  ASSERT_FALSE(stolen.epochs.empty());
  const double rmse_base = base.epochs.back().test_rmse;
  const double rmse_steal = stolen.epochs.back().test_rmse;
  EXPECT_TRUE(std::isfinite(rmse_steal));
  // Stealing reorders the async merges; the converged quality must match
  // the non-stealing executor within the usual ASGD wiggle.
  EXPECT_NEAR(rmse_steal, rmse_base, 0.05);
}

TEST(StealTrain, StealCountersStayConsistent) {
  auto& reg = obs::registry();
  const std::uint64_t count0 = reg.counter("steal.count").value();
  const std::uint64_t chunks0 = reg.counter("steal.chunks").value();
  const std::uint64_t ratings0 = reg.counter("steal.ratings").value();
  const SmallProblem pr = netflix_small(0.001);
  (void)run(quad_cpu_config(pr.spec), pr);
  const std::uint64_t count = reg.counter("steal.count").value() - count0;
  const std::uint64_t chunks = reg.counter("steal.chunks").value() - chunks0;
  const std::uint64_t ratings =
      reg.counter("steal.ratings").value() - ratings0;
  // One chunk per steal event; a steal always moves at least one rating.
  EXPECT_EQ(count, chunks);
  if (count > 0) {
    EXPECT_GE(ratings, count);
  }
  // The imbalance gauge is live after any parallel epoch.
  EXPECT_GE(reg.gauge("sched.imbalance").value(), 1.0);
}

TEST(StealTrain, KillRecoveryStillWorksWithStealing) {
  const SmallProblem pr = netflix_small();
  HccMfConfig config = quad_cpu_config(pr.spec);
  config.fault.plan = fault::FaultPlan::parse("kill:w1@e2");
  const TrainReport report = run(config, pr);
  EXPECT_EQ(report.fault.recoveries, 1u);
  ASSERT_EQ(report.fault.dead_workers.size(), 1u);
  EXPECT_EQ(report.fault.dead_workers[0], 1u);
  EXPECT_EQ(report.fault.worker_nnz[1], 0u);
  ASSERT_FALSE(report.epochs.empty());
  EXPECT_TRUE(std::isfinite(report.epochs.back().test_rmse));
  EXPECT_LT(report.epochs.back().test_rmse, 1.0);
}

TEST(StealTrain, TiledScheduleComposesWithStealing) {
  const SmallProblem pr = netflix_small();
  HccMfConfig config = quad_cpu_config(pr.spec);
  config.schedule.policy = data::SchedulePolicy::kTiled;
  config.schedule.tile_kb = 64;
  const TrainReport report = run(config, pr);
  ASSERT_FALSE(report.epochs.empty());
  EXPECT_TRUE(std::isfinite(report.epochs.back().test_rmse));
  EXPECT_LT(report.epochs.back().test_rmse, 1.0);
}

TEST(StealTrain, RealStallsKeepResultsFiniteAndSlowTheStraggler) {
  const SmallProblem pr = netflix_small(0.001);
  HccMfConfig config = quad_cpu_config(pr.spec);
  config.sgd.epochs = 4;
  config.fault.plan = fault::FaultPlan::parse("stall:w0@e1x4;stall:w0@e2x4");
  config.fault.real_stalls = true;
  const TrainReport report = run(config, pr);
  ASSERT_FALSE(report.epochs.empty());
  EXPECT_TRUE(std::isfinite(report.epochs.back().test_rmse));
  // The stall really fired (injections counted), and the run survived it.
  EXPECT_GE(report.fault.injected, 2u);
}

}  // namespace
}  // namespace hcc::core
