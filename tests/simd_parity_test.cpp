// Cross-ISA parity suite: every compiled-in kernel table is checked against
// the scalar reference table.
//
// The FP16 codec entries must match BIT-EXACTLY (the scalar codec in
// util/fp16.hpp is the conformance oracle for vcvtps2ph/vcvtph2ps/fcvt);
// the FMA reductions may differ only by bounded reassociation error.  Runs
// under whatever HCCMF_SIMD selects too, but always iterates every
// available table explicitly, so one CI host covers all its backends.
#include "simd/dispatch.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/fp16.hpp"
#include "util/rng.hpp"

namespace hcc::simd {
namespace {

constexpr std::uint32_t kRanks[] = {4, 8, 16, 30, 31, 32, 100, 128};

std::vector<const KernelTable*> available_tables() {
  std::vector<const KernelTable*> tables;
  for (const Isa isa :
       {Isa::kScalar, Isa::kNeon, Isa::kAvx2, Isa::kAvx512}) {
    if (const KernelTable* t = kernels_for(isa)) tables.push_back(t);
  }
  return tables;
}

std::vector<float> random_floats(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal(0.2, 0.1));
  return v;
}

/// |a - b| in units of the last place of the larger magnitude.
double ulp_distance(float a, float b) {
  if (a == b) return 0.0;
  const float scale = std::max(std::abs(a), std::abs(b));
  const float ulp = std::nextafter(scale, std::numeric_limits<float>::max()) -
                    scale;
  return std::abs(static_cast<double>(a) - static_cast<double>(b)) / ulp;
}

// ---------------------------------------------------------------------------
// FP16 codec: bit-exact against the scalar oracle.
// ---------------------------------------------------------------------------

TEST(SimdParity, Fp16DecodeBitExactOverAllInputs) {
  // Every one of the 65536 binary16 patterns, including subnormals, +/-inf
  // and every NaN payload.
  std::vector<util::Half> halves(1u << 16);
  for (std::uint32_t i = 0; i < halves.size(); ++i) {
    halves[i].bits = static_cast<std::uint16_t>(i);
  }
  std::vector<float> expected(halves.size());
  kernels_for(Isa::kScalar)->fp16_decode(halves.data(), expected.data(),
                                         halves.size());
  for (const KernelTable* table : available_tables()) {
    std::vector<float> actual(halves.size());
    table->fp16_decode(halves.data(), actual.data(), halves.size());
    for (std::size_t i = 0; i < halves.size(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(actual[i]),
                std::bit_cast<std::uint32_t>(expected[i]))
          << table->name << " half bits 0x" << std::hex << i;
    }
  }
}

std::vector<float> encode_corpus() {
  std::vector<float> corpus;
  // Every binary16 value round-tripped to binary32: encode must return the
  // exact bits it came from.
  for (std::uint32_t i = 0; i < (1u << 16); ++i) {
    corpus.push_back(util::fp16_to_float(util::Half{
        static_cast<std::uint16_t>(i)}));
  }
  // Rounding boundaries around the binary16 overflow threshold: 65504 is
  // the max finite value, 65520 is the first float that rounds to inf.
  for (const float v : {65504.0f, 65519.0f, 65519.97f, 65520.0f, 65536.0f,
                        1e30f, -65504.0f, -65520.0f, -1e30f}) {
    corpus.push_back(v);
  }
  // Gradual underflow: floats spanning the binary16 subnormal range
  // (2^-24 .. 2^-14) plus halfway cases that exercise round-to-even.
  for (int e = -26; e <= -13; ++e) {
    const float base = std::ldexp(1.0f, e);
    for (const float m : {1.0f, 1.25f, 1.5f, 1.5000001f, 1.75f, 1.9999999f}) {
      corpus.push_back(base * m);
      corpus.push_back(-base * m);
    }
  }
  // Specials: zeros, infinities, NaNs with different payloads (top-10
  // payload bits survive, quiet bit is forced).
  corpus.push_back(0.0f);
  corpus.push_back(-0.0f);
  corpus.push_back(std::numeric_limits<float>::infinity());
  corpus.push_back(-std::numeric_limits<float>::infinity());
  for (const std::uint32_t bits :
       {0x7fc00000u, 0xffc00000u, 0x7f800001u, 0x7fc12345u, 0xffabcdefu,
        0x7fffffffu}) {
    corpus.push_back(std::bit_cast<float>(bits));
  }
  // Random binary32 bit patterns (any float is a legal encode input).
  util::Rng rng(11);
  for (int i = 0; i < 50000; ++i) {
    corpus.push_back(std::bit_cast<float>(
        static_cast<std::uint32_t>(rng())));
  }
  // Typical feature-matrix magnitudes.
  const auto features = random_floats(50000, 12);
  corpus.insert(corpus.end(), features.begin(), features.end());
  return corpus;
}

TEST(SimdParity, Fp16EncodeBitExactOverCorpus) {
  const std::vector<float> corpus = encode_corpus();
  std::vector<util::Half> expected(corpus.size());
  kernels_for(Isa::kScalar)->fp16_encode(corpus.data(), expected.data(),
                                         corpus.size());
  for (const KernelTable* table : available_tables()) {
    std::vector<util::Half> actual(corpus.size());
    table->fp16_encode(corpus.data(), actual.data(), corpus.size());
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      ASSERT_EQ(actual[i].bits, expected[i].bits)
          << table->name << " input bits 0x" << std::hex
          << std::bit_cast<std::uint32_t>(corpus[i]);
    }
  }
}

TEST(SimdParity, Fp16CodecHandlesMisalignedAndTailSlices) {
  // Odd offsets and lengths force unaligned vector loads and every tail
  // length; ASan watches the edges.
  const auto src = random_floats(4099, 13);
  for (const KernelTable* table : available_tables()) {
    for (const std::size_t offset : {0u, 1u, 3u, 7u}) {
      for (const std::size_t len : {0u, 1u, 7u, 15u, 16u, 17u, 33u, 4092u}) {
        if (offset + len > src.size()) continue;
        std::vector<util::Half> expected(len);
        std::vector<util::Half> actual(len);
        kernels_for(Isa::kScalar)
            ->fp16_encode(src.data() + offset, expected.data(), len);
        table->fp16_encode(src.data() + offset, actual.data(), len);
        for (std::size_t i = 0; i < len; ++i) {
          ASSERT_EQ(actual[i].bits, expected[i].bits)
              << table->name << " offset=" << offset << " len=" << len;
        }
        std::vector<float> decoded_expected(len);
        std::vector<float> decoded_actual(len);
        kernels_for(Isa::kScalar)
            ->fp16_decode(expected.data(), decoded_expected.data(), len);
        table->fp16_decode(expected.data(), decoded_actual.data(), len);
        for (std::size_t i = 0; i < len; ++i) {
          ASSERT_EQ(std::bit_cast<std::uint32_t>(decoded_actual[i]),
                    std::bit_cast<std::uint32_t>(decoded_expected[i]))
              << table->name << " offset=" << offset << " len=" << len;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// FMA kernels: bounded-ULP against the scalar reference.
// ---------------------------------------------------------------------------

TEST(SimdParity, DotWithinUlpBound) {
  const KernelTable* scalar = kernels_for(Isa::kScalar);
  for (const std::uint32_t k : kRanks) {
    const auto a = random_floats(k, 21);
    const auto b = random_floats(k, 22);
    const float expected = scalar->dot(a.data(), b.data(), k);
    for (const KernelTable* table : available_tables()) {
      const float actual = table->dot(a.data(), b.data(), k);
      // Reassociation moves the result by at most a few ULPs per chain for
      // these magnitudes; 32 ULPs is orders of magnitude tighter than any
      // real divergence bug.
      EXPECT_LE(ulp_distance(actual, expected), 32.0)
          << table->name << " k=" << k;
    }
  }
}

TEST(SimdParity, SumSquaresWithinUlpBound) {
  const KernelTable* scalar = kernels_for(Isa::kScalar);
  for (const std::size_t n : {4u, 100u, 1024u, 100001u}) {
    const auto v = random_floats(n, 23);
    const double expected = scalar->sum_squares(v.data(), n);
    for (const KernelTable* table : available_tables()) {
      const double actual = table->sum_squares(v.data(), n);
      // Accumulation is in double, so even large n stays tight.
      EXPECT_NEAR(actual, expected, 1e-9 * (1.0 + std::abs(expected)))
          << table->name << " n=" << n;
    }
  }
}

TEST(SimdParity, SgdUpdateTracksScalarOverManySteps) {
  const KernelTable* scalar = kernels_for(Isa::kScalar);
  for (const std::uint32_t k : kRanks) {
    for (const KernelTable* table : available_tables()) {
      auto p_ref = random_floats(k, 31);
      auto q_ref = random_floats(k, 32);
      auto p = p_ref;
      auto q = q_ref;
      for (int step = 0; step < 200; ++step) {
        const float r = 3.0f + 0.01f * static_cast<float>(step % 5);
        const float err_ref = scalar->sgd_update(p_ref.data(), q_ref.data(),
                                                 k, r, 0.01f, 0.02f, 0.02f);
        const float err = table->sgd_update(p.data(), q.data(), k, r, 0.01f,
                                            0.02f, 0.02f);
        ASSERT_NEAR(err, err_ref, 1e-3f)
            << table->name << " k=" << k << " step=" << step;
      }
      for (std::uint32_t f = 0; f < k; ++f) {
        EXPECT_NEAR(p[f], p_ref[f], 1e-3f) << table->name << " k=" << k;
        EXPECT_NEAR(q[f], q_ref[f], 1e-3f) << table->name << " k=" << k;
      }
    }
  }
}

TEST(SimdParity, SgdUpdateWithErrorMatchesScalar) {
  const KernelTable* scalar = kernels_for(Isa::kScalar);
  for (const std::uint32_t k : kRanks) {
    for (const KernelTable* table : available_tables()) {
      auto p_ref = random_floats(k, 41);
      auto q_ref = random_floats(k, 42);
      auto p = p_ref;
      auto q = q_ref;
      scalar->sgd_update_with_error(p_ref.data(), q_ref.data(), k, 0.7f,
                                    0.01f, 0.02f, 0.03f);
      table->sgd_update_with_error(p.data(), q.data(), k, 0.7f, 0.01f,
                                   0.02f, 0.03f);
      for (std::uint32_t f = 0; f < k; ++f) {
        // One step, same inputs: only the multiply/FMA contraction of a
        // single update separates the results.
        EXPECT_LE(ulp_distance(p[f], p_ref[f]), 4.0)
            << table->name << " k=" << k << " f=" << f;
        EXPECT_LE(ulp_distance(q[f], q_ref[f]), 4.0)
            << table->name << " k=" << k << " f=" << f;
      }
    }
  }
}

TEST(SimdParity, SgdUpdateToleratesMisalignedRows) {
  // Model rows are 64-byte aligned in production, but the kernel contract
  // is unaligned-safe; shift both rows off alignment and compare.
  const std::uint32_t k = 128;
  const auto base_p = random_floats(k + 4, 51);
  const auto base_q = random_floats(k + 4, 52);
  const KernelTable* scalar = kernels_for(Isa::kScalar);
  for (const KernelTable* table : available_tables()) {
    auto p_ref = base_p;
    auto q_ref = base_q;
    auto p = base_p;
    auto q = base_q;
    scalar->sgd_update(p_ref.data() + 1, q_ref.data() + 3, k, 4.0f, 0.01f,
                       0.02f, 0.02f);
    table->sgd_update(p.data() + 1, q.data() + 3, k, 4.0f, 0.01f, 0.02f,
                      0.02f);
    for (std::uint32_t f = 0; f < k + 4; ++f) {
      EXPECT_LE(ulp_distance(p[f], p_ref[f]), 4.0) << table->name;
      EXPECT_LE(ulp_distance(q[f], q_ref[f]), 4.0) << table->name;
    }
  }
}

// ---------------------------------------------------------------------------
// Quantization kernels: bit-exact against the scalar reference.  The whole
// group is contracted exact (no FMA, RNE integer rounding), so the quantized
// codecs produce identical wire bytes and identical error-feedback state on
// every ISA.
// ---------------------------------------------------------------------------

constexpr std::size_t kQuantLens[] = {0, 1, 3, 7, 8, 15, 16, 17, 31, 32,
                                      33, 100, 128, 1000};

TEST(SimdParity, AbsmaxMatchesScalarExactly) {
  const KernelTable* scalar = kernels_for(Isa::kScalar);
  for (const std::size_t n : kQuantLens) {
    auto v = random_floats(std::max<std::size_t>(n, 1), 71);
    v.resize(n);
    if (n > 0) v[n / 2] = -3.5f;  // a negative extremum exercises fabs
    const float expected = scalar->absmax(v.data(), n);
    for (const KernelTable* table : available_tables()) {
      EXPECT_EQ(table->absmax(v.data(), n), expected)
          << table->name << " n=" << n;
    }
  }
}

TEST(SimdParity, EfDeltaMatchesScalarBitExactly) {
  const KernelTable* scalar = kernels_for(Isa::kScalar);
  for (const std::size_t n : kQuantLens) {
    const auto src = random_floats(n, 72);
    const auto ref = random_floats(n, 73);
    const auto residual = random_floats(n, 74);
    std::vector<float> expected(n);
    scalar->ef_delta(src.data(), ref.data(), residual.data(), expected.data(),
                     n);
    for (const KernelTable* table : available_tables()) {
      std::vector<float> actual(n);
      table->ef_delta(src.data(), ref.data(), residual.data(), actual.data(),
                      n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(std::bit_cast<std::uint32_t>(actual[i]),
                  std::bit_cast<std::uint32_t>(expected[i]))
            << table->name << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(SimdParity, Int8EncodeCommitMatchScalarBitExactly) {
  const KernelTable* scalar = kernels_for(Isa::kScalar);
  for (const std::size_t n : kQuantLens) {
    auto e = random_floats(n, 75);
    if (n > 2) {
      e[0] = 0.5f;        // exactly representable extremum
      e[1] = -0.5f;       // saturates to -127 with inv_scale below
      e[2] = 0.0019685f;  // near the RNE boundary between codes 0 and 1
    }
    const float scale = 0.5f / 127.0f;
    const float inv_scale = 127.0f / 0.5f;
    std::vector<std::int8_t> expected_q(n);
    scalar->int8_encode(e.data(), inv_scale, expected_q.data(), n);
    const auto ref_in = random_floats(n, 76);
    for (const KernelTable* table : available_tables()) {
      std::vector<std::int8_t> q(n);
      table->int8_encode(e.data(), inv_scale, q.data(), n);
      ASSERT_EQ(q, expected_q) << table->name << " n=" << n;

      std::vector<float> ref_exp = ref_in;
      std::vector<float> res_exp(n);
      std::vector<float> dst_exp(n);
      scalar->int8_commit(expected_q.data(), scale, e.data(), ref_exp.data(),
                          res_exp.data(), dst_exp.data(), n);
      std::vector<float> ref_act = ref_in;
      std::vector<float> res_act(n);
      std::vector<float> dst_act(n);
      table->int8_commit(q.data(), scale, e.data(), ref_act.data(),
                         res_act.data(), dst_act.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(std::bit_cast<std::uint32_t>(dst_act[i]),
                  std::bit_cast<std::uint32_t>(dst_exp[i]))
            << table->name << " n=" << n << " i=" << i;
        ASSERT_EQ(std::bit_cast<std::uint32_t>(res_act[i]),
                  std::bit_cast<std::uint32_t>(res_exp[i]))
            << table->name << " n=" << n << " i=" << i;
        ASSERT_EQ(std::bit_cast<std::uint32_t>(ref_act[i]),
                  std::bit_cast<std::uint32_t>(ref_exp[i]))
            << table->name << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(SimdParity, TwoBitEncodeCommitMatchScalarBitExactly) {
  const KernelTable* scalar = kernels_for(Isa::kScalar);
  for (const std::size_t n : kQuantLens) {
    auto e = random_floats(n, 77);
    const float t = 0.15f;
    if (n > 2) {
      e[0] = t;       // exactly the threshold: not strictly greater => zero
      e[1] = -t;      // same on the negative side
      e[2] = 0.0f;
    }
    std::vector<std::uint8_t> expected_packed((n + 3) / 4);
    scalar->two_bit_encode(e.data(), t, expected_packed.data(), n);
    const auto ref_in = random_floats(n, 78);
    for (const KernelTable* table : available_tables()) {
      std::vector<std::uint8_t> packed((n + 3) / 4);
      table->two_bit_encode(e.data(), t, packed.data(), n);
      ASSERT_EQ(packed, expected_packed) << table->name << " n=" << n;

      std::vector<float> ref_exp = ref_in;
      std::vector<float> res_exp(n);
      std::vector<float> dst_exp(n);
      scalar->two_bit_commit(expected_packed.data(), t, e.data(),
                             ref_exp.data(), res_exp.data(), dst_exp.data(),
                             n);
      std::vector<float> ref_act = ref_in;
      std::vector<float> res_act(n);
      std::vector<float> dst_act(n);
      table->two_bit_commit(packed.data(), t, e.data(), ref_act.data(),
                            res_act.data(), dst_act.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(std::bit_cast<std::uint32_t>(dst_act[i]),
                  std::bit_cast<std::uint32_t>(dst_exp[i]))
            << table->name << " n=" << n << " i=" << i;
        ASSERT_EQ(std::bit_cast<std::uint32_t>(res_act[i]),
                  std::bit_cast<std::uint32_t>(res_exp[i]))
            << table->name << " n=" << n << " i=" << i;
        ASSERT_EQ(std::bit_cast<std::uint32_t>(ref_act[i]),
                  std::bit_cast<std::uint32_t>(ref_exp[i]))
            << table->name << " n=" << n << " i=" << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// all_finite: exact boolean parity.
// ---------------------------------------------------------------------------

TEST(SimdParity, AllFiniteDetectsPlantedSpecials) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  for (const KernelTable* table : available_tables()) {
    for (const std::size_t n : {1u, 7u, 15u, 16u, 17u, 64u, 1000u}) {
      auto v = random_floats(n, 61);
      EXPECT_TRUE(table->all_finite(v.data(), n))
          << table->name << " n=" << n;
      // Plant a special at every lane-edge position, including the tail.
      for (const std::size_t pos :
           {std::size_t{0}, n / 2, n - 1}) {
        for (const float bad : {nan, inf, -inf}) {
          auto poisoned = v;
          poisoned[pos] = bad;
          EXPECT_FALSE(table->all_finite(poisoned.data(), n))
              << table->name << " n=" << n << " pos=" << pos;
        }
      }
    }
    // Denormals and huge-but-finite values are finite.
    std::vector<float> edge{1e-45f, -1e-45f, 0.0f,
                            std::numeric_limits<float>::max(),
                            std::numeric_limits<float>::lowest(),
                            std::numeric_limits<float>::min()};
    EXPECT_TRUE(table->all_finite(edge.data(), edge.size())) << table->name;
    EXPECT_TRUE(table->all_finite(edge.data(), 0)) << table->name;
  }
}

// ---------------------------------------------------------------------------
// score_block: the serving scan kernel — same ULP latitude as dot.
// ---------------------------------------------------------------------------

TEST(SimdParity, ScoreBlockWithinUlpBoundOfScalar) {
  const auto* scalar = kernels_for(Isa::kScalar);
  ASSERT_NE(scalar, nullptr);
  // Item counts around the 8-per-pass boundary; ranks around the vector
  // widths, including the scalar-tail cases.
  constexpr std::uint32_t kCounts[] = {1, 7, 8, 9, 16, 40, 100};
  for (const KernelTable* table : available_tables()) {
    for (const std::uint32_t k : kRanks) {
      for (const std::uint32_t n : kCounts) {
        const auto user = random_floats(k, 11 * k + n);
        const auto q = random_floats(static_cast<std::size_t>(n) * k,
                                     13 * k + n);
        std::vector<float> expected(n);
        std::vector<float> actual(n);
        scalar->score_block(user.data(), q.data(), k, n, nullptr,
                            expected.data());
        table->score_block(user.data(), q.data(), k, n, nullptr,
                           actual.data());
        for (std::uint32_t i = 0; i < n; ++i) {
          EXPECT_LE(ulp_distance(actual[i], expected[i]), 32.0)
              << table->name << " k=" << k << " n=" << n << " item " << i;
        }
      }
    }
  }
}

TEST(SimdParity, ScoreBlockHonorsSkipMask) {
  constexpr std::uint32_t k = 31;
  constexpr std::uint32_t n = 27;
  const auto user = random_floats(k, 7);
  const auto q = random_floats(static_cast<std::size_t>(n) * k, 9);
  // Mask a mix of full bytes and stragglers, including tail items.
  std::vector<std::uint8_t> mask((n + 7) / 8, 0);
  for (const std::uint32_t i : {0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u, 10u, 26u}) {
    mask[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  }
  for (const KernelTable* table : available_tables()) {
    std::vector<float> scores(n, 0.0f);
    table->score_block(user.data(), q.data(), k, n, mask.data(),
                       scores.data());
    for (std::uint32_t i = 0; i < n; ++i) {
      const bool skipped = ((mask[i / 8] >> (i % 8)) & 1u) != 0;
      if (skipped) {
        EXPECT_EQ(scores[i], -std::numeric_limits<float>::infinity())
            << table->name << " item " << i;
      } else {
        EXPECT_TRUE(std::isfinite(scores[i])) << table->name << " item " << i;
      }
    }
  }
}

TEST(SimdParity, ScoreBlockMatchesDotPerItem) {
  // Each lane of the batched kernel must equal the same table's dot within
  // ULPs (different accumulation shapes, same math).
  constexpr std::uint32_t k = 128;
  constexpr std::uint32_t n = 24;
  const auto user = random_floats(k, 21);
  const auto q = random_floats(static_cast<std::size_t>(n) * k, 23);
  for (const KernelTable* table : available_tables()) {
    std::vector<float> scores(n);
    table->score_block(user.data(), q.data(), k, n, nullptr, scores.data());
    for (std::uint32_t i = 0; i < n; ++i) {
      const float expect =
          table->dot(user.data(), q.data() + static_cast<std::size_t>(i) * k,
                     k);
      EXPECT_LE(ulp_distance(scores[i], expect), 32.0)
          << table->name << " item " << i;
    }
  }
}

}  // namespace
}  // namespace hcc::simd
