// Tests for the communication auto-tuner.
#include "core/tuner.hpp"

#include <gtest/gtest.h>

namespace hcc::core {
namespace {

sim::DatasetShape netflix_shape() {
  return {"netflix", 480190, 17771, 99072112, 128};
}
sim::DatasetShape movielens_shape() {
  return {"movielens", 138494, 131263, 20000260, 128};
}
sim::DatasetShape r1star_shape() {
  return {"r1star", 1948883, 1101750, 199999997, 128};
}

TEST(Tuner, TriesTheWholeGrid) {
  const TuneResult result =
      tune_comm(sim::paper_workstation_hetero(), netflix_shape());
  EXPECT_EQ(result.trials.size(), 2u * 2u * 3u * 2u);
  // Trials sorted best-first.
  for (std::size_t i = 1; i < result.trials.size(); ++i) {
    EXPECT_LE(result.trials[i - 1].epoch_seconds,
              result.trials[i].epoch_seconds);
  }
  EXPECT_EQ(result.best.epoch_seconds, result.trials.front().epoch_seconds);
}

TEST(Tuner, BestNeverLosesToDefault) {
  for (const auto& shape :
       {netflix_shape(), movielens_shape(), r1star_shape()}) {
    const TuneResult result =
        tune_comm(sim::paper_workstation_hetero(), shape);
    // The default config (reduced payload, fp16, 1 stream, no pruning) is
    // in the grid, so the winner can only be at least as good.
    comm::CommConfig default_comm;
    DataManager manager(sim::paper_workstation_hetero(), shape,
                        default_comm);
    const double default_epoch =
        manager.simulated_epoch_seconds(manager.plan());
    EXPECT_LE(result.best.epoch_seconds, default_epoch * (1.0 + 1e-9))
        << shape.name;
  }
}

TEST(Tuner, PicksPayloadReductionAndFp16) {
  // On every paper shape the wire optimizations are strict wins.
  for (const auto& shape : {netflix_shape(), movielens_shape()}) {
    const TuneResult result =
        tune_comm(sim::paper_workstation_hetero(), shape);
    EXPECT_TRUE(result.best.comm.reduce_payload) << shape.name;
    EXPECT_TRUE(result.best.comm.fp16) << shape.name;
  }
}

TEST(Tuner, EnginesMatterOnCommBoundShapes) {
  // MovieLens (comm ~ compute): the winner uses streams and/or pruning.
  const TuneResult result =
      tune_comm(sim::paper_workstation_hetero(), movielens_shape());
  EXPECT_TRUE(result.best.comm.streams > 1 || result.best.prune)
      << result.summary();
}

TEST(Tuner, SummaryMentionsDecisions) {
  const TuneResult result =
      tune_comm(sim::paper_workstation_hetero(), netflix_shape());
  const std::string s = result.summary();
  EXPECT_NE(s.find("payload="), std::string::npos);
  EXPECT_NE(s.find("fp16="), std::string::npos);
  EXPECT_NE(s.find("streams="), std::string::npos);
  EXPECT_NE(s.find("strategy="), std::string::npos);
}

TEST(Tuner, DeterministicAcrossRuns) {
  const TuneResult a =
      tune_comm(sim::paper_workstation_hetero(), r1star_shape());
  const TuneResult b =
      tune_comm(sim::paper_workstation_hetero(), r1star_shape());
  EXPECT_EQ(a.best.epoch_seconds, b.best.epoch_seconds);
  EXPECT_EQ(a.best.comm.streams, b.best.comm.streams);
  EXPECT_EQ(a.best.comm.fp16, b.best.comm.fp16);
}

}  // namespace
}  // namespace hcc::core
