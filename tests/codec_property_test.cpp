// Codec property suite: round-trips for every wire codec across adversarial
// sizes (empty, SIMD tails, thread-pool threshold straddles), bounded
// steady-state quantization error, thread-safety of the shared codec
// metrics under parallel pushes (TSan hunts the races), and the headline
// acceptance property — quantized training matches the fp16 baseline's
// RMSE on a MovieLens-scale problem, under both the in-process and chaos
// transports.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "comm/codec.hpp"
#include "comm/strategy.hpp"
#include "core/hccmf.hpp"
#include "data/datasets.hpp"
#include "fault/plan.hpp"
#include "util/fp16.hpp"
#include "util/rng.hpp"

namespace hcc {
namespace {

using comm::Codec;
using comm::CodecKind;

std::vector<float> random_features(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal(0.15, 0.1));
  return v;
}

std::unique_ptr<Codec> codec_for(CodecKind kind, std::size_t threads = 0) {
  comm::CommConfig config;
  config.codec = kind;
  config.codec_threads = static_cast<std::uint32_t>(threads);
  return comm::make_codec(config, /*row_elems=*/128);
}

std::vector<float> roundtrip(Codec& codec, const std::vector<float>& src) {
  std::vector<std::byte> wire(codec.encoded_bytes(src.size()));
  std::vector<float> out(src.size());
  codec.encode(src, wire);
  codec.decode(wire, out);
  return out;
}

// The sizes that historically break sliced SIMD code: empty, single
// element, partial packed bytes, one element either side of a scale block,
// and batches straddling the codec thread-pool threshold.
std::vector<std::size_t> adversarial_sizes() {
  const std::size_t threshold = comm::Fp16Codec::kParallelThreshold;
  return {0,   1,   2,   3,   5,    7,    8,   9,   15,  16,  17,
          31,  33,  127, 128, 129,  255,  257, 1000,
          threshold - 1, threshold, threshold + 1, 2 * threshold + 13};
}

class CodecRoundTrip : public ::testing::TestWithParam<CodecKind> {};

TEST_P(CodecRoundTrip, FirstTransferRoundTripsAcrossOddSizes) {
  for (const std::size_t n : adversarial_sizes()) {
    auto codec = codec_for(GetParam(), /*threads=*/3);
    const auto src = random_features(n, 100 + n);
    const auto out = roundtrip(*codec, src);
    ASSERT_EQ(out.size(), src.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (GetParam() == CodecKind::kFp16) {
        // fp16 is stateless lossy: the scalar oracle gives the exact bits.
        ASSERT_EQ(out[i], util::fp16_to_float(util::float_to_fp16(src[i])))
            << "n=" << n << " i=" << i;
      } else {
        // fp32 is lossless; the stateful codecs open with a lossless
        // keyframe.
        ASSERT_EQ(out[i], src[i]) << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST_P(CodecRoundTrip, SteadyStateRoundTripsAcrossOddSizes) {
  // Second transfer on the same stream: the stateful codecs now quantize.
  // Their per-element error is bounded by the block's quantization step —
  // absmax/254 for int8 (round-to-nearest at 1/127 granularity), absmax/2
  // for the 2-bit codec (codes are {-t, 0, +t} with t = absmax/2).
  for (const std::size_t n : adversarial_sizes()) {
    auto codec = codec_for(GetParam(), /*threads=*/2);
    const auto first = random_features(n, 200 + n);
    roundtrip(*codec, first);
    const auto src = random_features(n, 300 + n);
    const auto out = roundtrip(*codec, src);
    const std::size_t block = 128;
    for (std::size_t lo = 0; lo < n; lo += block) {
      const std::size_t hi = std::min(n, lo + block);
      float absmax = 0.0f;
      for (std::size_t i = lo; i < hi; ++i) {
        // After a keyframe the residual is zero, so e = src - first.
        absmax = std::max(absmax, std::abs(src[i] - first[i]));
      }
      double bound = 0.0;
      switch (GetParam()) {
        case CodecKind::kInt8: bound = absmax / 254.0 + 1e-6; break;
        case CodecKind::kTwoBit: bound = absmax / 2.0 + 1e-6; break;
        case CodecKind::kFp16: bound = 1e-3; break;
        default: bound = 0.0; break;
      }
      for (std::size_t i = lo; i < hi; ++i) {
        ASSERT_LE(std::abs(double{out[i]} - double{src[i]}), bound)
            << comm::codec_kind_name(GetParam()) << " n=" << n << " i=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, CodecRoundTrip,
    ::testing::Values(CodecKind::kFp32, CodecKind::kFp16, CodecKind::kInt8,
                      CodecKind::kTwoBit),
    [](const auto& info) {
      return std::string(comm::codec_kind_name(info.param));
    });

TEST(CodecThreads, ParallelPushesAreRaceFree) {
  // Every worker owns its codecs, but they all feed the same process-wide
  // comm.codec.* metrics, and the threaded codecs additionally slice work
  // across an internal pool.  TSan owns this test: four "workers" pushing
  // concurrently with pooled quantized codecs must be clean.
  constexpr int kWorkers = 4;
  constexpr int kRounds = 20;
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([w] {
      auto int8 = codec_for(CodecKind::kInt8, /*threads=*/2);
      auto two_bit = codec_for(CodecKind::kTwoBit, /*threads=*/2);
      const auto src = random_features(
          comm::Fp16Codec::kParallelThreshold + 257,
          400 + static_cast<std::uint64_t>(w));
      for (int round = 0; round < kRounds; ++round) {
        roundtrip(*int8, src);
        roundtrip(*two_bit, src);
      }
    });
  }
  for (auto& t : workers) t.join();
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Acceptance property: sub-FP16 codecs preserve convergence.
// ---------------------------------------------------------------------------

struct Problem {
  data::RatingMatrix train{0, 0};
  data::RatingMatrix test{0, 0};
  data::DatasetSpec spec;
};

Problem movielens_small() {
  Problem pr;
  // MovieLens-20M shape scaled to a tractable test size (~20k ratings)
  // with a planted low-rank structure SGD can actually recover.
  pr.spec = data::movielens20m_spec().scaled(0.001);
  data::GeneratorConfig gen;
  gen.seed = 29;
  gen.planted_rank = 4;
  const auto full = data::generate(pr.spec, gen);
  util::Rng rng(30);
  auto [train, test] = data::train_test_split(full, 0.1, rng);
  pr.train = std::move(train);
  pr.test = std::move(test);
  return pr;
}

double final_rmse(const Problem& pr, CodecKind kind, bool chaos) {
  core::HccMfConfig config;
  config.sgd = mf::SgdConfig::for_dataset(pr.spec.reg_lambda, 0.01f, /*k=*/16);
  config.sgd.epochs = 10;
  // A mild decay shrinks the per-epoch factor movement — exactly the signal
  // the quantized codecs transfer — so the parity below is robust rather
  // than riding the edge of the tolerance.
  config.sgd.lr_decay = 0.9f;
  config.comm.codec = kind;
  config.platform = sim::paper_workstation_hetero();
  config.platform.workers.resize(3);
  for (auto& w : config.platform.workers) w.epoch_overhead_s = 0.0;
  config.dataset_name = pr.spec.name;
  if (chaos) {
    config.comm.transport.kind = comm::TransportKind::kChaos;
    config.comm.transport.link = "local";
    config.fault.plan = fault::FaultPlan::parse(
        "drop:w0@e1n2;dup:w1@e2n2;reorder:w2@e3;disconnect:w1@e2n2");
  }
  const core::TrainReport report = core::HccMf(config).train(pr.train,
                                                             &pr.test);
  return report.epochs.back().test_rmse;
}

TEST(CodecConvergence, QuantizedMatchesFp16RmseInProcess) {
  const Problem pr = movielens_small();
  const double fp16 = final_rmse(pr, CodecKind::kFp16, /*chaos=*/false);
  const double int8 = final_rmse(pr, CodecKind::kInt8, /*chaos=*/false);
  const double two_bit = final_rmse(pr, CodecKind::kTwoBit, /*chaos=*/false);
  // The issue's acceptance bar: error feedback keeps the quantized runs
  // within 0.005 RMSE of the fp16 baseline.
  EXPECT_NEAR(int8, fp16, 0.005);
  EXPECT_NEAR(two_bit, fp16, 0.005);
}

TEST(CodecConvergence, QuantizedMatchesFp16RmseUnderChaos) {
  // The chaos transport drops/dups/reorders frames and severs one link
  // mid-run; the session layer heals every fault, so the stateful codecs'
  // encode/decode streams stay in lockstep and parity must hold here too.
  const Problem pr = movielens_small();
  const double fp16 = final_rmse(pr, CodecKind::kFp16, /*chaos=*/true);
  const double int8 = final_rmse(pr, CodecKind::kInt8, /*chaos=*/true);
  const double two_bit = final_rmse(pr, CodecKind::kTwoBit, /*chaos=*/true);
  EXPECT_NEAR(int8, fp16, 0.005);
  EXPECT_NEAR(two_bit, fp16, 0.005);
}

}  // namespace
}  // namespace hcc
