// Spans (nesting, timing monotonicity, enable/disable) and Chrome-trace
// JSON well-formedness, validated by round-trip parsing.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "obs/chrome_trace.hpp"
#include "obs/span.hpp"
#include "sim/trace_export.hpp"

namespace hcc::obs {
namespace {

volatile double g_sink = 0.0;

void burn_some_time() {
  double acc = 0.0;
  for (int i = 1; i < 20000; ++i) acc += 1.0 / i;
  g_sink = acc;
}

TEST(SpanTest, StopReturnsElapsedSecondsEvenWhenDisabled) {
  TraceRecorder rec;  // disabled by default
  ScopedSpan span(rec, "work", kPhaseCategory);
  burn_some_time();
  const double s = span.stop();
  EXPECT_GT(s, 0.0);
  EXPECT_DOUBLE_EQ(span.stop(), s);  // idempotent
  EXPECT_EQ(rec.size(), 0u);         // nothing recorded while disabled
}

TEST(SpanTest, RecordsEventWithDurationWhenEnabled) {
  TraceRecorder rec;
  rec.set_enabled(true);
  {
    ScopedSpan span(rec, "pull", kPhaseCategory, 3);
    span.arg("bytes", "4096");
    burn_some_time();
  }  // destructor records
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "pull");
  EXPECT_EQ(events[0].cat, kPhaseCategory);
  EXPECT_EQ(events[0].track, 3u);
  EXPECT_GE(events[0].ts_us, 0.0);
  EXPECT_GT(events[0].dur_us, 0.0);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "bytes");
}

TEST(SpanTest, NestedSpansAreContainedAndMonotonic) {
  TraceRecorder rec;
  rec.set_enabled(true);
  {
    ScopedSpan outer(rec, "epoch", kEpochCategory);
    burn_some_time();
    {
      ScopedSpan inner(rec, "compute", kPhaseCategory);
      burn_some_time();
    }
    burn_some_time();
  }
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Inner stops (and records) first.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "compute");
  EXPECT_EQ(outer.name, "epoch");
  // Containment: the inner interval lies within the outer interval.
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us + 1.0);
  EXPECT_GT(outer.dur_us, inner.dur_us);
}

TEST(SpanTest, SequentialSpansHaveMonotonicTimestamps) {
  TraceRecorder rec;
  rec.set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    ScopedSpan span(rec, "step", kPhaseCategory);
    burn_some_time();
  }
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 3u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_us, events[i - 1].ts_us);
    EXPECT_GE(events[i].ts_us + 1.0,
              events[i - 1].ts_us + events[i - 1].dur_us);
  }
}

TEST(SpanTest, ClearResetsEventsAndOrigin) {
  TraceRecorder rec;
  rec.set_enabled(true);
  { ScopedSpan span(rec, "x", kPhaseCategory); }
  EXPECT_EQ(rec.size(), 1u);
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_TRUE(rec.track_names().empty());
}

TEST(ChromeTraceTest, JsonRoundTripsEventsAndTrackNames) {
  std::vector<TraceEvent> events;
  TraceEvent ev;
  ev.name = "he said \"pull\"\n";
  ev.cat = "phase";
  ev.track = 2;
  ev.ts_us = 12.5;
  ev.dur_us = 1000.0;
  ev.args = {{"bytes", "4096"}, {"chunk", "0"}};
  events.push_back(ev);
  const std::map<std::uint32_t, std::string> tracks = {
      {0, "server (sync)"}, {2, "worker 1 (2080S)"}};

  const std::string json = chrome_trace_json(events, tracks);
  const auto parsed = parse_chrome_trace(json);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->events.size(), 1u);
  const TraceEvent& back = parsed->events[0];
  EXPECT_EQ(back.name, ev.name);  // escaping survives the round trip
  EXPECT_EQ(back.cat, "phase");
  EXPECT_EQ(back.track, 2u);
  EXPECT_DOUBLE_EQ(back.ts_us, 12.5);
  EXPECT_DOUBLE_EQ(back.dur_us, 1000.0);
  ASSERT_EQ(back.args.size(), 2u);
  EXPECT_EQ(parsed->track_names.at(2), "worker 1 (2080S)");
  EXPECT_EQ(parsed->track_names.at(0), "server (sync)");
}

TEST(ChromeTraceTest, ParserRejectsMalformedJson) {
  EXPECT_FALSE(parse_chrome_trace("{").has_value());
  EXPECT_FALSE(parse_chrome_trace("{\"traceEvents\":3}").has_value());
  EXPECT_FALSE(parse_chrome_trace("").has_value());
  EXPECT_FALSE(
      parse_chrome_trace("{\"traceEvents\":[]} trailing").has_value());
}

TEST(ChromeTraceTest, WriteToDiskAndParseBack) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.set_track_name(1, "worker 0");
  { ScopedSpan span(rec, "push", kPhaseCategory, 1); }
  const std::string path = "/tmp/hccmf_obs_trace_test.json";
  ASSERT_TRUE(write_chrome_trace(rec, path));
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  const auto parsed = parse_chrome_trace(contents);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->events.size(), 1u);
  EXPECT_EQ(parsed->events[0].name, "push");
  EXPECT_EQ(parsed->track_names.at(1), "worker 0");
  std::filesystem::remove(path);
  EXPECT_FALSE(write_chrome_trace(rec, "/nonexistent_dir/x.json"));
}

TEST(ChromeTraceTest, EpochTimingExportsPhaseSlices) {
  sim::EpochTiming timing;
  timing.workers.resize(2);
  timing.workers[0].pull_s = 0.001;
  timing.workers[0].compute_s = 0.040;
  timing.workers[0].push_s = 0.002;
  timing.workers[0].sync_s = 0.003;
  timing.workers[0].finish_s = 0.043;
  timing.workers[0].sync_end_s = 0.046;
  timing.workers[1].compute_s = 0.050;
  timing.epoch_s = 0.05;

  const std::string path = "/tmp/hccmf_obs_epoch_trace.json";
  ASSERT_TRUE(sim::export_epoch_chrome(timing, {"2080S", "6242"}, path));
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  std::filesystem::remove(path);

  const auto parsed = parse_chrome_trace(contents);
  ASSERT_TRUE(parsed.has_value());
  // Worker 0: pull+compute+push+sync; worker 1: compute only.
  ASSERT_EQ(parsed->events.size(), 5u);
  int pulls = 0, computes = 0, pushes = 0, syncs = 0;
  for (const auto& ev : parsed->events) {
    if (ev.name == "pull") {
      ++pulls;
      EXPECT_EQ(ev.track, 1u);
      EXPECT_DOUBLE_EQ(ev.ts_us, 0.0);
      EXPECT_NEAR(ev.dur_us, 1000.0, 1e-6);
    } else if (ev.name == "compute") {
      ++computes;
    } else if (ev.name == "push") {
      ++pushes;
      EXPECT_NEAR(ev.ts_us, 41000.0, 1e-6);  // finish_s - push_s
    } else if (ev.name == "sync") {
      ++syncs;
      EXPECT_EQ(ev.track, 0u);  // server track
      EXPECT_NEAR(ev.ts_us, 43000.0, 1e-6);  // sync_end_s - sync_s
    }
  }
  EXPECT_EQ(pulls, 1);
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(pushes, 1);
  EXPECT_EQ(syncs, 1);
  EXPECT_EQ(parsed->track_names.at(1), "worker 0 (2080S)");
  EXPECT_EQ(parsed->track_names.at(2), "worker 1 (6242)");
}

TEST(ChromeTraceTest, MultiEpochExportOffsetsLaterEpochs) {
  sim::EpochTiming e1;
  e1.workers.resize(1);
  e1.workers[0].compute_s = 0.010;
  e1.epoch_s = 0.010;
  sim::EpochTiming e2 = e1;

  const std::string path = "/tmp/hccmf_obs_epochs_trace.json";
  ASSERT_TRUE(sim::export_epochs_chrome({e1, e2}, {"cpu"}, path));
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  std::filesystem::remove(path);

  const auto parsed = parse_chrome_trace(contents);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->events.size(), 2u);
  EXPECT_NEAR(parsed->events[0].ts_us + e1.epoch_s * 1e6,
              parsed->events[1].ts_us, 1e-6);
}

}  // namespace
}  // namespace hcc::obs
