// End-to-end recommender: the scenario the paper's introduction motivates.
//
// Trains an MF model on a MovieLens-shaped dataset with HCC-MF, persists it
// (mf/model_io), reloads it the way a serving process would, and produces
// top-N item recommendations (mf/recommend) — the prediction of the "pink
// squares" of Figure 1 — with ranking sanity metrics (hit rate over
// held-out favourites, MAE).
//
//   ./recommender [--scale=0.005] [--epochs=12] [--top=5] [--users=3]
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <vector>

#include "core/hccmf.hpp"
#include "mf/model_io.hpp"
#include "mf/recommend.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hcc;
  const util::Cli cli(argc, argv);

  const data::DatasetSpec spec =
      data::movielens20m_spec().scaled(cli.get("scale", 0.005));
  data::GeneratorConfig gen;
  gen.seed = 7;
  const data::RatingMatrix full = data::generate(spec, gen);
  util::Rng rng(8);
  const auto [train, test] = data::train_test_split(full, 0.15, rng);

  core::HccMfConfig config;
  config.sgd = mf::SgdConfig::for_dataset(spec.reg_lambda, 0.01f, 16);
  config.sgd.epochs =
      static_cast<std::uint32_t>(cli.get("epochs", std::int64_t{12}));
  config.platform = sim::paper_workstation_hetero();
  for (auto& w : config.platform.workers) w.epoch_overhead_s = 0.0;
  config.dataset_name = spec.name;

  std::cout << "training " << spec.name << " (" << train.nnz()
            << " ratings) with HCC-MF...\n";
  const core::TrainReport report = core::HccMf(config).train(train, &test);
  std::cout << "final test RMSE "
            << util::Table::num(report.epochs.back().test_rmse, 4) << " / MAE "
            << util::Table::num(mf::mae(*report.model, test), 4) << " after "
            << config.sgd.epochs << " epochs ("
            << util::Table::num(report.total_virtual_s, 3)
            << "s on the virtual workstation)\n";

  // Persist and reload, as a serving process would.
  const std::string model_path = "/tmp/hccmf_recommender_model.bin";
  if (!mf::save_model(*report.model, model_path)) {
    std::cerr << "cannot write " << model_path << "\n";
    return 1;
  }
  const mf::FactorModel model = mf::load_model(model_path);
  std::filesystem::remove(model_path);
  std::cout << "model round-tripped through " << model_path << " ("
            << model.users() << " users x " << model.items() << " items, k="
            << model.k() << ")\n";

  // Ranking quality: hit rate of held-out favourites in the top-N.
  const std::size_t n_top = cli.get("top", std::int64_t{5});
  const double hr = mf::hit_rate_at_n(model, train, test, 4 * n_top, 4.0f);
  const double chance =
      static_cast<double>(4 * n_top) / static_cast<double>(model.items());
  std::cout << "hit-rate@" << 4 * n_top << " for ratings >= 4.0: "
            << util::Table::num(100 * hr, 1) << "% (chance: "
            << util::Table::num(100 * chance, 1) << "%)\n\n";

  // Show recommendations for the most active users.
  const mf::SeenIndex seen(train);
  const auto counts = train.row_counts();
  std::vector<std::uint32_t> users(train.rows());
  for (std::uint32_t u = 0; u < train.rows(); ++u) users[u] = u;
  std::sort(users.begin(), users.end(), [&](std::uint32_t a, std::uint32_t b) {
    return counts[a] > counts[b];
  });

  const std::size_t n_users = cli.get("users", std::int64_t{3});
  for (std::size_t idx = 0; idx < n_users && idx < users.size(); ++idx) {
    const std::uint32_t user = users[idx];
    std::cout << "user " << user << " (" << counts[user]
              << " ratings in train):\n";
    util::Table table({"rank", "item", "predicted rating"});
    const auto recs = mf::top_n(model, seen, user, n_top);
    for (std::size_t r = 0; r < recs.size(); ++r) {
      table.add_row({std::to_string(r + 1), std::to_string(recs[r].item),
                     util::Table::num(recs[r].score, 2)});
    }
    table.print(std::cout);
  }
  return 0;
}
