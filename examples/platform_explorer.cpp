// Platform explorer: what-if analysis over virtual multi-CPU/GPU platforms.
//
// For each candidate platform and each paper dataset, plans the partition
// (showing the DataManager's reasoning: grid, payload, DP1 vs DP2 via the
// lambda rule) and simulates a 20-epoch run, reporting time, computing
// power, utilization and price/performance — the Figure 3 style trade-off
// a user would consult before buying hardware.
//
//   ./platform_explorer [--dataset=netflix] [--epochs=20]
#include <iostream>

#include "core/hccmf.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hcc;
  const util::Cli cli(argc, argv);
  const std::string dataset_name = cli.get("dataset", std::string("netflix"));
  const std::uint32_t epochs =
      static_cast<std::uint32_t>(cli.get("epochs", std::int64_t{20}));

  const data::DatasetSpec spec = data::dataset_by_name(dataset_name);
  const sim::DatasetShape shape{spec.name, spec.m, spec.n, spec.nnz, 128};

  const std::vector<sim::PlatformSpec> candidates = {
      sim::single_device(sim::xeon_6242_24t()),
      sim::single_device(sim::rtx_2080()),
      sim::single_device(sim::rtx_2080s()),
      sim::single_device(sim::tesla_v100()),
      sim::combo("6242-2080", {"6242-24T", "2080"}),
      sim::combo("6242-2080S", {"6242-24T", "2080S"}),
      sim::combo("2080-2080S", {"2080S", "2080"}),
      sim::paper_workstation_hetero(),
  };

  std::cout << "dataset " << spec.name << ": " << spec.m << " x " << spec.n
            << ", nnz " << spec.nnz << ", nnz/(m+n) "
            << util::Table::num(spec.nnz_per_dim(), 1) << "\n\n";

  util::Table table({"platform", "strategy", "20-epoch time (s)",
                     "Mupdates/s", "utilization", "price ($)",
                     "Kupdates/s/$"});
  for (const auto& platform : candidates) {
    core::HccMfConfig config;
    config.sgd.epochs = epochs;
    config.platform = platform;
    config.dataset_name = spec.name;
    core::HccMf framework(config);
    const core::TrainReport report = framework.simulate(shape);
    const double price = platform.total_price_usd();
    table.add_row({platform.name,
                   core::partition_strategy_name(report.plan.chosen),
                   util::Table::num(report.total_virtual_s, 3),
                   util::Table::num(report.updates_per_s / 1e6, 0),
                   util::Table::num(100 * report.utilization, 1) + "%",
                   util::Table::num(price, 0),
                   util::Table::num(report.updates_per_s / price / 1e3, 0)});
  }
  table.print(std::cout);

  std::cout << "\nDataManager reasoning for the full workstation:\n  "
            << core::HccMf([&] {
                 core::HccMfConfig c;
                 c.platform = sim::paper_workstation_hetero();
                 c.dataset_name = spec.name;
                 return c;
               }())
                   .plan_for(shape)
                   .explanation
            << "\n";
  return 0;
}
