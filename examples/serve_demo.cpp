// Serve demo: online top-K recommendation concurrent with training.
//
// Trains HCC-MF on a synthetic Netflix-shaped dataset in parallel execution
// mode while N reader threads hammer the serving tier: every epoch the
// trainer publishes an immutable snapshot of the factors (RCU-style — the
// readers never take a training lock), and each reader runs top-10 queries
// for random users against whatever snapshot is current, with seen-item
// filtering and SIMD-batched scoring (docs/serving.md).
//
// After training, one cold-start user is folded in from a handful of
// ratings (closed-form ridge solve against the published item factors) and
// served off the same snapshot.
//
// The serve.* metrics — query count, latency histogram, qps / p50 / p99
// gauges, snapshot age, store bytes — land in --metrics-out's JSON dump;
// CI greps that file to assert the demo actually served traffic.
//
//   ./serve_demo [--scale=0.004] [--epochs=8] [--k=16] [--readers=2]
//                [--publish-every=1] [--store=fp32|fp16|int8]
//                [--metrics-out=metrics.json]
#include <atomic>
#include <chrono>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "hccmf.hpp"
#include "serve/metrics.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hcc;
  const util::Cli cli(argc, argv);
  const int readers = static_cast<int>(cli.get("readers", std::int64_t{2}));
  const std::string metrics_out = cli.get("metrics-out", std::string());

  // 1. Data: scaled-down Netflix shape, 90/10 train/test split.
  const double scale = cli.get("scale", 0.004);
  const data::DatasetSpec spec = data::netflix_spec().scaled(scale);
  data::GeneratorConfig gen;
  gen.seed = 42;
  const data::RatingMatrix full = data::generate(spec, gen);
  util::Rng rng(43);
  const auto [train, test] = data::train_test_split(full, 0.1, rng);
  const mf::SeenIndex seen(train);
  std::cout << "dataset: " << spec.name << "  " << spec.m << " x " << spec.n
            << ", " << train.nnz() << " train ratings\n";

  // 2. Training config: parallel executor, per-epoch snapshot publishes.
  core::HccMfConfig config;
  config.sgd = mf::SgdConfig::for_dataset(
      spec.reg_lambda, /*lr=*/0.01f,
      static_cast<std::uint32_t>(cli.get("k", std::int64_t{16})));
  config.sgd.epochs =
      static_cast<std::uint32_t>(cli.get("epochs", std::int64_t{8}));
  config.platform = sim::paper_workstation_hetero();
  for (auto& w : config.platform.workers) w.epoch_overhead_s = 0.0;
  config.dataset_name = spec.name;
  config.exec.mode = core::ExecMode::kParallel;
  config.publish_every = static_cast<std::uint32_t>(
      cli.get("publish-every", std::int64_t{1}));
  const std::string store_name = cli.get("store", std::string("fp16"));
  if (!serve::parse_store_kind(store_name, &config.publish_store)) {
    std::cerr << "unknown --store '" << store_name
              << "' (expected fp32, fp16 or int8)\n";
    return 1;
  }
  config.snapshots = std::make_shared<serve::SnapshotRegistry>();

  // 3. Reader pool: each thread owns a TopKEngine (engines are not
  //    thread-safe; snapshots are) and queries until training finishes.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> answered{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < readers; ++t) {
    pool.emplace_back([&, t] {
      serve::TopKEngine engine;  // record_metrics on: feeds serve.*
      util::Rng reader_rng(50 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snapshot = config.snapshots->current();
        if (snapshot == nullptr) continue;  // nothing published yet
        const auto user = static_cast<std::uint32_t>(
            reader_rng.uniform_u64(snapshot->store.users()));
        if (!engine.top_k(*snapshot, user, 10, &seen).empty()) {
          answered.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // 4. Train while serving.
  const auto t0 = std::chrono::steady_clock::now();
  core::HccMf framework(config);
  const core::TrainReport report = framework.train(train, &test);
  const double train_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : pool) th.join();
  serve::update_latency_gauges(train_s);

  const auto snapshot = config.snapshots->current();
  std::cout << "\ntrained " << config.sgd.epochs << " epochs, final RMSE "
            << util::Table::num(report.epochs.back().test_rmse, 4) << "\n"
            << "served " << answered.load() << " queries from " << readers
            << " readers while training ("
            << util::Table::num(static_cast<double>(answered.load()) / train_s,
                                0)
            << " qps), " << config.snapshots->published()
            << " snapshots published (" << store_name << ", "
            << util::Table::num(
                   static_cast<double>(snapshot->store.store_bytes()) / 1e6, 2)
            << " MB)\n";

  // 5. Cold-start: fold a brand-new user in from five ratings and serve
  //    them off the same snapshot (no retraining).
  std::vector<serve::FoldInRating> cold;
  for (std::uint32_t i = 0; i < 5; ++i) {
    cold.push_back({i * 7, 4.5f});
  }
  const auto row =
      serve::fold_in(snapshot->store, cold, config.sgd.reg_p);
  serve::TopKEngine engine;
  std::cout << "cold-start user (5 ratings folded in), top-5:";
  std::vector<std::uint32_t> rated;
  for (const auto& r : cold) rated.push_back(r.item);
  for (const auto& rec : engine.top_k_row(*snapshot, row.data(), 5, rated)) {
    std::cout << "  #" << rec.item << "=" << util::Table::num(rec.score, 2);
  }
  std::cout << '\n';

  if (!metrics_out.empty()) {
    if (!obs::write_metrics_json(obs::registry(), metrics_out)) {
      std::cerr << "failed to write metrics to " << metrics_out << '\n';
      return 1;
    }
    std::cout << "metrics: " << metrics_out << '\n';
  }
  return 0;
}
