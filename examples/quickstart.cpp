// Quickstart: train an SGD-based MF model with HCC-MF on a synthetic
// Netflix-shaped dataset, using every framework feature at its default —
// auto partition strategy, Q-only + FP16 communication, the paper's virtual
// multi-CPU/GPU workstation.
//
// With --trace-out the instrumented runtime records every pull / compute /
// push / sync span and writes a chrome://tracing JSON; --metrics-out dumps
// the metrics registry (per-worker phase histograms, wire counters, cost-
// model drift gauges) as JSON.
//
// --fault-plan scripts failures ("kill:w1@e3;stall:w0@e2x4;corrupt:w2@e1",
// see fault/plan.hpp; HCCMF_FAULT_PLAN works too) and --checkpoint-dir
// persists epoch-boundary checkpoints for crash recovery.
//
// --transport picks the pull/push link ("in-process" default, "sim-latency"
// for a calibrated link under a reliable session, "chaos" to run the fault
// plan's drop/dup/reorder/delay/disconnect events); --link names the
// sim::link_by_name preset, --heartbeat-ms / --timeout-ms /
// --reconnect-budget tune the session timers (timeout 0 derives
// max(4 x RTT, 3 x heartbeat) from the cost model).
//
// --exec-mode picks how the functional epoch runs (see
// docs/parallel_execution.md): "serial" (default, deterministic) or
// "parallel" (per-worker pipeline threads against a striped server merge;
// --stripes overrides the auto stripe count).
//
// --schedule picks each worker's visit order over its rating slice (see
// docs/locality.md): "asis" (default, bit-identical legacy order),
// "shuffled" (seeded per-epoch permutation) or "tiled" (cache-sized 2-D
// blocks; --tile-kb sets the per-tile working-set budget).  --pin pins the
// parallel executor's worker threads round-robin across CPUs (NUMA
// first-touch placement).
//
// --codec picks the wire encoding: "fp32", "fp16" (default), "int8" or
// "2bit" — the latter two are error-feedback quantizers (docs/
// observability.md lists their comm.codec.* metrics; 2bit compresses the
// push stream only and pulls at fp16).  Works with any --transport/--link.
//
// --pipeline-depth=N streams each pull/push as N row-aligned chunks in
// flight (comm/pipeline.hpp): chunk i's encode overlaps chunk i-1's wire
// transfer and decode-side commit.  1 (default) is the legacy single-shot
// path, bit-identical on the wire; deeper windows decode to the same
// floats, so the trajectory is unchanged either way.
//
// --publish-every=N publishes an immutable serving snapshot of the model
// every N epochs (docs/serving.md); --store picks its encoding (fp32,
// fp16 or int8).  The final model is always re-published after training.
//
//   ./quickstart [--scale=0.002] [--epochs=10] [--k=16] [--verbose]
//                [--publish-every=N] [--store=fp32|fp16|int8]
//                [--trace-out=trace.json] [--metrics-out=metrics.json]
//                [--codec=fp32|fp16|int8|2bit] [--pipeline-depth=N]
//                [--fault-plan=SPEC] [--checkpoint-dir=DIR]
//                [--transport=in-process|sim-latency|chaos] [--link=NAME]
//                [--heartbeat-ms=MS] [--timeout-ms=MS] [--reconnect-budget=N]
//                [--exec-mode=serial|parallel] [--stripes=N]
//                [--steal] [--chunk=N] [--real-stalls]
//                [--schedule=asis|shuffled|tiled] [--tile-kb=KB] [--pin]
#include <cstdio>
#include <iostream>

#include "hccmf.hpp"  // the umbrella header: the whole public API
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hcc;
  const util::Cli cli(argc, argv);
  if (cli.get("verbose", false)) {
    util::set_log_level(util::LogLevel::kInfo);
  }
  const std::string trace_out = cli.get("trace-out", std::string());
  const std::string metrics_out = cli.get("metrics-out", std::string());
  if (!trace_out.empty()) obs::trace().set_enabled(true);

  // 1. A rating matrix.  Real applications call data::load_text(); here we
  //    synthesize one with the Netflix dataset's shape, scaled down.
  const double scale = cli.get("scale", 0.002);
  const data::DatasetSpec spec = data::netflix_spec().scaled(scale);
  data::GeneratorConfig gen;
  gen.seed = 42;
  const data::RatingMatrix full = data::generate(spec, gen);
  util::Rng rng(43);
  const auto [train, test] = data::train_test_split(full, 0.1, rng);
  std::cout << "dataset: " << spec.name << "  " << spec.m << " x " << spec.n
            << ", " << train.nnz() << " train / " << test.nnz()
            << " test ratings\n";

  // 2. Configure the framework.
  core::HccMfConfig config;
  config.sgd = mf::SgdConfig::for_dataset(
      spec.reg_lambda, /*lr=*/0.01f,
      static_cast<std::uint32_t>(cli.get("k", std::int64_t{16})));
  config.sgd.epochs = static_cast<std::uint32_t>(
      cli.get("epochs", std::int64_t{10}));
  config.platform = sim::paper_workstation_hetero();
  // This demo trains a heavily scaled-down dataset whose epochs last
  // microseconds; drop the fixed per-epoch management cost so the virtual
  // timings reflect the data actually processed.
  for (auto& w : config.platform.workers) w.epoch_overhead_s = 0.0;
  config.dataset_name = spec.name;

  // Fault tolerance: a scripted plan (CLI flag wins over HCCMF_FAULT_PLAN)
  // and/or a checkpoint directory arm the subsystem; absent both, training
  // is bit-identical to a build without it.
  const std::string fault_plan = cli.get("fault-plan", std::string());
  if (!fault_plan.empty()) {
    config.fault.plan = fault::FaultPlan::parse(fault_plan);
  } else {
    config.fault.plan = fault::plan_from_env();
  }
  config.fault.checkpoint_dir = cli.get("checkpoint-dir", std::string());

  // Wire codec (docs/observability.md): fp16 is the paper's Strategy 2;
  // int8 / 2bit are the error-feedback quantizers layered on top of it.
  const std::string codec_name = cli.get("codec", std::string("auto"));
  if (!comm::parse_codec_kind(codec_name, config.comm.codec)) {
    std::cerr << "unknown --codec '" << codec_name
              << "' (expected fp32, fp16, int8 or 2bit)\n";
    return 1;
  }

  // Chunked streaming (comm/pipeline.hpp): how many row-aligned chunks of
  // one transfer may be in flight at once.  1 = legacy single-shot.
  config.comm.pipeline_depth = static_cast<std::uint32_t>(
      cli.get("pipeline-depth", std::int64_t{config.comm.pipeline_depth}));

  // Elastic transport (docs/fault_tolerance.md): what kind of link the
  // pull/push wire is.  "in-process" (default) keeps the legacy backends
  // bit-identical; "sim-latency" interposes a reliable session over a
  // calibrated link; "chaos" additionally runs the fault plan's transport
  // events (drop/dup/reorder/delay/disconnect) against each worker's link.
  config.comm.transport.kind = comm::transport_kind_by_name(
      cli.get("transport", std::string("in-process")));
  config.comm.transport.link = cli.get("link", std::string("100GbE"));
  config.comm.transport.heartbeat_ms =
      cli.get("heartbeat-ms", config.comm.transport.heartbeat_ms);
  config.comm.transport.timeout_ms =
      cli.get("timeout-ms", config.comm.transport.timeout_ms);
  config.comm.transport.reconnect_budget = static_cast<std::uint32_t>(
      cli.get("reconnect-budget",
              std::int64_t{config.comm.transport.reconnect_budget}));

  // Execution mode: serial (deterministic legacy loop) or parallel
  // (per-worker pipeline threads + striped server merge).
  config.exec.mode =
      core::parse_exec_mode(cli.get("exec-mode", std::string("serial")));
  config.exec.stripes =
      static_cast<std::uint32_t>(cli.get("stripes", std::int64_t{0}));
  config.exec.pin_threads = cli.get("pin", false);

  // Work stealing (parallel mode only): chunk the rating order onto
  // per-worker deques so drained workers help stragglers mid-epoch.
  // --chunk overrides the auto chunk size (ratings per chunk);
  // --real-stalls makes scripted stall:* events actually sleep the compute
  // thread, so stealing has a wall-clock straggler to recover from.
  config.exec.steal = cli.get("steal", false);
  config.exec.chunk_ratings =
      static_cast<std::uint32_t>(cli.get("chunk", std::int64_t{0}));
  config.fault.real_stalls = cli.get("real-stalls", false);

  // Cache-aware rating schedule (docs/locality.md): visit order over each
  // worker's slice, and the tile working-set budget under "tiled".
  config.schedule.policy =
      data::parse_schedule(cli.get("schedule", std::string("asis")));
  config.schedule.tile_kb = static_cast<std::uint32_t>(
      cli.get("tile-kb", std::int64_t{config.schedule.tile_kb}));

  // Online serving (docs/serving.md): publish read-only model snapshots at
  // an epoch cadence; concurrent readers query them via serve::TopKEngine
  // without ever touching the training locks.
  config.publish_every = static_cast<std::uint32_t>(
      cli.get("publish-every", std::int64_t{0}));
  const std::string store_name = cli.get("store", std::string("fp32"));
  if (!serve::parse_store_kind(store_name, &config.publish_store)) {
    std::cerr << "unknown --store '" << store_name
              << "' (expected fp32, fp16 or int8)\n";
    return 1;
  }
  if (config.publish_every > 0) {
    config.snapshots = std::make_shared<serve::SnapshotRegistry>();
  }

  // 3. Train.
  core::HccMf framework(config);
  const core::TrainReport report = framework.train(train, &test);

  // 4. Inspect the result.
  std::cout << "\nplan: " << report.plan.explanation << "\n\n";
  util::Table table({"epoch", "test RMSE", "virtual epoch (s)", "cumulative (s)"});
  for (const auto& e : report.epochs) {
    table.add_row({std::to_string(e.epoch), util::Table::num(e.test_rmse, 4),
                   util::Table::num(e.virtual_s, 6),
                   util::Table::num(e.cumulative_virtual_s, 6)});
  }
  table.print(std::cout);

  std::cout << "\ncomputing power: "
            << util::Table::num(report.updates_per_s / 1e6, 1)
            << " M updates/s (" << util::Table::num(100 * report.utilization, 1)
            << "% of the platform's ideal)\n";
  std::cout << "wire traffic: "
            << util::Table::num(
                   static_cast<double>(report.comm_totals.wire_bytes) / 1e6, 2)
            << " MB in " << report.comm_totals.copies << " transfers\n";

  // Achieved codec compression over the whole run: raw fp32 bytes handed to
  // encode() vs bytes that actually hit the wire (keyframes included, so
  // this is the honest end-to-end ratio, not the steady-state one).
  {
    auto& reg = obs::registry();
    const double raw =
        static_cast<double>(reg.counter("comm.codec.raw_bytes").value());
    const double wire =
        static_cast<double>(reg.counter("comm.codec.wire_bytes").value());
    if (wire > 0.0) {
      std::cout << "codec (" << comm::codec_kind_name(
                       comm::effective_codec(config.comm))
                << "): " << util::Table::num(raw / 1e6, 2) << " MB raw -> "
                << util::Table::num(wire / 1e6, 2) << " MB encoded ("
                << util::Table::num(raw / wire, 2) << "x compression)\n";
    }
    // Streaming-pipeline overlap: how much codec + commit work hid under
    // the wire.  overlap_ratio ~ 1 means serial (depth 1); -> 2 means the
    // encode/commit stages fully overlapped the transfers.
    const double chunks = reg.counter("comm.pipeline.chunks").value();
    if (config.comm.pipeline_depth > 1 && chunks > 0.0) {
      std::cout << "pipeline (depth " << config.comm.pipeline_depth
                << "): " << static_cast<std::uint64_t>(chunks)
                << " chunks, peak "
                << static_cast<std::uint64_t>(
                       reg.gauge("comm.pipeline.inflight_peak").value())
                << " in flight, overlap ratio "
                << util::Table::num(
                       reg.gauge("comm.pipeline.overlap_ratio").value(), 2)
                << "\n";
    }
  }

  const std::string drift = core::format_drift_table(report);
  if (!drift.empty()) std::cout << '\n' << drift;

  if (config.snapshots != nullptr) {
    const auto snapshot = config.snapshots->current();
    std::cout << "\nserving: " << config.snapshots->published()
              << " snapshots published (" << store_name << ", "
              << util::Table::num(
                     static_cast<double>(snapshot->store.store_bytes()) / 1e6,
                     2)
              << " MB); top-5 for user 0:";
    serve::TopKEngine engine;
    const mf::SeenIndex seen(train);
    for (const auto& rec : engine.top_k(*snapshot, 0, 5, &seen)) {
      std::cout << "  #" << rec.item << "="
                << util::Table::num(rec.score, 2);
    }
    std::cout << '\n';
  }

  if (config.fault.enabled()) {
    const core::FaultSummary& f = report.fault;
    std::cout << "\nfault tolerance: " << f.injected << " injected, "
              << f.retries << " retries, " << f.recoveries
              << " recoveries (" << util::Table::num(f.recovery_wall_s, 4)
              << " s), " << f.divergence_rollbacks << " rollbacks, "
              << f.stragglers << " straggler flags\n";
    if (!f.dead_workers.empty()) {
      std::cout << "dead workers:";
      for (const auto w : f.dead_workers) std::cout << " w" << w;
      std::cout << "  (rows redistributed to survivors)\n";
    }
  }

  if (config.comm.transport.kind != comm::TransportKind::kInProcess) {
    auto& reg = obs::registry();
    std::cout << "transport ("
              << comm::transport_kind_name(config.comm.transport.kind)
              << " over " << config.comm.transport.link << "): "
              << reg.counter("transport.frames").value() << " frames, "
              << reg.counter("transport.retransmits").value()
              << " retransmits, " << reg.counter("transport.reconnects").value()
              << " reconnects, " << reg.counter("transport.dup_discards").value()
              << " dups discarded, " << reg.counter("transport.drops").value()
              << " dropped in flight\n";
  }

  if (!trace_out.empty()) {
    if (obs::write_chrome_trace(obs::trace(), trace_out)) {
      std::cout << "\ntrace: " << obs::trace().size() << " spans -> "
                << trace_out << " (open in chrome://tracing)\n";
    } else {
      std::cerr << "failed to write trace to " << trace_out << '\n';
      return 1;
    }
  }
  if (!metrics_out.empty()) {
    if (obs::write_metrics_json(obs::registry(), metrics_out)) {
      std::cout << "metrics: " << metrics_out << '\n';
    } else {
      std::cerr << "failed to write metrics to " << metrics_out << '\n';
      return 1;
    }
  }
  return 0;
}
