// Hierarchical training across a virtual cluster (extension example).
//
// Trains a synthetic Netflix-shaped dataset on 1..N virtual workstations
// with the two-level HCC (see src/cluster/), printing per-global-epoch RMSE
// and the timing decomposition: node compute vs network vs global sync.
//
// --exec-mode=parallel runs each node's pull/train/push pipeline on its own
// thread against a striped global server (the functional analogue of real
// cluster nodes working concurrently; see docs/parallel_execution.md).
//
// --schedule/--tile-kb pick each node's visit order over its slice (see
// docs/locality.md); --pin pins the parallel executor's node threads
// round-robin across CPUs.
//
// --fault-plan arms elastic membership (docs/fault_tolerance.md): kill:w<N>
// events address *nodes*, join:w<N>@e<E> re-admits one mid-run, and with
// --transport=chaos the plan's drop/dup/reorder/delay/disconnect events
// drive each node's link to the global server.  --link picks the
// sim::link_by_name preset, --heartbeat-ms / --timeout-ms /
// --reconnect-budget tune the session timers.
//
//   ./cluster_trainer [--nodes=3] [--scale=0.002] [--epochs=8]
//                     [--local_epochs=1] [--network=100g|10g|ib]
//                     [--codec=fp32|fp16|int8|2bit] [--pipeline-depth=N]
//                     [--fault-plan=SPEC] [--checkpoint-dir=DIR]
//                     [--transport=in-process|sim-latency|chaos] [--link=NAME]
//                     [--heartbeat-ms=MS] [--timeout-ms=MS]
//                     [--reconnect-budget=N]
//                     [--exec-mode=serial|parallel] [--stripes=N]
//                     [--schedule=asis|shuffled|tiled] [--tile-kb=KB] [--pin]
//                     [--trace-out=trace.json] [--metrics-out=metrics.json]
#include <iostream>

#include "cluster/hierarchical.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hcc;
  const util::Cli cli(argc, argv);
  const std::string trace_out = cli.get("trace-out", std::string());
  const std::string metrics_out = cli.get("metrics-out", std::string());
  if (!trace_out.empty()) obs::trace().set_enabled(true);

  const std::size_t nodes =
      static_cast<std::size_t>(cli.get("nodes", std::int64_t{3}));
  const std::string net_name = cli.get("network", std::string("100g"));
  const cluster::InterconnectSpec net =
      net_name == "ib"    ? cluster::infiniband_hdr()
      : net_name == "10g" ? cluster::ethernet_10g()
                          : cluster::ethernet_100g();

  const data::DatasetSpec spec =
      data::netflix_spec().scaled(cli.get("scale", 0.002));
  data::GeneratorConfig gen;
  gen.seed = 42;
  const data::RatingMatrix full = data::generate(spec, gen);
  util::Rng rng(43);
  const auto [train, test] = data::train_test_split(full, 0.1, rng);

  cluster::HierarchicalConfig config;
  config.sgd = mf::SgdConfig::for_dataset(spec.reg_lambda, 0.01f, 16);
  config.sgd.epochs =
      static_cast<std::uint32_t>(cli.get("epochs", std::int64_t{8}));
  config.local_epochs =
      static_cast<std::uint32_t>(cli.get("local_epochs", std::int64_t{1}));
  config.cluster = cluster::workstation_cluster(nodes, net);
  config.dataset_name = spec.name;
  config.exec.mode =
      core::parse_exec_mode(cli.get("exec-mode", std::string("serial")));
  config.exec.stripes =
      static_cast<std::uint32_t>(cli.get("stripes", std::int64_t{0}));
  config.exec.pin_threads = cli.get("pin", false);
  // Work stealing across nodes (parallel mode, local_epochs == 1): drained
  // nodes take chunks from the slowest node's queue mid-epoch.
  config.exec.steal = cli.get("steal", false);
  config.exec.chunk_ratings =
      static_cast<std::uint32_t>(cli.get("chunk", std::int64_t{0}));
  config.schedule.policy =
      data::parse_schedule(cli.get("schedule", std::string("asis")));
  config.schedule.tile_kb = static_cast<std::uint32_t>(
      cli.get("tile-kb", std::int64_t{config.schedule.tile_kb}));
  for (auto& node : config.cluster.nodes) {
    for (auto& w : node.platform.workers) w.epoch_overhead_s = 0.0;
  }

  // Elastic membership + transport faults at cluster scope.
  const std::string fault_plan = cli.get("fault-plan", std::string());
  if (!fault_plan.empty()) {
    config.fault.plan = fault::FaultPlan::parse(fault_plan);
  } else {
    config.fault.plan = fault::plan_from_env();
  }
  config.fault.checkpoint_dir = cli.get("checkpoint-dir", std::string());
  // Wire codec: fp16 (default), or the error-feedback int8/2bit quantizers
  // (2bit compresses the node push stream only; pulls ride fp16).
  const std::string codec_name = cli.get("codec", std::string("auto"));
  if (!comm::parse_codec_kind(codec_name, config.comm.codec)) {
    std::cerr << "unknown --codec '" << codec_name
              << "' (expected fp32, fp16, int8 or 2bit)\n";
    return 1;
  }
  // Chunked streaming on every node's pull/push (comm/pipeline.hpp);
  // 1 = legacy single-shot transfers.
  config.comm.pipeline_depth = static_cast<std::uint32_t>(
      cli.get("pipeline-depth", std::int64_t{config.comm.pipeline_depth}));
  config.comm.transport.kind = comm::transport_kind_by_name(
      cli.get("transport", std::string("in-process")));
  config.comm.transport.link = cli.get("link", std::string("100GbE"));
  config.comm.transport.heartbeat_ms =
      cli.get("heartbeat-ms", config.comm.transport.heartbeat_ms);
  config.comm.transport.timeout_ms =
      cli.get("timeout-ms", config.comm.transport.timeout_ms);
  config.comm.transport.reconnect_budget = static_cast<std::uint32_t>(
      cli.get("reconnect-budget",
              std::int64_t{config.comm.transport.reconnect_budget}));

  std::cout << "cluster: " << config.cluster.name << " ("
            << config.cluster.total_workers() << " devices over " << nodes
            << " nodes)\ndataset: " << spec.name << ", " << train.nnz()
            << " train ratings\n\n";

  cluster::HierarchicalHcc hcc(config);
  const cluster::ClusterReport report = hcc.train(train, &test);

  util::Table table({"global epoch", "test RMSE", "node max (ms)",
                     "network (ms)", "global sync (ms)", "total (ms)"});
  for (std::size_t e = 0; e < report.epochs.size(); ++e) {
    const auto& t = report.epochs[e];
    table.add_row({std::to_string(e), util::Table::num(report.test_rmse[e], 4),
                   util::Table::num(1e3 * t.node_max_s, 3),
                   util::Table::num(1e3 * t.network_s, 3),
                   util::Table::num(1e3 * t.global_sync_s, 3),
                   util::Table::num(1e3 * t.total_s, 3)});
  }
  table.print(std::cout);

  std::cout << "\nnode shares:";
  for (double s : report.node_shares) {
    std::cout << " " << util::Table::num(s, 3);
  }
  std::cout << "\ncomputing power: "
            << util::Table::num(report.updates_per_s / 1e6, 1)
            << " Mupdates/s, utilization "
            << util::Table::num(100 * report.utilization, 1) << "%\n";

  if (!report.dead_nodes.empty() || !report.joined_nodes.empty()) {
    std::cout << "membership: " << report.recoveries << " recoveries;";
    for (const auto n : report.dead_nodes) std::cout << " dead:n" << n;
    for (const auto n : report.joined_nodes) std::cout << " joined:n" << n;
    std::cout << '\n';
  }
  if (config.comm.transport.kind != comm::TransportKind::kInProcess) {
    auto& reg = obs::registry();
    std::cout << "transport ("
              << comm::transport_kind_name(config.comm.transport.kind)
              << " over " << config.comm.transport.link << "): "
              << reg.counter("transport.frames").value() << " frames, "
              << reg.counter("transport.retransmits").value()
              << " retransmits, " << reg.counter("transport.reconnects").value()
              << " reconnects\n";
  }

  if (!trace_out.empty()) {
    if (obs::write_chrome_trace(obs::trace(), trace_out)) {
      std::cout << "trace: " << obs::trace().size() << " spans -> "
                << trace_out << " (open in chrome://tracing)\n";
    } else {
      std::cerr << "failed to write trace to " << trace_out << '\n';
      return 1;
    }
  }
  if (!metrics_out.empty()) {
    if (obs::write_metrics_json(obs::registry(), metrics_out)) {
      std::cout << "metrics: " << metrics_out << '\n';
    } else {
      std::cerr << "failed to write metrics to " << metrics_out << '\n';
      return 1;
    }
  }
  return 0;
}
