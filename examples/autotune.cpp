// Auto-tuning demo: for each paper dataset, let the tuner pick the
// communication configuration and the DataManager pick the partition, then
// show what a run with the tuned configuration looks like vs the defaults.
//
//   ./autotune [--dataset=all|netflix|r1|r1star|r2|movielens]
#include <iostream>

#include "core/report_format.hpp"
#include "core/tuner.hpp"
#include "hccmf.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hcc;
  const util::Cli cli(argc, argv);
  const std::string which = cli.get("dataset", std::string("all"));

  util::Table table({"dataset", "default epoch (s)", "tuned epoch (s)",
                     "gain", "tuned configuration"});
  for (const auto& spec : data::paper_datasets()) {
    if (which != "all" && which != spec.name) continue;
    const sim::DatasetShape shape{spec.name, spec.m, spec.n, spec.nnz, 128};
    const auto platform = sim::paper_workstation_hetero();

    comm::CommConfig default_comm;
    core::DataManager default_mgr(platform, shape, default_comm);
    const double default_epoch =
        default_mgr.simulated_epoch_seconds(default_mgr.plan());

    const core::TuneResult tuned = core::tune_comm(platform, shape);
    table.add_row(
        {spec.name, util::Table::num(default_epoch, 4),
         util::Table::num(tuned.best.epoch_seconds, 4),
         util::Table::num(
             100.0 * (default_epoch - tuned.best.epoch_seconds) /
                 default_epoch,
             1) +
             "%",
         tuned.summary()});
  }
  table.print(std::cout);

  // Show a full tuned run on one dataset, via the report formatter.
  const std::string demo = which == "all" ? "movielens" : which;
  const data::DatasetSpec spec = data::dataset_by_name(demo);
  const core::TuneResult tuned = core::tune_comm(
      sim::paper_workstation_hetero(),
      {spec.name, spec.m, spec.n, spec.nnz, 128});

  core::HccMfConfig config;
  config.sgd.epochs = 20;
  config.comm = tuned.best.comm;
  config.manager.prune_unhelpful_workers = tuned.best.prune;
  config.platform = sim::paper_workstation_hetero();
  config.dataset_name = spec.name;
  const core::TrainReport report = core::HccMf(config).simulate(
      {spec.name, spec.m, spec.n, spec.nnz, 128});

  std::cout << "\ntuned 20-epoch run on " << demo << ":\n"
            << core::format_report(report);
  return 0;
}
