// Communication tuning: how each Section 3.4 strategy changes the epoch.
//
// Sweeps the 2^2 x {1,4} space of {payload reduction, FP16, streams} plus
// the COMM vs COMM-P backend choice for one dataset shape, printing the
// exposed communication time, total epoch time and the share of the epoch
// spent communicating — the analysis behind the paper's claim that
// nnz/(m+n) < 1e3 marks communication-bound datasets.
//
//   ./comm_tuning [--dataset=movielens] [--epochs=20]
#include <iostream>

#include "core/hccmf.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hcc;
  const util::Cli cli(argc, argv);
  const std::string dataset_name =
      cli.get("dataset", std::string("movielens"));
  const data::DatasetSpec spec = data::dataset_by_name(dataset_name);
  const sim::DatasetShape shape{spec.name, spec.m, spec.n, spec.nnz, 128};

  std::cout << "dataset " << spec.name << ", nnz/(m+n) = "
            << util::Table::num(spec.nnz_per_dim(), 1)
            << (spec.nnz_per_dim() < 1e3
                    ? "  (< 1e3: communication matters, Section 3.4)"
                    : "  (>= 1e3: compute-bound)")
            << "\n\n";

  struct Variant {
    std::string label;
    bool reduce;
    bool fp16;
    std::uint32_t streams;
    comm::BackendKind backend;
  };
  const std::vector<Variant> variants = {
      {"P&Q fp32 (no optimization)", false, false, 1, comm::BackendKind::kShm},
      {"Q-only (Strategy 1)", true, false, 1, comm::BackendKind::kShm},
      {"half-Q (Strategies 1+2)", true, true, 1, comm::BackendKind::kShm},
      {"half-Q + 4 streams (1+2+3)", true, true, 4, comm::BackendKind::kShm},
      {"P&Q over COMM-P (ps-lite)", false, false, 1,
       comm::BackendKind::kBroker},
      {"half-Q over COMM-P", true, true, 1, comm::BackendKind::kBroker},
  };

  const std::uint32_t epochs =
      static_cast<std::uint32_t>(cli.get("epochs", std::int64_t{20}));
  util::Table table({"configuration", "comm time (s)", "total (s)",
                     "comm share", "payload"});
  double baseline_total = 0.0;
  for (const auto& v : variants) {
    core::HccMfConfig config;
    config.sgd.epochs = epochs;
    config.platform = sim::paper_workstation_hetero();
    config.dataset_name = spec.name;
    config.comm.reduce_payload = v.reduce;
    config.comm.fp16 = v.fp16;
    config.comm.streams = v.streams;
    config.comm.backend = v.backend;
    const core::TrainReport report = core::HccMf(config).simulate(shape);
    if (baseline_total == 0.0) baseline_total = report.total_virtual_s;
    // comm_virtual_s sums over all workers; per-worker exposure relative to
    // the wall-clock epoch is the meaningful share.
    const double per_worker_comm =
        report.comm_virtual_s /
        static_cast<double>(config.platform.workers.size());
    table.add_row(
        {v.label, util::Table::num(report.comm_virtual_s, 4),
         util::Table::num(report.total_virtual_s, 4),
         util::Table::num(100 * per_worker_comm / report.total_virtual_s, 1) +
             "%",
         comm::payload_mode_name(comm::effective_mode(config.comm, shape))});
  }
  table.print(std::cout);
  std::cout << "\nTip: Strategy 3 helps exactly when payload reduction "
               "cannot (m ~ n); see Section 3.4 and Table 6.\n";
  return 0;
}
