// Micro-benchmarks (google-benchmark) for the hot paths of the library:
// the SGD update kernel, the FP16 codec, the COMM backends and the grid
// partitioner.  These quantify the host-side costs that the paper's design
// assumes are cheap (e.g. FP16 conversion "using AVX instructions and
// multi-threaded parallel acceleration").
#include <benchmark/benchmark.h>

#include <vector>

#include "comm/backend.hpp"
#include "comm/codec.hpp"
#include "data/datasets.hpp"
#include "data/grid.hpp"
#include "legacy_kernels.hpp"
#include "mf/kernels.hpp"
#include "mf/model.hpp"
#include "util/fp16.hpp"
#include "util/rng.hpp"

namespace {

using namespace hcc;

void BM_SgdUpdate(benchmark::State& state) {
  const std::uint32_t k = static_cast<std::uint32_t>(state.range(0));
  util::Rng rng(1);
  std::vector<float> p(k), q(k);
  for (auto& v : p) v = static_cast<float>(rng.uniform());
  for (auto& v : q) v = static_cast<float>(rng.uniform());
  float r = 4.0f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mf::sgd_update(p.data(), q.data(), k, r, 0.005f, 0.01f, 0.01f));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["flops/update"] = 7.0 * k;
}
BENCHMARK(BM_SgdUpdate)->Arg(8)->Arg(32)->Arg(128);

// The unrolled variant (the paper's footnote-1 vectorization, portable).
void BM_SgdUpdateX4(benchmark::State& state) {
  const std::uint32_t k = static_cast<std::uint32_t>(state.range(0));
  util::Rng rng(1);
  std::vector<float> p(k), q(k);
  for (auto& v : p) v = static_cast<float>(rng.uniform());
  for (auto& v : q) v = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bench::sgd_update_x4(p.data(), q.data(), k, 4.0f, 0.005f, 0.01f,
                             0.01f));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SgdUpdateX4)->Arg(8)->Arg(32)->Arg(128);

void BM_Fp16Encode(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  std::vector<float> src(n);
  for (auto& v : src) v = static_cast<float>(rng.normal(0.2, 0.1));
  std::vector<util::Half> dst(n);
  for (auto _ : state) {
    util::fp16_encode(src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n * 4);
}
BENCHMARK(BM_Fp16Encode)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_Fp16Decode(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  std::vector<util::Half> src(n);
  for (auto& v : src) {
    v = util::float_to_fp16(static_cast<float>(rng.normal(0.2, 0.1)));
  }
  std::vector<float> dst(n);
  for (auto _ : state) {
    util::fp16_decode(src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n * 2);
}
BENCHMARK(BM_Fp16Decode)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

template <typename Backend>
void BM_CommTransfer(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Backend backend;
  comm::Fp32Codec codec;
  util::Rng rng(4);
  std::vector<float> src(n);
  for (auto& v : src) v = static_cast<float>(rng.uniform());
  std::vector<float> dst(n);
  for (auto _ : state) {
    backend.transfer(src, dst, codec);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n * 4);
}
BENCHMARK(BM_CommTransfer<comm::ShmComm>)->Arg(1 << 14)->Arg(1 << 18);
BENCHMARK(BM_CommTransfer<comm::BrokerComm>)->Arg(1 << 14)->Arg(1 << 18);

void BM_GridPartition(benchmark::State& state) {
  const data::DatasetSpec spec = data::netflix_spec().scaled(0.01);
  data::GeneratorConfig gen;
  const data::RatingMatrix matrix = data::generate(spec, gen);
  const std::vector<double> fractions{0.4, 0.1, 0.35, 0.15};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        data::make_grid(matrix, data::GridKind::kRow, fractions));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          matrix.nnz());
}
BENCHMARK(BM_GridPartition);

void BM_DatasetGeneration(benchmark::State& state) {
  const data::DatasetSpec spec =
      data::movielens20m_spec().scaled(0.002);
  data::GeneratorConfig gen;
  for (auto _ : state) {
    gen.seed++;
    benchmark::DoNotOptimize(data::generate(spec, gen));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          spec.nnz);
}
BENCHMARK(BM_DatasetGeneration);

}  // namespace
