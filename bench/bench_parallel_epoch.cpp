// Concurrent epoch executor baseline: serial vs parallel wall clock.
//
// Runs the same functional training problem under ExecMode::kSerial (the
// legacy single-host-thread loop) and ExecMode::kParallel (per-worker
// pipeline threads + striped server merge, see docs/parallel_execution.md),
// then sweeps the stripe count to show where the merge stops serializing.
// `--json-out BENCH_parallel.json` persists the numbers as the repo's
// recorded baseline; CI re-runs this on a multi-core runner and asserts
// parallel beats serial.
//
// Flags: --json-out=PATH   machine-readable output (JsonReport format)
//        --scale=S         netflix scale factor (default 0.01)
//        --epochs=N        training epochs (default 4)
//        --k=K             latent dimension (default 32)
//        --workers=N       homogeneous CPU workers (default 4)
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/hccmf.hpp"
#include "fault/plan.hpp"
#include "data/datasets.hpp"
#include "obs/metrics.hpp"
#include "sim/platform.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace hcc;

namespace {

struct RunResult {
  std::string label;
  std::uint32_t stripes = 0;
  double wall_s = 0.0;
  double final_rmse = 0.0;
  double speedup = 1.0;             ///< serial wall / this wall
  std::uint64_t contention = 0;     ///< stripe try_lock misses during the run
  std::uint64_t stripe_locks = 0;   ///< stripe acquisitions during the run
  std::uint64_t steal_chunks = 0;   ///< chunks stolen during the run
};

RunResult run_once(const std::string& label, core::HccMfConfig config,
                   const data::RatingMatrix& train,
                   const data::RatingMatrix& test) {
  auto& reg = obs::registry();
  const std::uint64_t contention0 = reg.counter("server.stripe_contention").value();
  const std::uint64_t locks0 = reg.counter("server.stripe_locks").value();
  const std::uint64_t steals0 = reg.counter("steal.chunks").value();

  core::HccMf framework(std::move(config));
  const auto t0 = std::chrono::steady_clock::now();
  const core::TrainReport report = framework.train(train, &test);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  RunResult r;
  r.label = label;
  r.stripes = static_cast<std::uint32_t>(reg.gauge("exec.stripes").value());
  r.wall_s = wall;
  r.final_rmse = report.epochs.back().test_rmse;
  r.contention = reg.counter("server.stripe_contention").value() - contention0;
  r.stripe_locks = reg.counter("server.stripe_locks").value() - locks0;
  r.steal_chunks = reg.counter("steal.chunks").value() - steals0;
  return r;
}

/// A stall:w0@eNx4 event for every epoch: worker 0 really runs 4x slower
/// for the whole training (see FaultOptions::real_stalls).
fault::FaultPlan every_epoch_stall(std::uint32_t epochs) {
  std::string spec;
  for (std::uint32_t e = 0; e < epochs; ++e) {
    if (!spec.empty()) spec += ';';
    spec += "stall:w0@e" + std::to_string(e) + "x4";
  }
  return fault::FaultPlan::parse(spec);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const double scale = cli.get("scale", 0.01);
  const std::uint32_t epochs =
      static_cast<std::uint32_t>(cli.get("epochs", std::int64_t{4}));
  const std::uint32_t k =
      static_cast<std::uint32_t>(cli.get("k", std::int64_t{32}));
  const std::uint32_t n_workers =
      static_cast<std::uint32_t>(cli.get("workers", std::int64_t{4}));

  bench::banner("Concurrent epoch executor: serial vs parallel wall clock",
                "per-worker pipeline threads + striped server merge "
                "(docs/parallel_execution.md)");

  const data::DatasetSpec spec = data::netflix_spec().scaled(scale);
  data::GeneratorConfig gen;
  gen.seed = 5;
  gen.planted_rank = 4;
  const auto full = data::generate(spec, gen);
  util::Rng rng(6);
  const auto [train, test] = data::train_test_split(full, 0.1, rng);

  auto base_config = [&] {
    core::HccMfConfig config;
    config.sgd = mf::SgdConfig::for_dataset(spec.reg_lambda, 0.01f, k);
    config.sgd.epochs = epochs;
    config.comm.fp16 = false;
    config.platform = sim::combo(
        "bench-homog",
        std::vector<std::string>(n_workers, "6242-24T"));
    for (auto& w : config.platform.workers) w.epoch_overhead_s = 0.0;
    config.dataset_name = spec.name;
    return config;
  };

  bench::JsonReport report(argc, argv, "parallel_epoch");
  report.meta("dataset", spec.name);
  report.meta("nnz", static_cast<double>(train.nnz()));
  report.meta("k", static_cast<double>(k));
  report.meta("epochs", static_cast<double>(epochs));
  report.meta("workers", static_cast<double>(n_workers));
  report.meta("host_cpus",
              static_cast<double>(std::thread::hardware_concurrency()));

  std::vector<RunResult> results;

  results.push_back(run_once("serial", base_config(), train, test));
  {
    core::HccMfConfig config = base_config();
    config.exec.mode = core::ExecMode::kParallel;
    results.push_back(run_once("parallel (auto stripes)", std::move(config),
                               train, test));
  }
  for (const std::uint32_t stripes : {1u, 2u, 8u, 32u}) {
    core::HccMfConfig config = base_config();
    config.exec.mode = core::ExecMode::kParallel;
    config.exec.stripes = stripes;
    results.push_back(run_once("parallel s=" + std::to_string(stripes),
                               std::move(config), train, test));
  }

  const double serial_wall = results.front().wall_s;
  for (auto& r : results) {
    r.speedup = r.wall_s > 0.0 ? serial_wall / r.wall_s : 0.0;
  }

  util::Table table({"mode", "stripes", "wall s", "speedup vs serial",
                     "final rmse", "stripe locks", "contention"});
  for (const auto& r : results) {
    table.add_row({r.label, std::to_string(r.stripes),
                   util::Table::num(r.wall_s, 3),
                   util::Table::num(r.speedup, 2) + "x",
                   util::Table::num(r.final_rmse, 4),
                   std::to_string(r.stripe_locks),
                   std::to_string(r.contention)});
    report.add_row(
        "runs",
        {{"mode", bench::JsonReport::quote(r.label)},
         {"stripes", bench::JsonReport::number(static_cast<double>(r.stripes))},
         {"wall_s", bench::JsonReport::number(r.wall_s)},
         {"speedup_vs_serial", bench::JsonReport::number(r.speedup)},
         {"final_rmse", bench::JsonReport::number(r.final_rmse)},
         {"stripe_locks",
          bench::JsonReport::number(static_cast<double>(r.stripe_locks))},
         {"stripe_contention",
          bench::JsonReport::number(static_cast<double>(r.contention))}});
  }
  table.print(std::cout);

  // Straggler recovery: worker 0 really stalls 4x every epoch (the compute
  // thread sleeps, not just the virtual clock).  Without stealing the epoch
  // barrier waits for it; with stealing the drained workers take chunks off
  // its queue.  `recovered` = stalled no-steal wall / stalled steal wall.
  std::vector<RunResult> straggler;
  for (const bool steal : {false, true}) {
    core::HccMfConfig config = base_config();
    config.exec.mode = core::ExecMode::kParallel;
    config.exec.steal = steal;
    config.fault.plan = every_epoch_stall(epochs);
    config.fault.real_stalls = true;
    straggler.push_back(run_once(steal ? "straggler steal"
                                       : "straggler no-steal",
                                 std::move(config), train, test));
  }
  const double recovered = straggler[1].wall_s > 0.0
                               ? straggler[0].wall_s / straggler[1].wall_s
                               : 0.0;

  util::Table stable({"mode", "wall s", "recovered", "final rmse",
                      "steal chunks"});
  for (const auto& r : straggler) {
    const bool is_steal = &r == &straggler[1];
    stable.add_row({r.label, util::Table::num(r.wall_s, 3),
                    is_steal ? util::Table::num(recovered, 2) + "x" : "-",
                    util::Table::num(r.final_rmse, 4),
                    std::to_string(r.steal_chunks)});
    report.add_row(
        "straggler",
        {{"mode", bench::JsonReport::quote(r.label)},
         {"wall_s", bench::JsonReport::number(r.wall_s)},
         {"recovered", bench::JsonReport::number(is_steal ? recovered : 1.0)},
         {"final_rmse", bench::JsonReport::number(r.final_rmse)},
         {"steal_chunks",
          bench::JsonReport::number(static_cast<double>(r.steal_chunks))}});
  }
  std::cout << '\n';
  stable.print(std::cout);

  std::cout << "\nnote: the speedup needs real cores; a 1-CPU host records "
               "thread-switching overhead, not concurrency\n";
  return 0;
}
