// Figure 5 (Section 3.2): the three epoch timing sequences —
//   left:   original, no optimization (even partition, P&Q FP32),
//   middle: optimized, sync negligible (DP1, Netflix),
//   right:  optimized with sync consideration (DP2, R1*).
// Rendered as ASCII Gantt charts of one epoch per configuration.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "core/hccmf.hpp"
#include "sim/trace_export.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace hcc;

namespace {

std::string g_csv_dir;  // set from --csv_dir; empty = no export
int g_csv_counter = 0;

// Renders one epoch's per-worker spans as a proportional ASCII bar.
void draw_timeline(const std::string& title, const sim::EpochConfig& config) {
  sim::EpochConfig cfg = config;
  cfg.jitter = 0.0;
  const sim::EpochTiming t = sim::simulate_epoch(cfg);
  std::cout << "\n--- " << title << " (epoch = "
            << util::Table::num(t.epoch_s * 1e3, 2) << " ms) ---\n";
  constexpr int kWidth = 64;
  const double scale = kWidth / t.epoch_s;
  for (std::size_t w = 0; w < t.workers.size(); ++w) {
    const auto& wt = t.workers[w];
    const int pull = std::max(
        wt.pull_s > 0 ? 1 : 0, static_cast<int>(wt.pull_s * scale));
    const int comp = std::max(
        wt.compute_s > 0 ? 1 : 0, static_cast<int>(wt.compute_s * scale));
    const int push = std::max(
        wt.push_s > 0 ? 1 : 0, static_cast<int>(wt.push_s * scale));
    const int sync_gap = std::max(
        0, static_cast<int>((wt.sync_end_s - wt.finish_s) * scale));
    std::string bar = std::string(pull, 'p') + std::string(comp, '#') +
                      std::string(push, 'u') + std::string(sync_gap, 's');
    if (static_cast<int>(bar.size()) > kWidth) bar.resize(kWidth);
    std::printf("  %-10s |%s\n", cfg.workers[w].device.name.c_str(),
                bar.c_str());
  }
  std::cout << "  legend: p=pull  #=compute  u=push  s=waiting-for-sync\n";
  std::cout << "  server sync busy: "
            << util::Table::num(t.server_busy_s * 1e3, 2) << " ms\n";
  if (!g_csv_dir.empty()) {
    std::vector<std::string> names;
    for (const auto& w : cfg.workers) names.push_back(w.device.name);
    const std::string path = g_csv_dir + "/fig5_timeline_" +
                             std::to_string(g_csv_counter++) + ".csv";
    if (sim::export_epoch_csv(t, names, path)) {
      std::cout << "  (timeline written to " << path << ")\n";
    }
  }
}

sim::EpochConfig epoch_of(const core::HccMfConfig& config,
                          const sim::DatasetShape& shape,
                          core::PartitionStrategy strategy) {
  core::DataManager manager(config.platform, shape, config.comm,
                            config.manager);
  return manager.epoch_config(manager.plan(strategy));
}

}  // namespace

int main(int argc, char** argv) {
  const hcc::util::Cli cli(argc, argv);
  g_csv_dir = cli.get("csv_dir", std::string());
  bench::banner("Figure 5: timing sequences of a training epoch",
                "paper Figure 5; left/middle/right sub-figures");

  const sim::DatasetShape netflix = bench::shape_of(data::netflix_spec());
  const sim::DatasetShape r1star = bench::shape_of(data::yahoo_r1_star_spec());

  // Left: original sequence — even partition, all matrices, FP32.
  {
    core::HccMfConfig config;
    config.platform = sim::paper_workstation_hetero();
    config.comm.reduce_payload = false;
    config.comm.fp16 = false;
    config.dataset_name = "netflix";
    draw_timeline("original (even partition, P&Q FP32) — Netflix",
                  epoch_of(config, netflix, core::PartitionStrategy::kEven));
  }

  // Middle: optimized, synchronization negligible — DP1 on Netflix.
  {
    core::HccMfConfig config;
    config.platform = sim::paper_workstation_hetero();
    config.dataset_name = "netflix";
    draw_timeline("optimized, sync negligible (DP1) — Netflix",
                  epoch_of(config, netflix, core::PartitionStrategy::kDp1));
  }

  // Right: optimized with synchronization considered — DP2 on R1*.
  {
    core::HccMfConfig config;
    config.platform = sim::paper_workstation_hetero();
    config.dataset_name = "r1star";
    draw_timeline("optimized, sync considered (DP2) — R1*",
                  epoch_of(config, r1star, core::PartitionStrategy::kDp2));
    core::HccMfConfig dp1 = config;
    draw_timeline("for contrast: DP1 on R1* (syncs pile up at the end)",
                  epoch_of(dp1, r1star, core::PartitionStrategy::kDp1));
  }
  return 0;
}
