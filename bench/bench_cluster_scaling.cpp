// Cluster scaling (extension; the paper's conclusion leaves the square-
// matrix communication bottleneck as future work, and Figure 2 sketches
// the multi-node architecture).
//
// Two questions, answered with the hierarchical two-level HCC:
//   1. How far does adding whole workstations scale each dataset, and how
//      much does the interconnect matter?
//   2. Does batching several local epochs per global exchange recover
//      scaling on communication-bound shapes (MovieLens / square)?
#include <iostream>

#include "bench_common.hpp"
#include "cluster/hierarchical.hpp"
#include "util/table.hpp"

using namespace hcc;

namespace {

double run(const std::string& dataset, const sim::DatasetShape& shape,
           std::size_t nodes, const cluster::InterconnectSpec& net,
           std::uint32_t local_epochs, double* utilization = nullptr) {
  cluster::HierarchicalConfig config;
  config.sgd.epochs = 20 / local_epochs;
  config.local_epochs = local_epochs;
  config.cluster = cluster::workstation_cluster(nodes, net);
  config.manager.prune_unhelpful_workers = true;
  config.comm.streams = 4;
  config.dataset_name = dataset;
  cluster::HierarchicalHcc hcc(config);
  const cluster::ClusterReport report = hcc.simulate(shape);
  if (utilization != nullptr) *utilization = report.utilization;
  return report.total_virtual_s;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json_out(argc, argv, "cluster_scaling");
  bench::banner("Cluster scaling: hierarchical HCC-MF over N workstations",
                "extension; Figure 2's architecture scaled out, 20 total epochs");

  {
    util::Table table({"dataset", "1 node (s)", "2 nodes (s)", "4 nodes (s)",
                       "4-node speedup", "utilization@4"});
    for (const char* dataset : {"netflix", "r2", "r1star", "movielens"}) {
      const data::DatasetSpec spec = data::dataset_by_name(dataset);
      const sim::DatasetShape shape = bench::shape_of(spec);
      double util4 = 0.0;
      const double t1 = run(dataset, shape, 1, cluster::ethernet_100g(), 1);
      const double t2 = run(dataset, shape, 2, cluster::ethernet_100g(), 1);
      const double t4 =
          run(dataset, shape, 4, cluster::ethernet_100g(), 1, &util4);
      table.add_row({dataset, util::Table::num(t1, 3),
                     util::Table::num(t2, 3), util::Table::num(t4, 3),
                     util::Table::num(t1 / t4, 2) + "x",
                     util::Table::num(100 * util4, 1) + "%"});
    }
    json_out.add_table("nodes", table);
    table.print(std::cout);
    std::cout << "shape: compute-bound sets scale close to linearly; the "
                 "dimension-bound sets are gated by the global exchange\n";
  }

  bench::banner("Interconnect sensitivity (4 nodes, Netflix vs R1*)",
                "the global Q exchange is the new bus");
  {
    util::Table table({"network", "netflix (s)", "r1star (s)"});
    for (const auto& net : {cluster::infiniband_hdr(),
                            cluster::ethernet_100g(),
                            cluster::ethernet_10g()}) {
      table.add_row(
          {net.name,
           util::Table::num(run("netflix",
                                bench::shape_of(data::netflix_spec()), 4, net,
                                1),
                            3),
           util::Table::num(run("r1star",
                                bench::shape_of(data::yahoo_r1_star_spec()),
                                4, net, 1),
                            3)});
    }
    json_out.add_table("network", table);
    table.print(std::cout);
  }

  bench::banner("Local epochs per global exchange (4 nodes, 10GbE)",
                "trading staleness for communication on the bound shapes");
  {
    util::Table table({"local epochs", "r1star (s)", "movielens (s)"});
    for (std::uint32_t local : {1u, 2u, 4u}) {
      table.add_row(
          {std::to_string(local),
           util::Table::num(run("r1star",
                                bench::shape_of(data::yahoo_r1_star_spec()),
                                4, cluster::ethernet_10g(), local),
                            3),
           util::Table::num(run("movielens",
                                bench::shape_of(data::movielens20m_spec()), 4,
                                cluster::ethernet_10g(), local),
                            3)});
    }
    json_out.add_table("local_epochs", table);
    table.print(std::cout);
    std::cout << "shape: batching local epochs amortizes the global "
                 "exchange — the future-work lever the paper points at\n";
  }
  return 0;
}
