// Figure 8 (Section 4.3): 20-epoch cumulative pull / computing / push time
// per worker under different data partition strategies.
//   (a,b) Netflix, 3 & 4 workers: DP0 vs DP1  (DP1 ~12.2% better total)
//   (c,d) R2,      3 & 4 workers: DP0 vs DP1  (DP1 ~10% better)
//   (e,f) R1*,     3 & 4 workers: DP1 vs DP2  (DP2 ~12.1% better)
#include <iostream>

#include "bench_common.hpp"
#include "core/hccmf.hpp"
#include "util/table.hpp"

using namespace hcc;

namespace {

struct StrategyRun {
  core::PartitionStrategy strategy;
  sim::EpochTiming cumulative;  // 20 epochs
  double total = 0.0;
};

StrategyRun run(const sim::PlatformSpec& platform,
                const sim::DatasetShape& shape,
                core::PartitionStrategy strategy) {
  comm::CommConfig comm;  // all optimizations on, as in the paper's runs
  core::DataManagerOptions options;
  core::DataManager manager(platform, shape, comm, options);
  const core::Plan plan = manager.plan(strategy);
  StrategyRun result;
  result.strategy = strategy;
  result.cumulative.workers.resize(platform.workers.size());
  for (std::uint32_t e = 0; e < 20; ++e) {
    sim::EpochConfig cfg = manager.epoch_config(plan, e == 19);
    cfg.seed = 500 + e;
    const sim::EpochTiming t = sim::simulate_epoch(cfg);
    result.total += t.epoch_s;
    for (std::size_t w = 0; w < t.workers.size(); ++w) {
      result.cumulative.workers[w].pull_s += t.workers[w].pull_s;
      result.cumulative.workers[w].compute_s += t.workers[w].compute_s;
      result.cumulative.workers[w].push_s +=
          t.workers[w].push_s + t.workers[w].sync_s;  // paper: push incl. sync
    }
  }
  return result;
}

void compare(bench::JsonReport& json_out, const std::string& label,
             const sim::DatasetShape& shape, std::size_t workers,
             core::PartitionStrategy a, core::PartitionStrategy b) {
  sim::PlatformSpec platform = sim::paper_workstation_hetero();
  platform.workers.resize(workers);

  std::cout << "\n--- " << label << " (" << workers << " workers) ---\n";
  util::Table table({"strategy", "worker", "pull (s)", "computing (s)",
                     "push+sync (s)", "total cost (s)"});
  double total_a = 0.0;
  double total_b = 0.0;
  for (const auto strategy : {a, b}) {
    const StrategyRun result = run(platform, shape, strategy);
    (strategy == a ? total_a : total_b) = result.total;
    for (std::size_t w = 0; w < workers; ++w) {
      const auto& wt = result.cumulative.workers[w];
      table.add_row({w == 0 ? core::partition_strategy_name(strategy) : "",
                     platform.workers[w].name,
                     util::Table::num(wt.pull_s, 4),
                     util::Table::num(wt.compute_s, 4),
                     util::Table::num(wt.push_s, 4),
                     w == 0 ? util::Table::num(result.total, 4) : ""});
    }
  }
  json_out.add_table("fig8", table);
  table.print(std::cout);
  std::cout << core::partition_strategy_name(b) << " vs "
            << core::partition_strategy_name(a) << ": total cost "
            << util::Table::num(100.0 * (total_a - total_b) / total_a, 1)
            << "% lower\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json_out(argc, argv, "fig8_partition");
  bench::banner(
      "Figure 8: 20-epoch time statistics under different partition strategies",
      "paper Figure 8 a-f; DP1 beats DP0 on Netflix/R2, DP2 beats DP1 on R1*");

  const auto netflix = bench::shape_of(data::netflix_spec());
  const auto r2 = bench::shape_of(data::yahoo_r2_spec());
  const auto r1star = bench::shape_of(data::yahoo_r1_star_spec());

  compare(json_out, "Netflix: DP0 vs DP1", netflix, 3,
          core::PartitionStrategy::kDp0, core::PartitionStrategy::kDp1);
  compare(json_out, "Netflix: DP0 vs DP1", netflix, 4,
          core::PartitionStrategy::kDp0, core::PartitionStrategy::kDp1);
  compare(json_out, "R2: DP0 vs DP1", r2, 3, core::PartitionStrategy::kDp0,
          core::PartitionStrategy::kDp1);
  compare(json_out, "R2: DP0 vs DP1", r2, 4, core::PartitionStrategy::kDp0,
          core::PartitionStrategy::kDp1);
  compare(json_out, "R1*: DP1 vs DP2", r1star, 3, core::PartitionStrategy::kDp1,
          core::PartitionStrategy::kDp2);
  compare(json_out, "R1*: DP1 vs DP2", r1star, 4, core::PartitionStrategy::kDp1,
          core::PartitionStrategy::kDp2);

  std::cout << "\npaper's callouts: DP1 -12.2% (Netflix-4w), -10% (R2); "
               "DP2 -12.1% (R1*-4w)\n";
  return 0;
}
