// Table 5 (Section 4.4): cumulative 20-epoch communication time of the COMM
// module vs the ps-lite style COMM-P, under the three payload strategies
// P&Q / Q-only / half-Q, on Netflix, R1_NEW (R1*) and R2.
//
// Expected shape: Q-only speedups track the theoretical 20(m+n)/(m+20n)
// (~19x Netflix, ~2.5x R1, ~6x R2); half-Q exceeds 2x on top of Q-only;
// COMM beats COMM-P ~7x at equal strategy; strategy trends identical on
// both backends.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "comm/session.hpp"
#include "core/hccmf.hpp"
#include "obs/metrics.hpp"
#include "util/table.hpp"

using namespace hcc;

namespace {

double comm_time(const std::string& dataset, const sim::DatasetShape& shape,
                 bool reduce, bool fp16, comm::BackendKind backend) {
  core::HccMfConfig config;
  config.sgd.epochs = 20;
  config.platform = sim::paper_workstation_hetero();
  config.dataset_name = dataset;
  config.comm.reduce_payload = reduce;
  config.comm.fp16 = fp16;
  config.comm.backend = backend;
  return core::HccMf(config).simulate(shape).comm_virtual_s;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json_out(argc, argv, "table5_comm");
  bench::banner("Table 5: communication time of 20 epochs",
                "paper Table 5; COMM vs COMM-P x {P&Q, Q, half-Q}");

  const std::vector<std::pair<std::string, data::DatasetSpec>> datasets = {
      {"Netflix", data::netflix_spec()},
      {"R1_NEW", data::yahoo_r1_star_spec()},
      {"R2", data::yahoo_r2_spec()}};

  for (const auto backend :
       {comm::BackendKind::kShm, comm::BackendKind::kBroker}) {
    const char* name = backend == comm::BackendKind::kShm ? "COMM" : "COMM-P";
    std::cout << "\n--- " << name << " ---\n";
    util::Table table({"optimization", "Netflix (s)", "speedup", "R1_NEW (s)",
                       "speedup", "R2 (s)", "speedup"});
    std::vector<double> base(datasets.size(), 0.0);
    for (const auto& [label, reduce, fp16] :
         std::vector<std::tuple<std::string, bool, bool>>{
             {"P&Q", false, false}, {"Q", true, false}, {"half-Q", true, true}}) {
      std::vector<std::string> row{label};
      for (std::size_t d = 0; d < datasets.size(); ++d) {
        const sim::DatasetShape shape = bench::shape_of(datasets[d].second);
        const double t = comm_time(datasets[d].second.name, shape, reduce,
                                   fp16, backend);
        if (label == "P&Q") base[d] = t;
        row.push_back(util::Table::num(t, 4));
        row.push_back(util::Table::num(base[d] / t, 1) + "x");
      }
      table.add_row(row);
    }
    json_out.add_table("table5", table);
    table.print(std::cout);
  }

  // --- Transport RTT calibration ---------------------------------------
  // The elastic session tier (comm/session.hpp) derives its retransmission
  // and liveness timers from sim::LinkSpec::rtt_s.  Drive a reliable
  // session over each calibrated link preset with a representative Q-frame
  // and compare the RTT the session *observed* on its ack path (the
  // transport.rtt_ms histogram) against the cost model's prediction.
  std::cout << "\n--- transport RTT calibration (1 MiB Q frame) ---\n";
  util::Table rtt_table(
      {"link", "model RTT (ms)", "session RTT (ms)", "drift"});
  const std::size_t q_elems = 256 * 1024;  // 1 MiB of fp32 factors
  const comm::Fp32Codec codec;
  obs::Histogram& rtt_hist = obs::registry().histogram("transport.rtt_ms");
  for (const char* link : {"local", "IB-HDR", "100GbE", "10GbE"}) {
    comm::TransportConfig tconfig;
    tconfig.kind = comm::TransportKind::kSimLatency;
    tconfig.link = link;
    comm::SessionComm session(comm::make_transport(tconfig, /*worker=*/0),
                              tconfig, /*worker=*/0);
    const std::vector<float> src(q_elems, 0.5f);
    std::vector<float> dst(q_elems, 0.0f);
    const std::uint64_t count0 = rtt_hist.count();
    const double sum0 = rtt_hist.sum();
    for (int i = 0; i < 4; ++i) session.transfer(src, dst, codec);
    const std::uint64_t samples = rtt_hist.count() - count0;
    const double observed_ms =
        samples ? (rtt_hist.sum() - sum0) / static_cast<double>(samples) : 0.0;
    const double model_ms =
        1e3 * sim::link_by_name(link).rtt_s(codec.encoded_bytes(q_elems) +
                                            comm::FrameHeader::kBytes);
    rtt_table.add_row({link, util::Table::num(model_ms, 4),
                       util::Table::num(observed_ms, 4),
                       util::Table::num(observed_ms / model_ms, 2) + "x"});
  }
  json_out.add_table("transport_rtt", rtt_table);
  rtt_table.print(std::cout);
  std::cout << "session RTT = model RTT + tick quantization of the virtual "
               "clock; drift near 1.0x means the heartbeat/timeout derivation "
               "is calibrated\n";

  std::cout << "\npaper's COMM speedups: Netflix 18.3x/58x, R1_NEW 2.9x/9.6x, "
               "R2 7.5x/22.6x; COMM-P ~6.6x slower throughout\n";
  return 0;
}
