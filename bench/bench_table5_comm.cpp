// Table 5 (Section 4.4): cumulative 20-epoch communication time of the COMM
// module vs the ps-lite style COMM-P, under the three payload strategies
// P&Q / Q-only / half-Q, on Netflix, R1_NEW (R1*) and R2.
//
// Expected shape: Q-only speedups track the theoretical 20(m+n)/(m+20n)
// (~19x Netflix, ~2.5x R1, ~6x R2); half-Q exceeds 2x on top of Q-only;
// COMM beats COMM-P ~7x at equal strategy; strategy trends identical on
// both backends.
#include <iostream>

#include "bench_common.hpp"
#include "core/hccmf.hpp"
#include "util/table.hpp"

using namespace hcc;

namespace {

double comm_time(const std::string& dataset, const sim::DatasetShape& shape,
                 bool reduce, bool fp16, comm::BackendKind backend) {
  core::HccMfConfig config;
  config.sgd.epochs = 20;
  config.platform = sim::paper_workstation_hetero();
  config.dataset_name = dataset;
  config.comm.reduce_payload = reduce;
  config.comm.fp16 = fp16;
  config.comm.backend = backend;
  return core::HccMf(config).simulate(shape).comm_virtual_s;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json_out(argc, argv, "table5_comm");
  bench::banner("Table 5: communication time of 20 epochs",
                "paper Table 5; COMM vs COMM-P x {P&Q, Q, half-Q}");

  const std::vector<std::pair<std::string, data::DatasetSpec>> datasets = {
      {"Netflix", data::netflix_spec()},
      {"R1_NEW", data::yahoo_r1_star_spec()},
      {"R2", data::yahoo_r2_spec()}};

  for (const auto backend :
       {comm::BackendKind::kShm, comm::BackendKind::kBroker}) {
    const char* name = backend == comm::BackendKind::kShm ? "COMM" : "COMM-P";
    std::cout << "\n--- " << name << " ---\n";
    util::Table table({"optimization", "Netflix (s)", "speedup", "R1_NEW (s)",
                       "speedup", "R2 (s)", "speedup"});
    std::vector<double> base(datasets.size(), 0.0);
    for (const auto& [label, reduce, fp16] :
         std::vector<std::tuple<std::string, bool, bool>>{
             {"P&Q", false, false}, {"Q", true, false}, {"half-Q", true, true}}) {
      std::vector<std::string> row{label};
      for (std::size_t d = 0; d < datasets.size(); ++d) {
        const sim::DatasetShape shape = bench::shape_of(datasets[d].second);
        const double t = comm_time(datasets[d].second.name, shape, reduce,
                                   fp16, backend);
        if (label == "P&Q") base[d] = t;
        row.push_back(util::Table::num(t, 4));
        row.push_back(util::Table::num(base[d] / t, 1) + "x");
      }
      table.add_row(row);
    }
    json_out.add_table("table5", table);
    table.print(std::cout);
  }

  std::cout << "\npaper's COMM speedups: Netflix 18.3x/58x, R1_NEW 2.9x/9.6x, "
               "R2 7.5x/22.6x; COMM-P ~6.6x slower throughout\n";
  return 0;
}
