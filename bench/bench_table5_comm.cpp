// Table 5 (Section 4.4): cumulative 20-epoch communication time of the COMM
// module vs the ps-lite style COMM-P, under the three payload strategies
// P&Q / Q-only / half-Q, on Netflix, R1_NEW (R1*) and R2.
//
// Expected shape: Q-only speedups track the theoretical 20(m+n)/(m+20n)
// (~19x Netflix, ~2.5x R1, ~6x R2); half-Q exceeds 2x on top of Q-only;
// COMM beats COMM-P ~7x at equal strategy; strategy trends identical on
// both backends.
#include <algorithm>
#include <iostream>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "comm/pipeline.hpp"
#include "comm/session.hpp"
#include "core/hccmf.hpp"
#include "obs/metrics.hpp"
#include "util/clock.hpp"
#include "util/table.hpp"

using namespace hcc;

namespace {

double comm_time(const std::string& dataset, const sim::DatasetShape& shape,
                 bool reduce, bool fp16, comm::BackendKind backend) {
  core::HccMfConfig config;
  config.sgd.epochs = 20;
  config.platform = sim::paper_workstation_hetero();
  config.dataset_name = dataset;
  config.comm.reduce_payload = reduce;
  config.comm.fp16 = fp16;
  config.comm.backend = backend;
  return core::HccMf(config).simulate(shape).comm_virtual_s;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json_out(argc, argv, "table5_comm");
  bench::banner("Table 5: communication time of 20 epochs",
                "paper Table 5; COMM vs COMM-P x {P&Q, Q, half-Q}");

  const std::vector<std::pair<std::string, data::DatasetSpec>> datasets = {
      {"Netflix", data::netflix_spec()},
      {"R1_NEW", data::yahoo_r1_star_spec()},
      {"R2", data::yahoo_r2_spec()}};

  for (const auto backend :
       {comm::BackendKind::kShm, comm::BackendKind::kBroker}) {
    const char* name = backend == comm::BackendKind::kShm ? "COMM" : "COMM-P";
    std::cout << "\n--- " << name << " ---\n";
    util::Table table({"optimization", "Netflix (s)", "speedup", "R1_NEW (s)",
                       "speedup", "R2 (s)", "speedup"});
    std::vector<double> base(datasets.size(), 0.0);
    for (const auto& [label, reduce, fp16] :
         std::vector<std::tuple<std::string, bool, bool>>{
             {"P&Q", false, false}, {"Q", true, false}, {"half-Q", true, true}}) {
      std::vector<std::string> row{label};
      for (std::size_t d = 0; d < datasets.size(); ++d) {
        const sim::DatasetShape shape = bench::shape_of(datasets[d].second);
        const double t = comm_time(datasets[d].second.name, shape, reduce,
                                   fp16, backend);
        if (label == "P&Q") base[d] = t;
        row.push_back(util::Table::num(t, 4));
        row.push_back(util::Table::num(base[d] / t, 1) + "x");
      }
      table.add_row(row);
    }
    json_out.add_table("table5", table);
    table.print(std::cout);
  }

  // --- Transport RTT calibration ---------------------------------------
  // The elastic session tier (comm/session.hpp) derives its retransmission
  // and liveness timers from sim::LinkSpec::rtt_s.  Drive a reliable
  // session over each calibrated link preset with a representative Q-frame
  // and compare the RTT the session *observed* on its ack path (the
  // transport.rtt_ms histogram) against the cost model's prediction.
  std::cout << "\n--- transport RTT calibration (1 MiB Q frame) ---\n";
  util::Table rtt_table(
      {"link", "model RTT (ms)", "session RTT (ms)", "drift"});
  const std::size_t q_elems = 256 * 1024;  // 1 MiB of fp32 factors
  comm::Fp32Codec codec;
  obs::Histogram& rtt_hist = obs::registry().histogram("transport.rtt_ms");
  for (const char* link : {"local", "IB-HDR", "100GbE", "10GbE"}) {
    comm::TransportConfig tconfig;
    tconfig.kind = comm::TransportKind::kSimLatency;
    tconfig.link = link;
    comm::SessionComm session(comm::make_transport(tconfig, /*worker=*/0),
                              tconfig, /*worker=*/0);
    const std::vector<float> src(q_elems, 0.5f);
    std::vector<float> dst(q_elems, 0.0f);
    const std::uint64_t count0 = rtt_hist.count();
    const double sum0 = rtt_hist.sum();
    for (int i = 0; i < 4; ++i) session.transfer(src, dst, codec);
    const std::uint64_t samples = rtt_hist.count() - count0;
    const double observed_ms =
        samples ? (rtt_hist.sum() - sum0) / static_cast<double>(samples) : 0.0;
    const double model_ms =
        1e3 * sim::link_by_name(link).rtt_s(codec.encoded_bytes(q_elems) +
                                            comm::FrameHeader::kBytes);
    rtt_table.add_row({link, util::Table::num(model_ms, 4),
                       util::Table::num(observed_ms, 4),
                       util::Table::num(observed_ms / model_ms, 2) + "x"});
  }
  json_out.add_table("transport_rtt", rtt_table);
  rtt_table.print(std::cout);
  std::cout << "session RTT = model RTT + tick quantization of the virtual "
               "clock; drift near 1.0x means the heartbeat/timeout derivation "
               "is calibrated\n";

  // --- Sub-FP16 codecs: wire bytes, throughput, link crossovers ---------
  // The error-feedback quantizers (comm/codec.hpp) trade encode/decode
  // compute for 4-16x smaller steady-state transfers.  Three views: the
  // cost model's per-epoch wire bytes on the Netflix Q payload, measured
  // single-core encode+decode throughput, and the end-to-end pull+push
  // time per link preset — the crossover table that says which link speeds
  // make each codec pay off against fp16.
  const sim::DatasetShape netflix = bench::shape_of(data::netflix_spec());
  const std::uint64_t q_epoch_elems = netflix.n * netflix.k;
  const std::vector<comm::CodecKind> kinds = {
      comm::CodecKind::kFp32, comm::CodecKind::kFp16, comm::CodecKind::kInt8,
      comm::CodecKind::kTwoBit};

  std::cout << "\n--- codec wire bytes (Netflix Q epoch, steady state) ---\n";
  util::Table wire_table({"codec", "pull (MB)", "push (MB)",
                          "push compression", "pull codec"});
  const double fp32_push = comm::wire_bytes(q_epoch_elems,
                                            comm::CodecKind::kFp32,
                                            netflix.k);
  for (const comm::CodecKind kind : kinds) {
    comm::CommConfig cfg;
    cfg.codec = kind;
    const double pull = comm::wire_bytes(q_epoch_elems,
                                         comm::pull_codec_kind(cfg),
                                         netflix.k);
    const double push = comm::wire_bytes(q_epoch_elems, kind, netflix.k);
    wire_table.add_row(
        {comm::codec_kind_name(kind), util::Table::num(pull / 1e6, 2),
         util::Table::num(push / 1e6, 2),
         util::Table::num(fp32_push / push, 2) + "x",
         std::string(comm::codec_kind_name(comm::pull_codec_kind(cfg)))});
    // Numeric twin of the "push compression" column: pure byte accounting,
    // identical on every host, so CI's bench_compare gate can pin it.
    json_out.add_row(
        "codec_ratios",
        {{"codec", bench::JsonReport::quote(
                       std::string(comm::codec_kind_name(kind)))},
         {"push_compression_ratio",
          bench::JsonReport::number(fp32_push / push)}});
  }
  json_out.add_table("codec_wire", wire_table);
  wire_table.print(std::cout);

  std::cout << "\n--- codec throughput (1 MiB Q frame, steady state) ---\n";
  util::Table tput_table({"codec", "encode (GB/s)", "decode (GB/s)",
                          "wire (KiB)"});
  const std::size_t frame_elems = 256 * 1024;
  const double frame_bytes = static_cast<double>(frame_elems) * 4.0;
  // Measured steady-state per-frame codec seconds, reused by the link table.
  std::vector<double> codec_frame_s(kinds.size(), 0.0);
  std::vector<double> codec_wire_bytes(kinds.size(), 0.0);
  std::vector<float> frame(frame_elems);
  for (std::size_t i = 0; i < frame_elems; ++i) {
    frame[i] = 0.1f + 0.001f * static_cast<float>(i % 997);
  }
  for (std::size_t c = 0; c < kinds.size(); ++c) {
    comm::CommConfig cfg;
    cfg.codec = kinds[c];
    const auto codec = comm::make_codec(cfg, netflix.k);
    std::vector<float> out(frame_elems);
    {  // keyframe: move the stateful codecs to steady state
      std::vector<std::byte> key(codec->encoded_bytes(frame_elems));
      codec->encode(frame, key);
      codec->decode(key, out);
    }
    std::vector<std::byte> wire(codec->encoded_bytes(frame_elems));
    constexpr int kRounds = 40;
    double encode_s = 0.0;
    double decode_s = 0.0;
    for (int r = 0; r < kRounds; ++r) {
      util::Stopwatch enc;
      codec->encode(frame, wire);
      encode_s += enc.seconds();
      util::Stopwatch dec;
      codec->decode(wire, out);
      decode_s += dec.seconds();
    }
    encode_s /= kRounds;
    decode_s /= kRounds;
    codec_frame_s[c] = encode_s + decode_s;
    codec_wire_bytes[c] = static_cast<double>(wire.size());
    tput_table.add_row({std::string(comm::codec_kind_name(kinds[c])),
                        util::Table::num(frame_bytes / encode_s / 1e9, 2),
                        util::Table::num(frame_bytes / decode_s / 1e9, 2),
                        util::Table::num(codec_wire_bytes[c] / 1024.0, 1)});
  }
  json_out.add_table("codec_throughput", tput_table);
  tput_table.print(std::cout);

  std::cout << "\n--- end-to-end frame time per link (codec compute + wire) "
               "---\n";
  util::Table link_table({"link", "codec", "total (ms)", "speedup_vs_fp16",
                          "beats fp16"});
  const std::size_t fp16_index = 1;  // kinds[1] == kFp16
  for (const char* link : {"local", "IB-HDR", "100GbE", "10GbE", "1GbE"}) {
    const sim::LinkSpec spec = sim::link_by_name(link);
    std::vector<double> totals(kinds.size(), 0.0);
    for (std::size_t c = 0; c < kinds.size(); ++c) {
      const double transfer_s =
          spec.latency_s +
          codec_wire_bytes[c] / (spec.bandwidth_gbs * 1e9 * spec.efficiency);
      totals[c] = codec_frame_s[c] + transfer_s;
    }
    for (std::size_t c = 0; c < kinds.size(); ++c) {
      const double speedup = totals[fp16_index] / totals[c];
      link_table.add_row(
          {link, std::string(comm::codec_kind_name(kinds[c])),
           util::Table::num(totals[c] * 1e3, 4),
           util::Table::num(speedup, 2) + "x",
           kinds[c] != comm::CodecKind::kFp16 && speedup > 1.0 ? "yes"
                                                               : "-"});
      // CI gates the crossover only on the slowest preset, where the wire
      // time dwarfs the measured codec compute and the speedup is stable
      // run-to-run (fast links sit near 1.0x and would just be noise).
      if (std::string(link) == "1GbE") {
        json_out.add_row(
            "codec_crossover",
            {{"codec", bench::JsonReport::quote(
                           std::string(comm::codec_kind_name(kinds[c])))},
             {"link", bench::JsonReport::quote(link)},
             {"speedup_vs_fp16", bench::JsonReport::number(speedup)}});
      }
    }
  }
  json_out.add_table("codec_links", link_table);
  link_table.print(std::cout);
  std::cout << "fast links are compute-bound (fp16 wins); the quantizers "
               "cross over once serialization dominates\n";

  // --- Chunked streaming pipeline (comm/pipeline.hpp) -------------------
  // One 4 MiB int8 push over a 10GbE session, depth 1 (serial encode ->
  // wire -> commit) vs depth 4 (bounded ring of in-flight chunks).  The
  // codec stages run on the wall clock; the wire runs on the session's
  // virtual tick clock — disjoint domains, so a serial round costs their
  // sum while a pipelined round costs their max.  The cost model's Eq. 1
  // overlap term predicts each steady-state chunk at
  // max(encode, wire, commit); `overlap_efficiency_ratio` is modeled /
  // measured per-chunk time (1.0 = perfect overlap; the CI gate keeps it
  // within 1.25x, i.e. >= 0.8).
  std::cout << "\n--- chunked streaming pipeline (int8 push, 10GbE session) "
               "---\n";
  {
    const std::size_t pipe_elems = 1024 * 1024;  // 4 MiB of fp32 factors
    const double raw_bytes = static_cast<double>(pipe_elems) * 4.0;
    std::vector<float> pipe_src(pipe_elems);
    for (std::size_t i = 0; i < pipe_elems; ++i) {
      pipe_src[i] = 0.1f + 0.001f * static_cast<float>(i % 997);
    }
    std::vector<float> pipe_dst(pipe_elems, 0.0f);
    constexpr int kPipeRounds = 8;

    // Measured codec stage times (steady state, same array): the encode
    // and commit legs of the overlap model.
    comm::CommConfig pipe_cfg;
    pipe_cfg.codec = comm::CodecKind::kInt8;
    double encode_s = 0.0;
    double commit_s = 0.0;
    {
      const auto stage_codec = comm::make_codec(pipe_cfg, netflix.k);
      std::vector<std::byte> wire(stage_codec->encoded_bytes(pipe_elems));
      stage_codec->encode(pipe_src, wire);  // keyframe -> steady state
      stage_codec->decode(wire, pipe_dst);
      for (int r = 0; r < kPipeRounds; ++r) {
        util::Stopwatch enc;
        stage_codec->encode(pipe_src, wire);
        encode_s += enc.seconds();
        util::Stopwatch dec;
        stage_codec->decode(wire, pipe_dst);
        commit_s += dec.seconds();
      }
      encode_s /= kPipeRounds;
      commit_s /= kPipeRounds;
    }

    // One steady-state measurement per depth: wall seconds (codec compute)
    // and virtual wire seconds (session tick delta) per round.
    auto run_depth = [&](std::uint32_t depth, double& wall_s,
                         double& wire_s, std::size_t& chunks) {
      comm::CommConfig cfg = pipe_cfg;
      cfg.pipeline_depth = depth;
      comm::TransportConfig tconfig;
      tconfig.kind = comm::TransportKind::kSimLatency;
      tconfig.link = "10GbE";
      comm::SessionComm session(comm::make_transport(tconfig, /*worker=*/0),
                                tconfig, /*worker=*/0);
      comm::StreamPipeline pipe(cfg, netflix.k,
                                comm::StreamPipeline::Direction::kPush);
      chunks = pipe.chunk_count(pipe_elems);
      pipe.transfer(session, pipe_src, pipe_dst);  // keyframe round
      const std::uint64_t tick0 = session.link_transport().now();
      util::Stopwatch wall;
      for (int r = 0; r < kPipeRounds; ++r) {
        pipe.transfer(session, pipe_src, pipe_dst);
      }
      wall_s = wall.seconds() / kPipeRounds;
      wire_s = static_cast<double>(session.link_transport().now() - tick0) *
               session.link_transport().tick_seconds() / kPipeRounds;
    };

    double serial_wall = 0.0, serial_wire = 0.0;
    double piped_wall = 0.0, piped_wire = 0.0;
    std::size_t serial_chunks = 1, piped_chunks = 1;
    run_depth(1, serial_wall, serial_wire, serial_chunks);
    run_depth(4, piped_wall, piped_wire, piped_chunks);
    const double n_chunks = static_cast<double>(piped_chunks);

    // Chunk-framed serial baseline: the same frames, codecs and memory
    // walk as the depth-4 run (per-chunk codecs over the full array),
    // strictly one chunk at a time.  Its wall residual over the standalone
    // codec stages is the session's per-frame protocol CPU — framing
    // copies, FNV checksums, pump and ack handling — which stays on the
    // delivering thread at any depth and therefore belongs to the commit
    // leg of the overlap model, not to the hideable encode leg.
    const std::size_t chunk_elems = pipe_elems / piped_chunks;
    double framed_wall = 0.0;
    double framed_wire = 0.0;
    {
      comm::TransportConfig tconfig;
      tconfig.kind = comm::TransportKind::kSimLatency;
      tconfig.link = "10GbE";
      comm::SessionComm session(comm::make_transport(tconfig, /*worker=*/0),
                                tconfig, /*worker=*/0);
      comm::CommConfig chunk_cfg = pipe_cfg;
      chunk_cfg.codec_threads = 0;
      std::vector<std::unique_ptr<comm::Codec>> chunk_codecs;
      for (std::size_t c = 0; c < piped_chunks; ++c) {
        chunk_codecs.push_back(comm::make_codec(chunk_cfg, netflix.k));
      }
      auto framed_round = [&] {
        for (std::size_t c = 0; c < piped_chunks; ++c) {
          session.transfer(
              std::span<const float>(pipe_src)
                  .subspan(c * chunk_elems, chunk_elems),
              std::span<float>(pipe_dst).subspan(c * chunk_elems, chunk_elems),
              *chunk_codecs[c]);
        }
      };
      framed_round();  // keyframe round
      const std::uint64_t tick0 = session.link_transport().now();
      util::Stopwatch wall;
      for (int r = 0; r < kPipeRounds; ++r) framed_round();
      framed_wall = wall.seconds() / kPipeRounds;
      framed_wire =
          static_cast<double>(session.link_transport().now() - tick0) *
          session.link_transport().tick_seconds() / kPipeRounds;
    }
    const double protocol_s = std::max(0.0, framed_wall - encode_s - commit_s);

    // Serial rounds: stages are strictly sequential across both clocks.
    // Pipelined round: the in-flight window overlaps the wire with the
    // CPU stages, so the round costs the slower clock.  The CPU legs
    // themselves only overlap each other when a second core exists to run
    // the encoder thread (StreamPipeline::Threading::kAuto makes the same
    // call); on one core encode serializes with commit.
    const unsigned cores = std::thread::hardware_concurrency();
    const bool encoder_threaded = cores != 1;
    const double serial_round_s = serial_wall + serial_wire;
    const double framed_round_s = framed_wall + framed_wire;
    const double piped_round_s = std::max(piped_wall, piped_wire);
    const double measured_chunk_s = piped_round_s / n_chunks;
    const double cpu_leg_s =
        encoder_threaded ? std::max(encode_s, commit_s + protocol_s)
                         : encode_s + commit_s + protocol_s;
    const double modeled_chunk_s =
        std::max(cpu_leg_s / n_chunks, piped_wire / n_chunks);
    const double overlap_efficiency = modeled_chunk_s / measured_chunk_s;
    const double pipeline_speedup = framed_round_s / piped_round_s;

    util::Table pipe_table({"depth", "chunks", "round (ms)",
                            "per-chunk (us)", "note"});
    pipe_table.add_row({"1", std::to_string(serial_chunks),
                        util::Table::num(serial_round_s * 1e3, 4),
                        util::Table::num(serial_round_s * 1e6, 1),
                        "one monolithic frame (legacy)"});
    pipe_table.add_row({"1", std::to_string(piped_chunks),
                        util::Table::num(framed_round_s * 1e3, 4),
                        util::Table::num(framed_round_s / n_chunks * 1e6, 1),
                        "chunk frames, one at a time"});
    pipe_table.add_row({"4", std::to_string(piped_chunks),
                        util::Table::num(piped_round_s * 1e3, 4),
                        util::Table::num(measured_chunk_s * 1e6, 1),
                        "max(encode, wire, commit) target"});
    json_out.add_table("pipeline", pipe_table);
    pipe_table.print(std::cout);
    std::cout << "stages per round: encode "
              << util::Table::num(encode_s * 1e3, 4) << " ms, wire "
              << util::Table::num(piped_wire * 1e3, 4) << " ms, commit "
              << util::Table::num(commit_s * 1e3, 4)
              << " ms (+ " << util::Table::num(protocol_s * 1e3, 4)
              << " ms frame protocol); "
              << (encoder_threaded ? "threaded encoder" : "inline ring")
              << " on " << cores << " core(s); modeled chunk "
              << util::Table::num(modeled_chunk_s * 1e6, 1)
              << " us vs measured "
              << util::Table::num(measured_chunk_s * 1e6, 1)
              << " us (overlap efficiency "
              << util::Table::num(overlap_efficiency, 2) << ", speedup "
              << util::Table::num(pipeline_speedup, 2) << "x)\n";
    json_out.add_row(
        "pipeline_overlap",
        {{"link", bench::JsonReport::quote("10GbE")},
         {"codec", bench::JsonReport::quote("int8")},
         {"depth", bench::JsonReport::number(4)},
         {"chunks", bench::JsonReport::number(n_chunks)},
         {"raw_mb", bench::JsonReport::number(raw_bytes / 1e6)},
         {"overlap_efficiency_ratio",
          bench::JsonReport::number(overlap_efficiency)},
         {"pipeline_speedup", bench::JsonReport::number(pipeline_speedup)}});
  }

  std::cout << "\npaper's COMM speedups: Netflix 18.3x/58x, R1_NEW 2.9x/9.6x, "
               "R2 7.5x/22.6x; COMM-P ~6.6x slower throughout\n";
  return 0;
}
