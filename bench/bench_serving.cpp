// Online serving benchmark: top-K query latency and throughput off RCU
// model snapshots (src/serve/), across store encodings, ranks and catalog
// sizes, plus the train-while-serve scenario the subsystem exists for.
//
// Sections:
//   latency           qps / p50 / p99 per (store, k, catalog) — single
//                     reader, steady-state scan over a frozen snapshot
//   store             snapshot footprint per encoding and the compression
//                     ratio vs fp32 (deterministic; CI-gated)
//   quality           leave-one-out hit-rate@10 per store encoding off one
//                     SerialSgd-trained model — quantization must not move
//                     ranking quality
//   train_while_serve parallel HccMf training publishing every epoch with
//                     concurrent reader threads; serving throughput and
//                     the training outcome
//
// Flags: --json-out=PATH       machine-readable output (JsonReport format)
//        --ms-per-config=N     milliseconds per latency config (default 120)
//        --readers=N           reader threads for train-while-serve (def. 2)
//        --quality-scale=F     movielens20m scale for quality (def. 0.01)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/hccmf.hpp"
#include "mf/metrics.hpp"
#include "mf/trainer.hpp"
#include "serve/engine.hpp"
#include "serve/snapshot.hpp"
#include "serve/store.hpp"
#include "simd/dispatch.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace hcc;

namespace {

using clock_type = std::chrono::steady_clock;

mf::FactorModel random_model(std::uint32_t users, std::uint32_t items,
                             std::uint32_t k, std::uint64_t seed) {
  mf::FactorModel m(users, items, k);
  util::Rng rng(seed);
  m.init_random(rng, 3.0f);
  return m;
}

std::shared_ptr<const serve::ModelSnapshot> snap_of(const mf::FactorModel& m,
                                                    serve::StoreKind kind) {
  auto s = std::make_shared<serve::ModelSnapshot>();
  s->epoch = 1;
  s->store = serve::FactorStore(kind, m.users(), m.items(), m.k(), m.p_data(),
                                m.q_data());
  return s;
}

struct LatencyStats {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t queries = 0;
};

/// Runs timed top-10 queries against one snapshot for ~`ms` milliseconds.
LatencyStats measure_latency(const serve::ModelSnapshot& snapshot, double ms,
                             const mf::SeenIndex* seen) {
  serve::TopKEngine engine({.record_metrics = false});
  std::vector<double> lat;
  lat.reserve(4096);
  util::Rng rng(99);
  // Warm up: touch every catalog block once so first-query page-ins don't
  // land in the percentiles.
  engine.top_k(snapshot, 0, 10, seen);
  const auto t0 = clock_type::now();
  const double budget_s = ms / 1e3;
  for (;;) {
    const auto user =
        static_cast<std::uint32_t>(rng.uniform_u64(snapshot.store.users()));
    const auto q0 = clock_type::now();
    const auto recs = engine.top_k(snapshot, user, 10, seen);
    const auto q1 = clock_type::now();
    if (recs.empty()) std::cerr << "empty result\n";  // keep recs live
    lat.push_back(std::chrono::duration<double>(q1 - q0).count() * 1e3);
    if (std::chrono::duration<double>(q1 - t0).count() >= budget_s) break;
  }
  LatencyStats out;
  out.queries = lat.size();
  const double elapsed =
      std::chrono::duration<double>(clock_type::now() - t0).count();
  out.qps = static_cast<double>(lat.size()) / elapsed;
  std::sort(lat.begin(), lat.end());
  out.p50_ms = lat[lat.size() / 2];
  out.p99_ms = lat[std::min(lat.size() - 1,
                            static_cast<std::size_t>(0.99 * lat.size()))];
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const double ms_per_config = cli.get("ms-per-config", 120.0);
  const int readers = static_cast<int>(cli.get("readers", std::int64_t{2}));
  const double quality_scale = cli.get("quality-scale", 0.01);

  bench::banner("Online serving: top-K latency off RCU snapshots",
                "serving tier over the paper's trained factors; store "
                "encodings reuse Section 3.4's compression kernels");

  bench::JsonReport report(argc, argv, "serving");
  report.meta("active_isa", simd::kernels().name);
  report.meta("ms_per_config", ms_per_config);
  report.meta("readers", static_cast<double>(readers));
  report.meta("quality_scale", quality_scale);

  const std::vector<serve::StoreKind> kinds{
      serve::StoreKind::kFp32, serve::StoreKind::kFp16,
      serve::StoreKind::kInt8};

  // --- latency: store x k x catalog ------------------------------------
  {
    util::Table table({"store", "k", "catalog", "qps", "p50_ms", "p99_ms"});
    for (const std::uint32_t k : {32u, 128u}) {
      // 2.7e4 items is the MovieLens-20M catalog; 2'000 a genre shard.
      for (const std::uint32_t catalog : {2000u, 27000u}) {
        const auto model = random_model(256, catalog, k, 7);
        data::RatingMatrix train(256, catalog);
        util::Rng seen_rng(8);
        for (std::uint32_t u = 0; u < 256; ++u) {
          for (int j = 0; j < 40; ++j) {
            train.add(u,
                      static_cast<std::uint32_t>(seen_rng.uniform_u64(catalog)),
                      4.0f);
          }
        }
        const mf::SeenIndex seen(train);
        for (const serve::StoreKind kind : kinds) {
          const auto snapshot = snap_of(model, kind);
          const auto stats = measure_latency(*snapshot, ms_per_config, &seen);
          table.add_row({serve::store_kind_name(kind), std::to_string(k),
                         std::to_string(catalog),
                         util::Table::num(stats.qps, 4),
                         util::Table::num(stats.p50_ms, 4),
                         util::Table::num(stats.p99_ms, 4)});
          report.add_row(
              "latency",
              {{"store",
                bench::JsonReport::quote(serve::store_kind_name(kind))},
               {"k", bench::JsonReport::number(k)},
               {"catalog", bench::JsonReport::number(catalog)},
               {"qps", bench::JsonReport::number(stats.qps)},
               {"p50_ms", bench::JsonReport::number(stats.p50_ms)},
               {"p99_ms", bench::JsonReport::number(stats.p99_ms)}});
        }
      }
    }
    table.print(std::cout);
  }

  // --- store footprint (deterministic; the CI-gated ratios) -------------
  {
    const std::uint32_t users = 1000, items = 27000, k = 128;
    const auto model = random_model(users, items, k, 9);
    const auto base = snap_of(model, serve::StoreKind::kFp32);
    util::Table table({"store", "bytes", "bytes_ratio"});
    for (const serve::StoreKind kind : kinds) {
      const auto snapshot = snap_of(model, kind);
      const double ratio = static_cast<double>(base->store.store_bytes()) /
                           static_cast<double>(snapshot->store.store_bytes());
      table.add_row({serve::store_kind_name(kind),
                     std::to_string(snapshot->store.store_bytes()),
                     util::Table::num(ratio, 3)});
      report.add_row(
          "store",
          {{"store", bench::JsonReport::quote(serve::store_kind_name(kind))},
           {"bytes", bench::JsonReport::number(
                         static_cast<double>(snapshot->store.store_bytes()))},
           {"bytes_ratio", bench::JsonReport::number(ratio)}});
    }
    table.print(std::cout);
  }

  // --- quality: hit-rate@10 per encoding off one trained model ----------
  {
    const auto spec = data::movielens20m_spec().scaled(quality_scale);
    data::GeneratorConfig gen;
    gen.seed = 37;
    gen.planted_rank = 4;
    const auto full = data::generate(spec, gen);
    util::Rng rng(38);
    auto [train, test] = data::train_test_split(full, 0.1, rng);
    auto config = mf::SgdConfig::for_dataset(spec.reg_lambda, 0.01f, /*k=*/16);
    config.epochs = 8;
    mf::FactorModel model(spec.m, spec.n, config.k);
    util::Rng init(39);
    model.init_random(init, 3.5f);
    mf::SerialSgd trainer(config);
    for (std::uint32_t e = 0; e < config.epochs; ++e) {
      trainer.train_epoch(model, train);
    }
    double fp32_hit = 0.0;
    util::Table table({"store", "hit_rate_at_10", "delta_vs_fp32"});
    for (const serve::StoreKind kind : kinds) {
      const auto snapshot = snap_of(model, kind);
      const double hit =
          serve::snapshot_hit_rate_at_n(*snapshot, train, test, 10, 4.0f);
      if (kind == serve::StoreKind::kFp32) fp32_hit = hit;
      table.add_row({serve::store_kind_name(kind), util::Table::num(hit, 4),
                     util::Table::num(hit - fp32_hit, 4)});
      report.add_row(
          "quality",
          {{"store", bench::JsonReport::quote(serve::store_kind_name(kind))},
           {"hit_rate_at_10", bench::JsonReport::number(hit)},
           {"delta_vs_fp32", bench::JsonReport::number(hit - fp32_hit)}});
    }
    table.print(std::cout);
  }

  // --- train-while-serve ------------------------------------------------
  {
    const auto spec = data::netflix_spec().scaled(0.004);
    data::GeneratorConfig gen;
    gen.seed = 5;
    gen.planted_rank = 4;
    const auto full = data::generate(spec, gen);
    util::Rng rng(6);
    auto [train, test] = data::train_test_split(full, 0.1, rng);
    const mf::SeenIndex seen(train);

    core::HccMfConfig config;
    config.sgd = mf::SgdConfig::for_dataset(spec.reg_lambda, 0.01f, /*k=*/16);
    config.sgd.epochs = 8;
    config.comm.fp16 = false;
    config.platform = sim::paper_workstation_hetero();
    for (auto& w : config.platform.workers) w.epoch_overhead_s = 0.0;
    config.dataset_name = spec.name;
    config.exec.mode = core::ExecMode::kParallel;
    config.publish_every = 1;
    config.publish_store = serve::StoreKind::kFp16;
    config.snapshots = std::make_shared<serve::SnapshotRegistry>();

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> answered{0};
    std::vector<std::thread> pool;
    for (int t = 0; t < readers; ++t) {
      pool.emplace_back([&, t] {
        serve::TopKEngine engine({.record_metrics = false});
        util::Rng reader_rng(50 + t);
        while (!stop.load(std::memory_order_relaxed)) {
          const auto snap = config.snapshots->current();
          if (snap == nullptr) continue;
          const auto u = static_cast<std::uint32_t>(
              reader_rng.uniform_u64(snap->store.users()));
          if (!engine.top_k(*snap, u, 10, &seen).empty()) {
            answered.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    const auto t0 = clock_type::now();
    core::HccMf framework(config);
    const auto train_report = framework.train(train, &test);
    const double train_s =
        std::chrono::duration<double>(clock_type::now() - t0).count();
    stop.store(true, std::memory_order_relaxed);
    for (auto& th : pool) th.join();

    const double qps = static_cast<double>(answered.load()) / train_s;
    const double rmse = train_report.epochs.back().test_rmse;
    util::Table table(
        {"readers", "published", "queries", "qps", "train_s", "test_rmse"});
    table.add_row({std::to_string(readers),
                   std::to_string(config.snapshots->published()),
                   std::to_string(answered.load()), util::Table::num(qps, 4),
                   util::Table::num(train_s, 3), util::Table::num(rmse, 4)});
    table.print(std::cout);
    report.add_row(
        "train_while_serve",
        {{"readers", bench::JsonReport::number(readers)},
         {"published", bench::JsonReport::number(
                           static_cast<double>(config.snapshots->published()))},
         {"queries",
          bench::JsonReport::number(static_cast<double>(answered.load()))},
         {"qps", bench::JsonReport::number(qps)},
         {"train_s", bench::JsonReport::number(train_s)},
         {"test_rmse", bench::JsonReport::number(rmse)}});
  }

  std::cout << "\nnotes: latency is a single steady-state reader; "
               "train-while-serve runs " << readers
            << " readers against per-epoch snapshot publishes\n";
  return 0;
}
