// Table 2 (Section 3.3): runtime memory bandwidth of each worker when it
// processes the whole dataset alone ("IW") vs under its DP0 assignment —
// the observation motivating DP1: CPU bandwidth is ~constant, GPU bandwidth
// creeps up a little as the assignment shrinks.
#include <iostream>

#include "bench_common.hpp"
#include "core/data_manager.hpp"
#include "util/table.hpp"

using namespace hcc;

int main(int argc, char** argv) {
  bench::JsonReport json_out(argc, argv, "table2_bandwidth");
  bench::banner("Table 2: memory bandwidth (GB/s) under IW vs DP0",
                "paper Table 2; Netflix, workers 6242 / 6242l-10 / 2080 / 2080S");

  const sim::DatasetShape shape = bench::shape_of(data::netflix_spec());

  // The Table 2 platform: full 6242, throttled 6242l-10, both GPUs.
  sim::PlatformSpec platform;
  platform.name = "table2";
  platform.workers = {sim::xeon_6242_24t(), sim::xeon_6242_10t(),
                      sim::rtx_2080(), sim::rtx_2080s()};

  comm::CommConfig comm;
  core::DataManager manager(platform, shape, comm);
  const core::Plan plan = manager.plan(core::PartitionStrategy::kDp0);

  util::Table table({"worker", "IW (GB/s)", "DP0 (GB/s)", "DP0 share",
                     "delta"});
  const std::vector<std::string> labels = {"6242", "6242l-10", "2080",
                                           "2080S"};
  for (std::size_t w = 0; w < platform.workers.size(); ++w) {
    const double iw = sim::mem_bandwidth(platform.workers[w], 1.0);
    const double dp0 = sim::mem_bandwidth(platform.workers[w],
                                          plan.shares[w]);
    table.add_row({labels[w], util::Table::num(iw, 4),
                   util::Table::num(dp0, 4),
                   util::Table::num(plan.shares[w], 3),
                   "+" + util::Table::num(100 * (dp0 - iw) / iw, 2) + "%"});
  }
  json_out.add_table("table2", table);
  table.print(std::cout);

  std::cout << "\npaper Table 2: 6242 67.30->67.75, 6242l-10 39.32->39.60, "
               "2080 378.6->388.8, 2080S 407.1->412.0\n";
  return 0;
}
