// Figure 3 (Section 2.3-2.4, motivation): 20-epoch Netflix training time on
// single processors vs good and bad multi-CPU/GPU collaborations, plus the
// platform price list (Figure 3b).
//
// Shape expected from the paper: every good collaboration beats its single
// devices; 6242-2080S lands close to a Tesla V100 at well under half the
// price; bad configurations (no comm optimization, unbalanced data, bad
// thread configuration) squander the collaboration.
#include <iostream>

#include "bench_common.hpp"
#include "core/hccmf.hpp"
#include "util/table.hpp"

using namespace hcc;

namespace {

struct Row {
  std::string label;
  double seconds;
  double price;
  std::string kind;
};

core::HccMfConfig config_for(const sim::PlatformSpec& platform) {
  core::HccMfConfig config;
  config.sgd.epochs = 20;
  config.platform = platform;
  config.dataset_name = "netflix";
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json_out(argc, argv, "fig3_motivation");
  bench::banner("Figure 3: SGD-based MF on different platforms (Netflix, 20 epochs)",
                "paper Figure 3a/3b; CPU bar = Xeon 6242, collaborations good & bad");
  const sim::DatasetShape shape = bench::shape_of(data::netflix_spec());

  std::vector<Row> rows;
  auto run = [&](const std::string& label, const sim::PlatformSpec& platform,
                 const std::string& kind,
                 core::HccMfConfig config) {
    const core::TrainReport report = core::HccMf(config).simulate(shape);
    rows.push_back(
        {label, report.total_virtual_s, platform.total_price_usd(), kind});
  };

  // Single processors (the independent FPSGD / CuMF_SGD runs).
  for (const char* name : {"6242-24T", "2080", "2080S", "V100"}) {
    const auto platform = sim::single_device(sim::device_by_name(name));
    run(name, platform, name[0] == '6' ? "CPU" : "GPU", config_for(platform));
  }

  // Good collaborations: full HCC-MF (auto partition, all comm strategies).
  for (const auto& [label, devices] :
       std::vector<std::pair<std::string, std::vector<std::string>>>{
           {"6242-2080", {"6242-24T", "2080"}},
           {"6242-2080S", {"6242-24T", "2080S"}},
           {"2080-2080S", {"2080S", "2080"}}}) {
    const auto platform = sim::combo(label, devices);
    run(label, platform, "good collaboration", config_for(platform));
  }

  // Bad collaboration 1: no communication optimization (full P&Q in FP32
  // through the ps-lite style broker; Section 2.4 "Bad communication").
  {
    const auto platform = sim::combo("6242-2080S", {"6242-24T", "2080S"});
    core::HccMfConfig config = config_for(platform);
    config.comm.reduce_payload = false;
    config.comm.fp16 = false;
    config.comm.backend = comm::BackendKind::kBroker;
    run("6242-2080S (bad communication)", platform, "bad collaboration",
        config);
  }

  // Bad collaboration 2: unbalanced data (even split ignores heterogeneity;
  // the CPU drags the GPU down — the short-board effect).
  {
    const auto platform = sim::combo("6242-2080S", {"6242-24T", "2080S"});
    core::HccMfConfig config = config_for(platform);
    config.partition = core::PartitionStrategy::kEven;
    run("6242-2080S (unbalanced data)", platform, "bad collaboration",
        config);
  }

  // Bad collaboration 3: bad thread configuration — the CPU worker is left
  // at 10 threads but the partition assumes full 24-thread performance.
  {
    auto platform = sim::combo("6242-2080S", {"6242-10T", "2080S"});
    platform.workers[0].calibrated_rates =
        sim::xeon_6242_10t().calibrated_rates;
    core::HccMfConfig config = config_for(platform);
    // DP0 computed against the 24T profile, applied to the 10T reality:
    const double t_cpu_assumed =
        sim::compute_seconds(sim::xeon_6242_24t(), shape, 1.0);
    const double t_gpu =
        sim::compute_seconds(sim::rtx_2080s(), shape, 1.0);
    core::DataManager manager(platform, shape, config.comm, config.manager);
    core::Plan plan = manager.plan(core::PartitionStrategy::kDp0);
    plan.shares = core::dp0_partition({t_cpu_assumed, t_gpu});
    double total = 0.0;
    for (std::uint32_t e = 0; e < 20; ++e) {
      auto cfg = manager.epoch_config(plan, e == 19);
      cfg.seed = 100 + e;
      total += sim::simulate_epoch(cfg).epoch_s;
    }
    rows.push_back({"6242-2080S (bad threads conf)", total,
                    platform.total_price_usd(), "bad collaboration"});
  }

  util::Table table({"platform", "time (s)", "kind", "price ($)"});
  for (const auto& r : rows) {
    table.add_row({r.label, util::Table::num(r.seconds, 3), r.kind,
                   util::Table::num(r.price, 0)});
  }
  json_out.add_table("fig3", table);
  table.print(std::cout);

  const double v100 = rows[3].seconds;          // "V100"
  const double combo_6242_2080s = rows[5].seconds;  // "6242-2080S"
  std::cout << "\nheadline: 6242-2080S reaches "
            << util::Table::num(100 * v100 / combo_6242_2080s, 1)
            << "% of a Tesla V100's speed at "
            << util::Table::num(100 * rows[5].price / rows[3].price, 0)
            << "% of its price (paper: 'close ... less than 1/3 of its price')\n";
  return 0;
}
