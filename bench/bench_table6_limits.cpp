// Table 6 (Section 4.6, limitations): MovieLens-20m per-epoch pull /
// computing / push on a single 2080S vs the 2080S-2080 pair, plus the
// CuMF_SGD single-GPU reference.
//
// Expected shape: adding the second GPU halves the computing time but pull
// and push stay put (communication scales with the matrix dimensions, not
// with the worker count), so the total barely moves — HCC-MF cannot
// accelerate datasets whose communication cost rivals their compute cost.
#include <iostream>

#include "bench_common.hpp"
#include "core/hccmf.hpp"
#include "util/table.hpp"

using namespace hcc;

namespace {

struct WorkerRow {
  std::string label;
  double pull = 0.0;
  double compute = 0.0;
  double push = 0.0;
  double total = 0.0;
};

std::vector<WorkerRow> run(const sim::PlatformSpec& platform,
                           const sim::DatasetShape& shape) {
  comm::CommConfig comm;
  comm.streams = 4;
  // The paper's Table 6 pull/push magnitudes correspond to FP32 transfers
  // (~67 MB of Q at PCIe rates); match that configuration.
  comm.fp16 = false;
  core::DataManager manager(platform, shape, comm);
  const core::Plan plan = manager.plan(core::PartitionStrategy::kAuto);

  std::vector<WorkerRow> rows(platform.workers.size());
  double total = 0.0;
  for (std::uint32_t e = 0; e < 20; ++e) {
    sim::EpochConfig cfg = manager.epoch_config(plan, e == 19);
    cfg.seed = 900 + e;
    const sim::EpochTiming t = sim::simulate_epoch(cfg);
    total += t.epoch_s;
    for (std::size_t w = 0; w < rows.size(); ++w) {
      rows[w].label = platform.workers[w].name;
      rows[w].pull += t.workers[w].pull_s;
      rows[w].compute += t.workers[w].compute_s;
      rows[w].push += t.workers[w].push_s + t.workers[w].sync_s;
    }
  }
  for (auto& r : rows) r.total = total;
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json_out(argc, argv, "table6_limits");
  bench::banner("Table 6: the MovieLens-20m limitation",
                "paper Table 6; per-20-epoch pull/computing/push, seconds");

  const sim::DatasetShape shape = bench::shape_of(data::movielens20m_spec());

  util::Table table({"config", "worker", "pull", "computing", "push",
                     "cost"});

  const auto single = run(sim::single_device(sim::rtx_2080s()), shape);
  for (const auto& r : single) {
    table.add_row({"HCC 2080S", r.label, util::Table::num(r.pull, 3),
                   util::Table::num(r.compute, 3),
                   util::Table::num(r.push, 3),
                   util::Table::num(r.total, 3)});
  }

  const auto pair = run(sim::combo("2080S-2080", {"2080S", "2080"}), shape);
  for (const auto& r : pair) {
    table.add_row({"HCC 2080S-2080", r.label, util::Table::num(r.pull, 3),
                   util::Table::num(r.compute, 3),
                   util::Table::num(r.push, 3),
                   util::Table::num(r.total, 3)});
  }

  // CuMF_SGD on the 2080S alone: pure compute, no framework transfers.
  const double cumf = 20.0 * (sim::compute_seconds(sim::rtx_2080s(), shape, 1.0) +
                              sim::rtx_2080s().epoch_overhead_s);
  table.add_row({"CuMF_SGD", "2080S", "N/A", "N/A", "N/A",
                 util::Table::num(cumf, 3)});
  json_out.add_table("table6", table);
  table.print(std::cout);

  const double gain = (single[0].total - pair[0].total) / single[0].total;
  std::cout << "\nadding a second GPU improves the total by only "
            << util::Table::num(100 * gain, 1)
            << "% — computing halves, but pull/push are dimension-bound "
               "(paper: 0.559s -> 0.449s)\n";
  return 0;
}
