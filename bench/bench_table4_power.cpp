// Table 4 (Section 4.2): "computing power" of 20-epoch training — each
// device independently, the ideal sum, HCC-MF's achieved power and the
// resulting utilization, for all four datasets.
//
// Expected shape: Netflix ~86%, R2 ~88%, R1 ~62%, MovieLens ~46%.
#include <iostream>

#include "bench_common.hpp"
#include "core/hccmf.hpp"
#include "util/table.hpp"

using namespace hcc;

int main(int argc, char** argv) {
  bench::JsonReport json_out(argc, argv, "table4_power");
  bench::banner(
      "Table 4: computing power of 20-epoch training (updates/s)",
      "paper Table 4; platform 6242-24T + 6242-16T + 2080 + 2080S");

  const sim::PlatformSpec platform = sim::paper_workstation_overall();

  util::Table table({"data set", "6242-24T", "6242-16T", "2080", "2080S",
                     "Ideal", "HCC", "utilization", "paper"});
  const std::vector<std::pair<std::string, std::string>> expectations = {
      {"netflix", "86%"}, {"r1", "62%"}, {"r2", "88%"}, {"movielens", "46%"}};

  for (const auto& [dataset, paper_util] : expectations) {
    const data::DatasetSpec spec = data::dataset_by_name(dataset);
    const sim::DatasetShape shape = bench::shape_of(spec);

    std::vector<std::string> row{dataset};
    for (const auto& device : platform.workers) {
      row.push_back(
          util::Table::num(sim::iw_update_rate(device, shape) / 1e6, 0));
    }

    core::HccMfConfig config;
    config.sgd.epochs = 20;
    config.platform = platform;
    config.partition = core::PartitionStrategy::kAuto;
    config.comm.streams = 4;
    config.manager.prune_unhelpful_workers = true;
    config.dataset_name = spec.name;
    const core::TrainReport report = core::HccMf(config).simulate(shape);
    row.push_back(util::Table::num(report.ideal_updates_per_s / 1e6, 0));
    row.push_back(util::Table::num(report.updates_per_s / 1e6, 0));
    row.push_back(util::Table::num(100 * report.utilization, 0) + "%");
    row.push_back(paper_util);
    table.add_row(row);
  }
  json_out.add_table("table4", table);
  table.print(std::cout);
  std::cout << "\n(all powers in Mupdates/s; 'paper' = Table 4's measured "
               "utilization)\n";
  return 0;
}
