// Figure 9 (Section 4.5): stacked "computing power" as heterogeneous
// workers are added one by one (2080S -> +6242 -> +2080 -> +6242L), per
// dataset, against the ideal sum.
//
// Expected shape: computing power always grows with workers; Netflix/R2
// realize >80% of each ordinary worker's power (>70% for the server-sharing
// worker); R1/R1* realize ~45% per worker because communication and
// synchronization bite (Section 4.5's numbers).
#include <iostream>

#include "bench_common.hpp"
#include "core/hccmf.hpp"
#include "util/table.hpp"

using namespace hcc;

int main(int argc, char** argv) {
  bench::JsonReport json_out(argc, argv, "fig9_scaling");
  bench::banner("Figure 9: computing power while adding workers in turn",
                "paper Figure 9 a-d; order 2080S, 6242, 2080, 6242L");

  const auto all = sim::paper_workstation_hetero().workers;

  for (const char* dataset : {"netflix", "r2", "r1", "r1star"}) {
    const data::DatasetSpec spec = data::dataset_by_name(dataset);
    const sim::DatasetShape shape = bench::shape_of(spec);

    std::cout << "\n--- " << dataset << " ---\n";
    util::Table table({"workers", "HCC power (Mup/s)", "ideal (Mup/s)",
                       "utilization", "marginal worker", "marginal contribution"});
    // Figure 9(c) shows R1 with three workers only: the weak server-sharing
    // CPU does not pay for itself on that sync-bound dataset.
    const std::size_t max_workers =
        std::string(dataset) == "r1" ? 3 : all.size();
    double prev_power = 0.0;
    for (std::size_t count = 1; count <= max_workers; ++count) {
      core::HccMfConfig config;
      config.sgd.epochs = 20;
      config.partition = core::PartitionStrategy::kAuto;
      config.comm.streams = 4;
      config.manager.prune_unhelpful_workers = true;
      config.platform.name = "stack";
      config.platform.workers.assign(all.begin(), all.begin() + count);
      config.dataset_name = spec.name;

      const core::TrainReport report = core::HccMf(config).simulate(shape);
      const auto& added = all[count - 1];
      const double added_iw = sim::iw_update_rate(added, shape);
      const double marginal =
          (report.updates_per_s - prev_power) / added_iw;
      table.add_row(
          {std::to_string(count),
           util::Table::num(report.updates_per_s / 1e6, 0),
           util::Table::num(report.ideal_updates_per_s / 1e6, 0),
           util::Table::num(100 * report.utilization, 1) + "%", added.name,
           util::Table::num(100 * marginal, 1) + "%"});
      prev_power = report.updates_per_s;
    }
    json_out.add_table("fig9", table);
    table.print(std::cout);
  }

  std::cout << "\npaper's Figure 9 shape: power rises monotonically; "
               "Netflix/R2 workers contribute >80% (server-sharing >70%), "
               "R1/R1* workers ~45%\n";
  return 0;
}
