// Legacy manually unrolled SGD kernels — benchmark baselines only.
//
// These are the pre-SIMD-backend 4-wide variants the dispatched kernels
// are measured against (the portable auto-vectorization baseline).  They
// require k % 4 == 0 and live here, outside src/, so product code cannot
// call the divisibility-restricted paths by accident; the dispatched
// kernels in mf/kernels.hpp handle every k.
#pragma once

#include <cstdint>

namespace hcc::bench {

/// Dot product, 4-wide unrolled (k % 4 == 0 required).
inline float dot4(const float* a, const float* b, std::uint32_t k) noexcept {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  for (std::uint32_t f = 0; f < k; f += 4) {
    s0 += a[f + 0] * b[f + 0];
    s1 += a[f + 1] * b[f + 1];
    s2 += a[f + 2] * b[f + 2];
    s3 += a[f + 3] * b[f + 3];
  }
  return (s0 + s1) + (s2 + s3);
}

/// SGD update with 4-wide unrolled loops (k % 4 == 0 required).  Same
/// recurrence as mf::sgd_update; the four independent accumulators let the
/// compiler emit packed FMA without a reduction dependency chain.
inline float sgd_update_x4(float* p, float* q, std::uint32_t k, float r,
                           float lr, float reg_p, float reg_q) noexcept {
  const float err = r - dot4(p, q, k);
  for (std::uint32_t f = 0; f < k; f += 4) {
    const float p0 = p[f + 0], p1 = p[f + 1], p2 = p[f + 2], p3 = p[f + 3];
    const float q0 = q[f + 0], q1 = q[f + 1], q2 = q[f + 2], q3 = q[f + 3];
    p[f + 0] = p0 + lr * (err * q0 - reg_p * p0);
    p[f + 1] = p1 + lr * (err * q1 - reg_p * p1);
    p[f + 2] = p2 + lr * (err * q2 - reg_p * p2);
    p[f + 3] = p3 + lr * (err * q3 - reg_p * p3);
    q[f + 0] = q0 + lr * (err * p0 - reg_q * q0);
    q[f + 1] = q1 + lr * (err * p1 - reg_q * q1);
    q[f + 2] = q2 + lr * (err * p2 - reg_q * q2);
    q[f + 3] = q3 + lr * (err * p3 - reg_q * q3);
  }
  return err;
}

}  // namespace hcc::bench
