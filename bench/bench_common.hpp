// Shared helpers for the per-table/figure benchmark harnesses.
#pragma once

#include <charconv>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "data/datasets.hpp"
#include "obs/json.hpp"
#include "sim/perf_model.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace hcc::bench {

/// DatasetShape (k = 128, the paper's setting) from a catalogue spec.
inline sim::DatasetShape shape_of(const data::DatasetSpec& spec,
                                  std::uint32_t k = 128) {
  return sim::DatasetShape{spec.name, spec.m, spec.n, spec.nnz, k};
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n==================================================================\n"
            << title << "\n(" << paper_ref << ")\n"
            << "==================================================================\n";
}

/// Machine-readable benchmark output behind the shared `--json-out=<path>`
/// flag: every bench binary keeps printing its stdout table and, when the
/// flag is given, also persists the same rows as one JSON document — the
/// BENCH_*.json perf trajectory CI archives.  Document shape:
///
///   {"bench": "<name>",
///    "meta": {"schema": 3, "schedule": "...", "tile_kb": N, "pin": 0|1,
///             "codec": "...", "key": value, ...},
///    "sections": {"<section>": [{"col": value, ...}, ...], ...}}
///
/// Schema history: v1 had no schema marker; v2 stamps "schema" plus the
/// locality configuration every run carries — the schedule policy, its tile
/// budget and whether threads were pinned — parsed from the same argv the
/// bench itself reads, so two BENCH_*.json files are comparable at a glance
/// even for benches that predate the scheduler; v3 adds the wire "codec"
/// (the --codec flag: auto/fp32/fp16/int8/2bit).
///
/// Cells that parse fully as decimal numbers are emitted as JSON numbers
/// (so "0.368" stays a number while "18.3x" stays a string).
class JsonReport {
 public:
  /// Bumped when the document shape or standard meta set changes.
  static constexpr int kSchemaVersion = 3;

  /// Reads `--json-out` from argv; disabled (no file written) when absent.
  JsonReport(int argc, const char* const* argv, std::string bench_name)
      : bench_(std::move(bench_name)) {
    const util::Cli cli(argc, argv);
    path_ = cli.get("json-out", std::string());
    meta("schema", static_cast<double>(kSchemaVersion));
    meta("schedule", cli.get("schedule", std::string("asis")));
    meta("tile_kb",
         static_cast<double>(cli.get("tile-kb", std::int64_t{2048})));
    meta("pin", cli.get("pin", false) ? 1.0 : 0.0);
    meta("codec", cli.get("codec", std::string("auto")));
  }

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  ~JsonReport() { write(); }

  bool enabled() const noexcept { return !path_.empty(); }

  /// Top-level metadata (host, ISA, scale factors, ...).
  void meta(const std::string& key, const std::string& value) {
    meta_.emplace_back(key, quote(value));
  }
  void meta(const std::string& key, double value) {
    meta_.emplace_back(key, number(value));
  }

  /// Records a rendered stdout table under `section` (sections with the
  /// same name accumulate rows).
  void add_table(const std::string& section, const util::Table& table) {
    if (!enabled()) return;
    for (const auto& cells : table.row_cells()) {
      std::vector<std::pair<std::string, std::string>> row;
      for (std::size_t c = 0;
           c < cells.size() && c < table.header().size(); ++c) {
        row.emplace_back(table.header()[c], encode_cell(cells[c]));
      }
      rows_of(section).push_back(std::move(row));
    }
  }

  /// Records one free-form row; values pass through quote()/number().
  void add_row(const std::string& section,
               std::vector<std::pair<std::string, std::string>> encoded) {
    if (!enabled()) return;
    rows_of(section).push_back(std::move(encoded));
  }

  /// Value encoders for add_row.
  static std::string number(double v) {
    std::ostringstream os;
    os.precision(12);
    os << v;
    return os.str();
  }
  static std::string quote(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    out += obs::json_escape(s);
    out += '"';
    return out;
  }

  /// Writes the document; a no-op when disabled or already written.
  bool write() {
    if (!enabled() || written_) return false;
    written_ = true;
    std::ofstream out(path_);
    if (!out) {
      std::cerr << "json-out: cannot open " << path_ << "\n";
      return false;
    }
    out << "{\"bench\":\"" << obs::json_escape(bench_) << "\",\"meta\":{";
    for (std::size_t i = 0; i < meta_.size(); ++i) {
      if (i > 0) out << ",";
      out << "\"" << obs::json_escape(meta_[i].first)
          << "\":" << meta_[i].second;
    }
    out << "},\"sections\":{";
    for (std::size_t s = 0; s < sections_.size(); ++s) {
      if (s > 0) out << ",";
      out << "\"" << obs::json_escape(sections_[s].first) << "\":[";
      const auto& rows = sections_[s].second;
      for (std::size_t r = 0; r < rows.size(); ++r) {
        if (r > 0) out << ",";
        out << "{";
        for (std::size_t c = 0; c < rows[r].size(); ++c) {
          if (c > 0) out << ",";
          out << "\"" << obs::json_escape(rows[r][c].first)
              << "\":" << rows[r][c].second;
        }
        out << "}";
      }
      out << "]";
    }
    out << "}}\n";
    std::cout << "\njson-out: wrote " << path_ << "\n";
    return true;
  }

 private:
  using Row = std::vector<std::pair<std::string, std::string>>;

  std::vector<Row>& rows_of(const std::string& section) {
    for (auto& [name, rows] : sections_) {
      if (name == section) return rows;
    }
    sections_.emplace_back(section, std::vector<Row>{});
    return sections_.back().second;
  }

  /// Numbers stay numbers; everything else is quoted.
  static std::string encode_cell(const std::string& cell) {
    if (!cell.empty() &&
        cell.find_first_not_of("0123456789+-.eE") == std::string::npos) {
      double v = 0.0;
      const auto [ptr, ec] =
          std::from_chars(cell.data(), cell.data() + cell.size(), v);
      if (ec == std::errc() && ptr == cell.data() + cell.size()) return cell;
    }
    return quote(cell);
  }

  std::string bench_;
  std::string path_;
  bool written_ = false;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::pair<std::string, std::vector<Row>>> sections_;
};

}  // namespace hcc::bench
