// Shared helpers for the per-table/figure benchmark harnesses.
#pragma once

#include <iostream>
#include <string>

#include "data/datasets.hpp"
#include "sim/perf_model.hpp"

namespace hcc::bench {

/// DatasetShape (k = 128, the paper's setting) from a catalogue spec.
inline sim::DatasetShape shape_of(const data::DatasetSpec& spec,
                                  std::uint32_t k = 128) {
  return sim::DatasetShape{spec.name, spec.m, spec.n, spec.nnz, k};
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n==================================================================\n"
            << title << "\n(" << paper_ref << ")\n"
            << "==================================================================\n";
}

}  // namespace hcc::bench
