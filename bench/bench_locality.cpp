// Cache-aware rating scheduler baseline: epoch compute throughput per
// schedule policy, plus RMSE parity.
//
// Section "compute" isolates the bandwidth-bound term of Eq. 2: one
// worker-shaped slice (sorted by row, like assign_slices delivers), a
// P/Q factor pair at k=128, and the exact ASGD inner loop the TrainWorker
// runs (dispatched SIMD update + the prefetch-ahead hints), timed per
// visit-order policy.  `asis` sweeps each user row across the whole item
// range — every Q row falls out of L2 between touches — while `tiled`
// confines the working set to a cache-sized 2-D block, so the delta is
// exactly the effective-bandwidth gain the schedule buys.
//
// Section "parity" trains full HccMf runs per policy across seeds and
// records the final test RMSE: any visit order must converge statistically
// alike (docs/locality.md).
//
// `--json-out BENCH_locality.json` persists the recorded baseline; CI
// re-runs this on a multi-core runner and asserts tiled >= as-is compute
// throughput with RMSE parity.
//
// Flags: --json-out=PATH     machine-readable output (JsonReport format)
//        --scale=S           movielens scale for the compute section (1.0)
//        --k=K               latent dimension (default 128, the paper's)
//        --reps=N            timed passes per policy (default 3)
//        --tile-kb=KB        tile working-set budget (default 2048)
//        --parity-scale=S    movielens scale for the parity runs (0.02)
//        --parity-epochs=N   epochs per parity run (default 6)
//        --seeds=N           parity seeds per policy (default 2)
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/hccmf.hpp"
#include "data/datasets.hpp"
#include "data/schedule.hpp"
#include "mf/kernels.hpp"
#include "mf/model.hpp"
#include "util/cli.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace hcc;

namespace {

struct PolicyConfig {
  std::string label;
  data::ScheduleOptions options;
};

struct ComputeResult {
  std::string label;
  double mupdates_s = 0.0;
  double effective_gbps = 0.0;   ///< Eq. 2's B solved from the compute time
  double reorder_ms = 0.0;       ///< avg per-epoch reorder cost
  std::uint32_t tiles = 1;
  double speedup = 1.0;          ///< vs the as-is row
};

/// The TrainWorker inner loop, verbatim: prefetch-ahead + dispatched SGD.
double timed_pass(std::span<const data::Rating> entries, mf::FactorModel& model,
                  float lr, float reg) {
  const std::uint32_t k = model.k();
  const std::span<float> q = model.q_data();
  constexpr std::size_t kPrefetchAhead = 4;
  util::Stopwatch watch;
  for (std::size_t idx = 0; idx < entries.size(); ++idx) {
    if (idx + kPrefetchAhead < entries.size()) {
      const auto& f = entries[idx + kPrefetchAhead];
      mf::sgd_prefetch_rows(model.p(f.u), &q[std::size_t(f.i) * k], k);
    }
    const auto& e = entries[idx];
    mf::sgd_update_dispatch(model.p(e.u), &q[std::size_t(e.i) * k], k, e.r,
                            lr, reg, reg);
  }
  return watch.seconds();
}

ComputeResult run_compute(const PolicyConfig& policy,
                          const data::RatingMatrix& base, std::uint32_t k,
                          std::uint32_t reps) {
  data::RatingMatrix slice = base;  // fresh copy: policies must not compound
  const data::RatingScheduler sched(policy.options, k);
  mf::FactorModel model(slice.rows(), slice.cols(), k);
  util::Rng rng(17);
  model.init_random(rng, 3.5f);

  ComputeResult r;
  r.label = policy.label;
  double compute_s = 0.0;
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    util::Stopwatch reorder;
    const data::ScheduleStats stats = sched.prepare(slice, rep);
    r.reorder_ms += reorder.seconds() * 1e3;
    if (stats.tiles > 0) r.tiles = stats.tiles;
    compute_s += timed_pass(slice.entries(), model, 0.005f, 0.01f);
  }
  const double updates = static_cast<double>(slice.nnz()) * reps;
  r.mupdates_s = compute_s > 0.0 ? updates / compute_s / 1e6 : 0.0;
  r.effective_gbps =
      compute_s > 0.0 ? updates * (16.0 * k + 4.0) / compute_s / 1e9 : 0.0;
  r.reorder_ms /= reps;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const double scale = cli.get("scale", 1.0);
  const std::uint32_t k =
      static_cast<std::uint32_t>(cli.get("k", std::int64_t{128}));
  const std::uint32_t reps =
      static_cast<std::uint32_t>(cli.get("reps", std::int64_t{3}));
  const std::uint32_t tile_kb =
      static_cast<std::uint32_t>(cli.get("tile-kb", std::int64_t{2048}));
  const double parity_scale = cli.get("parity-scale", 0.02);
  const std::uint32_t parity_epochs =
      static_cast<std::uint32_t>(cli.get("parity-epochs", std::int64_t{6}));
  const std::uint32_t seeds =
      static_cast<std::uint32_t>(cli.get("seeds", std::int64_t{2}));

  bench::banner(
      "Cache-aware rating schedule: epoch compute throughput per policy",
      "tiled traversal vs the legacy row-sorted order (docs/locality.md)");

  std::vector<PolicyConfig> policies;
  policies.push_back({"asis", {}});
  {
    data::ScheduleOptions o;
    o.policy = data::SchedulePolicy::kShuffled;
    policies.push_back({"shuffled", o});
  }
  {
    data::ScheduleOptions o;
    o.policy = data::SchedulePolicy::kTiled;
    o.tile_kb = tile_kb;
    policies.push_back({"tiled", o});
  }
  {
    data::ScheduleOptions o;
    o.policy = data::SchedulePolicy::kTiled;
    o.tile_kb = tile_kb;
    o.zorder = true;
    policies.push_back({"tiled+z", o});
  }

  // One worker-shaped slice: MovieLens-scale, sorted by row — exactly what
  // assign_slices hands a worker (the `asis` baseline order).
  const data::DatasetSpec spec = data::movielens20m_spec().scaled(scale);
  data::GeneratorConfig gen;
  gen.seed = 5;
  gen.planted_rank = 4;
  data::RatingMatrix base = data::generate(spec, gen);
  base.sort_by_row();
  const double q_mb = static_cast<double>(base.cols()) * k * 4.0 / 1e6;
  std::cout << "slice: " << spec.name << "  " << base.rows() << " x "
            << base.cols() << ", " << base.nnz() << " ratings, Q = "
            << util::Table::num(q_mb, 1) << " MB at k=" << k << "\n\n";

  bench::JsonReport report(argc, argv, "locality");
  report.meta("dataset", spec.name);
  report.meta("nnz", static_cast<double>(base.nnz()));
  report.meta("k", static_cast<double>(k));
  report.meta("reps", static_cast<double>(reps));
  report.meta("q_mb", q_mb);

  std::vector<ComputeResult> results;
  for (const auto& policy : policies) {
    results.push_back(run_compute(policy, base, k, reps));
  }
  const double asis_rate = results.front().mupdates_s;
  for (auto& r : results) {
    r.speedup = asis_rate > 0.0 ? r.mupdates_s / asis_rate : 0.0;
  }

  util::Table table({"schedule", "Mupd/s", "eff GB/s", "speedup vs asis",
                     "tiles", "reorder ms/epoch"});
  for (const auto& r : results) {
    table.add_row({r.label, util::Table::num(r.mupdates_s, 1),
                   util::Table::num(r.effective_gbps, 2),
                   util::Table::num(r.speedup, 3) + "x",
                   std::to_string(r.tiles),
                   util::Table::num(r.reorder_ms, 2)});
    report.add_row(
        "compute",
        {{"schedule", bench::JsonReport::quote(r.label)},
         {"mupdates_s", bench::JsonReport::number(r.mupdates_s)},
         {"effective_gbps", bench::JsonReport::number(r.effective_gbps)},
         {"speedup_vs_asis", bench::JsonReport::number(r.speedup)},
         {"tiles", bench::JsonReport::number(static_cast<double>(r.tiles))},
         {"reorder_ms", bench::JsonReport::number(r.reorder_ms)}});
  }
  table.print(std::cout);

  // RMSE parity: full trainings per policy across seeds; the visit order
  // must not change where SGD converges.
  std::cout << "\nparity (full HccMf runs, scale=" << parity_scale << ", "
            << parity_epochs << " epochs):\n";
  const data::DatasetSpec pspec = data::movielens20m_spec().scaled(parity_scale);
  util::Table parity({"schedule", "seed", "final rmse"});
  for (const auto& policy : policies) {
    for (std::uint32_t seed = 0; seed < seeds; ++seed) {
      data::GeneratorConfig pgen;
      pgen.seed = 100 + seed;
      pgen.planted_rank = 4;
      const auto full = data::generate(pspec, pgen);
      util::Rng split_rng(200 + seed);
      const auto [train, test] = data::train_test_split(full, 0.1, split_rng);

      core::HccMfConfig config;
      config.sgd = mf::SgdConfig::for_dataset(pspec.reg_lambda, 0.01f, 16);
      config.sgd.epochs = parity_epochs;
      config.sgd.seed = 300 + seed;
      config.comm.fp16 = false;
      config.platform = sim::paper_workstation_hetero();
      for (auto& w : config.platform.workers) w.epoch_overhead_s = 0.0;
      config.dataset_name = pspec.name;
      config.schedule = policy.options;
      const core::TrainReport run =
          core::HccMf(config).train(train, &test);
      const double rmse = run.epochs.back().test_rmse;
      parity.add_row({policy.label, std::to_string(seed),
                      util::Table::num(rmse, 4)});
      report.add_row("parity",
                     {{"schedule", bench::JsonReport::quote(policy.label)},
                      {"seed", bench::JsonReport::number(seed)},
                      {"final_rmse", bench::JsonReport::number(rmse)}});
    }
  }
  parity.print(std::cout);

  std::cout << "\nnote: the tiled speedup needs Q (" << util::Table::num(q_mb, 1)
            << " MB) to exceed the private cache; shrink --scale and the "
               "policies converge\n";
  return 0;
}
