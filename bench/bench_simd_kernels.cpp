// SIMD backend baseline: scalar vs dispatched kernels, per ISA.
//
// Measures the three hot loops the runtime dispatches through src/simd/ —
// the SGD update kernel (paper footnote 1: hand-vectorized FPSGD update,
// 1.8-2.3x), the FP16 wire codec (Section 3.4 Strategy 2: "AVX intrinsics,
// multi-threaded") and the streaming reductions (dot / sum-of-squares) —
// on every ISA the host can run, and reports per-kernel throughput plus the
// speedup over the scalar reference.  `--json-out BENCH_simd.json` persists
// the numbers as the repo's recorded perf baseline (see docs/simd.md).
//
// Flags: --json-out=PATH   machine-readable output (JsonReport format)
//        --min-time=S      seconds per measurement (default 0.15)
//        --fp16-n=N        floats per codec batch (default 1<<20)
#include <chrono>
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "simd/dispatch.hpp"
#include "util/cli.hpp"
#include "util/fp16.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace hcc;

namespace {

template <typename T>
inline void do_not_optimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

/// Calibrating timer: grows the batch until one timed run covers
/// `min_time` seconds, then returns seconds per iteration.
template <typename F>
double time_per_iter(F&& body, double min_time) {
  using clock = std::chrono::steady_clock;
  body();  // warmup (page-in, turbo ramp, dispatch resolution)
  std::size_t iters = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < iters; ++i) body();
    const double dt = std::chrono::duration<double>(clock::now() - t0).count();
    if (dt >= min_time) return dt / static_cast<double>(iters);
    const double target = min_time * 1.2;
    const std::size_t grow =
        dt > 0.0 ? static_cast<std::size_t>(target / dt) + 1 : 8;
    iters *= (grow < 2 ? 2 : (grow > 16 ? 16 : grow));
  }
}

struct Measurement {
  std::string kernel;
  std::string isa;
  std::uint64_t size = 0;     ///< k for SGD/dot, n for codec/reductions
  double per_iter_s = 0.0;
  double items_per_s = 0.0;   ///< updates/s or floats/s
  double gb_per_s = 0.0;      ///< source bytes streamed per second
  double speedup = 1.0;       ///< scalar per_iter_s / this per_iter_s
};

std::vector<float> random_floats(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal(0.2, 0.1));
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const double min_time = cli.get("min-time", 0.15);
  const std::size_t fp16_n =
      static_cast<std::size_t>(cli.get("fp16-n", std::int64_t{1} << 20));
  const std::vector<std::uint32_t> sgd_ks{8, 32, 128};

  bench::banner("SIMD kernel baseline: scalar vs dispatched backends",
                "paper footnote 1 (vectorized FPSGD kernel) + Section 3.4 "
                "Strategy 2 (FP16 codec)");

  bench::JsonReport report(argc, argv, "simd_kernels");
  report.meta("active_isa", simd::kernels().name);
  report.meta("detected_isa", simd::isa_name(simd::detect_best_isa()));
  report.meta("min_time_s", min_time);
  report.meta("fp16_n", static_cast<double>(fp16_n));

  std::vector<const simd::KernelTable*> tables;
  for (const simd::Isa isa : {simd::Isa::kScalar, simd::Isa::kNeon,
                              simd::Isa::kAvx2, simd::Isa::kAvx512}) {
    if (const simd::KernelTable* t = simd::kernels_for(isa)) {
      tables.push_back(t);
    }
  }

  std::vector<Measurement> results;
  // scalar per_iter_s per (kernel, size), the speedup denominator; the
  // scalar table is always tables.front().
  std::map<std::pair<std::string, std::uint64_t>, double> scalar_time;

  for (const simd::KernelTable* table : tables) {
    // --- SGD update, one (p, q) row pair per rank -----------------------
    for (const std::uint32_t k : sgd_ks) {
      auto p = random_floats(k, 1);
      auto q = random_floats(k, 2);
      Measurement m;
      m.kernel = "sgd_update";
      m.isa = table->name;
      m.size = k;
      m.per_iter_s = time_per_iter(
          [&] {
            do_not_optimize(
                table->sgd_update(p.data(), q.data(), k, 4.0f, 0.005f,
                                  0.01f, 0.01f));
          },
          min_time);
      m.items_per_s = 1.0 / m.per_iter_s;
      // One update streams both rows twice (read + write).
      m.gb_per_s = 4.0 * k * sizeof(float) / m.per_iter_s / 1e9;
      results.push_back(m);
    }

    // --- FP16 codec -----------------------------------------------------
    {
      const auto src = random_floats(fp16_n, 3);
      std::vector<util::Half> halves(fp16_n);
      std::vector<float> back(fp16_n);
      Measurement enc;
      enc.kernel = "fp16_encode";
      enc.isa = table->name;
      enc.size = fp16_n;
      enc.per_iter_s = time_per_iter(
          [&] {
            table->fp16_encode(src.data(), halves.data(), fp16_n);
            do_not_optimize(halves.data());
          },
          min_time);
      enc.items_per_s = fp16_n / enc.per_iter_s;
      enc.gb_per_s = fp16_n * sizeof(float) / enc.per_iter_s / 1e9;
      results.push_back(enc);

      Measurement dec;
      dec.kernel = "fp16_decode";
      dec.isa = table->name;
      dec.size = fp16_n;
      dec.per_iter_s = time_per_iter(
          [&] {
            table->fp16_decode(halves.data(), back.data(), fp16_n);
            do_not_optimize(back.data());
          },
          min_time);
      dec.items_per_s = fp16_n / dec.per_iter_s;
      dec.gb_per_s = fp16_n * sizeof(util::Half) / dec.per_iter_s / 1e9;
      results.push_back(dec);
    }

    // --- Streaming reductions (the RMSE/objective hot loops) ------------
    {
      const std::uint32_t n = 1u << 20;
      const auto a = random_floats(n, 4);
      const auto b = random_floats(n, 5);
      Measurement dot;
      dot.kernel = "dot";
      dot.isa = table->name;
      dot.size = n;
      dot.per_iter_s = time_per_iter(
          [&] { do_not_optimize(table->dot(a.data(), b.data(), n)); },
          min_time);
      dot.items_per_s = static_cast<double>(n) / dot.per_iter_s;
      dot.gb_per_s = 2.0 * n * sizeof(float) / dot.per_iter_s / 1e9;
      results.push_back(dot);

      Measurement ssq;
      ssq.kernel = "sum_squares";
      ssq.isa = table->name;
      ssq.size = n;
      ssq.per_iter_s = time_per_iter(
          [&] { do_not_optimize(table->sum_squares(a.data(), n)); },
          min_time);
      ssq.items_per_s = static_cast<double>(n) / ssq.per_iter_s;
      ssq.gb_per_s = n * sizeof(float) / ssq.per_iter_s / 1e9;
      results.push_back(ssq);
    }
  }

  for (auto& m : results) {
    const auto key = std::make_pair(m.kernel, m.size);
    if (m.isa == "scalar") scalar_time[key] = m.per_iter_s;
    const auto it = scalar_time.find(key);
    if (it != scalar_time.end() && m.per_iter_s > 0.0) {
      m.speedup = it->second / m.per_iter_s;
    }
  }

  util::Table table({"kernel", "isa", "size", "items/s", "GB/s",
                     "speedup vs scalar"});
  for (const auto& m : results) {
    table.add_row({m.kernel, m.isa, std::to_string(m.size),
                   util::Table::num(m.items_per_s, 4),
                   util::Table::num(m.gb_per_s, 3),
                   util::Table::num(m.speedup, 2) + "x"});
    report.add_row(
        "kernels",
        {{"kernel", bench::JsonReport::quote(m.kernel)},
         {"isa", bench::JsonReport::quote(m.isa)},
         {"size", bench::JsonReport::number(static_cast<double>(m.size))},
         {"items_per_s", bench::JsonReport::number(m.items_per_s)},
         {"gb_per_s", bench::JsonReport::number(m.gb_per_s)},
         {"speedup_vs_scalar", bench::JsonReport::number(m.speedup)}});
  }
  table.print(std::cout);

  std::cout << "\nreference points: paper footnote 1 reports 1.8-2.3x from "
               "SSE/AVX/AVX512F on the FPSGD update kernel\n";
  return 0;
}
