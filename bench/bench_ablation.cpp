// Ablations over HCC-MF's design choices (DESIGN.md's ablation targets):
//   1. the lambda threshold (Eq. 5) that switches DP1 <-> DP2,
//   2. the async stream depth (Strategy 3),
//   3. each communication optimization toggled independently,
//   4. worker pruning on the sync-bound shapes,
//   5. sensitivity to the compute-drift calibration (how much DP1 matters).
#include <iostream>

#include "bench_common.hpp"
#include "core/hccmf.hpp"
#include "util/table.hpp"

using namespace hcc;

namespace {

core::HccMfConfig base_config(const std::string& dataset) {
  core::HccMfConfig config;
  config.sgd.epochs = 20;
  config.platform = sim::paper_workstation_hetero();
  config.dataset_name = dataset;
  return config;
}

double run(const core::HccMfConfig& config, const sim::DatasetShape& shape) {
  core::HccMfConfig copy = config;
  return core::HccMf(copy).simulate(shape).total_virtual_s;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json_out(argc, argv, "ablation");
  const sim::DatasetShape netflix = bench::shape_of(data::netflix_spec());
  const sim::DatasetShape r1star = bench::shape_of(data::yahoo_r1_star_spec());
  const sim::DatasetShape movielens =
      bench::shape_of(data::movielens20m_spec());

  // ------------------------------------------------------------------
  bench::banner("Ablation 1: the lambda threshold (Eq. 5)",
                "strategy auto-selection; paper fixes lambda = 10");
  {
    util::Table table({"lambda", "netflix strategy", "netflix (s)",
                       "R1* strategy", "R1* (s)"});
    for (double lambda : {0.1, 1.0, 10.0, 100.0, 1e6}) {
      std::vector<std::string> row{util::Table::num(lambda, 1)};
      for (const auto* shape : {&netflix, &r1star}) {
        core::HccMfConfig config = base_config(shape == &netflix
                                                   ? "netflix"
                                                   : "r1star");
        config.manager.lambda = lambda;
        core::HccMf framework(config);
        const core::Plan plan = framework.plan_for(*shape);
        row.push_back(core::partition_strategy_name(plan.chosen));
        row.push_back(util::Table::num(run(config, *shape), 3));
      }
      table.add_row(row);
    }
    json_out.add_table("strategies", table);
    table.print(std::cout);
    std::cout << "shape: Netflix switches DP1->DP2 only at absurd lambda; "
                 "R1* needs DP2 already at the paper's lambda=10\n";
  }

  // ------------------------------------------------------------------
  bench::banner("Ablation 2: async stream depth (Strategy 3)",
                "Figure 6 claims exposed comm ~ 1/streams; GPU engines cap at 4");
  {
    util::Table table({"streams", "movielens (s)", "vs 1 stream",
                       "netflix (s)", "vs 1 stream"});
    double ml_base = 0.0;
    double nf_base = 0.0;
    for (std::uint32_t streams : {1u, 2u, 4u, 8u}) {
      core::HccMfConfig ml = base_config("movielens");
      ml.comm.streams = streams;
      core::HccMfConfig nf = base_config("netflix");
      nf.comm.streams = streams;
      const double ml_t = run(ml, movielens);
      const double nf_t = run(nf, netflix);
      if (streams == 1) {
        ml_base = ml_t;
        nf_base = nf_t;
      }
      table.add_row({std::to_string(streams), util::Table::num(ml_t, 3),
                     util::Table::num(ml_base / ml_t, 2) + "x",
                     util::Table::num(nf_t, 3),
                     util::Table::num(nf_base / nf_t, 2) + "x"});
    }
    json_out.add_table("streams", table);
    table.print(std::cout);
    std::cout << "shape: streams trade exposed comm against mid-epoch sync "
                 "contention on the server-sharing worker (2 streams can "
                 "lose on MovieLens); nothing changes past the 4 copy "
                 "engines\n";
  }

  // ------------------------------------------------------------------
  bench::banner("Ablation 3: communication optimizations, one at a time",
                "Section 3.4's three strategies, isolated");
  {
    struct Variant {
      std::string label;
      bool reduce, fp16;
      std::uint32_t streams;
      bool sparse;
    };
    const std::vector<Variant> variants = {
        {"none", false, false, 1, false},
        {"+ Q-only", true, false, 1, false},
        {"+ FP16", false, true, 1, false},
        {"+ streams", false, false, 4, false},
        {"all three", true, true, 4, false},
        {"all + sparse push (ext.)", true, true, 4, true},
    };
    util::Table table({"config", "netflix (s)", "movielens (s)", "R1* (s)"});
    for (const auto& v : variants) {
      std::vector<std::string> row{v.label};
      for (const auto& [name, shape] :
           std::vector<std::pair<std::string, const sim::DatasetShape*>>{
               {"netflix", &netflix},
               {"movielens", &movielens},
               {"r1star", &r1star}}) {
        core::HccMfConfig config = base_config(name);
        config.comm.reduce_payload = v.reduce;
        config.comm.fp16 = v.fp16;
        config.comm.streams = v.streams;
        config.comm.sparse = v.sparse;
        row.push_back(util::Table::num(run(config, *shape), 3));
      }
      table.add_row(row);
    }
    json_out.add_table("configs", table);
    table.print(std::cout);
    std::cout << "note: sparse push is ~neutral here — with 4 workers every "
                 "paper dataset is dense enough that each slice touches "
                 "almost all items; it pays on very sparse/square shapes "
                 "with many workers (see comm_sparse_test)\n";
  }

  // ------------------------------------------------------------------
  bench::banner("Ablation 4: worker pruning on sync-bound shapes",
                "DataManagerOptions::prune_unhelpful_workers (extension)");
  {
    util::Table table({"dataset", "all 4 workers (s)", "pruned (s)", "gain"});
    for (const auto& [name, shape] :
         std::vector<std::pair<std::string, const sim::DatasetShape*>>{
             {"netflix", &netflix},
             {"r1star", &r1star},
             {"movielens", &movielens}}) {
      core::HccMfConfig all = base_config(name);
      all.comm.streams = 4;
      core::HccMfConfig pruned = all;
      pruned.manager.prune_unhelpful_workers = true;
      const double t_all = run(all, *shape);
      const double t_pruned = run(pruned, *shape);
      table.add_row({name, util::Table::num(t_all, 3),
                     util::Table::num(t_pruned, 3),
                     util::Table::num(100 * (t_all - t_pruned) / t_all, 1) +
                         "%"});
    }
    json_out.add_table("pruning", table);
    table.print(std::cout);
    std::cout << "shape: pruning is a no-op on compute-bound sets and pays "
                 "on comm/sync-bound ones\n";
  }

  // ------------------------------------------------------------------
  bench::banner("Ablation 5: compute-drift sensitivity (DP0 vs DP1 gap)",
                "how much assignment-size rate drift makes DP1 matter");
  {
    util::Table table({"GPU drift", "DP0 (s)", "DP1 (s)", "DP1 gain"});
    for (double drift : {0.0, 0.05, 0.10, 0.20}) {
      core::HccMfConfig config = base_config("netflix");
      for (auto& w : config.platform.workers) {
        if (w.cls == sim::DeviceClass::kGpu) w.compute_drift = drift;
      }
      config.partition = core::PartitionStrategy::kDp0;
      const double dp0 = run(config, netflix);
      config.partition = core::PartitionStrategy::kDp1;
      const double dp1 = run(config, netflix);
      table.add_row({util::Table::num(drift, 2), util::Table::num(dp0, 3),
                     util::Table::num(dp1, 3),
                     util::Table::num(100 * (dp0 - dp1) / dp0, 1) + "%"});
    }
    json_out.add_table("drift", table);
    table.print(std::cout);
    std::cout << "shape: with no drift DP0 is already optimal (Theorem 1); "
                 "the DP1 gain grows with the CPU/GPU drift gap\n";
  }

  // ------------------------------------------------------------------
  bench::banner("Ablation 6: adaptive repartitioning under throttling",
                "extension; the 2080S drops to 50% speed from epoch 10 of 40");
  {
    auto throttle = [](std::uint32_t epoch, std::size_t worker) {
      return (worker == 0 && epoch >= 10) ? 0.5 : 1.0;
    };
    util::Table table({"dataset", "static (s)", "adaptive (s)", "recovered",
                       "repartitions"});
    for (const auto& [name, shape] :
         std::vector<std::pair<std::string, const sim::DatasetShape*>>{
             {"netflix", &netflix}, {"r1star", &r1star}}) {
      core::HccMfConfig config = base_config(name);
      config.sgd.epochs = 40;
      config.rate_disturbance = throttle;

      core::HccMfConfig no_throttle = base_config(name);
      no_throttle.sgd.epochs = 40;
      const double ideal = run(no_throttle, *shape);

      const double static_t = run(config, *shape);
      config.adaptive_repartition = true;
      core::HccMf framework(config);
      const core::TrainReport adaptive = framework.simulate(*shape);

      // Fraction of the throttle damage the controller claws back.
      const double recovered =
          (static_t - adaptive.total_virtual_s) / (static_t - ideal);
      table.add_row({name, util::Table::num(static_t, 3),
                     util::Table::num(adaptive.total_virtual_s, 3),
                     util::Table::num(100 * recovered, 1) + "%",
                     std::to_string(adaptive.repartitions)});
    }
    json_out.add_table("adaptive", table);
    table.print(std::cout);
    std::cout << "shape: the online proportional rebalance recovers most of "
                 "the imbalance a mid-training slowdown causes\n";
  }
  return 0;
}
