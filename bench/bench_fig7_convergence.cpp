// Figure 7 (Section 4.2): convergence rate and training speed of HCC-MF vs
// FPSGD (CPU baseline) and CuMF_SGD-style batched SGD (GPU baseline) on
// Netflix-, R1- and R2-shaped datasets.  Also prints the Table 3 dataset
// parameters for reference.
//
// Functional layer: real SGD on scaled-down synthetic datasets -> real RMSE
// curves (Figure 7 a-c).  Timing layer: the virtual platform clocks each
// trainer (Figure 7 d-f); HCC-MF runs on the full workstation, FPSGD on the
// 6242 and CuMF on the 2080S, so the speedup factors are the paper's
// comparison.  Expected shape: equivalent per-epoch convergence, HCC
// several times faster per epoch (paper: 2.3x/5.75x on Netflix,
// 1.43x/6.96x on R1, 2.9x/3.13x on R2).
//
//   --scale_nnz=150000 controls the synthetic size; --epochs=30.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/hccmf.hpp"
#include "mf/batched.hpp"
#include "mf/fpsgd.hpp"
#include "mf/metrics.hpp"
#include "mf/trainer.hpp"
#include "sim/trace_export.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace hcc;

namespace {

struct SeriesResult {
  std::vector<double> rmse;       // per epoch
  double epoch_seconds = 0.0;     // virtual seconds per epoch
  std::string name;
};

double time_to_reach(const SeriesResult& series, double target_rmse) {
  for (std::size_t e = 0; e < series.rmse.size(); ++e) {
    if (series.rmse[e] <= target_rmse) {
      return (static_cast<double>(e) + 1) * series.epoch_seconds;
    }
  }
  return static_cast<double>(series.rmse.size()) * series.epoch_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json_out(argc, argv, "fig7_convergence");
  const util::Cli cli(argc, argv);
  const std::uint64_t target_nnz = cli.get("scale_nnz", std::int64_t{150000});
  const std::uint32_t epochs =
      static_cast<std::uint32_t>(cli.get("epochs", std::int64_t{30}));

  bench::banner("Table 3: datasets and training parameters", "paper Table 3");
  {
    util::Table t({"data set", "m", "n", "nnz", "lambda1,2", "gamma"});
    for (const auto& spec : data::paper_datasets()) {
      t.add_row({spec.name, std::to_string(spec.m), std::to_string(spec.n),
                 std::to_string(spec.nnz),
                 util::Table::num(spec.reg_lambda, 2), "0.005"});
    }
    json_out.add_table("datasets", t);
    t.print(std::cout);
  }

  bench::banner(
      "Figure 7: convergence rate and training speed, HCC vs FPSGD vs CuMF_SGD",
      "paper Figure 7 a-f; synthetic data scaled to ~" +
          std::to_string(target_nnz) + " ratings, timings from the virtual platform");

  for (const char* dataset : {"netflix", "r1", "r2"}) {
    const data::DatasetSpec base = data::dataset_by_name(dataset);
    const double scale =
        static_cast<double>(target_nnz) / static_cast<double>(base.nnz);
    const data::DatasetSpec spec = base.scaled(scale);
    data::GeneratorConfig gen;
    gen.seed = 31;
    gen.planted_rank = 4;
    const data::RatingMatrix full = data::generate(spec, gen);
    util::Rng rng(32);
    const auto [train, test] = data::train_test_split(full, 0.1, rng);

    // Step size scaled to the rating range (R1 is a 0-100 scale).
    const float lr = 0.01f * (5.0f / std::max(5.0f, spec.rating_max));
    mf::SgdConfig sgd = mf::SgdConfig::for_dataset(0.02f, lr, 16);
    sgd.epochs = epochs;

    // Virtual per-epoch seconds at full paper scale for each contender.
    const sim::DatasetShape paper_shape = bench::shape_of(base);

    std::vector<SeriesResult> series;

    // --- HCC-MF on the workstation ------------------------------------
    {
      core::HccMfConfig config;
      config.sgd = sgd;
      config.platform = sim::paper_workstation_hetero();
      for (auto& w : config.platform.workers) w.epoch_overhead_s = 0.0;
      config.comm.streams = 4;  // Strategy 3 (the paper uses it on R1)
      config.dataset_name = spec.name;
      const core::TrainReport report =
          core::HccMf(config).train(train, &test);
      SeriesResult s;
      s.name = "HCC";
      for (const auto& e : report.epochs) s.rmse.push_back(e.test_rmse);
      // Clock the paper-scale run on the same platform in its production
      // configuration (all strategies + worker pruning), averaged over the
      // 20-epoch schedule so the final P&Q push amortizes.
      core::HccMfConfig paper_cfg;
      paper_cfg.sgd.epochs = 20;
      paper_cfg.platform = sim::paper_workstation_hetero();
      paper_cfg.comm.streams = 4;
      paper_cfg.manager.prune_unhelpful_workers = true;
      paper_cfg.dataset_name = base.name;
      s.epoch_seconds =
          core::HccMf(paper_cfg).simulate(paper_shape).total_virtual_s / 20.0;
      series.push_back(std::move(s));
    }

    // --- FPSGD on the CPU ----------------------------------------------
    {
      mf::FactorModel model(spec.m, spec.n, sgd.k);
      util::Rng mrng(33);
      model.init_random(mrng, 0.5f * (spec.rating_min + spec.rating_max));
      mf::FpsgdTrainer trainer(sgd, 3);
      SeriesResult s;
      s.name = "FPSGD";
      s.rmse = mf::train_and_trace(trainer, model, train, test, epochs);
      s.epoch_seconds = sim::compute_seconds(sim::xeon_6242_24t(),
                                             paper_shape, 1.0) +
                        sim::xeon_6242_24t().epoch_overhead_s;
      series.push_back(std::move(s));
    }

    // --- CuMF_SGD-style batched on the GPU ------------------------------
    {
      util::ThreadPool pool(2);
      mf::FactorModel model(spec.m, spec.n, sgd.k);
      util::Rng mrng(33);
      model.init_random(mrng, 0.5f * (spec.rating_min + spec.rating_max));
      mf::BatchedTrainer trainer(sgd, pool, 8);
      SeriesResult s;
      s.name = "cuMF_SGD";
      s.rmse = mf::train_and_trace(trainer, model, train, test, epochs);
      s.epoch_seconds =
          sim::compute_seconds(sim::rtx_2080s(), paper_shape, 1.0) +
          sim::rtx_2080s().epoch_overhead_s;
      series.push_back(std::move(s));
    }

    // Optional machine-readable dump: --csv_prefix=/tmp/fig7 writes
    // /tmp/fig7_<dataset>.csv with epoch, HCC, FPSGD, cuMF columns.
    if (cli.has("csv_prefix")) {
      std::vector<std::vector<double>> rows;
      for (std::uint32_t e = 0; e < epochs; ++e) {
        rows.push_back({static_cast<double>(e + 1), series[0].rmse[e],
                        series[1].rmse[e], series[2].rmse[e]});
      }
      const std::string path = cli.get("csv_prefix", std::string()) + "_" +
                               dataset + ".csv";
      if (sim::export_series_csv({"epoch", "hcc", "fpsgd", "cumf"}, rows,
                                 path)) {
        std::cout << "(series written to " << path << ")\n";
      }
    }

    // --- Figure 7 (a-c): RMSE vs epoch ----------------------------------
    std::cout << "\n[" << dataset << "] RMSE vs epoch (Figure 7a-c shape: "
              << "all three curves overlap)\n";
    util::Table by_epoch({"epoch", "HCC", "FPSGD", "cuMF_SGD"});
    for (std::uint32_t e = 0; e < epochs; e += std::max(1u, epochs / 8)) {
      by_epoch.add_row({std::to_string(e + 1),
                        util::Table::num(series[0].rmse[e], 4),
                        util::Table::num(series[1].rmse[e], 4),
                        util::Table::num(series[2].rmse[e], 4)});
    }
    json_out.add_table("by_epoch", by_epoch);
    by_epoch.print(std::cout);

    // --- Figure 7 (d-f): RMSE vs (virtual) training time ----------------
    // Target: 5% above the worst contender's final RMSE, a level every
    // trainer reaches comfortably before its last epoch (the paper's d-f
    // panels compare at equivalent convergence; our HCC trails the serial
    // baselines by a few epochs early on, see EXPERIMENTS.md).
    const double target =
        1.05 * std::max({series[0].rmse.back(), series[1].rmse.back(),
                         series[2].rmse.back()});
    std::cout << "\n[" << dataset
              << "] virtual time to reach RMSE <= "
              << util::Table::num(target, 4) << " (Figure 7d-f shape)\n";
    util::Table by_time({"trainer", "s/epoch (paper scale)",
                         "per-epoch speedup", "time to target (s)",
                         "HCC speedup"});
    const double hcc_time = time_to_reach(series[0], target);
    for (const auto& s : series) {
      const double t = time_to_reach(s, target);
      by_time.add_row({s.name, util::Table::num(s.epoch_seconds, 4),
                       util::Table::num(
                           s.epoch_seconds / series[0].epoch_seconds, 2) + "x",
                       util::Table::num(t, 3),
                       util::Table::num(t / hcc_time, 2) + "x"});
    }
    json_out.add_table("by_time", by_time);
    by_time.print(std::cout);
  }

  std::cout << "\npaper's speedup callouts: Netflix 2.3x (cuMF) / 5.75x "
               "(FPSGD); R1 1.43x / 6.96x; R2 2.9x / 3.13x\n";
  return 0;
}
