// Related-work comparison (Section 5): all implemented SGD-MF schedules on
// one problem — serial, Hogwild, FPSGD, CuMF-style batched, DSGD and
// NOMAD — plus HCC-MF.  Functional comparison on a scaled synthetic set:
// convergence after a fixed epoch budget, host-side throughput, and the
// schedule properties the paper argues about (NOMAD's message volume,
// DSGD's barriers, FPSGD's block locking).
#include <iostream>

#include "bench_common.hpp"
#include "core/hccmf.hpp"
#include "mf/batched.hpp"
#include "mf/dsgd.hpp"
#include "mf/fpsgd.hpp"
#include "mf/hogwild.hpp"
#include "mf/metrics.hpp"
#include "mf/nomad.hpp"
#include "util/clock.hpp"
#include "util/table.hpp"

using namespace hcc;

int main(int argc, char** argv) {
  bench::JsonReport json_out(argc, argv, "related_baselines");
  bench::banner(
      "Related work: every SGD-MF schedule on one problem (functional)",
      "Section 5's solution space; scaled Netflix shape, 10 epochs, k=16");

  const data::DatasetSpec spec = data::netflix_spec().scaled(0.002);
  data::GeneratorConfig gen;
  gen.seed = 51;
  gen.planted_rank = 4;
  const auto full = data::generate(spec, gen);
  util::Rng rng(52);
  const auto [train, test] = data::train_test_split(full, 0.1, rng);

  mf::SgdConfig config = mf::SgdConfig::for_dataset(0.02f, 0.01f, 16);
  config.epochs = 10;

  util::ThreadPool pool(3);
  std::vector<std::unique_ptr<mf::Trainer>> trainers;
  trainers.push_back(std::make_unique<mf::SerialSgd>(config));
  trainers.push_back(std::make_unique<mf::HogwildTrainer>(config, pool));
  trainers.push_back(std::make_unique<mf::FpsgdTrainer>(config, 3));
  trainers.push_back(std::make_unique<mf::BatchedTrainer>(config, pool, 8));
  trainers.push_back(std::make_unique<mf::DsgdTrainer>(config, pool, 3));
  trainers.push_back(std::make_unique<mf::NomadTrainer>(config, 3));

  util::Table table({"schedule", "final RMSE", "host Mupdates/s", "notes"});
  for (auto& trainer : trainers) {
    mf::FactorModel model(spec.m, spec.n, config.k);
    util::Rng mrng(53);
    model.init_random(mrng, 3.0f);
    util::Stopwatch clock;
    const auto trace =
        mf::train_and_trace(*trainer, model, train, test, config.epochs);
    const double seconds = clock.seconds();
    const double rate = static_cast<double>(train.nnz()) * config.epochs /
                        seconds / 1e6;
    std::string notes;
    if (trainer->name() == "nomad") {
      auto* nomad = static_cast<mf::NomadTrainer*>(trainer.get());
      notes = std::to_string(nomad->last_epoch_messages()) +
              " token msgs/epoch";
    } else if (trainer->name() == "dsgd") {
      notes = "barrier per stratum";
    } else if (trainer->name() == "fpsgd") {
      notes = "free-block scheduler";
    } else if (trainer->name() == "hogwild") {
      notes = "lock-free, lossy";
    } else if (trainer->name() == "cumf-batched") {
      notes = "batch-sequential";
    }
    table.add_row({trainer->name(), util::Table::num(trace.back(), 4),
                   util::Table::num(rate, 1), notes});
  }

  // HCC-MF, same budget.
  {
    core::HccMfConfig hcc;
    hcc.sgd = config;
    hcc.platform = sim::paper_workstation_hetero();
    for (auto& w : hcc.platform.workers) w.epoch_overhead_s = 0.0;
    hcc.dataset_name = spec.name;
    util::Stopwatch clock;
    const core::TrainReport report = core::HccMf(hcc).train(train, &test);
    const double seconds = clock.seconds();
    table.add_row({"HCC-MF",
                   util::Table::num(report.epochs.back().test_rmse, 4),
                   util::Table::num(static_cast<double>(train.nnz()) *
                                        config.epochs / seconds / 1e6,
                                    1),
                   "4 virtual workers, Q-only+FP16"});
  }
  json_out.add_table("baselines", table);
  table.print(std::cout);

  std::cout << "\nshape: every schedule lands in the same RMSE regime; the "
               "differences the paper argues about are communication "
               "volume (NOMAD), barriers (DSGD) and heterogeneity "
               "awareness (only HCC-MF partitions by device speed)\n";
  return 0;
}
