// The effective range of collaborative computing (the paper's third
// contribution bullet and Section 4.6's limitation, quantified).
//
// Section 3.4 derives that communication and computation reach the same
// order of magnitude when nnz/(m+n) < ~1e3.  This bench sweeps synthetic
// dataset shapes across that boundary — holding nnz fixed and growing the
// dimensions — and reports the full-workstation speedup over the best
// single device, locating the crossover where collaboration stops paying.
//
// Expected shape: speedup > 2x for compute-bound shapes (high nnz/(m+n)),
// decaying toward ~1x as the shape approaches the square/sparse regime of
// MovieLens-20m and beyond.
#include <iostream>

#include "bench_common.hpp"
#include "core/hccmf.hpp"
#include "util/table.hpp"

using namespace hcc;

int main(int argc, char** argv) {
  bench::JsonReport json_out(argc, argv, "effective_range");
  bench::banner(
      "Effective range: HCC-MF speedup vs dataset shape (nnz/(m+n) sweep)",
      "quantifies Section 3.4's nnz/(m+n) < 1e3 rule and Section 4.6");

  constexpr std::uint64_t kNnz = 100'000'000;  // Netflix-order workload
  util::Table table({"m", "n", "nnz/(m+n)", "best single (s)",
                     "HCC 20 epochs (s)", "speedup", "regime"});

  // Dimension sweep: from tall-and-narrow (Netflix-like) to huge square.
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> dims = {
      {500000, 20000},   {1000000, 140000},  {1000000, 500000},
      {2000000, 1100000}, {3000000, 3000000}, {8000000, 8000000}};

  for (const auto& [m, n] : dims) {
    const sim::DatasetShape shape{"", m, n, kNnz, 128};
    const double ratio =
        static_cast<double>(kNnz) / static_cast<double>(m + n);

    // Best single device running the *standalone* algorithm (CuMF_SGD /
    // FPSGD style: pure compute, no parameter server, no transfers) — the
    // same convention as Figures 3 and 7.  The analytic rate model applies
    // to both sides of the comparison, apples to apples.
    double best_single = 1e100;
    for (const auto& dev :
         {sim::rtx_2080s(), sim::rtx_2080(), sim::xeon_6242_24t()}) {
      const double t =
          20.0 * (sim::compute_seconds(dev, shape, 1.0) + dev.epoch_overhead_s);
      best_single = std::min(best_single, t);
    }

    core::HccMfConfig multi;
    multi.sgd.epochs = 20;
    multi.platform = sim::paper_workstation_hetero();
    multi.comm.streams = 4;
    multi.manager.prune_unhelpful_workers = true;
    const double hcc = core::HccMf(multi).simulate(shape).total_virtual_s;

    const double speedup = best_single / hcc;
    table.add_row({std::to_string(m), std::to_string(n),
                   util::Table::num(ratio, 1),
                   util::Table::num(best_single, 3),
                   util::Table::num(hcc, 3),
                   util::Table::num(speedup, 2) + "x",
                   speedup > 1.5   ? "collaboration pays"
                   : speedup > 1.1 ? "marginal"
                                   : "not worth it"});
  }
  json_out.add_table("range", table);
  table.print(std::cout);

  std::cout << "\npaper's rule of thumb: below nnz/(m+n) ~ 1e3 the "
               "communication overhead rivals compute; Table 6 shows the "
               "extreme (MovieLens, ratio 74): adding GPUs stops helping\n";
  return 0;
}
