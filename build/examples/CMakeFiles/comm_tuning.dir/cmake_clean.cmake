file(REMOVE_RECURSE
  "CMakeFiles/comm_tuning.dir/comm_tuning.cpp.o"
  "CMakeFiles/comm_tuning.dir/comm_tuning.cpp.o.d"
  "comm_tuning"
  "comm_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
