# Empty compiler generated dependencies file for comm_tuning.
# This may be replaced when dependencies are built.
