file(REMOVE_RECURSE
  "libhcc_comm.a"
)
