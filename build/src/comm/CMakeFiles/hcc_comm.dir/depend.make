# Empty dependencies file for hcc_comm.
# This may be replaced when dependencies are built.
