file(REMOVE_RECURSE
  "CMakeFiles/hcc_comm.dir/backend.cpp.o"
  "CMakeFiles/hcc_comm.dir/backend.cpp.o.d"
  "CMakeFiles/hcc_comm.dir/codec.cpp.o"
  "CMakeFiles/hcc_comm.dir/codec.cpp.o.d"
  "CMakeFiles/hcc_comm.dir/payload.cpp.o"
  "CMakeFiles/hcc_comm.dir/payload.cpp.o.d"
  "CMakeFiles/hcc_comm.dir/strategy.cpp.o"
  "CMakeFiles/hcc_comm.dir/strategy.cpp.o.d"
  "libhcc_comm.a"
  "libhcc_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcc_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
