
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/backend.cpp" "src/comm/CMakeFiles/hcc_comm.dir/backend.cpp.o" "gcc" "src/comm/CMakeFiles/hcc_comm.dir/backend.cpp.o.d"
  "/root/repo/src/comm/codec.cpp" "src/comm/CMakeFiles/hcc_comm.dir/codec.cpp.o" "gcc" "src/comm/CMakeFiles/hcc_comm.dir/codec.cpp.o.d"
  "/root/repo/src/comm/payload.cpp" "src/comm/CMakeFiles/hcc_comm.dir/payload.cpp.o" "gcc" "src/comm/CMakeFiles/hcc_comm.dir/payload.cpp.o.d"
  "/root/repo/src/comm/strategy.cpp" "src/comm/CMakeFiles/hcc_comm.dir/strategy.cpp.o" "gcc" "src/comm/CMakeFiles/hcc_comm.dir/strategy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hcc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hcc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hcc_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
