
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mf/batched.cpp" "src/mf/CMakeFiles/hcc_mf.dir/batched.cpp.o" "gcc" "src/mf/CMakeFiles/hcc_mf.dir/batched.cpp.o.d"
  "/root/repo/src/mf/biased.cpp" "src/mf/CMakeFiles/hcc_mf.dir/biased.cpp.o" "gcc" "src/mf/CMakeFiles/hcc_mf.dir/biased.cpp.o.d"
  "/root/repo/src/mf/dsgd.cpp" "src/mf/CMakeFiles/hcc_mf.dir/dsgd.cpp.o" "gcc" "src/mf/CMakeFiles/hcc_mf.dir/dsgd.cpp.o.d"
  "/root/repo/src/mf/fpsgd.cpp" "src/mf/CMakeFiles/hcc_mf.dir/fpsgd.cpp.o" "gcc" "src/mf/CMakeFiles/hcc_mf.dir/fpsgd.cpp.o.d"
  "/root/repo/src/mf/hogwild.cpp" "src/mf/CMakeFiles/hcc_mf.dir/hogwild.cpp.o" "gcc" "src/mf/CMakeFiles/hcc_mf.dir/hogwild.cpp.o.d"
  "/root/repo/src/mf/lr_schedule.cpp" "src/mf/CMakeFiles/hcc_mf.dir/lr_schedule.cpp.o" "gcc" "src/mf/CMakeFiles/hcc_mf.dir/lr_schedule.cpp.o.d"
  "/root/repo/src/mf/metrics.cpp" "src/mf/CMakeFiles/hcc_mf.dir/metrics.cpp.o" "gcc" "src/mf/CMakeFiles/hcc_mf.dir/metrics.cpp.o.d"
  "/root/repo/src/mf/model.cpp" "src/mf/CMakeFiles/hcc_mf.dir/model.cpp.o" "gcc" "src/mf/CMakeFiles/hcc_mf.dir/model.cpp.o.d"
  "/root/repo/src/mf/model_io.cpp" "src/mf/CMakeFiles/hcc_mf.dir/model_io.cpp.o" "gcc" "src/mf/CMakeFiles/hcc_mf.dir/model_io.cpp.o.d"
  "/root/repo/src/mf/nomad.cpp" "src/mf/CMakeFiles/hcc_mf.dir/nomad.cpp.o" "gcc" "src/mf/CMakeFiles/hcc_mf.dir/nomad.cpp.o.d"
  "/root/repo/src/mf/recommend.cpp" "src/mf/CMakeFiles/hcc_mf.dir/recommend.cpp.o" "gcc" "src/mf/CMakeFiles/hcc_mf.dir/recommend.cpp.o.d"
  "/root/repo/src/mf/trainer.cpp" "src/mf/CMakeFiles/hcc_mf.dir/trainer.cpp.o" "gcc" "src/mf/CMakeFiles/hcc_mf.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/hcc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hcc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
