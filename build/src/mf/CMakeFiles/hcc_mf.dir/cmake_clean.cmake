file(REMOVE_RECURSE
  "CMakeFiles/hcc_mf.dir/batched.cpp.o"
  "CMakeFiles/hcc_mf.dir/batched.cpp.o.d"
  "CMakeFiles/hcc_mf.dir/biased.cpp.o"
  "CMakeFiles/hcc_mf.dir/biased.cpp.o.d"
  "CMakeFiles/hcc_mf.dir/dsgd.cpp.o"
  "CMakeFiles/hcc_mf.dir/dsgd.cpp.o.d"
  "CMakeFiles/hcc_mf.dir/fpsgd.cpp.o"
  "CMakeFiles/hcc_mf.dir/fpsgd.cpp.o.d"
  "CMakeFiles/hcc_mf.dir/hogwild.cpp.o"
  "CMakeFiles/hcc_mf.dir/hogwild.cpp.o.d"
  "CMakeFiles/hcc_mf.dir/lr_schedule.cpp.o"
  "CMakeFiles/hcc_mf.dir/lr_schedule.cpp.o.d"
  "CMakeFiles/hcc_mf.dir/metrics.cpp.o"
  "CMakeFiles/hcc_mf.dir/metrics.cpp.o.d"
  "CMakeFiles/hcc_mf.dir/model.cpp.o"
  "CMakeFiles/hcc_mf.dir/model.cpp.o.d"
  "CMakeFiles/hcc_mf.dir/model_io.cpp.o"
  "CMakeFiles/hcc_mf.dir/model_io.cpp.o.d"
  "CMakeFiles/hcc_mf.dir/nomad.cpp.o"
  "CMakeFiles/hcc_mf.dir/nomad.cpp.o.d"
  "CMakeFiles/hcc_mf.dir/recommend.cpp.o"
  "CMakeFiles/hcc_mf.dir/recommend.cpp.o.d"
  "CMakeFiles/hcc_mf.dir/trainer.cpp.o"
  "CMakeFiles/hcc_mf.dir/trainer.cpp.o.d"
  "libhcc_mf.a"
  "libhcc_mf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcc_mf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
