# Empty dependencies file for hcc_mf.
# This may be replaced when dependencies are built.
