file(REMOVE_RECURSE
  "libhcc_mf.a"
)
