# Empty dependencies file for hcc_core.
# This may be replaced when dependencies are built.
