file(REMOVE_RECURSE
  "libhcc_core.a"
)
