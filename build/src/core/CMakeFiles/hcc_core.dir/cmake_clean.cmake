file(REMOVE_RECURSE
  "CMakeFiles/hcc_core.dir/adaptive.cpp.o"
  "CMakeFiles/hcc_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/hcc_core.dir/cost_model.cpp.o"
  "CMakeFiles/hcc_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/hcc_core.dir/data_manager.cpp.o"
  "CMakeFiles/hcc_core.dir/data_manager.cpp.o.d"
  "CMakeFiles/hcc_core.dir/hccmf.cpp.o"
  "CMakeFiles/hcc_core.dir/hccmf.cpp.o.d"
  "CMakeFiles/hcc_core.dir/partition.cpp.o"
  "CMakeFiles/hcc_core.dir/partition.cpp.o.d"
  "CMakeFiles/hcc_core.dir/report_format.cpp.o"
  "CMakeFiles/hcc_core.dir/report_format.cpp.o.d"
  "CMakeFiles/hcc_core.dir/server.cpp.o"
  "CMakeFiles/hcc_core.dir/server.cpp.o.d"
  "CMakeFiles/hcc_core.dir/tuner.cpp.o"
  "CMakeFiles/hcc_core.dir/tuner.cpp.o.d"
  "CMakeFiles/hcc_core.dir/worker.cpp.o"
  "CMakeFiles/hcc_core.dir/worker.cpp.o.d"
  "libhcc_core.a"
  "libhcc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
