
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cpp" "src/core/CMakeFiles/hcc_core.dir/adaptive.cpp.o" "gcc" "src/core/CMakeFiles/hcc_core.dir/adaptive.cpp.o.d"
  "/root/repo/src/core/cost_model.cpp" "src/core/CMakeFiles/hcc_core.dir/cost_model.cpp.o" "gcc" "src/core/CMakeFiles/hcc_core.dir/cost_model.cpp.o.d"
  "/root/repo/src/core/data_manager.cpp" "src/core/CMakeFiles/hcc_core.dir/data_manager.cpp.o" "gcc" "src/core/CMakeFiles/hcc_core.dir/data_manager.cpp.o.d"
  "/root/repo/src/core/hccmf.cpp" "src/core/CMakeFiles/hcc_core.dir/hccmf.cpp.o" "gcc" "src/core/CMakeFiles/hcc_core.dir/hccmf.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "src/core/CMakeFiles/hcc_core.dir/partition.cpp.o" "gcc" "src/core/CMakeFiles/hcc_core.dir/partition.cpp.o.d"
  "/root/repo/src/core/report_format.cpp" "src/core/CMakeFiles/hcc_core.dir/report_format.cpp.o" "gcc" "src/core/CMakeFiles/hcc_core.dir/report_format.cpp.o.d"
  "/root/repo/src/core/server.cpp" "src/core/CMakeFiles/hcc_core.dir/server.cpp.o" "gcc" "src/core/CMakeFiles/hcc_core.dir/server.cpp.o.d"
  "/root/repo/src/core/tuner.cpp" "src/core/CMakeFiles/hcc_core.dir/tuner.cpp.o" "gcc" "src/core/CMakeFiles/hcc_core.dir/tuner.cpp.o.d"
  "/root/repo/src/core/worker.cpp" "src/core/CMakeFiles/hcc_core.dir/worker.cpp.o" "gcc" "src/core/CMakeFiles/hcc_core.dir/worker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mf/CMakeFiles/hcc_mf.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/hcc_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hcc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hcc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hcc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
