
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/device.cpp" "src/sim/CMakeFiles/hcc_sim.dir/device.cpp.o" "gcc" "src/sim/CMakeFiles/hcc_sim.dir/device.cpp.o.d"
  "/root/repo/src/sim/perf_model.cpp" "src/sim/CMakeFiles/hcc_sim.dir/perf_model.cpp.o" "gcc" "src/sim/CMakeFiles/hcc_sim.dir/perf_model.cpp.o.d"
  "/root/repo/src/sim/platform.cpp" "src/sim/CMakeFiles/hcc_sim.dir/platform.cpp.o" "gcc" "src/sim/CMakeFiles/hcc_sim.dir/platform.cpp.o.d"
  "/root/repo/src/sim/timing.cpp" "src/sim/CMakeFiles/hcc_sim.dir/timing.cpp.o" "gcc" "src/sim/CMakeFiles/hcc_sim.dir/timing.cpp.o.d"
  "/root/repo/src/sim/trace_export.cpp" "src/sim/CMakeFiles/hcc_sim.dir/trace_export.cpp.o" "gcc" "src/sim/CMakeFiles/hcc_sim.dir/trace_export.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/hcc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hcc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
