# Empty compiler generated dependencies file for hcc_sim.
# This may be replaced when dependencies are built.
