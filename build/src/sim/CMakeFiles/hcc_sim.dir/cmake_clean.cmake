file(REMOVE_RECURSE
  "CMakeFiles/hcc_sim.dir/device.cpp.o"
  "CMakeFiles/hcc_sim.dir/device.cpp.o.d"
  "CMakeFiles/hcc_sim.dir/perf_model.cpp.o"
  "CMakeFiles/hcc_sim.dir/perf_model.cpp.o.d"
  "CMakeFiles/hcc_sim.dir/platform.cpp.o"
  "CMakeFiles/hcc_sim.dir/platform.cpp.o.d"
  "CMakeFiles/hcc_sim.dir/timing.cpp.o"
  "CMakeFiles/hcc_sim.dir/timing.cpp.o.d"
  "CMakeFiles/hcc_sim.dir/trace_export.cpp.o"
  "CMakeFiles/hcc_sim.dir/trace_export.cpp.o.d"
  "libhcc_sim.a"
  "libhcc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
