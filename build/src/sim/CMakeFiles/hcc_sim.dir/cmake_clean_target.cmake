file(REMOVE_RECURSE
  "libhcc_sim.a"
)
