file(REMOVE_RECURSE
  "libhcc_util.a"
)
