file(REMOVE_RECURSE
  "CMakeFiles/hcc_util.dir/cli.cpp.o"
  "CMakeFiles/hcc_util.dir/cli.cpp.o.d"
  "CMakeFiles/hcc_util.dir/csv.cpp.o"
  "CMakeFiles/hcc_util.dir/csv.cpp.o.d"
  "CMakeFiles/hcc_util.dir/fp16.cpp.o"
  "CMakeFiles/hcc_util.dir/fp16.cpp.o.d"
  "CMakeFiles/hcc_util.dir/log.cpp.o"
  "CMakeFiles/hcc_util.dir/log.cpp.o.d"
  "CMakeFiles/hcc_util.dir/rng.cpp.o"
  "CMakeFiles/hcc_util.dir/rng.cpp.o.d"
  "CMakeFiles/hcc_util.dir/table.cpp.o"
  "CMakeFiles/hcc_util.dir/table.cpp.o.d"
  "CMakeFiles/hcc_util.dir/thread_pool.cpp.o"
  "CMakeFiles/hcc_util.dir/thread_pool.cpp.o.d"
  "libhcc_util.a"
  "libhcc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
