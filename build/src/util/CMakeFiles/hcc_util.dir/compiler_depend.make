# Empty compiler generated dependencies file for hcc_util.
# This may be replaced when dependencies are built.
