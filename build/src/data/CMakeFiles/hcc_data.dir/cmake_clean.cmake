file(REMOVE_RECURSE
  "CMakeFiles/hcc_data.dir/datasets.cpp.o"
  "CMakeFiles/hcc_data.dir/datasets.cpp.o.d"
  "CMakeFiles/hcc_data.dir/grid.cpp.o"
  "CMakeFiles/hcc_data.dir/grid.cpp.o.d"
  "CMakeFiles/hcc_data.dir/io.cpp.o"
  "CMakeFiles/hcc_data.dir/io.cpp.o.d"
  "CMakeFiles/hcc_data.dir/movielens_io.cpp.o"
  "CMakeFiles/hcc_data.dir/movielens_io.cpp.o.d"
  "CMakeFiles/hcc_data.dir/rating_matrix.cpp.o"
  "CMakeFiles/hcc_data.dir/rating_matrix.cpp.o.d"
  "libhcc_data.a"
  "libhcc_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcc_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
