# Empty compiler generated dependencies file for hcc_data.
# This may be replaced when dependencies are built.
