
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/datasets.cpp" "src/data/CMakeFiles/hcc_data.dir/datasets.cpp.o" "gcc" "src/data/CMakeFiles/hcc_data.dir/datasets.cpp.o.d"
  "/root/repo/src/data/grid.cpp" "src/data/CMakeFiles/hcc_data.dir/grid.cpp.o" "gcc" "src/data/CMakeFiles/hcc_data.dir/grid.cpp.o.d"
  "/root/repo/src/data/io.cpp" "src/data/CMakeFiles/hcc_data.dir/io.cpp.o" "gcc" "src/data/CMakeFiles/hcc_data.dir/io.cpp.o.d"
  "/root/repo/src/data/movielens_io.cpp" "src/data/CMakeFiles/hcc_data.dir/movielens_io.cpp.o" "gcc" "src/data/CMakeFiles/hcc_data.dir/movielens_io.cpp.o.d"
  "/root/repo/src/data/rating_matrix.cpp" "src/data/CMakeFiles/hcc_data.dir/rating_matrix.cpp.o" "gcc" "src/data/CMakeFiles/hcc_data.dir/rating_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hcc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
