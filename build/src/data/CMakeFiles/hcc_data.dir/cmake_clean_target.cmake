file(REMOVE_RECURSE
  "libhcc_data.a"
)
