file(REMOVE_RECURSE
  "libhcc_cluster.a"
)
