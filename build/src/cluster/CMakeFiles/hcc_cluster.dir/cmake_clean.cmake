file(REMOVE_RECURSE
  "CMakeFiles/hcc_cluster.dir/cluster.cpp.o"
  "CMakeFiles/hcc_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/hcc_cluster.dir/hierarchical.cpp.o"
  "CMakeFiles/hcc_cluster.dir/hierarchical.cpp.o.d"
  "libhcc_cluster.a"
  "libhcc_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcc_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
