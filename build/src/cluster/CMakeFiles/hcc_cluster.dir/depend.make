# Empty dependencies file for hcc_cluster.
# This may be replaced when dependencies are built.
