# Empty dependencies file for bench_effective_range.
# This may be replaced when dependencies are built.
