file(REMOVE_RECURSE
  "../bench/bench_effective_range"
  "../bench/bench_effective_range.pdb"
  "CMakeFiles/bench_effective_range.dir/bench_effective_range.cpp.o"
  "CMakeFiles/bench_effective_range.dir/bench_effective_range.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_effective_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
