file(REMOVE_RECURSE
  "../bench/bench_related_baselines"
  "../bench/bench_related_baselines.pdb"
  "CMakeFiles/bench_related_baselines.dir/bench_related_baselines.cpp.o"
  "CMakeFiles/bench_related_baselines.dir/bench_related_baselines.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_related_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
