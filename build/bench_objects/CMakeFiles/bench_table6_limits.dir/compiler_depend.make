# Empty compiler generated dependencies file for bench_table6_limits.
# This may be replaced when dependencies are built.
