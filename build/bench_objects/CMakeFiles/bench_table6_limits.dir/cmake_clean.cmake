file(REMOVE_RECURSE
  "../bench/bench_table6_limits"
  "../bench/bench_table6_limits.pdb"
  "CMakeFiles/bench_table6_limits.dir/bench_table6_limits.cpp.o"
  "CMakeFiles/bench_table6_limits.dir/bench_table6_limits.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
