# Empty dependencies file for bench_table5_comm.
# This may be replaced when dependencies are built.
