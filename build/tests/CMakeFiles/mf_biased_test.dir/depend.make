# Empty dependencies file for mf_biased_test.
# This may be replaced when dependencies are built.
