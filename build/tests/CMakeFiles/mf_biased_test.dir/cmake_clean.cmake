file(REMOVE_RECURSE
  "CMakeFiles/mf_biased_test.dir/mf_biased_test.cpp.o"
  "CMakeFiles/mf_biased_test.dir/mf_biased_test.cpp.o.d"
  "mf_biased_test"
  "mf_biased_test.pdb"
  "mf_biased_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mf_biased_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
