file(REMOVE_RECURSE
  "CMakeFiles/mf_kernels_variant_test.dir/mf_kernels_variant_test.cpp.o"
  "CMakeFiles/mf_kernels_variant_test.dir/mf_kernels_variant_test.cpp.o.d"
  "mf_kernels_variant_test"
  "mf_kernels_variant_test.pdb"
  "mf_kernels_variant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mf_kernels_variant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
