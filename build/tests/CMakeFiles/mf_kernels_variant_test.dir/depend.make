# Empty dependencies file for mf_kernels_variant_test.
# This may be replaced when dependencies are built.
