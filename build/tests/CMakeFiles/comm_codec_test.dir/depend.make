# Empty dependencies file for comm_codec_test.
# This may be replaced when dependencies are built.
