file(REMOVE_RECURSE
  "CMakeFiles/comm_codec_test.dir/comm_codec_test.cpp.o"
  "CMakeFiles/comm_codec_test.dir/comm_codec_test.cpp.o.d"
  "comm_codec_test"
  "comm_codec_test.pdb"
  "comm_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
