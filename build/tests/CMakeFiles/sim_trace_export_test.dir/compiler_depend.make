# Empty compiler generated dependencies file for sim_trace_export_test.
# This may be replaced when dependencies are built.
