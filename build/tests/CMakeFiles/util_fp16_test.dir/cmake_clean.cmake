file(REMOVE_RECURSE
  "CMakeFiles/util_fp16_test.dir/util_fp16_test.cpp.o"
  "CMakeFiles/util_fp16_test.dir/util_fp16_test.cpp.o.d"
  "util_fp16_test"
  "util_fp16_test.pdb"
  "util_fp16_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_fp16_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
