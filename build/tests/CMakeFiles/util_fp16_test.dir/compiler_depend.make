# Empty compiler generated dependencies file for util_fp16_test.
# This may be replaced when dependencies are built.
