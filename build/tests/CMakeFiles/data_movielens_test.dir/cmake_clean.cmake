file(REMOVE_RECURSE
  "CMakeFiles/data_movielens_test.dir/data_movielens_test.cpp.o"
  "CMakeFiles/data_movielens_test.dir/data_movielens_test.cpp.o.d"
  "data_movielens_test"
  "data_movielens_test.pdb"
  "data_movielens_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_movielens_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
