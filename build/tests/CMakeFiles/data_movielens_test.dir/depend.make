# Empty dependencies file for data_movielens_test.
# This may be replaced when dependencies are built.
