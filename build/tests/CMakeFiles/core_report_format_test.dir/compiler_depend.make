# Empty compiler generated dependencies file for core_report_format_test.
# This may be replaced when dependencies are built.
