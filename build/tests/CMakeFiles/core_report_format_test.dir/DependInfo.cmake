
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_report_format_test.cpp" "tests/CMakeFiles/core_report_format_test.dir/core_report_format_test.cpp.o" "gcc" "tests/CMakeFiles/core_report_format_test.dir/core_report_format_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/hcc_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hcc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/hcc_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hcc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mf/CMakeFiles/hcc_mf.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hcc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hcc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
