file(REMOVE_RECURSE
  "CMakeFiles/data_datasets_test.dir/data_datasets_test.cpp.o"
  "CMakeFiles/data_datasets_test.dir/data_datasets_test.cpp.o.d"
  "data_datasets_test"
  "data_datasets_test.pdb"
  "data_datasets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_datasets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
