file(REMOVE_RECURSE
  "CMakeFiles/mf_trainers_test.dir/mf_trainers_test.cpp.o"
  "CMakeFiles/mf_trainers_test.dir/mf_trainers_test.cpp.o.d"
  "mf_trainers_test"
  "mf_trainers_test.pdb"
  "mf_trainers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mf_trainers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
