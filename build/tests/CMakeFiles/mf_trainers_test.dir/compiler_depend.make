# Empty compiler generated dependencies file for mf_trainers_test.
# This may be replaced when dependencies are built.
