# Empty dependencies file for mf_lr_schedule_test.
# This may be replaced when dependencies are built.
