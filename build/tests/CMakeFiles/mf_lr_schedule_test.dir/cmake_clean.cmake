file(REMOVE_RECURSE
  "CMakeFiles/mf_lr_schedule_test.dir/mf_lr_schedule_test.cpp.o"
  "CMakeFiles/mf_lr_schedule_test.dir/mf_lr_schedule_test.cpp.o.d"
  "mf_lr_schedule_test"
  "mf_lr_schedule_test.pdb"
  "mf_lr_schedule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mf_lr_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
