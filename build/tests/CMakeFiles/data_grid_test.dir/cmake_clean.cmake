file(REMOVE_RECURSE
  "CMakeFiles/data_grid_test.dir/data_grid_test.cpp.o"
  "CMakeFiles/data_grid_test.dir/data_grid_test.cpp.o.d"
  "data_grid_test"
  "data_grid_test.pdb"
  "data_grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
