# Empty compiler generated dependencies file for data_grid_test.
# This may be replaced when dependencies are built.
