# Empty dependencies file for mf_distributed_test.
# This may be replaced when dependencies are built.
