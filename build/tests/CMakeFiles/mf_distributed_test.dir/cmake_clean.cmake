file(REMOVE_RECURSE
  "CMakeFiles/mf_distributed_test.dir/mf_distributed_test.cpp.o"
  "CMakeFiles/mf_distributed_test.dir/mf_distributed_test.cpp.o.d"
  "mf_distributed_test"
  "mf_distributed_test.pdb"
  "mf_distributed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mf_distributed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
