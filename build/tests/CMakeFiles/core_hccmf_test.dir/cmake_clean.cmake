file(REMOVE_RECURSE
  "CMakeFiles/core_hccmf_test.dir/core_hccmf_test.cpp.o"
  "CMakeFiles/core_hccmf_test.dir/core_hccmf_test.cpp.o.d"
  "core_hccmf_test"
  "core_hccmf_test.pdb"
  "core_hccmf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_hccmf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
