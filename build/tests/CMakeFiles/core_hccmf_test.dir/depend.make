# Empty dependencies file for core_hccmf_test.
# This may be replaced when dependencies are built.
