file(REMOVE_RECURSE
  "CMakeFiles/comm_strategy_test.dir/comm_strategy_test.cpp.o"
  "CMakeFiles/comm_strategy_test.dir/comm_strategy_test.cpp.o.d"
  "comm_strategy_test"
  "comm_strategy_test.pdb"
  "comm_strategy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_strategy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
