# Empty dependencies file for core_data_manager_test.
# This may be replaced when dependencies are built.
