file(REMOVE_RECURSE
  "CMakeFiles/core_data_manager_test.dir/core_data_manager_test.cpp.o"
  "CMakeFiles/core_data_manager_test.dir/core_data_manager_test.cpp.o.d"
  "core_data_manager_test"
  "core_data_manager_test.pdb"
  "core_data_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_data_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
