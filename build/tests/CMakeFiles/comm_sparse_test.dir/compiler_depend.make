# Empty compiler generated dependencies file for comm_sparse_test.
# This may be replaced when dependencies are built.
