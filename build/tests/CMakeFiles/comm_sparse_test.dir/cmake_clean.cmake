file(REMOVE_RECURSE
  "CMakeFiles/comm_sparse_test.dir/comm_sparse_test.cpp.o"
  "CMakeFiles/comm_sparse_test.dir/comm_sparse_test.cpp.o.d"
  "comm_sparse_test"
  "comm_sparse_test.pdb"
  "comm_sparse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_sparse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
