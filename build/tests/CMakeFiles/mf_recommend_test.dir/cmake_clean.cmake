file(REMOVE_RECURSE
  "CMakeFiles/mf_recommend_test.dir/mf_recommend_test.cpp.o"
  "CMakeFiles/mf_recommend_test.dir/mf_recommend_test.cpp.o.d"
  "mf_recommend_test"
  "mf_recommend_test.pdb"
  "mf_recommend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mf_recommend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
