# Empty dependencies file for mf_recommend_test.
# This may be replaced when dependencies are built.
