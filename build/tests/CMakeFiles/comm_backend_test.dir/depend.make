# Empty dependencies file for comm_backend_test.
# This may be replaced when dependencies are built.
