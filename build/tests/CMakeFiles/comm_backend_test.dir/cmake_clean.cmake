file(REMOVE_RECURSE
  "CMakeFiles/comm_backend_test.dir/comm_backend_test.cpp.o"
  "CMakeFiles/comm_backend_test.dir/comm_backend_test.cpp.o.d"
  "comm_backend_test"
  "comm_backend_test.pdb"
  "comm_backend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
