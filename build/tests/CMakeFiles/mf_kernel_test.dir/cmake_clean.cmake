file(REMOVE_RECURSE
  "CMakeFiles/mf_kernel_test.dir/mf_kernel_test.cpp.o"
  "CMakeFiles/mf_kernel_test.dir/mf_kernel_test.cpp.o.d"
  "mf_kernel_test"
  "mf_kernel_test.pdb"
  "mf_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mf_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
