# Empty dependencies file for mf_kernel_test.
# This may be replaced when dependencies are built.
