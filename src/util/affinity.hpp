// Thread-to-CPU affinity for the concurrent executor's pipeline threads.
//
// With ExecOptions::pin_threads on, each worker's pipeline thread is pinned
// round-robin to a CPU before it touches any of the worker's buffers.
// Combined with lazy (first-touch) buffer sizing — TrainWorker allocates
// its local Q / staging buffers on the first pull, which under kParallel
// runs on the pipeline thread itself — this keeps each worker's P chunk and
// staging memory on the NUMA node of the core that streams over it, and
// stops the OS from migrating a pipeline mid-epoch and cold-starting its
// L2.  Best effort by design: on platforms without an affinity API the
// calls report failure and training proceeds unpinned.
#pragma once

namespace hcc::util {

/// Number of CPUs the process can run on (>= 1; hardware_concurrency with
/// a safe fallback).
unsigned cpu_count() noexcept;

/// Pins the calling thread to CPU `cpu % cpu_count()`.  Returns true on
/// success, false when pinning is unsupported or rejected by the OS.
bool pin_current_thread(unsigned cpu) noexcept;

}  // namespace hcc::util
