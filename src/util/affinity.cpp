#include "util/affinity.hpp"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace hcc::util {

unsigned cpu_count() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? n : 1;
}

bool pin_current_thread(unsigned cpu) noexcept {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % cpu_count(), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace hcc::util
