// Real and virtual clocks.
//
// Every HCC-MF experiment that reports time uses a VirtualClock driven by the
// platform simulator (src/sim), so results are deterministic and host-
// independent.  Stopwatch wraps the real steady clock for the micro-
// benchmarks and for profiling the functional layer.
#pragma once

#include <chrono>
#include <cstdint>

namespace hcc::util {

/// Wall-clock stopwatch over std::chrono::steady_clock.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction / last reset().
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Deterministic simulated clock.  The timing engine advances it explicitly;
/// nothing in the simulator ever reads the host clock.
class VirtualClock {
 public:
  /// Current simulated time in seconds since the experiment epoch.
  double now() const noexcept { return now_s_; }

  /// Advances the clock by `dt` seconds (dt >= 0).
  void advance(double dt) noexcept { now_s_ += dt; }

  /// Moves the clock to `t` if `t` is later than now (events never move the
  /// clock backwards).
  void advance_to(double t) noexcept {
    if (t > now_s_) now_s_ = t;
  }

  void reset() noexcept { now_s_ = 0.0; }

 private:
  double now_s_ = 0.0;
};

}  // namespace hcc::util
