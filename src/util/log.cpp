#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <iostream>
#include <mutex>

namespace hcc::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  std::lock_guard lock(g_mutex);
  std::cerr << "[hcc-mf " << level_name(level) << "] " << message << '\n';
}

namespace {

std::string format_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

bool needs_quoting(const std::string& v) {
  if (v.empty()) return true;
  for (char c : v) {
    if (c == ' ' || c == '"' || c == '=' || c == '\n' || c == '\t') {
      return true;
    }
  }
  return false;
}

std::string quote(const std::string& v) {
  std::string out = "\"";
  for (char c : v) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

KvPair kv(std::string key, const std::string& value) {
  return {std::move(key), value};
}
KvPair kv(std::string key, const char* value) {
  return {std::move(key), std::string(value)};
}
KvPair kv(std::string key, double value) {
  return {std::move(key), format_number(value)};
}
KvPair kv(std::string key, std::uint64_t value) {
  return {std::move(key), std::to_string(value)};
}
KvPair kv(std::string key, std::int64_t value) {
  return {std::move(key), std::to_string(value)};
}
KvPair kv(std::string key, std::uint32_t value) {
  return {std::move(key), std::to_string(value)};
}
KvPair kv(std::string key, std::int32_t value) {
  return {std::move(key), std::to_string(value)};
}
KvPair kv(std::string key, bool value) {
  return {std::move(key), value ? "true" : "false"};
}

std::string format_kv(const std::string& event,
                      const std::vector<KvPair>& pairs) {
  std::string line = "event=" + (needs_quoting(event) ? quote(event) : event);
  for (const auto& [key, value] : pairs) {
    line += ' ';
    line += key;
    line += '=';
    line += needs_quoting(value) ? quote(value) : value;
  }
  return line;
}

void log_kv(LogLevel level, const std::string& event,
            const std::vector<KvPair>& pairs) {
  if (level < log_level()) return;  // skip formatting below threshold
  log_line(level, format_kv(event, pairs));
}

}  // namespace hcc::util
