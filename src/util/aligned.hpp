// Cache-line-aligned allocation for the SIMD hot paths.
//
// The feature matrices P and Q (mf::FactorModel) and the workers' local Q
// copies are the arrays the dispatched kernels stream over; allocating them
// on 64-byte boundaries makes aligned vector loads legal for ranks where a
// row is a whole number of cache lines (k % 16 == 0, e.g. the paper's
// k = 128) and avoids cache-line splits for the rest.  The kernels still use
// unaligned load instructions — on modern cores they are penalty-free when
// the address happens to be aligned — so alignment is a performance
// property here, never a correctness requirement.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace hcc::util {

/// Minimal std::allocator replacement with a fixed alignment (a power of
/// two, at least alignof(T)).
template <typename T, std::size_t Alignment = 64>
struct AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment must not be weaker than alignof(T)");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// The float buffer type the SIMD kernels stream over.
using AlignedFloats = std::vector<float, AlignedAllocator<float, 64>>;

}  // namespace hcc::util
