#include "util/rng.hpp"

#include <cassert>

namespace hcc::util {

std::uint64_t Rng::uniform_u64(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Lemire 2019: multiply a 64-bit draw by the bound and keep the high word,
  // rejecting the small biased band at the bottom of each residue class.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; re-draw u1 so log() never sees zero.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  cached_normal_ = radius * std::sin(kTwoPi * u2);
  has_cached_normal_ = true;
  return radius * std::cos(kTwoPi * u2);
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
}

std::size_t ZipfSampler::operator()(Rng& rng) const noexcept {
  const double u = rng.uniform();
  // Binary search for the first cdf entry >= u.
  std::size_t lo = 0;
  std::size_t hi = cdf_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < cdf_.size() ? lo : cdf_.size() - 1;
}

}  // namespace hcc::util
