// Deterministic random number generation for HCC-MF.
//
// Everything in this library that needs randomness takes an explicit Rng (or
// a seed) so that experiments, tests and benchmarks are reproducible run to
// run and host to host.  The generator is xoshiro256**, seeded via SplitMix64
// per the reference implementations by Blackman & Vigna (public domain).
#pragma once

#include <array>
#include <cstdint>
#include <cmath>
#include <limits>
#include <vector>

namespace hcc::util {

/// SplitMix64 step: used to expand a single 64-bit seed into generator state.
/// Also usable stand-alone as a cheap hash / stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG.  Satisfies std::uniform_random_bit_generator, so it can
/// be plugged into <random> distributions, but the members below avoid
/// <random>'s cross-platform nondeterminism.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    for (auto& word : state_) word = splitmix64(seed);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Uses Lemire's multiply-shift rejection method;
  /// unbiased and deterministic across platforms.
  std::uint64_t uniform_u64(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Standard normal via Box-Muller (deterministic, no <random>).
  double normal() noexcept;

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Derives an independent child generator; useful for giving each worker
  /// thread its own stream derived from one experiment seed.
  Rng split() noexcept { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Approximate-Zipf sampler over {0, .., n-1} with exponent `s`, built with
/// the usual inverse-CDF table.  Rating datasets have Zipf-ish user/item
/// popularity; the synthetic generators use this to reproduce that skew.
class ZipfSampler {
 public:
  /// Builds the cumulative table.  O(n) memory; fine for the scaled dataset
  /// sizes this repo works with.
  ZipfSampler(std::size_t n, double s);

  /// Draws one index, most-popular = 0.
  std::size_t operator()(Rng& rng) const noexcept;

  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // normalized cumulative weights
};

/// In-place Fisher–Yates shuffle with the deterministic Rng.
template <typename T>
void shuffle(std::vector<T>& v, Rng& rng) {
  if (v.size() < 2) return;
  for (std::size_t i = v.size() - 1; i > 0; --i) {
    const std::size_t j = rng.uniform_u64(i + 1);
    using std::swap;
    swap(v[i], v[j]);
  }
}

}  // namespace hcc::util
