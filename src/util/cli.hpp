// Tiny --flag=value command-line parser for the examples and benches.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hcc::util {

/// Parses `--name=value` and `--name value` style flags; everything else is
/// collected as positional arguments.
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// Returns the flag's value, or `fallback` if absent.
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get(const std::string& name, std::int64_t fallback) const;
  double get(const std::string& name, double fallback) const;
  bool get(const std::string& name, bool fallback) const;

  bool has(const std::string& name) const { return flags_.contains(name); }

  const std::vector<std::string>& positional() const { return positional_; }

  /// argv[0] as given.
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace hcc::util
