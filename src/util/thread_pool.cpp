#include "util/thread_pool.hpp"

#include <algorithm>
#include <cassert>

namespace hcc::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    assert(!stopping_ && "submit() after destruction began");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t chunks = std::min(total, size() + 1);
  const std::size_t chunk = (total + chunks - 1) / chunks;

  std::vector<std::future<void>> pending;
  pending.reserve(chunks);
  // Chunks after the first go to the pool; the caller runs chunk 0 itself.
  for (std::size_t c = 1; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pending.push_back(submit([&body, lo, hi] { body(lo, hi); }));
  }
  body(begin, std::min(end, begin + chunk));
  for (auto& f : pending) f.get();
}

}  // namespace hcc::util
