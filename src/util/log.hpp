// Leveled stderr logging.
//
// Kept intentionally small: the framework's progress reporting (partition
// decisions, strategy switches, epoch traces) goes through here so tests can
// silence it and examples can turn on verbose tracing with --verbose.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace hcc::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that will be emitted (default kWarn, so
/// library code is quiet unless a caller opts in).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line at `level` if it passes the global threshold.
void log_line(LogLevel level, const std::string& message);

// --- machine-parsable key=value lines ------------------------------------
//
// The observability instrumentation (src/obs, core epoch loop) logs in a
// stable `event=<name> key=value ...` form so CI can scrape timings and
// drift out of stderr without guessing at free-text formats.

/// One formatted key/value pair.
using KvPair = std::pair<std::string, std::string>;

/// Value formatters: numbers render with %.9g, bools as true/false.
KvPair kv(std::string key, const std::string& value);
KvPair kv(std::string key, const char* value);
KvPair kv(std::string key, double value);
KvPair kv(std::string key, std::uint64_t value);
KvPair kv(std::string key, std::int64_t value);
KvPair kv(std::string key, std::uint32_t value);
KvPair kv(std::string key, std::int32_t value);
KvPair kv(std::string key, bool value);

/// Renders `event=<event> k=v k2=v2 ...`; values containing spaces, quotes
/// or '=' are double-quoted with backslash escapes.  Pure function (tested
/// directly).
std::string format_kv(const std::string& event,
                      const std::vector<KvPair>& pairs);

/// format_kv + log_line.
void log_kv(LogLevel level, const std::string& event,
            const std::vector<KvPair>& pairs);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

/// Streaming helpers: HCC_LOG_INFO() << "epoch " << e << " done";
#define HCC_LOG_DEBUG() ::hcc::util::detail::LogStream(::hcc::util::LogLevel::kDebug)
#define HCC_LOG_INFO() ::hcc::util::detail::LogStream(::hcc::util::LogLevel::kInfo)
#define HCC_LOG_WARN() ::hcc::util::detail::LogStream(::hcc::util::LogLevel::kWarn)
#define HCC_LOG_ERROR() ::hcc::util::detail::LogStream(::hcc::util::LogLevel::kError)

}  // namespace hcc::util
