// Leveled stderr logging.
//
// Kept intentionally small: the framework's progress reporting (partition
// decisions, strategy switches, epoch traces) goes through here so tests can
// silence it and examples can turn on verbose tracing with --verbose.
#pragma once

#include <sstream>
#include <string>

namespace hcc::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that will be emitted (default kWarn, so
/// library code is quiet unless a caller opts in).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line at `level` if it passes the global threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

/// Streaming helpers: HCC_LOG_INFO() << "epoch " << e << " done";
#define HCC_LOG_DEBUG() ::hcc::util::detail::LogStream(::hcc::util::LogLevel::kDebug)
#define HCC_LOG_INFO() ::hcc::util::detail::LogStream(::hcc::util::LogLevel::kInfo)
#define HCC_LOG_WARN() ::hcc::util::detail::LogStream(::hcc::util::LogLevel::kWarn)
#define HCC_LOG_ERROR() ::hcc::util::detail::LogStream(::hcc::util::LogLevel::kError)

}  // namespace hcc::util
