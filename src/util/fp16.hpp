// Software IEEE-754 binary16 ("FP16") conversion.
//
// The paper's "Transmitting FP16 Data" communication strategy (Section 3.4,
// Strategy 2) halves the transferred bytes by converting the feature matrices
// to binary16 on the sender and back to binary32 on the receiver.  The paper
// implements the conversion with AVX intrinsics on the CPU; here we provide a
// portable, branch-light scalar codec plus a batched interface that the
// thread pool can parallelize, which auto-vectorizes under -O2.
//
// Conversion semantics: round-to-nearest-even, gradual underflow to binary16
// subnormals, overflow to +/-inf, NaN payload preserved in the high bits.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>

namespace hcc::util {

/// Opaque binary16 value.  Stored as the raw bit pattern; use fp16_to_float /
/// float_to_fp16 to convert.  Kept as a struct (not a bare uint16_t typedef)
/// so the type system prevents mixing raw integers with half-floats.
struct Half {
  std::uint16_t bits = 0;
  friend bool operator==(Half a, Half b) = default;
};

/// Converts one binary32 float to binary16 with round-to-nearest-even.
Half float_to_fp16(float value) noexcept;

/// Converts one binary16 value back to binary32 (exact; every binary16 value
/// is representable in binary32).  Signaling NaNs come back quieted with
/// their payload preserved, exactly like the hardware converters.
float fp16_to_float(Half half) noexcept;

/// Batch encode: dst[i] = float_to_fp16(src[i]).  dst.size() must equal
/// src.size().  Contiguous, branch-light loop that vectorizes.
void fp16_encode(std::span<const float> src, std::span<Half> dst) noexcept;

/// Batch decode: dst[i] = fp16_to_float(src[i]).
void fp16_decode(std::span<const Half> src, std::span<float> dst) noexcept;

/// Largest finite binary16 value (65504.0f); values beyond round to infinity.
inline constexpr float kFp16Max = 65504.0f;

/// Smallest positive normal binary16 value (2^-14).
inline constexpr float kFp16MinNormal = 6.103515625e-05f;

/// Upper bound on the relative rounding error for normal-range values:
/// one half ULP of a 10-bit significand.
inline constexpr float kFp16RelativeError = 1.0f / 2048.0f;

}  // namespace hcc::util
