#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace hcc::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (widths.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace hcc::util
