#include "util/csv.hpp"

namespace hcc::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path) {
  row(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

}  // namespace hcc::util
