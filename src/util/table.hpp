// Minimal ASCII table renderer for benchmark output.
//
// The bench binaries print the same rows the paper's tables report; this
// helper keeps that output aligned and diff-able.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace hcc::util {

/// Column-aligned text table.  Usage:
///   Table t({"worker", "pull", "compute"});
///   t.add_row({"2080S", "0.088", "0.368"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; pads or truncates to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 4);

  /// Renders with a header underline and two-space column gaps.
  void print(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Raw access for machine-readable exports (bench --json-out).
  const std::vector<std::string>& header() const noexcept { return header_; }
  const std::vector<std::vector<std::string>>& row_cells() const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hcc::util
