// CSV writer used by benches to emit machine-readable series (figure data).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace hcc::util {

/// Streams rows to a .csv file; quotes cells containing separators.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// True if the underlying file opened successfully.
  bool ok() const { return static_cast<bool>(out_); }

  /// Appends one row of cells.
  void row(const std::vector<std::string>& cells);

 private:
  static std::string escape(const std::string& cell);
  std::ofstream out_;
};

}  // namespace hcc::util
