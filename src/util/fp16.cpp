#include "util/fp16.hpp"

#include <bit>
#include <cstring>

namespace hcc::util {

namespace {

constexpr std::uint32_t kF32SignMask = 0x8000'0000u;
constexpr std::uint32_t kF32ExpMask = 0x7f80'0000u;

}  // namespace

Half float_to_fp16(float value) noexcept {
  const std::uint32_t f = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = (f & kF32SignMask) >> 16;
  const std::uint32_t abs = f & ~kF32SignMask;

  std::uint32_t result;
  if (abs >= 0x7f80'0000u) {
    // Inf / NaN.  Keep the top 10 payload bits so NaNs stay NaNs.
    result = (abs > 0x7f80'0000u) ? 0x7e00u | ((abs >> 13) & 0x3ffu)
                                  : 0x7c00u;
  } else if (abs >= 0x4780'0000u) {
    // >= 65536.0: overflows binary16 range after rounding -> infinity.
    result = 0x7c00u;
  } else if (abs >= 0x3880'0000u) {
    // Normal range [2^-14, 65536).  Re-bias exponent (127 -> 15) and round
    // the 13 dropped mantissa bits to nearest-even.
    const std::uint32_t mant = abs + 0xc800'0000u;  // exponent re-bias
    const std::uint32_t rounded =
        mant + 0x0fffu + ((mant >> 13) & 1u);
    result = rounded >> 13;
  } else if (abs >= 0x3300'0000u) {
    // Subnormal half range: the result is round(value * 2^24) in units of the
    // smallest half subnormal.  value = M * 2^(exp-150) with 24-bit
    // significand M, so value * 2^24 = M >> (126 - exp).
    const std::uint32_t exp = abs >> 23;  // biased f32 exponent, 102..112
    const std::uint32_t drop = 126 - exp;  // 14..24 bits shifted out
    std::uint32_t mant = (abs & 0x007f'ffffu) | 0x0080'0000u;
    // Round to nearest even at the bit that falls off.
    const std::uint32_t half = 1u << (drop - 1);
    const std::uint32_t rem = mant & ((1u << drop) - 1u);
    mant >>= drop;
    if (rem > half || (rem == half && (mant & 1u))) ++mant;
    result = mant;
  } else {
    // Below half the smallest subnormal: rounds to signed zero.
    result = 0;
  }
  return Half{static_cast<std::uint16_t>(result | sign)};
}

float fp16_to_float(Half half) noexcept {
  const std::uint32_t h = half.bits;
  const std::uint32_t sign = (h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  const std::uint32_t mant = h & 0x3ffu;

  std::uint32_t f;
  if (exp == 0x1fu) {
    // Inf / NaN.  Conversions quiet signaling NaNs (IEEE 754 §5.4.1 and
    // what vcvtph2ps / fcvt do), so force the quiet bit on any NaN.
    f = 0x7f80'0000u | (mant << 13);
    if (mant != 0) f |= 0x0040'0000u;
  } else if (exp != 0) {
    // Normal: re-bias exponent 15 -> 127.
    f = ((exp + 112u) << 23) | (mant << 13);
  } else if (mant != 0) {
    // Subnormal: normalize by shifting the significand up.
    std::uint32_t m = mant;
    std::uint32_t e = 113;
    while ((m & 0x400u) == 0) {
      m <<= 1;
      --e;
    }
    f = (e << 23) | ((m & 0x3ffu) << 13);
  } else {
    f = 0;  // signed zero
  }
  return std::bit_cast<float>(f | sign);
}

void fp16_encode(std::span<const float> src, std::span<Half> dst) noexcept {
  const std::size_t n = src.size() < dst.size() ? src.size() : dst.size();
  for (std::size_t i = 0; i < n; ++i) dst[i] = float_to_fp16(src[i]);
}

void fp16_decode(std::span<const Half> src, std::span<float> dst) noexcept {
  const std::size_t n = src.size() < dst.size() ? src.size() : dst.size();
  for (std::size_t i = 0; i < n; ++i) dst[i] = fp16_to_float(src[i]);
}

}  // namespace hcc::util
