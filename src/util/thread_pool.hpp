// Fixed-size thread pool with a parallel-for helper.
//
// HCC-MF's CPU workers, the COMM module's multi-threaded copies and the FP16
// batch codec all run on top of this pool.  Design follows the Core
// Guidelines' "think in terms of tasks" advice: callers submit callables and
// get futures, or use parallel_for for data-parallel loops; no raw
// thread management leaks out of this header.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace hcc::util {

/// A joinable fixed-size pool.  Destruction drains outstanding tasks and
/// joins all threads (a pool behaves like a scoped container of threads).
class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1; defaults to hardware concurrency).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  std::size_t size() const noexcept { return workers_.size(); }

  /// Submits a callable; returns a future for its result.
  template <typename F, typename... Args>
  auto submit(F&& f, Args&&... args)
      -> std::future<std::invoke_result_t<F, Args...>> {
    using R = std::invoke_result_t<F, Args...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [fn = std::forward<F>(f),
         ... as = std::forward<Args>(args)]() mutable {
          return std::invoke(std::move(fn), std::move(as)...);
        });
    std::future<R> result = task->get_future();
    enqueue([task]() mutable { (*task)(); });
    return result;
  }

  /// Splits [begin, end) into ~size() contiguous chunks and runs
  /// body(chunk_begin, chunk_end) on the pool, blocking until all finish.
  /// The calling thread also executes one chunk, so a 1-thread pool still
  /// makes progress even while its worker is busy.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& body);

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace hcc::util
