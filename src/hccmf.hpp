// Umbrella header: everything a typical HCC-MF user needs.
//
//   #include "hccmf.hpp"
//   hcc::core::HccMf framework(config);
//
// Individual subsystem headers remain includable on their own; this header
// exists for quick starts and examples.
#pragma once

// Substrates
#include "data/datasets.hpp"       // dataset catalogue + generators
#include "data/io.hpp"             // text/binary rating IO
#include "data/movielens_io.hpp"   // MovieLens ratings.csv
#include "mf/metrics.hpp"          // RMSE / objective
#include "mf/model.hpp"            // FactorModel + SGD kernel
#include "mf/model_io.hpp"         // model serialization
#include "mf/recommend.hpp"        // top-N queries, ranking metrics
#include "mf/trainer.hpp"          // baseline trainers

// The framework
#include "core/hccmf.hpp"          // HccMf facade
#include "serve/engine.hpp"        // online top-K off RCU snapshots
#include "serve/foldin.hpp"        // cold-start ridge fold-in
#include "core/report_format.hpp"  // report rendering (incl. drift table)
#include "core/tuner.hpp"          // comm auto-tuner
#include "sim/platform.hpp"        // virtual platforms

// Observability
#include "obs/chrome_trace.hpp"    // chrome://tracing export
#include "obs/drift.hpp"           // cost-model drift reports
#include "obs/metrics.hpp"         // counters / gauges / histograms
#include "obs/span.hpp"            // scoped spans + trace recorder

// Extensions
#include "cluster/hierarchical.hpp"  // multi-node two-level HCC
