#include "core/data_manager.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace hcc::core {

namespace {

/// Expands a compacted per-active-worker vector back to platform size.
std::vector<double> scatter(const std::vector<double>& compact,
                            const std::vector<bool>& active,
                            std::size_t size) {
  std::vector<double> full(size, 0.0);
  std::size_t j = 0;
  for (std::size_t i = 0; i < size; ++i) {
    if (active[i]) full[i] = compact[j++];
  }
  return full;
}

std::vector<double> compact(const std::vector<double>& full,
                            const std::vector<bool>& active) {
  std::vector<double> out;
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (active[i]) out.push_back(full[i]);
  }
  return out;
}

}  // namespace

DataManager::DataManager(sim::PlatformSpec platform, sim::DatasetShape shape,
                         comm::CommConfig comm, DataManagerOptions options)
    : platform_(std::move(platform)),
      shape_(std::move(shape)),
      comm_(comm),
      options_(options) {}

std::vector<double> DataManager::independent_seconds() const {
  std::vector<double> seconds;
  seconds.reserve(platform_.workers.size());
  for (const auto& device : platform_.workers) {
    seconds.push_back(sim::compute_seconds(device, shape_, /*share=*/1.0));
  }
  return seconds;
}

std::vector<double> DataManager::measure_compute(
    const std::vector<double>& shares, std::uint64_t round) const {
  sim::EpochConfig config;
  config.shape = shape_;
  config.server = platform_.server;
  config.jitter = options_.measure_jitter;
  config.seed = options_.seed * 1000003 + round;
  for (std::size_t i = 0; i < platform_.workers.size(); ++i) {
    sim::WorkerPlan wp;
    wp.device = platform_.workers[i];
    wp.share = shares[i];
    if (wp.share > 0.0) {
      wp.comm = comm::make_comm_plan(comm_, shape_, wp.device,
                                     /*last_epoch=*/false, wp.share);
    }
    config.workers.push_back(std::move(wp));
  }
  const sim::EpochTiming timing = sim::simulate_epoch(config);
  std::vector<double> seconds;
  seconds.reserve(timing.workers.size());
  for (const auto& w : timing.workers) seconds.push_back(w.compute_s);
  return seconds;
}

sim::EpochConfig DataManager::epoch_config(const Plan& plan,
                                           bool last_epoch) const {
  sim::EpochConfig config;
  config.shape = shape_;
  config.server = platform_.server;
  config.jitter = options_.measure_jitter;
  config.seed = options_.seed;
  for (std::size_t i = 0; i < platform_.workers.size(); ++i) {
    sim::WorkerPlan wp;
    wp.device = platform_.workers[i];
    wp.share = plan.shares[i];
    // Idle (pruned / zero-share) workers neither transfer nor synchronize.
    if (wp.share > 0.0) {
      wp.comm = comm::make_comm_plan(comm_, shape_, wp.device, last_epoch,
                                     wp.share);
    }
    config.workers.push_back(std::move(wp));
  }
  return config;
}

double DataManager::simulated_epoch_seconds(const Plan& plan) const {
  sim::EpochConfig cfg = epoch_config(plan);
  cfg.jitter = 0.0;
  return sim::simulate_epoch(cfg).epoch_s;
}

Plan DataManager::plan_masked(PartitionStrategy request,
                              const std::vector<bool>& active) const {
  const std::size_t p = platform_.workers.size();
  Plan plan;
  plan.requested = request;
  plan.grid = shape_.m >= shape_.n ? data::GridKind::kRow
                                   : data::GridKind::kColumn;
  plan.payload = comm::effective_mode(comm_, shape_);

  std::ostringstream why;
  why << "grid=" << (plan.grid == data::GridKind::kRow ? "row" : "column")
      << " payload=" << comm::payload_mode_name(plan.payload);
  std::size_t active_count = 0;
  for (bool a : active) active_count += a ? 1 : 0;
  if (active_count < p) {
    why << " active_workers=" << active_count << "/" << p;
  }

  // DP0 from independent-execution times (Eq. 6), over active workers.
  const std::vector<double> iw = compact(independent_seconds(), active);
  const std::vector<double> dp0 = dp0_partition(iw);

  std::vector<bool> is_gpu_compact;
  for (std::size_t i = 0; i < p; ++i) {
    if (active[i]) {
      is_gpu_compact.push_back(platform_.workers[i].cls ==
                               sim::DeviceClass::kGpu);
    }
  }
  std::uint64_t measure_round = 0;
  const ComputeMeasure measure =
      [&](const std::vector<double>& shares_compact) {
        const auto full = scatter(shares_compact, active, p);
        return compact(measure_compute(full, ++measure_round), active);
      };

  auto finish = [&](PartitionStrategy chosen,
                    const std::vector<double>& shares_compact) {
    plan.chosen = chosen;
    plan.shares = scatter(shares_compact, active, p);
    plan.prediction = predict_epoch(epoch_config(plan), options_.lambda);
    why << " strategy=" << partition_strategy_name(chosen);
    plan.explanation = why.str();
    return plan;
  };

  switch (request) {
    case PartitionStrategy::kEven:
      return finish(PartitionStrategy::kEven, even_partition(iw.size()));
    case PartitionStrategy::kDp0:
      return finish(PartitionStrategy::kDp0, dp0);
    default:
      break;
  }

  // DP1 always runs first: it is both a final answer and DP2's input.
  const Dp1Result dp1 = dp1_partition(dp0, is_gpu_compact, measure,
                                      options_.dp1);
  plan.dp1_rounds = dp1.rounds;
  why << " dp1_rounds=" << dp1.rounds;

  if (request == PartitionStrategy::kDp1) {
    return finish(PartitionStrategy::kDp1, dp1.shares);
  }

  // The lambda rule (Eq. 5): is synchronization negligible at DP1's
  // balanced partition?
  Plan probe = plan;
  probe.shares = scatter(dp1.shares, active, p);
  const CostPrediction at_dp1 =
      predict_epoch(epoch_config(probe), options_.lambda);
  why << " maxTi/Tsync=" << at_dp1.ratio;

  if (request == PartitionStrategy::kDp2 ||
      (request == PartitionStrategy::kAuto && !at_dp1.sync_negligible)) {
    // DP2 staggers worker *finish* times, so it needs each worker's fixed
    // (share-independent) comm exposure alongside its compute time.
    std::vector<double> fixed;
    std::size_t compact_idx = 0;
    for (std::size_t i = 0; i < p; ++i) {
      if (!active[i]) continue;
      // Comm exposure at the worker's DP1 share (sparse push scales with
      // the assignment; dense payloads ignore the share argument).
      fixed.push_back(predicted_worker_seconds(
          platform_.workers[i], shape_, /*share=*/0.0,
          comm::make_comm_plan(comm_, shape_, platform_.workers[i],
                               /*last_epoch=*/false,
                               dp1.shares[compact_idx])));
      ++compact_idx;
    }
    return finish(PartitionStrategy::kDp2,
                  dp2_partition(dp1.shares, dp1.measured_seconds,
                                at_dp1.sync_per_worker_s, fixed));
  }
  return finish(PartitionStrategy::kDp1, dp1.shares);
}

Plan DataManager::plan(PartitionStrategy request) const {
  const std::size_t p = platform_.workers.size();
  std::vector<bool> active(p, true);
  Plan best = plan_masked(request, active);
  if (!options_.prune_unhelpful_workers) return best;

  double best_epoch = simulated_epoch_seconds(best);
  std::size_t active_count = p;
  bool improved = true;
  while (improved && active_count > 1) {
    improved = false;
    // Try dropping the slowest remaining worker first (most likely to be
    // the one whose sync/comm outweighs its compute).
    const auto iw = independent_seconds();
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < p; ++i) {
      if (active[i]) order.push_back(i);
    }
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return iw[a] > iw[b]; });
    for (std::size_t victim : order) {
      std::vector<bool> candidate_mask = active;
      candidate_mask[victim] = false;
      const Plan candidate = plan_masked(request, candidate_mask);
      const double epoch = simulated_epoch_seconds(candidate);
      if (epoch < best_epoch * 0.995) {
        best = candidate;
        best_epoch = epoch;
        active = candidate_mask;
        --active_count;
        improved = true;
        break;
      }
    }
  }
  return best;
}

}  // namespace hcc::core
