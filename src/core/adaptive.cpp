#include "core/adaptive.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/partition.hpp"

namespace hcc::core {

std::vector<double> redistribute_dead_share(std::vector<double> shares,
                                            std::size_t dead) {
  if (dead >= shares.size()) return shares;
  double survivor_total = 0.0;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    if (i != dead && shares[i] > 0.0) survivor_total += shares[i];
  }
  if (survivor_total <= 0.0) return shares;
  const double redistributed = survivor_total + std::max(0.0, shares[dead]);
  shares[dead] = 0.0;
  for (double& s : shares) {
    if (s > 0.0) s *= redistributed / survivor_total;
  }
  // Renormalize exactly: the shares must keep summing to 1 for the grid.
  double total = 0.0;
  for (double s : shares) total += s;
  for (double& s : shares) s /= total;
  return shares;
}

AdaptiveController::AdaptiveController(std::vector<double> initial_shares,
                                       AdaptiveOptions options)
    : shares_(std::move(initial_shares)), options_(options) {
  if (shares_.empty()) throw std::invalid_argument("no workers");
  if (options_.gain <= 0.0 || options_.gain > 1.0) {
    throw std::invalid_argument("gain must be in (0, 1]");
  }
}

bool AdaptiveController::observe(const std::vector<double>& compute_seconds) {
  if (compute_seconds.size() != shares_.size()) {
    throw std::invalid_argument("measurement size mismatch");
  }
  if (cooldown_ > 0) {
    --cooldown_;
    return false;
  }

  // Spread over active workers only.
  double lo = std::numeric_limits<double>::max();
  double hi = 0.0;
  double mean = 0.0;
  std::size_t active = 0;
  for (std::size_t i = 0; i < shares_.size(); ++i) {
    if (shares_[i] <= 0.0 || compute_seconds[i] <= 0.0) continue;
    lo = std::min(lo, compute_seconds[i]);
    hi = std::max(hi, compute_seconds[i]);
    mean += compute_seconds[i];
    ++active;
  }
  if (active < 2) return false;
  mean /= static_cast<double>(active);
  if ((hi - lo) / lo <= options_.spread_threshold) return false;

  // Proportional fix: a worker running at time t should carry
  // share * (mean / t) to land on the mean; damp by `gain`.
  for (std::size_t i = 0; i < shares_.size(); ++i) {
    if (shares_[i] <= 0.0 || compute_seconds[i] <= 0.0) continue;
    const double target = shares_[i] * mean / compute_seconds[i];
    shares_[i] = shares_[i] + options_.gain * (target - shares_[i]);
  }
  normalize_shares(shares_);
  ++repartitions_;
  cooldown_ = options_.cooldown_epochs;
  return true;
}

}  // namespace hcc::core
