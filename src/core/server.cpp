#include "core/server.hpp"

#include <cassert>
#include <vector>

#include "obs/span.hpp"

namespace hcc::core {

namespace {
// The server owns Chrome-trace track 0 (workers are 1..N).
constexpr std::uint32_t kServerTrack = 0;
}  // namespace

Server::Server(mf::FactorModel global, const comm::CommConfig& config)
    : global_(std::move(global)), codec_(comm::make_codec(config)) {
  obs::trace().set_track_name(kServerTrack, "server (sync)");
}

void Server::sync_q(std::span<const float> pushed,
                    std::span<const float> snapshot, float weight) {
  obs::ScopedSpan span("sync", obs::kPhaseCategory, kServerTrack);
  std::span<float> q = global_.q_data();
  assert(pushed.size() == q.size() && snapshot.size() == q.size());
  // Eq. 3's three read/write memory operations and one multiply-add per
  // feature parameter.
  for (std::size_t j = 0; j < q.size(); ++j) {
    q[j] += weight * (pushed[j] - snapshot[j]);
  }
  ++sync_count_;
  measured_sync_s_ += span.stop();
}

void Server::sync_q(std::span<const float> pushed,
                    std::span<const float> snapshot,
                    std::span<const float> item_weights) {
  obs::ScopedSpan span("sync", obs::kPhaseCategory, kServerTrack);
  std::span<float> q = global_.q_data();
  assert(pushed.size() == q.size() && snapshot.size() == q.size());
  const std::uint32_t k = global_.k();
  assert(item_weights.size() * k == q.size());
  for (std::size_t item = 0; item < item_weights.size(); ++item) {
    const float w = item_weights[item];
    if (w == 0.0f) continue;
    const std::size_t base = item * k;
    for (std::uint32_t f = 0; f < k; ++f) {
      q[base + f] += w * (pushed[base + f] - snapshot[base + f]);
    }
  }
  ++sync_count_;
  measured_sync_s_ += span.stop();
}

void Server::roundtrip_p_through_codec() {
  std::span<float> p = global_.p_data();
  std::vector<std::byte> wire(codec_->encoded_bytes(p.size()));
  codec_->encode(p, wire);
  codec_->decode(wire, p);
}

}  // namespace hcc::core
