#include "core/server.hpp"

#include <algorithm>
#include <cassert>

#include "obs/span.hpp"

namespace hcc::core {

namespace {
// The server owns Chrome-trace track 0 (workers are 1..N).
constexpr std::uint32_t kServerTrack = 0;
}  // namespace

Server::Server(mf::FactorModel global, const comm::CommConfig& config,
               std::uint32_t stripes)
    : global_(std::move(global)), codec_(comm::make_codec(config, global_.k())) {
  const std::uint32_t items = std::max(1u, global_.items());
  n_stripes_ = std::clamp(stripes, 1u, items);
  rows_per_stripe_ = (items + n_stripes_ - 1) / n_stripes_;
  stripes_ = std::make_unique<Stripe[]>(n_stripes_);
  if (n_stripes_ > 1) {
    auto& reg = obs::registry();
    contention_counter_ = &reg.counter("server.stripe_contention");
    locks_counter_ = &reg.counter("server.stripe_locks");
  }
  obs::trace().set_track_name(kServerTrack, "server (sync)");
}

std::pair<std::uint32_t, std::uint32_t> Server::stripe_rows(
    std::uint32_t s) const {
  const std::uint32_t items = global_.items();
  const std::uint32_t lo = std::min(items, s * rows_per_stripe_);
  const std::uint32_t hi = std::min(items, lo + rows_per_stripe_);
  return {lo, hi};
}

std::unique_lock<std::mutex> Server::lock_stripe(std::uint32_t s) {
  std::unique_lock<std::mutex> lock(stripes_[s].mutex, std::defer_lock);
  if (n_stripes_ == 1) {
    // Single-stripe (serial) path: still lock — the cluster layer merges
    // node pushes concurrently even at 1 stripe — but skip the accounting.
    lock.lock();
    return lock;
  }
  if (!lock.try_lock()) {
    stripe_contention_.fetch_add(1, std::memory_order_relaxed);
    contention_counter_->add(1);
    lock.lock();
  }
  stripe_locks_.fetch_add(1, std::memory_order_relaxed);
  locks_counter_->add(1);
  return lock;
}

bool Server::intersects(std::span<const std::uint32_t> touched,
                        std::uint32_t lo, std::uint32_t hi) {
  if (touched.empty()) return true;
  const auto it = std::lower_bound(touched.begin(), touched.end(), lo);
  return it != touched.end() && *it < hi;
}

void Server::sync_q(std::span<const float> pushed,
                    std::span<const float> snapshot, float weight,
                    std::span<const std::uint32_t> touched) {
  obs::ScopedSpan span("sync", obs::kPhaseCategory, kServerTrack);
  std::span<float> q = global_.q_data();
  assert(pushed.size() == q.size() && snapshot.size() == q.size());
  const std::size_t k = global_.k();
  // Eq. 3's three read/write memory operations and one multiply-add per
  // feature parameter, stripe by stripe.
  for (std::uint32_t s = 0; s < n_stripes_; ++s) {
    const auto [item_lo, item_hi] = stripe_rows(s);
    if (item_lo >= item_hi || !intersects(touched, item_lo, item_hi)) {
      continue;
    }
    const auto guard = lock_stripe(s);
    const std::size_t lo = item_lo * k;
    const std::size_t hi = item_hi * k;
    for (std::size_t j = lo; j < hi; ++j) {
      q[j] += weight * (pushed[j] - snapshot[j]);
    }
  }
  sync_count_.fetch_add(1, std::memory_order_relaxed);
  measured_sync_s_.fetch_add(span.stop(), std::memory_order_relaxed);
}

void Server::sync_q(std::span<const float> pushed,
                    std::span<const float> snapshot,
                    std::span<const float> item_weights,
                    std::span<const std::uint32_t> touched) {
  obs::ScopedSpan span("sync", obs::kPhaseCategory, kServerTrack);
  std::span<float> q = global_.q_data();
  assert(pushed.size() == q.size() && snapshot.size() == q.size());
  const std::uint32_t k = global_.k();
  assert(item_weights.size() * k == q.size());
  for (std::uint32_t s = 0; s < n_stripes_; ++s) {
    const auto [item_lo, item_hi] = stripe_rows(s);
    if (item_lo >= item_hi || !intersects(touched, item_lo, item_hi)) {
      continue;
    }
    const auto guard = lock_stripe(s);
    for (std::size_t item = item_lo; item < item_hi; ++item) {
      const float w = item_weights[item];
      if (w == 0.0f) continue;
      const std::size_t base = item * k;
      for (std::uint32_t f = 0; f < k; ++f) {
        q[base + f] += w * (pushed[base + f] - snapshot[base + f]);
      }
    }
  }
  sync_count_.fetch_add(1, std::memory_order_relaxed);
  measured_sync_s_.fetch_add(span.stop(), std::memory_order_relaxed);
}

void Server::read_q(std::vector<float>& dst) {
  const std::span<const float> q = global_.q_data();
  dst.resize(q.size());
  const std::size_t k = global_.k();
  for (std::uint32_t s = 0; s < n_stripes_; ++s) {
    const auto [item_lo, item_hi] = stripe_rows(s);
    if (item_lo >= item_hi) continue;
    const auto guard = lock_stripe(s);
    std::copy(q.begin() + item_lo * k, q.begin() + item_hi * k,
              dst.begin() + item_lo * k);
  }
}

void Server::gather_q_rows(std::span<const std::uint32_t> rows,
                           std::vector<float>& packed) {
  const std::span<const float> q = global_.q_data();
  const std::size_t k = global_.k();
  packed.resize(rows.size() * k);
  std::size_t t = 0;
  for (std::uint32_t s = 0; s < n_stripes_ && t < rows.size(); ++s) {
    const auto [item_lo, item_hi] = stripe_rows(s);
    if (item_lo >= item_hi || rows[t] >= item_hi) continue;
    const auto guard = lock_stripe(s);
    for (; t < rows.size() && rows[t] < item_hi; ++t) {
      assert(rows[t] >= item_lo);
      const float* src = &q[std::size_t(rows[t]) * k];
      std::copy(src, src + k, &packed[t * k]);
    }
  }
}

void Server::roundtrip_p_through_codec() {
  std::span<float> p = global_.p_data();
  std::vector<std::byte> wire(codec_->encoded_bytes(p.size()));
  codec_->encode(p, wire);
  codec_->decode(wire, p);
}

void Server::publish_snapshot(std::uint32_t epoch) {
  if (snapshots_ == nullptr) return;
  // Q under the stripe locks (concurrent sync_q stays correct); P straight
  // from the model — the caller guarantees its writers are parked.
  read_q(publish_scratch_);
  auto snapshot = std::make_shared<serve::ModelSnapshot>();
  snapshot->epoch = epoch;
  snapshot->store =
      serve::FactorStore(snapshot_kind_, global_.users(), global_.items(),
                         global_.k(), global_.p_data(), publish_scratch_);
  snapshots_->publish(std::move(snapshot));
}

}  // namespace hcc::core
