#include "core/epoch_executor.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/server.hpp"
#include "core/steal_queue.hpp"
#include "core/worker.hpp"
#include "fault/errors.hpp"
#include "obs/metrics.hpp"
#include "util/affinity.hpp"

namespace hcc::core {

namespace {

/// Barrier rethrow priority: a dead worker outranks a diverged one outranks
/// anything else, so concurrent failures resolve to the same recovery path
/// regardless of thread timing.
int error_rank(const std::exception_ptr& ep) {
  try {
    std::rethrow_exception(ep);
  } catch (const fault::WorkerFault&) {
    return 0;
  } catch (const fault::DivergenceError&) {
    return 1;
  } catch (...) {
    return 2;
  }
}

}  // namespace

const char* exec_mode_name(ExecMode mode) {
  return mode == ExecMode::kParallel ? "parallel" : "serial";
}

ExecMode parse_exec_mode(const std::string& name) {
  if (name == "serial") return ExecMode::kSerial;
  if (name == "parallel") return ExecMode::kParallel;
  throw std::invalid_argument("unknown exec mode: \"" + name +
                              "\" (expected serial|parallel)");
}

std::uint32_t resolve_stripes(const ExecOptions& opts, std::uint32_t items,
                              std::size_t workers) {
  if (opts.mode == ExecMode::kSerial) return 1;
  const std::uint32_t want =
      opts.stripes > 0
          ? opts.stripes
          : 8 * static_cast<std::uint32_t>(std::max<std::size_t>(1, workers));
  return std::clamp(want, 1u, std::max(1u, items));
}

EpochExecutor::EpochExecutor(const ExecOptions& options, std::size_t n_workers)
    : options_(options), n_(n_workers), errors_(n_workers) {}

EpochExecutor::~EpochExecutor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void EpochExecutor::start_threads() {
  if (!threads_.empty() || n_ == 0) return;
  threads_.reserve(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    threads_.emplace_back([this, i] { thread_loop(i); });
  }
}

void EpochExecutor::thread_loop(std::size_t index) {
  if (options_.pin_threads &&
      util::pin_current_thread(static_cast<unsigned>(index))) {
    // Pin before the first barrier: every buffer the worker lazily sizes
    // (ensure_buffers at its first pull) is then first-touched — hence
    // NUMA-placed — on the CPU it will run on for the whole training.
    obs::registry().counter("sched.pinned_threads").add(1);
  }
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    bool live = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_work_.wait(lock,
                    [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
      fn = fn_;
      live = alive_ == nullptr || index >= alive_->size() ||
             (*alive_)[index];
    }
    std::exception_ptr error;
    if (live && fn != nullptr) {
      try {
        (*fn)(index);
      } catch (...) {
        error = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // Move, don't copy: the local must not keep a reference past the
      // lock, or its destructor could do the exception object's *final*
      // release unsynchronized with the main thread still examining it.
      errors_[index] = std::move(error);
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

void EpochExecutor::run_parallel(const std::vector<bool>& alive,
                                 const std::function<void(std::size_t)>& fn) {
  if (n_ == 0) return;
  start_threads();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    alive_ = &alive;
    fn_ = &fn;
    std::fill(errors_.begin(), errors_.end(), std::exception_ptr());
    pending_ = n_;
    ++generation_;
  }
  cv_work_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&] { return pending_ == 0; });
    alive_ = nullptr;
    fn_ = nullptr;
  }
  rethrow_barrier_error();
}

void EpochExecutor::rethrow_barrier_error() {
  // errors_ is only touched by parked threads between barriers, so reading
  // it without the lock here (pending_ == 0 established the happens-before)
  // is fine — but take the lock anyway; this path is cold.
  std::exception_ptr winner;
  int winner_rank = 3;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& ep : errors_) {
      if (!ep) continue;
      const int rank = error_rank(ep);
      if (rank < winner_rank) {
        winner_rank = rank;
        winner = ep;
      }
    }
  }
  if (winner) std::rethrow_exception(winner);
}

void EpochExecutor::run_epoch(std::vector<TrainWorker>& workers,
                              const std::vector<bool>& alive, Server& server,
                              float lr, float reg_p, float reg_q,
                              util::ThreadPool* pool) {
  if (options_.mode == ExecMode::kSerial) {
    // The legacy interleaved loop, preserved verbatim: for each chunk, all
    // pulls, then all computes, then all pushes, in worker order.  Merge
    // order (and thus float arithmetic order) is exactly the pre-executor
    // trajectory — the determinism contract behind kSerial.
    std::uint32_t max_streams = 1;
    for (auto& w : workers) {
      if (alive[w.id()]) w.prepare_epoch();
      max_streams = std::max(max_streams, w.streams());
    }
    for (std::uint32_t chunk = 0; chunk < max_streams; ++chunk) {
      for (auto& w : workers) {
        if (alive[w.id()] && chunk < w.streams()) w.pull(server);
      }
      for (auto& w : workers) {
        if (alive[w.id()] && chunk < w.streams()) {
          w.compute_chunk(server, chunk, lr, reg_p, reg_q, pool);
        }
      }
      for (auto& w : workers) {
        if (alive[w.id()] && chunk < w.streams()) w.push(server);
      }
    }
    return;
  }
  if (!options_.steal) {
    run_parallel(alive, [&](std::size_t i) {
      // The reorder runs on the worker's own (possibly pinned) thread so
      // the permuted entries are first-touched where they will be streamed.
      workers[i].prepare_epoch();
      workers[i].run_pipeline(server, lr, reg_p, reg_q, pool);
    });
    return;
  }

  // Work-stealing epoch: one shared chunk scheduler per epoch.  Chunk
  // targets come from the previous epoch's effective-bandwidth gauges — a
  // measured straggler gets smaller chunks, so more of its backlog is
  // stealable and its unstealable last chunk is short.
  std::size_t n_alive = 0;
  for (std::size_t i = 0; i < workers.size(); ++i) {
    if (i < alive.size() && alive[i]) ++n_alive;
  }
  StealScheduler sched(workers.size(), n_alive);
  auto& reg = obs::registry();
  std::vector<double> gbps(workers.size(), 0.0);
  double gbps_sum = 0.0;
  std::size_t gbps_n = 0;
  for (std::size_t i = 0; i < workers.size(); ++i) {
    if (!alive[i]) continue;
    const obs::Gauge* g =
        reg.find_gauge("worker" + std::to_string(i) + ".effective_gbps");
    if (g != nullptr && g->value() > 0.0) {
      gbps[i] = g->value();
      gbps_sum += gbps[i];
      ++gbps_n;
    }
  }
  const double gbps_mean =
      gbps_n > 0 ? gbps_sum / static_cast<double>(gbps_n) : 0.0;
  std::vector<std::size_t> targets(workers.size(), 0);
  for (std::size_t i = 0; i < workers.size(); ++i) {
    if (!alive[i]) continue;
    targets[i] = resolve_chunk_target(workers[i].assigned_nnz(),
                                      options_.chunk_ratings, gbps[i],
                                      gbps_mean);
  }

  run_parallel(alive, [&](std::size_t i) {
    try {
      workers[i].prepare_epoch();
      workers[i].pull(server);
      // Chunks are published only after the pull: stealing runs against a
      // consistent epoch-start view, and next_chunk's registration wait
      // keeps anyone from draining a queue before the real backlogs exist.
      sched.install(i, workers[i].make_chunks(targets[i]));
      WorkChunk chunk;
      while (sched.next_chunk(i, chunk)) {
        try {
          if (chunk.owner == static_cast<std::uint32_t>(i)) {
            workers[i].compute_own_range(server, chunk.lo, chunk.hi, lr,
                                         reg_p, reg_q, pool);
          } else {
            workers[i].compute_stolen(server, workers[chunk.owner], chunk.lo,
                                      chunk.hi, lr, reg_p, reg_q);
          }
        } catch (...) {
          // Release the row claim before aborting, or a peer parked on it
          // would never re-check the abort flag.
          sched.complete(chunk);
          throw;
        }
        sched.complete(chunk);
      }
      workers[i].guard_divergence();
      workers[i].push(server);
    } catch (...) {
      // Wake everyone (registration wait, claim wait) so the epoch barrier
      // is reached; peers push whatever they finished, and the recovery
      // paths roll the partial epoch back from the checkpoint exactly as
      // in the non-stealing executor.
      sched.abort();
      throw;
    }
  });
}

}  // namespace hcc::core
