#include "core/report_format.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/drift.hpp"
#include "util/table.hpp"

namespace hcc::core {

std::string format_report(const TrainReport& report) {
  std::ostringstream os;
  os << "plan: " << report.plan.explanation << '\n';

  // RMSE trace summary (functional runs only).
  double first = std::numeric_limits<double>::quiet_NaN();
  double last = first;
  double best = std::numeric_limits<double>::infinity();
  for (const auto& e : report.epochs) {
    if (std::isnan(e.test_rmse)) continue;
    if (std::isnan(first)) first = e.test_rmse;
    last = e.test_rmse;
    best = std::min(best, e.test_rmse);
  }
  if (!std::isnan(first)) {
    os << "test RMSE: " << util::Table::num(first, 4) << " -> "
       << util::Table::num(last, 4) << " (best "
       << util::Table::num(best, 4) << ")\n";
  }

  os << "virtual time: " << util::Table::num(report.total_virtual_s, 4)
     << " s over " << report.epochs.size() << " epochs\n";
  os << "computing power: "
     << util::Table::num(report.updates_per_s / 1e6, 1) << " Mupdates/s ("
     << util::Table::num(100.0 * report.utilization, 1)
     << "% of the platform's ideal)\n";
  if (report.comm_totals.wire_bytes > 0) {
    os << "wire traffic: "
       << util::Table::num(
              static_cast<double>(report.comm_totals.wire_bytes) / 1e6, 2)
       << " MB in " << report.comm_totals.copies << " transfers\n";
  }
  if (report.repartitions > 0) {
    os << "adaptive repartitions: " << report.repartitions << '\n';
  }
  if (!report.epochs.empty() &&
      !report.epochs.back().drift.workers.empty()) {
    const obs::DriftReport& drift = report.epochs.back().drift;
    os << "cost-model drift (last epoch): max "
       << util::Table::num(100.0 * drift.max_abs_rel_err, 1) << "%, mean "
       << util::Table::num(100.0 * drift.mean_abs_rel_err, 1) << "%\n";
  }
  return os.str();
}

std::string format_epoch_table(const TrainReport& report,
                               std::uint32_t stride) {
  stride = std::max(1u, stride);
  util::Table table({"epoch", "test RMSE", "epoch (s)", "cumulative (s)"});
  for (std::size_t e = 0; e < report.epochs.size(); ++e) {
    if (e % stride != 0 && e + 1 != report.epochs.size()) continue;
    const auto& er = report.epochs[e];
    table.add_row({std::to_string(er.epoch),
                   std::isnan(er.test_rmse)
                       ? "-"
                       : util::Table::num(er.test_rmse, 4),
                   util::Table::num(er.virtual_s, 6),
                   util::Table::num(er.cumulative_virtual_s, 6)});
  }
  std::ostringstream os;
  table.print(os);
  return os.str();
}

std::string format_drift_table(const TrainReport& report,
                               const std::vector<std::string>& worker_names) {
  if (report.epochs.empty() || report.epochs.back().drift.workers.empty()) {
    return "";
  }
  return obs::format_drift(report.epochs.back().drift, worker_names);
}

}  // namespace hcc::core
