// Chunked work queues with stealing (DP1 goes intra-epoch).
//
// The paper's DP1/DP2 policies rebalance *between* epochs from measured
// times, so a worker that turns into a straggler mid-epoch (co-tenant job,
// thermal throttle, scripted stall) holds the whole epoch barrier hostage.
// This module breaks each worker's schedule-prepared rating order into
// chunks on a per-worker deque: the owner drains its deque front-to-back
// (preserving the cache-aware visit order the scheduler just paid for),
// and a worker that runs dry steals from the *tail* of the deque with the
// most ratings left — the classic Cilk-style split of cheap owner pops vs
// coarse thief grabs, here at rating-range granularity.
//
// Race freedom is ownership-based, not lock-based:
//  - a chunk executed by its owner updates the owner's private local Q and
//    the global P rows of the chunk (exclusive under the row grid);
//  - a *stolen* chunk is computed against a thief-private Q scratch gathered
//    from the server and merged straight back through the server's stripe
//    locks (see TrainWorker::compute_stolen) — the victim's local Q is
//    never touched by another thread;
//  - two chunks of the same owner may share P rows (a user's ratings can
//    straddle a chunk cut only at tile boundaries, where tiles in the same
//    row band share rows), so the scheduler hands out a chunk only while no
//    in-flight chunk of the same owner overlaps its [u_lo, u_hi] row
//    interval.  That claim check is what makes concurrent execution of one
//    worker's slice safe without touching the SGD inner loop.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <vector>

#include "data/rating_matrix.hpp"

namespace hcc::obs {
class Counter;
}

namespace hcc::core {

/// One contiguous range of an owner's (schedule-prepared) entry order.
struct WorkChunk {
  std::uint32_t owner = 0;  ///< worker whose slice `lo/hi` index into
  std::uint32_t lo = 0;     ///< entry range [lo, hi) in the owner's slice
  std::uint32_t hi = 0;
  std::uint32_t u_lo = 0;   ///< inclusive global-row interval the range
  std::uint32_t u_hi = 0;   ///< touches (the P-claim for conflict checks)

  std::uint32_t ratings() const noexcept { return hi - lo; }
  friend bool operator==(const WorkChunk&, const WorkChunk&) = default;
};

/// Cuts `entries` into chunks of ~`target_ratings` each.  With `cut_points`
/// (ascending entry indexes in (0, n) — the tile boundaries under the tiled
/// schedule) every cut lands on one of them, so a chunk is a whole number
/// of tiles and stealing never splits a tile's cache working set.  Without
/// cut points a cut is deferred until the user row changes, so one user's
/// ratings never straddle two chunks and the per-chunk row intervals stay
/// tight.  Each chunk carries its touched-row interval [u_lo, u_hi].
std::vector<WorkChunk> build_chunks(std::span<const data::Rating> entries,
                                    std::uint32_t owner,
                                    std::size_t target_ratings,
                                    std::span<const std::uint32_t> cut_points);

/// Chunk-size heuristic: the base is `chunk_ratings` when set, otherwise
/// nnz/16 (16 chunks per worker — enough granularity for a 4x straggler to
/// shed ~3/4 of its tail, small enough that chunk bookkeeping stays
/// invisible next to the SGD itself).  The base is then scaled by the
/// worker's measured `worker_gbps / mean_gbps` (clamped to [0.25, 2]): a
/// straggler gets *smaller* chunks, so more of its queue is stealable and
/// its last chunk — the one nobody can help with — is short.
std::size_t resolve_chunk_target(std::size_t assigned_nnz,
                                 std::uint32_t chunk_ratings,
                                 double worker_gbps, double mean_gbps);

/// The per-epoch stealing scheduler: one deque per worker, one mutex + CV
/// for the whole thing (chunks are thousands of ratings each, so scheduler
/// traffic is far off the hot path).  Lifecycle per epoch:
///   install(i, chunks)   each pipeline thread, after prepare+pull
///   while (next_chunk(i, c)) { run c; complete(c); }
///   abort()              on any exception, so peers stop waiting
/// next_chunk blocks until every expected worker has installed (stealing
/// from a queue that is not populated yet would miss the victim's real
/// backlog), then serves own-front / steal-tail until all queues are dry
/// and all in-flight chunks are complete.
class StealScheduler {
 public:
  /// `n_workers` sizes the deque array; `expected` is how many workers will
  /// call install() this epoch (the alive count — dead workers never check
  /// in, and waiting for them would deadlock the barrier).
  StealScheduler(std::size_t n_workers, std::size_t expected);

  StealScheduler(const StealScheduler&) = delete;
  StealScheduler& operator=(const StealScheduler&) = delete;

  /// Publishes worker `i`'s chunks for this epoch.  Called once per alive
  /// worker, on its own pipeline thread.
  void install(std::size_t worker, std::vector<WorkChunk> chunks);

  /// Blocks until a chunk is available for `self` (own queue first, then
  /// the tail of the victim with the most ratings left), all work is done
  /// (returns false), or abort() was called (returns false).
  bool next_chunk(std::size_t self, WorkChunk& out);

  /// Releases `chunk`'s row claim and wakes waiters.  Must be called for
  /// every chunk next_chunk handed out — including on the exception path,
  /// *before* abort(), or peers blocked on the claim never re-check.
  void complete(const WorkChunk& chunk);

  /// Drops all queued work and wakes everyone; subsequent next_chunk calls
  /// return false.  Called when a pipeline thread is about to rethrow, so
  /// workers parked on the registration wait (or on a row claim) reach the
  /// epoch barrier instead of deadlocking.
  void abort();

  /// Tallies for the epoch (also mirrored into the steal.* counters).
  std::uint64_t steals() const;
  std::uint64_t stolen_ratings() const;

 private:
  struct RowClaim {
    std::uint32_t u_lo = 0;
    std::uint32_t u_hi = 0;
  };
  struct PerWorker {
    std::deque<WorkChunk> queue;
    std::size_t remaining = 0;          ///< ratings still queued
    std::vector<RowClaim> active;       ///< row intervals of in-flight chunks
  };

  /// True when `chunk`'s row interval overlaps an in-flight chunk of the
  /// same owner (claims are per-owner: different owners never share P rows
  /// under the row grid).
  bool claimed(const WorkChunk& chunk) const;
  /// Pops the first claimable chunk of `from`'s queue (front for the owner,
  /// back for a thief) into `out` and records its claim.
  bool take(std::size_t from, bool from_back, WorkChunk& out);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<PerWorker> workers_;
  std::size_t expected_;
  std::size_t installed_ = 0;
  std::size_t in_flight_ = 0;          ///< chunks handed out, not completed
  std::size_t total_remaining_ = 0;    ///< ratings queued across all deques
  bool aborted_ = false;
  std::uint64_t steals_ = 0;
  std::uint64_t stolen_ratings_ = 0;
  obs::Counter* steal_count_ = nullptr;
  obs::Counter* steal_chunks_ = nullptr;
  obs::Counter* steal_ratings_ = nullptr;
};

}  // namespace hcc::core
