#include "core/steal_queue.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"

namespace hcc::core {

std::vector<WorkChunk> build_chunks(std::span<const data::Rating> entries,
                                    std::uint32_t owner,
                                    std::size_t target_ratings,
                                    std::span<const std::uint32_t> cut_points) {
  std::vector<WorkChunk> chunks;
  const std::size_t n = entries.size();
  if (n == 0) return chunks;
  const std::size_t target = std::max<std::size_t>(1, target_ratings);
  chunks.reserve(n / target + 1);
  std::size_t lo = 0;
  // cut_points are ascending; this cursor only ever moves forward.
  std::size_t cut = 0;
  while (lo < n) {
    std::size_t hi = lo + target;
    if (hi >= n) {
      hi = n;
    } else if (!cut_points.empty()) {
      // Tile-aligned: land on the first boundary at or past the target so a
      // chunk is a whole number of tiles (never splits a tile's working
      // set).  Past the last boundary the remainder is one chunk.
      while (cut < cut_points.size() && cut_points[cut] <= lo) ++cut;
      while (cut < cut_points.size() && cut_points[cut] < hi) ++cut;
      hi = cut < cut_points.size() ? cut_points[cut] : n;
    } else {
      // Row-aligned: extend to the next user-row change so one user's
      // ratings never straddle two chunks (keeps the P-row claim intervals
      // of row-sorted slices disjoint).
      while (hi < n && entries[hi].u == entries[hi - 1].u) ++hi;
    }
    assert(hi > lo && hi <= n);
    WorkChunk c;
    c.owner = owner;
    c.lo = static_cast<std::uint32_t>(lo);
    c.hi = static_cast<std::uint32_t>(hi);
    c.u_lo = entries[lo].u;
    c.u_hi = entries[lo].u;
    for (std::size_t idx = lo + 1; idx < hi; ++idx) {
      c.u_lo = std::min(c.u_lo, entries[idx].u);
      c.u_hi = std::max(c.u_hi, entries[idx].u);
    }
    chunks.push_back(c);
    lo = hi;
  }
  return chunks;
}

std::size_t resolve_chunk_target(std::size_t assigned_nnz,
                                 std::uint32_t chunk_ratings,
                                 double worker_gbps, double mean_gbps) {
  const std::size_t base =
      chunk_ratings > 0 ? chunk_ratings
                        : std::max<std::size_t>(1, assigned_nnz / 16);
  if (!(worker_gbps > 0.0) || !(mean_gbps > 0.0)) return base;
  const double scale = std::clamp(worker_gbps / mean_gbps, 0.25, 2.0);
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(base) * scale));
}

StealScheduler::StealScheduler(std::size_t n_workers, std::size_t expected)
    : workers_(n_workers), expected_(std::min(expected, n_workers)) {
  auto& reg = obs::registry();
  steal_count_ = &reg.counter("steal.count");
  steal_chunks_ = &reg.counter("steal.chunks");
  steal_ratings_ = &reg.counter("steal.ratings");
}

void StealScheduler::install(std::size_t worker, std::vector<WorkChunk> chunks) {
  assert(worker < workers_.size());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    PerWorker& pw = workers_[worker];
    pw.queue.assign(chunks.begin(), chunks.end());
    pw.remaining = 0;
    for (const WorkChunk& c : chunks) pw.remaining += c.ratings();
    total_remaining_ += pw.remaining;
    ++installed_;
  }
  cv_.notify_all();
}

bool StealScheduler::claimed(const WorkChunk& chunk) const {
  for (const RowClaim& claim : workers_[chunk.owner].active) {
    if (chunk.u_lo <= claim.u_hi && claim.u_lo <= chunk.u_hi) return true;
  }
  return false;
}

bool StealScheduler::take(std::size_t from, bool from_back, WorkChunk& out) {
  PerWorker& pw = workers_[from];
  auto try_at = [&](auto it) {
    if (claimed(*it)) return false;
    out = *it;
    pw.queue.erase(it);
    pw.remaining -= out.ratings();
    total_remaining_ -= out.ratings();
    workers_[out.owner].active.push_back({out.u_lo, out.u_hi});
    ++in_flight_;
    return true;
  };
  if (from_back) {
    for (auto it = pw.queue.rbegin(); it != pw.queue.rend(); ++it) {
      if (try_at(std::prev(it.base()))) return true;
    }
  } else {
    for (auto it = pw.queue.begin(); it != pw.queue.end(); ++it) {
      if (try_at(it)) return true;
    }
  }
  return false;
}

bool StealScheduler::next_chunk(std::size_t self, WorkChunk& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Stealing before every alive worker has published its queue would see a
  // partial picture of the backlog (and could drain a fast worker while the
  // real straggler has not even checked in).
  cv_.wait(lock, [&] { return aborted_ || installed_ >= expected_; });
  for (;;) {
    if (aborted_) return false;
    // Own work first, in prepared order — the cache-aware schedule's whole
    // point is that this order is worth keeping.
    if (take(self, /*from_back=*/false, out)) return true;
    // Dry: steal from the tail of the worker with the most ratings left,
    // falling back to the next-fullest when a row claim blocks the first.
    std::vector<std::size_t> victims;
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (w != self && workers_[w].remaining > 0) victims.push_back(w);
    }
    std::sort(victims.begin(), victims.end(), [&](std::size_t a, std::size_t b) {
      return workers_[a].remaining > workers_[b].remaining;
    });
    bool stole = false;
    for (const std::size_t victim : victims) {
      if (take(victim, /*from_back=*/true, out)) {
        ++steals_;
        stolen_ratings_ += out.ratings();
        steal_count_->add(1);
        steal_chunks_->add(1);
        steal_ratings_->add(out.ratings());
        stole = true;
        break;
      }
    }
    if (stole) return true;
    // Nothing claimable anywhere.  All drained and nothing in flight means
    // the epoch's compute is done; otherwise an in-flight completion (or an
    // abort) will wake us to re-check.
    if (total_remaining_ == 0 && in_flight_ == 0) return false;
    cv_.wait(lock);
  }
}

void StealScheduler::complete(const WorkChunk& chunk) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& active = workers_[chunk.owner].active;
    for (auto it = active.begin(); it != active.end(); ++it) {
      if (it->u_lo == chunk.u_lo && it->u_hi == chunk.u_hi) {
        active.erase(it);
        break;
      }
    }
    assert(in_flight_ > 0);
    --in_flight_;
  }
  cv_.notify_all();
}

void StealScheduler::abort() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
    for (PerWorker& pw : workers_) {
      pw.queue.clear();
      pw.remaining = 0;
    }
    total_remaining_ = 0;
  }
  cv_.notify_all();
}

std::uint64_t StealScheduler::steals() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return steals_;
}

std::uint64_t StealScheduler::stolen_ratings() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stolen_ratings_;
}

}  // namespace hcc::core
