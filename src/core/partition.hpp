// Data partition strategies (Section 3.3).
//
// A partition is a vector x with sum(x) = 1; x_i is the fraction of all
// ratings worker i processes each epoch.
//
// - DP0 (Eq. 6): proportional to the inverse of each worker's independently
//   measured epoch time — optimal by Theorem 1 *if* per-update speed were
//   constant in the assignment size.
// - DP1 (Algorithm 1): iterative compensation that re-measures after DP0 and
//   shifts load between the CPU class and the GPU class until their average
//   compute times agree within 10%, absorbing the bandwidth/cache drift DP0
//   ignores ("data partition with heterogeneous load balance").
// - DP2 (Eq. 7): starts from DP1 and deliberately staggers worker finish
//   times by one per-worker sync interval each, so worker i's sync hides
//   under worker i+1's compute ("data partition with hidden
//   synchronization").
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace hcc::core {

enum class PartitionStrategy {
  kEven,  ///< uniform x_i = 1/p (the naive baseline; causes Figure 3's
          ///< "unbalanced data" behaviour on heterogeneous platforms)
  kDp0,
  kDp1,
  kDp2,
  kAuto,  ///< DP1 when sync is negligible (Eq. 5's first branch), else DP2
};

const char* partition_strategy_name(PartitionStrategy strategy);
PartitionStrategy partition_strategy_by_name(const std::string& name);

/// Measures per-worker *compute* seconds for a candidate partition; in
/// production this runs one profiling epoch (sgd_update in Algorithm 1
/// line 12), here it queries the platform simulator with jitter.
using ComputeMeasure =
    std::function<std::vector<double>(const std::vector<double>& shares)>;

/// DP0 (Eq. 6): x_i = (1/T_i_e) / sum_j (1/T_j_e) from the workers'
/// independent-execution times.
std::vector<double> dp0_partition(const std::vector<double>& independent_times);

/// Uniform partition.
std::vector<double> even_partition(std::size_t workers);

struct Dp1Options {
  double tolerance = 0.1;       ///< Algorithm 1's 10% CPU/GPU gap threshold
  std::uint32_t max_rounds = 8; ///< safety bound (paper: "usually only once")
};

struct Dp1Result {
  std::vector<double> shares;
  std::vector<double> measured_seconds;  ///< compute times at the result
  std::uint32_t rounds = 0;              ///< measurement rounds used
};

/// DP1 / Algorithm 1.  `is_gpu[i]` classifies worker i; `measure` supplies
/// the re-measured compute times after each adjustment.
Dp1Result dp1_partition(const std::vector<double>& initial_shares,
                        const std::vector<bool>& is_gpu,
                        const ComputeMeasure& measure,
                        const Dp1Options& options = {});

/// DP2 (Eq. 7): perturbs `balanced_shares` (with measured compute times
/// `balanced_seconds`) so consecutive workers *finish* one sync interval
/// apart, hiding each worker's sync under the next worker's tail compute.
///
/// `fixed_seconds` (optional, default zero) is each worker's constant
/// per-epoch time outside compute — its exposed pull+push — which also
/// shifts finish times; DP2 staggers the *totals*.  Workers are ranked by
/// their balanced total, so the naturally-earliest finisher gets the
/// earliest slot (minimal perturbation).  With equal fixed costs and equal
/// balanced times this reduces to the paper's symmetric Eq. 7 around the
/// median.
std::vector<double> dp2_partition(const std::vector<double>& balanced_shares,
                                  const std::vector<double>& balanced_seconds,
                                  double sync_per_worker_s,
                                  const std::vector<double>& fixed_seconds = {});

/// Renormalizes a share vector to sum exactly 1 (shares must be >= 0 and
/// not all zero).  Exposed because Algorithm 1's multiplicative update only
/// conserves the total approximately.
void normalize_shares(std::vector<double>& shares);

}  // namespace hcc::core
