// HCC-MF: the public facade.
//
// Two entry points:
//  - train():    functional collaborative training on a real rating matrix —
//                real SGD math, real COMM transfers, real convergence —
//                with every epoch also timed on the virtual platform.
//  - simulate(): timing-only run for paper-scale dataset shapes (regenerates
//                the evaluation tables/figures without materializing 100M
//                ratings).
//
// Both share the same DataManager plan, so the partition / strategy
// decisions are identical across the functional and timing paths.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "comm/strategy.hpp"
#include "core/adaptive.hpp"
#include "core/data_manager.hpp"
#include "core/epoch_executor.hpp"
#include "core/server.hpp"
#include "core/worker.hpp"
#include "data/datasets.hpp"
#include "data/schedule.hpp"
#include "fault/plan.hpp"
#include "mf/model.hpp"
#include "obs/drift.hpp"
#include "serve/snapshot.hpp"
#include "sim/platform.hpp"

namespace hcc::core {

/// What HccMfConfig::validate() can object to.
enum class ConfigErrorCode {
  kNoWorkers,
  kZeroLatentDim,
  kZeroEpochs,
  kBadLearnRate,
  kBadRegularization,
  kBadDecay,
  kZeroStreams,
  kBadAdaptiveGain,
  kBadDeadlineFactor,
  kBadBackoff,
  kZeroCheckpointCadence,
  kBadTileKb,
  kStealNeedsParallel,
  kBadHeartbeat,
  kBadTransportTimeout,
  kZeroReconnectBudget,
  kBadTransportLink,
  kPublishNeedsRegistry,
  kBadPipelineDepth,
};

struct ConfigError {
  ConfigErrorCode code;
  std::string message;
};

/// Everything configurable about a run.
struct HccMfConfig {
  mf::SgdConfig sgd;
  comm::CommConfig comm;
  PartitionStrategy partition = PartitionStrategy::kAuto;
  sim::PlatformSpec platform;
  DataManagerOptions manager;
  /// Dataset name for the simulator's calibration lookup ("netflix", "r1",
  /// ...; scaled names like "netflix@0.05" match their base).  Empty uses
  /// the analytic device model.
  std::string dataset_name;
  /// Host threads for the functional workers' ASGD (0 = single-threaded).
  std::uint32_t host_threads = 0;
  /// How the functional epoch executes across workers (see
  /// core/epoch_executor.hpp): kSerial (default) keeps the bit-identical
  /// deterministic single-thread trajectory; kParallel runs each worker's
  /// pipeline on its own thread against a striped server.
  ExecOptions exec;
  /// Cache-aware visit order for each worker's slice (see
  /// data/schedule.hpp): kAsIs (default) is a guaranteed no-op keeping the
  /// legacy bit-identical trajectory; kShuffled/kTiled reorder per epoch.
  data::ScheduleOptions schedule;
  /// Evaluate test RMSE after every epoch (functional runs only).
  bool evaluate_each_epoch = true;

  /// Runtime adaptation (extension, see core/adaptive.hpp): rebalance the
  /// partition between epochs when measured compute times drift apart.
  bool adaptive_repartition = false;
  AdaptiveOptions adaptive;
  /// Test hook for the timing layer: per-(epoch, worker) update-rate scale
  /// emulating throttling / co-tenancy (1.0 = nominal; empty = none).
  std::function<double(std::uint32_t epoch, std::size_t worker)>
      rate_disturbance;

  /// Fault tolerance (see fault/plan.hpp and docs/fault_tolerance.md):
  /// scripted failure injection, checkpointing, detection and recovery.
  /// Defaults leave the wire format and training trajectory bit-identical
  /// to a build without the subsystem.
  fault::FaultOptions fault;

  /// Online serving (src/serve/, docs/serving.md): when `snapshots` is set
  /// and `publish_every` > 0, train() publishes an immutable snapshot of
  /// P/Q encoded as `publish_store` after every publish_every-th epoch
  /// (plus the final model after the P codec roundtrip), at the epoch
  /// barrier where every factor row is quiescent.  Query threads read the
  /// registry concurrently without ever blocking training.  Defaults (no
  /// registry) change nothing.
  std::uint32_t publish_every = 0;
  serve::StoreKind publish_store = serve::StoreKind::kFp32;
  std::shared_ptr<serve::SnapshotRegistry> snapshots;

  /// Checks the whole config once and returns every violation (empty =
  /// valid).  train()/simulate() call this and throw std::invalid_argument
  /// with the joined messages on the first violation.
  std::vector<ConfigError> validate() const;
};

/// Per-epoch record.
struct EpochReport {
  std::uint32_t epoch = 0;
  double virtual_s = 0.0;             ///< simulated wall time of this epoch
  double cumulative_virtual_s = 0.0;
  double test_rmse = 0.0;             ///< NaN when not evaluated
  sim::EpochTiming timing;            ///< full pull/compute/push/sync detail
  /// Cost-model drift: simulated ("measured") phase times of this epoch vs
  /// the Eq. 1-5 predictions for the live plan — the verification signal
  /// behind DP1/DP2 and the adaptive controller.
  obs::DriftReport drift;
  /// Wall-clock phase times of the functional workers this epoch (real
  /// measured spans; empty for simulate()-only runs).  Same shape as
  /// `timing`, so every exporter that renders simulated epochs renders
  /// measured ones too.
  sim::EpochTiming measured;
  /// Fault-tolerance observations for this epoch's (last) execution: how
  /// many injections and transfer retries it absorbed, and which workers
  /// blew their cost-model deadline.  All zero/empty when the subsystem is
  /// idle.
  std::uint32_t fault_injected = 0;
  std::uint32_t fault_retries = 0;
  std::vector<std::uint32_t> stragglers;
};

/// Run-level fault-tolerance summary (see fault/recovery.hpp).
struct FaultSummary {
  std::uint64_t injected = 0;
  std::uint64_t retries = 0;
  std::uint64_t checksum_failures = 0;
  std::uint64_t recoveries = 0;             ///< worker deaths survived
  std::uint64_t divergence_rollbacks = 0;
  std::uint64_t stragglers = 0;             ///< deadline violations flagged
  double recovery_wall_s = 0.0;             ///< total time spent recovering
  std::vector<std::uint32_t> dead_workers;  ///< ids, in order of death
  std::vector<std::size_t> worker_nnz;      ///< final assignment (0 = dead)
};

/// The result of a run.
struct TrainReport {
  Plan plan;
  std::vector<EpochReport> epochs;
  double total_virtual_s = 0.0;
  double updates_per_s = 0.0;        ///< "computing power" (Eq. 8)
  double ideal_updates_per_s = 0.0;  ///< sum of workers' IW rates (Table 4)
  double utilization = 0.0;          ///< updates_per_s / ideal
  double comm_virtual_s = 0.0;       ///< cumulative pull+push time (Table 5)
  comm::TransferStats comm_totals;   ///< functional wire accounting
  std::uint32_t repartitions = 0;    ///< adaptive rebalances performed
  FaultSummary fault;                ///< fault-tolerance tallies for the run
  std::optional<mf::FactorModel> model;  ///< final model (functional runs)
};

/// The framework.
class HccMf {
 public:
  explicit HccMf(HccMfConfig config);

  /// Functional collaborative training.  `test` (optional) supplies the
  /// held-out ratings for per-epoch RMSE.  If the matrix has more columns
  /// than rows it is transposed internally (column grid / "Transmitting P
  /// only"), transparently to the caller.
  TrainReport train(const data::RatingMatrix& train_ratings,
                    const data::RatingMatrix* test_ratings = nullptr);

  /// Timing-only run over a dataset shape (paper-scale experiments).
  TrainReport simulate(const sim::DatasetShape& shape);

  /// The resolved plan for a shape, without running anything.
  Plan plan_for(const sim::DatasetShape& shape) const;

  const HccMfConfig& config() const noexcept { return config_; }

 private:
  sim::DatasetShape shape_of(const data::RatingMatrix& m) const;
  /// `injector` (optional) composes scripted stalls/kills into the virtual
  /// timing path: a killed worker's share redistributes from its death
  /// epoch, a stalled worker's rates drop by its stall factor.
  void accumulate_timing(TrainReport& report, const DataManager& manager,
                         const Plan& plan,
                         const fault::FaultInjector* injector = nullptr);

  HccMfConfig config_;
};

}  // namespace hcc::core
