// Functional worker (Section 3.1's steps 5-7).
//
// A worker owns a contiguous row slice of the rating matrix (its grid
// assignment), a private local copy of Q, and its own COMM channel to the
// server.  One epoch is pull -> asynchronous SGD over the slice -> push.
// P rows inside the slice are exclusive to this worker under a row grid, so
// it updates the global P in place — exactly why "Transmitting Q only"
// loses nothing (Section 3.4, Strategy 1).
//
// Under the concurrent epoch executor (core/epoch_executor.hpp) each
// worker's whole chunked pipeline runs on a dedicated thread via
// run_pipeline(); pulls then go through the server's stripe-locked readers
// (safe against concurrent merges), and with double-buffering on, chunk
// c+1's pull runs on a prefetch thread overlapping chunk c's compute
// (Strategy 3's copy-engine overlap).
#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "comm/pipeline.hpp"
#include "comm/strategy.hpp"
#include "core/server.hpp"
#include "core/steal_queue.hpp"
#include "data/rating_matrix.hpp"
#include "data/schedule.hpp"
#include "fault/recovery.hpp"
#include "obs/drift.hpp"
#include "util/aligned.hpp"
#include "util/thread_pool.hpp"

namespace hcc::core {

/// One collaborative-computing worker (CPU or GPU role; the role only
/// matters to the timing layer — functionally both run the same ASGD).
class TrainWorker {
 public:
  /// `slice` holds this worker's ratings (global coordinates); `streams`
  /// chunks the epoch into that many pull-compute-push pipeline stages
  /// (Strategy 3's functional effect: fresher Q, more sync rounds).
  TrainWorker(std::uint32_t id, std::string device_name,
              data::RatingMatrix slice, const comm::CommConfig& config,
              std::uint32_t streams = 1);

  TrainWorker(TrainWorker&&) = default;
  TrainWorker& operator=(TrainWorker&&) = default;

  ~TrainWorker();

  std::uint32_t id() const noexcept { return id_; }
  const std::string& device_name() const noexcept { return device_name_; }
  std::size_t assigned_nnz() const noexcept { return slice_.nnz(); }
  std::uint32_t streams() const noexcept { return streams_; }

  /// Items this worker's slice actually rates; under sparse push (see
  /// comm::CommConfig::sparse) only these Q rows travel.
  std::size_t touched_items() const noexcept { return touched_.size(); }

  /// Switches between the single-threaded legacy phase methods and the
  /// concurrent pipeline: under `parallel` pulls route through the
  /// server's stripe-locked readers and pushes pass the touched-row set so
  /// the merge skips untouched stripes; `double_buffer` additionally
  /// overlaps chunk c+1's pull with chunk c's compute (streams >= 2 only).
  void set_exec(bool parallel, bool double_buffer);

  /// Arms the cache-aware rating scheduler (data/schedule.hpp).  `k` is the
  /// factor rank (sets the tile working-set size).  The worker id is mixed
  /// into the seed so workers do not reorder in lockstep.  Default-armed
  /// with kAsIs, which keeps prepare_epoch() a guaranteed no-op.
  void set_schedule(const data::ScheduleOptions& options, std::uint32_t k);

  /// Reorders this worker's slice for the upcoming epoch (internal epoch
  /// counter).  Must run before the epoch's first compute: on the worker's
  /// own pipeline thread under the concurrent executor (first-touch keeps
  /// the reordered entries NUMA-local), or on the driver thread in serial
  /// mode.  kAsIs leaves the slice bit-identical and records nothing.
  void prepare_epoch();

  /// What the last prepare_epoch() did (tiles, spans, reorder wall time).
  /// Read it between epochs (from the harvest loop), never mid-pipeline.
  const data::ScheduleStats& schedule_stats() const noexcept {
    return sched_stats_;
  }

  /// Pulls the global Q through this worker's COMM channel (one wire copy)
  /// and snapshots it for the later delta merge.
  void pull(Server& server);

  /// Runs ASGD over chunk `chunk` (of `streams` chunks) of the slice:
  /// updates global P rows in place and the local Q copy.  `pool` provides
  /// the worker's thread pool (nullptr = single-threaded).
  void compute_chunk(Server& server, std::uint32_t chunk, float lr,
                     float reg_p, float reg_q, util::ThreadPool* pool);

  /// Pushes the local Q through the COMM channel and has the server merge
  /// the delta against this worker's pull snapshot, weighted by this
  /// worker's data share (see Server::sync_q).
  void push(Server& server);

  /// Cuts this worker's (schedule-prepared) slice into ~target_ratings
  /// chunks for the work-stealing executor: tile-aligned cuts under the
  /// tiled schedule (ScheduleStats::tile_offsets), user-row-aligned cuts
  /// otherwise.  Call after prepare_epoch(), on the worker's own thread.
  std::vector<WorkChunk> make_chunks(std::size_t target_ratings) const;

  /// ASGD over entries [lo, hi) of this worker's own slice — the owned-
  /// chunk unit of the stealing executor.  Same inner loop as
  /// compute_chunk, but the range comes from the chunk queue and the
  /// divergence guard is deferred to guard_divergence() before push (one
  /// O(|Q|) scan per epoch instead of per chunk).
  void compute_own_range(Server& server, std::size_t lo, std::size_t hi,
                         float lr, float reg_p, float reg_q,
                         util::ThreadPool* pool);

  /// Runs a chunk stolen from `victim` (entries [lo, hi) of the *victim's*
  /// slice): gathers the touched Q rows from the server into a private
  /// scratch, then runs the SGD with an asymmetric write policy —
  ///
  ///  * P rows update in place at full strength.  They are the victim's
  ///    exclusive rows (the scheduler's row claim keeps every other
  ///    in-flight chunk off them), and advancing them is exactly the work
  ///    the straggler sheds.
  ///  * Q movement stays in the scratch and is *discarded* at chunk end.
  ///    The shared items' per-epoch movement budget is already allocated
  ///    to the replicas' weighted pushes; adding the stolen delta through
  ///    any other path over-steps it.  Measured on the 4-worker netflix
  ///    bench (~200 steals): a mid-epoch stripe-locked merge at the
  ///    victim's weights degraded final RMSE 0.32 -> 0.45 (1.0 weight:
  ///    1.7), folding the delta into the victim's replica for its own push
  ///    diverged outright (parallel same-origin deltas sum instead of
  ///    chaining), while discarding holds 0.324 parity even at 1000+
  ///    steals and under 4x real stalls.
  ///
  /// The scratch still *evolves* within the chunk, so consecutive updates
  /// of one item inside the chunk see each other, like a sequential pass.
  void compute_stolen(Server& server, const TrainWorker& victim,
                      std::size_t lo, std::size_t hi, float lr, float reg_p,
                      float reg_q);

  /// The compute_chunk divergence check, callable standalone: throws
  /// fault::DivergenceError when the guard is armed and local Q has gone
  /// non-finite.  The stealing executor runs it once, pre-push.
  void guard_divergence();

  /// One whole epoch of this worker — pull, then per chunk compute+push,
  /// with the next chunk's pull prefetched during compute when
  /// double-buffering is on.  This is the unit the concurrent executor
  /// runs on the worker's dedicated thread; faults thrown anywhere in the
  /// pipeline (including on the prefetch thread) propagate out after the
  /// prefetch thread is quiesced.
  void run_pipeline(Server& server, float lr, float reg_p, float reg_q,
                    util::ThreadPool* pool);

  /// Arms the fault-tolerance hooks: scheduled kill/corrupt injection,
  /// wire checksums, bounded retry on checksum failure, and the post-chunk
  /// divergence guard.  `runtime` must outlive the worker; nullptr disarms.
  /// When the runtime is idle (no plan, no checkpoint dir) the only hook
  /// left on is the divergence guard, which changes nothing unless a
  /// non-finite value actually appears.
  void set_fault_runtime(fault::FaultRuntime* runtime);

  /// Timing-layer stall composition: scales the *recorded* phase seconds
  /// (measured_ and the histograms) by `factor` without slowing the actual
  /// computation — a stalled worker produces identical results, later.
  void set_stall_factor(double factor) noexcept {
    stall_factor_ = factor > 0.0 ? factor : 1.0;
  }

  /// Real stalls (fault::FaultOptions::real_stalls): the compute phases
  /// sleep (stall_factor - 1) x their measured time on this thread, and the
  /// recorded seconds are then taken as-is (no multiplier — the wall clock
  /// already contains the stall).  Results stay bit-identical either way;
  /// only time moves.
  void set_real_stalls(bool on) noexcept { real_stalls_ = on; }

  /// This worker's rating slice (global coordinates).
  const data::RatingMatrix& slice() const noexcept { return slice_; }

  /// Degraded-mode repartition: appends a dead worker's entries to this
  /// worker's slice and refreshes the touched-item set.  The caller must
  /// re-derive per-item merge weights afterwards.
  void absorb_entries(const std::vector<data::Rating>& entries);

  /// Sets the sync merge weight (the worker's data share x_i; default 1).
  void set_sync_weight(float weight) noexcept { sync_weight_ = weight; }
  float sync_weight() const noexcept { return sync_weight_; }

  /// Sets per-item merge weights (this worker's fraction of each item's
  /// ratings); takes precedence over the scalar weight.  See
  /// Server::sync_q(pushed, snapshot, item_weights).
  void set_item_weights(std::vector<float> weights) {
    item_weights_ = std::move(weights);
  }

  /// The per-item merge weights (empty = scalar sync_weight applies); a
  /// thief merges a stolen chunk with the *victim's* weights through here.
  std::span<const float> item_weights_span() const noexcept {
    return item_weights_;
  }

  /// Wire-transfer accounting for this worker's channel.
  const comm::TransferStats& comm_stats() const { return backend_->stats(); }

  /// The worker's COMM channel (a SessionComm under a non-default
  /// transport; tests and reports read its protocol stats through this).
  const comm::CommBackend& backend() const noexcept { return *backend_; }

  /// Wall-clock seconds this worker has spent in each phase since the last
  /// take_measured() — the runtime-observed counterpart of the paper's
  /// T_pull/T_c/T_push/T_sync decomposition.  pull/compute/push accumulate
  /// inside the instrumented methods; sync is the server merge time this
  /// worker's pushes consumed.
  const obs::PhaseTimes& measured_phases() const noexcept {
    return measured_;
  }

  /// Returns the accumulated phase times and resets them (one epoch's
  /// harvest).
  obs::PhaseTimes take_measured() noexcept {
    obs::PhaseTimes out = measured_;
    measured_ = {};
    return out;
  }

  /// Ratings this worker actually computed since the last take (its own
  /// chunks plus anything it stole) — the numerator of effective_gbps once
  /// stealing decouples work done from work assigned.
  std::size_t take_computed() noexcept {
    const std::size_t out = computed_;
    computed_ = 0;
    return out;
  }

 private:
  /// Sizes every staging buffer for the current slice/mode once, so the
  /// per-epoch pull/push paths never reallocate (they assert instead).
  void ensure_buffers(Server& server);

  /// The shared body of pull()/the prefetch: wire-transfers the global Q
  /// into `q_dst` and snapshots the received state into `snap_dst`.  Under
  /// parallel execution the global read goes through the server's
  /// stripe-locked readers.
  void pull_into(Server& server, util::AlignedFloats& q_dst,
                 std::vector<float>& snap_dst);

  /// Launches the prefetch thread pulling the *next* chunk's Q into the
  /// back buffers; join_prefetch() quiesces it and rethrows anything it
  /// threw (fault injection fires there too).  swap_buffers() promotes the
  /// prefetched Q to the front.
  void start_prefetch(Server& server);
  void join_prefetch();
  void swap_buffers();

  /// The prefetched Q was read before this chunk's push landed on the
  /// server, so it is stale by exactly the (weighted) delta we just merged.
  /// Folds that delta into *both* back buffers: compute sees its own
  /// updates one chunk sooner, and because local and snapshot shift
  /// together the next push delta — hence the server — is unaffected.
  void fold_own_delta(std::uint32_t k);

  /// Gathers this worker's touched Q rows into `packed`, or scatters them
  /// back; the sparse-push wire format (Strategy 4, extension).
  void gather_touched(std::span<const float> q, std::vector<float>& packed,
                      std::uint32_t k) const;
  void scatter_touched(const std::vector<float>& packed, std::span<float> q,
                       std::uint32_t k) const;

  /// Recomputes touched_ from the slice (after absorb_entries).
  void rebuild_touched();

  /// The worker's delivery-retry policy, handed to the stream pipelines:
  /// bounded retry + exponential backoff on checksum failure, giving up
  /// with fault::TransferFailure.  Safe for stateful codecs: their state
  /// commits at decode, which a checksum failure precedes, so the retry
  /// re-sends byte-identical wire (per chunk, under a depth > 1 pipeline).
  comm::StreamPipeline::RetryFn retry_policy();

  /// The shared ASGD inner loop over `entries[lo, hi)` against this
  /// worker's local Q (global P in place) — the body of compute_chunk and
  /// compute_own_range.
  void sgd_over_own(Server& server, std::span<const data::Rating> entries,
                    std::size_t lo, std::size_t hi, float lr, float reg_p,
                    float reg_q, util::ThreadPool* pool);

  /// Records one phase's wall-clock seconds (stall-inflated, unless the
  /// stall was already real — see set_real_stalls).
  void record_phase(double seconds, double obs::PhaseTimes::*field,
                    obs::Histogram* hist);

  /// Sleeps (stall_factor - 1) x `elapsed_s` when real stalls are armed;
  /// called at the end of a compute phase, inside its span.
  void apply_real_stall(double elapsed_s) const;

  std::uint32_t id_;
  std::string device_name_;
  obs::PhaseTimes measured_;
  /// Per-worker phase histograms, resolved once (registry lookups lock).
  obs::Histogram* hist_pull_ = nullptr;
  obs::Histogram* hist_compute_ = nullptr;
  obs::Histogram* hist_push_ = nullptr;
  obs::Histogram* hist_sync_ = nullptr;
  /// Process-wide count of dispatched SGD updates (simd.sgd_updates);
  /// bumped once per chunk, not per rating.
  obs::Counter* counter_updates_ = nullptr;
  data::RatingMatrix slice_;
  std::uint32_t streams_;
  bool sparse_ = false;
  bool parallel_ = false;       ///< concurrent executor drives this worker
  bool double_buffer_ = false;  ///< overlap next pull with current compute
  std::vector<std::uint32_t> touched_;  ///< items this slice rates (sparse)
  float sync_weight_ = 1.0f;
  std::vector<float> item_weights_;
  fault::FaultRuntime* fault_ = nullptr;
  double stall_factor_ = 1.0;
  bool real_stalls_ = false;
  std::size_t computed_ = 0;  ///< ratings computed since take_computed()
  data::RatingScheduler scheduler_;    ///< kAsIs by default (no-op)
  std::uint32_t sched_epoch_ = 0;      ///< epochs prepared so far
  data::ScheduleStats sched_stats_;    ///< last prepare_epoch() result
  std::uint32_t last_chunk_ = 0;  ///< chunk index the pending push covers
  std::unique_ptr<comm::CommBackend> backend_;
  /// Kept to build the per-direction pipelines once the rank k is known
  /// (ensure_buffers), so quantized codecs get one absmax scale per Q row.
  comm::CommConfig comm_config_;
  /// This worker's wire paths, one StreamPipeline per direction: the
  /// sub-FP16 codecs are stateful delta coders, so pull and push are
  /// separate streams, and sharing the server's instance across workers
  /// would interleave them.  At depth 1 each pipeline is exactly the old
  /// single-codec transfer; at depth > 1 it streams row-aligned chunks.
  /// The epoch pipeline orders every use (prefetch pulls happen-before the
  /// next push via join_prefetch), so no locking is needed.
  std::unique_ptr<comm::StreamPipeline> pull_pipe_;
  std::unique_ptr<comm::StreamPipeline> push_pipe_;
  /// 64-byte-aligned: the SGD inner loop streams over these Q rows.
  util::AlignedFloats local_q_;
  std::vector<float> snapshot_q_;
  /// Back buffers the prefetch thread fills (double-buffering only).
  util::AlignedFloats local_q_back_;
  std::vector<float> snapshot_q_back_;
  std::vector<float> pull_staging_;  ///< stripe-locked dense read landing
  std::vector<float> push_staging_;
  std::vector<float> packed_send_;
  std::vector<float> packed_recv_;
  std::thread prefetch_thread_;
  std::exception_ptr prefetch_error_;
  /// Thief-private scratch for stolen chunks: the unique touched items, a
  /// packed Q working copy, and an item -> packed slot index.  Reused
  /// across steals, so steady-state steals allocate nothing.
  std::vector<std::uint32_t> steal_items_;
  std::vector<float> steal_q_;
  std::vector<std::uint32_t> steal_index_;
};

}  // namespace hcc::core
