// Human-readable rendering of train reports.
//
// Examples and downstream tools want a consistent one-look summary of a
// run: the plan, the convergence trace, the throughput/utilization and the
// wire accounting.  This keeps that formatting in one tested place instead
// of re-implemented per example.
#pragma once

#include <string>

#include "core/hccmf.hpp"

namespace hcc::core {

/// Multi-line summary of a run: plan line, first/best/last RMSE (when
/// evaluated), total virtual time, computing power + utilization, wire
/// traffic, repartition count.
std::string format_report(const TrainReport& report);

/// One row per epoch: "epoch  rmse  epoch_s  cumulative_s" as an aligned
/// table.  `stride` subsamples long runs (1 = every epoch).
std::string format_epoch_table(const TrainReport& report,
                               std::uint32_t stride = 1);

/// Cost-model drift table of the last epoch (measured phase times vs the
/// Eq. 1-5 predictions), one row per worker; empty string when the report
/// carries no drift data.  `worker_names` labels rows (device names).
std::string format_drift_table(const TrainReport& report,
                               const std::vector<std::string>& worker_names =
                                   {});

}  // namespace hcc::core
