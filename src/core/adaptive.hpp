// Runtime-adaptive repartitioning (extension).
//
// Algorithm 1 runs once, before training; if a device's effective speed
// changes afterwards (thermal throttling, co-tenant jobs), the static
// partition degrades into the paper's "unbalanced data" pathology.  This
// controller watches the measured per-epoch compute times and rebalances
// the shares proportionally when the spread exceeds a threshold — the
// online generalization of Algorithm 1's multiplicative compensation
// (line 6), applied per worker instead of per class.
//
// Adaptation is a scheduling-layer concern: moving rows between workers
// changes who computes what (and hence the epoch time), not the math —
// every rating is still applied once per epoch and merged the same way —
// so HccMf applies the controller on the timing path (simulate(), and
// train()'s virtual clocks) where its effect is observable.
#pragma once

#include <cstdint>
#include <vector>

namespace hcc::core {

struct AdaptiveOptions {
  /// Rebalance when (max - min) / min of compute times exceeds this.
  double spread_threshold = 0.15;
  /// Epochs to wait after a rebalance before acting again (lets the new
  /// partition's measurements stabilize).
  std::uint32_t cooldown_epochs = 2;
  /// Step damping in (0, 1]: 1 jumps straight to the proportional fix,
  /// smaller values move gradually (robust to measurement noise).
  double gain = 0.8;
};

/// Degraded-mode repartition (fault-tolerance extension): zeroes the dead
/// worker's share and renormalizes the survivors proportionally — the same
/// multiplicative compensation Algorithm 1's DP1 applies, collapsed to one
/// step because the survivors' relative speeds are already balanced.
/// Returns the input unchanged when `dead` is out of range or no survivor
/// has positive share.
std::vector<double> redistribute_dead_share(std::vector<double> shares,
                                            std::size_t dead);

/// Watches compute-time measurements and maintains the share vector.
class AdaptiveController {
 public:
  AdaptiveController(std::vector<double> initial_shares,
                     AdaptiveOptions options = {});

  /// Feeds one epoch's measured per-worker compute seconds.  Returns true
  /// when the shares were rebalanced (the caller must then re-grid).
  /// Zero-share workers are ignored (pruned workers stay pruned).
  bool observe(const std::vector<double>& compute_seconds);

  const std::vector<double>& shares() const noexcept { return shares_; }
  std::uint32_t repartitions() const noexcept { return repartitions_; }

 private:
  std::vector<double> shares_;
  AdaptiveOptions options_;
  std::uint32_t repartitions_ = 0;
  std::uint32_t cooldown_ = 0;
};

}  // namespace hcc::core
