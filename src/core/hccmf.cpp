#include "core/hccmf.hpp"

#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "data/grid.hpp"
#include "mf/metrics.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"

namespace hcc::core {

namespace {

/// Eq. 1-5 phase predictions for every worker of an epoch config.  Workers
/// the timing engine skips (no share, no communication) predict zero so
/// they do not register as drift.
std::vector<obs::PhaseTimes> predicted_phases(const sim::EpochConfig& cfg) {
  std::vector<obs::PhaseTimes> predicted(cfg.workers.size());
  for (std::size_t w = 0; w < cfg.workers.size(); ++w) {
    const sim::WorkerPlan& plan = cfg.workers[w];
    if (plan.share <= 0.0 && plan.comm.pull_bytes <= 0.0) continue;
    const PhaseCost cost = predicted_phase_cost(
        plan.device, cfg.shape, plan.share, plan.comm, cfg.server);
    predicted[w] = {cost.pull_s, cost.compute_s, cost.push_s, cost.sync_s};
  }
  return predicted;
}

std::vector<obs::PhaseTimes> timing_phases(const sim::EpochTiming& timing) {
  std::vector<obs::PhaseTimes> measured(timing.workers.size());
  for (std::size_t w = 0; w < timing.workers.size(); ++w) {
    const sim::WorkerTiming& t = timing.workers[w];
    measured[w] = {t.pull_s, t.compute_s, t.push_s, t.sync_s};
  }
  return measured;
}

}  // namespace

HccMf::HccMf(HccMfConfig config) : config_(std::move(config)) {
  if (config_.platform.workers.empty()) {
    config_.platform = sim::paper_workstation_hetero();
  }
}

sim::DatasetShape HccMf::shape_of(const data::RatingMatrix& m) const {
  sim::DatasetShape shape;
  shape.name = config_.dataset_name;
  shape.m = m.rows();
  shape.n = m.cols();
  shape.nnz = m.nnz();
  shape.k = config_.sgd.k;
  return shape;
}

Plan HccMf::plan_for(const sim::DatasetShape& shape) const {
  DataManager manager(config_.platform, shape, config_.comm, config_.manager);
  return manager.plan(config_.partition);
}

void HccMf::accumulate_timing(TrainReport& report, const DataManager& manager,
                              const Plan& plan) {
  const std::uint32_t epochs = config_.sgd.epochs;
  report.epochs.reserve(epochs);

  // Adaptive repartitioning (optional): track shares across epochs and
  // rebalance when measured compute times drift apart.
  Plan live_plan = plan;
  std::optional<AdaptiveController> controller;
  if (config_.adaptive_repartition) {
    controller.emplace(plan.shares, config_.adaptive);
  }

  for (std::uint32_t e = 0; e < epochs; ++e) {
    sim::EpochConfig cfg = manager.epoch_config(live_plan, e + 1 == epochs);
    cfg.seed = config_.manager.seed + 17 * (e + 1);
    if (config_.rate_disturbance) {
      for (std::size_t w = 0; w < cfg.workers.size(); ++w) {
        cfg.workers[w].rate_scale = config_.rate_disturbance(e, w);
      }
    }
    EpochReport er;
    er.epoch = e;
    er.timing = sim::simulate_epoch(cfg);
    er.virtual_s = er.timing.epoch_s;
    report.total_virtual_s += er.virtual_s;
    er.cumulative_virtual_s = report.total_virtual_s;
    er.test_rmse = std::numeric_limits<double>::quiet_NaN();
    for (const auto& w : er.timing.workers) {
      report.comm_virtual_s += w.pull_s + w.push_s;
    }

    // Cost-model drift: what the epoch actually took (timing engine) vs
    // what Eq. 1-5 predicted for the live plan.  Published as gauges each
    // epoch so the registry always holds the freshest verification signal.
    er.drift = obs::compute_drift(predicted_phases(cfg),
                                  timing_phases(er.timing));
    obs::publish_drift(obs::registry(), er.drift);
    util::log_kv(util::LogLevel::kDebug, "epoch_drift",
                 {util::kv("epoch", e),
                  util::kv("max_abs_rel_err", er.drift.max_abs_rel_err),
                  util::kv("mean_abs_rel_err", er.drift.mean_abs_rel_err)});
    if (controller) {
      std::vector<double> compute;
      compute.reserve(er.timing.workers.size());
      for (const auto& w : er.timing.workers) compute.push_back(w.compute_s);
      if (controller->observe(compute)) {
        live_plan.shares = controller->shares();
      }
    }
    report.epochs.push_back(std::move(er));
  }
  if (controller) report.repartitions = controller->repartitions();
}

TrainReport HccMf::simulate(const sim::DatasetShape& shape) {
  DataManager manager(config_.platform, shape, config_.comm, config_.manager);
  TrainReport report;
  report.plan = manager.plan(config_.partition);
  accumulate_timing(report, manager, report.plan);
  const double updates = static_cast<double>(shape.nnz) * config_.sgd.epochs;
  report.updates_per_s =
      report.total_virtual_s > 0.0 ? updates / report.total_virtual_s : 0.0;
  report.ideal_updates_per_s = config_.platform.ideal_update_rate(shape);
  report.utilization = report.ideal_updates_per_s > 0.0
                           ? report.updates_per_s / report.ideal_updates_per_s
                           : 0.0;
  return report;
}

TrainReport HccMf::train(const data::RatingMatrix& train_ratings,
                         const data::RatingMatrix* test_ratings) {
  // Column-grid case: transpose so the rest of the pipeline is always
  // row-grid ("Transmitting P only" is Q-only on the transpose).
  const bool transpose = train_ratings.cols() > train_ratings.rows();
  data::RatingMatrix matrix =
      transpose ? train_ratings.transposed() : train_ratings;
  data::RatingMatrix test_local;
  if (test_ratings != nullptr && transpose) {
    test_local = test_ratings->transposed();
    test_ratings = &test_local;
  }

  const sim::DatasetShape shape = shape_of(matrix);
  DataManager manager(config_.platform, shape, config_.comm, config_.manager);

  TrainReport report;
  report.plan = manager.plan(config_.partition);
  HCC_LOG_INFO() << "HCC-MF plan: " << report.plan.explanation;

  // Step 2-3 of Figure 4: grid the data, hand each worker its slice.
  const auto grid =
      data::make_grid(matrix, data::GridKind::kRow, report.plan.shares);
  auto slices =
      data::assign_slices(std::move(matrix), data::GridKind::kRow, grid);

  // Mean rating for model init.
  double mean = 0.0;
  std::size_t nnz = 0;
  for (const auto& s : slices) {
    for (const auto& e : s.entries()) mean += e.r;
    nnz += s.nnz();
  }
  mean = nnz > 0 ? mean / static_cast<double>(nnz) : 1.0;

  util::Rng rng(config_.sgd.seed);
  mf::FactorModel model(shape.m, shape.n, shape.k);
  model.init_random(rng, static_cast<float>(mean));
  Server server(std::move(model), config_.comm);

  // Per-item merge weights: worker w's fraction of each item's ratings.
  // Items rated inside a single worker's slice merge at weight 1 (the
  // serial update, exactly); contested items combine proportionally.
  std::vector<std::vector<std::size_t>> item_counts;
  std::vector<std::size_t> item_totals(shape.n, 0);
  for (const auto& slice : slices) {
    item_counts.push_back(slice.col_counts());
    for (std::size_t i = 0; i < shape.n; ++i) {
      item_totals[i] += item_counts.back()[i];
    }
  }

  std::vector<TrainWorker> workers;
  std::uint32_t max_streams = 1;
  for (std::size_t i = 0; i < slices.size(); ++i) {
    const auto& device = config_.platform.workers[i];
    const std::uint32_t streams =
        comm::effective_streams(config_.comm, device);
    max_streams = std::max(max_streams, streams);
    workers.emplace_back(static_cast<std::uint32_t>(i), device.name,
                         std::move(slices[i]), config_.comm, streams);
    std::vector<float> weights(shape.n, 0.0f);
    for (std::size_t item = 0; item < shape.n; ++item) {
      if (item_totals[item] > 0) {
        weights[item] = static_cast<float>(item_counts[i][item]) /
                        static_cast<float>(item_totals[item]);
      }
    }
    workers.back().set_item_weights(std::move(weights));
  }

  std::unique_ptr<util::ThreadPool> pool;
  if (config_.host_threads > 0) {
    pool = std::make_unique<util::ThreadPool>(config_.host_threads);
  }

  // Timing runs alongside the functional loop but is fully decoupled.
  accumulate_timing(report, manager, report.plan);

  const bool quantizing_pq_each_epoch =
      config_.comm.fp16 &&
      comm::effective_mode(config_.comm, shape) == comm::PayloadMode::kPQ;

  float lr = config_.sgd.learn_rate;
  double prev_sync_s = 0.0;
  for (std::uint32_t epoch = 0; epoch < config_.sgd.epochs; ++epoch) {
    obs::ScopedSpan epoch_span("epoch " + std::to_string(epoch),
                               obs::kEpochCategory);
    // pull -> compute -> push, chunked per worker by its stream depth
    // (Figure 6's pipelines; chunk boundaries act as the async syncs).
    for (std::uint32_t chunk = 0; chunk < max_streams; ++chunk) {
      for (auto& w : workers) {
        if (chunk < w.streams()) w.pull(server);
      }
      for (auto& w : workers) {
        if (chunk < w.streams()) {
          w.compute_chunk(server, chunk, lr, config_.sgd.reg_p,
                          config_.sgd.reg_q, pool.get());
        }
      }
      for (auto& w : workers) {
        if (chunk < w.streams()) w.push(server);
      }
    }
    if (quantizing_pq_each_epoch) server.roundtrip_p_through_codec();
    lr *= config_.sgd.lr_decay;

    // Harvest the instrumented wall-clock phase times into the same
    // EpochTiming shape the sim layer renders (CSV / Chrome trace).
    EpochReport& er = report.epochs[epoch];
    er.measured.workers.resize(workers.size());
    for (std::size_t w = 0; w < workers.size(); ++w) {
      const obs::PhaseTimes t = workers[w].take_measured();
      er.measured.workers[w].pull_s = t.pull_s;
      er.measured.workers[w].compute_s = t.compute_s;
      er.measured.workers[w].push_s = t.push_s;
      er.measured.workers[w].sync_s = t.sync_s;
      util::log_kv(util::LogLevel::kDebug, "epoch_timing",
                   {util::kv("epoch", epoch),
                    util::kv("worker", static_cast<std::uint32_t>(w)),
                    util::kv("pull_s", t.pull_s),
                    util::kv("compute_s", t.compute_s),
                    util::kv("push_s", t.push_s),
                    util::kv("sync_s", t.sync_s)});
    }
    er.measured.server_busy_s = server.measured_sync_s() - prev_sync_s;
    prev_sync_s = server.measured_sync_s();
    er.measured.epoch_s = epoch_span.stop();

    if (test_ratings != nullptr && config_.evaluate_each_epoch) {
      report.epochs[epoch].test_rmse = mf::rmse(server.model(), *test_ratings);
    }
  }
  // The final push transmits P as well (Strategy 1's closing P&Q push).
  if (config_.comm.fp16 && !quantizing_pq_each_epoch) {
    server.roundtrip_p_through_codec();
  }
  if (test_ratings != nullptr && config_.evaluate_each_epoch &&
      !report.epochs.empty()) {
    report.epochs.back().test_rmse = mf::rmse(server.model(), *test_ratings);
  }

  for (const auto& w : workers) report.comm_totals += w.comm_stats();

  const double updates = static_cast<double>(shape.nnz) * config_.sgd.epochs;
  report.updates_per_s =
      report.total_virtual_s > 0.0 ? updates / report.total_virtual_s : 0.0;
  report.ideal_updates_per_s = config_.platform.ideal_update_rate(shape);
  report.utilization = report.ideal_updates_per_s > 0.0
                           ? report.updates_per_s / report.ideal_updates_per_s
                           : 0.0;
  report.model = std::move(server.model());
  return report;
}

}  // namespace hcc::core
