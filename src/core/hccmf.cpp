#include "core/hccmf.hpp"

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

#include "data/grid.hpp"
#include "fault/checkpoint.hpp"
#include "fault/errors.hpp"
#include "fault/recovery.hpp"
#include "mf/metrics.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "serve/metrics.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"

namespace hcc::core {

namespace {

/// Eq. 1-5 phase predictions for every worker of an epoch config.  Workers
/// the timing engine skips (no share, no communication) predict zero so
/// they do not register as drift.
std::vector<obs::PhaseTimes> predicted_phases(const sim::EpochConfig& cfg) {
  std::vector<obs::PhaseTimes> predicted(cfg.workers.size());
  for (std::size_t w = 0; w < cfg.workers.size(); ++w) {
    const sim::WorkerPlan& plan = cfg.workers[w];
    if (plan.share <= 0.0 && plan.comm.pull_bytes <= 0.0) continue;
    const PhaseCost cost = predicted_phase_cost(
        plan.device, cfg.shape, plan.share, plan.comm, cfg.server);
    predicted[w] = {cost.pull_s, cost.compute_s, cost.push_s, cost.sync_s};
  }
  return predicted;
}

std::vector<obs::PhaseTimes> timing_phases(const sim::EpochTiming& timing) {
  std::vector<obs::PhaseTimes> measured(timing.workers.size());
  for (std::size_t w = 0; w < timing.workers.size(); ++w) {
    const sim::WorkerTiming& t = timing.workers[w];
    measured[w] = {t.pull_s, t.compute_s, t.push_s, t.sync_s};
  }
  return measured;
}

void validate_or_throw(const HccMfConfig& config) {
  const auto errors = config.validate();
  if (errors.empty()) return;
  std::string joined = "invalid HccMfConfig:";
  for (const auto& err : errors) {
    joined += ' ';
    joined += err.message;
    joined += ';';
  }
  joined.pop_back();
  throw std::invalid_argument(joined);
}

}  // namespace

std::vector<ConfigError> HccMfConfig::validate() const {
  std::vector<ConfigError> errors;
  auto reject = [&errors](ConfigErrorCode code, std::string message) {
    errors.push_back({code, std::move(message)});
  };
  if (platform.workers.empty()) {
    reject(ConfigErrorCode::kNoWorkers, "platform has no workers");
  }
  if (sgd.k == 0) {
    reject(ConfigErrorCode::kZeroLatentDim, "latent dimension k is 0");
  }
  if (sgd.epochs == 0) {
    reject(ConfigErrorCode::kZeroEpochs, "epochs is 0");
  }
  if (!(sgd.learn_rate > 0.0f) || !std::isfinite(sgd.learn_rate)) {
    reject(ConfigErrorCode::kBadLearnRate,
           "learn_rate must be finite and > 0");
  }
  if (!(sgd.reg_p >= 0.0f) || !std::isfinite(sgd.reg_p) ||
      !(sgd.reg_q >= 0.0f) || !std::isfinite(sgd.reg_q)) {
    reject(ConfigErrorCode::kBadRegularization,
           "regularization must be finite and >= 0");
  }
  if (!(sgd.lr_decay > 0.0f) || !std::isfinite(sgd.lr_decay)) {
    reject(ConfigErrorCode::kBadDecay, "lr_decay must be finite and > 0");
  }
  if (comm.streams == 0) {
    reject(ConfigErrorCode::kZeroStreams, "comm.streams is 0");
  }
  if (comm.pipeline_depth == 0 || comm.pipeline_depth > 64) {
    reject(ConfigErrorCode::kBadPipelineDepth,
           "comm.pipeline_depth must be in [1, 64] (1 = legacy single-shot "
           "transfers)");
  }
  if (adaptive_repartition &&
      (adaptive.gain <= 0.0 || adaptive.gain > 1.0)) {
    reject(ConfigErrorCode::kBadAdaptiveGain,
           "adaptive.gain must be in (0, 1]");
  }
  if (!(fault.deadline_factor > 0.0) ||
      !std::isfinite(fault.deadline_factor)) {
    reject(ConfigErrorCode::kBadDeadlineFactor,
           "fault.deadline_factor must be finite and > 0");
  }
  if (!(fault.backoff_base_s >= 0.0) || !std::isfinite(fault.backoff_base_s)) {
    reject(ConfigErrorCode::kBadBackoff,
           "fault.backoff_base_s must be finite and >= 0");
  }
  if (fault.checkpoint_every == 0) {
    reject(ConfigErrorCode::kZeroCheckpointCadence,
           "fault.checkpoint_every is 0");
  }
  if (schedule.policy == data::SchedulePolicy::kTiled &&
      schedule.tile_kb == 0) {
    reject(ConfigErrorCode::kBadTileKb,
           "schedule.tile_kb must be > 0 under the tiled schedule");
  }
  if (exec.steal && exec.mode != ExecMode::kParallel) {
    reject(ConfigErrorCode::kStealNeedsParallel,
           "exec.steal requires exec.mode == parallel (kSerial is the "
           "bit-identical legacy loop)");
  }
  // Transport settings: a zero heartbeat would spin the session pump, a
  // timeout at or under the heartbeat interval declares every silence a
  // dead link, and a zero reconnect budget can never re-establish one.
  const comm::TransportConfig& tp = comm.transport;
  if (!(tp.heartbeat_ms > 0.0) || !std::isfinite(tp.heartbeat_ms)) {
    reject(ConfigErrorCode::kBadHeartbeat,
           "comm.transport.heartbeat_ms must be finite and > 0");
  }
  if (!(tp.timeout_ms >= 0.0) || !std::isfinite(tp.timeout_ms)) {
    reject(ConfigErrorCode::kBadTransportTimeout,
           "comm.transport.timeout_ms must be finite and >= 0 (0 derives "
           "it from the cost model)");
  } else if (tp.timeout_ms > 0.0 && tp.timeout_ms <= tp.heartbeat_ms) {
    reject(ConfigErrorCode::kBadTransportTimeout,
           "comm.transport.timeout_ms must exceed heartbeat_ms (or be 0 "
           "to derive from the cost model)");
  }
  if (!(tp.backoff_base_ms >= 0.0) || !std::isfinite(tp.backoff_base_ms)) {
    reject(ConfigErrorCode::kBadBackoff,
           "comm.transport.backoff_base_ms must be finite and >= 0");
  }
  if (tp.reconnect_budget == 0) {
    reject(ConfigErrorCode::kZeroReconnectBudget,
           "comm.transport.reconnect_budget must be >= 1");
  }
  if (tp.kind != comm::TransportKind::kInProcess) {
    try {
      (void)sim::link_by_name(tp.link);
    } catch (const std::invalid_argument& bad) {
      reject(ConfigErrorCode::kBadTransportLink, bad.what());
    }
  }
  if (publish_every > 0 && snapshots == nullptr) {
    reject(ConfigErrorCode::kPublishNeedsRegistry,
           "publish_every > 0 needs a snapshots registry to publish into");
  }
  return errors;
}

HccMf::HccMf(HccMfConfig config) : config_(std::move(config)) {
  if (config_.platform.workers.empty()) {
    config_.platform = sim::paper_workstation_hetero();
  }
}

sim::DatasetShape HccMf::shape_of(const data::RatingMatrix& m) const {
  sim::DatasetShape shape;
  shape.name = config_.dataset_name;
  shape.m = m.rows();
  shape.n = m.cols();
  shape.nnz = m.nnz();
  shape.k = config_.sgd.k;
  return shape;
}

Plan HccMf::plan_for(const sim::DatasetShape& shape) const {
  DataManager manager(config_.platform, shape, config_.comm, config_.manager);
  return manager.plan(config_.partition);
}

void HccMf::accumulate_timing(TrainReport& report, const DataManager& manager,
                              const Plan& plan,
                              const fault::FaultInjector* injector) {
  const std::uint32_t epochs = config_.sgd.epochs;
  report.epochs.reserve(epochs);

  // Adaptive repartitioning (optional): track shares across epochs and
  // rebalance when measured compute times drift apart.
  Plan live_plan = plan;
  std::optional<AdaptiveController> controller;
  if (config_.adaptive_repartition) {
    controller.emplace(plan.shares, config_.adaptive);
  }
  const bool injecting = injector != nullptr && !injector->plan().empty();
  std::vector<bool> alive(live_plan.shares.size(), true);

  for (std::uint32_t e = 0; e < epochs; ++e) {
    // Fault composition on the virtual platform: a killed worker's share is
    // redistributed from its death epoch on (the timing-path mirror of the
    // functional recovery), a stalled worker's update/transfer rate drops
    // by its stall factor.
    if (injecting) {
      for (std::size_t w = 0; w < live_plan.shares.size(); ++w) {
        if (alive[w] &&
            injector->kill_scheduled(static_cast<std::uint32_t>(w), e)) {
          alive[w] = false;
          live_plan.shares = redistribute_dead_share(live_plan.shares, w);
        }
      }
    }
    sim::EpochConfig cfg = manager.epoch_config(live_plan, e + 1 == epochs);
    cfg.seed = config_.manager.seed + 17 * (e + 1);
    for (std::size_t w = 0; w < cfg.workers.size(); ++w) {
      double scale = 1.0;
      if (config_.rate_disturbance) scale = config_.rate_disturbance(e, w);
      if (injecting) {
        scale /= injector->stall_factor(static_cast<std::uint32_t>(w), e);
      }
      cfg.workers[w].rate_scale = scale;
    }
    EpochReport er;
    er.epoch = e;
    er.timing = sim::simulate_epoch(cfg);
    er.virtual_s = er.timing.epoch_s;
    report.total_virtual_s += er.virtual_s;
    er.cumulative_virtual_s = report.total_virtual_s;
    er.test_rmse = std::numeric_limits<double>::quiet_NaN();
    for (const auto& w : er.timing.workers) {
      report.comm_virtual_s += w.pull_s + w.push_s;
    }

    // Cost-model drift: what the epoch actually took (timing engine) vs
    // what Eq. 1-5 predicted for the live plan.  Published as gauges each
    // epoch so the registry always holds the freshest verification signal.
    er.drift = obs::compute_drift(predicted_phases(cfg),
                                  timing_phases(er.timing));
    obs::publish_drift(obs::registry(), er.drift);
    util::log_kv(util::LogLevel::kDebug, "epoch_drift",
                 {util::kv("epoch", e),
                  util::kv("max_abs_rel_err", er.drift.max_abs_rel_err),
                  util::kv("mean_abs_rel_err", er.drift.mean_abs_rel_err)});
    if (controller) {
      std::vector<double> compute;
      compute.reserve(er.timing.workers.size());
      for (const auto& w : er.timing.workers) compute.push_back(w.compute_s);
      if (controller->observe(compute)) {
        live_plan.shares = controller->shares();
      }
    }
    report.epochs.push_back(std::move(er));
  }
  if (controller) report.repartitions = controller->repartitions();
}

TrainReport HccMf::simulate(const sim::DatasetShape& shape) {
  validate_or_throw(config_);
  DataManager manager(config_.platform, shape, config_.comm, config_.manager);
  TrainReport report;
  report.plan = manager.plan(config_.partition);
  fault::FaultInjector injector(config_.fault.plan);
  accumulate_timing(report, manager, report.plan, &injector);
  const double updates = static_cast<double>(shape.nnz) * config_.sgd.epochs;
  report.updates_per_s =
      report.total_virtual_s > 0.0 ? updates / report.total_virtual_s : 0.0;
  report.ideal_updates_per_s = config_.platform.ideal_update_rate(shape);
  report.utilization = report.ideal_updates_per_s > 0.0
                           ? report.updates_per_s / report.ideal_updates_per_s
                           : 0.0;
  return report;
}

TrainReport HccMf::train(const data::RatingMatrix& train_ratings,
                         const data::RatingMatrix* test_ratings) {
  validate_or_throw(config_);
  // A chaos link and the fault injector run one schedule: whichever side
  // was configured feeds the other, so the wire faults, the epoch cursor
  // and the recovery machinery all see the same plan.
  if (config_.comm.transport.kind == comm::TransportKind::kChaos) {
    if (config_.comm.transport.plan.empty()) {
      config_.comm.transport.plan = config_.fault.plan;
    } else if (config_.fault.plan.empty()) {
      config_.fault.plan = config_.comm.transport.plan;
    }
  }
  // Column-grid case: transpose so the rest of the pipeline is always
  // row-grid ("Transmitting P only" is Q-only on the transpose).
  const bool transpose = train_ratings.cols() > train_ratings.rows();
  data::RatingMatrix matrix =
      transpose ? train_ratings.transposed() : train_ratings;
  data::RatingMatrix test_local;
  if (test_ratings != nullptr && transpose) {
    test_local = test_ratings->transposed();
    test_ratings = &test_local;
  }

  const sim::DatasetShape shape = shape_of(matrix);
  DataManager manager(config_.platform, shape, config_.comm, config_.manager);

  TrainReport report;
  report.plan = manager.plan(config_.partition);
  HCC_LOG_INFO() << "HCC-MF plan: " << report.plan.explanation;

  // Step 2-3 of Figure 4: grid the data, hand each worker its slice.
  const auto grid =
      data::make_grid(matrix, data::GridKind::kRow, report.plan.shares);
  auto slices =
      data::assign_slices(std::move(matrix), data::GridKind::kRow, grid);

  // Mean rating for model init.
  double mean = 0.0;
  std::size_t nnz = 0;
  for (const auto& s : slices) {
    for (const auto& e : s.entries()) mean += e.r;
    nnz += s.nnz();
  }
  mean = nnz > 0 ? mean / static_cast<double>(nnz) : 1.0;

  util::Rng rng(config_.sgd.seed);
  mf::FactorModel model(shape.m, shape.n, shape.k);
  model.init_random(rng, static_cast<float>(mean));
  // Stripe count: always 1 under kSerial (the legacy single-lock merge,
  // bit-identical order); under kParallel the configured/auto count.
  const std::uint32_t stripes =
      resolve_stripes(config_.exec, static_cast<std::uint32_t>(shape.n),
                      slices.size());
  Server server(std::move(model), config_.comm, stripes);
  // Serving hook: snapshots publish at the epoch barrier below, where the
  // workers are parked and every factor row is quiescent.
  const bool publishing =
      config_.snapshots != nullptr && config_.publish_every > 0;
  if (publishing) {
    server.attach_snapshots(config_.snapshots.get(), config_.publish_store);
  }
  std::uint32_t last_publish_epoch = 0;

  // Fault tolerance: with no plan and no checkpoint dir the runtime is
  // inert — no checksums, no extra wire bytes, no injections — and the
  // training trajectory is bit-identical to a build without it.
  fault::FaultRuntime fault_rt(config_.fault);

  const bool parallel = config_.exec.mode == ExecMode::kParallel;
  std::vector<TrainWorker> workers;
  for (std::size_t i = 0; i < slices.size(); ++i) {
    const auto& device = config_.platform.workers[i];
    const std::uint32_t streams =
        comm::effective_streams(config_.comm, device);
    workers.emplace_back(static_cast<std::uint32_t>(i), device.name,
                         std::move(slices[i]), config_.comm, streams);
    workers.back().set_fault_runtime(&fault_rt);
    workers.back().set_exec(parallel, config_.exec.double_buffer);
    workers.back().set_schedule(config_.schedule, config_.sgd.k);
    workers.back().set_real_stalls(config_.fault.real_stalls);
  }
  obs::registry().gauge("exec.mode").set(parallel ? 1.0 : 0.0);
  obs::registry().gauge("exec.stripes").set(static_cast<double>(stripes));
  obs::registry().gauge("exec.steal").set(config_.exec.steal ? 1.0 : 0.0);
  obs::registry().gauge("sched.policy").set(
      static_cast<double>(static_cast<int>(config_.schedule.policy)));
  obs::registry().gauge("sched.tile_kb").set(
      static_cast<double>(config_.schedule.tile_kb));

  std::vector<bool> alive(workers.size(), true);

  // Per-item merge weights: worker w's fraction of each item's ratings.
  // Items rated inside a single worker's slice merge at weight 1 (the
  // serial update, exactly); contested items combine proportionally.
  // Recomputed after a degraded-mode repartition (dead workers excluded).
  auto refresh_item_weights = [&]() {
    std::vector<std::size_t> item_totals(shape.n, 0);
    std::vector<std::vector<std::size_t>> item_counts(workers.size());
    for (std::size_t w = 0; w < workers.size(); ++w) {
      if (!alive[w]) continue;
      item_counts[w] = workers[w].slice().col_counts();
      for (std::size_t i = 0; i < shape.n; ++i) {
        item_totals[i] += item_counts[w][i];
      }
    }
    for (std::size_t w = 0; w < workers.size(); ++w) {
      if (!alive[w]) continue;
      std::vector<float> weights(shape.n, 0.0f);
      for (std::size_t item = 0; item < shape.n; ++item) {
        if (item_totals[item] > 0) {
          weights[item] = static_cast<float>(item_counts[w][item]) /
                          static_cast<float>(item_totals[item]);
        }
      }
      workers[w].set_item_weights(std::move(weights));
    }
  };
  refresh_item_weights();

  std::unique_ptr<util::ThreadPool> pool;
  if (config_.host_threads > 0) {
    pool = std::make_unique<util::ThreadPool>(config_.host_threads);
  }

  // Timing runs alongside the functional loop but is fully decoupled.
  accumulate_timing(report, manager, report.plan, &fault_rt.injector());

  const bool quantizing_pq_each_epoch =
      comm::effective_codec(config_.comm) != comm::CodecKind::kFp32 &&
      comm::effective_mode(config_.comm, shape) == comm::PayloadMode::kPQ;

  float lr = config_.sgd.learn_rate;
  double prev_sync_s = 0.0;
  double sched_reorder_ms_total = 0.0;  ///< cumulative across epochs

  // Checkpoints back both the divergence guard and worker-death recovery.
  // The copy happens outside the instrumented phase spans, so fault-free
  // epoch reports are unaffected.
  fault::CheckpointStore ckpts(config_.fault.checkpoint_dir);
  const bool checkpointing =
      fault_rt.active() || config_.fault.divergence_guard;
  if (checkpointing) {
    ckpts.save({0, lr, config_.sgd.seed, server.model()});
  }
  std::vector<double> live_shares = report.plan.shares;
  std::uint32_t rollbacks_done = 0;

  // One executor serves the whole run; under kParallel its per-worker
  // threads spawn on the first epoch and park between epochs.
  EpochExecutor executor(config_.exec, workers.size());

  std::uint32_t epoch = 0;
  while (epoch < config_.sgd.epochs) {
    fault_rt.injector().begin_epoch(epoch);
    const std::uint64_t injected_before = fault_rt.injector().injected();
    const std::uint64_t retries_before = fault_rt.retries();
    try {
      obs::ScopedSpan epoch_span("epoch " + std::to_string(epoch),
                                 obs::kEpochCategory);
      if (fault_rt.active()) {
        for (auto& w : workers) {
          w.set_stall_factor(
              fault_rt.injector().stall_factor(w.id(), epoch));
        }
      }
      // pull -> compute -> push, chunked per worker by its stream depth
      // (Figure 6's pipelines; chunk boundaries act as the async syncs).
      // kSerial interleaves the phases on this thread exactly as before;
      // kParallel runs each worker's whole pipeline on its own executor
      // thread and rethrows any captured fault here at the barrier, so the
      // recovery paths below are shared by both modes.
      executor.run_epoch(workers, alive, server, lr, config_.sgd.reg_p,
                         config_.sgd.reg_q, pool.get());
      if (quantizing_pq_each_epoch) server.roundtrip_p_through_codec();
      lr *= config_.sgd.lr_decay;

      // Harvest the instrumented wall-clock phase times into the same
      // EpochTiming shape the sim layer renders (CSV / Chrome trace).
      EpochReport& er = report.epochs[epoch];
      er.measured.workers.assign(workers.size(), {});
      std::vector<obs::PhaseTimes> measured(workers.size());
      // Schedule observability, aggregated on this (main) thread so the
      // gauges see no concurrent read-modify-write: occupied tiles across
      // workers, cumulative reorder cost, and the effective bandwidth each
      // worker sustained — Eq. 2's B_i solved from the measured compute
      // time (the quantity the cache-aware schedule exists to raise).
      double sched_tiles = 0.0;
      double min_gbps = 0.0;
      double max_gbps = 0.0;
      double sum_gbps = 0.0;
      std::size_t gbps_n = 0;
      double max_compute = 0.0;
      double sum_compute = 0.0;
      std::size_t compute_n = 0;
      for (std::size_t w = 0; w < workers.size(); ++w) {
        const obs::PhaseTimes t = workers[w].take_measured();
        // Under work stealing a worker's throughput is measured over what
        // it actually computed (own chunks + steals), not what the grid
        // assigned it; without stealing the two are identical.
        const std::size_t done = workers[w].take_computed();
        measured[w] = t;
        if (alive[w] && t.compute_s > 0.0 && done > 0) {
          const double bytes =
              static_cast<double>(done) * (16.0 * shape.k + 4.0);
          const double gbps = bytes / t.compute_s / 1e9;
          obs::registry()
              .gauge("worker" + std::to_string(w) + ".effective_gbps")
              .set(gbps);
          min_gbps = gbps_n == 0 ? gbps : std::min(min_gbps, gbps);
          max_gbps = std::max(max_gbps, gbps);
          sum_gbps += gbps;
          ++gbps_n;
        }
        if (alive[w] && t.compute_s > 0.0) {
          max_compute = std::max(max_compute, t.compute_s);
          sum_compute += t.compute_s;
          ++compute_n;
        }
        const data::ScheduleStats& ss = workers[w].schedule_stats();
        sched_tiles += static_cast<double>(ss.tiles);
        sched_reorder_ms_total += ss.reorder_ms;
        er.measured.workers[w].pull_s = t.pull_s;
        er.measured.workers[w].compute_s = t.compute_s;
        er.measured.workers[w].push_s = t.push_s;
        er.measured.workers[w].sync_s = t.sync_s;
        util::log_kv(util::LogLevel::kDebug, "epoch_timing",
                     {util::kv("epoch", epoch),
                      util::kv("worker", static_cast<std::uint32_t>(w)),
                      util::kv("pull_s", t.pull_s),
                      util::kv("compute_s", t.compute_s),
                      util::kv("push_s", t.push_s),
                      util::kv("sync_s", t.sync_s)});
      }
      obs::registry().gauge("sched.tiles").set(sched_tiles);
      obs::registry().gauge("sched.reorder_ms").set(sched_reorder_ms_total);
      // Min/mean/max across the alive workers — the spread *is* the
      // imbalance signal stealing and DP1 exist to close.  The unsuffixed
      // gauge keeps its historical max semantics.
      obs::registry().gauge("sched.effective_gbps").set(max_gbps);
      obs::registry().gauge("sched.effective_gbps_min").set(min_gbps);
      obs::registry()
          .gauge("sched.effective_gbps_mean")
          .set(gbps_n > 0 ? sum_gbps / static_cast<double>(gbps_n) : 0.0);
      obs::registry().gauge("sched.effective_gbps_max").set(max_gbps);
      // Slowest worker's compute time over the mean: 1.0 is perfectly
      // balanced, the straggler's stall factor when one worker lags.
      obs::registry()
          .gauge("sched.imbalance")
          .set(compute_n > 0 && sum_compute > 0.0
                   ? max_compute /
                         (sum_compute / static_cast<double>(compute_n))
                   : 0.0);
      er.measured.server_busy_s = server.measured_sync_s() - prev_sync_s;
      prev_sync_s = server.measured_sync_s();
      er.measured.epoch_s = epoch_span.stop();
      er.fault_injected = static_cast<std::uint32_t>(
          fault_rt.injector().injected() - injected_before);
      er.fault_retries =
          static_cast<std::uint32_t>(fault_rt.retries() - retries_before);

      // Deadline detection: measured wall clock vs the Eq. 1-5 prediction
      // for the live (possibly degraded) plan, median-normalized across
      // the surviving workers.
      if (fault_rt.active()) {
        Plan live_plan = report.plan;
        live_plan.shares = live_shares;
        const sim::EpochConfig cfg = manager.epoch_config(
            live_plan, epoch + 1 == config_.sgd.epochs);
        er.stragglers.clear();
        const auto mask = fault::straggler_mask(
            measured, predicted_phases(cfg), config_.fault.deadline_factor,
            alive);
        for (std::size_t w = 0; w < mask.size(); ++w) {
          if (mask[w]) er.stragglers.push_back(static_cast<std::uint32_t>(w));
        }
        if (!er.stragglers.empty()) {
          fault_rt.count_stragglers(er.stragglers.size());
          util::log_kv(
              util::LogLevel::kWarn, "fault.stragglers",
              {util::kv("epoch", epoch),
               util::kv("count",
                        static_cast<std::uint64_t>(er.stragglers.size()))});
        }
      }

      if (test_ratings != nullptr && config_.evaluate_each_epoch) {
        er.test_rmse = mf::rmse(server.model(), *test_ratings);
      }
      ++epoch;
      if (checkpointing && epoch % config_.fault.checkpoint_every == 0) {
        ckpts.save({epoch, lr, config_.sgd.seed, server.model()});
      }
      // Publish at the cadence boundary (the final epoch's snapshot waits
      // for the closing P roundtrip below so it matches the delivered
      // model); queries on earlier snapshots keep their own references.
      if (publishing) {
        if (epoch % config_.publish_every == 0 &&
            epoch < config_.sgd.epochs) {
          server.publish_snapshot(epoch);
          last_publish_epoch = epoch;
        }
        // Rollback can rewind `epoch` behind the last publish; age 0 then.
        serve::serve_metrics().snapshot_age_epochs->set(
            epoch > last_publish_epoch
                ? static_cast<double>(epoch - last_publish_epoch)
                : 0.0);
      }
    } catch (const fault::WorkerFault& dead) {
      // Degraded-mode recovery: mark the worker dead, hand its rows to the
      // survivors (DP1's multiplicative compensation, at row granularity),
      // roll the model back to the last consistent checkpoint and resume.
      obs::ScopedSpan rec_span("fault recovery", obs::kEpochCategory);
      util::Stopwatch watch;
      const std::uint32_t victim = dead.worker();
      for (auto& w : workers) {
        (void)w.take_measured();
        (void)w.take_computed();
      }
      if (victim >= workers.size() || !alive[victim] ||
          !ckpts.has_checkpoint()) {
        throw;  // nothing left to degrade to
      }
      alive[victim] = false;
      report.fault.dead_workers.push_back(victim);
      live_shares = redistribute_dead_share(live_shares, victim);
      const auto batches = fault::split_entries_by_shares(
          workers[victim].slice(), live_shares);
      for (std::size_t w = 0; w < workers.size(); ++w) {
        if (w != victim && !batches[w].empty()) {
          workers[w].absorb_entries(batches[w]);
        }
      }
      refresh_item_weights();
      const fault::Checkpoint& ck = ckpts.latest();
      server.model() = ck.model;
      lr = ck.lr;
      epoch = ck.next_epoch;
      prev_sync_s = server.measured_sync_s();
      fault_rt.count_recovery(watch.seconds());
      util::log_kv(util::LogLevel::kWarn, "fault.recovery",
                   {util::kv("worker", victim),
                    util::kv("resume_epoch", epoch),
                    util::kv("wall_s", watch.seconds())});
    } catch (const fault::DivergenceError& div) {
      // Divergence guard: rewind to the checkpoint with a halved learning
      // rate; the halving persists via the re-saved checkpoint.
      for (auto& w : workers) {
        (void)w.take_measured();
        (void)w.take_computed();
      }
      if (rollbacks_done >= config_.fault.max_rollbacks ||
          !ckpts.has_checkpoint()) {
        throw fault::TrainingDivergedError(rollbacks_done);
      }
      ++rollbacks_done;
      const fault::Checkpoint& ck = ckpts.latest();
      server.model() = ck.model;
      lr = ck.lr * 0.5f;
      epoch = ck.next_epoch;
      ckpts.save({epoch, lr, config_.sgd.seed, server.model()});
      prev_sync_s = server.measured_sync_s();
      fault_rt.count_rollback();
      util::log_kv(util::LogLevel::kWarn, "fault.rollback",
                   {util::kv("worker", div.worker()),
                    util::kv("resume_epoch", epoch), util::kv("lr", lr)});
    }
  }
  // The final push transmits P as well (Strategy 1's closing P&Q push).
  if (comm::effective_codec(config_.comm) != comm::CodecKind::kFp32 &&
      !quantizing_pq_each_epoch) {
    server.roundtrip_p_through_codec();
  }
  if (test_ratings != nullptr && config_.evaluate_each_epoch &&
      !report.epochs.empty()) {
    report.epochs.back().test_rmse = mf::rmse(server.model(), *test_ratings);
  }
  // Final quality as a gauge so metrics-only consumers (the CI straggler
  // smoke compares steal vs no-steal RMSE from the JSON dump) need no
  // report plumbing.
  if (!report.epochs.empty() &&
      std::isfinite(report.epochs.back().test_rmse)) {
    obs::registry()
        .gauge("train.final_rmse")
        .set(report.epochs.back().test_rmse);
  }
  // The delivered model (post P-roundtrip) always becomes the last
  // snapshot, so serving converges on exactly what train() returns.
  if (publishing) {
    server.publish_snapshot(epoch);
    serve::serve_metrics().snapshot_age_epochs->set(0.0);
  }

  for (const auto& w : workers) report.comm_totals += w.comm_stats();

  report.fault.injected = fault_rt.injector().injected();
  report.fault.retries = fault_rt.retries();
  report.fault.checksum_failures = fault_rt.checksum_failures();
  report.fault.recoveries = fault_rt.recoveries();
  report.fault.divergence_rollbacks = fault_rt.rollbacks();
  report.fault.stragglers = fault_rt.stragglers();
  report.fault.recovery_wall_s = fault_rt.recovery_wall_s();
  report.fault.worker_nnz.resize(workers.size());
  for (std::size_t w = 0; w < workers.size(); ++w) {
    report.fault.worker_nnz[w] = alive[w] ? workers[w].assigned_nnz() : 0;
  }

  const double updates = static_cast<double>(shape.nnz) * config_.sgd.epochs;
  report.updates_per_s =
      report.total_virtual_s > 0.0 ? updates / report.total_virtual_s : 0.0;
  report.ideal_updates_per_s = config_.platform.ideal_update_rate(shape);
  report.utilization = report.ideal_updates_per_s > 0.0
                           ? report.updates_per_s / report.ideal_updates_per_s
                           : 0.0;
  report.model = std::move(server.model());
  return report;
}

}  // namespace hcc::core
