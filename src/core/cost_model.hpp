// The HCC-MF time cost model (Section 3.2, Eq. 1-5).
//
// One training epoch costs
//   T = max_i { T_pull_i + T_c_i + T_push_i } + T_sync            (Eq. 1)
// with
//   T_i    ~ x_i * nnz * (16k+4) / B_i  +  2k(m+n) / B_bus_i      (Eq. 2)
//   T_sync ~ 3 t k (m+n) / B_server                               (Eq. 3)
// and becomes a piecewise function of whether synchronization is negligible:
//   max{T_i}/T_sync >= lambda  ->  T = max{T_i}                   (Eq. 5)
//   otherwise                  ->  T = max{T_i} + T_sync(x)
// The lambda switch is what selects DP1 vs DP2 in the DataManager.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/timing.hpp"

namespace hcc::core {

/// Predicted epoch-cost decomposition for a candidate partition.
struct CostPrediction {
  std::vector<double> worker_seconds;  ///< T_i = pull + compute + push
  double max_worker_s = 0.0;           ///< max_i T_i
  double sync_s = 0.0;                 ///< T_sync (all workers' syncs)
  double sync_per_worker_s = 0.0;      ///< one worker's share of T_sync
  double total_s = 0.0;                ///< Eq. 5's T
  double ratio = 0.0;                  ///< max{T_i} / T_sync
  bool sync_negligible = true;         ///< ratio >= lambda
};

/// Predicted T_i of one worker (Eq. 2 plus the pull/push terms), using the
/// same perf model the simulator uses but without jitter or queueing — this
/// is the *model*, the simulator is the *measurement*.
double predicted_worker_seconds(const sim::DeviceSpec& device,
                                const sim::DatasetShape& shape, double share,
                                const sim::CommPlan& comm);

/// One worker's epoch decomposed into the Eq. 1-5 phase terms — the
/// prediction the drift report (obs/drift.hpp) checks against measured
/// sim::WorkerTiming phase totals.  pull/push are *total* transfer time
/// (matching WorkerTiming's accounting; stream overlap hides part of it
/// from T_i but not from the phase totals), compute includes the device's
/// fixed epoch overhead, sync is the server-side merge share (Eq. 3).
struct PhaseCost {
  double pull_s = 0.0;
  double compute_s = 0.0;
  double push_s = 0.0;
  double sync_s = 0.0;
};
PhaseCost predicted_phase_cost(const sim::DeviceSpec& device,
                               const sim::DatasetShape& shape, double share,
                               const sim::CommPlan& comm,
                               const sim::ServerSpec& server);

/// Predicted server time to merge one worker's push (Eq. 3 per-worker term).
double predicted_sync_seconds(const sim::ServerSpec& server,
                              const sim::CommPlan& comm);

/// Evaluates the full piecewise model (Eq. 5) for a candidate partition.
/// `lambda` is the negligibility threshold (the paper uses 10).
CostPrediction predict_epoch(const sim::EpochConfig& config,
                             double lambda = 10.0);

/// Theorem 1's optimality check: a partition minimizes max{a_i x_i + b_i}
/// iff all worker times are equal.  Returns the relative spread
/// (max - min) / min of the predicted worker times; 0 means perfectly
/// balanced.
double worker_time_spread(const std::vector<double>& worker_seconds);

}  // namespace hcc::core
