// The parameter server (Section 3.1 / 3.5).
//
// Owns the global feature matrices and the synchronization step: every
// worker push is merged into the global Q with one multiply-add per feature
// against the snapshot that worker pulled — this resolves the write-after-
// write races between workers that share Q columns (the reason the paper's
// design keeps a synchronizing server at all).
//
// Under the concurrent epoch executor (core/epoch_executor.hpp) several
// workers push at once, so Q is partitioned into row-range *stripes* with
// one mutex each: two workers merging into different stripes proceed in
// parallel instead of serializing the whole T_sync term, and a sparse
// worker locks only the stripes containing its touched rows.  The legacy
// single-threaded path runs with 1 stripe, where the merge loop (and its
// float arithmetic order) is exactly the pre-striping code.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "comm/strategy.hpp"
#include "mf/model.hpp"
#include "obs/metrics.hpp"
#include "serve/snapshot.hpp"

namespace hcc::core {

/// Functional parameter server.
class Server {
 public:
  /// Takes ownership of the initialized global model.  `stripes` partitions
  /// Q's item rows into that many lock domains for concurrent merges (see
  /// file comment); it is clamped to [1, items] and defaults to the legacy
  /// single-lock behaviour.
  Server(mf::FactorModel global, const comm::CommConfig& config,
         std::uint32_t stripes = 1);

  mf::FactorModel& model() noexcept { return global_; }
  const mf::FactorModel& model() const noexcept { return global_; }

  /// The server-side codec (the final P&Q roundtrip and legacy callers).
  /// Non-const: sub-FP16 codecs mutate stream state on every transfer.
  comm::Codec& codec() noexcept { return *codec_; }

  std::uint32_t stripes() const noexcept { return n_stripes_; }

  /// Merges one worker's pushed Q into the global Q with one multiply-add
  /// per feature parameter (Eq. 3's sync cost):
  ///   global[j] += weight * (pushed[j] - snapshot[j])
  /// where `snapshot` is the Q state that worker received at its pull and
  /// `weight` is the worker's data share x_i.  Share-weighting makes the
  /// merged Q a convex combination of the workers' results, which resolves
  /// the write-after-write races between workers that trained the same Q
  /// rows concurrently (the reason the paper keeps a synchronizing server)
  /// without over-applying popular rows' gradients p-fold.
  ///
  /// `touched` (optional, ascending item ids) limits the merge to stripes
  /// intersecting those rows — the sparse-push fast path under concurrent
  /// execution.  Skipped rows MUST carry a zero delta (pushed == snapshot),
  /// which is exactly what TrainWorker's snapshot staging guarantees.
  /// Empty means merge everything (the deterministic legacy order).
  void sync_q(std::span<const float> pushed, std::span<const float> snapshot,
              float weight = 1.0f,
              std::span<const std::uint32_t> touched = {});

  /// Merge with per-item weights (one weight per Q row, i.e. per item):
  ///   global[item][f] += item_weights[item] * (pushed - snapshot)[item][f]
  /// The DataManager derives each worker's item weight from its share of
  /// that item's ratings, so an item rated only inside one worker's row
  /// slice merges at weight 1 (exactly the serial update), while items
  /// contested by several workers combine proportionally to their data.
  /// Still Eq. 3's one multiply-add per parameter — the weights are
  /// precomputed once per training run (the grid is static).
  void sync_q(std::span<const float> pushed, std::span<const float> snapshot,
              std::span<const float> item_weights,
              std::span<const std::uint32_t> touched = {});

  /// Stripe-locked full copy of the global Q into `dst` — the pull-side
  /// counterpart of the striped merge, safe against concurrent sync_q
  /// calls.  Resizes `dst` to Q's size.
  void read_q(std::vector<float>& dst);

  /// Stripe-locked gather of the given Q rows (ascending item ids) into
  /// `packed` (resized to rows.size() * k) — the sparse pull under
  /// concurrent execution.
  void gather_q_rows(std::span<const std::uint32_t> rows,
                     std::vector<float>& packed);

  /// Emulates transmitting P through the wire codec (the final P&Q push):
  /// every P value is replaced by its encode/decode round trip, so FP16's
  /// quantization shows up in the delivered model exactly once, like the
  /// real system.
  void roundtrip_p_through_codec();

  /// Attaches the serving publish hook: subsequent publish_snapshot()
  /// calls encode the global model as `kind` and swap it into `registry`
  /// (which the caller keeps alive for the server's lifetime).
  void attach_snapshots(serve::SnapshotRegistry* registry,
                        serve::StoreKind kind) noexcept {
    snapshots_ = registry;
    snapshot_kind_ = kind;
  }
  serve::SnapshotRegistry* snapshots() const noexcept { return snapshots_; }

  /// Encodes the current global P/Q into an immutable serve::ModelSnapshot
  /// tagged `epoch` and publishes it.  Q is copied under the stripe locks
  /// (safe against concurrent sync_q); P is read directly, so callers must
  /// only publish when P writers are parked — the epoch-boundary barrier
  /// in HccMf::train, where every row is quiescent.  No-op when no
  /// registry is attached.  Readers of previously published snapshots are
  /// never blocked: they hold their own references.
  void publish_snapshot(std::uint32_t epoch);

  /// Number of sync_q merges performed (tests assert one per worker-push).
  std::uint64_t sync_count() const noexcept {
    return sync_count_.load(std::memory_order_relaxed);
  }

  /// Wall-clock seconds spent merging — the measured counterpart of
  /// Eq. 3's T_sync, across all workers (and, under the concurrent
  /// executor, all pushing threads).
  double measured_sync_s() const noexcept {
    return measured_sync_s_.load(std::memory_order_relaxed);
  }

  /// Times a stripe lock was contended (try_lock failed) / acquired, since
  /// construction.  Only counted when striping is on (stripes > 1); the
  /// single-stripe path is the uncontended legacy loop.
  std::uint64_t stripe_contention() const noexcept {
    return stripe_contention_.load(std::memory_order_relaxed);
  }
  std::uint64_t stripe_locks() const noexcept {
    return stripe_locks_.load(std::memory_order_relaxed);
  }

 private:
  struct Stripe {
    std::mutex mutex;
  };

  /// Item-row range [lo, hi) of stripe `s`.
  std::pair<std::uint32_t, std::uint32_t> stripe_rows(std::uint32_t s) const;

  /// Locks stripe `s` (counting contention when striped) and returns the
  /// guard.
  std::unique_lock<std::mutex> lock_stripe(std::uint32_t s);

  /// True when `touched` (ascending, possibly empty = all) has an item in
  /// [lo, hi).
  static bool intersects(std::span<const std::uint32_t> touched,
                         std::uint32_t lo, std::uint32_t hi);

  mf::FactorModel global_;
  std::unique_ptr<comm::Codec> codec_;
  std::uint32_t n_stripes_ = 1;
  std::uint32_t rows_per_stripe_ = 0;
  std::unique_ptr<Stripe[]> stripes_;
  std::atomic<std::uint64_t> sync_count_{0};
  std::atomic<double> measured_sync_s_{0.0};
  std::atomic<std::uint64_t> stripe_contention_{0};
  std::atomic<std::uint64_t> stripe_locks_{0};
  /// Registry counters, resolved only when striping is on so single-stripe
  /// (serial) runs leave the metrics registry untouched.
  obs::Counter* contention_counter_ = nullptr;
  obs::Counter* locks_counter_ = nullptr;
  serve::SnapshotRegistry* snapshots_ = nullptr;
  serve::StoreKind snapshot_kind_ = serve::StoreKind::kFp32;
  std::vector<float> publish_scratch_;  // Q copy staging for publish_snapshot
};

}  // namespace hcc::core
