// The parameter server (Section 3.1 / 3.5).
//
// Owns the global feature matrices and the synchronization step: every
// worker push is merged into the global Q with one multiply-add per feature
// against the snapshot that worker pulled — this resolves the write-after-
// write races between workers that share Q columns (the reason the paper's
// design keeps a synchronizing server at all).
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "comm/strategy.hpp"
#include "mf/model.hpp"

namespace hcc::core {

/// Functional parameter server.
class Server {
 public:
  /// Takes ownership of the initialized global model.
  Server(mf::FactorModel global, const comm::CommConfig& config);

  mf::FactorModel& model() noexcept { return global_; }
  const mf::FactorModel& model() const noexcept { return global_; }

  const comm::Codec& codec() const noexcept { return *codec_; }

  /// Merges one worker's pushed Q into the global Q with one multiply-add
  /// per feature parameter (Eq. 3's sync cost):
  ///   global[j] += weight * (pushed[j] - snapshot[j])
  /// where `snapshot` is the Q state that worker received at its pull and
  /// `weight` is the worker's data share x_i.  Share-weighting makes the
  /// merged Q a convex combination of the workers' results, which resolves
  /// the write-after-write races between workers that trained the same Q
  /// rows concurrently (the reason the paper keeps a synchronizing server)
  /// without over-applying popular rows' gradients p-fold.
  void sync_q(std::span<const float> pushed, std::span<const float> snapshot,
              float weight = 1.0f);

  /// Merge with per-item weights (one weight per Q row, i.e. per item):
  ///   global[item][f] += item_weights[item] * (pushed - snapshot)[item][f]
  /// The DataManager derives each worker's item weight from its share of
  /// that item's ratings, so an item rated only inside one worker's row
  /// slice merges at weight 1 (exactly the serial update), while items
  /// contested by several workers combine proportionally to their data.
  /// Still Eq. 3's one multiply-add per parameter — the weights are
  /// precomputed once per training run (the grid is static).
  void sync_q(std::span<const float> pushed, std::span<const float> snapshot,
              std::span<const float> item_weights);

  /// Emulates transmitting P through the wire codec (the final P&Q push):
  /// every P value is replaced by its encode/decode round trip, so FP16's
  /// quantization shows up in the delivered model exactly once, like the
  /// real system.
  void roundtrip_p_through_codec();

  /// Number of sync_q merges performed (tests assert one per worker-push).
  std::uint64_t sync_count() const noexcept { return sync_count_; }

  /// Wall-clock seconds the sync thread has spent merging — the measured
  /// counterpart of Eq. 3's T_sync, across all workers.
  double measured_sync_s() const noexcept { return measured_sync_s_; }

 private:
  mf::FactorModel global_;
  std::unique_ptr<comm::Codec> codec_;
  std::uint64_t sync_count_ = 0;
  double measured_sync_s_ = 0.0;
};

}  // namespace hcc::core
