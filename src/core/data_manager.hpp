// The server's DataManager (Section 3.3): turns a platform + dataset into a
// concrete collaborative-computing plan — grid orientation, data partition,
// and per-worker communication plans — using the time cost model to select
// between DP1 and DP2 (Eq. 5's lambda rule).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/strategy.hpp"
#include "core/cost_model.hpp"
#include "core/partition.hpp"
#include "data/grid.hpp"
#include "sim/platform.hpp"
#include "sim/timing.hpp"

namespace hcc::core {

/// A fully resolved collaborative-computing plan for one training run.
struct Plan {
  PartitionStrategy requested = PartitionStrategy::kAuto;
  PartitionStrategy chosen = PartitionStrategy::kAuto;  ///< auto resolved
  std::vector<double> shares;                ///< x, sums to 1
  data::GridKind grid = data::GridKind::kRow;
  comm::PayloadMode payload = comm::PayloadMode::kQOnly;
  CostPrediction prediction;                 ///< cost model at `shares`
  std::uint32_t dp1_rounds = 0;              ///< Algorithm 1 iterations used

  /// Human-readable account of the decision chain (what the paper's
  /// framework logs); examples print this.
  std::string explanation;
};

/// DataManager options.
struct DataManagerOptions {
  double lambda = 10.0;         ///< Eq. 5 threshold (paper's value)
  double measure_jitter = 0.03; ///< run-to-run noise of profiling epochs
  std::uint64_t seed = 7;
  Dp1Options dp1;
  /// When set, the DataManager drops workers whose marginal contribution is
  /// negative — on sync-bound datasets a weak worker's synchronization and
  /// communication can cost more than its compute is worth (the effect
  /// behind the paper showing R1 with only three workers in Figure 9c and
  /// idling the server's CPU under Strategy 3).  Dropped workers get share
  /// zero and no communication plan.
  bool prune_unhelpful_workers = false;
};

/// Plans partitions and builds timing configurations.
class DataManager {
 public:
  DataManager(sim::PlatformSpec platform, sim::DatasetShape shape,
              comm::CommConfig comm, DataManagerOptions options = {});

  /// Resolves the requested strategy into a concrete plan.  With
  /// prune_unhelpful_workers set, may leave some workers at share zero.
  Plan plan(PartitionStrategy request = PartitionStrategy::kAuto) const;

  /// Deterministic simulated epoch seconds for a plan (jitter-free); the
  /// comparator used by worker pruning.
  double simulated_epoch_seconds(const Plan& plan) const;

  /// Builds the timing-engine input for a plan (per-epoch).
  sim::EpochConfig epoch_config(const Plan& plan,
                                bool last_epoch = false) const;

  /// Independent ("IW") epoch seconds per worker — the DP0 inputs.
  std::vector<double> independent_seconds() const;

  const sim::PlatformSpec& platform() const noexcept { return platform_; }
  const sim::DatasetShape& shape() const noexcept { return shape_; }
  const comm::CommConfig& comm_config() const noexcept { return comm_; }

 private:
  /// Profiles one epoch at `shares` and returns per-worker compute seconds
  /// (Algorithm 1's sgd_update measurement), with deterministic jitter.
  std::vector<double> measure_compute(const std::vector<double>& shares,
                                      std::uint64_t round) const;

  /// Plans over the subset of workers with active[i] == true; inactive
  /// workers get share zero.
  Plan plan_masked(PartitionStrategy request,
                   const std::vector<bool>& active) const;

  sim::PlatformSpec platform_;
  sim::DatasetShape shape_;
  comm::CommConfig comm_;
  DataManagerOptions options_;
};

}  // namespace hcc::core
