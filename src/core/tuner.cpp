#include "core/tuner.hpp"

#include <algorithm>
#include <sstream>

#include "comm/payload.hpp"

namespace hcc::core {

std::string TuneResult::summary() const {
  std::ostringstream os;
  os << "payload=" << (best.comm.reduce_payload ? "reduced" : "P&Q")
     << " fp16=" << (best.comm.fp16 ? "on" : "off")
     << " streams=" << best.comm.streams
     << " prune=" << (best.prune ? "on" : "off")
     << " strategy=" << partition_strategy_name(best.chosen)
     << " epoch=" << best.epoch_seconds << "s";
  return os.str();
}

TuneResult tune_comm(const sim::PlatformSpec& platform,
                     const sim::DatasetShape& shape,
                     const DataManagerOptions& options) {
  TuneResult result;
  for (const bool reduce : {true, false}) {
    for (const bool fp16 : {true, false}) {
      for (const std::uint32_t streams : {1u, 2u, 4u}) {
        for (const bool prune : {false, true}) {
          comm::CommConfig comm;
          comm.reduce_payload = reduce;
          comm.fp16 = fp16;
          comm.streams = streams;

          DataManagerOptions opts = options;
          opts.prune_unhelpful_workers = prune;
          const DataManager manager(platform, shape, comm, opts);
          const Plan plan = manager.plan(PartitionStrategy::kAuto);

          TuneTrial trial;
          trial.comm = comm;
          trial.prune = prune;
          trial.chosen = plan.chosen;
          trial.epoch_seconds = manager.simulated_epoch_seconds(plan);
          result.trials.push_back(trial);
        }
      }
    }
  }
  std::sort(result.trials.begin(), result.trials.end(),
            [](const TuneTrial& a, const TuneTrial& b) {
              return a.epoch_seconds < b.epoch_seconds;
            });
  result.best = result.trials.front();
  return result;
}

}  // namespace hcc::core
