#include "core/cost_model.hpp"

#include <algorithm>
#include <limits>

namespace hcc::core {

namespace {
constexpr double kGiga = 1e9;

/// One direction's transfer time under the chunked streaming pipeline
/// (comm/pipeline.hpp).  At depth 1 — or with unmodeled codec rates — the
/// direction costs its serial wire time, exactly the legacy prediction.
/// With depth > 1 the ring keeps encode, wire and commit busy at once, so
/// steady state costs max(encode, wire, commit) per chunk: the Eq. 1
/// overlap term.  The two non-dominant stages survive only at the window
/// fill/drain edges, which per-epoch totals can ignore.
double direction_seconds(double wire_bytes, double raw_bytes, double bus_gbs,
                         const sim::CommPlan& comm) {
  const double wire_s = wire_bytes / (bus_gbs * kGiga);
  if (comm.pipeline_depth <= 1 || comm.encode_gbs <= 0.0 ||
      comm.commit_gbs <= 0.0) {
    return wire_s;
  }
  const double encode_s = raw_bytes / (comm.encode_gbs * kGiga);
  const double commit_s = raw_bytes / (comm.commit_gbs * kGiga);
  return std::max({encode_s, wire_s, commit_s});
}

}  // namespace

double predicted_worker_seconds(const sim::DeviceSpec& device,
                                const sim::DatasetShape& shape, double share,
                                const sim::CommPlan& comm) {
  const double bus_gbs =
      sim::bus_bandwidth_gbs(device.bus) * comm.bus_efficiency;
  const double pull_s =
      direction_seconds(comm.pull_bytes, comm.pull_raw_bytes, bus_gbs, comm);
  const double push_s =
      direction_seconds(comm.push_bytes, comm.push_raw_bytes, bus_gbs, comm);
  const double comp_s = sim::compute_seconds(device, shape, share);
  // With S async streams the pipeline exposes only ~1/S of the transfers
  // (Figure 6); the rest hides under compute.
  const double streams = std::max(1u, comm.streams);
  return (pull_s + push_s) / streams + comp_s;
}

PhaseCost predicted_phase_cost(const sim::DeviceSpec& device,
                               const sim::DatasetShape& shape, double share,
                               const sim::CommPlan& comm,
                               const sim::ServerSpec& server) {
  PhaseCost cost;
  const double bus_gbs =
      sim::bus_bandwidth_gbs(device.bus) * comm.bus_efficiency;
  cost.pull_s =
      direction_seconds(comm.pull_bytes, comm.pull_raw_bytes, bus_gbs, comm);
  cost.push_s =
      direction_seconds(comm.push_bytes, comm.push_raw_bytes, bus_gbs, comm);
  cost.compute_s =
      sim::compute_seconds(device, shape, share) + device.epoch_overhead_s;
  cost.sync_s = predicted_sync_seconds(server, comm);
  return cost;
}

double predicted_sync_seconds(const sim::ServerSpec& server,
                              const sim::CommPlan& comm) {
  const double elements = comm.sync_bytes / 4.0;
  return 3.0 * comm.sync_bytes / (server.mem_bandwidth_gbs * kGiga) +
         elements / (server.compute_gflops * kGiga);
}

CostPrediction predict_epoch(const sim::EpochConfig& config, double lambda) {
  CostPrediction prediction;
  prediction.worker_seconds.reserve(config.workers.size());
  double sync_total = 0.0;
  for (const auto& worker : config.workers) {
    prediction.worker_seconds.push_back(predicted_worker_seconds(
        worker.device, config.shape, worker.share, worker.comm));
    sync_total += predicted_sync_seconds(config.server, worker.comm);
  }
  prediction.max_worker_s =
      prediction.worker_seconds.empty()
          ? 0.0
          : *std::max_element(prediction.worker_seconds.begin(),
                              prediction.worker_seconds.end());
  prediction.sync_s = sync_total;
  prediction.sync_per_worker_s =
      config.workers.empty() ? 0.0
                             : sync_total / static_cast<double>(
                                                config.workers.size());
  prediction.ratio = sync_total > 0.0
                         ? prediction.max_worker_s / sync_total
                         : std::numeric_limits<double>::infinity();
  prediction.sync_negligible = prediction.ratio >= lambda;
  // Eq. 5: ignore T_sync when compute dominates by the lambda margin.
  prediction.total_s = prediction.sync_negligible
                           ? prediction.max_worker_s
                           : prediction.max_worker_s + sync_total;
  return prediction;
}

double worker_time_spread(const std::vector<double>& worker_seconds) {
  if (worker_seconds.empty()) return 0.0;
  const auto [lo, hi] =
      std::minmax_element(worker_seconds.begin(), worker_seconds.end());
  if (*lo <= 0.0) return 0.0;
  return (*hi - *lo) / *lo;
}

}  // namespace hcc::core
