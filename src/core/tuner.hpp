// Configuration auto-tuner (extension).
//
// The paper tunes communication strategy choices by hand per dataset
// (Q-only when m >> n, FP16 when the rating scale is coarse, streams when
// the matrix is square-ish, DP1 vs DP2 via lambda).  The DataManager
// automates the partition choice; this tuner automates the rest: it sweeps
// the discrete communication-configuration space on the virtual platform
// and returns the fastest combination, with the full trial log.
#pragma once

#include <string>
#include <vector>

#include "comm/strategy.hpp"
#include "core/data_manager.hpp"

namespace hcc::core {

/// One evaluated configuration.
struct TuneTrial {
  comm::CommConfig comm;
  bool prune = false;
  PartitionStrategy chosen = PartitionStrategy::kAuto;
  double epoch_seconds = 0.0;
};

/// The tuner's pick plus everything it tried (best first).
struct TuneResult {
  TuneTrial best;
  std::vector<TuneTrial> trials;

  /// Human-readable one-liner for logs/examples.
  std::string summary() const;
};

/// Sweeps {payload reduction} x {FP16} x {streams 1/2/4} x {pruning} under
/// the auto partition strategy and returns the configuration with the
/// smallest simulated epoch time.  Deterministic.
TuneResult tune_comm(const sim::PlatformSpec& platform,
                     const sim::DatasetShape& shape,
                     const DataManagerOptions& options = {});

}  // namespace hcc::core
