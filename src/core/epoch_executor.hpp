// Concurrent epoch executor (Figure 6, Strategy 3 — for real this time).
//
// The paper's headline claim is *collaborative* execution: every CPU/GPU
// worker runs its own pull -> compute -> push pipeline concurrently, with
// the server merge (Eq. 3's T_sync) either overlapped or hidden.  This
// executor provides the two execution modes behind that claim:
//
//  - kSerial   reproduces the original single-host-thread loop exactly —
//              workers interleave phase by phase, chunk by chunk, in worker
//              order.  The training trajectory is bit-identical to the
//              pre-executor code, which is why it stays the default.
//  - kParallel gives each worker a dedicated thread running its *entire*
//              chunked pipeline independently (per-worker pipelines, in the
//              HogWild / FPSGD tradition adapted to our parameter-server
//              shape).  Workers join at an epoch barrier; exceptions
//              (fault::WorkerFault, fault::DivergenceError) are captured
//              per thread and the highest-priority one is rethrown at the
//              barrier, so HccMf::train's recovery/rollback paths work
//              unchanged.
//
// Under kParallel the Server's Q is partitioned into row-range stripes with
// per-stripe mutexes (see core/server.hpp) so merges from different workers
// proceed concurrently instead of serializing the whole T_sync term, and
// each worker may double-buffer its local Q so chunk c+1's pull overlaps
// chunk c's compute (the copy-engine overlap of Strategy 3, done with a
// prefetch thread — see core/worker.hpp).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace hcc::util {
class ThreadPool;
}

namespace hcc::core {

class Server;
class TrainWorker;

/// How one functional epoch executes across the workers.
enum class ExecMode : std::uint8_t {
  kSerial,    ///< legacy interleaved loop, one host thread, deterministic
  kParallel,  ///< per-worker pipeline threads + striped server merge
};

/// Everything configurable about the executor.
struct ExecOptions {
  ExecMode mode = ExecMode::kSerial;
  /// Q stripes for the server merge under kParallel (0 = auto: 8 per
  /// worker, clamped to the item count).  kSerial always runs 1 stripe so
  /// the merge arithmetic order is exactly the legacy order.
  std::uint32_t stripes = 0;
  /// Double-buffer each worker's local Q under kParallel so chunk c+1's
  /// pull (on a prefetch thread) overlaps chunk c's compute.  Only takes
  /// effect for workers with pipeline depth >= 2.
  bool double_buffer = true;
  /// Pin each worker's pipeline thread to a CPU (round-robin over the
  /// online set) under kParallel.  With pinning on, the worker's lazily
  /// sized buffers are first-touched on the thread that will stream them
  /// every epoch — on a NUMA host that keeps local Q, the snapshot and the
  /// staging buffers on the worker's own node (see util/affinity.hpp).
  bool pin_threads = false;
  /// Work stealing under kParallel (see core/steal_queue.hpp): each
  /// worker's prepared rating order is cut into chunks on a per-worker
  /// deque; a worker that drains its own deque steals from the tail of the
  /// fullest peer's, so a mid-epoch straggler sheds its backlog instead of
  /// holding the epoch barrier.  Supersedes the per-worker stream pipeline
  /// (one pull, a chunk-drain loop, one push per epoch).  Off by default:
  /// the non-stealing pipelines stay bit-identical to pre-steal builds.
  bool steal = false;
  /// Target ratings per chunk under `steal` (0 = auto: assigned_nnz / 16
  /// per worker, rescaled every epoch by the worker's measured
  /// effective_gbps relative to the mean — see resolve_chunk_target).
  std::uint32_t chunk_ratings = 0;
};

/// "serial" / "parallel" (CLI + logging).
const char* exec_mode_name(ExecMode mode);

/// Parses "serial" / "parallel"; throws std::invalid_argument otherwise.
ExecMode parse_exec_mode(const std::string& name);

/// Stripe count the server should run: 1 under kSerial; under kParallel
/// `opts.stripes`, or 8 per worker when 0 — always clamped to [1, items].
std::uint32_t resolve_stripes(const ExecOptions& opts, std::uint32_t items,
                              std::size_t workers);

/// Runs the workers of one epoch, in either mode.  One executor serves a
/// whole training run; its worker threads (kParallel) are spawned lazily on
/// the first epoch and parked on a barrier between epochs.
class EpochExecutor {
 public:
  /// `n_workers` fixes the thread-pool width (one thread per worker).
  EpochExecutor(const ExecOptions& options, std::size_t n_workers);

  EpochExecutor(const EpochExecutor&) = delete;
  EpochExecutor& operator=(const EpochExecutor&) = delete;

  ~EpochExecutor();

  ExecMode mode() const noexcept { return options_.mode; }
  const ExecOptions& options() const noexcept { return options_; }

  /// One full functional epoch over `workers`:
  ///  - kSerial: the legacy loop — for each chunk, all pulls, then all
  ///    computes, then all pushes, in worker order (bit-identical).
  ///  - kParallel: each alive worker's TrainWorker::run_pipeline on its
  ///    dedicated thread, joined at the epoch barrier.
  void run_epoch(std::vector<TrainWorker>& workers,
                 const std::vector<bool>& alive, Server& server, float lr,
                 float reg_p, float reg_q, util::ThreadPool* pool);

  /// The generic barrier primitive behind kParallel (public for tests and
  /// for callers with non-TrainWorker work units, e.g. the cluster layer's
  /// node pipelines): runs fn(i) for every i with alive[i] on worker i's
  /// dedicated thread and blocks until all checked in.  Exceptions are
  /// captured per worker; after the barrier the highest-priority one is
  /// rethrown — fault::WorkerFault outranks fault::DivergenceError
  /// outranks anything else, ties broken by the lowest worker index — so
  /// concurrent failures surface deterministically.
  void run_parallel(const std::vector<bool>& alive,
                    const std::function<void(std::size_t)>& fn);

 private:
  void start_threads();
  void thread_loop(std::size_t index);
  /// Rethrows the winner of `errors_` (no-op when all null).
  void rethrow_barrier_error();

  ExecOptions options_;
  std::size_t n_;

  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<std::thread> threads_;
  std::uint64_t generation_ = 0;
  std::size_t pending_ = 0;
  bool stopping_ = false;
  const std::vector<bool>* alive_ = nullptr;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::vector<std::exception_ptr> errors_;
};

}  // namespace hcc::core
