#include "core/worker.hpp"

#include <algorithm>
#include <cassert>

namespace hcc::core {

TrainWorker::TrainWorker(std::uint32_t id, std::string device_name,
                         data::RatingMatrix slice,
                         const comm::CommConfig& config, std::uint32_t streams)
    : id_(id),
      device_name_(std::move(device_name)),
      slice_(std::move(slice)),
      streams_(std::max(1u, streams)),
      sparse_(config.sparse),
      backend_(comm::make_backend(config)) {
  if (sparse_) {
    const auto counts = slice_.col_counts();
    for (std::uint32_t i = 0; i < counts.size(); ++i) {
      if (counts[i] > 0) touched_.push_back(i);
    }
  }
}

void TrainWorker::gather_touched(std::span<const float> q,
                                 std::vector<float>& packed,
                                 std::uint32_t k) const {
  packed.resize(touched_.size() * k);
  for (std::size_t t = 0; t < touched_.size(); ++t) {
    const float* src = &q[std::size_t(touched_[t]) * k];
    std::copy(src, src + k, &packed[t * k]);
  }
}

void TrainWorker::scatter_touched(const std::vector<float>& packed,
                                  std::span<float> q,
                                  std::uint32_t k) const {
  for (std::size_t t = 0; t < touched_.size(); ++t) {
    const float* src = &packed[t * k];
    std::copy(src, src + k, &q[std::size_t(touched_[t]) * k]);
  }
}

void TrainWorker::pull(Server& server) {
  const std::span<const float> global_q = server.model().q_data();
  if (local_q_.size() != global_q.size()) {
    local_q_.resize(global_q.size());
    snapshot_q_.resize(global_q.size());
    push_staging_.resize(global_q.size());
  }
  if (sparse_) {
    // Strategy 4: only the touched Q rows cross the wire.
    const std::uint32_t k = server.model().k();
    gather_touched(global_q, packed_send_, k);
    packed_recv_.resize(packed_send_.size());
    backend_->transfer(packed_send_, packed_recv_, server.codec());
    scatter_touched(packed_recv_, local_q_, k);
  } else {
    backend_->transfer(global_q, local_q_, server.codec());
  }
  // The snapshot is what this worker *received* (post-codec), so the later
  // delta merge cancels the pull's quantization exactly.  Under sparse
  // push the untouched rows copy local (stale) values: their delta is then
  // exactly zero, so they neither travel nor merge.
  std::copy(local_q_.begin(), local_q_.end(), snapshot_q_.begin());
}

void TrainWorker::compute_chunk(Server& server, std::uint32_t chunk, float lr,
                                float reg_p, float reg_q,
                                util::ThreadPool* pool) {
  assert(chunk < streams_);
  assert(!local_q_.empty() && "pull() must precede compute_chunk()");
  mf::FactorModel& model = server.model();
  const std::uint32_t k = model.k();
  const auto entries = slice_.entries();
  const std::size_t per_chunk = (entries.size() + streams_ - 1) / streams_;
  const std::size_t lo = std::min(entries.size(), chunk * per_chunk);
  const std::size_t hi = std::min(entries.size(), lo + per_chunk);

  auto body = [&](std::size_t begin, std::size_t end) {
    for (std::size_t idx = begin; idx < end; ++idx) {
      const auto& e = entries[idx];
      // P row: exclusive to this worker (row grid) -> global in place.
      // Q row: private local copy, merged at push.
      mf::sgd_update(model.p(e.u), &local_q_[std::size_t(e.i) * k], k, e.r,
                     lr, reg_p, reg_q);
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(lo, hi, body);
  } else {
    body(lo, hi);
  }
}

void TrainWorker::push(Server& server) {
  assert(!local_q_.empty() && "pull() must precede push()");
  if (sparse_) {
    const std::uint32_t k = server.model().k();
    gather_touched(local_q_, packed_send_, k);
    packed_recv_.resize(packed_send_.size());
    backend_->transfer(packed_send_, packed_recv_, server.codec());
    // Untouched rows carry the snapshot, so their merge delta is zero.
    std::copy(snapshot_q_.begin(), snapshot_q_.end(), push_staging_.begin());
    scatter_touched(packed_recv_, push_staging_, k);
  } else {
    backend_->transfer(local_q_, push_staging_, server.codec());
  }
  if (!item_weights_.empty()) {
    server.sync_q(push_staging_, snapshot_q_,
                  std::span<const float>(item_weights_));
  } else {
    server.sync_q(push_staging_, snapshot_q_, sync_weight_);
  }
}

}  // namespace hcc::core
