#include "core/worker.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/clock.hpp"

namespace hcc::core {

namespace {
// Workers occupy Chrome-trace tracks 1..N; track 0 is the server.
std::uint32_t track_of(std::uint32_t worker_id) { return worker_id + 1; }
}  // namespace

TrainWorker::TrainWorker(std::uint32_t id, std::string device_name,
                         data::RatingMatrix slice,
                         const comm::CommConfig& config, std::uint32_t streams)
    : id_(id),
      device_name_(std::move(device_name)),
      slice_(std::move(slice)),
      streams_(std::max(1u, streams)),
      sparse_(config.sparse),
      backend_(comm::make_backend(config)) {
  if (sparse_) {
    const auto counts = slice_.col_counts();
    for (std::uint32_t i = 0; i < counts.size(); ++i) {
      if (counts[i] > 0) touched_.push_back(i);
    }
  }
  const std::string base = "worker" + std::to_string(id_) + ".";
  auto& reg = obs::registry();
  hist_pull_ = &reg.histogram(base + "pull_s");
  hist_compute_ = &reg.histogram(base + "compute_s");
  hist_push_ = &reg.histogram(base + "push_s");
  hist_sync_ = &reg.histogram(base + "sync_s");
  obs::trace().set_track_name(track_of(id_),
                              "worker " + std::to_string(id_) + " (" +
                                  device_name_ + ")");
}

void TrainWorker::gather_touched(std::span<const float> q,
                                 std::vector<float>& packed,
                                 std::uint32_t k) const {
  packed.resize(touched_.size() * k);
  for (std::size_t t = 0; t < touched_.size(); ++t) {
    const float* src = &q[std::size_t(touched_[t]) * k];
    std::copy(src, src + k, &packed[t * k]);
  }
}

void TrainWorker::scatter_touched(const std::vector<float>& packed,
                                  std::span<float> q,
                                  std::uint32_t k) const {
  for (std::size_t t = 0; t < touched_.size(); ++t) {
    const float* src = &packed[t * k];
    std::copy(src, src + k, &q[std::size_t(touched_[t]) * k]);
  }
}

void TrainWorker::pull(Server& server) {
  obs::ScopedSpan span("pull", obs::kPhaseCategory, track_of(id_));
  const std::span<const float> global_q = server.model().q_data();
  if (local_q_.size() != global_q.size()) {
    local_q_.resize(global_q.size());
    snapshot_q_.resize(global_q.size());
    push_staging_.resize(global_q.size());
  }
  if (sparse_) {
    // Strategy 4: only the touched Q rows cross the wire.
    const std::uint32_t k = server.model().k();
    gather_touched(global_q, packed_send_, k);
    packed_recv_.resize(packed_send_.size());
    backend_->transfer(packed_send_, packed_recv_, server.codec());
    scatter_touched(packed_recv_, local_q_, k);
  } else {
    backend_->transfer(global_q, local_q_, server.codec());
  }
  // The snapshot is what this worker *received* (post-codec), so the later
  // delta merge cancels the pull's quantization exactly.  Under sparse
  // push the untouched rows copy local (stale) values: their delta is then
  // exactly zero, so they neither travel nor merge.
  std::copy(local_q_.begin(), local_q_.end(), snapshot_q_.begin());
  const double s = span.stop();
  measured_.pull_s += s;
  hist_pull_->observe(s);
}

void TrainWorker::compute_chunk(Server& server, std::uint32_t chunk, float lr,
                                float reg_p, float reg_q,
                                util::ThreadPool* pool) {
  assert(chunk < streams_);
  assert(!local_q_.empty() && "pull() must precede compute_chunk()");
  obs::ScopedSpan span("compute", obs::kPhaseCategory, track_of(id_));
  span.arg("chunk", std::to_string(chunk));
  mf::FactorModel& model = server.model();
  const std::uint32_t k = model.k();
  const auto entries = slice_.entries();
  const std::size_t per_chunk = (entries.size() + streams_ - 1) / streams_;
  const std::size_t lo = std::min(entries.size(), chunk * per_chunk);
  const std::size_t hi = std::min(entries.size(), lo + per_chunk);

  auto body = [&](std::size_t begin, std::size_t end) {
    for (std::size_t idx = begin; idx < end; ++idx) {
      const auto& e = entries[idx];
      // P row: exclusive to this worker (row grid) -> global in place.
      // Q row: private local copy, merged at push.
      mf::sgd_update(model.p(e.u), &local_q_[std::size_t(e.i) * k], k, e.r,
                     lr, reg_p, reg_q);
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(lo, hi, body);
  } else {
    body(lo, hi);
  }
  const double s = span.stop();
  measured_.compute_s += s;
  hist_compute_->observe(s);
}

void TrainWorker::push(Server& server) {
  assert(!local_q_.empty() && "pull() must precede push()");
  obs::ScopedSpan span("push", obs::kPhaseCategory, track_of(id_));
  if (sparse_) {
    const std::uint32_t k = server.model().k();
    gather_touched(local_q_, packed_send_, k);
    packed_recv_.resize(packed_send_.size());
    backend_->transfer(packed_send_, packed_recv_, server.codec());
    // Untouched rows carry the snapshot, so their merge delta is zero.
    std::copy(snapshot_q_.begin(), snapshot_q_.end(), push_staging_.begin());
    scatter_touched(packed_recv_, push_staging_, k);
  } else {
    backend_->transfer(local_q_, push_staging_, server.codec());
  }
  const double push_s = span.stop();
  measured_.push_s += push_s;
  hist_push_->observe(push_s);

  // The server-side merge is the paper's T_sync term — timed separately
  // and attributed to this worker (the server records its own span).
  util::Stopwatch sync_watch;
  if (!item_weights_.empty()) {
    server.sync_q(push_staging_, snapshot_q_,
                  std::span<const float>(item_weights_));
  } else {
    server.sync_q(push_staging_, snapshot_q_, sync_weight_);
  }
  const double sync_s = sync_watch.seconds();
  measured_.sync_s += sync_s;
  hist_sync_->observe(sync_s);
}

}  // namespace hcc::core
