#include "core/worker.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

#include "fault/errors.hpp"
#include "mf/kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"

namespace hcc::core {

namespace {
// Workers occupy Chrome-trace tracks 1..N; track 0 is the server.
std::uint32_t track_of(std::uint32_t worker_id) { return worker_id + 1; }
}  // namespace

TrainWorker::TrainWorker(std::uint32_t id, std::string device_name,
                         data::RatingMatrix slice,
                         const comm::CommConfig& config, std::uint32_t streams)
    : id_(id),
      device_name_(std::move(device_name)),
      slice_(std::move(slice)),
      streams_(std::max(1u, streams)),
      sparse_(config.sparse),
      backend_(comm::make_backend(config, id)),
      comm_config_(config) {
  if (sparse_) {
    rebuild_touched();
  }
  const std::string base = "worker" + std::to_string(id_) + ".";
  auto& reg = obs::registry();
  hist_pull_ = &reg.histogram(base + "pull_s");
  hist_compute_ = &reg.histogram(base + "compute_s");
  hist_push_ = &reg.histogram(base + "push_s");
  hist_sync_ = &reg.histogram(base + "sync_s");
  counter_updates_ = &reg.counter("simd.sgd_updates");
  obs::trace().set_track_name(track_of(id_),
                              "worker " + std::to_string(id_) + " (" +
                                  device_name_ + ")");
}

TrainWorker::~TrainWorker() {
  if (prefetch_thread_.joinable()) prefetch_thread_.join();
}

void TrainWorker::set_exec(bool parallel, bool double_buffer) {
  parallel_ = parallel;
  // Double-buffering only pays (and is only exercised) with a pipeline to
  // overlap; the buffers themselves are sized lazily at the next pull.
  double_buffer_ = parallel && double_buffer && streams_ >= 2;
}

void TrainWorker::set_schedule(const data::ScheduleOptions& options,
                               std::uint32_t k) {
  data::ScheduleOptions mixed = options;
  // Decorrelate workers: identical base seeds must not make every worker
  // visit its tiles in the same global order (that would re-synchronize
  // the server merge traffic the schedule is trying to spread out).
  mixed.seed ^= 0x9e3779b97f4a7c15ULL * (std::uint64_t(id_) + 1);
  scheduler_ = data::RatingScheduler(mixed, k);
  sched_epoch_ = 0;
  sched_stats_ = {};
}

void TrainWorker::prepare_epoch() {
  const std::uint32_t epoch = sched_epoch_++;
  if (scheduler_.options().policy == data::SchedulePolicy::kAsIs) {
    return;  // bit-identical contract: never touch the slice
  }
  obs::ScopedSpan span("schedule", obs::kPhaseCategory, track_of(id_));
  span.arg("epoch", std::to_string(epoch));
  sched_stats_ = scheduler_.prepare(slice_, epoch);
}

void TrainWorker::set_fault_runtime(fault::FaultRuntime* runtime) {
  fault_ = runtime;
  if (runtime != nullptr && runtime->active()) {
    backend_->set_checksum_enabled(true);
    backend_->set_wire_tap([runtime, worker = id_](std::span<std::byte> wire) {
      runtime->injector().tap_wire(wire, worker);
    });
  }
}

void TrainWorker::rebuild_touched() {
  touched_.clear();
  const auto counts = slice_.col_counts();
  for (std::uint32_t i = 0; i < counts.size(); ++i) {
    if (counts[i] > 0) touched_.push_back(i);
  }
}

void TrainWorker::absorb_entries(const std::vector<data::Rating>& entries) {
  if (entries.empty()) return;
  // One bulk append (a single reserve + memcpy-ish insert), then one index
  // rebuild — not O(entries) incremental add() calls.
  slice_.append(entries);
  if (sparse_) rebuild_touched();
  // A repartition reshuffles what each packed slot means (and under sparse
  // push, the packed length): the delta coders' references are stale, so
  // force the next transfer per direction to re-keyframe.
  if (pull_pipe_ != nullptr) pull_pipe_->reset_state();
  if (push_pipe_ != nullptr) push_pipe_->reset_state();
}

void TrainWorker::record_phase(double seconds, double obs::PhaseTimes::*field,
                               obs::Histogram* hist) {
  // A real stall already spent its factor in wall clock (apply_real_stall
  // slept inside the span); multiplying again would double-charge it.
  const double s = seconds * (real_stalls_ ? 1.0 : stall_factor_);
  measured_.*field += s;
  hist->observe(s);
}

void TrainWorker::apply_real_stall(double elapsed_s) const {
  if (!real_stalls_ || stall_factor_ <= 1.0 || elapsed_s <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double>((stall_factor_ - 1.0) * elapsed_s));
}

comm::StreamPipeline::RetryFn TrainWorker::retry_policy() {
  return [this](const std::function<void()>& attempt) {
    std::uint32_t tries = 0;
    for (;;) {
      try {
        attempt();
        return;
      } catch (const comm::ChecksumError&) {
        if (fault_ == nullptr) throw;
        fault_->count_checksum_failure();
        if (tries >= fault_->options().max_retries) {
          throw fault::TransferFailure(id_, tries + 1, backend_->name());
        }
        // The attempt re-sends pristine bytes (a depth-1 transfer even
        // re-encodes from `src`), so a retry is idempotent.
        fault_->count_retry();
        const double backoff = fault_->options().backoff_base_s *
                               static_cast<double>(1u << tries);
        if (backoff > 0.0) {
          std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
        }
        ++tries;
      }
    }
  };
}

void TrainWorker::gather_touched(std::span<const float> q,
                                 std::vector<float>& packed,
                                 std::uint32_t k) const {
  assert(packed.size() == touched_.size() * std::size_t(k));
  for (std::size_t t = 0; t < touched_.size(); ++t) {
    const float* src = &q[std::size_t(touched_[t]) * k];
    std::copy(src, src + k, &packed[t * k]);
  }
}

void TrainWorker::scatter_touched(const std::vector<float>& packed,
                                  std::span<float> q,
                                  std::uint32_t k) const {
  assert(packed.size() == touched_.size() * std::size_t(k));
  for (std::size_t t = 0; t < touched_.size(); ++t) {
    const float* src = &packed[t * k];
    std::copy(src, src + k, &q[std::size_t(touched_[t]) * k]);
  }
}

void TrainWorker::ensure_buffers(Server& server) {
  const std::size_t q_size = server.model().q_data().size();
  const std::uint32_t k = server.model().k();
  if (pull_pipe_ == nullptr) {
    // Built here, not in the constructor: the quantized codecs want the
    // rank for their per-row scale blocks, and k lives on the server.
    // Sparse pushes carry their row indices in-band when the codec is a
    // stateful quantizer (SparseIndexedCodec), making the packed wire
    // self-describing; fp32/fp16 sparse wire stays bit-identical.
    pull_pipe_ = std::make_unique<comm::StreamPipeline>(
        comm_config_, k, comm::StreamPipeline::Direction::kPull);
    push_pipe_ = std::make_unique<comm::StreamPipeline>(
        comm_config_, k, comm::StreamPipeline::Direction::kPush, sparse_);
  }
  if (local_q_.size() != q_size) {
    local_q_.assign(q_size, 0.0f);
    snapshot_q_.assign(q_size, 0.0f);
    push_staging_.assign(q_size, 0.0f);
  }
  if (sparse_) {
    // Sized once from the touched set (re-sized only after absorb_entries
    // grows it); the gather/scatter hot paths assert instead of resizing.
    const std::size_t packed = touched_.size() * k;
    if (packed_send_.size() != packed) {
      packed_send_.resize(packed);
      packed_recv_.resize(packed);
    }
  } else if (parallel_ && pull_staging_.size() != q_size) {
    pull_staging_.resize(q_size);
  }
  if (double_buffer_ && local_q_back_.size() != q_size) {
    local_q_back_.assign(q_size, 0.0f);
    snapshot_q_back_.assign(q_size, 0.0f);
  }
}

void TrainWorker::pull_into(Server& server, util::AlignedFloats& q_dst,
                            std::vector<float>& snap_dst) {
  const std::uint32_t k = server.model().k();
  const comm::StreamPipeline::RetryFn retry = retry_policy();
  if (sparse_) {
    // Strategy 4: only the touched Q rows cross the wire.
    if (parallel_) {
      server.gather_q_rows(touched_, packed_send_);
    } else {
      gather_touched(server.model().q_data(), packed_send_, k);
    }
    pull_pipe_->transfer(*backend_, packed_send_, packed_recv_, retry);
    scatter_touched(packed_recv_, q_dst, k);
    // The snapshot is what this worker *received* (post-codec), so the
    // later delta merge cancels the pull's quantization exactly.  The
    // untouched rows copy local (stale) values: their delta is then exactly
    // zero, so they neither travel nor merge.
    std::copy(q_dst.begin(), q_dst.end(), snap_dst.begin());
    return;
  }
  // Dense pulls snapshot per chunk as each lands — under a depth > 1
  // pipeline the copy of chunk i overlaps the wire of chunk i+1.
  const comm::StreamPipeline::ChunkHook snapshot_chunk =
      [&](std::size_t lo, std::size_t hi) {
        std::copy(q_dst.begin() + lo, q_dst.begin() + hi,
                  snap_dst.begin() + lo);
      };
  if (parallel_) {
    // Concurrent execution: other workers may be merging right now, so the
    // global read goes through the server's stripe locks.
    server.read_q(pull_staging_);
    pull_pipe_->transfer(*backend_, pull_staging_, q_dst, retry,
                         snapshot_chunk);
  } else {
    pull_pipe_->transfer(*backend_, server.model().q_data(), q_dst, retry,
                         snapshot_chunk);
  }
}

void TrainWorker::pull(Server& server) {
  if (fault_ != nullptr) {
    fault_->injector().check_phase(id_);
    // Epoch-addressed transport faults (chaos link) follow the injector's
    // cursor; a no-op for the in-process backends.
    backend_->begin_epoch(fault_->injector().current_epoch());
  }
  obs::ScopedSpan span("pull", obs::kPhaseCategory, track_of(id_));
  ensure_buffers(server);
  pull_into(server, local_q_, snapshot_q_);
  record_phase(span.stop(), &obs::PhaseTimes::pull_s, hist_pull_);
}

void TrainWorker::start_prefetch(Server& server) {
  assert(!prefetch_thread_.joinable());
  prefetch_error_ = nullptr;
  prefetch_thread_ = std::thread([this, &server] {
    try {
      if (fault_ != nullptr) fault_->injector().check_phase(id_);
      obs::ScopedSpan span("pull (prefetch)", obs::kPhaseCategory,
                           track_of(id_));
      pull_into(server, local_q_back_, snapshot_q_back_);
      record_phase(span.stop(), &obs::PhaseTimes::pull_s, hist_pull_);
    } catch (...) {
      prefetch_error_ = std::current_exception();
    }
  });
}

void TrainWorker::join_prefetch() {
  if (prefetch_thread_.joinable()) prefetch_thread_.join();
  if (prefetch_error_) {
    std::exception_ptr error = prefetch_error_;
    prefetch_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void TrainWorker::swap_buffers() {
  local_q_.swap(local_q_back_);
  snapshot_q_.swap(snapshot_q_back_);
}

void TrainWorker::fold_own_delta(std::uint32_t k) {
  auto fold_row = [&](std::uint32_t item, float w) {
    if (w == 0.0f) return;
    const std::size_t base = std::size_t(item) * k;
    for (std::uint32_t f = 0; f < k; ++f) {
      const float d = w * (push_staging_[base + f] - snapshot_q_[base + f]);
      local_q_back_[base + f] += d;
      snapshot_q_back_[base + f] += d;
    }
  };
  if (sparse_) {
    // Only touched rows can carry a non-zero delta.
    for (const std::uint32_t item : touched_) {
      fold_row(item, item_weights_.empty() ? sync_weight_
                                           : item_weights_[item]);
    }
  } else {
    const std::uint32_t items =
        static_cast<std::uint32_t>(push_staging_.size() / k);
    for (std::uint32_t item = 0; item < items; ++item) {
      fold_row(item, item_weights_.empty() ? sync_weight_
                                           : item_weights_[item]);
    }
  }
}

void TrainWorker::compute_chunk(Server& server, std::uint32_t chunk, float lr,
                                float reg_p, float reg_q,
                                util::ThreadPool* pool) {
  assert(chunk < streams_);
  assert(!local_q_.empty() && "pull() must precede compute_chunk()");
  if (fault_ != nullptr) fault_->injector().check_phase(id_);
  obs::ScopedSpan span("compute", obs::kPhaseCategory, track_of(id_));
  span.arg("chunk", std::to_string(chunk));
  util::Stopwatch watch;
  const auto entries = slice_.entries();
  const std::size_t per_chunk = (entries.size() + streams_ - 1) / streams_;
  const std::size_t lo = std::min(entries.size(), chunk * per_chunk);
  const std::size_t hi = std::min(entries.size(), lo + per_chunk);
  sgd_over_own(server, entries, lo, hi, lr, reg_p, reg_q, pool);
  counter_updates_->add(hi - lo);
  computed_ += hi - lo;
  last_chunk_ = chunk;
  apply_real_stall(watch.seconds());
  record_phase(span.stop(), &obs::PhaseTimes::compute_s, hist_compute_);

  // Divergence guard: a runaway learning rate poisons whole Q rows within
  // one chunk; catch it here, before push spreads it to the server.
  guard_divergence();
}

void TrainWorker::sgd_over_own(Server& server,
                               std::span<const data::Rating> entries,
                               std::size_t lo, std::size_t hi, float lr,
                               float reg_p, float reg_q,
                               util::ThreadPool* pool) {
  mf::FactorModel& model = server.model();
  const std::uint32_t k = model.k();
  // Hint a few updates ahead: far enough that the lines arrive before the
  // demand load, near enough that they are not evicted again first.
  constexpr std::size_t kPrefetchAhead = 4;
  auto body = [&](std::size_t begin, std::size_t end) {
    for (std::size_t idx = begin; idx < end; ++idx) {
      if (idx + kPrefetchAhead < end) {
        const auto& f = entries[idx + kPrefetchAhead];
        mf::sgd_prefetch_rows(model.p(f.u), &local_q_[std::size_t(f.i) * k],
                              k);
      }
      const auto& e = entries[idx];
      // P row: exclusive to this worker (row grid) -> global in place.
      // Q row: private local copy, merged at push.
      mf::sgd_update_dispatch(model.p(e.u), &local_q_[std::size_t(e.i) * k],
                              k, e.r, lr, reg_p, reg_q);
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(lo, hi, body);
  } else {
    body(lo, hi);
  }
}

void TrainWorker::guard_divergence() {
  if (fault_ != nullptr && fault_->options().divergence_guard &&
      !mf::all_finite(local_q_)) {
    util::log_kv(util::LogLevel::kWarn, "fault.divergence",
                 {util::kv("worker", id_),
                  util::kv("epoch", fault_->injector().current_epoch())});
    throw fault::DivergenceError(id_, fault_->injector().current_epoch());
  }
}

std::vector<WorkChunk> TrainWorker::make_chunks(
    std::size_t target_ratings) const {
  // Tile-aligned under the tiled schedule (never split a tile's working
  // set); user-row-aligned otherwise, which keeps the chunks' P-row claim
  // intervals disjoint over the row-sorted default order.
  std::span<const std::uint32_t> cuts;
  if (scheduler_.options().policy == data::SchedulePolicy::kTiled) {
    cuts = sched_stats_.tile_offsets;
  }
  return build_chunks(slice_.entries(), id_, target_ratings, cuts);
}

void TrainWorker::compute_own_range(Server& server, std::size_t lo,
                                    std::size_t hi, float lr, float reg_p,
                                    float reg_q, util::ThreadPool* pool) {
  assert(!local_q_.empty() && "pull() must precede compute_own_range()");
  if (fault_ != nullptr) fault_->injector().check_phase(id_);
  obs::ScopedSpan span("compute", obs::kPhaseCategory, track_of(id_));
  util::Stopwatch watch;
  sgd_over_own(server, slice_.entries(), lo, hi, lr, reg_p, reg_q, pool);
  counter_updates_->add(hi - lo);
  computed_ += hi - lo;
  // The divergence guard runs once before push (guard_divergence), not per
  // chunk — an O(|Q|) scan per chunk would dwarf small chunks.
  apply_real_stall(watch.seconds());
  record_phase(span.stop(), &obs::PhaseTimes::compute_s, hist_compute_);
}

void TrainWorker::compute_stolen(Server& server, const TrainWorker& victim,
                                 std::size_t lo, std::size_t hi, float lr,
                                 float reg_p, float reg_q) {
  if (fault_ != nullptr) fault_->injector().check_phase(id_);
  obs::ScopedSpan span("steal", obs::kPhaseCategory, track_of(id_));
  span.arg("victim", std::to_string(victim.id()));
  util::Stopwatch watch;
  mf::FactorModel& model = server.model();
  const std::uint32_t k = model.k();
  const auto entries = victim.slice().entries().subspan(lo, hi - lo);

  // Private working set: the chunk's unique items, gathered fresh from the
  // server (stripe-locked).  The scratch evolves within the chunk and is
  // discarded at the end — see the header comment for the measurements
  // behind the P-full / Q-forfeit write policy.
  steal_items_.clear();
  steal_items_.reserve(entries.size());
  for (const auto& e : entries) steal_items_.push_back(e.i);
  std::sort(steal_items_.begin(), steal_items_.end());
  steal_items_.erase(std::unique(steal_items_.begin(), steal_items_.end()),
                     steal_items_.end());
  server.gather_q_rows(steal_items_, steal_q_);
  if (steal_index_.size() < model.items()) steal_index_.resize(model.items());
  for (std::size_t t = 0; t < steal_items_.size(); ++t) {
    steal_index_[steal_items_[t]] = static_cast<std::uint32_t>(t);
  }

  // Same ASGD inner loop as the owned path, with Q indexed through the
  // packed scratch.  P rows are the victim's exclusive rows; the stealing
  // scheduler's row claim guarantees no other in-flight chunk overlaps
  // them, so the in-place update stays race-free.
  constexpr std::size_t kPrefetchAhead = 4;
  for (std::size_t idx = 0; idx < entries.size(); ++idx) {
    if (idx + kPrefetchAhead < entries.size()) {
      const auto& f = entries[idx + kPrefetchAhead];
      mf::sgd_prefetch_rows(model.p(f.u),
                            &steal_q_[std::size_t(steal_index_[f.i]) * k], k);
    }
    const auto& e = entries[idx];
    mf::sgd_update_dispatch(model.p(e.u),
                            &steal_q_[std::size_t(steal_index_[e.i]) * k], k,
                            e.r, lr, reg_p, reg_q);
  }
  counter_updates_->add(entries.size());
  computed_ += entries.size();

  // A non-finite scratch means the P rows just received garbage gradients
  // too — surface it like the owned path would.
  if (fault_ != nullptr && fault_->options().divergence_guard &&
      !mf::all_finite(steal_q_)) {
    util::log_kv(util::LogLevel::kWarn, "fault.divergence",
                 {util::kv("worker", id_),
                  util::kv("epoch", fault_->injector().current_epoch())});
    throw fault::DivergenceError(id_, fault_->injector().current_epoch());
  }
  apply_real_stall(watch.seconds());
  record_phase(span.stop(), &obs::PhaseTimes::compute_s, hist_compute_);
  // The scratch Q is dropped here by design (see worker.hpp): the stolen
  // entries' item-side movement is forfeited for this epoch, the user-side
  // movement is already in the model.
}

void TrainWorker::push(Server& server) {
  assert(!local_q_.empty() && "pull() must precede push()");
  if (fault_ != nullptr) {
    fault_->injector().check_phase(id_);
    fault_->injector().begin_push(id_, last_chunk_);
    backend_->begin_epoch(fault_->injector().current_epoch());
  }
  obs::ScopedSpan span("push", obs::kPhaseCategory, track_of(id_));
  const comm::StreamPipeline::RetryFn retry = retry_policy();
  if (sparse_) {
    const std::uint32_t k = server.model().k();
    gather_touched(local_q_, packed_send_, k);
    // Quantized sparse pushes ride the SparseIndexedCodec framing: the
    // packed values go through the int8/2-bit wire with their row indices
    // in-band (wired up in ensure_buffers).
    push_pipe_->set_sparse_rows(touched_);
    push_pipe_->transfer(*backend_, packed_send_, packed_recv_, retry);
    // Untouched rows carry the snapshot, so their merge delta is zero.
    std::copy(snapshot_q_.begin(), snapshot_q_.end(), push_staging_.begin());
    scatter_touched(packed_recv_, push_staging_, k);
  } else {
    push_pipe_->transfer(*backend_, local_q_, push_staging_, retry);
  }
  if (fault_ != nullptr) fault_->injector().end_push(id_);
  record_phase(span.stop(), &obs::PhaseTimes::push_s, hist_push_);

  // The server-side merge is the paper's T_sync term — timed separately
  // and attributed to this worker (the server records its own span).
  // Under concurrent execution a sparse worker hands the server its
  // touched-row set so the merge locks (and walks) only those stripes.
  const std::span<const std::uint32_t> touched =
      (parallel_ && sparse_) ? std::span<const std::uint32_t>(touched_)
                             : std::span<const std::uint32_t>();
  util::Stopwatch sync_watch;
  if (!item_weights_.empty()) {
    server.sync_q(push_staging_, snapshot_q_,
                  std::span<const float>(item_weights_), touched);
  } else {
    server.sync_q(push_staging_, snapshot_q_, sync_weight_, touched);
  }
  record_phase(sync_watch.seconds(), &obs::PhaseTimes::sync_s, hist_sync_);
}

void TrainWorker::run_pipeline(Server& server, float lr, float reg_p,
                               float reg_q, util::ThreadPool* pool) {
  try {
    pull(server);
    for (std::uint32_t chunk = 0; chunk < streams_; ++chunk) {
      const bool prefetching = double_buffer_ && chunk + 1 < streams_;
      if (prefetching) start_prefetch(server);
      compute_chunk(server, chunk, lr, reg_p, reg_q, pool);
      if (prefetching) join_prefetch();
      push(server);
      if (chunk + 1 < streams_) {
        if (prefetching) {
          fold_own_delta(server.model().k());
          swap_buffers();
        } else {
          // No prefetch in flight: re-pull so the next chunk computes on
          // fresh Q and — critically — pushes against a fresh snapshot
          // (a stale snapshot would re-merge this chunk's delta).
          pull(server);
        }
      }
    }
  } catch (...) {
    // Quiesce the prefetch thread before the exception crosses the epoch
    // barrier; a concurrent prefetch error (if any) is superseded by the
    // exception already in flight.
    if (prefetch_thread_.joinable()) prefetch_thread_.join();
    prefetch_error_ = nullptr;
    throw;
  }
}

}  // namespace hcc::core
