#include "core/worker.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

#include "fault/errors.hpp"
#include "mf/kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"

namespace hcc::core {

namespace {
// Workers occupy Chrome-trace tracks 1..N; track 0 is the server.
std::uint32_t track_of(std::uint32_t worker_id) { return worker_id + 1; }
}  // namespace

TrainWorker::TrainWorker(std::uint32_t id, std::string device_name,
                         data::RatingMatrix slice,
                         const comm::CommConfig& config, std::uint32_t streams)
    : id_(id),
      device_name_(std::move(device_name)),
      slice_(std::move(slice)),
      streams_(std::max(1u, streams)),
      sparse_(config.sparse),
      backend_(comm::make_backend(config)) {
  if (sparse_) {
    rebuild_touched();
  }
  const std::string base = "worker" + std::to_string(id_) + ".";
  auto& reg = obs::registry();
  hist_pull_ = &reg.histogram(base + "pull_s");
  hist_compute_ = &reg.histogram(base + "compute_s");
  hist_push_ = &reg.histogram(base + "push_s");
  hist_sync_ = &reg.histogram(base + "sync_s");
  counter_updates_ = &reg.counter("simd.sgd_updates");
  obs::trace().set_track_name(track_of(id_),
                              "worker " + std::to_string(id_) + " (" +
                                  device_name_ + ")");
}

void TrainWorker::set_fault_runtime(fault::FaultRuntime* runtime) {
  fault_ = runtime;
  if (runtime != nullptr && runtime->active()) {
    backend_->set_checksum_enabled(true);
    backend_->set_wire_tap([runtime](std::span<std::byte> wire) {
      runtime->injector().tap_wire(wire);
    });
  }
}

void TrainWorker::rebuild_touched() {
  touched_.clear();
  const auto counts = slice_.col_counts();
  for (std::uint32_t i = 0; i < counts.size(); ++i) {
    if (counts[i] > 0) touched_.push_back(i);
  }
}

void TrainWorker::absorb_entries(const std::vector<data::Rating>& entries) {
  if (entries.empty()) return;
  for (const auto& e : entries) slice_.add(e.u, e.i, e.r);
  if (sparse_) rebuild_touched();
}

void TrainWorker::record_phase(double seconds, double obs::PhaseTimes::*field,
                               obs::Histogram* hist) {
  const double s = seconds * stall_factor_;
  measured_.*field += s;
  hist->observe(s);
}

void TrainWorker::transfer_with_retry(std::span<const float> src,
                                      std::span<float> dst,
                                      const comm::Codec& codec) {
  std::uint32_t attempt = 0;
  for (;;) {
    try {
      backend_->transfer(src, dst, codec);
      return;
    } catch (const comm::ChecksumError&) {
      if (fault_ == nullptr) throw;
      fault_->count_checksum_failure();
      if (attempt >= fault_->options().max_retries) {
        throw fault::TransferFailure(id_, attempt + 1);
      }
      // The transfer re-reads `src`, so a retry is idempotent.
      fault_->count_retry();
      const double backoff =
          fault_->options().backoff_base_s * static_cast<double>(1u << attempt);
      if (backoff > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      }
      ++attempt;
    }
  }
}

void TrainWorker::gather_touched(std::span<const float> q,
                                 std::vector<float>& packed,
                                 std::uint32_t k) const {
  packed.resize(touched_.size() * k);
  for (std::size_t t = 0; t < touched_.size(); ++t) {
    const float* src = &q[std::size_t(touched_[t]) * k];
    std::copy(src, src + k, &packed[t * k]);
  }
}

void TrainWorker::scatter_touched(const std::vector<float>& packed,
                                  std::span<float> q,
                                  std::uint32_t k) const {
  for (std::size_t t = 0; t < touched_.size(); ++t) {
    const float* src = &packed[t * k];
    std::copy(src, src + k, &q[std::size_t(touched_[t]) * k]);
  }
}

void TrainWorker::pull(Server& server) {
  if (fault_ != nullptr) fault_->injector().check_phase(id_);
  obs::ScopedSpan span("pull", obs::kPhaseCategory, track_of(id_));
  const std::span<const float> global_q = server.model().q_data();
  if (local_q_.size() != global_q.size()) {
    local_q_.resize(global_q.size());
    snapshot_q_.resize(global_q.size());
    push_staging_.resize(global_q.size());
  }
  if (sparse_) {
    // Strategy 4: only the touched Q rows cross the wire.
    const std::uint32_t k = server.model().k();
    gather_touched(global_q, packed_send_, k);
    packed_recv_.resize(packed_send_.size());
    transfer_with_retry(packed_send_, packed_recv_, server.codec());
    scatter_touched(packed_recv_, local_q_, k);
  } else {
    transfer_with_retry(global_q, local_q_, server.codec());
  }
  // The snapshot is what this worker *received* (post-codec), so the later
  // delta merge cancels the pull's quantization exactly.  Under sparse
  // push the untouched rows copy local (stale) values: their delta is then
  // exactly zero, so they neither travel nor merge.
  std::copy(local_q_.begin(), local_q_.end(), snapshot_q_.begin());
  record_phase(span.stop(), &obs::PhaseTimes::pull_s, hist_pull_);
}

void TrainWorker::compute_chunk(Server& server, std::uint32_t chunk, float lr,
                                float reg_p, float reg_q,
                                util::ThreadPool* pool) {
  assert(chunk < streams_);
  assert(!local_q_.empty() && "pull() must precede compute_chunk()");
  if (fault_ != nullptr) fault_->injector().check_phase(id_);
  obs::ScopedSpan span("compute", obs::kPhaseCategory, track_of(id_));
  span.arg("chunk", std::to_string(chunk));
  mf::FactorModel& model = server.model();
  const std::uint32_t k = model.k();
  const auto entries = slice_.entries();
  const std::size_t per_chunk = (entries.size() + streams_ - 1) / streams_;
  const std::size_t lo = std::min(entries.size(), chunk * per_chunk);
  const std::size_t hi = std::min(entries.size(), lo + per_chunk);

  auto body = [&](std::size_t begin, std::size_t end) {
    for (std::size_t idx = begin; idx < end; ++idx) {
      const auto& e = entries[idx];
      // P row: exclusive to this worker (row grid) -> global in place.
      // Q row: private local copy, merged at push.
      mf::sgd_update_dispatch(model.p(e.u), &local_q_[std::size_t(e.i) * k],
                              k, e.r, lr, reg_p, reg_q);
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(lo, hi, body);
  } else {
    body(lo, hi);
  }
  counter_updates_->add(hi - lo);
  last_chunk_ = chunk;
  record_phase(span.stop(), &obs::PhaseTimes::compute_s, hist_compute_);

  // Divergence guard: a runaway learning rate poisons whole Q rows within
  // one chunk; catch it here, before push spreads it to the server.
  if (fault_ != nullptr && fault_->options().divergence_guard &&
      !mf::all_finite(local_q_)) {
    util::log_kv(util::LogLevel::kWarn, "fault.divergence",
                 {util::kv("worker", id_),
                  util::kv("epoch", fault_->injector().current_epoch())});
    throw fault::DivergenceError(id_, fault_->injector().current_epoch());
  }
}

void TrainWorker::push(Server& server) {
  assert(!local_q_.empty() && "pull() must precede push()");
  if (fault_ != nullptr) {
    fault_->injector().check_phase(id_);
    fault_->injector().begin_push(id_, last_chunk_);
  }
  obs::ScopedSpan span("push", obs::kPhaseCategory, track_of(id_));
  if (sparse_) {
    const std::uint32_t k = server.model().k();
    gather_touched(local_q_, packed_send_, k);
    packed_recv_.resize(packed_send_.size());
    transfer_with_retry(packed_send_, packed_recv_, server.codec());
    // Untouched rows carry the snapshot, so their merge delta is zero.
    std::copy(snapshot_q_.begin(), snapshot_q_.end(), push_staging_.begin());
    scatter_touched(packed_recv_, push_staging_, k);
  } else {
    transfer_with_retry(local_q_, push_staging_, server.codec());
  }
  if (fault_ != nullptr) fault_->injector().end_push();
  record_phase(span.stop(), &obs::PhaseTimes::push_s, hist_push_);

  // The server-side merge is the paper's T_sync term — timed separately
  // and attributed to this worker (the server records its own span).
  util::Stopwatch sync_watch;
  if (!item_weights_.empty()) {
    server.sync_q(push_staging_, snapshot_q_,
                  std::span<const float>(item_weights_));
  } else {
    server.sync_q(push_staging_, snapshot_q_, sync_weight_);
  }
  record_phase(sync_watch.seconds(), &obs::PhaseTimes::sync_s, hist_sync_);
}

}  // namespace hcc::core
