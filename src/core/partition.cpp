#include "core/partition.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace hcc::core {

const char* partition_strategy_name(PartitionStrategy strategy) {
  switch (strategy) {
    case PartitionStrategy::kEven: return "even";
    case PartitionStrategy::kDp0: return "DP0";
    case PartitionStrategy::kDp1: return "DP1";
    case PartitionStrategy::kDp2: return "DP2";
    case PartitionStrategy::kAuto: return "auto";
  }
  return "?";
}

PartitionStrategy partition_strategy_by_name(const std::string& name) {
  if (name == "even") return PartitionStrategy::kEven;
  if (name == "dp0" || name == "DP0") return PartitionStrategy::kDp0;
  if (name == "dp1" || name == "DP1") return PartitionStrategy::kDp1;
  if (name == "dp2" || name == "DP2") return PartitionStrategy::kDp2;
  if (name == "auto") return PartitionStrategy::kAuto;
  throw std::invalid_argument("unknown partition strategy: " + name);
}

void normalize_shares(std::vector<double>& shares) {
  double sum = 0.0;
  for (double s : shares) {
    if (s < 0.0) throw std::invalid_argument("negative share");
    sum += s;
  }
  if (sum <= 0.0) throw std::invalid_argument("all shares are zero");
  for (double& s : shares) s /= sum;
}

std::vector<double> even_partition(std::size_t workers) {
  if (workers == 0) throw std::invalid_argument("no workers");
  return std::vector<double>(workers, 1.0 / static_cast<double>(workers));
}

std::vector<double> dp0_partition(
    const std::vector<double>& independent_times) {
  if (independent_times.empty()) throw std::invalid_argument("no workers");
  std::vector<double> shares(independent_times.size());
  for (std::size_t i = 0; i < shares.size(); ++i) {
    if (independent_times[i] <= 0.0) {
      throw std::invalid_argument("non-positive independent time");
    }
    shares[i] = 1.0 / independent_times[i];
  }
  normalize_shares(shares);
  return shares;
}

Dp1Result dp1_partition(const std::vector<double>& initial_shares,
                        const std::vector<bool>& is_gpu,
                        const ComputeMeasure& measure,
                        const Dp1Options& options) {
  if (initial_shares.size() != is_gpu.size()) {
    throw std::invalid_argument("shares/is_gpu size mismatch");
  }
  const std::size_t p = initial_shares.size();
  std::size_t g = 0;
  for (bool flag : is_gpu) g += flag ? 1 : 0;
  const std::size_t c = p - g;

  Dp1Result result;
  result.shares = initial_shares;
  normalize_shares(result.shares);
  result.measured_seconds = measure(result.shares);
  result.rounds = 1;
  if (c == 0 || g == 0) return result;  // homogeneous class: DP0 stands

  auto class_averages = [&](const std::vector<double>& t) {
    double cpu = 0.0;
    double gpu = 0.0;
    for (std::size_t i = 0; i < p; ++i) {
      (is_gpu[i] ? gpu : cpu) += t[i];
    }
    return std::pair{cpu / static_cast<double>(c),
                     gpu / static_cast<double>(g)};
  };

  auto [t_cpu, t_gpu] = class_averages(result.measured_seconds);
  while (result.rounds < options.max_rounds &&
         std::abs(t_cpu - t_gpu) / std::min(t_cpu, t_gpu) >
             options.tolerance) {
    // Algorithm 1, lines 3-11: move l*delta of time from the slower class
    // to the faster one, translated into shares via each worker's own
    // time-per-share ratio.
    const double l = t_cpu > t_gpu ? 1.0 : -1.0;
    const double delta =
        l * (t_cpu - t_gpu) / static_cast<double>(c + g);  // >= 0
    std::vector<double> next(p);
    for (std::size_t i = 0; i < p; ++i) {
      const double t_i = result.measured_seconds[i];
      if (t_i <= 0.0) {
        next[i] = result.shares[i];
        continue;
      }
      const double adjust = is_gpu[i]
                                ? (t_i + l * static_cast<double>(c) * delta)
                                : (t_i - l * static_cast<double>(g) * delta);
      next[i] = std::max(0.0, result.shares[i] * adjust / t_i);
    }
    normalize_shares(next);
    result.shares = std::move(next);
    result.measured_seconds = measure(result.shares);  // Alg. 1 line 12
    ++result.rounds;
    std::tie(t_cpu, t_gpu) = class_averages(result.measured_seconds);
  }
  return result;
}

std::vector<double> dp2_partition(const std::vector<double>& balanced_shares,
                                  const std::vector<double>& balanced_seconds,
                                  double sync_per_worker_s,
                                  const std::vector<double>& fixed_seconds) {
  if (balanced_shares.size() != balanced_seconds.size()) {
    throw std::invalid_argument("shares/seconds size mismatch");
  }
  const std::size_t p = balanced_shares.size();
  if (p == 0) throw std::invalid_argument("no workers");
  if (sync_per_worker_s < 0.0) {
    throw std::invalid_argument("negative sync time");
  }
  if (!fixed_seconds.empty() && fixed_seconds.size() != p) {
    throw std::invalid_argument("fixed_seconds size mismatch");
  }

  std::vector<double> totals(p);
  double center = 0.0;
  for (std::size_t i = 0; i < p; ++i) {
    totals[i] = balanced_seconds[i] +
                (fixed_seconds.empty() ? 0.0 : fixed_seconds[i]);
    center += totals[i];
  }
  center /= static_cast<double>(p);

  // Rank workers by their balanced finish time: the naturally earliest
  // finisher keeps the earliest Eq. 7 slot (minimal perturbation), ties
  // broken by index so the symmetric case matches the paper exactly.
  std::vector<std::size_t> order(p);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return totals[a] < totals[b];
  });

  // Eq. 7 around the median: worker at rank r should *finish* one sync
  // interval after rank r-1, so the server's merge of each worker hides
  // entirely under the next worker's tail compute (Figure 5, right).
  const double mid = (static_cast<double>(p) - 1.0) / 2.0;
  std::vector<double> shares(p);
  for (std::size_t rank = 0; rank < p; ++rank) {
    const std::size_t i = order[rank];
    const double offset =
        (static_cast<double>(rank) - mid) * sync_per_worker_s;
    const double target_total = center + offset;
    const double target_compute =
        target_total - (fixed_seconds.empty() ? 0.0 : fixed_seconds[i]);
    if (balanced_seconds[i] <= 0.0 || target_compute <= 0.0) {
      shares[i] = balanced_shares[i];
    } else {
      shares[i] = balanced_shares[i] * target_compute / balanced_seconds[i];
    }
  }
  normalize_shares(shares);
  return shares;
}

}  // namespace hcc::core
