#include "serve/snapshot.hpp"

#include "serve/metrics.hpp"

namespace hcc::serve {

void SnapshotRegistry::publish(std::shared_ptr<const ModelSnapshot> snapshot) {
  const std::size_t bytes =
      snapshot != nullptr ? snapshot->store.store_bytes() : 0;
  {
    std::unique_lock lock(mutex_);
    current_ = std::move(snapshot);
  }
  published_.fetch_add(1, std::memory_order_relaxed);
  serve_metrics().store_bytes->set(static_cast<double>(bytes));
}

std::shared_ptr<const ModelSnapshot> SnapshotRegistry::current() const {
  std::shared_lock lock(mutex_);
  return current_;
}

}  // namespace hcc::serve
