#include "serve/engine.hpp"

#include <algorithm>
#include <limits>

#include "serve/metrics.hpp"
#include "simd/dispatch.hpp"
#include "simd/prefetch.hpp"
#include "util/clock.hpp"

namespace hcc::serve {

TopKEngine::TopKEngine(EngineOptions opts) : opts_(opts) {
  if (opts_.block_items == 0) opts_.block_items = 256;
  opts_.block_items = (opts_.block_items + 7u) & ~7u;
}

std::vector<mf::ScoredItem> TopKEngine::top_k(const ModelSnapshot& snapshot,
                                              std::uint32_t user,
                                              std::size_t n,
                                              const mf::SeenIndex* seen) {
  const util::Stopwatch watch;
  std::vector<mf::ScoredItem> result;
  const FactorStore& store = snapshot.store;
  if (user < store.users() && store.k() > 0) {
    const float* user_row = store.p_row_fp32(user);
    if (user_row == nullptr) {
      user_scratch_.resize(store.k());
      store.decode_p_row(user, user_scratch_.data());
      user_row = user_scratch_.data();
    }
    result = scan(store, user_row, n,
                  seen != nullptr ? seen->items(user)
                                  : std::span<const std::uint32_t>{});
  }
  if (opts_.record_metrics) record_query(watch.seconds() * 1e3);
  return result;
}

std::vector<mf::ScoredItem> TopKEngine::top_k_row(
    const ModelSnapshot& snapshot, const float* user_row, std::size_t n,
    std::span<const std::uint32_t> exclude) {
  const util::Stopwatch watch;
  std::vector<mf::ScoredItem> result;
  if (snapshot.store.k() > 0) {
    result = scan(snapshot.store, user_row, n, exclude);
  }
  if (opts_.record_metrics) record_query(watch.seconds() * 1e3);
  return result;
}

std::vector<mf::ScoredItem> TopKEngine::scan(
    const FactorStore& store, const float* user_row, std::size_t n,
    std::span<const std::uint32_t> exclude) {
  const auto& kt = simd::kernels();
  const std::uint32_t k = store.k();
  const std::uint32_t items = store.items();
  const std::uint32_t block = opts_.block_items;
  scores_.resize(block);
  mask_.resize(block / 8);
  const bool fp32_direct = store.q_rows_fp32(0) != nullptr;
  if (!fp32_direct) {
    q_scratch_.resize(static_cast<std::size_t>(block) * k);
  }

  auto worse = [](const mf::ScoredItem& a, const mf::ScoredItem& b) {
    return a.score > b.score;  // heap root = weakest of the kept items
  };
  std::vector<mf::ScoredItem> heap;
  heap.reserve(n + 1);
  std::size_t cursor = 0;  // walks the sorted exclude list in block order
  for (std::uint32_t lo = 0; lo < items; lo += block) {
    const std::uint32_t count = std::min<std::uint32_t>(block, items - lo);
    std::fill(mask_.begin(), mask_.end(), std::uint8_t{0});
    while (cursor < exclude.size() && exclude[cursor] < lo + count) {
      if (exclude[cursor] >= lo) {
        const std::uint32_t off = exclude[cursor] - lo;
        mask_[off / 8] |= static_cast<std::uint8_t>(1u << (off % 8));
      }
      ++cursor;
    }
    // Hint the next block's *encoded* bytes while this one scores; the
    // hardware stream prefetcher follows once demand loads confirm it.
    if (lo + block < items) {
      const auto* next = static_cast<const std::byte*>(store.q_raw(lo + block));
      const std::size_t bytes = std::min<std::size_t>(
          store.q_row_bytes() * 4, store.q_row_bytes() * (items - lo - block));
      for (std::size_t off = 0; off < bytes; off += 64) {
        simd::prefetch_line(next + off);
      }
    }
    const float* q_block;
    if (fp32_direct) {
      q_block = store.q_rows_fp32(lo);
    } else {
      store.decode_q_rows(lo, count, q_scratch_.data());
      q_block = q_scratch_.data();
    }
    kt.score_block(user_row, q_block, k, count, mask_.data(), scores_.data());
    float block_max = -std::numeric_limits<float>::infinity();
    for (std::uint32_t i = 0; i < count; ++i) {
      block_max = std::max(block_max, scores_[i]);
    }
    // Excluded items score -inf, so a full heap whose weakest kept item
    // beats the block maximum skips the whole block.
    if (heap.size() == n && (n == 0 || block_max <= heap.front().score)) {
      continue;
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      if (((mask_[i / 8] >> (i % 8)) & 1u) != 0) continue;
      const float score = scores_[i];
      const std::uint32_t item = lo + i;
      if (heap.size() < n) {
        heap.push_back({item, score});
        std::push_heap(heap.begin(), heap.end(), worse);
      } else if (!heap.empty() && score > heap.front().score) {
        std::pop_heap(heap.begin(), heap.end(), worse);
        heap.back() = {item, score};
        std::push_heap(heap.begin(), heap.end(), worse);
      }
    }
  }
  std::sort_heap(heap.begin(), heap.end(), worse);
  return heap;
}

double snapshot_hit_rate_at_n(const ModelSnapshot& snapshot,
                              const data::RatingMatrix& train,
                              const data::RatingMatrix& test, std::size_t n,
                              float relevant_min) {
  const mf::SeenIndex seen(train);
  TopKEngine engine({.block_items = 256, .record_metrics = false});
  std::size_t trials = 0;
  std::size_t hits = 0;
  std::vector<std::vector<const data::Rating*>> by_user(train.rows());
  for (const auto& e : test.entries()) {
    if (e.r >= relevant_min && e.u < by_user.size()) by_user[e.u].push_back(&e);
  }
  for (std::uint32_t u = 0; u < by_user.size(); ++u) {
    if (by_user[u].empty()) continue;
    const auto recs = engine.top_k(snapshot, u, n, &seen);
    for (const auto* e : by_user[u]) {
      ++trials;
      for (const auto& r : recs) {
        if (r.item == e->i) {
          ++hits;
          break;
        }
      }
    }
  }
  return trials == 0 ? 0.0
                     : static_cast<double>(hits) / static_cast<double>(trials);
}

}  // namespace hcc::serve
