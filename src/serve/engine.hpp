// The top-K scoring engine: one user row against the whole catalog.
//
// The scan walks Q in blocks of `block_items` rows through the dispatched
// `simd::score_block` kernel (8 items per pass, one accumulator each, the
// user row loaded once per feature chunk — the CuMF_SGD batched-dot idiom,
// arXiv:1610.05838), with the seen-item filter fused in as a skip bitmask
// and the next block's encoded bytes prefetched while the current one
// scores.  Quantized stores decode one block into scratch ahead of the
// kernel, so the resident working set stays the compact encoding.  Only
// blocks whose maximum beats the current n-th best touch the bounded heap.
//
// An engine owns mutable scratch and is NOT thread-safe: give each reader
// thread its own (they share the snapshot, which is immutable).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "mf/recommend.hpp"
#include "serve/snapshot.hpp"
#include "util/aligned.hpp"

namespace hcc::serve {

struct EngineOptions {
  /// Q rows scored per kernel call; rounded up to a multiple of 8.  256
  /// rows of k=128 fp32 are 128 KiB — comfortably inside L2 even with the
  /// decode scratch alongside.
  std::uint32_t block_items = 256;
  /// When false, the engine skips the serve.* metric updates (benchmarks
  /// measuring the bare scan).
  bool record_metrics = true;
};

class TopKEngine {
 public:
  explicit TopKEngine(EngineOptions opts = {});

  /// Top `n` unseen items for user `u` of the snapshot, best first.
  /// `seen` may be null (no exclusions); out-of-range users of a null/
  /// empty snapshot get an empty result.
  std::vector<mf::ScoredItem> top_k(const ModelSnapshot& snapshot,
                                    std::uint32_t user, std::size_t n,
                                    const mf::SeenIndex* seen = nullptr);

  /// Same scan for an explicit k-float user row (fold-in users that have
  /// no P row), excluding the sorted item ids in `exclude`.
  std::vector<mf::ScoredItem> top_k_row(
      const ModelSnapshot& snapshot, const float* user_row, std::size_t n,
      std::span<const std::uint32_t> exclude = {});

 private:
  std::vector<mf::ScoredItem> scan(const FactorStore& store,
                                   const float* user_row, std::size_t n,
                                   std::span<const std::uint32_t> exclude);

  EngineOptions opts_;
  util::AlignedFloats user_scratch_;
  util::AlignedFloats q_scratch_;
  std::vector<float> scores_;
  std::vector<std::uint8_t> mask_;
};

/// Engine-based leave-one-out hit rate (mirrors mf::hit_rate_at_n but
/// scored off a snapshot): fraction of test ratings >= `relevant_min`
/// whose item lands in the user's snapshot top-`n`.  Used by the quality
/// parity tests and bench_serving to compare store encodings.
double snapshot_hit_rate_at_n(const ModelSnapshot& snapshot,
                              const data::RatingMatrix& train,
                              const data::RatingMatrix& test, std::size_t n,
                              float relevant_min);

}  // namespace hcc::serve
