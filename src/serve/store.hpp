// Read-only factor store for the serving path: fp32, fp16, or int8.
//
// A snapshot of P/Q is encoded once at publish time and then only read, so
// the store trades decode work for footprint: fp16 halves the bytes the
// top-K scan streams (the scan is memory-bound at MovieLens catalog sizes),
// and int8 quarters them with per-k-block absmax scales — the same
// quantization grid as the PR-8 wire codecs (comm/codec.hpp), reusing their
// dispatched absmax/int8/fp16 kernels.  "Efficient Matrix Factorization on
// Heterogeneous CPU-GPU Systems" (arXiv:2006.15980) keeps read-mostly
// factors in exactly this kind of compact layout.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/aligned.hpp"
#include "util/fp16.hpp"

namespace hcc::serve {

/// Encoding of a published factor snapshot, ordered by footprint.
enum class StoreKind : int {
  kFp32 = 0,  ///< plain copy, byte-identical scores
  kFp16 = 1,  ///< ~2x smaller, <= 1/2048 relative error per factor
  kInt8 = 2,  ///< ~4x smaller, per-64-feature absmax scales
};

/// Lower-case stable name ("fp32", "fp16", "int8").
const char* store_kind_name(StoreKind kind) noexcept;

/// Parses the --store spelling; false (and *out untouched) when `text` is
/// not one of the names above.
bool parse_store_kind(const std::string& text, StoreKind* out) noexcept;

/// int8 scale granularity: one absmax scale per 64 consecutive features of
/// a row (the last block of a row may be shorter).  64 floats = 4 cache
/// lines; fine enough that one hot feature doesn't flatten the rest of the
/// row, coarse enough that scales stay <2% of the payload.
inline constexpr std::uint32_t kScaleBlock = 64;

/// Immutable encoded P/Q pair.  Construction quantizes; afterwards every
/// method is const and safe to call from any number of threads.
class FactorStore {
 public:
  FactorStore() = default;

  /// Encodes `p` (users x k) and `q` (items x k), both row-major.
  FactorStore(StoreKind kind, std::uint32_t users, std::uint32_t items,
              std::uint32_t k, std::span<const float> p,
              std::span<const float> q);

  StoreKind kind() const noexcept { return kind_; }
  std::uint32_t users() const noexcept { return users_; }
  std::uint32_t items() const noexcept { return items_; }
  std::uint32_t k() const noexcept { return k_; }

  /// Decodes user row `u` into `dst[0, k)`.
  void decode_p_row(std::uint32_t u, float* dst) const noexcept;

  /// Decodes item rows [lo, lo+n) into `dst[0, n*k)` (row-major).
  void decode_q_rows(std::uint32_t lo, std::uint32_t n,
                     float* dst) const noexcept;

  /// fp32 fast path: direct pointer to the contiguous rows starting at
  /// `lo`/`u`, or nullptr for the quantized kinds (callers then decode
  /// into scratch).
  const float* q_rows_fp32(std::uint32_t lo) const noexcept;
  const float* p_row_fp32(std::uint32_t u) const noexcept;

  /// Address of the encoded bytes of Q row `lo` and the encoded bytes per
  /// row — the prefetch targets for the scan's next block.
  const void* q_raw(std::uint32_t lo) const noexcept;
  std::size_t q_row_bytes() const noexcept;

  /// Total payload bytes held (factor data + quantization scales) — what
  /// the serve.store_bytes gauge reports.
  std::size_t store_bytes() const noexcept;

 private:
  std::uint32_t scale_blocks() const noexcept {
    return (k_ + kScaleBlock - 1) / kScaleBlock;
  }
  void encode_int8(std::span<const float> src, std::vector<std::int8_t>* data,
                   std::vector<float>* scales) const;
  void decode_int8_rows(const std::vector<std::int8_t>& data,
                        const std::vector<float>& scales, std::uint32_t lo,
                        std::uint32_t n, float* dst) const noexcept;

  StoreKind kind_ = StoreKind::kFp32;
  std::uint32_t users_ = 0;
  std::uint32_t items_ = 0;
  std::uint32_t k_ = 0;
  // Exactly one pair below is populated, per kind_.
  util::AlignedFloats p32_, q32_;
  std::vector<util::Half> p16_, q16_;
  std::vector<std::int8_t> p8_, q8_;
  std::vector<float> p_scales_, q_scales_;  // row-major, scale_blocks() per row
};

}  // namespace hcc::serve
