// The serve.* metric family (documented in docs/observability.md):
//
//   serve.queries             counter  top-K queries answered
//   serve.latency_ms          histogram per-query wall milliseconds
//   serve.qps                 gauge    queries/s over the caller's window
//   serve.p50_ms / p99_ms     gauge    interpolated from the histogram
//   serve.snapshot_age_epochs gauge    training epochs since last publish
//   serve.store_bytes         gauge    payload bytes of the live snapshot
//
// Handles are resolved once into a static struct (the registry's lookup is
// mutex-guarded); the per-query path is two relaxed atomic adds.
#pragma once

#include "obs/metrics.hpp"

namespace hcc::serve {

struct ServeMetrics {
  obs::Counter* queries;
  obs::Histogram* latency_ms;
  obs::Gauge* qps;
  obs::Gauge* p50_ms;
  obs::Gauge* p99_ms;
  obs::Gauge* snapshot_age_epochs;
  obs::Gauge* store_bytes;
};

/// The cached serve.* handles (created on first use).
ServeMetrics& serve_metrics();

/// Millisecond bucket bounds for serve.latency_ms: 0.5 us to 200 ms.
const std::vector<double>& serve_latency_buckets();

/// One answered query: bumps serve.queries, observes serve.latency_ms.
void record_query(double latency_ms);

/// Quantile (q in [0, 1]) linearly interpolated inside the histogram
/// bucket that crosses it; the overflow bucket clamps to the last bound.
/// 0 when the histogram is empty.
double histogram_quantile(const obs::Histogram& h, double q);

/// Refreshes serve.p50_ms / serve.p99_ms from serve.latency_ms, and
/// serve.qps when `elapsed_s` > 0 (queries / elapsed_s over the caller's
/// measurement window).
void update_latency_gauges(double elapsed_s = 0.0);

}  // namespace hcc::serve
