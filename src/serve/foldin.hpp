// Cold-start fold-in: a user row for someone training never saw.
//
// Given a handful of ratings r_s on items S from a new user, the best
// factor row under the frozen snapshot Q is the ridge least-squares
// solution
//
//   p* = argmin_p  sum_{s in S} (r_s - <p, q_s>)^2 + reg * ||p||^2
//      = (Q_S^T Q_S + reg I)^{-1} Q_S^T r
//
// — one k x k symmetric positive-definite solve, no training interaction,
// answered straight off the serving snapshot.  The normal equations are
// accumulated and factorized in double (k is small; the conditioning risk
// is the few-ratings case, exactly where fold-in runs).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "serve/store.hpp"

namespace hcc::serve {

/// One observed rating of the fold-in user.
struct FoldInRating {
  std::uint32_t item = 0;
  float rating = 0.0f;
};

/// The ridge solution above as k floats.  Ratings on items outside the
/// store's catalog are ignored; with no usable ratings the zero row comes
/// back (score 0 everywhere — the honest cold answer).  `reg` values <=
/// 0 are clamped to a tiny positive ridge so the solve stays definite.
std::vector<float> fold_in(const FactorStore& store,
                           std::span<const FoldInRating> ratings, float reg);

}  // namespace hcc::serve
