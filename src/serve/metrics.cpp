#include "serve/metrics.hpp"

namespace hcc::serve {

const std::vector<double>& serve_latency_buckets() {
  static const std::vector<double> bounds{
      0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2,
      0.5,    1.0,   2.0,   5.0,   10.0, 20.0, 50.0, 100.0, 200.0};
  return bounds;
}

ServeMetrics& serve_metrics() {
  static ServeMetrics m = [] {
    auto& reg = obs::registry();
    return ServeMetrics{
        &reg.counter("serve.queries"),
        &reg.histogram("serve.latency_ms", serve_latency_buckets()),
        &reg.gauge("serve.qps"),
        &reg.gauge("serve.p50_ms"),
        &reg.gauge("serve.p99_ms"),
        &reg.gauge("serve.snapshot_age_epochs"),
        &reg.gauge("serve.store_bytes"),
    };
  }();
  return m;
}

void record_query(double latency_ms) {
  auto& m = serve_metrics();
  m.queries->add();
  m.latency_ms->observe(latency_ms);
}

double histogram_quantile(const obs::Histogram& h, double q) {
  const std::uint64_t total = h.count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto counts = h.bucket_counts();
  const auto& bounds = h.bounds();
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const double in_bucket = static_cast<double>(counts[b]);
    if (cumulative + in_bucket < target || in_bucket == 0.0) {
      cumulative += in_bucket;
      continue;
    }
    if (b >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
    const double lo = b == 0 ? 0.0 : bounds[b - 1];
    const double hi = bounds[b];
    return lo + (hi - lo) * ((target - cumulative) / in_bucket);
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

void update_latency_gauges(double elapsed_s) {
  auto& m = serve_metrics();
  m.p50_ms->set(histogram_quantile(*m.latency_ms, 0.50));
  m.p99_ms->set(histogram_quantile(*m.latency_ms, 0.99));
  if (elapsed_s > 0.0) {
    m.qps->set(static_cast<double>(m.queries->value()) / elapsed_s);
  }
}

}  // namespace hcc::serve
