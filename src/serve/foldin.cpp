#include "serve/foldin.hpp"

#include <cmath>

namespace hcc::serve {

std::vector<float> fold_in(const FactorStore& store,
                           std::span<const FoldInRating> ratings, float reg) {
  const std::uint32_t k = store.k();
  std::vector<float> row(k, 0.0f);
  if (k == 0) return row;

  // Normal equations in double: A = Q_S^T Q_S + reg I (k x k, row-major
  // but symmetric), b = Q_S^T r.
  std::vector<double> a(static_cast<std::size_t>(k) * k, 0.0);
  std::vector<double> b(k, 0.0);
  std::vector<float> q_row(k);
  std::size_t used = 0;
  for (const auto& obs : ratings) {
    if (obs.item >= store.items()) continue;
    store.decode_q_rows(obs.item, 1, q_row.data());
    for (std::uint32_t i = 0; i < k; ++i) {
      const double qi = q_row[i];
      b[i] += qi * obs.rating;
      for (std::uint32_t j = i; j < k; ++j) {
        a[static_cast<std::size_t>(i) * k + j] += qi * q_row[j];
      }
    }
    ++used;
  }
  if (used == 0) return row;

  const double ridge = reg > 0.0f ? reg : 1e-6;
  for (std::uint32_t i = 0; i < k; ++i) {
    a[static_cast<std::size_t>(i) * k + i] += ridge;
  }

  // Cholesky A = L L^T on the upper triangle accumulated above (A is
  // symmetric; L is written into the lower triangle).
  for (std::uint32_t i = 0; i < k; ++i) {
    for (std::uint32_t j = 0; j <= i; ++j) {
      // j <= i, so the stored upper-triangle entry is a[j][i].
      double sum = a[static_cast<std::size_t>(j) * k + i];
      for (std::uint32_t t = 0; t < j; ++t) {
        sum -= a[static_cast<std::size_t>(i) * k + t] *
               a[static_cast<std::size_t>(j) * k + t];
      }
      if (i == j) {
        // reg > 0 keeps A definite; guard anyway so a degenerate store
        // cannot produce NaNs.
        a[static_cast<std::size_t>(i) * k + j] =
            std::sqrt(sum > 1e-12 ? sum : 1e-12);
      } else {
        a[static_cast<std::size_t>(i) * k + j] =
            sum / a[static_cast<std::size_t>(j) * k + j];
      }
    }
  }

  // Forward substitution L y = b, then back substitution L^T p = y.
  for (std::uint32_t i = 0; i < k; ++i) {
    double sum = b[i];
    for (std::uint32_t t = 0; t < i; ++t) {
      sum -= a[static_cast<std::size_t>(i) * k + t] * b[t];
    }
    b[i] = sum / a[static_cast<std::size_t>(i) * k + i];
  }
  for (std::uint32_t ii = k; ii > 0; --ii) {
    const std::uint32_t i = ii - 1;
    double sum = b[i];
    for (std::uint32_t t = i + 1; t < k; ++t) {
      sum -= a[static_cast<std::size_t>(t) * k + i] * b[t];
    }
    b[i] = sum / a[static_cast<std::size_t>(i) * k + i];
  }

  for (std::uint32_t i = 0; i < k; ++i) row[i] = static_cast<float>(b[i]);
  return row;
}

}  // namespace hcc::serve
