// RCU-style model snapshots: training publishes, serving reads.
//
// The striped Server owns the live P/Q that workers mutate; queries must
// never see a half-written epoch and must never make training wait.  So
// training encodes an immutable FactorStore at each epoch boundary (workers
// are parked at the barrier, rows are quiescent) and swaps it in here as a
// `shared_ptr<const ModelSnapshot>`.  Readers grab a reference and keep
// scoring against it even while newer epochs land; the old snapshot is
// freed when its last reader drops it — classic read-copy-update without a
// grace period, the shared_ptr control block being the reclamation.
//
// The swap itself is guarded by a shared_mutex rather than
// std::atomic<shared_ptr> because libstdc++ only grew the latter in GCC 12
// and CI still builds on older toolchains: readers take the shared side
// only long enough to copy one pointer (no allocation, no contention among
// themselves), and the writer takes the exclusive side once per published
// epoch for the same single pointer store.  Training never touches the
// Server's stripe locks from here, and readers never touch them at all.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>

#include "serve/store.hpp"

namespace hcc::serve {

/// One immutable published model: the epoch it completed plus the encoded
/// factors.  Never mutated after publish — safe to share across threads.
struct ModelSnapshot {
  std::uint32_t epoch = 0;
  FactorStore store;
};

/// The publish/subscribe point between the trainer and the query threads.
class SnapshotRegistry {
 public:
  /// Replaces the current snapshot.  Called by the training side only;
  /// also refreshes the serve.store_bytes gauge.
  void publish(std::shared_ptr<const ModelSnapshot> snapshot);

  /// The latest published snapshot (nullptr before the first publish).
  /// The returned reference stays valid for as long as the caller holds
  /// it, regardless of later publishes.
  std::shared_ptr<const ModelSnapshot> current() const;

  /// Number of publish() calls so far.
  std::uint64_t published() const noexcept {
    return published_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::shared_mutex mutex_;
  std::shared_ptr<const ModelSnapshot> current_;
  std::atomic<std::uint64_t> published_{0};
};

}  // namespace hcc::serve
