#include "serve/store.hpp"

#include <algorithm>

#include "simd/dispatch.hpp"

namespace hcc::serve {

const char* store_kind_name(StoreKind kind) noexcept {
  switch (kind) {
    case StoreKind::kFp32:
      return "fp32";
    case StoreKind::kFp16:
      return "fp16";
    case StoreKind::kInt8:
      return "int8";
  }
  return "fp32";
}

bool parse_store_kind(const std::string& text, StoreKind* out) noexcept {
  if (text == "fp32") {
    *out = StoreKind::kFp32;
  } else if (text == "fp16") {
    *out = StoreKind::kFp16;
  } else if (text == "int8") {
    *out = StoreKind::kInt8;
  } else {
    return false;
  }
  return true;
}

FactorStore::FactorStore(StoreKind kind, std::uint32_t users,
                         std::uint32_t items, std::uint32_t k,
                         std::span<const float> p, std::span<const float> q)
    : kind_(kind), users_(users), items_(items), k_(k) {
  const auto& kt = simd::kernels();
  switch (kind_) {
    case StoreKind::kFp32:
      p32_.assign(p.begin(), p.end());
      q32_.assign(q.begin(), q.end());
      break;
    case StoreKind::kFp16:
      p16_.resize(p.size());
      q16_.resize(q.size());
      kt.fp16_encode(p.data(), p16_.data(), p.size());
      kt.fp16_encode(q.data(), q16_.data(), q.size());
      break;
    case StoreKind::kInt8:
      encode_int8(p, &p8_, &p_scales_);
      encode_int8(q, &q8_, &q_scales_);
      break;
  }
}

void FactorStore::encode_int8(std::span<const float> src,
                              std::vector<std::int8_t>* data,
                              std::vector<float>* scales) const {
  const auto& kt = simd::kernels();
  const std::size_t rows = k_ > 0 ? src.size() / k_ : 0;
  const std::uint32_t blocks = scale_blocks();
  data->resize(src.size());
  scales->resize(rows * blocks);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = src.data() + r * k_;
    for (std::uint32_t b = 0; b < blocks; ++b) {
      const std::uint32_t off = b * kScaleBlock;
      const std::uint32_t elems = std::min(kScaleBlock, k_ - off);
      const float a = kt.absmax(row + off, elems);
      const float scale = a / 127.0f;
      const float inv_scale = a > 0.0f ? 127.0f / a : 0.0f;
      (*scales)[r * blocks + b] = scale;
      kt.int8_encode(row + off, inv_scale, data->data() + r * k_ + off, elems);
    }
  }
}

void FactorStore::decode_int8_rows(const std::vector<std::int8_t>& data,
                                   const std::vector<float>& scales,
                                   std::uint32_t lo, std::uint32_t n,
                                   float* dst) const noexcept {
  const std::uint32_t blocks = scale_blocks();
  for (std::uint32_t r = 0; r < n; ++r) {
    const std::int8_t* row = data.data() + static_cast<std::size_t>(lo + r) * k_;
    const float* row_scales =
        scales.data() + static_cast<std::size_t>(lo + r) * blocks;
    float* out = dst + static_cast<std::size_t>(r) * k_;
    for (std::uint32_t b = 0; b < blocks; ++b) {
      const std::uint32_t off = b * kScaleBlock;
      const std::uint32_t elems = std::min(kScaleBlock, k_ - off);
      const float scale = row_scales[b];
      for (std::uint32_t f = 0; f < elems; ++f) {
        out[off + f] = static_cast<float>(row[off + f]) * scale;
      }
    }
  }
}

void FactorStore::decode_p_row(std::uint32_t u, float* dst) const noexcept {
  const std::size_t off = static_cast<std::size_t>(u) * k_;
  switch (kind_) {
    case StoreKind::kFp32:
      for (std::uint32_t f = 0; f < k_; ++f) dst[f] = p32_[off + f];
      break;
    case StoreKind::kFp16:
      simd::kernels().fp16_decode(p16_.data() + off, dst, k_);
      break;
    case StoreKind::kInt8:
      decode_int8_rows(p8_, p_scales_, u, 1, dst);
      break;
  }
}

void FactorStore::decode_q_rows(std::uint32_t lo, std::uint32_t n,
                                float* dst) const noexcept {
  const std::size_t off = static_cast<std::size_t>(lo) * k_;
  const std::size_t count = static_cast<std::size_t>(n) * k_;
  switch (kind_) {
    case StoreKind::kFp32:
      for (std::size_t f = 0; f < count; ++f) dst[f] = q32_[off + f];
      break;
    case StoreKind::kFp16:
      simd::kernels().fp16_decode(q16_.data() + off, dst, count);
      break;
    case StoreKind::kInt8:
      decode_int8_rows(q8_, q_scales_, lo, n, dst);
      break;
  }
}

const float* FactorStore::q_rows_fp32(std::uint32_t lo) const noexcept {
  if (kind_ != StoreKind::kFp32) return nullptr;
  return q32_.data() + static_cast<std::size_t>(lo) * k_;
}

const float* FactorStore::p_row_fp32(std::uint32_t u) const noexcept {
  if (kind_ != StoreKind::kFp32) return nullptr;
  return p32_.data() + static_cast<std::size_t>(u) * k_;
}

const void* FactorStore::q_raw(std::uint32_t lo) const noexcept {
  const std::size_t off = static_cast<std::size_t>(lo) * k_;
  switch (kind_) {
    case StoreKind::kFp32:
      return q32_.data() + off;
    case StoreKind::kFp16:
      return q16_.data() + off;
    case StoreKind::kInt8:
      return q8_.data() + off;
  }
  return nullptr;
}

std::size_t FactorStore::q_row_bytes() const noexcept {
  switch (kind_) {
    case StoreKind::kFp32:
      return static_cast<std::size_t>(k_) * sizeof(float);
    case StoreKind::kFp16:
      return static_cast<std::size_t>(k_) * sizeof(util::Half);
    case StoreKind::kInt8:
      return static_cast<std::size_t>(k_) * sizeof(std::int8_t);
  }
  return 0;
}

std::size_t FactorStore::store_bytes() const noexcept {
  switch (kind_) {
    case StoreKind::kFp32:
      return (p32_.size() + q32_.size()) * sizeof(float);
    case StoreKind::kFp16:
      return (p16_.size() + q16_.size()) * sizeof(util::Half);
    case StoreKind::kInt8:
      return p8_.size() + q8_.size() +
             (p_scales_.size() + q_scales_.size()) * sizeof(float);
  }
  return 0;
}

}  // namespace hcc::serve
