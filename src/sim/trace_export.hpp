// Export of epoch timings to CSV (for plotting the Figure 5/8 timelines
// and the Figure 7/9 series outside this repo) and to Chrome-trace JSON
// (chrome://tracing) — fed by either simulated EpochTimings or the
// measured records the instrumented runtime emits in the same shape.
#pragma once

#include <string>
#include <vector>

#include "obs/span.hpp"
#include "sim/timing.hpp"

namespace hcc::sim {

/// Writes one row per worker: worker, device, pull_s, compute_s, push_s,
/// sync_s, finish_s, sync_end_s — plus a trailing "epoch" summary row.
/// Returns false on IO failure.
bool export_epoch_csv(const EpochTiming& timing,
                      const std::vector<std::string>& worker_names,
                      const std::string& path);

/// Writes a generic series: one row per (x, y...) tuple with the given
/// column names.  Used by benches' --csv flags.
bool export_series_csv(const std::vector<std::string>& columns,
                       const std::vector<std::vector<double>>& rows,
                       const std::string& path);

/// Reconstructs one epoch's timeline as Chrome-trace events: per worker a
/// `pull` / `compute` / `push` slice chain on track w+1 and its server
/// `sync` slice on track 0, offset by `t0_us`.  Durations come straight
/// from the WorkerTiming phase totals; instants use finish_s / sync_end_s
/// when the timing carries them and fall back to a contiguous
/// pull->compute->push chain otherwise (hand-built or measured records).
std::vector<obs::TraceEvent> epoch_trace_events(
    const EpochTiming& timing, const std::vector<std::string>& worker_names,
    double t0_us = 0.0);

/// Writes one epoch as a Chrome-trace JSON document (chrome://tracing).
bool export_epoch_chrome(const EpochTiming& timing,
                         const std::vector<std::string>& worker_names,
                         const std::string& path);

/// Writes consecutive epochs into one trace, each offset by the cumulative
/// epoch_s of its predecessors (Figure 5-style multi-epoch timeline).
bool export_epochs_chrome(const std::vector<EpochTiming>& epochs,
                          const std::vector<std::string>& worker_names,
                          const std::string& path);

}  // namespace hcc::sim
