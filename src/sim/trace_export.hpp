// Export of epoch timings to CSV (for plotting the Figure 5/8 timelines
// and the Figure 7/9 series outside this repo).
#pragma once

#include <string>
#include <vector>

#include "sim/timing.hpp"

namespace hcc::sim {

/// Writes one row per worker: worker, device, pull_s, compute_s, push_s,
/// sync_s, finish_s, sync_end_s — plus a trailing "epoch" summary row.
/// Returns false on IO failure.
bool export_epoch_csv(const EpochTiming& timing,
                      const std::vector<std::string>& worker_names,
                      const std::string& path);

/// Writes a generic series: one row per (x, y...) tuple with the given
/// column names.  Used by benches' --csv flags.
bool export_series_csv(const std::vector<std::string>& columns,
                       const std::vector<std::vector<double>>& rows,
                       const std::string& path);

}  // namespace hcc::sim
