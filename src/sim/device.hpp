// Virtual device descriptions.
//
// This machine has no GPUs (and CPU counts differ from the paper's testbed),
// so every experiment that reports *time* runs against virtual devices whose
// parameters are data, calibrated from the paper's own measurements:
//   - per-dataset SGD update rates ("computing power") from Table 4,
//   - runtime memory bandwidths and their assignment-size drift from Table 2,
//   - bus types/bandwidths from Section 4.1 (PCIe 3.0 x16, Intel UPI),
//   - prices from Figure 3(b).
// Unknown device/dataset combinations fall back to an analytic model
// (perf_model.hpp) built from the paper's Eq. 2 cost terms.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace hcc::sim {

enum class DeviceClass { kCpu, kGpu };

/// Interconnect between a worker device and the server CPU.
enum class BusKind { kLocal, kUpi, kPcie3x16 };

/// Returns the bus's peak bandwidth in GB/s (Section 2.2's numbers).
double bus_bandwidth_gbs(BusKind kind);

/// Measured update rate (ratings/s) of a device running one of the paper's
/// datasets alone ("IW" = independent worker).
struct CalibratedRate {
  std::string dataset;  ///< base dataset name ("netflix", "r1", ...)
  double updates_per_s = 0.0;
};

/// A virtual CPU or GPU.
struct DeviceSpec {
  std::string name;
  DeviceClass cls = DeviceClass::kCpu;
  std::uint32_t threads = 1;   ///< configured compute threads (CPU) / SM threads (GPU)

  // --- compute model ---------------------------------------------------
  /// Effective compute throughput P_i (GFLOP/s) for the 7k/P_i term.
  double compute_gflops = 100.0;
  /// Effective (cache-inclusive) memory bandwidth B_i (GB/s) for the
  /// (16k+4)/B_i term of Eq. 2; used by the analytic fallback.
  double effective_bandwidth_gbs = 500.0;
  /// Last-level cache size; drives the analytic cache-efficiency factor.
  double cache_mb = 22.0;
  /// How strongly working-set overflow hurts this device (CPUs ~1, GPUs
  /// ~0.15: latency-hiding makes GPUs much less cache-sensitive).
  double cache_sensitivity = 1.0;
  /// Table 4 measurements; preferred over the analytic model when the
  /// dataset matches.
  std::vector<CalibratedRate> calibrated_rates;

  // --- memory system (Table 2) -----------------------------------------
  /// Runtime memory bandwidth measured while the device processes the whole
  /// dataset alone (Table 2 "IW" row), GB/s.
  double mem_bandwidth_gbs = 60.0;
  /// Relative bandwidth gain at vanishing assignment size (Table 2 shows
  /// GPU bandwidth creeping up under DP0's smaller assignments; CPUs are
  /// flat).  B(share) = mem_bandwidth * (1 + drift * (1 - share)).
  double bandwidth_drift = 0.0;
  /// Relative *update-rate* gain at vanishing assignment size.  Larger than
  /// the raw bandwidth drift for GPUs (smaller working sets also improve
  /// cache hit rate and occupancy); this is the assignment-size dependence
  /// DP0 cannot see and Algorithm 1 exists to compensate (Section 3.3).
  /// rate(share) = iw_rate * (1 + compute_drift * (1 - share)).
  double compute_drift = 0.0;

  // --- interconnect -----------------------------------------------------
  BusKind bus = BusKind::kPcie3x16;
  /// Copy-engine streams usable for async computing-transmission
  /// (Strategy 3).  1 means no overlap capability.
  std::uint32_t copy_streams = 1;

  /// Fixed per-epoch management cost: task launch, thread-pool wake-up,
  /// stream setup, epoch barriers (GPUs pay more: kernel launches).  This
  /// is what keeps collaborative utilization below 100% on compute-light
  /// epochs — Table 4's 86-88% ceilings.
  double epoch_overhead_s = 0.0015;

  // --- catalogue --------------------------------------------------------
  double price_usd = 0.0;  ///< Figure 3(b)

  /// Calibrated IW rate for `dataset_base_name` if this device was measured
  /// on it (Table 4), otherwise nullopt.
  std::optional<double> calibrated_rate(const std::string& dataset_base_name) const;
};

/// Strips a scale suffix: "netflix@0.05" -> "netflix".  Scaled synthetic
/// datasets share the base dataset's calibration (rates are per-update).
std::string dataset_base_name(const std::string& dataset_name);

/// The paper's testbed devices (Section 4.1), with Table 4 calibration:
DeviceSpec xeon_6242_24t();  ///< CPU_1: full 24 threads
DeviceSpec xeon_6242_16t();  ///< CPU_0 at 16 threads (overall-perf config)
DeviceSpec xeon_6242_10t();  ///< CPU_0 at 10 threads ("6242l", heterogeneity config)
DeviceSpec rtx_2080();       ///< GPU_1
DeviceSpec rtx_2080s();      ///< GPU_0
DeviceSpec tesla_v100();     ///< Figure 3 comparison only

/// Looks a preset up by name ("6242-24T", "6242-16T", "6242-10T", "2080",
/// "2080S", "V100"); throws std::invalid_argument otherwise.
DeviceSpec device_by_name(const std::string& name);

}  // namespace hcc::sim
