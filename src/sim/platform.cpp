#include "sim/platform.hpp"

#include <stdexcept>

#include "sim/perf_model.hpp"

namespace hcc::sim {

double PlatformSpec::total_price_usd() const {
  double total = 0.0;
  bool server_counted = false;
  for (const auto& w : workers) {
    total += w.price_usd;
    if (w.bus == BusKind::kLocal) server_counted = true;
  }
  if (!server_counted) total += 2700.0;  // a 6242 hosting the server
  return total;
}

double PlatformSpec::ideal_update_rate(const DatasetShape& shape) const {
  double total = 0.0;
  for (const auto& w : workers) total += iw_update_rate(w, shape);
  return total;
}

PlatformSpec paper_workstation_overall() {
  PlatformSpec p;
  p.name = "workstation-16T";
  p.server = ServerSpec{};
  p.workers = {xeon_6242_24t(), xeon_6242_16t(), rtx_2080(), rtx_2080s()};
  return p;
}

PlatformSpec paper_workstation_hetero() {
  PlatformSpec p;
  p.name = "workstation-10T";
  p.server = ServerSpec{};
  p.workers = {rtx_2080s(), xeon_6242_24t(), rtx_2080(), xeon_6242_10t()};
  return p;
}

PlatformSpec single_device(const DeviceSpec& device) {
  PlatformSpec p;
  p.name = device.name;
  p.server = ServerSpec{};
  p.workers = {device};
  return p;
}

PlatformSpec combo(const std::string& name,
                   const std::vector<std::string>& device_names) {
  PlatformSpec p;
  p.name = name;
  p.server = ServerSpec{};
  for (const auto& n : device_names) p.workers.push_back(device_by_name(n));
  return p;
}

double LinkSpec::rtt_s(std::size_t bytes) const {
  const double sustained = bandwidth_gbs * efficiency * 1e9;
  const double serialize_s =
      sustained > 0.0 ? static_cast<double>(bytes) / sustained : 0.0;
  return 2.0 * latency_s + serialize_s;
}

LinkSpec link_local() { return LinkSpec{"local", 16.0, 0.5e-6, 0.9}; }

LinkSpec link_100gbe() { return LinkSpec{"100GbE", 12.5, 10e-6, 0.8}; }

LinkSpec link_10gbe() { return LinkSpec{"10GbE", 1.25, 50e-6, 0.7}; }

LinkSpec link_1gbe() { return LinkSpec{"1GbE", 0.125, 100e-6, 0.7}; }

LinkSpec link_ib_hdr() { return LinkSpec{"IB-HDR", 25.0, 1e-6, 0.85}; }

LinkSpec link_by_name(const std::string& name) {
  if (name == "local") return link_local();
  if (name == "100GbE") return link_100gbe();
  if (name == "10GbE") return link_10gbe();
  if (name == "1GbE") return link_1gbe();
  if (name == "IB-HDR") return link_ib_hdr();
  throw std::invalid_argument("unknown link preset '" + name +
                              "' (local, 100GbE, 10GbE, 1GbE, IB-HDR)");
}

}  // namespace hcc::sim
