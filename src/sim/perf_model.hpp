// Performance model of a virtual device running SGD-based MF.
//
// Primary path: the device's calibrated Table 4 rate for the dataset, scaled
// by an assignment-size drift derived from Table 2 (smaller assignments see
// slightly higher memory bandwidth, plus a cache-locality gain because a row
// grid shrinks the worker's P working set).
//
// Fallback path (unknown device/dataset pairs): the paper's Eq. 2 cost per
// update, 7k/P_i + (16k+4)/B_i, de-rated by a cache-efficiency factor when
// the factor-matrix working set overflows the device's cache.
#pragma once

#include <cstdint>
#include <string>

#include "sim/device.hpp"

namespace hcc::sim {

/// The dataset features the model needs (decoupled from data::DatasetSpec so
/// sim does not depend on generator details).
struct DatasetShape {
  std::string name;  ///< used for calibration lookup (base name, see device.hpp)
  std::uint64_t m = 0;
  std::uint64_t n = 0;
  std::uint64_t nnz = 0;
  std::uint32_t k = 128;
};

/// Updates/s when the device processes the whole dataset alone ("IW").
double iw_update_rate(const DeviceSpec& device, const DatasetShape& shape);

/// Updates/s when the device is assigned `share` (0, 1] of the ratings under
/// a row grid.  share = 1 reduces to iw_update_rate.  The direction of the
/// share dependence follows the device's compute_drift sign: GPUs speed up
/// at smaller assignments (cache/occupancy), CPUs slow down slightly (their
/// fixed threading overheads amortize over less data).  This class-
/// structured drift is what DP0 cannot see and Algorithm 1 compensates.
double update_rate(const DeviceSpec& device, const DatasetShape& shape,
                   double share);

/// Seconds of pure computation to process `share` of the dataset once.
double compute_seconds(const DeviceSpec& device, const DatasetShape& shape,
                       double share);

/// Runtime memory bandwidth (GB/s) at the given share — regenerates Table 2:
/// mem_bandwidth(dev, 1.0) is the "IW" row, mem_bandwidth(dev, dp0_share)
/// the "DP0" row.
double mem_bandwidth(const DeviceSpec& device, double share);

/// Analytic per-update seconds from Eq. 2 terms (exposed for tests and for
/// documenting the fallback): 7k/P + (16k+4)/B_eff, divided by the cache
/// efficiency factor.
double analytic_update_seconds(const DeviceSpec& device,
                               const DatasetShape& shape, double share);

/// Cache-efficiency in (0, 1]: 1 when the working set (full Q + the
/// assigned share of P) fits in cache, decaying logarithmically with
/// overflow, scaled by the device's cache_sensitivity.
double cache_efficiency(const DeviceSpec& device, const DatasetShape& shape,
                        double share);

}  // namespace hcc::sim
