#include "sim/trace_export.hpp"

#include <algorithm>

#include "obs/chrome_trace.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace hcc::sim {

namespace {

constexpr std::uint32_t kServerTrack = 0;

std::map<std::uint32_t, std::string> trace_track_names(
    std::size_t workers, const std::vector<std::string>& worker_names) {
  std::map<std::uint32_t, std::string> tracks;
  tracks[kServerTrack] = "server (sync)";
  for (std::size_t w = 0; w < workers; ++w) {
    const std::string device =
        w < worker_names.size() ? worker_names[w] : "";
    tracks[static_cast<std::uint32_t>(w) + 1] =
        "worker " + std::to_string(w) + (device.empty() ? "" : " (" + device + ")");
  }
  return tracks;
}

}  // namespace

bool export_epoch_csv(const EpochTiming& timing,
                      const std::vector<std::string>& worker_names,
                      const std::string& path) {
  util::CsvWriter csv(path, {"worker", "device", "pull_s", "compute_s",
                             "push_s", "sync_s", "finish_s", "sync_end_s"});
  if (!csv.ok()) return false;
  for (std::size_t w = 0; w < timing.workers.size(); ++w) {
    const auto& wt = timing.workers[w];
    csv.row({std::to_string(w),
             w < worker_names.size() ? worker_names[w] : "",
             util::Table::num(wt.pull_s, 9), util::Table::num(wt.compute_s, 9),
             util::Table::num(wt.push_s, 9), util::Table::num(wt.sync_s, 9),
             util::Table::num(wt.finish_s, 9),
             util::Table::num(wt.sync_end_s, 9)});
  }
  csv.row({"epoch", "", "", "", "", util::Table::num(timing.server_busy_s, 9),
           "", util::Table::num(timing.epoch_s, 9)});
  return true;
}

bool export_series_csv(const std::vector<std::string>& columns,
                       const std::vector<std::vector<double>>& rows,
                       const std::string& path) {
  util::CsvWriter csv(path, columns);
  if (!csv.ok()) return false;
  for (const auto& row : rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (double v : row) cells.push_back(util::Table::num(v, 9));
    csv.row(cells);
  }
  return true;
}

std::vector<obs::TraceEvent> epoch_trace_events(
    const EpochTiming& timing, const std::vector<std::string>& worker_names,
    double t0_us) {
  (void)worker_names;  // names travel as track metadata, not per event
  std::vector<obs::TraceEvent> events;
  auto slice = [&](const char* name, const char* cat, std::uint32_t track,
                   double start_s, double dur_s) {
    if (dur_s <= 0.0) return;
    obs::TraceEvent ev;
    ev.name = name;
    ev.cat = cat;
    ev.track = track;
    ev.ts_us = t0_us + std::max(0.0, start_s) * 1e6;
    ev.dur_us = dur_s * 1e6;
    events.push_back(std::move(ev));
  };
  for (std::size_t w = 0; w < timing.workers.size(); ++w) {
    const WorkerTiming& t = timing.workers[w];
    const std::uint32_t track = static_cast<std::uint32_t>(w) + 1;
    const double compute_start = t.pull_s;
    // Prefer the engine's completion instants; measured records carry only
    // phase totals, so chain the phases contiguously instead.
    const double push_start = t.finish_s > 0.0
                                  ? t.finish_s - t.push_s
                                  : compute_start + t.compute_s;
    slice("pull", obs::kPhaseCategory, track, 0.0, t.pull_s);
    slice("compute", obs::kPhaseCategory, track, compute_start, t.compute_s);
    slice("push", obs::kPhaseCategory, track, push_start, t.push_s);
    const double sync_start = t.sync_end_s > 0.0
                                  ? t.sync_end_s - t.sync_s
                                  : push_start + t.push_s;
    slice("sync", obs::kPhaseCategory, kServerTrack, sync_start, t.sync_s);
  }
  return events;
}

bool export_epoch_chrome(const EpochTiming& timing,
                         const std::vector<std::string>& worker_names,
                         const std::string& path) {
  return obs::write_chrome_trace(
      epoch_trace_events(timing, worker_names),
      path, trace_track_names(timing.workers.size(), worker_names));
}

bool export_epochs_chrome(const std::vector<EpochTiming>& epochs,
                          const std::vector<std::string>& worker_names,
                          const std::string& path) {
  std::vector<obs::TraceEvent> events;
  std::size_t workers = 0;
  double t0_us = 0.0;
  for (const auto& epoch : epochs) {
    auto one = epoch_trace_events(epoch, worker_names, t0_us);
    events.insert(events.end(), std::make_move_iterator(one.begin()),
                  std::make_move_iterator(one.end()));
    workers = std::max(workers, epoch.workers.size());
    t0_us += epoch.epoch_s * 1e6;
  }
  return obs::write_chrome_trace(events, path,
                                 trace_track_names(workers, worker_names));
}

}  // namespace hcc::sim
