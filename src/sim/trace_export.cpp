#include "sim/trace_export.hpp"

#include "util/csv.hpp"
#include "util/table.hpp"

namespace hcc::sim {

bool export_epoch_csv(const EpochTiming& timing,
                      const std::vector<std::string>& worker_names,
                      const std::string& path) {
  util::CsvWriter csv(path, {"worker", "device", "pull_s", "compute_s",
                             "push_s", "sync_s", "finish_s", "sync_end_s"});
  if (!csv.ok()) return false;
  for (std::size_t w = 0; w < timing.workers.size(); ++w) {
    const auto& wt = timing.workers[w];
    csv.row({std::to_string(w),
             w < worker_names.size() ? worker_names[w] : "",
             util::Table::num(wt.pull_s, 9), util::Table::num(wt.compute_s, 9),
             util::Table::num(wt.push_s, 9), util::Table::num(wt.sync_s, 9),
             util::Table::num(wt.finish_s, 9),
             util::Table::num(wt.sync_end_s, 9)});
  }
  csv.row({"epoch", "", "", "", "", util::Table::num(timing.server_busy_s, 9),
           "", util::Table::num(timing.epoch_s, 9)});
  return true;
}

bool export_series_csv(const std::vector<std::string>& columns,
                       const std::vector<std::vector<double>>& rows,
                       const std::string& path) {
  util::CsvWriter csv(path, columns);
  if (!csv.ok()) return false;
  for (const auto& row : rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (double v : row) cells.push_back(util::Table::num(v, 9));
    csv.row(cells);
  }
  return true;
}

}  // namespace hcc::sim
