#include "sim/device.hpp"

#include <stdexcept>

namespace hcc::sim {

double bus_bandwidth_gbs(BusKind kind) {
  switch (kind) {
    case BusKind::kLocal: return 60.0;   // worker sharing the server's memory
    case BusKind::kUpi: return 20.8;     // Intel UPI (Section 3.3)
    case BusKind::kPcie3x16: return 16.0;
  }
  return 16.0;
}

std::optional<double> DeviceSpec::calibrated_rate(
    const std::string& base) const {
  for (const auto& c : calibrated_rates) {
    if (c.dataset == base) return c.updates_per_s;
  }
  return std::nullopt;
}

std::string dataset_base_name(const std::string& dataset_name) {
  const auto at = dataset_name.find('@');
  std::string base = at == std::string::npos ? dataset_name
                                             : dataset_name.substr(0, at);
  // R1* shares R1's per-update rates (same dimensions, more entries).
  if (base == "r1star") return "r1";
  return base;
}

namespace {

// Table 4, "computing power" columns (updates/s, 20-epoch training).
std::vector<CalibratedRate> rates_6242_24t() {
  return {{"netflix", 348790567.0},
          {"r1", 190891071.0},
          {"r2", 266293289.0},
          {"movielens", 261609815.0}};
}
std::vector<CalibratedRate> rates_6242_16t() {
  return {{"netflix", 272502189.3},
          {"r1", 191469060.9},
          {"r2", 212851540.0},
          {"movielens", 250860330.0}};
}
std::vector<CalibratedRate> scale_rates(std::vector<CalibratedRate> rates,
                                        double factor) {
  for (auto& r : rates) r.updates_per_s *= factor;
  return rates;
}
std::vector<CalibratedRate> rates_2080() {
  return {{"netflix", 918333483.2},
          {"r1", 801190194.0},
          {"r2", 339096219.3},
          {"movielens", 835890148.7}};
}
std::vector<CalibratedRate> rates_2080s() {
  return {{"netflix", 1052866849.0},
          {"r1", 939313585.8},
          {"r2", 354261902.7},
          {"movielens", 905200490.3}};
}

}  // namespace

DeviceSpec xeon_6242_24t() {
  DeviceSpec d;
  d.name = "6242-24T";
  d.cls = DeviceClass::kCpu;
  d.threads = 24;
  d.compute_gflops = 1300.0;  // 16c/24t Cascade Lake, AVX-512
  d.effective_bandwidth_gbs = 720.0;  // cache-inclusive; see perf_model
  d.cache_mb = 22.0;
  d.cache_sensitivity = 1.0;
  d.calibrated_rates = rates_6242_24t();
  d.mem_bandwidth_gbs = 67.3001;  // Table 2 "6242"
  d.bandwidth_drift = 0.01;
  d.compute_drift = -0.12;  // smaller assignments amortize thread overheads worse
  d.bus = BusKind::kUpi;
  d.copy_streams = 1;  // no copy engine without an iGPU (Section 3.4)
  d.epoch_overhead_s = 0.003;  // thread-pool wake-up + epoch barrier
  d.price_usd = 2700.0;
  return d;
}

DeviceSpec xeon_6242_16t() {
  DeviceSpec d = xeon_6242_24t();
  d.name = "6242-16T";
  d.threads = 16;
  d.compute_gflops = 1000.0;
  d.effective_bandwidth_gbs = 560.0;
  d.calibrated_rates = rates_6242_16t();
  d.bus = BusKind::kLocal;  // CPU_0 time-shares with the server
  return d;
}

DeviceSpec xeon_6242_10t() {
  DeviceSpec d = xeon_6242_16t();
  d.name = "6242-10T";
  d.threads = 10;
  d.compute_gflops = 640.0;
  d.effective_bandwidth_gbs = 330.0;
  // Table 2's "6242l-10" bandwidth is 39.32/67.30 = 0.584 of the full CPU;
  // its compute rates scale the same way (memory-bound kernel, Eq. 2).
  d.calibrated_rates = scale_rates(rates_6242_16t(), 0.584);
  d.mem_bandwidth_gbs = 39.31905;
  return d;
}

DeviceSpec rtx_2080() {
  DeviceSpec d;
  d.name = "2080";
  d.cls = DeviceClass::kGpu;
  d.threads = 41216;  // paper's kernel configuration
  d.compute_gflops = 10000.0;
  d.effective_bandwidth_gbs = 1890.0;
  d.cache_mb = 4.0;
  d.cache_sensitivity = 0.15;
  d.calibrated_rates = rates_2080();
  d.mem_bandwidth_gbs = 378.616;  // Table 2 "IW"
  d.bandwidth_drift = 0.041;      // reaches 388.8 under DP0's share
  d.compute_drift = 0.10;         // cache hits + occupancy at small shares
  d.bus = BusKind::kPcie3x16;
  d.copy_streams = 4;
  d.epoch_overhead_s = 0.003;  // kernel launches + stream setup
  d.price_usd = 800.0;
  return d;
}

DeviceSpec rtx_2080s() {
  DeviceSpec d = rtx_2080();
  d.name = "2080S";
  d.threads = 43008;
  d.compute_gflops = 11000.0;
  d.effective_bandwidth_gbs = 2160.0;
  d.calibrated_rates = rates_2080s();
  d.mem_bandwidth_gbs = 407.095;
  d.bandwidth_drift = 0.019;  // 407.1 -> 412.0 in Table 2
  d.price_usd = 750.0;
  return d;
}

DeviceSpec tesla_v100() {
  DeviceSpec d = rtx_2080s();
  d.name = "V100";
  d.threads = 40960;
  d.compute_gflops = 14000.0;
  d.effective_bandwidth_gbs = 2800.0;
  d.cache_mb = 6.0;
  // Not in Table 4; Figure 3(a) shows it ~1.3x the 2080S on Netflix.
  d.calibrated_rates = scale_rates(rates_2080s(), 1.30);
  d.mem_bandwidth_gbs = 830.0;
  d.bandwidth_drift = 0.015;
  d.copy_streams = 6;
  d.price_usd = 8000.0;  // Figure 3(b): ~1/3 rule vs 6242-2080S
  return d;
}

DeviceSpec device_by_name(const std::string& name) {
  if (name == "6242-24T" || name == "6242") return xeon_6242_24t();
  if (name == "6242-16T") return xeon_6242_16t();
  if (name == "6242-10T" || name == "6242L" || name == "6242l") return xeon_6242_10t();
  if (name == "2080") return rtx_2080();
  if (name == "2080S" || name == "2080s") return rtx_2080s();
  if (name == "V100" || name == "v100") return tesla_v100();
  throw std::invalid_argument("unknown device: " + name);
}

}  // namespace hcc::sim
