#include "sim/timing.hpp"

#include <algorithm>
#include <cassert>

#include "util/rng.hpp"

namespace hcc::sim {

namespace {

constexpr double kGiga = 1e9;

struct PushEvent {
  double at = 0.0;        ///< push completion instant
  double duration = 0.0;  ///< server time to merge this chunk
  std::size_t worker = 0;
};

/// One sync actually serviced by the server (post-FIFO schedule).
struct ServedSync {
  double start = 0.0;
  double duration = 0.0;
};

/// Seconds the server needs to merge `sync_bytes` of pushed features:
/// three read/write memory operations plus one multiply-add per feature
/// (Eq. 3; the paper drops the P_server term, we keep it).
double sync_seconds(const ServerSpec& server, double sync_bytes) {
  const double elements = sync_bytes / 4.0;
  return 3.0 * sync_bytes / (server.mem_bandwidth_gbs * kGiga) +
         elements / (server.compute_gflops * kGiga);
}

EpochTiming run_once(const EpochConfig& config,
                     const std::vector<double>& extra_compute_s,
                     std::vector<ServedSync>* served = nullptr) {
  EpochTiming timing;
  timing.workers.resize(config.workers.size());

  util::Rng jitter_rng(config.seed);
  std::vector<PushEvent> events;

  for (std::size_t w = 0; w < config.workers.size(); ++w) {
    const WorkerPlan& plan = config.workers[w];
    WorkerTiming& out = timing.workers[w];
    if (plan.share <= 0.0 && plan.comm.pull_bytes <= 0.0) continue;

    double jitter_factor = 1.0;
    if (config.jitter > 0.0) {
      jitter_factor =
          std::max(0.5, 1.0 + config.jitter * jitter_rng.normal());
    }
    const double rate_scale = plan.rate_scale > 0.0 ? plan.rate_scale : 1.0;
    const double comp_total =
        compute_seconds(plan.device, config.shape, plan.share) *
            jitter_factor / rate_scale +
        plan.device.epoch_overhead_s + extra_compute_s[w];

    const std::uint32_t streams = std::max(1u, plan.comm.streams);
    const double bus_gbs =
        bus_bandwidth_gbs(plan.device.bus) * plan.comm.bus_efficiency;
    const double pull_chunk =
        plan.comm.pull_bytes / streams / (bus_gbs * kGiga);
    const double push_chunk =
        plan.comm.push_bytes / streams / (bus_gbs * kGiga);
    const double comp_chunk = comp_total / streams;
    const double sync_chunk_bytes = plan.comm.sync_bytes / streams;

    // Chunk pipeline: the copy engine serializes pulls among themselves and
    // pushes among themselves; compute chunk i needs pull chunk i done and
    // the previous compute chunk finished.
    double pull_end = 0.0;
    double comp_end = 0.0;
    double push_end = 0.0;
    for (std::uint32_t c = 0; c < streams; ++c) {
      pull_end = (c == 0 ? 0.0 : pull_end) + pull_chunk;
      comp_end = std::max(pull_end, comp_end) + comp_chunk;
      push_end = std::max(comp_end, push_end) + push_chunk;
      events.push_back(PushEvent{
          push_end, sync_seconds(config.server, sync_chunk_bytes), w});
    }
    out.pull_s = pull_chunk * streams;
    out.compute_s = comp_total;
    out.push_s = push_chunk * streams;
    out.finish_s = push_end;
  }

  // The server's sync thread services pushes serially, FIFO by arrival.
  std::stable_sort(events.begin(), events.end(),
                   [](const PushEvent& a, const PushEvent& b) {
                     return a.at < b.at;
                   });
  double server_free = 0.0;
  for (const auto& ev : events) {
    const double start = std::max(ev.at, server_free);
    const double end = start + ev.duration;
    server_free = end;
    timing.server_busy_s += ev.duration;
    if (served != nullptr) served->push_back(ServedSync{start, ev.duration});
    WorkerTiming& out = timing.workers[ev.worker];
    out.sync_s += ev.duration;
    out.sync_end_s = std::max(out.sync_end_s, end);
  }

  for (const auto& out : timing.workers) {
    timing.epoch_s = std::max({timing.epoch_s, out.finish_s, out.sync_end_s});
  }
  return timing;
}

}  // namespace

EpochTiming simulate_epoch(const EpochConfig& config) {
  // Pass 1 (no contention) establishes the server's sync schedule; pass 2
  // charges workers time-sharing the server's CPU for the sync work that
  // overlaps their own compute window.  Syncs serviced after such a worker
  // already finished (the common case under balanced partitions, where
  // pushes pile up at the epoch's end) cost it nothing.
  std::vector<double> extra(config.workers.size(), 0.0);
  std::vector<ServedSync> served;
  const EpochTiming first = run_once(config, extra, &served);

  bool any_contention = false;
  for (std::size_t i = 0; i < config.workers.size(); ++i) {
    if (config.workers[i].device.bus != BusKind::kLocal ||
        config.workers[i].share <= 0.0) {
      continue;
    }
    double overlap = 0.0;
    for (const auto& job : served) {
      if (job.start < first.workers[i].finish_s) overlap += job.duration;
    }
    if (overlap > 0.0) {
      extra[i] = overlap;
      any_contention = true;
    }
  }
  if (!any_contention) return first;
  return run_once(config, extra);
}

EpochTiming simulate_epochs(const EpochConfig& config, std::uint32_t epochs) {
  EpochTiming total;
  total.workers.resize(config.workers.size());
  EpochConfig cfg = config;
  for (std::uint32_t e = 0; e < epochs; ++e) {
    cfg.seed = config.seed + e;
    const EpochTiming one = simulate_epoch(cfg);
    total.epoch_s += one.epoch_s;
    total.server_busy_s += one.server_busy_s;
    for (std::size_t w = 0; w < total.workers.size(); ++w) {
      total.workers[w].pull_s += one.workers[w].pull_s;
      total.workers[w].compute_s += one.workers[w].compute_s;
      total.workers[w].push_s += one.workers[w].push_s;
      total.workers[w].sync_s += one.workers[w].sync_s;
      total.workers[w].finish_s += one.workers[w].finish_s;
      total.workers[w].sync_end_s += one.workers[w].sync_end_s;
    }
  }
  return total;
}

}  // namespace hcc::sim
