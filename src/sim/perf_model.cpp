#include "sim/perf_model.hpp"

#include <algorithm>
#include <cmath>

namespace hcc::sim {

double cache_efficiency(const DeviceSpec& device, const DatasetShape& shape,
                        double share) {
  // The cache-relevant working set is the full Q matrix: Q rows are hit in
  // random order on every update, while P rows stream sequentially under
  // the row-sorted entry order (the paper's CuMF_SGD cache modification)
  // and contribute negligible pressure.  Q is shared in full by every
  // worker, so the efficiency barely depends on the assignment size —
  // consistent with Table 2's small DP0-vs-IW bandwidth deltas.
  (void)share;
  const double q_mb = static_cast<double>(shape.n) * shape.k * 4.0 /
                      (1024.0 * 1024.0);
  if (q_mb <= device.cache_mb) return 1.0;
  const double overflow = std::log(q_mb / device.cache_mb);
  return 1.0 / (1.0 + 0.295 * device.cache_sensitivity * overflow);
}

double analytic_update_seconds(const DeviceSpec& device,
                               const DatasetShape& shape, double share) {
  const double k = shape.k;
  const double flops_term = 7.0 * k / (device.compute_gflops * 1e9);
  const double bytes_term =
      (16.0 * k + 4.0) / (device.effective_bandwidth_gbs * 1e9);
  return (flops_term + bytes_term) / cache_efficiency(device, shape, share);
}

namespace {

/// Multiplicative speedup at assignment `share` relative to share = 1.
/// Combines the device's update-rate drift (Section 3.3's observation that
/// per-update speed improves at smaller assignments, strongest on GPUs)
/// with the working-set cache gain (flat for Q-dominated working sets).
double share_drift(const DeviceSpec& device, const DatasetShape& shape,
                   double share) {
  share = std::clamp(share, 1e-9, 1.0);
  const double rate_gain = 1.0 + device.compute_drift * (1.0 - share);
  const double cache_gain = cache_efficiency(device, shape, share) /
                            cache_efficiency(device, shape, 1.0);
  return rate_gain * cache_gain;
}

}  // namespace

double iw_update_rate(const DeviceSpec& device, const DatasetShape& shape) {
  if (const auto rate = device.calibrated_rate(dataset_base_name(shape.name))) {
    // Calibration was measured at k=128; per Eq. 2 the per-update cost is
    // ~linear in k, so rescale for other latent dimensions.
    return *rate * (128.0 / static_cast<double>(shape.k));
  }
  return 1.0 / analytic_update_seconds(device, shape, /*share=*/1.0);
}

double update_rate(const DeviceSpec& device, const DatasetShape& shape,
                   double share) {
  return iw_update_rate(device, shape) * share_drift(device, shape, share);
}

double compute_seconds(const DeviceSpec& device, const DatasetShape& shape,
                       double share) {
  if (share <= 0.0) return 0.0;
  const double updates = static_cast<double>(shape.nnz) * share;
  return updates / update_rate(device, shape, share);
}

double mem_bandwidth(const DeviceSpec& device, double share) {
  share = std::clamp(share, 1e-9, 1.0);
  return device.mem_bandwidth_gbs *
         (1.0 + device.bandwidth_drift * (1.0 - share));
}

}  // namespace hcc::sim
