// Deterministic epoch timing engine.
//
// Plays out the paper's collaborative-computing timeline (Figure 5 / 6):
// every worker runs a pull -> compute -> push pipeline — optionally chunked
// into multiple asynchronous streams (Strategy 3) — and the server's sync
// thread services push completions serially in arrival order (Eq. 3).
// Workers that time-share the server's CPU (BusKind::kLocal) lose the sync
// thread's busy time from their compute budget, reproducing the "special
// worker" behaviour of Section 3.5.
//
// The engine is what the partition strategies "measure" (Algorithm 1 re-runs
// sgd_update timings), so it supports deterministic multiplicative jitter to
// emulate run-to-run measurement noise.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/perf_model.hpp"
#include "sim/platform.hpp"

namespace hcc::sim {

/// Per-epoch, per-worker communication behaviour, produced by the COMM
/// module's strategy planner (src/comm/strategy.hpp).
struct CommPlan {
  double pull_bytes = 0.0;       ///< transmitted server -> worker
  double push_bytes = 0.0;       ///< transmitted worker -> server
  double sync_bytes = 0.0;       ///< feature bytes the server must merge
                                 ///< (FP32 volume; independent of the wire
                                 ///< encoding — FP16 halves the wire bytes,
                                 ///< not the merge work)
  double bus_efficiency = 1.0;   ///< fraction of peak bus bandwidth reached
                                 ///< (COMM ~ 1.0; COMM-P ~ 1/7; the FP16
                                 ///< cache effect can push it above 1)
  std::uint32_t streams = 1;     ///< async pipeline depth (1 = sequential)

  // Chunked-streaming extension (comm/pipeline.hpp).  With depth > 1 and
  // modeled codec rates, each direction's steady-state cost per chunk is
  // max(encode, wire, commit) — the Eq. 1 overlap term — instead of the
  // serial wire-only time.  Rates of 0 mean "unmodeled" (fp32/fp16 paths),
  // which keeps the legacy prediction bit-identical.
  std::uint32_t pipeline_depth = 1;  ///< in-flight chunk window (1 = off)
  double pull_raw_bytes = 0.0;   ///< pre-codec fp32 volume, pull direction
  double push_raw_bytes = 0.0;   ///< pre-codec fp32 volume, push direction
  double encode_gbs = 0.0;       ///< codec encode throughput over RAW bytes
  double commit_gbs = 0.0;       ///< decode+EF-commit throughput over RAW
};

/// One worker's role in the epoch.
struct WorkerPlan {
  DeviceSpec device;
  double share = 0.0;  ///< x_i — fraction of all ratings assigned
  CommPlan comm;
  /// Runtime disturbance: multiplies the device's update rate this epoch
  /// (0.7 = thermal throttling to 70%).  Used by the adaptive-repartition
  /// experiments; 1.0 = nominal.
  double rate_scale = 1.0;
};

/// Everything needed to time one epoch.
struct EpochConfig {
  DatasetShape shape;
  ServerSpec server;
  std::vector<WorkerPlan> workers;
  double jitter = 0.0;      ///< relative stddev of compute-time noise
  std::uint64_t seed = 1;   ///< jitter stream seed
};

/// Cumulative active durations and completion instants for one worker.
struct WorkerTiming {
  double pull_s = 0.0;      ///< total time spent pulling
  double compute_s = 0.0;   ///< total time spent computing
  double push_s = 0.0;      ///< total time spent pushing
  double sync_s = 0.0;      ///< server time consumed syncing this worker
  double finish_s = 0.0;    ///< instant the worker's last push completed
  double sync_end_s = 0.0;  ///< instant the server finished merging it
};

/// The timed epoch.
struct EpochTiming {
  std::vector<WorkerTiming> workers;
  double epoch_s = 0.0;        ///< Eq. 1's T: when the last sync finished
  double server_busy_s = 0.0;  ///< total serial sync time on the server
};

/// Simulates one training epoch.  Deterministic for a fixed config.
EpochTiming simulate_epoch(const EpochConfig& config);

/// Simulates `epochs` consecutive epochs (jitter re-drawn each epoch) and
/// returns the element-wise accumulated timing — what Figure 8 and Table 6
/// plot ("time statistics of 20 epochs").
EpochTiming simulate_epochs(const EpochConfig& config, std::uint32_t epochs);

}  // namespace hcc::sim
