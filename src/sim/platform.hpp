// Virtual multi-CPU/GPU platforms (Figure 2's architecture, Section 4.1's
// testbed).
#pragma once

#include <string>
#include <vector>

#include "sim/device.hpp"

namespace hcc::sim {

/// The parameter-server CPU's capabilities (Eq. 3 terms).
struct ServerSpec {
  /// B_server — memory bandwidth available to the sync thread (GB/s).
  /// Note this is NOT Table 2's 67.3 GB/s: that is the socket bandwidth
  /// under a full 24-thread SGD load, while the lone streaming sync thread
  /// sees far less contention.  Calibrated so R1's platform utilization
  /// lands near Table 4's 62% (see EXPERIMENTS.md).
  double mem_bandwidth_gbs = 140.0;
  /// P_server — compute rate of the sync multiply-add (GFLOP/s).
  double compute_gflops = 1000.0;
};

/// A machine: one server CPU plus worker devices.
struct PlatformSpec {
  std::string name;
  ServerSpec server;
  std::vector<DeviceSpec> workers;

  /// Total hardware cost (Figure 3b): sum of worker prices plus the server
  /// CPU when it is not already counted as a worker.
  double total_price_usd() const;

  /// Sum of the workers' independent update rates — the "Ideal computing
  /// power" column of Table 4.
  double ideal_update_rate(const struct DatasetShape& shape) const;
};

/// One inter-node link of the scale-out cluster, calibrated the way Table 2
/// calibrated the intra-box buses: peak bandwidth, per-message latency and
/// the sustained fraction of peak a streaming transfer actually sees.  The
/// functional transport layer (comm/transport.hpp) and the cluster timing
/// model both read these, so the simulated-latency link and the Eq. 1 cost
/// terms stay in agreement.
struct LinkSpec {
  std::string name = "100GbE";
  double bandwidth_gbs = 12.5;  ///< peak, full duplex, per direction
  double latency_s = 10e-6;     ///< one-way propagation + stack latency
  double efficiency = 0.8;      ///< sustained fraction of peak (Table 2 idiom)

  /// Model round-trip time of a `bytes`-sized frame and its (tiny) ack:
  /// two traversals of the latency plus one payload serialization at the
  /// sustained bandwidth.
  double rtt_s(std::size_t bytes) const;
};

/// Calibrated link presets (Section 4.1's interconnect table, one level up):
LinkSpec link_local();    ///< in-box loopback (transport tests, ~PCIe-class)
LinkSpec link_100gbe();   ///< 100 Gb/s Ethernet, 10 us
LinkSpec link_10gbe();    ///< 10 Gb/s Ethernet, 50 us
LinkSpec link_1gbe();     ///< 1 Gb/s commodity Ethernet, 100 us
LinkSpec link_ib_hdr();   ///< InfiniBand HDR 200 Gb/s, 1 us

/// Looks a preset up by name ("local", "100GbE", "10GbE", "1GbE",
/// "IB-HDR", case-sensitive); throws std::invalid_argument otherwise.
LinkSpec link_by_name(const std::string& name);

/// The paper's workstation in its overall-performance configuration
/// (Section 4.1: CPU_0 with 16 threads): workers 6242-24T, 6242-16T
/// (time-sharing the server), 2080, 2080S.
PlatformSpec paper_workstation_overall();

/// The heterogeneity configuration (CPU_0 limited to 10 threads, "6242l"):
/// workers 2080S, 6242-24T, 2080, 6242-10T — the order Figure 9 adds them.
PlatformSpec paper_workstation_hetero();

/// A platform with a single worker device (baseline runs).
PlatformSpec single_device(const DeviceSpec& device);

/// Builds a platform from device preset names, e.g. {"6242-24T", "2080S"}.
PlatformSpec combo(const std::string& name,
                   const std::vector<std::string>& device_names);

}  // namespace hcc::sim
