#include "fault/checkpoint.hpp"

#include <array>
#include <charconv>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "mf/model_io.hpp"
#include "util/log.hpp"

namespace hcc::fault {

namespace {
constexpr std::array<char, 4> kMagic = {'H', 'C', 'C', 'K'};
constexpr std::uint32_t kVersion = 1;

std::string checkpoint_path(const std::string& dir, std::uint32_t epoch) {
  return dir + "/ckpt_" + std::to_string(epoch) + ".hcck";
}
}  // namespace

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
      util::log_kv(util::LogLevel::kWarn, "checkpoint_dir_error",
                   {util::kv("dir", dir_), util::kv("error", ec.message())});
    }
  }
}

void CheckpointStore::save(const Checkpoint& ckpt) {
  latest_ = ckpt;  // the rollback copy never depends on the disk
  ++saved_;
  if (dir_.empty()) return;

  const std::string path = checkpoint_path(dir_, ckpt.next_epoch);
  std::ofstream out(path, std::ios::binary);
  bool ok = static_cast<bool>(out);
  if (ok) {
    out.write(kMagic.data(), kMagic.size());
    const std::uint32_t version = kVersion;
    out.write(reinterpret_cast<const char*>(&version), sizeof version);
    out.write(reinterpret_cast<const char*>(&ckpt.next_epoch),
              sizeof ckpt.next_epoch);
    out.write(reinterpret_cast<const char*>(&ckpt.lr), sizeof ckpt.lr);
    out.write(reinterpret_cast<const char*>(&ckpt.rng_state),
              sizeof ckpt.rng_state);
    ok = mf::save_model(ckpt.model, out);
  }
  if (!ok) {
    util::log_kv(util::LogLevel::kWarn, "checkpoint_write_error",
                 {util::kv("path", path)});
  }
}

Checkpoint CheckpointStore::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    throw std::runtime_error(path + ": bad checkpoint magic");
  }
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof version);
  if (in && version != kVersion) {
    throw std::runtime_error(path + ": unsupported checkpoint version " +
                             std::to_string(version));
  }
  Checkpoint ckpt;
  in.read(reinterpret_cast<char*>(&ckpt.next_epoch), sizeof ckpt.next_epoch);
  in.read(reinterpret_cast<char*>(&ckpt.lr), sizeof ckpt.lr);
  in.read(reinterpret_cast<char*>(&ckpt.rng_state), sizeof ckpt.rng_state);
  if (!in) throw std::runtime_error(path + ": truncated checkpoint header");
  ckpt.model = mf::load_model(in, path);
  return ckpt;
}

std::optional<Checkpoint> CheckpointStore::load_latest(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return std::nullopt;

  std::uint32_t best_epoch = 0;
  std::string best_path;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (!name.starts_with("ckpt_") || !name.ends_with(".hcck")) continue;
    const std::string_view digits =
        std::string_view(name).substr(5, name.size() - 5 - 5);
    std::uint32_t epoch = 0;
    const auto [ptr, perr] =
        std::from_chars(digits.data(), digits.data() + digits.size(), epoch);
    if (perr != std::errc() || ptr != digits.data() + digits.size()) continue;
    if (best_path.empty() || epoch >= best_epoch) {
      best_epoch = epoch;
      best_path = entry.path().string();
    }
  }
  if (best_path.empty()) return std::nullopt;
  return load(best_path);
}

}  // namespace hcc::fault
