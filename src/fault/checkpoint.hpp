// Epoch-boundary training checkpoints.
//
// A checkpoint captures everything needed to rewind training to a
// consistent state: the full factor model (every worker's P rows plus the
// server's Q — the server holds both between epochs), the epoch to resume
// from, the live learning rate and the run's RNG seed word.  The latest
// checkpoint always lives in memory (rollback must not depend on a disk);
// when a directory is configured each checkpoint is also persisted as
//   <dir>/ckpt_<epoch>.hcck
// (magic "HCCK", version, resume state, then the model via mf::model_io)
// so a crashed process can be resumed or a trained model recovered.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "mf/model.hpp"

namespace hcc::fault {

struct Checkpoint {
  std::uint32_t next_epoch = 0;  ///< first epoch to (re)run from this state
  float lr = 0.0f;               ///< learning rate in force at next_epoch
  std::uint64_t rng_state = 0;   ///< the run's seed word (reproducibility)
  mf::FactorModel model;
};

class CheckpointStore {
 public:
  /// Memory-only store when `dir` is empty; otherwise also persists each
  /// checkpoint under `dir` (created if missing).
  explicit CheckpointStore(std::string dir = {});

  /// Records `ckpt` as the latest (copy in memory) and, with a directory
  /// configured, writes it to disk.  Disk failures are logged and ignored:
  /// the in-memory copy keeps recovery working.
  void save(const Checkpoint& ckpt);

  bool has_checkpoint() const noexcept { return latest_.has_value(); }
  const Checkpoint& latest() const { return *latest_; }

  const std::string& dir() const noexcept { return dir_; }
  std::uint64_t saved() const noexcept { return saved_; }

  /// Reads one checkpoint file; throws std::runtime_error on bad magic,
  /// version or truncation.
  static Checkpoint load(const std::string& path);

  /// Scans `dir` for ckpt_<N>.hcck files and loads the highest-epoch one;
  /// nullopt when the directory has none.
  static std::optional<Checkpoint> load_latest(const std::string& dir);

 private:
  std::string dir_;
  std::optional<Checkpoint> latest_;
  std::uint64_t saved_ = 0;
};

}  // namespace hcc::fault
