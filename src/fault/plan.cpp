#include "fault/plan.hpp"

#include <charconv>
#include <cstdlib>
#include <stdexcept>

namespace hcc::fault {

namespace {

[[noreturn]] void bad_spec(std::string_view token, const std::string& why) {
  throw std::invalid_argument("FaultPlan: bad event '" + std::string(token) +
                              "': " + why);
}

/// Parses an unsigned integer at the front of `s`, advancing it.
std::uint64_t take_uint(std::string_view& s, std::string_view token,
                        const char* what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr == s.data()) {
    bad_spec(token, std::string("expected ") + what);
  }
  s.remove_prefix(static_cast<std::size_t>(ptr - s.data()));
  return value;
}

double take_double(std::string_view& s, std::string_view token,
                   const char* what) {
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr == s.data()) {
    bad_spec(token, std::string("expected ") + what);
  }
  s.remove_prefix(static_cast<std::size_t>(ptr - s.data()));
  return value;
}

void expect(std::string_view& s, char c, std::string_view token) {
  if (s.empty() || s.front() != c) {
    bad_spec(token, std::string("expected '") + c + "'");
  }
  s.remove_prefix(1);
}

FaultEvent parse_event(std::string_view token) {
  const std::size_t colon = token.find(':');
  if (colon == std::string_view::npos) bad_spec(token, "missing ':'");
  const std::string_view kind = token.substr(0, colon);
  std::string_view rest = token.substr(colon + 1);

  FaultEvent event;
  if (kind == "kill") {
    event.kind = FaultKind::kKill;
  } else if (kind == "stall") {
    event.kind = FaultKind::kStall;
  } else if (kind == "corrupt") {
    event.kind = FaultKind::kCorrupt;
  } else if (kind == "drop") {
    event.kind = FaultKind::kDrop;
  } else if (kind == "dup") {
    event.kind = FaultKind::kDuplicate;
  } else if (kind == "reorder") {
    event.kind = FaultKind::kReorder;
  } else if (kind == "delay") {
    event.kind = FaultKind::kDelay;
  } else if (kind == "disconnect") {
    event.kind = FaultKind::kDisconnect;
  } else if (kind == "join") {
    event.kind = FaultKind::kJoin;
  } else {
    bad_spec(token, "unknown kind '" + std::string(kind) + "'");
  }

  expect(rest, 'w', token);
  event.worker = static_cast<std::uint32_t>(take_uint(rest, token, "worker"));
  expect(rest, '@', token);
  expect(rest, 'e', token);
  event.epoch = static_cast<std::uint32_t>(take_uint(rest, token, "epoch"));

  if (event.kind == FaultKind::kStall) {
    expect(rest, 'x', token);
    event.stall_factor = take_double(rest, token, "stall factor");
    if (!(event.stall_factor > 1.0)) {
      bad_spec(token, "stall factor must be > 1");
    }
  } else if (event.kind == FaultKind::kCorrupt) {
    if (!rest.empty() && rest.front() == 's') {
      rest.remove_prefix(1);
      event.chunk = static_cast<std::uint32_t>(take_uint(rest, token, "chunk"));
    }
    if (!rest.empty() && rest.front() == 'n') {
      rest.remove_prefix(1);
      event.count = static_cast<std::uint32_t>(take_uint(rest, token, "count"));
      if (event.count == 0) bad_spec(token, "count must be >= 1");
    }
  } else if (event.kind == FaultKind::kDelay) {
    expect(rest, 'x', token);
    event.delay_ticks =
        static_cast<std::uint32_t>(take_uint(rest, token, "delay ticks"));
    if (event.delay_ticks == 0) bad_spec(token, "delay ticks must be >= 1");
    if (!rest.empty() && rest.front() == 'n') {
      rest.remove_prefix(1);
      event.count = static_cast<std::uint32_t>(take_uint(rest, token, "count"));
      if (event.count == 0) bad_spec(token, "count must be >= 1");
    }
  } else if (event.kind == FaultKind::kDrop ||
             event.kind == FaultKind::kDuplicate ||
             event.kind == FaultKind::kReorder ||
             event.kind == FaultKind::kDisconnect) {
    if (!rest.empty() && rest.front() == 'n') {
      rest.remove_prefix(1);
      event.count = static_cast<std::uint32_t>(take_uint(rest, token, "count"));
      if (event.count == 0) bad_spec(token, "count must be >= 1");
    }
  }
  if (!rest.empty()) {
    bad_spec(token, "trailing characters '" + std::string(rest) + "'");
  }
  return event;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kKill: return "kill";
    case FaultKind::kStall: return "stall";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "dup";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDisconnect: return "disconnect";
    case FaultKind::kJoin: return "join";
  }
  return "?";
}

bool is_transport_fault(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop:
    case FaultKind::kDuplicate:
    case FaultKind::kReorder:
    case FaultKind::kDelay:
    case FaultKind::kDisconnect:
      return true;
    default:
      return false;
  }
}

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(';', start);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view token = spec.substr(start, end - start);
    if (!token.empty()) plan.events.push_back(parse_event(token));
    if (end == spec.size()) break;
    start = end + 1;
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const FaultEvent& e : events) {
    if (!out.empty()) out += ';';
    out += fault_kind_name(e.kind);
    out += ":w" + std::to_string(e.worker) + "@e" + std::to_string(e.epoch);
    if (e.kind == FaultKind::kStall) {
      // Round-trippable for the integral factors the grammar typically uses.
      const auto factor = static_cast<std::uint64_t>(e.stall_factor);
      if (static_cast<double>(factor) == e.stall_factor) {
        out += "x" + std::to_string(factor);
      } else {
        out += "x" + std::to_string(e.stall_factor);
      }
    } else if (e.kind == FaultKind::kCorrupt) {
      if (e.chunk != 0) out += "s" + std::to_string(e.chunk);
      if (e.count != 1) out += "n" + std::to_string(e.count);
    } else if (e.kind == FaultKind::kDelay) {
      out += "x" + std::to_string(e.delay_ticks);
      if (e.count != 1) out += "n" + std::to_string(e.count);
    } else if (is_transport_fault(e.kind)) {
      if (e.count != 1) out += "n" + std::to_string(e.count);
    }
  }
  return out;
}

FaultPlan plan_from_env() {
  const char* spec = std::getenv("HCCMF_FAULT_PLAN");
  if (spec == nullptr || *spec == '\0') return {};
  FaultPlan plan = FaultPlan::parse(spec);
  if (const char* seed = std::getenv("HCCMF_FAULT_SEED")) {
    plan.seed = std::strtoull(seed, nullptr, 10);
  }
  return plan;
}

}  // namespace hcc::fault
