// Typed failures raised by the fault-tolerance machinery.
//
// The training loop distinguishes three escalation levels: a worker that is
// *dead* (kill event, or a channel whose retries are exhausted) triggers
// the full recovery path — rollback, repartition, degraded continuation;
// a *diverged* model (NaN/Inf factors) triggers rollback with a halved
// learning rate; everything below those levels (a corrupt payload caught
// by its checksum) is retried in place and never surfaces as an exception.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace hcc::fault {

/// Base for unrecoverable per-worker failures (recovery repartitions).
class WorkerFault : public std::runtime_error {
 public:
  WorkerFault(std::uint32_t worker, const std::string& what)
      : std::runtime_error(what), worker_(worker) {}
  std::uint32_t worker() const noexcept { return worker_; }

 private:
  std::uint32_t worker_;
};

/// A scripted kill event fired: the worker stops responding.
class WorkerKilledError final : public WorkerFault {
 public:
  WorkerKilledError(std::uint32_t worker, std::uint32_t epoch)
      : WorkerFault(worker, "worker " + std::to_string(worker) +
                                " killed at epoch " + std::to_string(epoch)),
        epoch_(epoch) {}
  std::uint32_t epoch() const noexcept { return epoch_; }

 private:
  std::uint32_t epoch_;
};

/// A pull/push channel kept failing after bounded retries: the worker is
/// unreachable and treated as dead.  The message names the failing link
/// (backend) so an operator can tell *which* hop exhausted its budget.
class TransferFailure final : public WorkerFault {
 public:
  TransferFailure(std::uint32_t worker, std::uint32_t attempts,
                  const std::string& link = "")
      : WorkerFault(worker,
                    "worker " + std::to_string(worker) + " transfer" +
                        (link.empty() ? std::string() : " over link '" + link +
                                            "'") +
                        " failed after " + std::to_string(attempts) +
                        " attempts"),
        attempts_(attempts),
        link_(link) {}
  std::uint32_t attempts() const noexcept { return attempts_; }
  const std::string& link() const noexcept { return link_; }

 private:
  std::uint32_t attempts_;
  std::string link_;
};

/// A transport session's reconnection budget is exhausted: the link to the
/// worker is declared dead.  Subclasses WorkerFault so the existing
/// dead-worker recovery (repartition + rollback) handles it unchanged.
class LinkDeadError final : public WorkerFault {
 public:
  LinkDeadError(std::uint32_t worker, const std::string& link,
                std::uint32_t attempts)
      : WorkerFault(worker, "worker " + std::to_string(worker) + " link '" +
                                link + "' dead after " +
                                std::to_string(attempts) +
                                " reconnect attempts"),
        attempts_(attempts),
        link_(link) {}
  std::uint32_t attempts() const noexcept { return attempts_; }
  const std::string& link() const noexcept { return link_; }

 private:
  std::uint32_t attempts_;
  std::string link_;
};

/// The ASGD inner loop produced non-finite factors (exploding learning
/// rate); the run rolls back to the last checkpoint with a halved rate.
class DivergenceError final : public std::runtime_error {
 public:
  DivergenceError(std::uint32_t worker, std::uint32_t epoch)
      : std::runtime_error("worker " + std::to_string(worker) +
                           " diverged (non-finite factors) at epoch " +
                           std::to_string(epoch)),
        worker_(worker),
        epoch_(epoch) {}
  std::uint32_t worker() const noexcept { return worker_; }
  std::uint32_t epoch() const noexcept { return epoch_; }

 private:
  std::uint32_t worker_;
  std::uint32_t epoch_;
};

/// Divergence persisted past FaultOptions::max_rollbacks — the run cannot
/// make progress and refuses to return a poisoned model.
class TrainingDivergedError final : public std::runtime_error {
 public:
  explicit TrainingDivergedError(std::uint32_t rollbacks)
      : std::runtime_error("training diverged after " +
                           std::to_string(rollbacks) +
                           " checkpoint rollbacks") {}
};

}  // namespace hcc::fault
