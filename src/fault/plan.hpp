// Deterministic fault plans (the failure-injection schedule).
//
// Production multi-CPU/GPU training must survive the failure modes the
// heterogeneous-SGD literature calls out as *common* — a device dropping
// off the bus, a co-tenant job turning a worker into an Nx straggler, a
// DMA transfer delivering corrupt bytes.  A FaultPlan scripts those events
// deterministically (worker, epoch, kind, magnitude) so every fault run is
// reproducible and every recovery path is testable.  Plans come from code,
// from a CLI flag, or from the HCCMF_FAULT_PLAN environment variable; an
// empty plan means the injection machinery is completely inert.
//
// Spec grammar (events separated by ';'):
//   kill:w<W>@e<E>              worker W dies at the start of epoch E
//   stall:w<W>@e<E>x<F>         worker W straggles by factor F in epoch E
//   corrupt:w<W>@e<E>[s<S>][n<N>]
//                               worker W's push payload is corrupted on the
//                               wire at epoch E, pipeline chunk S (default
//                               0), for the first N delivery attempts
//                               (default 1 — one retry heals it)
// Transport faults (chaos transport, comm/transport.hpp; all deterministic
// first-N-frames semantics, burned once per event across the run):
//   drop:w<W>@e<E>[n<N>]        worker W's first N wire frames of epoch E
//                               vanish in flight (default 1)
//   dup:w<W>@e<E>[n<N>]         ... are delivered twice (receiver dedups)
//   reorder:w<W>@e<E>[n<N>]     ... are held back and delivered after the
//                               following frame (swapped pairs)
//   delay:w<W>@e<E>x<T>[n<N>]   ... are held for T link ticks before
//                               delivery (long T forces a retransmission)
//   disconnect:w<W>@e<E>[n<N>]  worker W's link severs at its first frame
//                               of epoch E; the first N reconnection
//                               attempts fail (default 1), then the link
//                               heals and the session replays unacked
//                               frames.  N >= the reconnect budget kills
//                               the link for good (membership/recovery).
//   join:w<W>@e<E>              cluster scope: node W (re)joins the run at
//                               global epoch E (elastic membership)
// Example: "kill:w1@e3;stall:w0@e2x4;corrupt:w2@e1s0n2;drop:w0@e1n2"
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hcc::fault {

enum class FaultKind : std::uint8_t {
  kKill,
  kStall,
  kCorrupt,
  // Transport faults (the chaos transport's schedule):
  kDrop,
  kDuplicate,
  kReorder,
  kDelay,
  kDisconnect,
  // Elastic membership (cluster scope):
  kJoin,
};

const char* fault_kind_name(FaultKind kind);

/// True for the kinds the chaos transport (comm/transport.hpp) consumes.
bool is_transport_fault(FaultKind kind);

/// One scripted fault.
struct FaultEvent {
  FaultKind kind = FaultKind::kKill;
  std::uint32_t worker = 0;
  std::uint32_t epoch = 0;
  std::uint32_t chunk = 0;       ///< corrupt: pipeline chunk (stream) index
  double stall_factor = 1.0;     ///< stall: phase-time multiplier (> 1)
  std::uint32_t count = 1;       ///< corrupt/transport: frames or attempts
  std::uint32_t delay_ticks = 0; ///< delay: link ticks a frame is held

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// The full injection schedule for one training run.
struct FaultPlan {
  std::vector<FaultEvent> events;
  /// Seeds the corruption byte positions (deterministic run to run).
  std::uint64_t seed = 0x5eedfa17u;

  bool empty() const noexcept { return events.empty(); }

  /// Parses the spec grammar above; throws std::invalid_argument with the
  /// offending token on malformed input.
  static FaultPlan parse(std::string_view spec);

  /// Renders back to the spec grammar (parse round-trips).
  std::string to_string() const;
};

/// Plan from the HCCMF_FAULT_PLAN environment variable (empty plan when the
/// variable is unset or blank); HCCMF_FAULT_SEED overrides the seed.
FaultPlan plan_from_env();

/// Everything configurable about the fault-tolerance subsystem.
struct FaultOptions {
  FaultPlan plan;

  /// Detection: a phase is flagged as straggling when its measured time
  /// exceeds deadline_factor x the Eq. 1-5 cost-model prediction (after
  /// median normalization across workers; see straggler_mask()).
  double deadline_factor = 4.0;

  /// Bounded retry on pull/push checksum failures, with exponential
  /// backoff: attempt a sleeps backoff_base_s * 2^a.
  std::uint32_t max_retries = 3;
  double backoff_base_s = 1e-4;

  /// Epoch-boundary checkpoint cadence (model + epoch + learning rate).
  /// Checkpoints are kept in memory for rollback; `checkpoint_dir`
  /// additionally persists each one to disk via mf::model_io.
  std::uint32_t checkpoint_every = 1;
  std::string checkpoint_dir;

  /// Makes scripted stalls *real*: the stalled worker's compute thread
  /// sleeps (factor - 1) x its measured compute time per chunk, instead of
  /// only inflating the recorded phase seconds.  Off by default — virtual
  /// stalls keep the original injection semantics (identical results,
  /// identical wall clock); the straggler-recovery benchmarks turn this on
  /// so work stealing has an actual slowdown to recover from.
  bool real_stalls = false;

  /// NaN/Inf divergence guard on the ASGD inner loop: on detection the run
  /// rolls back to the last checkpoint with a halved learning rate, at
  /// most max_rollbacks times.
  bool divergence_guard = true;
  std::uint32_t max_rollbacks = 8;

  /// Injection / checksum machinery engages only when a plan is scripted
  /// or checkpoints are persisted; with this false and no plan the wire
  /// format and training trajectory are bit-identical to a fault-free
  /// build.  (The divergence guard is detection-only and always safe.)
  bool enabled() const noexcept {
    return !plan.empty() || !checkpoint_dir.empty();
  }
};

}  // namespace hcc::fault
