// Deterministic fault injection (the runtime side of a FaultPlan).
//
// The injector sits at the two seams where a real multi-CPU/GPU platform
// fails: the TrainWorker phase boundaries (a device that stops responding
// or straggles) and the COMM wire (a transfer that delivers corrupt
// bytes).  HccMf advances the injector's epoch cursor; workers consult it
// at every phase start and route their wire buffers through its tap, so
// both ShmComm and BrokerComm are exercised identically.  With an empty
// plan every query is an O(1) no-op returning "healthy".
//
// Under the concurrent epoch executor several workers consult the injector
// at once, so the mutable schedule state (fired kills, burned corruption
// attempts, armed push contexts — one per worker) lives behind a mutex;
// the epoch cursor itself only advances between epochs but is read from
// worker threads, hence atomic.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "fault/errors.hpp"
#include "fault/plan.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace hcc::fault {

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Moves the schedule cursor (HccMf calls this at each epoch start,
  /// including replays after a rollback — events re-fire deterministically
  /// for workers that are still alive to observe them).
  void begin_epoch(std::uint32_t epoch);

  std::uint32_t current_epoch() const noexcept {
    return epoch_.load(std::memory_order_relaxed);
  }

  /// Throws WorkerKilledError when a kill event for `worker` is due at the
  /// current epoch.  Workers call this at every phase start.
  void check_phase(std::uint32_t worker);

  /// True when a kill event for `worker` is scheduled at exactly `epoch`.
  bool kill_scheduled(std::uint32_t worker, std::uint32_t epoch) const;

  /// Straggle multiplier for a worker-epoch (1.0 = nominal).  Stacked
  /// stall events multiply.
  double stall_factor(std::uint32_t worker, std::uint32_t epoch) const;

  /// Marks the transfer context `worker`'s wire tap sees next (push
  /// direction only — the plan grammar corrupts push payloads).  Contexts
  /// are per worker, so concurrent pipelines arm independently.
  void begin_push(std::uint32_t worker, std::uint32_t chunk);
  void end_push(std::uint32_t worker);

  /// The COMM wire tap for `worker`'s channel: mutates `wire` in place
  /// when a corrupt event matches that worker's armed (epoch, chunk) and
  /// still has attempts to burn.  Byte positions come from the plan's seed
  /// — deterministic.
  void tap_wire(std::span<std::byte> wire, std::uint32_t worker);

  /// Total injections performed (kills fired + stalls applied + payloads
  /// corrupted); mirrored into the `fault.injected` counter.
  std::uint64_t injected() const noexcept {
    return injected_.load(std::memory_order_relaxed);
  }

  const FaultPlan& plan() const noexcept { return plan_; }

 private:
  /// Requires mutex_ held (counter resolution + log ordering).
  void count_injection(std::uint64_t n = 1);

  FaultPlan plan_;
  std::atomic<std::uint32_t> epoch_{0};
  mutable std::mutex mutex_;
  /// Armed push context per worker id: value = chunk.  Guarded by mutex_.
  std::unordered_map<std::uint32_t, std::uint32_t> armed_chunks_;
  std::vector<std::uint32_t> corrupt_spent_;  ///< per-event attempts burned
  std::vector<bool> kill_fired_;              ///< per-event kill latched
  std::atomic<std::uint64_t> injected_{0};
  obs::Counter* injected_counter_ = nullptr;  ///< lazily resolved
};

}  // namespace hcc::fault
