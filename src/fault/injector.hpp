// Deterministic fault injection (the runtime side of a FaultPlan).
//
// The injector sits at the two seams where a real multi-CPU/GPU platform
// fails: the TrainWorker phase boundaries (a device that stops responding
// or straggles) and the COMM wire (a transfer that delivers corrupt
// bytes).  HccMf advances the injector's epoch cursor; workers consult it
// at every phase start and route their wire buffers through its tap, so
// both ShmComm and BrokerComm are exercised identically.  With an empty
// plan every query is an O(1) no-op returning "healthy".
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "fault/errors.hpp"
#include "fault/plan.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace hcc::fault {

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Moves the schedule cursor (HccMf calls this at each epoch start,
  /// including replays after a rollback — events re-fire deterministically
  /// for workers that are still alive to observe them).
  void begin_epoch(std::uint32_t epoch);

  std::uint32_t current_epoch() const noexcept { return epoch_; }

  /// Throws WorkerKilledError when a kill event for `worker` is due at the
  /// current epoch.  Workers call this at every phase start.
  void check_phase(std::uint32_t worker);

  /// True when a kill event for `worker` is scheduled at exactly `epoch`.
  bool kill_scheduled(std::uint32_t worker, std::uint32_t epoch) const;

  /// Straggle multiplier for a worker-epoch (1.0 = nominal).  Stacked
  /// stall events multiply.
  double stall_factor(std::uint32_t worker, std::uint32_t epoch) const;

  /// Marks the transfer context the wire tap sees next (push direction
  /// only — the plan grammar corrupts push payloads).
  void begin_push(std::uint32_t worker, std::uint32_t chunk);
  void end_push();

  /// The COMM wire tap: mutates `wire` in place when a corrupt event
  /// matches the armed (worker, epoch, chunk) and still has attempts to
  /// burn.  Byte positions come from the plan's seed — deterministic.
  void tap_wire(std::span<std::byte> wire);

  /// Total injections performed (kills fired + stalls applied + payloads
  /// corrupted); mirrored into the `fault.injected` counter.
  std::uint64_t injected() const noexcept { return injected_; }

  const FaultPlan& plan() const noexcept { return plan_; }

 private:
  void count_injection(std::uint64_t n = 1);

  FaultPlan plan_;
  std::uint32_t epoch_ = 0;
  bool push_armed_ = false;
  std::uint32_t push_worker_ = 0;
  std::uint32_t push_chunk_ = 0;
  std::vector<std::uint32_t> corrupt_spent_;  ///< per-event attempts burned
  std::vector<bool> kill_fired_;              ///< per-event kill latched
  std::uint64_t injected_ = 0;
  obs::Counter* injected_counter_ = nullptr;  ///< lazily resolved
};

}  // namespace hcc::fault
