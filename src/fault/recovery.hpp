// Detection and degraded-mode recovery.
//
// Detection uses the Eq. 1-5 cost model the partition strategies already
// trust: a worker phase is a straggler when its measured time exceeds
// deadline_factor x its predicted time, after median-normalizing the
// measured/predicted ratio across workers (the functional layer's wall
// clock and the cost model's virtual clock run at different rates; the
// median ratio is the exchange rate, robust to the straggler itself).
//
// Recovery reuses the DP1 machinery: when a worker dies its row slice is
// re-split across the survivors proportionally to their (renormalized)
// shares, the global model rolls back to the last consistent checkpoint,
// and training continues degraded.  FaultRuntime bundles the injector,
// options and tallies HccMf threads through the stack, and resolves its
// obs counters lazily so fault-free runs leave the registry untouched.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "data/rating_matrix.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "obs/drift.hpp"
#include "obs/metrics.hpp"

namespace hcc::fault {

/// Flags workers whose measured phase times exceed deadline_factor x the
/// cost-model prediction (median-normalized; see file comment).  Workers
/// with `alive[w] == false` are excluded from both the normalization and
/// the result.  Empty `alive` means all alive.
std::vector<bool> straggler_mask(const std::vector<obs::PhaseTimes>& measured,
                                 const std::vector<obs::PhaseTimes>& predicted,
                                 double deadline_factor,
                                 const std::vector<bool>& alive = {});

/// Splits a dead worker's slice into per-survivor entry batches, sized
/// proportionally to `weights` (zero-weight workers receive nothing) and
/// cut only at row boundaries so every P row keeps exactly one owner —
/// the invariant behind "Transmitting Q only".  Entries are returned in
/// row order; the concatenation of all batches is the whole slice.
std::vector<std::vector<data::Rating>> split_entries_by_shares(
    const data::RatingMatrix& slice, const std::vector<double>& weights);

/// Everything the training loop threads through the stack.  Construct one
/// per run; `active()` gates the injection/checksum machinery.
class FaultRuntime {
 public:
  explicit FaultRuntime(const FaultOptions& options);

  bool active() const noexcept { return options_.enabled(); }
  const FaultOptions& options() const noexcept { return options_; }
  FaultInjector& injector() noexcept { return injector_; }

  // Tally + lazily-created obs counter, one per observable event class.
  // Mutex-guarded: retry/checksum events fire from concurrent worker
  // threads under the parallel executor.  The readers below are called
  // from the training loop only after the epoch barrier (quiesced).
  void count_retry();
  void count_checksum_failure();
  void count_recovery(double wall_s);
  void count_rollback();
  void count_stragglers(std::uint64_t n);

  std::uint64_t retries() const noexcept { return retries_; }
  std::uint64_t checksum_failures() const noexcept {
    return checksum_failures_;
  }
  std::uint64_t recoveries() const noexcept { return recoveries_; }
  std::uint64_t rollbacks() const noexcept { return rollbacks_; }
  std::uint64_t stragglers() const noexcept { return stragglers_; }
  double recovery_wall_s() const noexcept { return recovery_wall_s_; }

 private:
  FaultOptions options_;
  FaultInjector injector_;
  mutable std::mutex mutex_;
  std::uint64_t retries_ = 0;
  std::uint64_t checksum_failures_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t rollbacks_ = 0;
  std::uint64_t stragglers_ = 0;
  double recovery_wall_s_ = 0.0;
  obs::Counter* retries_counter_ = nullptr;
  obs::Counter* checksum_counter_ = nullptr;
  obs::Counter* recoveries_counter_ = nullptr;
  obs::Counter* rollbacks_counter_ = nullptr;
  obs::Counter* stragglers_counter_ = nullptr;
  obs::Histogram* recovery_hist_ = nullptr;
};

}  // namespace hcc::fault
