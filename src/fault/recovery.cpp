#include "fault/recovery.hpp"

#include <algorithm>
#include <cmath>

namespace hcc::fault {

namespace {

/// Lower median of a non-empty vector (robust to one inflated outlier even
/// with only two samples).
double lower_median(std::vector<double> v) {
  const std::size_t mid = (v.size() - 1) / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  return v[mid];
}

/// Per-phase measured/predicted ratios for one phase selector.
template <typename Get>
void flag_phase(const std::vector<obs::PhaseTimes>& measured,
                const std::vector<obs::PhaseTimes>& predicted,
                double deadline_factor, const std::vector<bool>& alive,
                Get get, std::vector<bool>& out) {
  std::vector<double> ratios;
  std::vector<std::size_t> who;
  for (std::size_t w = 0; w < measured.size(); ++w) {
    if (!alive.empty() && !alive[w]) continue;
    const double m = get(measured[w]);
    const double p = get(predicted[w]);
    if (!(m > 0.0) || !(p > 0.0)) continue;
    ratios.push_back(m / p);
    who.push_back(w);
  }
  if (ratios.size() < 2) return;  // no peers to normalize against
  const double scale = lower_median(ratios);
  if (!(scale > 0.0)) return;
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    if (ratios[i] > deadline_factor * scale) out[who[i]] = true;
  }
}

}  // namespace

std::vector<bool> straggler_mask(const std::vector<obs::PhaseTimes>& measured,
                                 const std::vector<obs::PhaseTimes>& predicted,
                                 double deadline_factor,
                                 const std::vector<bool>& alive) {
  std::vector<bool> mask(measured.size(), false);
  if (measured.size() != predicted.size() || deadline_factor <= 0.0) {
    return mask;
  }
  flag_phase(measured, predicted, deadline_factor, alive,
             [](const obs::PhaseTimes& t) { return t.pull_s; }, mask);
  flag_phase(measured, predicted, deadline_factor, alive,
             [](const obs::PhaseTimes& t) { return t.compute_s; }, mask);
  flag_phase(measured, predicted, deadline_factor, alive,
             [](const obs::PhaseTimes& t) { return t.push_s; }, mask);
  return mask;
}

std::vector<std::vector<data::Rating>> split_entries_by_shares(
    const data::RatingMatrix& slice, const std::vector<double>& weights) {
  std::vector<std::vector<data::Rating>> batches(weights.size());
  if (slice.nnz() == 0) return batches;

  // Row-sorted copy: slices are row-contiguous but not guaranteed sorted
  // (shuffled visit order), and the cut points must land on row edges.
  std::vector<data::Rating> entries(slice.entries().begin(),
                                    slice.entries().end());
  std::stable_sort(entries.begin(), entries.end(),
                   [](const data::Rating& a, const data::Rating& b) {
                     return a.u < b.u;
                   });

  double total_weight = 0.0;
  for (double w : weights) total_weight += std::max(0.0, w);
  if (!(total_weight > 0.0)) return batches;

  // Walk the receivers in order, giving each a run of whole rows whose nnz
  // reaches its proportional quota (the last receiver takes the remainder).
  std::size_t pos = 0;
  double given = 0.0;
  double quota = 0.0;
  std::size_t receiver = 0;
  // Advance to the first positive-weight receiver.
  auto next_receiver = [&](std::size_t from) {
    std::size_t r = from;
    while (r < weights.size() && !(weights[r] > 0.0)) ++r;
    return r;
  };
  receiver = next_receiver(0);
  if (receiver == weights.size()) return batches;
  quota = static_cast<double>(entries.size()) * weights[receiver] /
          total_weight;

  while (pos < entries.size()) {
    // One whole row at a time.
    std::size_t row_end = pos;
    const std::uint32_t row = entries[pos].u;
    while (row_end < entries.size() && entries[row_end].u == row) ++row_end;

    batches[receiver].insert(batches[receiver].end(), entries.begin() + pos,
                             entries.begin() + row_end);
    given += static_cast<double>(row_end - pos);
    pos = row_end;

    const std::size_t next = next_receiver(receiver + 1);
    if (given >= quota && next != weights.size()) {
      receiver = next;
      quota += static_cast<double>(entries.size()) * weights[receiver] /
               total_weight;
    }
  }
  return batches;
}

FaultRuntime::FaultRuntime(const FaultOptions& options)
    : options_(options), injector_(options.plan) {}

void FaultRuntime::count_retry() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++retries_;
  if (retries_counter_ == nullptr) {
    retries_counter_ = &obs::registry().counter("fault.retries");
  }
  retries_counter_->add(1);
}

void FaultRuntime::count_checksum_failure() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++checksum_failures_;
  if (checksum_counter_ == nullptr) {
    checksum_counter_ = &obs::registry().counter("fault.checksum_failures");
  }
  checksum_counter_->add(1);
}

void FaultRuntime::count_recovery(double wall_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++recoveries_;
  recovery_wall_s_ += wall_s;
  if (recoveries_counter_ == nullptr) {
    recoveries_counter_ = &obs::registry().counter("fault.recoveries");
    recovery_hist_ = &obs::registry().histogram("fault.recovery_s");
  }
  recoveries_counter_->add(1);
  recovery_hist_->observe(wall_s);
}

void FaultRuntime::count_rollback() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++rollbacks_;
  if (rollbacks_counter_ == nullptr) {
    rollbacks_counter_ = &obs::registry().counter("fault.divergence_rollbacks");
  }
  rollbacks_counter_->add(1);
}

void FaultRuntime::count_stragglers(std::uint64_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (n == 0) return;
  stragglers_ += n;
  if (stragglers_counter_ == nullptr) {
    stragglers_counter_ = &obs::registry().counter("fault.stragglers");
  }
  stragglers_counter_->add(n);
}

}  // namespace hcc::fault
