#include "fault/injector.hpp"

#include "util/log.hpp"

namespace hcc::fault {

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)),
      corrupt_spent_(plan_.events.size(), 0),
      kill_fired_(plan_.events.size(), false) {}

void FaultInjector::count_injection(std::uint64_t n) {
  injected_ += n;
  // Resolved on first injection so fault-free runs leave the metrics
  // registry untouched (bit-identical metrics JSON without a plan).
  if (injected_counter_ == nullptr) {
    injected_counter_ = &obs::registry().counter("fault.injected");
  }
  injected_counter_->add(n);
}

void FaultInjector::begin_epoch(std::uint32_t epoch) {
  epoch_ = epoch;
  push_armed_ = false;
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kStall && e.epoch == epoch) {
      count_injection();
      util::log_kv(util::LogLevel::kWarn, "fault_injected",
                   {util::kv("kind", "stall"), util::kv("worker", e.worker),
                    util::kv("epoch", epoch),
                    util::kv("factor", e.stall_factor)});
    }
  }
}

void FaultInjector::check_phase(std::uint32_t worker) {
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    if (e.kind != FaultKind::kKill || e.worker != worker || kill_fired_[i]) {
      continue;
    }
    if (e.epoch == epoch_) {
      kill_fired_[i] = true;
      count_injection();
      util::log_kv(util::LogLevel::kWarn, "fault_injected",
                   {util::kv("kind", "kill"), util::kv("worker", worker),
                    util::kv("epoch", epoch_)});
      throw WorkerKilledError(worker, epoch_);
    }
  }
}

bool FaultInjector::kill_scheduled(std::uint32_t worker,
                                   std::uint32_t epoch) const {
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kKill && e.worker == worker && e.epoch == epoch) {
      return true;
    }
  }
  return false;
}

double FaultInjector::stall_factor(std::uint32_t worker,
                                   std::uint32_t epoch) const {
  double factor = 1.0;
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kStall && e.worker == worker &&
        e.epoch == epoch) {
      factor *= e.stall_factor;
    }
  }
  return factor;
}

void FaultInjector::begin_push(std::uint32_t worker, std::uint32_t chunk) {
  push_armed_ = true;
  push_worker_ = worker;
  push_chunk_ = chunk;
}

void FaultInjector::end_push() { push_armed_ = false; }

void FaultInjector::tap_wire(std::span<std::byte> wire) {
  if (!push_armed_ || wire.empty()) return;
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    if (e.kind != FaultKind::kCorrupt || e.worker != push_worker_ ||
        e.epoch != epoch_ || e.chunk != push_chunk_ ||
        corrupt_spent_[i] >= e.count) {
      continue;
    }
    // Deterministic bit rot: the flipped positions depend only on the
    // plan's seed, the event index and the attempt number.
    util::Rng rng(plan_.seed ^ (0x9e37u + 1315423911u * i) ^
                  (corrupt_spent_[i] * 0x100000001b3ULL));
    // A contiguous run of XORed bytes: distinct positions, so the damage
    // can never cancel itself out and the checksum is guaranteed to trip.
    const std::size_t start = rng.uniform_u64(wire.size());
    const std::size_t run = std::min(1 + rng.uniform_u64(8), wire.size());
    for (std::size_t f = 0; f < run; ++f) {
      wire[(start + f) % wire.size()] ^= std::byte{0xA5};
    }
    ++corrupt_spent_[i];
    count_injection();
    util::log_kv(util::LogLevel::kWarn, "fault_injected",
                 {util::kv("kind", "corrupt"), util::kv("worker", push_worker_),
                  util::kv("epoch", epoch_), util::kv("chunk", push_chunk_),
                  util::kv("attempt", corrupt_spent_[i])});
  }
}

}  // namespace hcc::fault
