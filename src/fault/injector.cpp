#include "fault/injector.hpp"

#include "util/log.hpp"

namespace hcc::fault {

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)),
      corrupt_spent_(plan_.events.size(), 0),
      kill_fired_(plan_.events.size(), false) {}

void FaultInjector::count_injection(std::uint64_t n) {
  injected_.fetch_add(n, std::memory_order_relaxed);
  // Resolved on first injection so fault-free runs leave the metrics
  // registry untouched (bit-identical metrics JSON without a plan).
  // Caller holds mutex_, which serializes the resolution.
  if (injected_counter_ == nullptr) {
    injected_counter_ = &obs::registry().counter("fault.injected");
  }
  injected_counter_->add(n);
}

void FaultInjector::begin_epoch(std::uint32_t epoch) {
  epoch_.store(epoch, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  armed_chunks_.clear();
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kStall && e.epoch == epoch) {
      count_injection();
      util::log_kv(util::LogLevel::kWarn, "fault_injected",
                   {util::kv("kind", "stall"), util::kv("worker", e.worker),
                    util::kv("epoch", epoch),
                    util::kv("factor", e.stall_factor)});
    }
  }
}

void FaultInjector::check_phase(std::uint32_t worker) {
  if (plan_.events.empty()) return;
  const std::uint32_t epoch = current_epoch();
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    if (e.kind != FaultKind::kKill || e.worker != worker || kill_fired_[i]) {
      continue;
    }
    if (e.epoch == epoch) {
      kill_fired_[i] = true;
      count_injection();
      util::log_kv(util::LogLevel::kWarn, "fault_injected",
                   {util::kv("kind", "kill"), util::kv("worker", worker),
                    util::kv("epoch", epoch)});
      throw WorkerKilledError(worker, epoch);
    }
  }
}

bool FaultInjector::kill_scheduled(std::uint32_t worker,
                                   std::uint32_t epoch) const {
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kKill && e.worker == worker && e.epoch == epoch) {
      return true;
    }
  }
  return false;
}

double FaultInjector::stall_factor(std::uint32_t worker,
                                   std::uint32_t epoch) const {
  double factor = 1.0;
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kStall && e.worker == worker &&
        e.epoch == epoch) {
      factor *= e.stall_factor;
    }
  }
  return factor;
}

void FaultInjector::begin_push(std::uint32_t worker, std::uint32_t chunk) {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_chunks_[worker] = chunk;
}

void FaultInjector::end_push(std::uint32_t worker) {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_chunks_.erase(worker);
}

void FaultInjector::tap_wire(std::span<std::byte> wire, std::uint32_t worker) {
  if (plan_.events.empty() || wire.empty()) return;
  const std::uint32_t epoch = current_epoch();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto armed = armed_chunks_.find(worker);
  if (armed == armed_chunks_.end()) return;
  const std::uint32_t chunk = armed->second;
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    if (e.kind != FaultKind::kCorrupt || e.worker != worker ||
        e.epoch != epoch || e.chunk != chunk ||
        corrupt_spent_[i] >= e.count) {
      continue;
    }
    // Deterministic bit rot: the flipped positions depend only on the
    // plan's seed, the event index and the attempt number.
    util::Rng rng(plan_.seed ^ (0x9e37u + 1315423911u * i) ^
                  (corrupt_spent_[i] * 0x100000001b3ULL));
    // A contiguous run of XORed bytes: distinct positions, so the damage
    // can never cancel itself out and the checksum is guaranteed to trip.
    const std::size_t start = rng.uniform_u64(wire.size());
    const std::size_t run = std::min(1 + rng.uniform_u64(8), wire.size());
    for (std::size_t f = 0; f < run; ++f) {
      wire[(start + f) % wire.size()] ^= std::byte{0xA5};
    }
    ++corrupt_spent_[i];
    count_injection();
    util::log_kv(util::LogLevel::kWarn, "fault_injected",
                 {util::kv("kind", "corrupt"), util::kv("worker", worker),
                  util::kv("epoch", epoch), util::kv("chunk", chunk),
                  util::kv("attempt", corrupt_spent_[i])});
  }
}

}  // namespace hcc::fault
